// Package bench holds the benchmark harness: one testing.B benchmark per
// table and figure of the paper, plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark runs the corresponding
// experiment end to end (archive generation → compilation → fault
// injection) and reports the headline number via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Trial budgets are reduced relative to
// cmd/repro; use cmd/repro -full for the paper's budgets.
package bench

import (
	"fmt"
	"runtime"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/experiments"
	"vaq/internal/metrics"
	"vaq/internal/route"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

// benchCfg keeps per-iteration cost manageable; the experiments fall back
// to the analytic PST estimator when the MC budget is too small for a
// deep circuit, so the reported ratios stay meaningful.
func benchCfg() experiments.Config {
	return experiments.Config{
		Seed:          2019,
		Trials:        50000,
		NativeConfigs: 8,
		NativeTrials:  4000,
		Q5Trials:      4096,
	}
}

func BenchmarkFig5CoherenceDistributions(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5CoherenceDistributions(benchCfg())
		mean = r.T1Summary.Mean
	}
	b.ReportMetric(mean, "T1-mean-us")
}

func BenchmarkFig6SingleQubitErrors(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = experiments.Fig6SingleQubitErrors(benchCfg()).FractionBelow1Pct
	}
	b.ReportMetric(100*frac, "pct-below-1pct")
}

func BenchmarkFig7TwoQubitErrors(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = experiments.Fig7TwoQubitErrors(benchCfg()).Summary.Mean
	}
	b.ReportMetric(100*mean, "mean-2q-error-pct")
}

func BenchmarkFig8TemporalVariation(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = experiments.Fig8TemporalVariation(benchCfg()).StrongStaysStrongFraction
	}
	b.ReportMetric(100*frac, "strong-stays-strong-pct")
}

func BenchmarkFig9SpatialVariation(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		spread = experiments.Fig9SpatialVariation(benchCfg()).Spread
	}
	b.ReportMetric(spread, "spatial-spread-x")
}

func BenchmarkTable1Benchmarks(b *testing.B) {
	var swaps int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1Benchmarks(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		swaps = 0
		for _, r := range rows {
			swaps += r.SwapInst
		}
	}
	b.ReportMetric(float64(swaps), "total-swaps")
}

func BenchmarkFig12VQM(b *testing.B) {
	var rel []float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12VQM(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		rel = rel[:0]
		for _, r := range rows {
			rel = append(rel, r.RelVQM)
		}
	}
	b.ReportMetric(metrics.GeoMean(rel), "geomean-rel-pst")
}

func BenchmarkFig13Policies(b *testing.B) {
	var rel []float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13Policies(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		rel = rel[:0]
		for _, r := range rows {
			rel = append(rel, r.RelVQAVQM)
		}
	}
	b.ReportMetric(metrics.GeoMean(rel), "geomean-rel-pst")
}

func BenchmarkFig14PerDay(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14PerDay(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		avg = res.Average
	}
	b.ReportMetric(avg, "avg-daily-benefit-x")
}

func BenchmarkTable2ErrorScaling(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2ErrorScaling(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].Relative
	}
	b.ReportMetric(last, "rel-pst-2cov-x")
}

func BenchmarkTable3IBMQ5(b *testing.B) {
	var gm float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3IBMQ5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		gm = res.GeoMean
	}
	b.ReportMetric(gm, "geomean-rel-pst")
}

func BenchmarkFig16Partitioning(b *testing.B) {
	var oneWins float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16Partitioning(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		oneWins = 0
		for _, r := range rows {
			if r.OneStrongNorm >= 1 {
				oneWins++
			}
		}
	}
	b.ReportMetric(oneWins, "one-strong-wins")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

func benchDevice() *device.Device {
	arch := calib.Generate(calib.DefaultQ20Config(2019))
	return device.MustNew(arch.Topo, arch.MustMean())
}

// BenchmarkAblationCostFunction compares the routing cost function (hop
// count vs −log reliability) at fixed allocation: the core baseline→VQM
// delta.
func BenchmarkAblationCostFunction(b *testing.B) {
	d := benchDevice()
	prog := workloads.BV(16)
	for _, tc := range []struct {
		name   string
		policy core.Policy
	}{{"hops", core.Baseline}, {"reliability", core.VQM}} {
		b.Run(tc.name, func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				comp, err := core.Compile(d, prog, core.Options{Policy: tc.policy})
				if err != nil {
					b.Fatal(err)
				}
				p = sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{})
			}
			b.ReportMetric(p, "analytic-pst")
		})
	}
}

// BenchmarkAblationMAH sweeps the Maximum Additional Hops limit.
func BenchmarkAblationMAH(b *testing.B) {
	d := benchDevice()
	prog := workloads.QFT(12)
	for _, mah := range []int{0, 2, 4, 8} {
		b.Run(route.AStar{Cost: route.CostReliability, MAH: mah}.Name(), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				comp, err := core.Compile(d, prog, core.Options{Policy: core.VQMHop, MAH: mah})
				if err != nil {
					b.Fatal(err)
				}
				p = sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{})
			}
			b.ReportMetric(p*1e6, "analytic-pst-ppm")
		})
	}
}

// BenchmarkAblationAllocation compares allocation policies at fixed
// (reliability) routing.
func BenchmarkAblationAllocation(b *testing.B) {
	d := benchDevice()
	prog := workloads.BV(16)
	for _, tc := range []struct {
		name   string
		policy core.Policy
	}{{"random+naive", core.Native}, {"greedy", core.VQM}, {"vqa", core.VQAVQM}} {
		b.Run(tc.name, func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				comp, err := core.Compile(d, prog, core.Options{Policy: tc.policy, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				p = sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{})
			}
			b.ReportMetric(p, "analytic-pst")
		})
	}
}

// BenchmarkAblationActivityWindow sweeps VQA's first-t-layers activity
// estimation window.
func BenchmarkAblationActivityWindow(b *testing.B) {
	d := benchDevice()
	prog := workloads.QFT(12)
	for _, window := range []int{1, 4, 16, 0} {
		name := "all-layers"
		if window > 0 {
			name = fmt.Sprintf("first-%d", window)
		}
		b.Run(name, func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				comp, err := core.Compile(d, prog, core.Options{Policy: core.VQAVQM, ActivityLayers: window})
				if err != nil {
					b.Fatal(err)
				}
				p = sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{})
			}
			b.ReportMetric(p*1e6, "analytic-pst-ppm")
		})
	}
}

// BenchmarkAblationReadoutWeight sweeps the readout-aware VQA extension:
// weight 0 is the paper-faithful policy.
func BenchmarkAblationReadoutWeight(b *testing.B) {
	d := benchDevice()
	prog := workloads.BV(16)
	for _, w := range []float64{0, 0.5, 1, 3} {
		b.Run(fmt.Sprintf("w=%g", w), func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				comp, err := core.Compile(d, prog, core.Options{Policy: core.VQAVQM, ReadoutWeight: w})
				if err != nil {
					b.Fatal(err)
				}
				p = sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{})
			}
			b.ReportMetric(p, "analytic-pst")
		})
	}
}

// BenchmarkCompilePipeline measures raw compilation throughput per policy
// (no simulation) on the largest Table 1 workload.
func BenchmarkCompilePipeline(b *testing.B) {
	d := benchDevice()
	prog := workloads.QFT(14)
	for _, p := range core.AllPolicies() {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(d, prog, core.Options{Policy: p, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mcCompiled compiles the shared Monte-Carlo benchmark workload
// (bv-16 under the baseline policy, as in the determinism tests).
func mcCompiled(b *testing.B) (*device.Device, *sim.Prepared) {
	b.Helper()
	d := benchDevice()
	comp, err := core.Compile(d, workloads.BV(16), core.Options{Policy: core.Baseline})
	if err != nil {
		b.Fatal(err)
	}
	return d, sim.Prepare(d, comp.Routed.Physical, sim.Config{})
}

// reportTrials attaches the uniform MC throughput metric: real trials/sec
// from the measured elapsed time. Every MC benchmark reports it so the
// BENCH snapshots stay comparable across kernels and worker counts.
func reportTrials(b *testing.B, trials int) {
	b.Helper()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(trials)*float64(b.N)/secs, "trials/sec")
	}
}

// BenchmarkMonteCarlo measures the packed fault-injection kernel's trial
// throughput on the serial path. The trial budget spans 16 full blocks so
// per-run setup (plan lookup, partial summation) amortizes and the number
// reported is the kernel's steady-state rate.
func BenchmarkMonteCarlo(b *testing.B) {
	_, prep := mcCompiled(b)
	const trials = 16 * sim.BlockSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep.Run(sim.Config{Trials: trials, Seed: int64(i), Workers: -1})
	}
	reportTrials(b, trials)
}

// BenchmarkMonteCarloScalar measures the scalar reference kernel on the
// identical workload — the packed/scalar ratio in a BENCH snapshot is the
// bit-parallel speedup on that machine.
func BenchmarkMonteCarloScalar(b *testing.B) {
	_, prep := mcCompiled(b)
	const trials = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep.Run(sim.Config{Trials: trials, Seed: int64(i), Workers: -1, Kernel: sim.KernelScalar})
	}
	reportTrials(b, trials)
}

// BenchmarkMonteCarloPrepare measures Prepare itself (error-model
// derivation, ASAP schedule, packed-plan construction) — the fixed cost a
// caller pays before the first trial.
func BenchmarkMonteCarloPrepare(b *testing.B) {
	d := benchDevice()
	comp, err := core.Compile(d, workloads.BV(16), core.Options{Policy: core.Baseline})
	if err != nil {
		b.Fatal(err)
	}
	phys := comp.Routed.Physical
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Prepare(d, phys, sim.Config{})
	}
}

// BenchmarkMonteCarloParallel sweeps the worker count over the sharded
// simulator on a single prepared circuit. The trial budget spans 256
// blocks so per-block work dominates pool dispatch even at packed-kernel
// speeds. The worker list is deduplicated (on a 1-CPU machine GOMAXPROCS
// collides with the literal 1) so every sub-benchmark name is unique and
// BENCH snapshot keys stay unambiguous.
func BenchmarkMonteCarloParallel(b *testing.B) {
	_, prep := mcCompiled(b)
	const trials = 256 * sim.BlockSize
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prep.Run(sim.Config{Trials: trials, Seed: int64(i), Workers: workers})
			}
			reportTrials(b, trials)
		})
	}
}
