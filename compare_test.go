package bench

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnapshot drops a minimal bench.sh-format snapshot into dir.
func writeSnapshot(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCompare invokes scripts/bench.sh -compare and returns the exit code
// with the combined output.
func runCompare(t *testing.T, old, new string) (int, string) {
	t.Helper()
	cmd := exec.Command("sh", "scripts/bench.sh", "-compare", old, new)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("running bench.sh -compare: %v\n%s", err, out)
	return -1, ""
}

// TestBenchCompare pins the regression-gate contract of
// scripts/bench.sh -compare: a >10% ns/op regression on any shared
// benchmark exits non-zero and names the offender; improvements, small
// wobbles, and benchmarks present on only one side pass. It also covers
// the key canonicalization (GOMAXPROCS -8 and collision #01 suffixes
// strip; duplicate samples aggregate to the minimum).
func TestBenchCompare(t *testing.T) {
	dir := t.TempDir()
	old := writeSnapshot(t, dir, "old.json", `{
  "date": "2026-08-05",
  "benchmarks": [
    {"name": "BenchmarkMonteCarlo", "ns_op": 1000000, "b_op": 0, "allocs_op": 0},
    {"name": "BenchmarkRouteCold", "ns_op": 200000, "b_op": 0, "allocs_op": 0},
    {"name": "BenchmarkOldOnly", "ns_op": 5, "b_op": 0, "allocs_op": 0}
  ],
  "goos": "linux", "goarch": "amd64", "count": 1
}
`)

	// Injected regression: RouteCold 200000 -> 260000 (+30%).
	bad := writeSnapshot(t, dir, "bad.json", `{
  "date": "2026-08-08",
  "benchmarks": [
    {"name": "BenchmarkMonteCarlo-8", "ns_op": 250000, "b_op": 0, "allocs_op": 0, "trials_sec": 260000000},
    {"name": "BenchmarkRouteCold", "ns_op": 260000, "b_op": 0, "allocs_op": 0},
    {"name": "BenchmarkNewOnly", "ns_op": 7, "b_op": 0, "allocs_op": 0}
  ],
  "goos": "linux", "goarch": "amd64", "count": 1
}
`)
	code, out := runCompare(t, old, bad)
	if code == 0 {
		t.Fatalf("injected +30%% regression passed the gate:\n%s", out)
	}
	if want := "REGRESSION BenchmarkRouteCold"; !strings.Contains(out, want) {
		t.Errorf("output does not name the regressed benchmark (%q):\n%s", want, out)
	}
	if strings.Contains(out, "REGRESSION BenchmarkMonteCarlo") {
		t.Errorf("4x speedup flagged as a regression:\n%s", out)
	}

	// Clean pair: improvement plus within-noise wobble (+5%), duplicate
	// samples keeping the minimum (#01 suffix canonicalizes to the same
	// key, and only the faster 205000 sample must be compared).
	good := writeSnapshot(t, dir, "good.json", `{
  "date": "2026-08-08",
  "benchmarks": [
    {"name": "BenchmarkMonteCarlo", "ns_op": 250000, "b_op": 0, "allocs_op": 0, "trials_sec": 260000000},
    {"name": "BenchmarkRouteCold", "ns_op": 999000, "b_op": 0, "allocs_op": 0},
    {"name": "BenchmarkRouteCold#01", "ns_op": 205000, "b_op": 0, "allocs_op": 0}
  ],
  "goos": "linux", "goarch": "amd64", "count": 2
}
`)
	code, out = runCompare(t, old, good)
	if code != 0 {
		t.Fatalf("clean snapshot pair failed the gate (exit %d):\n%s", code, out)
	}
}
