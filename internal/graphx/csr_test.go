package graphx

import (
	"math/rand"
	"testing"
)

// randomConnectedGraph builds a seeded random weighted graph: a spanning
// chain (so it is connected) plus extra random edges.
func randomConnectedGraph(n, extra int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0.1+rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, 0.1+rng.Float64())
		}
	}
	return g
}

// TestCSRMatchesGraphDijkstra: the CSR all-pairs matrix must be
// bit-identical (not just approximately equal) to per-source
// Graph.Dijkstra — the routing determinism contract depends on the two
// producing the same float64 values, which requires the same relaxation
// order.
func TestCSRMatchesGraphDijkstra(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 40} {
		g := randomConnectedGraph(n, n, int64(n))
		got := g.CSR().AllPairsDijkstra()
		for src := 0; src < n; src++ {
			want, _ := g.Dijkstra(src)
			for v := 0; v < n; v++ {
				if got[src][v] != want[v] {
					t.Fatalf("n=%d dist[%d][%d]: CSR %v, Graph %v", n, src, v, got[src][v], want[v])
				}
			}
		}
	}
}

// TestCSRMatchesGraphHops: same contract for the BFS hop matrices.
func TestCSRMatchesGraphHops(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 40} {
		g := randomConnectedGraph(n, n/2, int64(n)+100)
		got := g.CSR().AllPairsHops()
		want := g.AllPairsHops()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if got[u][v] != want[u][v] {
					t.Fatalf("n=%d hops[%d][%d]: CSR %v, Graph %v", n, u, v, got[u][v], want[u][v])
				}
			}
		}
	}
}

// TestCSRScratchReuse: DijkstraInto with reused scratch buffers must give
// the same answers as a fresh run — the all-pairs builders reuse one heap
// and done slice across every source.
func TestCSRScratchReuse(t *testing.T) {
	g := randomConnectedGraph(15, 10, 7)
	c := g.CSR()
	dist := make([]float64, c.N())
	done := make([]bool, c.N())
	h := make([]csrItem, 0, c.N())
	for pass := 0; pass < 2; pass++ { // second pass runs on dirty scratch
		for src := 0; src < c.N(); src++ {
			c.DijkstraInto(src, dist, done, &h)
			want, _ := g.Dijkstra(src)
			for v := range dist {
				if dist[v] != want[v] {
					t.Fatalf("pass %d src %d node %d: %v vs %v", pass, src, v, dist[v], want[v])
				}
			}
		}
	}
}

// TestCSRDisconnected: unreachable nodes must read Inf in both builders.
func TestCSRDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	c := g.CSR()
	d := c.AllPairsDijkstra()
	hp := c.AllPairsHops()
	if d[0][2] != Inf || d[3][1] != Inf || hp[0][3] != Inf {
		t.Fatalf("expected Inf across components, got d02=%v d31=%v h03=%v", d[0][2], d[3][1], hp[0][3])
	}
	if d[0][1] != 1 || hp[2][3] != 1 {
		t.Fatalf("within-component distances wrong: %v %v", d[0][1], hp[2][3])
	}
}
