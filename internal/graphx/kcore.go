package graphx

import "sort"

// CoreNumbers computes the k-core decomposition of the graph using the
// O(m) bucket algorithm of Batagelj and Zaversnik (the algorithm the paper
// cites for VQA's strongest-subgraph selection). The returned slice maps
// each node to its core number: the largest k such that the node belongs to
// a maximal subgraph where every node has degree ≥ k.
func (g *Graph) CoreNumbers() []int {
	n := g.n
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = len(g.adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2) // bin[d] = start index of degree-d block
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d < len(bin); d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int, n)  // pos[v] = index of v in vert
	vert := make([]int, n) // nodes sorted by current degree
	fill := make([]int, maxDeg+1)
	copy(fill, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}

	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				// Move u one bucket down: swap it with the first node of
				// its current degree block, then shrink the block.
				du := deg[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core
}

// KCore returns the nodes whose core number is at least k, in ascending
// order.
func (g *Graph) KCore(k int) []int {
	core := g.CoreNumbers()
	var out []int
	for v, c := range core {
		if c >= k {
			out = append(out, v)
		}
	}
	return out
}

// StrongestSubgraph finds a connected induced subgraph with exactly k nodes
// that (approximately) maximizes the Aggregate Node Strength: the sum over
// member nodes of the induced-subgraph node strength (Σ_i Σ_j∈SG w_ij).
// This is the selection step of Variation-Aware Qubit Allocation.
//
// Exact maximization is NP-hard, so the search is a deterministic greedy
// expansion seeded from every node: repeatedly add the outside node that
// contributes the largest total edge weight into the current set. The best
// candidate across all seeds is returned along with its aggregate strength.
// For the machine sizes in this repository (≤ tens of qubits) this matches
// exhaustive search on every case we test.
//
// The nodes slice is nil when the graph has fewer than k nodes reachable
// from any seed.
func (g *Graph) StrongestSubgraph(k int) (nodes []int, ans float64) {
	if k <= 0 || k > g.n {
		return nil, 0
	}
	bestANS := -1.0
	var best []int
	for seed := 0; seed < g.n; seed++ {
		set, ok := g.greedyExpand(seed, k)
		if !ok {
			continue
		}
		s := g.AggregateNodeStrength(set)
		if s > bestANS {
			bestANS = s
			best = set
		}
	}
	if best == nil {
		return nil, 0
	}
	sort.Ints(best)
	return best, bestANS
}

// greedyExpand grows a connected set from seed to size k by adding, at each
// step, the frontier node with the largest total edge weight into the set
// (ties broken by node id for determinism).
func (g *Graph) greedyExpand(seed, k int) ([]int, bool) {
	in := make([]bool, g.n)
	set := []int{seed}
	in[seed] = true
	for len(set) < k {
		bestV, bestGain := -1, -1.0
		for _, u := range set {
			for _, v := range g.Neighbors(u) {
				if in[v] {
					continue
				}
				gain := 0.0
				for _, x := range g.Neighbors(v) {
					if in[x] {
						gain += g.adj[v][x]
					}
				}
				if gain > bestGain || (gain == bestGain && v < bestV) {
					bestGain = gain
					bestV = v
				}
			}
		}
		if bestV == -1 {
			return nil, false // component exhausted before reaching k
		}
		in[bestV] = true
		set = append(set, bestV)
	}
	return set, true
}

// AggregateNodeStrength returns Σ_{i∈nodes} Σ_{j∈nodes, j≠i} w_ij — twice
// the total induced edge weight, matching the paper's ANS definition
// (each edge counted from both endpoints).
func (g *Graph) AggregateNodeStrength(nodes []int) float64 {
	in := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		in[u] = true
	}
	total := 0.0
	for _, u := range nodes {
		for v, w := range g.adj[u] {
			if in[v] {
				total += w
			}
		}
	}
	return total
}
