package graphx

import (
	"container/heap"
	"fmt"
)

// HopDistances returns the minimum hop count from src to every node
// (breadth-first search). Unreachable nodes get Inf.
func (g *Graph) HopDistances(src int) []float64 {
	g.check(src)
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllPairsHops returns the matrix of minimum hop counts between every pair
// of nodes.
func (g *Graph) AllPairsHops() [][]float64 {
	out := make([][]float64, g.n)
	for u := 0; u < g.n; u++ {
		out[u] = g.HopDistances(u)
	}
	return out
}

// pqItem is an entry in the Dijkstra priority queue.
type pqItem struct {
	node int
	hops int // used by hop-constrained search; 0 otherwise
	dist float64
}

type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	if q[i].node != q[j].node {
		return q[i].node < q[j].node
	}
	return q[i].hops < q[j].hops
}
func (q *pq) Push(x any) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns the minimum total edge weight from src to every node and
// a predecessor array for path reconstruction (prev[src] == -1; prev[v] ==
// -1 also marks unreachable nodes). Edge weights must be non-negative.
func (g *Graph) Dijkstra(src int) (dist []float64, prev []int) {
	g.check(src)
	dist = make([]float64, g.n)
	prev = make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, v := range g.Neighbors(u) {
			w := g.adj[u][v]
			if w < 0 {
				panic(fmt.Sprintf("graphx: negative edge weight %v on %d-%d", w, u, v))
			}
			if nd := dist[u] + w; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				heap.Push(q, pqItem{node: v, dist: nd})
			}
		}
	}
	return dist, prev
}

// AllPairsDijkstra returns the full weighted distance matrix.
func (g *Graph) AllPairsDijkstra() [][]float64 {
	out := make([][]float64, g.n)
	for u := 0; u < g.n; u++ {
		out[u], _ = g.Dijkstra(u)
	}
	return out
}

// ShortestPath returns the minimum-weight path from src to dst as a node
// sequence including both endpoints, and its total weight. ok is false when
// dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) (path []int, weight float64, ok bool) {
	dist, prev := g.Dijkstra(src)
	if dist[dst] == Inf {
		return nil, Inf, false
	}
	return reconstruct(prev, src, dst), dist[dst], true
}

func reconstruct(prev []int, src, dst int) []int {
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ConstrainedDijkstra returns, for every node v, the minimum total edge
// weight of a src→v path using at most maxHops edges (Inf when no such path
// exists), together with one witness path per reachable node. The search
// state is (node, hops), so a longer-hop but cheaper prefix is explored
// independently of a shorter-hop costlier one.
//
// This is the engine behind the paper's hop-limited VQM: route reliability
// is maximized subject to "extra hops ≤ MAH".
func (g *Graph) ConstrainedDijkstra(src, maxHops int) (dist []float64, paths [][]int) {
	g.check(src)
	if maxHops < 0 {
		maxHops = 0
	}
	// best[v][h] = cheapest cost to reach v using exactly ≤ indexed hops.
	best := make([][]float64, g.n)
	prevNode := make([][]int, g.n)
	for v := range best {
		best[v] = make([]float64, maxHops+1)
		prevNode[v] = make([]int, maxHops+1)
		for h := 0; h <= maxHops; h++ {
			best[v][h] = Inf
			prevNode[v][h] = -1
		}
	}
	best[src][0] = 0
	q := &pq{{node: src, hops: 0, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u, h := it.node, it.hops
		if it.dist > best[u][h] {
			continue
		}
		if h == maxHops {
			continue
		}
		for _, v := range g.Neighbors(u) {
			w := g.adj[u][v]
			if nd := it.dist + w; nd < best[v][h+1] {
				best[v][h+1] = nd
				prevNode[v][h+1] = u
				heap.Push(q, pqItem{node: v, hops: h + 1, dist: nd})
			}
		}
	}
	dist = make([]float64, g.n)
	paths = make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		bestH, bestD := -1, Inf
		for h := 0; h <= maxHops; h++ {
			if best[v][h] < bestD {
				bestD = best[v][h]
				bestH = h
			}
		}
		dist[v] = bestD
		if bestH >= 0 {
			// Walk back through (node, hop) states.
			rev := []int{v}
			node, h := v, bestH
			for node != src || h != 0 {
				p := prevNode[node][h]
				if p == -1 {
					break
				}
				rev = append(rev, p)
				node, h = p, h-1
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			paths[v] = rev
		}
	}
	return dist, paths
}
