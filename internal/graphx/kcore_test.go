package graphx

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// clique returns a complete graph on nodes ids within a graph of size n.
func clique(n int, ids []int, w float64) *Graph {
	g := New(n)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			g.AddEdge(ids[i], ids[j], w)
		}
	}
	return g
}

func TestCoreNumbersClique(t *testing.T) {
	g := clique(4, []int{0, 1, 2, 3}, 1)
	core := g.CoreNumbers()
	for v, c := range core {
		if c != 3 {
			t.Fatalf("core[%d] = %d, want 3 in K4", v, c)
		}
	}
}

func TestCoreNumbersPath(t *testing.T) {
	g := path(5)
	for v, c := range g.CoreNumbers() {
		if c != 1 {
			t.Fatalf("core[%d] = %d, want 1 on a path", v, c)
		}
	}
}

func TestCoreNumbersIsolated(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	core := g.CoreNumbers()
	if core[2] != 0 {
		t.Fatalf("isolated node core = %d, want 0", core[2])
	}
	if core[0] != 1 || core[1] != 1 {
		t.Fatalf("edge endpoints core = %v, want 1", core[:2])
	}
}

func TestCoreNumbersCliquePlusTail(t *testing.T) {
	// K4 on {0..3} with a pendant path 3-4-5.
	g := clique(6, []int{0, 1, 2, 3}, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	core := g.CoreNumbers()
	want := []int{3, 3, 3, 3, 1, 1}
	if !reflect.DeepEqual(core, want) {
		t.Fatalf("core = %v, want %v", core, want)
	}
	if got := g.KCore(3); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("KCore(3) = %v, want clique nodes", got)
	}
	if got := g.KCore(1); len(got) != 6 {
		t.Fatalf("KCore(1) = %v, want all nodes", got)
	}
}

func TestCoreNumbersEmpty(t *testing.T) {
	if core := New(0).CoreNumbers(); len(core) != 0 {
		t.Fatalf("empty graph core = %v", core)
	}
}

// naiveCore is a reference implementation: repeatedly strip nodes with
// degree < k.
func naiveCore(g *Graph) []int {
	n := g.N()
	core := make([]int, n)
	for k := 1; ; k++ {
		alive := make([]bool, n)
		deg := make([]int, n)
		for v := 0; v < n; v++ {
			alive[v] = true
		}
		for v := 0; v < n; v++ {
			deg[v] = g.Degree(v)
		}
		changed := true
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] < k {
					alive[v] = false
					changed = true
					for _, u := range g.Neighbors(v) {
						if alive[u] {
							deg[u]--
						}
					}
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			break
		}
	}
	return core
}

func TestCoreNumbersMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(u, v, 1)
				}
			}
		}
		return reflect.DeepEqual(g.CoreNumbers(), naiveCore(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateNodeStrength(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.9)
	g.AddEdge(1, 2, 0.8)
	g.AddEdge(0, 3, 0.5)
	// ANS of {0,1,2}: edges 0-1 and 1-2 counted from both sides.
	got := g.AggregateNodeStrength([]int{0, 1, 2})
	want := 2 * (0.9 + 0.8)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("ANS = %v, want %v", got, want)
	}
}

func TestStrongestSubgraphPicksStrongCorner(t *testing.T) {
	// Two triangles joined by a weak bridge; one triangle has weight-3
	// edges, the other weight-1. The strongest 3-subgraph must be the
	// heavy triangle.
	g := New(6)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 3)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 0.1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(3, 5, 1)
	nodes, ans := g.StrongestSubgraph(3)
	if !reflect.DeepEqual(nodes, []int{0, 1, 2}) {
		t.Fatalf("strongest 3-subgraph = %v, want [0 1 2]", nodes)
	}
	if want := 2 * 9.0; ans != want {
		t.Fatalf("ANS = %v, want %v", ans, want)
	}
}

func TestStrongestSubgraphConnected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v, rng.Float64())
				}
			}
		}
		k := 1 + rng.Intn(n)
		nodes, _ := g.StrongestSubgraph(k)
		if nodes == nil {
			return true // no connected k-subgraph from any seed
		}
		return len(nodes) == k && g.Connected(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStrongestSubgraphEdgeCases(t *testing.T) {
	g := path(4)
	if nodes, _ := g.StrongestSubgraph(0); nodes != nil {
		t.Fatal("k=0 should return nil")
	}
	if nodes, _ := g.StrongestSubgraph(5); nodes != nil {
		t.Fatal("k>n should return nil")
	}
	nodes, _ := g.StrongestSubgraph(4)
	sort.Ints(nodes)
	if !reflect.DeepEqual(nodes, []int{0, 1, 2, 3}) {
		t.Fatalf("k=n should return all nodes, got %v", nodes)
	}
	// Disconnected graph where no component has k nodes.
	d := New(4)
	d.AddEdge(0, 1, 1)
	d.AddEdge(2, 3, 1)
	if nodes, _ := d.StrongestSubgraph(3); nodes != nil {
		t.Fatalf("expected nil for impossible k, got %v", nodes)
	}
}

func TestStrongestSubgraphMatchesExhaustiveSmall(t *testing.T) {
	// Compare the greedy search against exhaustive enumeration on small
	// random graphs. The greedy multi-seed search may in principle be
	// suboptimal, but for the dense small graphs we use it should find the
	// optimum; treat a mismatch > 15% as a bug.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(3)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.6 {
					g.AddEdge(u, v, rng.Float64())
				}
			}
		}
		k := 2 + rng.Intn(3)
		_, got := g.StrongestSubgraph(k)
		best := exhaustiveBest(g, k)
		if best < 0 {
			continue
		}
		if got < best*0.85 {
			t.Fatalf("trial %d: greedy ANS %v < 85%% of exhaustive %v", trial, got, best)
		}
	}
}

func exhaustiveBest(g *Graph, k int) float64 {
	n := g.N()
	best := -1.0
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			if g.Connected(cur) {
				if s := g.AggregateNodeStrength(cur); s > best {
					best = s
				}
			}
			return
		}
		for v := start; v < n; v++ {
			rec(v+1, append(cur, v))
		}
	}
	rec(0, nil)
	return best
}
