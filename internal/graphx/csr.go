package graphx

// CSR is an immutable compressed-sparse-row snapshot of a Graph: for each
// node u, its neighbors (ascending) and edge weights live in
// dst[off[u]:off[u+1]] / wts[off[u]:off[u+1]]. Unlike Graph, whose
// adjacency maps force a per-visit sort in every traversal, a CSR is
// built once and then walked with zero allocations — the shape the
// all-pairs builders in the routing cost tables want. Because it is
// immutable it is safe to share across goroutines.
//
// The traversal order (neighbors ascending, heap ties broken by node
// index) matches Graph.Dijkstra and Graph.HopDistances exactly, so the
// distance matrices computed here are bit-identical to the Graph ones —
// a property the routing determinism tests rely on.
type CSR struct {
	n   int
	off []int32
	dst []int32
	wts []float64
}

// CSR builds the compressed snapshot of the graph's current adjacency.
func (g *Graph) CSR() *CSR {
	c := &CSR{
		n:   g.n,
		off: make([]int32, g.n+1),
		dst: make([]int32, 0, 2*g.NumEdges()),
		wts: make([]float64, 0, 2*g.NumEdges()),
	}
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			c.dst = append(c.dst, int32(v))
			c.wts = append(c.wts, g.adj[u][v])
		}
		c.off[u+1] = int32(len(c.dst))
	}
	return c
}

// N returns the number of nodes.
func (c *CSR) N() int { return c.n }

// csrItem is a (dist, node) heap entry; ordering matches graphx.pq with
// hops fixed at zero: by distance, ties by node index.
type csrItem struct {
	dist float64
	node int32
}

func csrLess(a, b csrItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node
}

func csrPush(h *[]csrItem, it csrItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !csrLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func csrPop(h *[]csrItem) csrItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old = old[:n]
	*h = old
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && csrLess(old[l], old[s]) {
			s = l
		}
		if r < n && csrLess(old[r], old[s]) {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

// DijkstraInto computes the minimum total edge weight from src to every
// node into dist (len N), reusing done and heap as scratch. It performs
// exactly the relaxations Graph.Dijkstra performs, in the same order.
func (c *CSR) DijkstraInto(src int, dist []float64, done []bool, h *[]csrItem) {
	for i := range dist {
		dist[i] = Inf
		done[i] = false
	}
	dist[src] = 0
	*h = (*h)[:0]
	csrPush(h, csrItem{node: int32(src)})
	for len(*h) > 0 {
		u := csrPop(h).node
		if done[u] {
			continue
		}
		done[u] = true
		for i := c.off[u]; i < c.off[u+1]; i++ {
			v := c.dst[i]
			if nd := dist[u] + c.wts[i]; nd < dist[v] {
				dist[v] = nd
				csrPush(h, csrItem{node: v, dist: nd})
			}
		}
	}
}

// AllPairsDijkstra returns the full weighted distance matrix. The rows
// share one flat backing array (n²+n allocations become 2).
func (c *CSR) AllPairsDijkstra() [][]float64 {
	out, flat := flatMatrix(c.n)
	done := make([]bool, c.n)
	h := make([]csrItem, 0, c.n)
	for u := 0; u < c.n; u++ {
		c.DijkstraInto(u, flat[u*c.n:(u+1)*c.n], done, &h)
	}
	return out
}

// HopsInto computes minimum hop counts from src into dist (len N) by
// breadth-first search, reusing queue as scratch.
func (c *CSR) HopsInto(src int, dist []float64, queue *[]int32) {
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	q := (*queue)[:0]
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		for i := c.off[u]; i < c.off[u+1]; i++ {
			v := c.dst[i]
			if dist[v] == Inf {
				dist[v] = dist[u] + 1
				q = append(q, v)
			}
		}
	}
	*queue = q
}

// AllPairsHops returns the matrix of minimum hop counts, flat-backed.
func (c *CSR) AllPairsHops() [][]float64 {
	out, flat := flatMatrix(c.n)
	queue := make([]int32, 0, c.n)
	for u := 0; u < c.n; u++ {
		c.HopsInto(u, flat[u*c.n:(u+1)*c.n], &queue)
	}
	return out
}

// flatMatrix returns an n×n matrix whose rows view one backing slice.
func flatMatrix(n int) ([][]float64, []float64) {
	flat := make([]float64, n*n)
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n]
	}
	return out, flat
}
