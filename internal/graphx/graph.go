// Package graphx provides the weighted-graph machinery that underpins every
// qubit-allocation and qubit-movement policy in this repository: shortest
// paths by hop count and by arbitrary edge weight, hop-constrained shortest
// paths (for the Maximum Additional Hops limit of VQM), all-pairs distance
// matrices, node strength, k-core decomposition, and search for the
// connected k-subgraph with the highest aggregate node strength.
//
// Graphs are small (NISQ machines have tens of qubits), so the
// implementations favor clarity and exactness over asymptotic tricks;
// everything is deterministic.
package graphx

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an undirected graph with float64 edge weights. Nodes are the
// integers [0, N). Parallel edges are not allowed; re-adding an edge
// overwrites its weight. The zero Graph is not usable; construct with New.
type Graph struct {
	n   int
	adj []map[int]float64 // adj[u][v] = weight
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graphx: negative node count %d", n))
	}
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = make(map[int]float64)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts (or updates) the undirected edge u–v with weight w.
// Self-loops are rejected.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graphx: self-loop on node %d", u))
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
}

// RemoveEdge deletes the undirected edge u–v if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// HasEdge reports whether u–v is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the weight of edge u–v and whether the edge exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	w, ok := g.adj[u][v]
	return w, ok
}

// SetWeight is an alias for AddEdge, provided for call-site readability when
// the edge is known to exist already.
func (g *Graph) SetWeight(u, v int, w float64) { g.AddEdge(u, v, w) }

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Neighbors returns the neighbors of u in ascending order. The slice is
// freshly allocated on each call.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edge is an undirected edge with U < V and its weight.
type Edge struct {
	U, V int
	W    float64
}

// Edges returns every undirected edge exactly once (U < V), ordered by
// (U, V) for determinism.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += len(g.adj[u])
	}
	return total / 2
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			c.adj[u][v] = w
		}
	}
	return c
}

// Map returns a new graph with every edge weight replaced by f(w).
func (g *Graph) Map(f func(w float64) float64) *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			c.adj[u][v] = f(w)
		}
	}
	return c
}

// NodeStrength returns the strength (weighted degree) of node u:
// the sum of the weights of its incident edges.
func (g *Graph) NodeStrength(u int) float64 {
	g.check(u)
	s := 0.0
	for _, w := range g.adj[u] {
		s += w
	}
	return s
}

// Strengths returns the strength of every node.
func (g *Graph) Strengths() []float64 {
	out := make([]float64, g.n)
	for u := 0; u < g.n; u++ {
		out[u] = g.NodeStrength(u)
	}
	return out
}

// Connected reports whether the subgraph induced by nodes (or the whole
// graph when nodes is nil) is connected. An empty node set is considered
// connected.
func (g *Graph) Connected(nodes []int) bool {
	var in []bool
	var start, want int
	if nodes == nil {
		if g.n == 0 {
			return true
		}
		in = nil
		start = 0
		want = g.n
	} else {
		if len(nodes) == 0 {
			return true
		}
		in = make([]bool, g.n)
		for _, u := range nodes {
			g.check(u)
			in[u] = true
		}
		start = nodes[0]
		want = len(nodes)
	}
	seen := make([]bool, g.n)
	stack := []int{start}
	seen[start] = true
	count := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for v := range g.adj[u] {
			if seen[v] || (in != nil && !in[v]) {
				continue
			}
			seen[v] = true
			stack = append(stack, v)
		}
	}
	return count == want
}

// Inf is the distance reported between disconnected node pairs.
var Inf = math.Inf(1)

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graphx: node %d out of range [0,%d)", u, g.n))
	}
}
