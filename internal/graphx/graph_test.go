package graphx

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmptyGraph(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges() = %d, want 0", g.NumEdges())
	}
	if len(g.Edges()) != 0 {
		t.Fatalf("Edges() non-empty on fresh graph")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeSymmetric(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2, 1.5)
	w, ok := g.Weight(2, 0)
	if !ok || w != 1.5 {
		t.Fatalf("Weight(2,0) = %v,%v; want 1.5,true", w, ok)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edge not symmetric")
	}
}

func TestAddEdgeOverwrites(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 9)
	if w, _ := g.Weight(0, 1); w != 9 {
		t.Fatalf("weight = %v, want 9 after overwrite", w)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1, 1)
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.RemoveEdge(1, 0)
	if g.HasEdge(0, 1) {
		t.Fatal("edge survived removal")
	}
	g.RemoveEdge(0, 1) // removing absent edge is a no-op
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) {
		t.Fatal("out-of-range HasEdge returned true")
	}
	if _, ok := g.Weight(7, 0); ok {
		t.Fatal("out-of-range Weight returned ok")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(2, 3, 1)
	want := []int{0, 3, 4}
	if got := g.Neighbors(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(2) = %v, want %v", got, want)
	}
	if g.Degree(2) != 3 {
		t.Fatalf("Degree(2) = %d, want 3", g.Degree(2))
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1, 0.3)
	g.AddEdge(0, 2, 0.1)
	g.AddEdge(0, 1, 0.2)
	want := []Edge{{0, 1, 0.2}, {0, 2, 0.1}, {1, 3, 0.3}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges() = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 5)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone affected original")
	}
	if w, _ := c.Weight(0, 1); w != 1 {
		t.Fatal("clone lost original edge")
	}
}

func TestMapTransformsWeights(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0.25)
	g.AddEdge(1, 2, 0.5)
	m := g.Map(func(w float64) float64 { return 2 * w })
	if w, _ := m.Weight(0, 1); w != 0.5 {
		t.Fatalf("mapped weight = %v, want 0.5", w)
	}
	if w, _ := g.Weight(0, 1); w != 0.25 {
		t.Fatal("Map mutated the source graph")
	}
}

func TestNodeStrength(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0.9)
	g.AddEdge(0, 2, 0.8)
	g.AddEdge(2, 3, 0.7)
	if s := g.NodeStrength(0); math.Abs(s-1.7) > 1e-12 {
		t.Fatalf("NodeStrength(0) = %v, want 1.7", s)
	}
	if s := g.NodeStrength(3); math.Abs(s-0.7) > 1e-12 {
		t.Fatalf("NodeStrength(3) = %v, want 0.7", s)
	}
	strengths := g.Strengths()
	if len(strengths) != 4 {
		t.Fatalf("Strengths() len = %d, want 4", len(strengths))
	}
	if math.Abs(strengths[2]-1.5) > 1e-12 {
		t.Fatalf("Strengths()[2] = %v, want 1.5", strengths[2])
	}
}

func TestConnected(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	if g.Connected(nil) {
		t.Fatal("whole graph reported connected despite two components")
	}
	if !g.Connected([]int{0, 1, 2}) {
		t.Fatal("{0,1,2} should be connected")
	}
	if g.Connected([]int{0, 1, 3}) {
		t.Fatal("{0,1,3} should be disconnected")
	}
	if !g.Connected([]int{}) || !g.Connected([]int{2}) {
		t.Fatal("empty and singleton sets should be connected")
	}
}

func TestConnectedEmptyGraph(t *testing.T) {
	if !New(0).Connected(nil) {
		t.Fatal("empty graph should be connected")
	}
}

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestHopDistancesPath(t *testing.T) {
	g := path(5)
	d := g.HopDistances(0)
	for i := 0; i < 5; i++ {
		if d[i] != float64(i) {
			t.Fatalf("hop dist to %d = %v, want %d", i, d[i], i)
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d := g.HopDistances(0)
	if !math.IsInf(d[2], 1) {
		t.Fatalf("unreachable node distance = %v, want +Inf", d[2])
	}
}

func TestAllPairsHopsSymmetric(t *testing.T) {
	g := path(6)
	m := g.AllPairsHops()
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			if m[u][v] != m[v][u] {
				t.Fatalf("hop matrix asymmetric at (%d,%d)", u, v)
			}
		}
	}
}

func TestDijkstraPrefersCheaperLongerRoute(t *testing.T) {
	// Figure 1 of the paper: direct 2-hop route A-B-C is worse than the
	// 3-hop route A-E-D-C when weights encode failure cost.
	g := New(5) // A=0 B=1 C=2 D=3 E=4
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(0, 4, 1)
	g.AddEdge(4, 3, 1)
	g.AddEdge(3, 2, 1)
	pathN, w, ok := g.ShortestPath(0, 2)
	if !ok {
		t.Fatal("no path found")
	}
	if w != 3 {
		t.Fatalf("weight = %v, want 3", w)
	}
	if want := []int{0, 4, 3, 2}; !reflect.DeepEqual(pathN, want) {
		t.Fatalf("path = %v, want %v", pathN, want)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	if _, _, ok := g.ShortestPath(0, 3); ok {
		t.Fatal("found path to unreachable node")
	}
	dist, prev := g.Dijkstra(0)
	if !math.IsInf(dist[3], 1) || prev[3] != -1 {
		t.Fatal("unreachable node has finite dist or predecessor")
	}
}

func TestDijkstraNegativeWeightPanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	g.Dijkstra(0)
}

func TestDijkstraSelfDistanceZero(t *testing.T) {
	g := path(3)
	dist, _ := g.Dijkstra(1)
	if dist[1] != 0 {
		t.Fatalf("dist[src] = %v, want 0", dist[1])
	}
}

func TestConstrainedDijkstraRespectsHopLimit(t *testing.T) {
	// Cheap route needs 3 hops; expensive direct route needs 1.
	g := New(4)
	g.AddEdge(0, 3, 10)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)

	dist, paths := g.ConstrainedDijkstra(0, 3)
	if dist[3] != 3 {
		t.Fatalf("maxHops=3: dist = %v, want 3 (cheap route)", dist[3])
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(paths[3], want) {
		t.Fatalf("maxHops=3: path = %v, want %v", paths[3], want)
	}

	dist, paths = g.ConstrainedDijkstra(0, 1)
	if dist[3] != 10 {
		t.Fatalf("maxHops=1: dist = %v, want 10 (forced direct)", dist[3])
	}
	if want := []int{0, 3}; !reflect.DeepEqual(paths[3], want) {
		t.Fatalf("maxHops=1: path = %v, want %v", paths[3], want)
	}

	dist, _ = g.ConstrainedDijkstra(0, 0)
	if !math.IsInf(dist[3], 1) {
		t.Fatalf("maxHops=0: dist = %v, want Inf", dist[3])
	}
	if dist[0] != 0 {
		t.Fatalf("maxHops=0: self dist = %v, want 0", dist[0])
	}
}

func TestConstrainedDijkstraMatchesUnconstrainedWhenLoose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(6)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.45 {
					g.AddEdge(u, v, 0.1+rng.Float64())
				}
			}
		}
		free, _ := g.Dijkstra(0)
		limited, _ := g.ConstrainedDijkstra(0, n) // n hops can never bind
		for v := 0; v < n; v++ {
			if math.Abs(free[v]-limited[v]) > 1e-9 &&
				!(math.IsInf(free[v], 1) && math.IsInf(limited[v], 1)) {
				t.Fatalf("trial %d node %d: unconstrained %v != loose-constrained %v",
					trial, v, free[v], limited[v])
			}
		}
	}
}

func TestDijkstraTriangleInequalityProperty(t *testing.T) {
	// Property: for random graphs, dist(a,c) ≤ dist(a,b) + dist(b,c).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v, rng.Float64()+0.01)
				}
			}
		}
		m := g.AllPairsDijkstra()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if m[a][c] > m[a][b]+m[b][c]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(9)
		g := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(u, v, rng.Float64())
				}
			}
		}
		m := g.AllPairsDijkstra()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				du, dv := m[u][v], m[v][u]
				if math.IsInf(du, 1) != math.IsInf(dv, 1) {
					return false
				}
				if !math.IsInf(du, 1) && math.Abs(du-dv) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathEndpoints(t *testing.T) {
	g := path(4)
	p, w, ok := g.ShortestPath(0, 3)
	if !ok || w != 3 {
		t.Fatalf("ShortestPath = %v,%v,%v", p, w, ok)
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	p, w, ok = g.ShortestPath(2, 2)
	if !ok || w != 0 || len(p) != 1 || p[0] != 2 {
		t.Fatalf("trivial path = %v,%v,%v", p, w, ok)
	}
}
