package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestBarsBasics(t *testing.T) {
	out := Bars("chart", []string{"a", "bb"}, []float64{1, 2}, 10, 0)
	if !strings.Contains(out, "chart") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	// The larger value fills the full width.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
}

func TestBarsReferenceMarker(t *testing.T) {
	out := Bars("", []string{"x"}, []float64{0.5}, 20, 1.0)
	if !strings.Contains(out, "|") {
		t.Fatalf("reference marker missing: %q", out)
	}
	// Bar reaching the reference merges into '+'.
	out = Bars("", []string{"x"}, []float64{2}, 20, 2)
	if !strings.Contains(out, "+") {
		t.Fatalf("merged marker missing: %q", out)
	}
}

func TestBarsHandlesDegenerateValues(t *testing.T) {
	out := Bars("", []string{"neg", "zero"}, []float64{-1, 0}, 10, 0)
	if strings.Contains(out, "#") {
		t.Fatalf("non-positive values drew bars: %q", out)
	}
}

func TestBarsDefaultWidthAndNaN(t *testing.T) {
	// width <= 0 falls back to 50 columns.
	out := Bars("", []string{"x"}, []float64{1}, 0, 0)
	if !strings.Contains(out, strings.Repeat("#", 50)) {
		t.Fatalf("default width not applied: %q", out)
	}
	// NaN renders as an empty bar instead of corrupting the layout, and
	// an all-degenerate chart (maxVal clamped to 1) still renders.
	out = Bars("", []string{"nan", "zero"}, []float64{math.NaN(), 0}, 10, 0)
	if strings.Contains(out, "#") {
		t.Fatalf("degenerate values drew bars: %q", out)
	}
	// A reference beyond every value clamps its marker to the last column.
	out = Bars("", []string{"x"}, []float64{0.1}, 10, 0.0000001)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(lines))
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels/values did not panic")
		}
	}()
	Bars("", []string{"a"}, []float64{1, 2}, 10, 0)
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length = %d runes, want 4", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty string")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series should render minimum glyphs: %q", flat)
		}
	}
	// A descending series exercises the min-update branch and still maps
	// its extremes to the extreme glyphs.
	desc := []rune(Sparkline([]float64{3, 2, 1, 0}))
	if desc[0] != '█' || desc[3] != '▁' {
		t.Fatalf("descending sparkline extremes wrong: %q", string(desc))
	}
}

// failWriter fails every write, forcing the csv writer's buffered
// output to surface errors on large (buffer-exceeding) fields.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink failed") }

func TestWriteCSVErrors(t *testing.T) {
	big := strings.Repeat("x", 1<<16) // exceeds the csv writer's buffer
	if err := WriteCSV(failWriter{}, []string{big}, nil); err == nil {
		t.Fatal("header write to failing sink should error")
	}
	if err := WriteCSV(failWriter{}, []string{"a"}, [][]string{{big}}); err == nil {
		t.Fatal("row write to failing sink should error")
	}
	if err := WriteCSV(failWriter{}, []string{"a"}, [][]string{{"1"}}); err == nil {
		t.Fatal("flush to failing sink should error")
	}
}

func TestWriteJSONError(t *testing.T) {
	if err := WriteJSON(failWriter{}, map[string]int{"k": 1}); err == nil {
		t.Fatal("json write to failing sink should error")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "x,y"}})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "a,b\n1,2\n") {
		t.Fatalf("csv = %q", got)
	}
	if !strings.Contains(got, "\"x,y\"") {
		t.Fatalf("comma not quoted: %q", got)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"k": 1}); err != nil {
		t.Fatal(err)
	}
	var back map[string]int
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back["k"] != 1 {
		t.Fatalf("round trip = %v", back)
	}
	if !strings.Contains(buf.String(), "  ") {
		t.Fatal("output not indented")
	}
}
