// Package report renders experiment results for terminals and exports
// them for plotting: horizontal ASCII bar charts (the repo's stand-in for
// the paper's matplotlib figures), sparklines for time series, CSV, and
// indented JSON.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Bars renders a horizontal bar chart: one row per label, bars scaled to
// width characters at the maximum value. A reference value > 0 draws a
// '|' marker at its position on each row (e.g. the 1.0x baseline of a
// relative-PST chart).
func Bars(title string, labels []string, values []float64, width int, reference float64) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("report: %d labels for %d values", len(labels), len(values)))
	}
	if width <= 0 {
		width = 50
	}
	maxVal := reference
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, l := range labels {
		v := values[i]
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		n := int(v / maxVal * float64(width))
		if n > width {
			n = width
		}
		row := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if reference > 0 {
			pos := int(reference / maxVal * float64(width))
			if pos >= width {
				pos = width - 1
			}
			if row[pos] == ' ' {
				row[pos] = '|'
			} else {
				row[pos] = '+'
			}
		}
		fmt.Fprintf(&b, "%-*s %s %.2f\n", labelW, l, row, values[i])
	}
	return b.String()
}

// sparkGlyphs are the eight block heights of a sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a compact one-line chart of the series, scaled
// between its min and max.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkGlyphs)-1))
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// WriteCSV writes header + rows as CSV.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
