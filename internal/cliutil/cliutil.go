// Package cliutil centralizes validation of the flag values shared by
// the repository's binaries (repro, nisqc, calgen, nisqd). Before it
// existed each binary let bad values fall through to confusing
// downstream behavior: a negative -trials was silently replaced by the
// simulator's default budget, a negative -timeout produced a context
// that expired before the first unit started, and a negative -days was
// silently ignored. Every binary now rejects such values up front with
// one consistent message.
package cliutil

import (
	"errors"
	"fmt"
	"time"
)

// Bounds for the shared flags. The maxima are far above any sensible
// run (the paper's full budget is 1M trials) and exist so a typo like
// -trials 2000000000000 fails fast instead of running for a week.
const (
	MaxTrials  = 100_000_000
	MaxWorkers = 65_536
	MaxTimeout = 24 * time.Hour
	MaxDays    = 10_000
)

// Trials validates a Monte-Carlo trial budget: it must be positive and
// at most MaxTrials. name is the flag name used in the message.
func Trials(name string, n int) error {
	if n <= 0 {
		return fmt.Errorf("-%s must be positive (got %d)", name, n)
	}
	if n > MaxTrials {
		return fmt.Errorf("-%s too large (got %d, max %d)", name, n, MaxTrials)
	}
	return nil
}

// Workers validates a worker-count flag. The pool contract gives every
// value a meaning — positive is a literal count, 0 is one per CPU, and
// negative forces serial execution — so only absurd magnitudes are
// rejected.
func Workers(name string, n int) error {
	if n > MaxWorkers {
		return fmt.Errorf("-%s too large (got %d, max %d)", name, n, MaxWorkers)
	}
	return nil
}

// Timeout validates a duration flag where 0 means "no limit": negative
// durations (a context that expires immediately) and durations beyond
// MaxTimeout are rejected.
func Timeout(name string, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("-%s must not be negative (got %v)", name, d)
	}
	if d > MaxTimeout {
		return fmt.Errorf("-%s too large (got %v, max %v)", name, d, MaxTimeout)
	}
	return nil
}

// Days validates an observation-day count where 0 means "use the device
// default".
func Days(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("-%s must not be negative (got %d)", name, n)
	}
	if n > MaxDays {
		return fmt.Errorf("-%s too large (got %d, max %d)", name, n, MaxDays)
	}
	return nil
}

// NonNegative validates a flag where 0 is meaningful ("disabled") but
// negative values are not (nisqd's -cache-entries).
func NonNegative(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("-%s must not be negative (got %d)", name, n)
	}
	return nil
}

// Positive validates a flag that must be strictly positive (nisqd's
// -max-inflight and -cache-entries style limits).
func Positive(name string, n int) error {
	if n <= 0 {
		return fmt.Errorf("-%s must be positive (got %d)", name, n)
	}
	return nil
}

// All joins the non-nil errors of a validation batch, so a binary can
// report every bad flag in one shot instead of one per invocation.
func All(errs ...error) error {
	return errors.Join(errs...)
}
