package cliutil

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTrials(t *testing.T) {
	cases := []struct {
		n  int
		ok bool
	}{
		{1, true},
		{100000, true},
		{MaxTrials, true},
		{0, false},
		{-5, false},
		{MaxTrials + 1, false},
	}
	for _, tc := range cases {
		err := Trials("trials", tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("Trials(%d) = %v, want ok=%v", tc.n, err, tc.ok)
		}
	}
	if err := Trials("trials", -1); err == nil || !strings.Contains(err.Error(), "-trials") {
		t.Errorf("message should name the flag: %v", err)
	}
}

func TestWorkers(t *testing.T) {
	cases := []struct {
		n  int
		ok bool
	}{
		{0, true},     // one per CPU
		{-1, true},    // serial
		{-100, true},  // serial (any negative)
		{16, true},
		{MaxWorkers, true},
		{MaxWorkers + 1, false},
	}
	for _, tc := range cases {
		err := Workers("workers", tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("Workers(%d) = %v, want ok=%v", tc.n, err, tc.ok)
		}
	}
}

func TestTimeout(t *testing.T) {
	cases := []struct {
		d  time.Duration
		ok bool
	}{
		{0, true}, // no limit
		{time.Second, true},
		{MaxTimeout, true},
		{-time.Second, false},
		{MaxTimeout + 1, false},
	}
	for _, tc := range cases {
		err := Timeout("timeout", tc.d)
		if (err == nil) != tc.ok {
			t.Errorf("Timeout(%v) = %v, want ok=%v", tc.d, err, tc.ok)
		}
	}
}

func TestDays(t *testing.T) {
	cases := []struct {
		n  int
		ok bool
	}{
		{0, true}, // device default
		{52, true},
		{MaxDays, true},
		{-1, false},
		{MaxDays + 1, false},
	}
	for _, tc := range cases {
		err := Days("days", tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("Days(%d) = %v, want ok=%v", tc.n, err, tc.ok)
		}
	}
}

func TestPositive(t *testing.T) {
	if err := Positive("max-inflight", 1); err != nil {
		t.Errorf("Positive(1) = %v", err)
	}
	if err := Positive("max-inflight", 0); err == nil {
		t.Error("Positive(0) accepted")
	}
}

func TestAll(t *testing.T) {
	if err := All(nil, nil); err != nil {
		t.Errorf("All(nil, nil) = %v", err)
	}
	e1 := Trials("trials", -1)
	e2 := Timeout("timeout", -time.Second)
	joined := All(nil, e1, e2, nil)
	if joined == nil {
		t.Fatal("All dropped errors")
	}
	if !errors.Is(joined, e1) || !errors.Is(joined, e2) {
		t.Errorf("All should join both errors: %v", joined)
	}
	if !strings.Contains(joined.Error(), "-trials") || !strings.Contains(joined.Error(), "-timeout") {
		t.Errorf("joined message should mention both flags: %v", joined)
	}
}
