package sim

import (
	"math"
	"math/bits"
	"sync/atomic"

	"vaq/internal/gate"
)

// This file implements the packed Monte-Carlo kernel: 64 trials per
// machine word. Each error source's Bernoulli fault draw becomes a 64-bit
// failure mask, masks are OR-ed into a per-word `failed` accumulator, and
// first-failure attribution (gate vs readout vs coherence) falls out of
// mask algebra plus bits.OnesCount64 — the bit-parallel restatement of
// the scalar kernel's "first error class wins" walk.
//
// Three observations make the kernel fast without approximating anything:
//
//   - Class aggregation. The Outcome only observes a trial's
//     *first-failure class*, never which individual operation fired. Per
//     lane, "fails somewhere among class c's ops" is Bernoulli
//     P_c = 1 − Π(1−pᵢ), and the three class indicators are independent
//     (disjoint operation sets), so the whole error model collapses to at
//     most three mask rows per word — one per class — regardless of
//     circuit depth.
//
//   - Exact overlap resolution. A lane faulting in several classes must
//     attribute to whichever class faulted *first in circuit order*, and
//     with interleaved classes (mid-circuit measurement) that is not a
//     fixed priority. But conditioned on a lane's fault pattern S (the
//     subset of classes that fired), the first-fault class is an iid
//     categorical with probabilities computable in closed form from the
//     ordered operation list by Möbius inversion over class subsets (see
//     buildSplits). Overlap lanes are counted per pattern with popcounts
//     and split with variable-n binomial samplers — no per-lane work.
//
//   - Count-first mask sampling. A row's 64 iid Bernoulli(P) lane draws
//     are sampled as a Binomial(64, P) fault count (a Walker alias table,
//     one uniform per word) followed by a uniform placement of that many
//     distinct lanes — the two-stage factorization of an iid Bernoulli
//     vector. Rows below sparseRowCut skip the table entirely and run a
//     geometric skip-ahead over the row's flattened (lane × word)
//     Bernoulli grid, the regime the paper's ~1e-3 error rates live in;
//     denser rows use the direct alias draw so they stay exact too.
//
// Every stage samples the scalar model's distribution exactly (the
// statistical-equivalence suite in packed_test.go cross-checks packed vs
// scalar vs analytic, and the split probabilities are unit-tested against
// brute-force enumeration), but the packed stream consumes randomness in
// a different order, so packed and scalar outcomes agree statistically,
// not byte for byte. Within the packed kernel the contract is as strict
// as the scalar one: per-block streams are seeded from (cfg.Seed,
// blockIndex), making the Outcome a pure function of (model, Seed,
// Trials) at any worker count.

// packedClass indexes the failure-attribution counters; the values mirror
// the scalar kernel's readout-vs-everything-else split plus coherence.
type packedClass uint8

const (
	classGate packedClass = iota
	classReadout
	classCoherence
)

// sparseRowCut is the row probability below which the kernel samples by
// geometric skip-ahead instead of an alias table: under 64·P ≈ 0.5
// expected faults per word, the skip's one-uniform fast path wins.
const sparseRowCut = 1.0 / 128

// packedRow is one class-aggregate error source: the per-lane probability
// of at least one failure among the class's operations, plus the sampler
// prepared for it.
type packedRow struct {
	class packedClass
	p     float64
	// tbl samples the Binomial(64, p) fault count; nil for sparse rows.
	tbl *binomAlias
	// invLogQ = 1 / ln(1−p) drives the sparse rows' geometric skip-ahead:
	// gap = ⌊ln(u) · invLogQ⌋ (see sparseNext).
	invLogQ float64
}

// packedPlan is the packed kernel's compiled error model: up to one row
// per class, plus the overlap-split samplers.
type packedPlan struct {
	rows []packedRow
	// Overlap splits, by fault pattern: given n lanes whose pattern is
	// exactly {gate, readout}, gr samples how many attribute to gate
	// (the rest to readout), and so on. The three-class pattern splits in
	// two stages: grc1 samples the gate share, grc2 the readout share of
	// the remainder.
	gr, gc, rc, grc1, grc2 binomFamily
}

// buildPackedPlan aggregates the prepared per-op error model by class and
// precomputes the overlap-split probabilities.
func buildPackedPlan(gateErr []float64, gateClass []gate.ErrorClass, coh []float64) *packedPlan {
	// Per-class aggregate probabilities. Survival products are exact for
	// p ∈ [0, 1]; a certain failure zeroes its class's survival.
	var q [3]float64
	q[0], q[1], q[2] = 1, 1, 1
	for i, p := range gateErr {
		if p <= 0 {
			continue
		}
		c := classGate
		if gateClass[i] == gate.Readout {
			c = classReadout
		}
		q[c] *= 1 - p
	}
	for _, p := range coh {
		if p > 0 {
			q[classCoherence] *= 1 - p
		}
	}

	plan := &packedPlan{}
	tables := map[float64]*binomAlias{}
	var classP [3]float64
	for c := 0; c < 3; c++ {
		classP[c] = 1 - q[c]
		if classP[c] > 0 {
			plan.rows = append(plan.rows, makeRow(packedClass(c), classP[c], tables))
		}
	}
	plan.buildSplits(gateErr, gateClass, coh, classP)
	return plan
}

// buildSplits computes, for every overlap pattern S of fault classes, the
// conditional first-fault-class distribution π_S, walking the error model
// in circuit order so interleaved classes (mid-circuit measurement) are
// attributed exactly.
//
// Let f(V, c) = P(the trial's first faulting op has class c AND every
// faulting class lies in V):
//
//	f(V, c) = Π_{ops j ∉ V} (1−pⱼ) · Σ_{ops i of class c} pᵢ Π_{j<i, j ∈ V} (1−pⱼ)
//
// Möbius inversion over the subset lattice then isolates exact patterns:
//
//	P(first = c ∧ pattern = S) = Σ_{V ⊆ S} (−1)^{|S\V|} f(V, c)
//
// and π_S(c) is that, normalized over c ∈ S. The split samplers draw
// class shares of an n-lane pattern group as chained binomials.
//
// A pattern containing a class that never faults (classP 0) has
// probability exactly zero, but its Möbius sum cancels only to float
// rounding (~1e-17) — normalizing that noise would yield garbage q's, so
// impossible patterns' splits are pinned to 0 (they are never sampled).
func (plan *packedPlan) buildSplits(gateErr []float64, gateClass []gate.ErrorClass, coh []float64, classP [3]float64) {
	type op struct {
		p float64
		c packedClass
	}
	seq := make([]op, 0, len(gateErr)+len(coh))
	for i, p := range gateErr {
		if p <= 0 {
			continue
		}
		c := classGate
		if gateClass[i] == gate.Readout {
			c = classReadout
		}
		seq = append(seq, op{p, c})
	}
	for _, p := range coh {
		if p > 0 {
			seq = append(seq, op{p, classCoherence})
		}
	}

	// f[V][c] over the 8 class subsets V (bit c set ⇔ class c ∈ V).
	var f [8][3]float64
	for v := 1; v < 8; v++ {
		pref, alive := 1.0, 1.0
		var sum [3]float64
		for _, o := range seq {
			if v&(1<<o.c) != 0 {
				sum[o.c] += alive * o.p
				alive *= 1 - o.p
			} else {
				pref *= 1 - o.p
			}
		}
		for c := 0; c < 3; c++ {
			f[v][c] = pref * sum[c]
		}
	}
	// num(S, c): signed subset sum. V=0 contributes f=0.
	num := func(s int, c int) float64 {
		total := 0.0
		for v := s; v > 0; v = (v - 1) & s {
			if v&(1<<c) == 0 {
				continue
			}
			if (bits.OnesCount8(uint8(s)) - bits.OnesCount8(uint8(v))) % 2 == 0 {
				total += f[v][c]
			} else {
				total -= f[v][c]
			}
		}
		return total
	}
	possible := func(s int) bool {
		for c := 0; c < 3; c++ {
			if s&(1<<c) != 0 && classP[c] == 0 {
				return false
			}
		}
		return true
	}
	share := func(s int, a, b float64) float64 {
		if !possible(s) {
			return 0
		}
		if t := a + b; t > 0 {
			return math.Min(math.Max(a/t, 0), 1)
		}
		return 0
	}
	const g, r, c = 1 << classGate, 1 << classReadout, 1 << classCoherence
	plan.gr.q = share(g|r, num(g|r, 0), num(g|r, 1))
	plan.gc.q = share(g|c, num(g|c, 0), num(g|c, 2))
	plan.rc.q = share(r|c, num(r|c, 1), num(r|c, 2))
	ng, nr, nc := num(g|r|c, 0), num(g|r|c, 1), num(g|r|c, 2)
	plan.grc1.q = share(g|r|c, ng, nr+nc)
	plan.grc2.q = share(g|r|c, nr, nc)
}

func makeRow(class packedClass, p float64, tables map[float64]*binomAlias) packedRow {
	row := packedRow{class: class, p: p}
	if p < sparseRowCut {
		row.invLogQ = 1 / math.Log1p(-p)
		return row
	}
	tbl := tables[p]
	if tbl == nil {
		tbl = newBinomAlias(64, p)
		tables[p] = tbl
	}
	row.tbl = tbl
	return row
}

// runBlockPacked is the packed counterpart of runBlockScalar: one block of
// ≤ BlockSize trials laid out as 64 lanes per word. It runs in two
// passes. The fill pass streams each class row over the block's words,
// sampling that class's raw failure masks (fault count via alias table or
// geometric skip-ahead, then uniform lane placement). The combine pass
// walks the words once, ORs the class masks into the failed word, counts
// survivors, attributes single-class lanes with mask algebra, and splits
// each overlap pattern's popcount through the plan's exact binomial
// splitters.
//
// The fill pass drives the block's words as two fixed halves on two
// independently seeded generator streams, interleaved word by word. The
// point is instruction-level parallelism: one splitmix64 stream is a
// serial dependency chain — sample draw feeds placement draws feeds the
// next word's sample — and interleaving two independent chains lets the
// out-of-order core overlap them. The half split and stream seeding are
// pure functions of (block seed, word count), so the determinism
// contract (Outcome = f(model, Seed, Trials), any worker count) holds.
//
// A partial trailing word samples exactly like a full one — the stream
// layout is a pure function of word count — and its unused lanes are
// sliced off by the combine pass's active mask.
func (p *Prepared) runBlockPacked(seed int64, trials int) blockOutcome {
	// Three decorrelated streams: splitmix64 finalizes a hash of its
	// state, so distinct state offsets yield decorrelated sequences; a
	// quarter period apart they cannot overlap either.
	r1 := splitmix64(seed)
	r2 := splitmix64(uint64(seed) + 1<<63)
	r3 := splitmix64(uint64(seed) + 1<<62)
	nw := (trials + 63) / 64
	h := nw / 2
	var masks [3][BlockSize / 64]uint64
	pp := p.packed
	for i := range pp.rows {
		row := &pp.rows[i]
		buf := &masks[row.class]
		tbl := row.tbl
		if tbl == nil {
			// Sparse row: geometric skip-ahead over each half's flattened
			// lane grid — cost O(expected faults), not O(words).
			sparseFill(&r1, buf[:h], row.invLogQ)
			sparseFill(&r2, buf[h:nw], row.invLogQ)
			continue
		}
		for w := 0; w < h; w++ {
			u1 := r1.next()
			u2 := r2.next()
			hi1, lo1 := bits.Mul64(u1, 65)
			hi2, lo2 := bits.Mul64(u2, 65)
			hi1 &= 127
			hi2 &= 127
			n1 := int(hi1)
			if lo1 >= tbl.prob[hi1] {
				n1 = int(tbl.alias[hi1])
			}
			n2 := int(hi2)
			if lo2 >= tbl.prob[hi2] {
				n2 = int(tbl.alias[hi2])
			}
			if n1 != 0 {
				buf[w] = placeMask(&r1, n1)
			}
			if n2 != 0 {
				buf[h+w] = placeMask(&r2, n2)
			}
		}
		if nw&1 != 0 {
			if n := tbl.sample(&r2); n != 0 {
				buf[nw-1] = placeMask(&r2, n)
			}
		}
	}

	var counts [3]int
	succ := 0
	active := ^uint64(0)
	for w := 0; w < nw; w++ {
		if w == nw-1 {
			if rem := trials & 63; rem != 0 {
				active = uint64(1)<<uint(rem) - 1
			}
		}
		mg := masks[classGate][w] & active
		mr := masks[classReadout][w] & active
		mc := masks[classCoherence][w] & active
		succ += bits.OnesCount64(active &^ (mg | mr | mc))
		counts[classGate] += bits.OnesCount64(mg &^ mr &^ mc)
		counts[classReadout] += bits.OnesCount64(mr &^ mg &^ mc)
		counts[classCoherence] += bits.OnesCount64(mc &^ mg &^ mr)
		if n := bits.OnesCount64(mg & mr &^ mc); n != 0 {
			k := pp.gr.sample(&r3, n)
			counts[classGate] += k
			counts[classReadout] += n - k
		}
		if n := bits.OnesCount64(mg & mc &^ mr); n != 0 {
			k := pp.gc.sample(&r3, n)
			counts[classGate] += k
			counts[classCoherence] += n - k
		}
		if n := bits.OnesCount64(mr & mc &^ mg); n != 0 {
			k := pp.rc.sample(&r3, n)
			counts[classReadout] += k
			counts[classCoherence] += n - k
		}
		if n := bits.OnesCount64(mg & mr & mc); n != 0 {
			kg := pp.grc1.sample(&r3, n)
			kr := pp.grc2.sample(&r3, n-kg)
			counts[classGate] += kg
			counts[classReadout] += kr
			counts[classCoherence] += n - kg - kr
		}
	}
	return blockOutcome{
		successes: succ,
		gate:      counts[classGate],
		readout:   counts[classReadout],
		coherence: counts[classCoherence],
	}
}

// sparseFill sets each lane of buf's flattened grid with the row's
// per-lane fault probability via geometric skip-ahead.
func sparseFill(r *splitmix64, buf []uint64, invLogQ float64) {
	grid := len(buf) * 64
	for pos := sparseNext(r, 0, grid, invLogQ); pos < grid; pos = sparseNext(r, pos+1, grid, invLogQ) {
		buf[pos>>6] |= 1 << uint(pos&63)
	}
}

// sparseNext advances a geometric skip-ahead scan over a flattened
// Bernoulli(p) lane grid: given the first candidate position pos, it
// returns the next faulting position, or grid if the row has no further
// fault. The gap to the next fault is the inverse geometric CDF
// ⌊ln(u)/ln(1−p)⌋ with u uniform in (0, 1], compared against the
// remaining grid length before the float→int conversion so huge gaps
// (tiny p) cannot overflow.
func sparseNext(r *splitmix64, pos, grid int, invLogQ float64) int {
	g := math.Log(r.open()) * invLogQ
	if g >= float64(grid-pos) {
		return grid
	}
	return pos + int(g)
}

// placeMask returns a uniformly random mask with exactly n of 64 bits
// set. Strategies by regime (all exact, none distribution-approximating):
//
//	n > 32:  complement of a uniform (64−n)-subset
//	n ≤ 20:  rejection placement — draw uniform 6-bit lane indices
//	         (ten per generator word), skipping repeats, until n
//	         distinct lanes are set
//	n ≤ 32:  a uniform word walked to popcount n by uniform single-bit
//	         removals/insertions — each step maps a uniform k-subset to a
//	         uniform (k±1)-subset, so the endpoint is a uniform n-subset
//
// Both loops discard any 6-bit fields left unread when they finish; the
// discard is independent of the fields' values, so the consumed indices
// stay iid uniform.
func placeMask(r *splitmix64, n int) uint64 {
	if n > 32 {
		return ^placeSmall(r, 64-n)
	}
	return placeSmall(r, n)
}

func placeSmall(r *splitmix64, n int) uint64 {
	if n >= 21 {
		m := r.next()
		k := bits.OnesCount64(m)
		for k != n {
			rw := r.next()
			for left := 10; left > 0 && k != n; left-- {
				b := uint64(1) << (rw & 63)
				rw >>= 6
				if k > n {
					if m&b != 0 {
						m &^= b
						k--
					}
				} else if m&b == 0 {
					m |= b
					k++
				}
			}
		}
		return m
	}
	var mask uint64
	for placed := 0; placed < n; {
		rw := r.next()
		for left := 10; left > 0 && placed < n; left-- {
			b := uint64(1) << (rw & 63)
			rw >>= 6
			if mask&b == 0 {
				mask |= b
				placed++
			}
		}
	}
	return mask
}

// binomFamily lazily caches Binomial(n, q) alias samplers for every lane
// count n ∈ [0, 64] at one fixed success probability q — the
// variable-size half of the overlap splits. Tables build on first use
// (most plans only ever touch the few n values their overlap popcounts
// concentrate on); a racing duplicate build stores an identical table, so
// the atomic pointers need no further synchronization.
type binomFamily struct {
	q   float64
	tbl [65]atomic.Pointer[binomAlias]
}

// sample draws Binomial(n, q).
func (bf *binomFamily) sample(r *splitmix64, n int) int {
	if n == 0 || bf.q <= 0 {
		return 0
	}
	if bf.q >= 1 {
		return n
	}
	t := bf.tbl[n].Load()
	if t == nil {
		t = newBinomAlias(n, bf.q)
		bf.tbl[n].Store(t)
	}
	return t.sample(r)
}

// binomAlias samples a Binomial(n, p) count in O(1) by Walker's alias
// method over the (padded) 65-outcome pmf. Thresholds are 64-bit, so the
// sampled distribution matches the float64 pmf to one part in 2⁶⁴ — far
// below the pmf's own rounding error. Arrays are padded to 128 so the
// masked index provably stays in bounds (no bounds check in the hot
// path).
type binomAlias struct {
	prob  [128]uint64
	alias [128]uint8
}

// lgFact[n] = ln(n!) for the binomial pmf, filled at init.
var lgFact [65]float64

func init() {
	for n := 2; n <= 64; n++ {
		lg, _ := math.Lgamma(float64(n + 1))
		lgFact[n] = lg
	}
}

func newBinomAlias(n int, p float64) *binomAlias {
	var pmf [65]float64
	switch {
	case p >= 1:
		pmf[n] = 1
	case p <= 0:
		pmf[0] = 1
	default:
		lp, lq := math.Log(p), math.Log1p(-p)
		sum := 0.0
		for k := 0; k <= n; k++ {
			pmf[k] = math.Exp(lgFact[n] - lgFact[k] - lgFact[n-k] + float64(k)*lp + float64(n-k)*lq)
			sum += pmf[k]
		}
		for k := 0; k <= n; k++ {
			pmf[k] /= sum
		}
	}

	t := &binomAlias{}
	const cols = 65
	var scaled [cols]float64
	var small, large []int
	for k := 0; k < cols; k++ {
		scaled[k] = pmf[k] * cols
		if scaled[k] < 1 {
			small = append(small, k)
		} else {
			large = append(large, k)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = uint64(scaled[s] * (1 << 63) * 2)
		t.alias[s] = uint8(l)
		scaled[l] += scaled[s] - 1
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers on either list have weight 1 up to rounding: always keep
	// their own column.
	for _, k := range large {
		t.prob[k] = ^uint64(0)
	}
	for _, k := range small {
		t.prob[k] = ^uint64(0)
	}
	return t
}

// sample draws one count: one uniform picks a column (top bits) and the
// within-column coin (low bits).
func (t *binomAlias) sample(r *splitmix64) int {
	u := r.next()
	hi, lo := bits.Mul64(u, 65)
	hi &= 127
	n := int(hi)
	if lo >= t.prob[hi] {
		n = int(t.alias[hi])
	}
	return n
}
