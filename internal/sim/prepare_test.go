package sim

import (
	"math"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/workloads"
)

// q20Compiled returns a realistically deep physical circuit (bv-16 under
// the baseline policy on the synthetic IBM-Q20) for determinism tests.
func q20Compiled(t *testing.T) (*device.Device, *circuit.Circuit) {
	t.Helper()
	arch := calib.Generate(calib.DefaultQ20Config(2019))
	d := device.MustNew(arch.Topo, arch.MustMean())
	comp, err := core.Compile(d, workloads.BV(16), core.Options{Policy: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	return d, comp.Routed.Physical
}

// TestWorkerCountInvariance is the determinism regression test: the same
// Config.Seed must yield a byte-identical Outcome — including the
// failure-attribution counts — at every worker count, because the RNG is
// derived per trial block, never per worker.
func TestWorkerCountInvariance(t *testing.T) {
	d, phys := q20Compiled(t)
	trials := 50000
	if testing.Short() {
		trials = 20000
	}
	base := Run(d, phys, Config{Trials: trials, Seed: 99, Workers: -1}) // serial reference
	for _, workers := range []int{1, 2, 3, 8} {
		got := Run(d, phys, Config{Trials: trials, Seed: 99, Workers: workers})
		if got != base {
			t.Fatalf("Workers=%d: outcome %+v != serial %+v", workers, got, base)
		}
	}
}

// TestParallelMatchesAnalytic extends the MC-vs-analytic cross-check to
// the parallel path: the sharded estimator must stay within 3 standard
// errors of the closed form.
func TestParallelMatchesAnalytic(t *testing.T) {
	d := uniformQ5(0.05)
	c := circuit.New("mc-par", 3).H(0).CX(0, 1).CX(1, 2).Swap(0, 1).MeasureAll()
	cfg := Config{Trials: 200000, Seed: 1, Workers: 8}
	analytic := AnalyticPST(d, c, cfg)
	out := Run(d, c, cfg)
	if math.Abs(out.PST-analytic) > 3*out.StdErr+1e-4 {
		t.Fatalf("parallel MC PST %v vs analytic %v (stderr %v)", out.PST, analytic, out.StdErr)
	}
}

func TestPrepareReuseIsIdentical(t *testing.T) {
	d, phys := q20Compiled(t)
	cfg := Config{Trials: 30000, Seed: 7, Workers: 4}
	p := Prepare(d, phys, cfg)
	a := p.Run(cfg)
	b := p.Run(cfg)
	if a != b {
		t.Fatalf("repeated Run on one Prepared diverged: %+v vs %+v", a, b)
	}
	if direct := Run(d, phys, cfg); direct != a {
		t.Fatalf("Run = %+v, Prepared.Run = %+v", direct, a)
	}
}

func TestPrepareAnalyticMatchesAnalyticPST(t *testing.T) {
	d, phys := q20Compiled(t)
	for _, cfg := range []Config{{}, {DisableCoherence: true}, {CoherenceDuty: 0.2}} {
		want := AnalyticPST(d, phys, cfg)
		got := Prepare(d, phys, cfg).AnalyticPST()
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("cfg %+v: Prepared analytic %v, AnalyticPST %v", cfg, got, want)
		}
	}
	if dur := Prepare(d, phys, Config{}).Duration(); dur <= 0 {
		t.Fatal("prepared duration not positive")
	}
}

// TestDegenerateConfigs guards the clamping rules: tiny trial counts
// (below one block), absurd worker counts, and negative workers must all
// produce the same outcome as the serial reference.
func TestDegenerateConfigs(t *testing.T) {
	d := uniformQ5(0.05)
	c := circuit.New("tiny", 2).CX(0, 1).MeasureAll()
	for _, trials := range []int{1, 5, BlockSize - 1, BlockSize, BlockSize + 1} {
		ref := Run(d, c, Config{Trials: trials, Seed: 5, Workers: -1})
		if ref.Trials != trials {
			t.Fatalf("trials = %d, want %d", ref.Trials, trials)
		}
		for _, workers := range []int{0, 1, 64} {
			got := Run(d, c, Config{Trials: trials, Seed: 5, Workers: workers})
			if got != ref {
				t.Fatalf("trials=%d workers=%d: %+v != %+v", trials, workers, got, ref)
			}
		}
	}
}

func TestBlockSeedsDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for b := 0; b < 1000; b++ {
		seen[blockSeed(42, b)] = b
	}
	if len(seen) != 1000 {
		t.Fatalf("only %d distinct block seeds out of 1000", len(seen))
	}
	if blockSeed(1, 0) == blockSeed(2, 0) {
		t.Fatal("different run seeds share block-0 seed")
	}
}
