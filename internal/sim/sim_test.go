package sim

import (
	"math"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/topo"
	"vaq/internal/workloads"
)

func uniformQ5(e float64) *device.Device {
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = e
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.02
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	return device.MustNew(tp, s)
}

func TestAnalyticPSTSingleCNOT(t *testing.T) {
	d := uniformQ5(0.1)
	c := circuit.New("one", 2).CX(0, 1)
	got := AnalyticPST(d, c, Config{DisableCoherence: true})
	if math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("analytic PST = %v, want 0.9", got)
	}
}

func TestAnalyticPSTProductOfOps(t *testing.T) {
	d := uniformQ5(0.1)
	c := circuit.New("p", 2).H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
	want := 0.999 * 0.9 * 0.98 * 0.98
	got := AnalyticPST(d, c, Config{DisableCoherence: true})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("analytic PST = %v, want %v", got, want)
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	d := uniformQ5(0.05)
	c := circuit.New("mc", 3).H(0).CX(0, 1).CX(1, 2).Swap(0, 1).MeasureAll()
	cfg := Config{Trials: 200000, Seed: 1}
	analytic := AnalyticPST(d, c, cfg)
	out := Run(d, c, cfg)
	if math.Abs(out.PST-analytic) > 4*out.StdErr+1e-4 {
		t.Fatalf("MC PST %v vs analytic %v (stderr %v)", out.PST, analytic, out.StdErr)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	d := uniformQ5(0.05)
	c := circuit.New("det", 2).CX(0, 1).MeasureAll()
	a := Run(d, c, Config{Trials: 5000, Seed: 3})
	b := Run(d, c, Config{Trials: 5000, Seed: 3})
	if a.Successes != b.Successes {
		t.Fatal("same seed, different outcomes")
	}
	diff := Run(d, c, Config{Trials: 5000, Seed: 4})
	if a.Successes == diff.Successes && a.PST == diff.PST {
		// Extremely unlikely to coincide exactly for different seeds.
		t.Log("warning: different seeds coincided; acceptable but suspicious")
	}
}

func TestPerfectDeviceAlwaysSucceeds(t *testing.T) {
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	for q := 0; q < 5; q++ {
		s.T1Us[q], s.T2Us[q] = 1e9, 1e9 // effectively no decoherence
	}
	d := device.MustNew(tp, s)
	c := circuit.New("perfect", 2).H(0).CX(0, 1).MeasureAll()
	out := Run(d, c, Config{Trials: 2000, Seed: 1})
	if out.PST != 1 {
		t.Fatalf("PST on perfect device = %v, want 1", out.PST)
	}
	if out.GateFailures+out.ReadoutFailures+out.CoherenceFailures != 0 {
		t.Fatal("failures recorded on a perfect device")
	}
}

func TestFailureAttribution(t *testing.T) {
	// All error mass on readout: failures must be attributed to readout.
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	for q := 0; q < 5; q++ {
		s.T1Us[q], s.T2Us[q] = 1e9, 1e9
		s.Readout[q] = 0.5
	}
	d := device.MustNew(tp, s)
	c := circuit.New("r", 1).Measure(0, 0)
	out := Run(d, c, Config{Trials: 4000, Seed: 2})
	if out.ReadoutFailures == 0 || out.GateFailures != 0 || out.CoherenceFailures != 0 {
		t.Fatalf("attribution = %+v", out)
	}
	if math.Abs(out.PST-0.5) > 0.05 {
		t.Fatalf("PST = %v, want ≈0.5", out.PST)
	}
}

func TestCoherenceChargedOnlyWhenIdle(t *testing.T) {
	d := uniformQ5(0.0)
	// Qubit 2 idles for a long stretch between its first and last use;
	// qubits staying busy accumulate nothing.
	c := circuit.New("idle", 3)
	c.H(2)
	for i := 0; i < 50; i++ {
		c.H(0).H(1)
	}
	c.CX(1, 2)
	idle := IdleTimes(c)
	if idle[2] == 0 {
		t.Fatal("qubit 2 should accumulate idle time")
	}
	if idle[0] != 0 {
		t.Fatalf("busy qubit 0 accumulated idle %v", idle[0])
	}
	withCoh := AnalyticPST(d, c, Config{})
	noCoh := AnalyticPST(d, c, Config{DisableCoherence: true})
	if !(withCoh < noCoh) {
		t.Fatalf("coherence should reduce PST: %v vs %v", withCoh, noCoh)
	}
}

func TestIdleBeforeFirstGateNotCharged(t *testing.T) {
	c := circuit.New("late", 2)
	for i := 0; i < 30; i++ {
		c.H(0)
	}
	c.H(1) // qubit 1's first and last gate: no idle inside its window
	idle := IdleTimes(c)
	if idle[1] != 0 {
		t.Fatalf("qubit idle before first use charged: %v", idle[1])
	}
}

func TestGateErrorsDominateCoherenceForBV20(t *testing.T) {
	// Section 4.4: "for bv-20, the gate errors are 16x more likely to
	// cause system failures than the coherence errors." Our duty factor is
	// calibrated to land in that regime (same order of magnitude).
	arch := calib.Generate(calib.DefaultQ20Config(42))
	d := device.MustNew(arch.Topo, arch.MustMean())
	prog := workloads.BV(20)
	comp, err := core.Compile(d, prog, core.Options{Policy: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	b := AnalyticBreakdown(d, comp.Routed.Physical, Config{})
	if b.Coherence <= 0 {
		t.Fatal("coherence failure probability is zero; model inert")
	}
	ratio := (b.Gate + b.Readout) / b.Coherence
	if ratio < 6 || ratio > 40 {
		t.Fatalf("gate/coherence hazard ratio = %v, want ≈16 (same order)", ratio)
	}
	// The Monte Carlo run must also observe coherence failures.
	out := Run(d, comp.Routed.Physical, Config{Trials: 300000, Seed: 5})
	if out.CoherenceFailures == 0 {
		t.Fatal("MC never observed a coherence failure")
	}
}

func TestOutcomeTiming(t *testing.T) {
	d := uniformQ5(0.02)
	c := circuit.New("t", 2).H(0).CX(0, 1).MeasureAll()
	out := Run(d, c, Config{Trials: 1000, Seed: 1})
	// h, cx, measure are strictly sequential here, so the ASAP makespan
	// equals the layer-quantized duration.
	if out.Duration != c.Duration() {
		t.Fatalf("duration = %v, want %v", out.Duration, c.Duration())
	}
	if out.TrialLatency != out.Duration+DefaultResetOverhead {
		t.Fatalf("latency = %v", out.TrialLatency)
	}
	wantRate := out.PST / out.TrialLatency.Seconds()
	if math.Abs(out.SuccessesPerSecond-wantRate) > 1e-9 {
		t.Fatalf("rate = %v, want %v", out.SuccessesPerSecond, wantRate)
	}
}

func TestRunPanicsOnOversizedCircuit(t *testing.T) {
	d := uniformQ5(0.05)
	c := circuit.New("big", 9).H(8)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized circuit accepted")
		}
	}()
	Run(d, c, Config{Trials: 10})
}

func TestDefaultTrials(t *testing.T) {
	if (Config{}).trials() != 100000 {
		t.Fatal("default trials wrong")
	}
	if (Config{Trials: 7}).trials() != 7 {
		t.Fatal("explicit trials ignored")
	}
	if (Config{}).duty() != DefaultCoherenceDuty {
		t.Fatal("default duty wrong")
	}
	if (Config{CoherenceDuty: 0.2}).duty() != 0.2 {
		t.Fatal("explicit duty ignored")
	}
}

func TestCompiledPipelinePSTOrdering(t *testing.T) {
	// End-to-end sanity: on a skewed device, the full VQA+VQM pipeline
	// should deliver PST at least as good as the native compiler's by a
	// wide margin (Figure 13's 4-7x gap, loosely).
	arch := calib.Generate(calib.DefaultQ20Config(13))
	d := device.MustNew(arch.Topo, arch.MustMean())
	prog := workloads.BV(16)
	native, err := core.Compile(d, prog, core.Options{Policy: core.Native, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Compile(d, prog, core.Options{Policy: core.VQAVQM})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Trials: 100000, Seed: 11}
	pNative := Run(d, native.Routed.Physical, cfg).PST
	pFull := Run(d, full.Routed.Physical, cfg).PST
	if pFull <= pNative {
		t.Fatalf("VQA+VQM PST %v not above native %v", pFull, pNative)
	}
}

func TestIdleTimesEmptyCircuit(t *testing.T) {
	c := circuit.New("e", 3)
	for _, v := range IdleTimes(c) {
		if v != 0 {
			t.Fatal("empty circuit accumulated idle time")
		}
	}
}
