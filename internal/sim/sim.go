// Package sim estimates the Probability of a Successful Trial (PST) of a
// compiled (physical) circuit on a device, the paper's figure of merit for
// system-level reliability.
//
// Two estimators are provided and cross-checked in tests:
//
//   - Analytic: errors are independent events (the paper's Section 4.4
//     model), so PST is the product of per-operation success probabilities
//     times the per-qubit coherence retention factors.
//
//   - Monte Carlo: the fault-injection simulator of Figure 10. Each trial
//     walks the circuit drawing an independent Bernoulli failure per
//     operation (and per qubit for coherence); a trial succeeds when no
//     error fires. PST = successes / trials.
//
// Coherence model: a qubit accumulates decoherence exposure while it sits
// idle between its first and last operation. The per-qubit error
// probability is 1 − exp(−f·t/T1)·exp(−f·t/T2) with idle time t and duty
// factor f (CoherenceDuty). The default duty factor is fitted so that, for
// bv-20 on the synthetic IBM-Q20, gate errors are ≈16× more likely to kill
// a trial than coherence errors — the calibration point the paper states.
// Not every idle microsecond corrupts the measured outcome, which is why f
// is well below 1; the paper likewise treats coherence as a second-order
// term.
package sim

import (
	"math"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/schedule"
)

// DefaultCoherenceDuty is the fraction of idle wall-clock time charged
// against T1/T2 (see the package comment for its calibration).
const DefaultCoherenceDuty = 0.05

// DefaultResetOverhead is the per-trial latency added on top of circuit
// execution for qubit reset and readout turnaround; it enters trial-rate
// (STPT) computations only.
const DefaultResetOverhead = 10 * time.Microsecond

// BlockSize is the fixed Monte-Carlo shard width: trials are split into
// consecutive blocks of this many, each with an independently derived RNG
// stream (see blockSeed). Because the block structure depends only on the
// trial count — never on the worker count — a given (circuit, Config.Seed)
// pair produces a bit-identical Outcome whether the blocks run on one
// goroutine or many.
const BlockSize = 4096

// Monte-Carlo kernel names for Config.Kernel.
const (
	// KernelPacked is the bit-parallel kernel: 64 trials per machine word,
	// class-aggregated mask sampling (see packed.go). The default.
	KernelPacked = "packed"
	// KernelScalar is the original one-trial-at-a-time reference kernel,
	// kept build-tag-free for cross-checking and for callers that depend on
	// its historical byte-exact trial streams.
	KernelScalar = "scalar"
)

// ValidKernel reports whether s names a Monte-Carlo kernel ("" selects
// the default).
func ValidKernel(s string) bool {
	return s == "" || s == KernelPacked || s == KernelScalar
}

// Config controls a simulation.
type Config struct {
	// Trials for the Monte Carlo estimator (default 100000).
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds the goroutines simulating trial blocks: > 0 is taken
	// literally, 0 (the default) uses one worker per CPU, and < 0 forces
	// serial execution. The Outcome is identical at every setting.
	Workers int
	// Kernel selects the Monte-Carlo kernel: KernelPacked (the default,
	// also selected by ""), or KernelScalar for the reference path. The
	// two kernels sample the same distribution but consume randomness
	// differently, so their Outcomes agree statistically, not byte for
	// byte; within one kernel the Outcome is a pure function of
	// (error model, Seed, Trials) at any worker count.
	Kernel string
	// DisableCoherence turns off the decoherence model (gate and readout
	// errors only).
	DisableCoherence bool
	// CoherenceDuty overrides DefaultCoherenceDuty when > 0.
	CoherenceDuty float64
}

func (c Config) kernel() string {
	if c.Kernel == KernelScalar {
		return KernelScalar
	}
	return KernelPacked
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 100000
	}
	return c.Trials
}

func (c Config) duty() float64 {
	if c.CoherenceDuty > 0 {
		return c.CoherenceDuty
	}
	return DefaultCoherenceDuty
}

// Outcome reports a simulation.
type Outcome struct {
	Trials    int
	Successes int
	// PST is Successes / Trials.
	PST float64
	// StdErr is the binomial standard error of the PST estimate.
	StdErr float64
	// Failure attribution (first failing cause per failed trial).
	GateFailures      int
	ReadoutFailures   int
	CoherenceFailures int
	// Duration is the scheduled execution time of one trial, and
	// TrialLatency adds the reset overhead; SuccessesPerSecond is the
	// paper's STPT numerator rate: PST / TrialLatency.
	Duration           time.Duration
	TrialLatency       time.Duration
	SuccessesPerSecond float64
	// Kernel records which Monte-Carlo kernel produced this Outcome
	// (KernelPacked or KernelScalar).
	Kernel string
}

// AnalyticPST computes the closed-form PST of a physical circuit.
func AnalyticPST(d *device.Device, phys *circuit.Circuit, cfg Config) float64 {
	p := 1.0
	for _, g := range phys.Gates {
		p *= d.GateSuccess(g.Kind, g.Qubits)
	}
	if !cfg.DisableCoherence {
		for _, perr := range coherenceErrors(d, phys, cfg.duty()) {
			p *= 1 - perr
		}
	}
	return p
}

// Run executes the Monte Carlo fault-injection simulation. It is
// shorthand for Prepare(d, phys, cfg).Run(cfg); callers estimating the
// same compiled circuit repeatedly should Prepare once and reuse it.
func Run(d *device.Device, phys *circuit.Circuit, cfg Config) Outcome {
	return Prepare(d, phys, cfg).Run(cfg)
}

// Breakdown reports the expected number of failure events per trial in
// each error class (the hazard −Σ ln(success)). Hazards do not saturate
// like probabilities, so their ratio is the clean statement of the paper's
// "gate errors are 16x more likely to cause system failures than the
// coherence errors" calibration point.
type Breakdown struct {
	Gate, Readout, Coherence float64
}

// AnalyticBreakdown computes the per-class failure hazards in closed form.
func AnalyticBreakdown(d *device.Device, phys *circuit.Circuit, cfg Config) Breakdown {
	var b Breakdown
	for _, g := range phys.Gates {
		s := d.GateSuccess(g.Kind, g.Qubits)
		if g.Kind.Class() == gate.Readout {
			b.Readout += -math.Log(s)
		} else if s < 1 {
			b.Gate += -math.Log(s)
		}
	}
	if !cfg.DisableCoherence {
		for _, perr := range coherenceErrors(d, phys, cfg.duty()) {
			b.Coherence += -math.Log(1 - perr)
		}
	}
	return b
}

// coherenceErrors returns, per physical qubit, the probability of a
// decoherence error during the circuit: exposure is the idle time between
// the qubit's first and last scheduled operation, attenuated by the duty
// factor, charged against both T1 and T2.
func coherenceErrors(d *device.Device, phys *circuit.Circuit, duty float64) []float64 {
	return coherenceErrorsFromIdle(d, IdleTimes(phys), duty)
}

// coherenceErrorsFromIdle is coherenceErrors for an already-computed idle
// profile (Prepare reuses the ASAP schedule it needs anyway).
func coherenceErrorsFromIdle(d *device.Device, idle []time.Duration, duty float64) []float64 {
	out := make([]float64, len(idle))
	snap := d.Snapshot()
	for q := range out {
		if idle[q] <= 0 {
			continue
		}
		tUs := idle[q].Seconds() * 1e6 * duty
		retain := math.Exp(-tUs/snap.T1Us[q]) * math.Exp(-tUs/snap.T2Us[q])
		out[q] = 1 - retain
	}
	return out
}

// IdleTimes returns, for every qubit, its idle exposure under the ASAP
// schedule: the time between the qubit's first and last operation during
// which it holds state but executes nothing.
func IdleTimes(phys *circuit.Circuit) []time.Duration {
	return schedule.ASAP(phys).IdleTimes()
}
