// Package sim estimates the Probability of a Successful Trial (PST) of a
// compiled (physical) circuit on a device, the paper's figure of merit for
// system-level reliability.
//
// Two estimators are provided and cross-checked in tests:
//
//   - Analytic: errors are independent events (the paper's Section 4.4
//     model), so PST is the product of per-operation success probabilities
//     times the per-qubit coherence retention factors.
//
//   - Monte Carlo: the fault-injection simulator of Figure 10. Each trial
//     walks the circuit drawing an independent Bernoulli failure per
//     operation (and per qubit for coherence); a trial succeeds when no
//     error fires. PST = successes / trials.
//
// Coherence model: a qubit accumulates decoherence exposure while it sits
// idle between its first and last operation. The per-qubit error
// probability is 1 − exp(−f·t/T1)·exp(−f·t/T2) with idle time t and duty
// factor f (CoherenceDuty). The default duty factor is fitted so that, for
// bv-20 on the synthetic IBM-Q20, gate errors are ≈16× more likely to kill
// a trial than coherence errors — the calibration point the paper states.
// Not every idle microsecond corrupts the measured outcome, which is why f
// is well below 1; the paper likewise treats coherence as a second-order
// term.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/schedule"
)

// DefaultCoherenceDuty is the fraction of idle wall-clock time charged
// against T1/T2 (see the package comment for its calibration).
const DefaultCoherenceDuty = 0.05

// DefaultResetOverhead is the per-trial latency added on top of circuit
// execution for qubit reset and readout turnaround; it enters trial-rate
// (STPT) computations only.
const DefaultResetOverhead = 10 * time.Microsecond

// Config controls a simulation.
type Config struct {
	// Trials for the Monte Carlo estimator (default 100000).
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// DisableCoherence turns off the decoherence model (gate and readout
	// errors only).
	DisableCoherence bool
	// CoherenceDuty overrides DefaultCoherenceDuty when > 0.
	CoherenceDuty float64
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 100000
	}
	return c.Trials
}

func (c Config) duty() float64 {
	if c.CoherenceDuty > 0 {
		return c.CoherenceDuty
	}
	return DefaultCoherenceDuty
}

// Outcome reports a simulation.
type Outcome struct {
	Trials    int
	Successes int
	// PST is Successes / Trials.
	PST float64
	// StdErr is the binomial standard error of the PST estimate.
	StdErr float64
	// Failure attribution (first failing cause per failed trial).
	GateFailures      int
	ReadoutFailures   int
	CoherenceFailures int
	// Duration is the scheduled execution time of one trial, and
	// TrialLatency adds the reset overhead; SuccessesPerSecond is the
	// paper's STPT numerator rate: PST / TrialLatency.
	Duration           time.Duration
	TrialLatency       time.Duration
	SuccessesPerSecond float64
}

// AnalyticPST computes the closed-form PST of a physical circuit.
func AnalyticPST(d *device.Device, phys *circuit.Circuit, cfg Config) float64 {
	p := 1.0
	for _, g := range phys.Gates {
		p *= d.GateSuccess(g.Kind, g.Qubits)
	}
	if !cfg.DisableCoherence {
		for _, perr := range coherenceErrors(d, phys, cfg.duty()) {
			p *= 1 - perr
		}
	}
	return p
}

// Run executes the Monte Carlo fault-injection simulation.
func Run(d *device.Device, phys *circuit.Circuit, cfg Config) Outcome {
	if phys.NumQubits > d.NumQubits() {
		panic(fmt.Sprintf("sim: circuit uses %d qubits, device has %d", phys.NumQubits, d.NumQubits()))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := cfg.trials()

	// Precompute per-gate failure probabilities once.
	gateErr := make([]float64, len(phys.Gates))
	gateClass := make([]gate.ErrorClass, len(phys.Gates))
	for i, g := range phys.Gates {
		gateErr[i] = 1 - d.GateSuccess(g.Kind, g.Qubits)
		gateClass[i] = g.Kind.Class()
	}
	var coh []float64
	if !cfg.DisableCoherence {
		coh = coherenceErrors(d, phys, cfg.duty())
	}

	out := Outcome{Trials: trials}
	for t := 0; t < trials; t++ {
		failed := false
		for i := range gateErr {
			if gateErr[i] > 0 && rng.Float64() < gateErr[i] {
				failed = true
				if gateClass[i] == gate.Readout {
					out.ReadoutFailures++
				} else {
					out.GateFailures++
				}
				break
			}
		}
		if !failed && coh != nil {
			for _, perr := range coh {
				if perr > 0 && rng.Float64() < perr {
					failed = true
					out.CoherenceFailures++
					break
				}
			}
		}
		if !failed {
			out.Successes++
		}
	}
	out.PST = float64(out.Successes) / float64(trials)
	out.StdErr = math.Sqrt(out.PST * (1 - out.PST) / float64(trials))
	out.Duration = schedule.ASAP(phys).Makespan
	out.TrialLatency = out.Duration + DefaultResetOverhead
	if out.TrialLatency > 0 {
		out.SuccessesPerSecond = out.PST / out.TrialLatency.Seconds()
	}
	return out
}

// Breakdown reports the expected number of failure events per trial in
// each error class (the hazard −Σ ln(success)). Hazards do not saturate
// like probabilities, so their ratio is the clean statement of the paper's
// "gate errors are 16x more likely to cause system failures than the
// coherence errors" calibration point.
type Breakdown struct {
	Gate, Readout, Coherence float64
}

// AnalyticBreakdown computes the per-class failure hazards in closed form.
func AnalyticBreakdown(d *device.Device, phys *circuit.Circuit, cfg Config) Breakdown {
	var b Breakdown
	for _, g := range phys.Gates {
		s := d.GateSuccess(g.Kind, g.Qubits)
		if g.Kind.Class() == gate.Readout {
			b.Readout += -math.Log(s)
		} else if s < 1 {
			b.Gate += -math.Log(s)
		}
	}
	if !cfg.DisableCoherence {
		for _, perr := range coherenceErrors(d, phys, cfg.duty()) {
			b.Coherence += -math.Log(1 - perr)
		}
	}
	return b
}

// coherenceErrors returns, per physical qubit, the probability of a
// decoherence error during the circuit: exposure is the idle time between
// the qubit's first and last scheduled operation, attenuated by the duty
// factor, charged against both T1 and T2.
func coherenceErrors(d *device.Device, phys *circuit.Circuit, duty float64) []float64 {
	idle := IdleTimes(phys)
	out := make([]float64, phys.NumQubits)
	snap := d.Snapshot()
	for q := range out {
		if idle[q] <= 0 {
			continue
		}
		tUs := idle[q].Seconds() * 1e6 * duty
		retain := math.Exp(-tUs/snap.T1Us[q]) * math.Exp(-tUs/snap.T2Us[q])
		out[q] = 1 - retain
	}
	return out
}

// IdleTimes returns, for every qubit, its idle exposure under the ASAP
// schedule: the time between the qubit's first and last operation during
// which it holds state but executes nothing.
func IdleTimes(phys *circuit.Circuit) []time.Duration {
	return schedule.ASAP(phys).IdleTimes()
}
