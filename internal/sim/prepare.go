package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/parallel"
	"vaq/internal/schedule"
)

// Prepared caches everything Run derives from a (device, circuit, error
// model) triple — per-gate failure probabilities, per-qubit coherence
// exposures, and the ASAP schedule — so repeated PST estimates of the
// same compiled circuit (the common case in relative-PST sweeps) pay the
// derivation once. A Prepared is immutable after construction and safe
// for concurrent use.
type Prepared struct {
	gateErr   []float64
	gateClass []gate.ErrorClass
	coh       []float64 // nil when coherence is disabled
	duration  time.Duration
	analytic  float64
	packed    *packedPlan // class-aggregated model for the packed kernel
}

// Prepare validates the circuit against the device and precomputes the
// error model under cfg's DisableCoherence / CoherenceDuty settings
// (cfg's trial, seed, and worker fields are read later, by Run).
func Prepare(d *device.Device, phys *circuit.Circuit, cfg Config) *Prepared {
	if phys.NumQubits > d.NumQubits() {
		panic(fmt.Sprintf("sim: circuit uses %d qubits, device has %d", phys.NumQubits, d.NumQubits()))
	}
	p := &Prepared{
		gateErr:   make([]float64, len(phys.Gates)),
		gateClass: make([]gate.ErrorClass, len(phys.Gates)),
	}
	for i, g := range phys.Gates {
		p.gateErr[i] = 1 - d.GateSuccess(g.Kind, g.Qubits)
		p.gateClass[i] = g.Kind.Class()
	}
	sched := schedule.ASAP(phys)
	p.duration = sched.Makespan
	if !cfg.DisableCoherence {
		p.coh = coherenceErrorsFromIdle(d, sched.IdleTimes(), cfg.duty())
	}
	p.analytic = 1
	for _, e := range p.gateErr {
		p.analytic *= 1 - e
	}
	for _, perr := range p.coh {
		p.analytic *= 1 - perr
	}
	p.packed = buildPackedPlan(p.gateErr, p.gateClass, p.coh)
	return p
}

// AnalyticPST returns the closed-form PST under the prepared error model.
func (p *Prepared) AnalyticPST() float64 { return p.analytic }

// Duration returns the scheduled execution time of one trial.
func (p *Prepared) Duration() time.Duration { return p.duration }

// blockOutcome accumulates one trial block's counts; blocks are summed
// in index order, so the totals are independent of execution order.
type blockOutcome struct {
	successes, gate, readout, coherence int
}

// Run executes the Monte Carlo fault-injection simulation against the
// prepared error model. Trials are sharded into fixed BlockSize blocks,
// each driven by an RNG seeded from (cfg.Seed, blockIndex) via a
// SplitMix64 derivation, and the blocks are distributed over cfg.Workers
// goroutines; the Outcome is bit-identical at every worker count.
func (p *Prepared) Run(cfg Config) Outcome {
	trials := cfg.trials()
	block := BlockSize
	if block > trials {
		block = trials
	}
	nblocks := (trials + block - 1) / block
	partials := make([]blockOutcome, nblocks)
	kernel := cfg.kernel()
	runBlock := p.runBlockPacked
	if kernel == KernelScalar {
		runBlock = p.runBlockScalar
	}
	// Worker resolution lives in parallel.Workers; ForEach itself runs
	// serially on the calling goroutine when the count resolves to 1.
	parallel.ForEach(cfg.Workers, nblocks, func(b int) error {
		lo, hi := b*block, (b+1)*block
		if hi > trials {
			hi = trials
		}
		partials[b] = runBlock(blockSeed(cfg.Seed, b), hi-lo)
		return nil
	})
	out := Outcome{Trials: trials, Kernel: kernel}
	for _, bo := range partials {
		out.Successes += bo.successes
		out.GateFailures += bo.gate
		out.ReadoutFailures += bo.readout
		out.CoherenceFailures += bo.coherence
	}
	out.PST = float64(out.Successes) / float64(trials)
	out.StdErr = math.Sqrt(out.PST * (1 - out.PST) / float64(trials))
	out.Duration = p.duration
	out.TrialLatency = out.Duration + DefaultResetOverhead
	if out.TrialLatency > 0 {
		out.SuccessesPerSecond = out.PST / out.TrialLatency.Seconds()
	}
	return out
}

// runBlockScalar walks one block of fault-injection trials one at a time
// with its own RNG — the reference kernel the packed path is cross-checked
// against. Its math/rand stream layout is frozen: historical golden
// Outcomes depend on it byte for byte.
func (p *Prepared) runBlockScalar(seed int64, trials int) blockOutcome {
	rng := rand.New(rand.NewSource(seed))
	var bo blockOutcome
	for t := 0; t < trials; t++ {
		failed := false
		for i := range p.gateErr {
			if p.gateErr[i] > 0 && rng.Float64() < p.gateErr[i] {
				failed = true
				if p.gateClass[i] == gate.Readout {
					bo.readout++
				} else {
					bo.gate++
				}
				break
			}
		}
		if !failed && p.coh != nil {
			for _, perr := range p.coh {
				if perr > 0 && rng.Float64() < perr {
					failed = true
					bo.coherence++
					break
				}
			}
		}
		if !failed {
			bo.successes++
		}
	}
	return bo
}

// blockSeed derives block b's RNG seed from the run seed with a
// SplitMix64 finalizer, decorrelating the per-block streams while keeping
// the derivation a pure function of (seed, block) — the invariant the
// worker-count-independence guarantee rests on.
func blockSeed(seed int64, b int) int64 {
	z := uint64(seed) + (uint64(b)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
