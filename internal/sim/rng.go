package sim

// splitmix64 is the packed kernel's per-block random stream: the same
// SplitMix64 finalizer blockSeed uses for stream derivation, iterated as a
// generator. It is tiny (one word of state), splittable by construction
// (seeding two states from decorrelated values yields decorrelated
// streams), and fast enough that the packed kernel's throughput is bounded
// by sampling logic rather than by the generator. The scalar kernel keeps
// math/rand so its historical byte-exact trial streams survive unchanged.
type splitmix64 uint64

// next returns the next 64 uniform random bits.
func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// open returns a uniform float64 in the half-open interval (0, 1]. The
// geometric skip-ahead sampler needs the open-at-zero side so ln(u) is
// always finite, and the closed-at-one side so a zero gap stays reachable.
func (s *splitmix64) open() float64 {
	return float64(s.next()>>11+1) * 0x1p-53
}
