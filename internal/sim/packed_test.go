package sim

import (
	"math"
	"math/bits"
	"runtime"
	"testing"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

// firstFaultClassProbs computes the closed-form probability that a trial's
// first failure lands in each attribution class, walking the error model
// in trial order: P_c = Σ_{i: class(i)=c} pᵢ · Π_{j<i} (1−pⱼ). These are
// the exact expectations the packed kernel's coalesced counters estimate,
// and they are invariant under class-run coalescing because a run's
// internal order never moves a first failure across a class boundary.
func firstFaultClassProbs(p *Prepared) (gateP, readP, cohP float64) {
	alive := 1.0
	for i, e := range p.gateErr {
		if p.gateClass[i] == gate.Readout {
			readP += alive * e
		} else {
			gateP += alive * e
		}
		alive *= 1 - e
	}
	for _, e := range p.coh {
		cohP += alive * e
		alive *= 1 - e
	}
	return
}

// checkWithin3SE asserts an observed count of n trials is within three
// binomial standard errors of its expectation (plus a small absolute
// floor so zero-variance corners stay checkable).
func checkWithin3SE(t *testing.T, label string, got, trials int, want float64) {
	t.Helper()
	se := math.Sqrt(float64(trials) * want * (1 - want))
	if diff := math.Abs(float64(got) - float64(trials)*want); diff > 3*se+1 {
		t.Errorf("%s: got %d of %d (p̂=%v), want p=%v — off by %.1f, allowed 3·SE=%.1f",
			label, got, trials, float64(got)/float64(trials), want, diff, 3*se)
	}
}

// checkKernelAgreement runs both kernels against one prepared model and
// cross-checks PST and all per-class first-failure counts against the
// closed form within 3 standard errors.
func checkKernelAgreement(t *testing.T, label string, p *Prepared, trials int, seed int64) {
	t.Helper()
	gateP, readP, cohP := firstFaultClassProbs(p)
	for _, kernel := range []string{KernelPacked, KernelScalar} {
		out := p.Run(Config{Trials: trials, Seed: seed, Kernel: kernel})
		if out.Kernel != kernel {
			t.Fatalf("%s/%s: Outcome.Kernel = %q", label, kernel, out.Kernel)
		}
		checkWithin3SE(t, label+"/"+kernel+"/pst", out.Successes, trials, p.analytic)
		checkWithin3SE(t, label+"/"+kernel+"/gate", out.GateFailures, trials, gateP)
		checkWithin3SE(t, label+"/"+kernel+"/readout", out.ReadoutFailures, trials, readP)
		checkWithin3SE(t, label+"/"+kernel+"/coherence", out.CoherenceFailures, trials, cohP)
		if got := out.Successes + out.GateFailures + out.ReadoutFailures + out.CoherenceFailures; got != trials {
			t.Fatalf("%s/%s: counts sum to %d, want %d", label, kernel, got, trials)
		}
	}
}

// TestPackedMatchesScalarAndAnalytic is the statistical-equivalence
// suite: on the realistic bv-16/q20 workload and on a synthetic uniform
// device, packed and scalar PSTs and per-class failure counts both agree
// with the closed form within 3 standard errors.
func TestPackedMatchesScalarAndAnalytic(t *testing.T) {
	trials := 200000
	if testing.Short() {
		trials = 50000
	}
	d, phys := q20Compiled(t)
	checkKernelAgreement(t, "bv16-q20", Prepare(d, phys, Config{}), trials, 12345)

	d5 := uniformQ5(0.05)
	c := circuitBV5(t)
	checkKernelAgreement(t, "uniform-q5", Prepare(d5, c, Config{}), trials, 777)
	checkKernelAgreement(t, "uniform-q5-nocoh",
		Prepare(d5, c, Config{DisableCoherence: true}), trials, 778)
}

// TestPackedInterleavedClasses exercises a hand-built error model whose
// classes interleave (gate, readout, gate, coherence) with probabilities
// dense enough to force alias-table rows and heavy cross-class overlaps —
// the shape mid-circuit measurement produces, where first-fault
// attribution depends on circuit order, not a fixed class priority.
func TestPackedInterleavedClasses(t *testing.T) {
	p := &Prepared{
		gateErr: []float64{0.02, 0.3, 0.15, 0.001, 0, 0.08},
		gateClass: []gate.ErrorClass{
			gate.OneQubit, gate.OneQubit, gate.Readout,
			gate.OneQubit, gate.Readout, gate.Readout,
		},
		coh:      []float64{0.01, 0.25},
		duration: time.Microsecond,
	}
	p.analytic = 1
	for _, e := range p.gateErr {
		p.analytic *= 1 - e
	}
	for _, e := range p.coh {
		p.analytic *= 1 - e
	}
	p.packed = buildPackedPlan(p.gateErr, p.gateClass, p.coh)
	if got := len(p.packed.rows); got != 3 {
		t.Fatalf("interleaved plan has %d rows, want 3 class aggregates", got)
	}
	checkKernelAgreement(t, "interleaved", p, 200000, 31)
}

// TestBuildPackedPlanAggregation pins the plan construction rules: each
// class collapses to one row with p = 1−Π(1−pᵢ), zero-p ops vanish,
// certain failures saturate their class, and equal-probability dense rows
// share one alias table.
func TestBuildPackedPlanAggregation(t *testing.T) {
	g, r := gate.OneQubit, gate.Readout
	plan := buildPackedPlan(
		[]float64{0.1, 0, 0.1, 0.2, 0.2},
		[]gate.ErrorClass{g, g, g, r, r},
		[]float64{0.001, 0.002},
	)
	if len(plan.rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(plan.rows))
	}
	wants := []struct {
		class packedClass
		p     float64
	}{
		{classGate, 1 - 0.9*0.9},
		{classReadout, 1 - 0.8*0.8},
		{classCoherence, 1 - 0.999*0.998},
	}
	for i, w := range wants {
		row := plan.rows[i]
		if row.class != w.class || math.Abs(row.p-w.p) > 1e-12 {
			t.Errorf("row %d = {class %d, p %v}, want {class %d, p %v}",
				i, row.class, row.p, w.class, w.p)
		}
	}
	if plan.rows[0].tbl == nil || plan.rows[1].tbl == nil {
		t.Error("dense rows missing alias tables")
	}
	if plan.rows[2].tbl != nil {
		t.Error("sparse coherence row built an alias table")
	}

	// All-zero model: no rows at all.
	if empty := buildPackedPlan([]float64{0, 0}, []gate.ErrorClass{g, g}, nil); len(empty.rows) != 0 {
		t.Errorf("zero model produced %d rows", len(empty.rows))
	}

	// A certain failure saturates its class.
	sure := buildPackedPlan([]float64{0.1, 1, 0.1}, []gate.ErrorClass{g, g, g}, nil)
	if len(sure.rows) != 1 || sure.rows[0].p != 1 {
		t.Fatalf("certain-failure class = %+v, want single p=1 row", sure.rows)
	}
	out := (&Prepared{gateErr: []float64{1}, gateClass: []gate.ErrorClass{g},
		packed: sure}).Run(Config{Trials: 10000, Seed: 3})
	if out.Successes != 0 || out.GateFailures != 10000 {
		t.Fatalf("certain-failure outcome = %+v", out)
	}

	// Equal dense probabilities share one table.
	dup := buildPackedPlan([]float64{0.3, 0.3}, []gate.ErrorClass{g, r}, nil)
	if dup.rows[0].tbl != dup.rows[1].tbl {
		t.Error("equal-probability rows did not share an alias table")
	}
}

// TestPackedWorkerDeterminismGolden pins the packed kernel's exact
// Outcome on the bv-16/q20 workload and proves it bit-identical at worker
// counts 1, 2, and GOMAXPROCS. The pinned values also guard the packed
// RNG-consumption layout: any change to sampling order re-pins them.
func TestPackedWorkerDeterminismGolden(t *testing.T) {
	d, phys := q20Compiled(t)
	cfg := Config{Trials: 50000, Seed: 99}
	want := Outcome{
		Trials:            50000,
		Successes:         2720,
		GateFailures:      33298,
		ReadoutFailures:   13466,
		CoherenceFailures: 516,
		Kernel:            KernelPacked,
	}
	workers := []int{-1, 1, 2, runtime.GOMAXPROCS(0)}
	for _, w := range workers {
		cfg.Workers = w
		got := Run(d, phys, cfg)
		got.PST, got.StdErr = 0, 0
		got.Duration, got.TrialLatency, got.SuccessesPerSecond = 0, 0, 0
		if got != want {
			t.Fatalf("workers=%d: %+v, want pinned %+v", w, got, want)
		}
	}
}

// TestScalarGoldenUnchanged pins the scalar reference kernel's Outcome on
// the same workload: the packed rewrite must leave the historical scalar
// trial streams byte-identical.
func TestScalarGoldenUnchanged(t *testing.T) {
	d, phys := q20Compiled(t)
	out := Run(d, phys, Config{Trials: 50000, Seed: 99, Kernel: KernelScalar})
	want := Outcome{
		Trials:            50000,
		Successes:         2721,
		GateFailures:      33116,
		ReadoutFailures:   13681,
		CoherenceFailures: 482,
		Kernel:            KernelScalar,
	}
	out.PST, out.StdErr = 0, 0
	out.Duration, out.TrialLatency, out.SuccessesPerSecond = 0, 0, 0
	if out != want {
		t.Fatalf("scalar outcome %+v, want pinned %+v", out, want)
	}
}

// TestSparseSkipAhead checks the geometric skip-ahead scan against exact
// binomial tail probabilities: cutting the flattened grid into 64-lane
// words, the per-word fault-free probability must match (1−p)⁶⁴, the
// ≥2-fault tail must match 1−(1−p)⁶⁴−64p(1−p)⁶³, the mean fault count
// must match 64p, and every lane offset must fire equally often (the scan
// is position-uniform).
func TestSparseSkipAhead(t *testing.T) {
	const words = 2000000
	for _, p := range []float64{1e-4, 1e-3, 5e-3} {
		r := splitmix64(0xC0FFEE)
		invLogQ := 1 / math.Log1p(-p)
		// Scan large grids (a block's worth of words at a time), slicing
		// the fault positions into per-word masks.
		const gridWords = 64
		grid := gridWords * 64
		masks := make([]uint64, gridWords)
		var zero, multi, totalFaults int
		var laneHits [64]int
		for scanned := 0; scanned < words; scanned += gridWords {
			for i := range masks {
				masks[i] = 0
			}
			for pos := sparseNext(&r, 0, grid, invLogQ); pos < grid; pos = sparseNext(&r, pos+1, grid, invLogQ) {
				masks[pos>>6] |= 1 << uint(pos&63)
				laneHits[pos&63]++
				totalFaults++
			}
			for _, m := range masks {
				switch bits.OnesCount64(m) {
				case 0:
					zero++
				case 1:
				default:
					multi++
				}
			}
		}
		q64 := math.Pow(1-p, 64)
		pZero := q64
		pMulti := 1 - q64 - 64*p*math.Pow(1-p, 63)
		checkWithin3SE(t, "p=zero-tail", zero, words, pZero)
		checkWithin3SE(t, "p=multi-tail", multi, words, pMulti)
		// Mean fault count: SE of the total is √(words·64·p·(1−p)).
		wantFaults := float64(words) * 64 * p
		seFaults := math.Sqrt(float64(words) * 64 * p * (1 - p))
		if diff := math.Abs(float64(totalFaults) - wantFaults); diff > 3*seFaults {
			t.Errorf("p=%v: %d total faults, want %.0f ± %.0f", p, totalFaults, wantFaults, 3*seFaults)
		}
		// Lane uniformity: each offset fires Binomial(words, p) times;
		// allow 4.5 SE per lane since 64 lanes × 3 rates are compared.
		seLane := math.Sqrt(float64(words) * p * (1 - p))
		for lane, hits := range laneHits {
			if diff := math.Abs(float64(hits) - float64(words)*p); diff > 4.5*seLane+1 {
				t.Errorf("p=%v lane %d: %d hits, want %.0f ± %.0f", p, lane, hits, float64(words)*p, 4.5*seLane)
			}
		}
	}
}

// TestPlaceMask checks the uniform-placement ladder across all of its
// regimes: exact popcount always, and per-lane uniformity (each lane set
// with probability n/64) in every band.
func TestPlaceMask(t *testing.T) {
	const draws = 300000
	for _, n := range []int{1, 3, 10, 11, 17, 20, 21, 27, 32, 33, 40, 44, 53, 54, 60, 63} {
		r := splitmix64(uint64(n) * 0x9E3779B97F4A7C15)
		var laneHits [64]int
		for i := 0; i < draws; i++ {
			m := placeMask(&r, n)
			if bits.OnesCount64(m) != n {
				t.Fatalf("n=%d: popcount %d", n, bits.OnesCount64(m))
			}
			for m != 0 {
				laneHits[bits.TrailingZeros64(m)]++
				m &= m - 1
			}
		}
		pLane := float64(n) / 64
		se := math.Sqrt(draws * pLane * (1 - pLane))
		for lane, hits := range laneHits {
			if diff := math.Abs(float64(hits) - draws*pLane); diff > 4.5*se {
				t.Errorf("n=%d lane %d: %d hits, want %.0f ± %.0f", n, lane, hits, draws*pLane, 4.5*se)
			}
		}
	}
	if placeMask(&[]splitmix64{1}[0], 64) != ^uint64(0) {
		t.Error("placeMask(64) != all-ones")
	}
}

// TestBinomAlias checks the alias-table count sampler against the exact
// Binomial(64, p) pmf on a few head/tail outcomes and on the mean.
func TestBinomAlias(t *testing.T) {
	const draws = 1000000
	for _, p := range []float64{1.0 / 128, 0.05, 0.3, 0.7} {
		tbl := newBinomAlias(64, p)
		r := splitmix64(uint64(math.Float64bits(p)))
		var hist [65]int
		total := 0
		for i := 0; i < draws; i++ {
			n := tbl.sample(&r)
			hist[n]++
			total += n
		}
		// Exact pmf for the checked outcomes.
		lp, lq := math.Log(p), math.Log1p(-p)
		pmf := func(k int) float64 {
			return math.Exp(lgFact[64] - lgFact[k] - lgFact[64-k] + float64(k)*lp + float64(64-k)*lq)
		}
		for _, k := range []int{0, 1, 2, 20, 32, 45} {
			checkWithin3SE(t, "binom-pmf", hist[k], draws, pmf(k))
		}
		wantMean := 64 * p
		seMean := math.Sqrt(64 * p * (1 - p) / draws)
		if gotMean := float64(total) / draws; math.Abs(gotMean-wantMean) > 3*seMean {
			t.Errorf("p=%v: mean %v, want %v ± %v", p, gotMean, wantMean, 3*seMean)
		}
	}
	// Degenerate tables never consult randomness beyond the column draw.
	sure := newBinomAlias(64, 1)
	r := splitmix64(9)
	for i := 0; i < 1000; i++ {
		if got := sure.sample(&r); got != 64 {
			t.Fatalf("p=1 sample = %d", got)
		}
	}
}

// TestBinomFamily checks the variable-n Binomial(n, q) family the overlap
// splits draw from: per-n empirical means and head probabilities against
// the exact pmf, plus the degenerate fast paths.
func TestBinomFamily(t *testing.T) {
	const draws = 200000
	fam := &binomFamily{q: 0.35}
	r := splitmix64(0xFA111)
	for _, n := range []int{1, 2, 7, 33, 64} {
		total, zeros := 0, 0
		for i := 0; i < draws; i++ {
			k := fam.sample(&r, n)
			if k < 0 || k > n {
				t.Fatalf("n=%d: sampled %d out of range", n, k)
			}
			total += k
			if k == 0 {
				zeros++
			}
		}
		wantMean := float64(n) * fam.q
		seMean := math.Sqrt(float64(n) * fam.q * (1 - fam.q) / draws)
		if gotMean := float64(total) / draws; math.Abs(gotMean-wantMean) > 3*seMean {
			t.Errorf("n=%d: mean %v, want %v ± %v", n, gotMean, wantMean, 3*seMean)
		}
		checkWithin3SE(t, "family-zero", zeros, draws, math.Pow(1-fam.q, float64(n)))
	}
	if (&binomFamily{q: 0}).sample(&r, 10) != 0 {
		t.Error("q=0 family sampled nonzero")
	}
	if (&binomFamily{q: 1}).sample(&r, 10) != 10 {
		t.Error("q=1 family did not saturate")
	}
	if fam.sample(&r, 0) != 0 {
		t.Error("n=0 sampled nonzero")
	}
}

// TestOverlapSplitBruteForce validates the Möbius-inversion split
// probabilities against exhaustive enumeration: for small ordered error
// models, every fault subset's probability is accumulated into
// P(first-fault class ∧ exact class pattern), and the plan's conditional
// split parameters must match the enumerated conditionals exactly (well
// below float tolerance).
func TestOverlapSplitBruteForce(t *testing.T) {
	type op struct {
		p float64
		c packedClass
	}
	models := []struct {
		name string
		ps   []float64
		cls  []gate.ErrorClass
		coh  []float64
	}{
		{"interleaved", []float64{0.3, 0.25, 0.2}, []gate.ErrorClass{gate.OneQubit, gate.Readout, gate.OneQubit}, []float64{0.15}},
		{"readout-first", []float64{0.5, 0.4}, []gate.ErrorClass{gate.Readout, gate.OneQubit}, []float64{0.35, 0.1}},
		{"no-coherence", []float64{0.9, 0.8, 0.7, 0.6}, []gate.ErrorClass{gate.OneQubit, gate.Readout, gate.Readout, gate.OneQubit}, nil},
		{"bench-like", []float64{0.003, 0.02, 0.1, 0.05}, []gate.ErrorClass{gate.OneQubit, gate.Readout, gate.OneQubit, gate.Readout}, []float64{0.04}},
	}
	for _, m := range models {
		plan := buildPackedPlan(m.ps, m.cls, m.coh)
		var seq []op
		for i, p := range m.ps {
			c := classGate
			if m.cls[i] == gate.Readout {
				c = classReadout
			}
			seq = append(seq, op{p, c})
		}
		for _, p := range m.coh {
			seq = append(seq, op{p, classCoherence})
		}
		// first[S][c] = P(first fault has class c ∧ faulting classes = S).
		var first [8][3]float64
		for sub := 1; sub < 1<<len(seq); sub++ {
			w := 1.0
			pattern, firstC := 0, -1
			for i, o := range seq {
				if sub&(1<<i) != 0 {
					w *= o.p
					pattern |= 1 << o.c
					if firstC < 0 {
						firstC = int(o.c)
					}
				} else {
					w *= 1 - o.p
				}
			}
			first[pattern][firstC] += w
		}
		check := func(label string, got float64, num, den float64) {
			want := 0.0
			if den > 0 {
				want = num / den
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s/%s: split q = %v, want %v (brute force)", m.name, label, got, want)
			}
		}
		const g, r, c = 1 << classGate, 1 << classReadout, 1 << classCoherence
		check("gr", plan.gr.q, first[g|r][0], first[g|r][0]+first[g|r][1])
		check("gc", plan.gc.q, first[g|c][0], first[g|c][0]+first[g|c][2])
		check("rc", plan.rc.q, first[r|c][1], first[r|c][1]+first[r|c][2])
		s := g | r | c
		check("grc1", plan.grc1.q, first[s][0], first[s][0]+first[s][1]+first[s][2])
		check("grc2", plan.grc2.q, first[s][1], first[s][1]+first[s][2])
	}
}

// TestPackedPartialWords guards the trailing-word masking: trial counts
// straddling word and block boundaries must report exactly Trials
// attributed outcomes and stay worker-invariant (the packed analogue of
// TestDegenerateConfigs, at probabilities high enough that stray phantom
// lanes would be caught).
func TestPackedPartialWords(t *testing.T) {
	p := &Prepared{
		gateErr:   []float64{0.4, 0.3},
		gateClass: []gate.ErrorClass{gate.OneQubit, gate.Readout},
		coh:       []float64{0.2},
	}
	p.packed = buildPackedPlan(p.gateErr, p.gateClass, p.coh)
	for _, trials := range []int{1, 5, 63, 64, 65, 127, 128, BlockSize - 1, BlockSize, BlockSize + 1} {
		ref := p.Run(Config{Trials: trials, Seed: 5, Workers: -1})
		if sum := ref.Successes + ref.GateFailures + ref.ReadoutFailures + ref.CoherenceFailures; sum != trials {
			t.Fatalf("trials=%d: outcomes sum to %d", trials, sum)
		}
		for _, workers := range []int{0, 1, 64} {
			if got := p.Run(Config{Trials: trials, Seed: 5, Workers: workers}); got != ref {
				t.Fatalf("trials=%d workers=%d: %+v != %+v", trials, workers, got, ref)
			}
		}
	}
}

// circuitBV5 builds the small uniform-device test circuit shared by the
// statistical suites.
func circuitBV5(t *testing.T) *circuit.Circuit {
	t.Helper()
	return circuit.New("packed-q5", 3).H(0).CX(0, 1).CX(1, 2).Swap(0, 1).MeasureAll()
}
