package circuit

import "vaq/internal/gate"

// Layers partitions the circuit into dependency layers using an ASAP
// (as-soon-as-possible) schedule: gate i goes into layer
// 1 + max(layer of the latest preceding gate touching any of its qubits).
// Each returned layer is a list of indices into c.Gates whose operations
// are mutually independent and can execute in parallel. Barriers occupy no
// layer themselves but force every later gate on their qubits into deeper
// layers.
//
// This is step 3 of the baseline compiler (Zulehner et al.): the mapper
// works layer by layer, finding a SWAP set between consecutive layers.
func (c *Circuit) Layers() [][]int {
	var layers [][]int
	qubitLayer := make([]int, c.NumQubits) // next free layer per qubit
	for i, g := range c.Gates {
		earliest := 0
		for _, q := range g.Qubits {
			if qubitLayer[q] > earliest {
				earliest = qubitLayer[q]
			}
		}
		if g.Kind == gate.Barrier {
			for _, q := range g.Qubits {
				qubitLayer[q] = earliest
			}
			continue
		}
		for len(layers) <= earliest {
			layers = append(layers, nil)
		}
		layers[earliest] = append(layers[earliest], i)
		for _, q := range g.Qubits {
			qubitLayer[q] = earliest + 1
		}
	}
	return layers
}

// CNOTLayers returns, for each dependency layer, only the two-qubit gates
// (as [control, target] pairs for CX/CZ, [a, b] for SWAP), dropping layers
// with no two-qubit gate. The mapper only needs to make these pairs
// adjacent; single-qubit gates are position-independent.
func (c *Circuit) CNOTLayers() [][][2]int {
	var out [][][2]int
	for _, layer := range c.Layers() {
		var pairs [][2]int
		for _, gi := range layer {
			g := c.Gates[gi]
			if g.Kind.TwoQubit() {
				pairs = append(pairs, [2]int{g.Qubits[0], g.Qubits[1]})
			}
		}
		if len(pairs) > 0 {
			out = append(out, pairs)
		}
	}
	return out
}

// InteractionCounts returns a NumQubits×NumQubits symmetric matrix whose
// (i,j) entry is the number of two-qubit gates acting on logical qubits i
// and j. Allocation policies use it to keep frequently entangled qubits
// adjacent.
func (c *Circuit) InteractionCounts() [][]int {
	m := make([][]int, c.NumQubits)
	for i := range m {
		m[i] = make([]int, c.NumQubits)
	}
	for _, g := range c.Gates {
		if g.Kind.TwoQubit() {
			a, b := g.Qubits[0], g.Qubits[1]
			m[a][b]++
			m[b][a]++
		}
	}
	return m
}

// ActivityCounts returns the number of two-qubit gates each logical qubit
// participates in, restricted to the first maxLayers dependency layers
// (all layers when maxLayers ≤ 0). This is the "qubit activity" statistic
// of Variation-Aware Qubit Allocation, which estimates the most frequently
// entangled qubits by analyzing the first-N instructions of the program.
func (c *Circuit) ActivityCounts(maxLayers int) []int {
	act := make([]int, c.NumQubits)
	layers := c.Layers()
	if maxLayers <= 0 || maxLayers > len(layers) {
		maxLayers = len(layers)
	}
	for _, layer := range layers[:maxLayers] {
		for _, gi := range layer {
			g := c.Gates[gi]
			if g.Kind.TwoQubit() {
				act[g.Qubits[0]]++
				act[g.Qubits[1]]++
			}
		}
	}
	return act
}

// MeasuredQubits reports, per qubit, whether the circuit measures it.
func (c *Circuit) MeasuredQubits() []bool {
	out := make([]bool, c.NumQubits)
	for _, g := range c.Gates {
		if g.Kind == gate.Measure {
			out[g.Qubits[0]] = true
		}
	}
	return out
}

// UsedQubits returns the set of qubits touched by at least one gate,
// in ascending order.
func (c *Circuit) UsedQubits() []int {
	used := make([]bool, c.NumQubits)
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	var out []int
	for q, u := range used {
		if u {
			out = append(out, q)
		}
	}
	return out
}
