package circuit

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vaq/internal/gate"
)

func TestBuilderChaining(t *testing.T) {
	c := New("demo", 3).H(0).CX(0, 1).CX(1, 2).MeasureAll()
	if len(c.Gates) != 6 {
		t.Fatalf("gate count = %d, want 6", len(c.Gates))
	}
	if c.NumCBits != 3 {
		t.Fatalf("NumCBits = %d, want 3", c.NumCBits)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range qubit accepted")
		}
	}()
	New("bad", 2).CX(0, 2)
}

func TestValidateRejectsDuplicateOperand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cx q,q accepted")
		}
	}()
	New("bad", 2).CX(1, 1)
}

func TestValidateRejectsWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	New("bad", 2).Append(Gate{Kind: gate.CX, Qubits: []int{0}, CBit: -1})
}

func TestValidateRejectsInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid kind accepted")
		}
	}()
	New("bad", 1).Append(Gate{Kind: gate.Kind(99), Qubits: []int{0}})
}

func TestValidateRejectsEmptyBarrier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty explicit barrier accepted")
		}
	}()
	New("bad", 2).Append(Gate{Kind: gate.Barrier, CBit: -1})
}

func TestMeasureNegativeCBit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative classical bit accepted")
		}
	}()
	New("bad", 1).Measure(0, -1)
}

func TestGateString(t *testing.T) {
	cases := []struct {
		g    Gate
		want string
	}{
		{NewGate1(gate.H, 2), "h q[2]"},
		{NewGate2(gate.CX, 0, 1), "cx q[0],q[1]"},
		{NewMeasure(3, 1), "measure q[3] -> c[1]"},
	}
	for _, tc := range cases {
		if got := tc.g.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	rz := NewGate1(gate.RZ, 0)
	rz.Param = 0.5
	if got := rz.String(); !strings.Contains(got, "rz(0.5)") {
		t.Errorf("rz string = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New("orig", 2).H(0).CX(0, 1)
	d := c.Clone()
	d.Gates[0].Qubits[0] = 1
	d.X(0)
	if c.Gates[0].Qubits[0] != 0 {
		t.Fatal("clone shares qubit slices with original")
	}
	if len(c.Gates) != 2 {
		t.Fatal("clone append affected original")
	}
}

func TestLayersSimple(t *testing.T) {
	// h0; h1; cx(0,1); x0 → layers {h0,h1}, {cx}, {x0}
	c := New("l", 2).H(0).H(1).CX(0, 1).X(0)
	layers := c.Layers()
	want := [][]int{{0, 1}, {2}, {3}}
	if !reflect.DeepEqual(layers, want) {
		t.Fatalf("Layers() = %v, want %v", layers, want)
	}
}

func TestLayersParallelCNOTs(t *testing.T) {
	// cx(0,1) and cx(2,3) are independent → same layer.
	c := New("l", 4).CX(0, 1).CX(2, 3).CX(1, 2)
	layers := c.Layers()
	if len(layers) != 2 {
		t.Fatalf("depth = %d, want 2", len(layers))
	}
	if len(layers[0]) != 2 {
		t.Fatalf("layer 0 size = %d, want 2", len(layers[0]))
	}
}

func TestBarrierForcesOrdering(t *testing.T) {
	noBarrier := New("nb", 2).H(0).H(1)
	if d := len(noBarrier.Layers()); d != 1 {
		t.Fatalf("no-barrier depth = %d, want 1", d)
	}
	withBarrier := New("wb", 2).H(0).Barrier().H(1)
	layers := withBarrier.Layers()
	if len(layers) != 2 {
		t.Fatalf("barrier depth = %d, want 2", len(layers))
	}
}

func TestLayersPropertyNoQubitTwicePerLayer(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		c := New("rand", n)
		for i := 0; i < 40; i++ {
			a := rng.Intn(n)
			if rng.Float64() < 0.5 {
				c.H(a)
			} else {
				b := rng.Intn(n)
				if b == a {
					b = (a + 1) % n
				}
				c.CX(a, b)
			}
		}
		for _, layer := range c.Layers() {
			seen := map[int]bool{}
			for _, gi := range layer {
				for _, q := range c.Gates[gi].Qubits {
					if seen[q] {
						return false
					}
					seen[q] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLayersPropertyPreservesPerQubitOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := New("rand", n)
		for i := 0; i < 30; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
		layerOf := map[int]int{}
		for li, layer := range c.Layers() {
			for _, gi := range layer {
				layerOf[gi] = li
			}
		}
		if len(layerOf) != len(c.Gates) {
			return false
		}
		// For any two gates sharing a qubit, earlier index ⇒ earlier layer.
		for i := 0; i < len(c.Gates); i++ {
			for j := i + 1; j < len(c.Gates); j++ {
				if sharesQubit(c.Gates[i], c.Gates[j]) && layerOf[i] >= layerOf[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sharesQubit(a, b Gate) bool {
	for _, qa := range a.Qubits {
		for _, qb := range b.Qubits {
			if qa == qb {
				return true
			}
		}
	}
	return false
}

func TestCNOTLayers(t *testing.T) {
	c := New("c", 4).H(0).CX(0, 1).CX(2, 3).X(1).CX(1, 2)
	got := c.CNOTLayers()
	// Layer 0 holds cx(2,3) (independent of h0); layer 1 holds cx(0,1);
	// layer 2+ hold cx(1,2). Only layers with 2Q gates are returned.
	total := 0
	for _, layer := range got {
		total += len(layer)
	}
	if total != 3 {
		t.Fatalf("total CNOT pairs = %d, want 3 (%v)", total, got)
	}
}

func TestInteractionCountsSymmetric(t *testing.T) {
	c := New("i", 3).CX(0, 1).CX(0, 1).CX(1, 2)
	m := c.InteractionCounts()
	if m[0][1] != 2 || m[1][0] != 2 {
		t.Fatalf("m[0][1]=%d m[1][0]=%d, want 2", m[0][1], m[1][0])
	}
	if m[1][2] != 1 || m[0][2] != 0 {
		t.Fatalf("unexpected interactions: %v", m)
	}
}

func TestActivityCounts(t *testing.T) {
	c := New("a", 3).CX(0, 1).CX(0, 1).CX(0, 2)
	all := c.ActivityCounts(0)
	if want := []int{3, 2, 1}; !reflect.DeepEqual(all, want) {
		t.Fatalf("ActivityCounts(all) = %v, want %v", all, want)
	}
	first := c.ActivityCounts(1)
	if want := []int{1, 1, 0}; !reflect.DeepEqual(first, want) {
		t.Fatalf("ActivityCounts(1) = %v, want %v", first, want)
	}
	// maxLayers beyond depth behaves like all layers.
	if got := c.ActivityCounts(99); !reflect.DeepEqual(got, all) {
		t.Fatalf("ActivityCounts(99) = %v, want %v", got, all)
	}
}

func TestStats(t *testing.T) {
	c := New("s", 3).H(0).CX(0, 1).Swap(1, 2).Measure(0, 0)
	s := c.Stats()
	if s.Total != 4 {
		t.Errorf("Total = %d, want 4", s.Total)
	}
	if s.OneQubit != 1 || s.TwoQubit != 2 || s.Swaps != 1 || s.Measures != 1 {
		t.Errorf("composition = %+v", s)
	}
	if s.CNOTs != 4 { // 1 CX + 3 from the SWAP
		t.Errorf("CNOTs = %d, want 4", s.CNOTs)
	}
	// h0 | cx(0,1) | {swap(1,2), measure(0)} → depth 3.
	if s.Depth != 3 {
		t.Errorf("Depth = %d, want 3", s.Depth)
	}
}

func TestStatsIgnoresBarriers(t *testing.T) {
	c := New("s", 2).H(0).Barrier().H(1)
	if s := c.Stats(); s.Total != 2 {
		t.Fatalf("Total = %d, want 2 (barrier not counted)", s.Total)
	}
}

func TestLowerSwaps(t *testing.T) {
	c := New("ls", 2).Swap(0, 1)
	low := c.LowerSwaps()
	if len(low.Gates) != 3 {
		t.Fatalf("lowered gate count = %d, want 3", len(low.Gates))
	}
	wantPairs := [][2]int{{0, 1}, {1, 0}, {0, 1}}
	for i, g := range low.Gates {
		if g.Kind != gate.CX {
			t.Fatalf("gate %d kind = %v, want cx", i, g.Kind)
		}
		if g.Qubits[0] != wantPairs[i][0] || g.Qubits[1] != wantPairs[i][1] {
			t.Fatalf("gate %d operands = %v, want %v", i, g.Qubits, wantPairs[i])
		}
	}
	// Original untouched.
	if len(c.Gates) != 1 || c.Gates[0].Kind != gate.SWAP {
		t.Fatal("LowerSwaps mutated the source circuit")
	}
}

func TestLowerSwapsPreservesCNOTCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := New("r", n)
		for i := 0; i < 20; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(3) {
			case 0:
				c.CX(a, b)
			case 1:
				c.Swap(a, b)
			default:
				c.H(a)
			}
		}
		return c.Stats().CNOTs == c.LowerSwaps().Stats().CNOTs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDuration(t *testing.T) {
	// Layer 1: h (100ns) ∥ nothing; layer 2: cx (300ns); layer 3: measure (1µs).
	c := New("d", 2).H(0).CX(0, 1).Measure(1, 0)
	want := 100*time.Nanosecond + 300*time.Nanosecond + time.Microsecond
	if got := c.Duration(); got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
}

func TestDurationParallelTakesMax(t *testing.T) {
	// h(0) and cx(1,2) share a layer → layer costs 300ns, not 400.
	c := New("d", 3).H(0).CX(1, 2)
	if got := c.Duration(); got != 300*time.Nanosecond {
		t.Fatalf("Duration = %v, want 300ns", got)
	}
}

func TestUsedQubits(t *testing.T) {
	c := New("u", 5).H(1).CX(1, 3)
	if got := c.UsedQubits(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("UsedQubits = %v, want [1 3]", got)
	}
}

func TestMeasureAllCBits(t *testing.T) {
	c := New("m", 3).MeasureAll()
	if c.NumCBits != 3 || len(c.Gates) != 3 {
		t.Fatalf("MeasureAll: cbits=%d gates=%d", c.NumCBits, len(c.Gates))
	}
}

func TestEmptyCircuit(t *testing.T) {
	c := New("e", 0)
	if len(c.Layers()) != 0 || c.Stats().Total != 0 || c.Duration() != 0 {
		t.Fatal("empty circuit should have no layers, gates, or duration")
	}
}

func TestBuilderGateKinds(t *testing.T) {
	c := New("all", 2).
		Y(0).Z(0).S(0).Sdg(0).T(0).Tdg(0).
		RZ(0.1, 0).RX(0.2, 0).RY(0.3, 0).U1(0.4, 0).
		CZ(0, 1)
	wantKinds := []gate.Kind{
		gate.Y, gate.Z, gate.S, gate.Sdg, gate.T, gate.Tdg,
		gate.RZ, gate.RX, gate.RY, gate.U1, gate.CZ,
	}
	if len(c.Gates) != len(wantKinds) {
		t.Fatalf("gates = %d, want %d", len(c.Gates), len(wantKinds))
	}
	for i, k := range wantKinds {
		if c.Gates[i].Kind != k {
			t.Fatalf("gate %d = %v, want %v", i, c.Gates[i].Kind, k)
		}
	}
	for i, want := range map[int]float64{6: 0.1, 7: 0.2, 8: 0.3, 9: 0.4} {
		if c.Gates[i].Param != want {
			t.Fatalf("gate %d param = %v, want %v", i, c.Gates[i].Param, want)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative qubit count accepted")
		}
	}()
	New("bad", -1)
}

func TestMeasuredQubits(t *testing.T) {
	c := New("m", 3).H(0).Measure(1, 0)
	got := c.MeasuredQubits()
	if got[0] || !got[1] || got[2] {
		t.Fatalf("MeasuredQubits = %v", got)
	}
}
