// Package circuit provides the quantum-circuit intermediate representation
// shared by the front-end, the mapping policies, and the fault-injection
// simulator: an ordered gate list over logical qubits, dependency layering
// (the "partition the program into layers of independent operations" step
// of the baseline compiler), interaction statistics used by allocation
// policies, and the SWAP → 3-CNOT lowering.
package circuit

import (
	"fmt"
	"time"

	"vaq/internal/gate"
)

// Gate is one operation in a circuit. Qubits holds the operand qubit
// indices (1 entry for single-qubit gates and measurements, 2 for two-qubit
// gates, any number ≥ 1 for barriers). For CX, Qubits[0] is the control and
// Qubits[1] the target. Param carries the rotation angle of parameterized
// gates. CBit is the classical bit written by a Measure (−1 otherwise).
type Gate struct {
	Kind   gate.Kind
	Qubits []int
	Param  float64
	CBit   int
}

// NewGate1 returns a single-qubit gate.
func NewGate1(k gate.Kind, q int) Gate { return Gate{Kind: k, Qubits: []int{q}, CBit: -1} }

// NewGate2 returns a two-qubit gate.
func NewGate2(k gate.Kind, a, b int) Gate { return Gate{Kind: k, Qubits: []int{a, b}, CBit: -1} }

// NewMeasure returns a measurement of qubit q into classical bit c.
func NewMeasure(q, c int) Gate { return Gate{Kind: gate.Measure, Qubits: []int{q}, CBit: c} }

// String renders the gate in OpenQASM-like form.
func (g Gate) String() string {
	switch {
	case g.Kind == gate.Measure:
		return fmt.Sprintf("measure q[%d] -> c[%d]", g.Qubits[0], g.CBit)
	case g.Kind.Parameterized():
		return fmt.Sprintf("%s(%g) q[%d]", g.Kind, g.Param, g.Qubits[0])
	case len(g.Qubits) == 2:
		return fmt.Sprintf("%s q[%d],q[%d]", g.Kind, g.Qubits[0], g.Qubits[1])
	default:
		s := fmt.Sprintf("%s", g.Kind)
		for i, q := range g.Qubits {
			if i == 0 {
				s += fmt.Sprintf(" q[%d]", q)
			} else {
				s += fmt.Sprintf(",q[%d]", q)
			}
		}
		return s
	}
}

// Circuit is an ordered list of gates over NumQubits logical qubits and
// NumCBits classical bits.
type Circuit struct {
	Name      string
	NumQubits int
	NumCBits  int
	Gates     []Gate
}

// New returns an empty circuit.
func New(name string, numQubits int) *Circuit {
	if numQubits < 0 {
		panic(fmt.Sprintf("circuit: negative qubit count %d", numQubits))
	}
	return &Circuit{Name: name, NumQubits: numQubits}
}

// Append adds gates to the end of the circuit after validating operands.
func (c *Circuit) Append(gs ...Gate) *Circuit {
	for _, g := range gs {
		if err := c.validate(g); err != nil {
			panic(err)
		}
		c.Gates = append(c.Gates, g)
	}
	return c
}

func (c *Circuit) validate(g Gate) error {
	if !g.Kind.Valid() {
		return fmt.Errorf("circuit %q: invalid gate kind %d", c.Name, int(g.Kind))
	}
	if a := g.Kind.Arity(); a != 0 && len(g.Qubits) != a {
		return fmt.Errorf("circuit %q: %s expects %d qubits, got %d", c.Name, g.Kind, a, len(g.Qubits))
	}
	if g.Kind == gate.Barrier && len(g.Qubits) == 0 {
		return fmt.Errorf("circuit %q: barrier needs at least one qubit", c.Name)
	}
	seen := map[int]bool{}
	for _, q := range g.Qubits {
		if q < 0 || q >= c.NumQubits {
			return fmt.Errorf("circuit %q: qubit %d out of range [0,%d)", c.Name, q, c.NumQubits)
		}
		if seen[q] {
			return fmt.Errorf("circuit %q: duplicate operand qubit %d in %s", c.Name, q, g.Kind)
		}
		seen[q] = true
	}
	if g.Kind == gate.Measure {
		if g.CBit < 0 {
			return fmt.Errorf("circuit %q: measure with negative classical bit", c.Name)
		}
		if g.CBit >= c.NumCBits {
			c.NumCBits = g.CBit + 1
		}
	}
	return nil
}

// Convenience builders. Each returns the circuit for chaining.

func (c *Circuit) H(q int) *Circuit   { return c.Append(NewGate1(gate.H, q)) }
func (c *Circuit) X(q int) *Circuit   { return c.Append(NewGate1(gate.X, q)) }
func (c *Circuit) Y(q int) *Circuit   { return c.Append(NewGate1(gate.Y, q)) }
func (c *Circuit) Z(q int) *Circuit   { return c.Append(NewGate1(gate.Z, q)) }
func (c *Circuit) S(q int) *Circuit   { return c.Append(NewGate1(gate.S, q)) }
func (c *Circuit) Sdg(q int) *Circuit { return c.Append(NewGate1(gate.Sdg, q)) }
func (c *Circuit) T(q int) *Circuit   { return c.Append(NewGate1(gate.T, q)) }
func (c *Circuit) Tdg(q int) *Circuit { return c.Append(NewGate1(gate.Tdg, q)) }
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	g := NewGate1(gate.RZ, q)
	g.Param = theta
	return c.Append(g)
}
func (c *Circuit) RX(theta float64, q int) *Circuit {
	g := NewGate1(gate.RX, q)
	g.Param = theta
	return c.Append(g)
}
func (c *Circuit) RY(theta float64, q int) *Circuit {
	g := NewGate1(gate.RY, q)
	g.Param = theta
	return c.Append(g)
}
func (c *Circuit) U1(lambda float64, q int) *Circuit {
	g := NewGate1(gate.U1, q)
	g.Param = lambda
	return c.Append(g)
}
func (c *Circuit) CX(ctrl, tgt int) *Circuit  { return c.Append(NewGate2(gate.CX, ctrl, tgt)) }
func (c *Circuit) CZ(a, b int) *Circuit       { return c.Append(NewGate2(gate.CZ, a, b)) }
func (c *Circuit) Swap(a, b int) *Circuit     { return c.Append(NewGate2(gate.SWAP, a, b)) }
func (c *Circuit) Measure(q, cb int) *Circuit { return c.Append(NewMeasure(q, cb)) }
func (c *Circuit) MeasureAll() *Circuit {
	for q := 0; q < c.NumQubits; q++ {
		c.Measure(q, q)
	}
	return c
}
func (c *Circuit) Barrier(qs ...int) *Circuit {
	if len(qs) == 0 {
		qs = make([]int, c.NumQubits)
		for i := range qs {
			qs[i] = i
		}
	}
	return c.Append(Gate{Kind: gate.Barrier, Qubits: qs, CBit: -1})
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumCBits: c.NumCBits}
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		qs := make([]int, len(g.Qubits))
		copy(qs, g.Qubits)
		out.Gates[i] = Gate{Kind: g.Kind, Qubits: qs, Param: g.Param, CBit: g.CBit}
	}
	return out
}

// Stats summarizes gate composition.
type Stats struct {
	Total    int // all gates except barriers
	OneQubit int
	TwoQubit int // CX + CZ + SWAP applications
	Swaps    int // SWAP applications
	CNOTs    int // physical CNOT count after SWAP lowering
	Measures int
	Depth    int // dependency depth (layers)
}

// Stats computes gate-composition statistics.
func (c *Circuit) Stats() Stats {
	var s Stats
	for _, g := range c.Gates {
		switch {
		case g.Kind == gate.Barrier:
			continue
		case g.Kind == gate.Measure:
			s.Measures++
		case g.Kind.TwoQubit():
			s.TwoQubit++
			if g.Kind == gate.SWAP {
				s.Swaps++
			}
		default:
			s.OneQubit++
		}
		s.Total++
		s.CNOTs += g.Kind.CNOTCost()
	}
	s.Depth = len(c.Layers())
	return s
}

// Duration returns the scheduled wall-clock duration of the circuit: the
// sum over dependency layers of the slowest gate in each layer.
func (c *Circuit) Duration() time.Duration {
	var total time.Duration
	for _, layer := range c.Layers() {
		var slowest time.Duration
		for _, gi := range layer {
			if d := c.Gates[gi].Kind.Duration(); d > slowest {
				slowest = d
			}
		}
		total += slowest
	}
	return total
}

// LowerSwaps returns a copy of the circuit with every SWAP expanded into
// its 3-CNOT implementation (Figure 2(d) of the paper).
func (c *Circuit) LowerSwaps() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumCBits: c.NumCBits}
	for _, g := range c.Gates {
		if g.Kind == gate.SWAP {
			a, b := g.Qubits[0], g.Qubits[1]
			out.Gates = append(out.Gates,
				NewGate2(gate.CX, a, b),
				NewGate2(gate.CX, b, a),
				NewGate2(gate.CX, a, b),
			)
			continue
		}
		out.Gates = append(out.Gates, g)
	}
	return out
}
