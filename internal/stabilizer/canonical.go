package stabilizer

// Canonical returns a canonical form of the stabilizer group: the
// generators as (x|z|r) bit rows reduced to a unique row-echelon form by
// Gaussian elimination over GF(2), with phase bits carried through the
// row operations. Two states are equal as quantum states iff their
// canonical forms are identical, because the stabilizer group (with
// signs) determines the state uniquely.
func (s *State) Canonical() [][]bool {
	n := s.n
	// Working copy of the stabilizer rows only.
	rows := make([]*scratch, n)
	for i := 0; i < n; i++ {
		rows[i] = &scratch{
			x: append([]bool(nil), s.x[n+i]...),
			z: append([]bool(nil), s.z[n+i]...),
			r: s.r[n+i],
		}
	}
	// multiply row a by row b (a ← a·b) with correct phase tracking.
	mul := func(a, b *scratch) {
		phase := 0
		if a.r {
			phase += 2
		}
		if b.r {
			phase += 2
		}
		for j := 0; j < n; j++ {
			phase += g(b.x[j], b.z[j], a.x[j], a.z[j])
		}
		phase = ((phase % 4) + 4) % 4
		a.r = phase == 2
		for j := 0; j < n; j++ {
			a.x[j] = a.x[j] != b.x[j]
			a.z[j] = a.z[j] != b.z[j]
		}
	}

	// Reduced row echelon form over GF(2) with the column order
	// x_0..x_{n−1}, z_0..z_{n−1}. RREF is unique for a given row space,
	// and the sign of every group element is determined by the group, so
	// the result is a canonical form of the state. bit(row, col) reads
	// the combined column.
	bit := func(row *scratch, col int) bool {
		if col < n {
			return row.x[col]
		}
		return row.z[col-n]
	}
	rank := 0
	for col := 0; col < 2*n && rank < n; col++ {
		pivot := -1
		for i := rank; i < n; i++ {
			if bit(rows[i], col) {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for i := 0; i < n; i++ {
			if i != rank && bit(rows[i], col) {
				mul(rows[i], rows[rank])
			}
		}
		rank++
	}

	out := make([][]bool, n)
	for i, row := range rows {
		bits := make([]bool, 0, 2*n+1)
		bits = append(bits, row.x...)
		bits = append(bits, row.z...)
		bits = append(bits, row.r)
		out[i] = bits
	}
	return out
}

// Equal reports whether two states on the same number of qubits are the
// same quantum state.
func Equal(a, b *State) bool {
	if a.n != b.n {
		return false
	}
	ca, cb := a.Canonical(), b.Canonical()
	for i := range ca {
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				return false
			}
		}
	}
	return true
}
