package stabilizer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/circuit"
	"vaq/internal/gate"
	"vaq/internal/workloads"
)

func TestNewIsAllZeros(t *testing.T) {
	s := New(3)
	for q := 0; q < 3; q++ {
		out, det := s.MeasureZ(q, nil)
		if !det || out != 0 {
			t.Fatalf("fresh qubit %d measured %d (det=%v), want deterministic 0", q, out, det)
		}
	}
}

func TestNewPanicsOnZeroQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestXFlipsOutcome(t *testing.T) {
	s := New(2)
	s.X(1)
	if out, det := s.MeasureZ(1, nil); !det || out != 1 {
		t.Fatalf("X|0> measured %d det=%v, want 1 deterministic", out, det)
	}
	if out, det := s.MeasureZ(0, nil); !det || out != 0 {
		t.Fatalf("untouched qubit measured %d det=%v", out, det)
	}
}

func TestXTwiceIsIdentity(t *testing.T) {
	s := New(1)
	s.X(0)
	s.X(0)
	if out, det := s.MeasureZ(0, nil); !det || out != 0 {
		t.Fatalf("XX|0> = %d det=%v, want 0", out, det)
	}
}

func TestHCreatesSuperposition(t *testing.T) {
	s := New(1)
	s.H(0)
	rng := rand.New(rand.NewSource(1))
	_, det := s.MeasureZ(0, rng)
	if det {
		t.Fatal("H|0> measurement should be random")
	}
	// After collapse the outcome repeats deterministically.
	first, _ := s.Clone().MeasureZ(0, rng)
	again, det2 := s.MeasureZ(0, rng)
	_ = first
	if !det2 {
		// The first MeasureZ above already collapsed s? No: we measured a
		// clone; the original collapsed at the initial MeasureZ call.
		t.Fatal("post-collapse measurement should be deterministic")
	}
	third, det3 := s.MeasureZ(0, rng)
	if !det3 || third != again {
		t.Fatal("repeated measurement changed outcome")
	}
}

func TestHHIsIdentity(t *testing.T) {
	s := New(1)
	s.H(0)
	s.H(0)
	if out, det := s.MeasureZ(0, nil); !det || out != 0 {
		t.Fatalf("HH|0> = %d det=%v, want deterministic 0", out, det)
	}
}

func TestBellPairCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ones := 0
	const shots = 200
	for i := 0; i < shots; i++ {
		s := New(2)
		s.H(0)
		s.CX(0, 1)
		a, detA := s.MeasureZ(0, rng)
		b, detB := s.MeasureZ(1, rng)
		if detA {
			t.Fatal("first Bell measurement should be random")
		}
		if !detB {
			t.Fatal("second Bell measurement should be determined by the first")
		}
		if a != b {
			t.Fatalf("Bell pair outcomes disagree: %d vs %d", a, b)
		}
		ones += a
	}
	if ones < shots/4 || ones > 3*shots/4 {
		t.Fatalf("Bell outcomes biased: %d/%d ones", ones, shots)
	}
}

func TestGHZAllEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		s := New(4)
		s.H(0)
		s.CX(0, 1)
		s.CX(1, 2)
		s.CX(2, 3)
		first, _ := s.MeasureZ(0, rng)
		for q := 1; q < 4; q++ {
			v, det := s.MeasureZ(q, rng)
			if !det || v != first {
				t.Fatalf("GHZ qubit %d = %d (det=%v), want %d", q, v, det, first)
			}
		}
	}
}

func TestZPhaseKickback(t *testing.T) {
	// HZH = X.
	s := New(1)
	s.H(0)
	s.Z(0)
	s.H(0)
	if out, det := s.MeasureZ(0, nil); !det || out != 1 {
		t.Fatalf("HZH|0> = %d det=%v, want 1", out, det)
	}
}

func TestSSEqualsZ(t *testing.T) {
	a := New(1)
	a.H(0)
	a.S(0)
	a.S(0)
	b := New(1)
	b.H(0)
	b.Z(0)
	if !Equal(a, b) {
		t.Fatal("SS != Z on |+>")
	}
}

func TestSdgInvertsS(t *testing.T) {
	a := New(2)
	a.H(0)
	a.CX(0, 1)
	b := a.Clone()
	b.S(1)
	b.Sdg(1)
	if !Equal(a, b) {
		t.Fatal("S then Sdg changed the state")
	}
}

func TestYEqualsXZUpToPhase(t *testing.T) {
	// On stabilizer states, Y and Z·X differ only by global phase, which
	// the tableau does not track for the state itself; measurement
	// statistics must agree.
	a := New(1)
	a.H(0)
	a.Y(0)
	b := New(1)
	b.H(0)
	b.Z(0)
	b.X(0)
	if !Equal(a, b) {
		t.Fatal("Y and ZX differ beyond global phase on |+>")
	}
}

func TestCZSymmetric(t *testing.T) {
	a := New(2)
	a.H(0)
	a.H(1)
	a.CZ(0, 1)
	b := New(2)
	b.H(0)
	b.H(1)
	b.CZ(1, 0)
	if !Equal(a, b) {
		t.Fatal("CZ not symmetric")
	}
}

func TestSwapMovesState(t *testing.T) {
	s := New(3)
	s.X(0)
	s.Swap(0, 2)
	if out, _ := s.MeasureZ(0, nil); out != 0 {
		t.Fatal("qubit 0 should be |0> after swap")
	}
	if out, _ := s.MeasureZ(2, nil); out != 1 {
		t.Fatal("qubit 2 should hold the |1>")
	}
}

func TestCXSelfOperandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CX(q,q) did not panic")
		}
	}()
	New(2).CX(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range qubit did not panic")
		}
	}()
	New(2).H(5)
}

func TestApplyCircuitGates(t *testing.T) {
	c := circuit.New("bell", 2).H(0).CX(0, 1).MeasureAll()
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	want := New(2)
	want.H(0)
	want.CX(0, 1)
	if !Equal(s, want) {
		t.Fatal("Run did not reproduce manual application")
	}
}

func TestApplyRejectsNonClifford(t *testing.T) {
	s := New(1)
	g := circuit.NewGate1(gate.T, 0)
	if err := s.Apply(g); err == nil {
		t.Fatal("T gate accepted by stabilizer simulator")
	}
	c := circuit.New("t", 1).T(0)
	if _, err := Run(c); err == nil {
		t.Fatal("Run accepted non-Clifford circuit")
	}
}

func TestIsClifford(t *testing.T) {
	if !IsClifford(workloads.BV(8)) {
		t.Fatal("BV should be Clifford")
	}
	if !IsClifford(workloads.GHZ(3)) || !IsClifford(workloads.TriSwap()) {
		t.Fatal("GHZ/TriSwap should be Clifford")
	}
	if IsClifford(workloads.QFT(4)) {
		t.Fatal("QFT uses non-Clifford phases")
	}
	if IsClifford(workloads.ALU()) {
		t.Fatal("ALU uses T gates")
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if Equal(New(2), New(3)) {
		t.Fatal("states of different sizes reported equal")
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	a := New(2)
	b := New(2)
	b.X(0)
	if Equal(a, b) {
		t.Fatal("|00> equal to |10>")
	}
	b.X(0)
	if !Equal(a, b) {
		t.Fatal("states should match after undoing X")
	}
}

func TestEqualInvariantUnderGeneratorChange(t *testing.T) {
	// Same state prepared two different ways: |00>+|11> via (H0,CX01) and
	// via (H1,CX10) — identical state, different tableau history.
	a := New(2)
	a.H(0)
	a.CX(0, 1)
	b := New(2)
	b.H(1)
	b.CX(1, 0)
	if !Equal(a, b) {
		t.Fatal("Bell state prepared two ways reported different")
	}
}

func TestCliffordIdentitiesProperty(t *testing.T) {
	// Random Clifford circuit followed by its inverse returns to |0…0>.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := New(n)
		type op struct {
			kind int
			a, b int
		}
		var ops []op
		for i := 0; i < 30; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			k := rng.Intn(4)
			ops = append(ops, op{k, a, b})
			switch k {
			case 0:
				s.H(a)
			case 1:
				s.S(a)
			case 2:
				s.CX(a, b)
			case 3:
				s.X(a)
			}
		}
		for i := len(ops) - 1; i >= 0; i-- {
			o := ops[i]
			switch o.kind {
			case 0:
				s.H(o.a)
			case 1:
				s.Sdg(o.a)
			case 2:
				s.CX(o.a, o.b)
			case 3:
				s.X(o.a)
			}
		}
		return Equal(s, New(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasurementIdempotentProperty(t *testing.T) {
	// Measuring the same qubit twice gives the same outcome, and the
	// second is deterministic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := New(n)
		for i := 0; i < 20; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(3) {
			case 0:
				s.H(a)
			case 1:
				s.S(a)
			case 2:
				s.CX(a, b)
			}
		}
		q := rng.Intn(n)
		first, _ := s.MeasureZ(q, rng)
		second, det := s.MeasureZ(q, rng)
		return det && first == second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBVOutcomeIsSecret(t *testing.T) {
	// Bernstein–Vazirani with the all-ones secret: every data qubit must
	// deterministically measure 1.
	for _, n := range []int{3, 4, 8, 16} {
		prog := workloads.BV(n)
		s, err := Run(prog)
		if err != nil {
			t.Fatalf("bv-%d: %v", n, err)
		}
		rng := rand.New(rand.NewSource(1))
		for q := 0; q < n-1; q++ {
			out, det := s.MeasureZ(q, rng)
			if !det || out != 1 {
				t.Fatalf("bv-%d data qubit %d = %d (det=%v), want deterministic 1", n, q, out, det)
			}
		}
	}
}

func TestTriSwapOutcome(t *testing.T) {
	// TriSwap rotates X|0> through the cycle; trace where the 1 ends up.
	s, err := Run(workloads.TriSwap())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ones := 0
	for q := 0; q < 3; q++ {
		out, det := s.MeasureZ(q, rng)
		if !det {
			t.Fatalf("TriSwap outcome for qubit %d not deterministic", q)
		}
		ones += out
	}
	if ones != 1 {
		t.Fatalf("TriSwap should hold exactly one excited qubit, got %d", ones)
	}
}

func TestStringRendersPaulis(t *testing.T) {
	s := New(2)
	s.H(0)
	s.CX(0, 1)
	str := s.String()
	// Bell stabilizers: +XX, +ZZ in some order.
	if len(str) == 0 {
		t.Fatal("empty stabilizer rendering")
	}
	for _, want := range []string{"XX", "ZZ"} {
		found := false
		for _, line := range []string{str[:4], str[4:]} {
			if len(line) >= 3 && line[1:3] == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("stabilizer rendering missing %s:\n%s", want, str)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(2)
	s.H(0)
	c := s.Clone()
	c.X(1)
	if Equal(s, c) {
		t.Fatal("mutating clone affected original (or Equal broken)")
	}
}
