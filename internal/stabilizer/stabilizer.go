// Package stabilizer implements an Aaronson–Gottesman tableau simulator
// for Clifford circuits (H, S, S†, X, Y, Z, CX, CZ, SWAP, measurement).
//
// Several of the paper's benchmarks — Bernstein–Vazirani, GHZ, TriSwap —
// are Clifford circuits, so this simulator provides two capabilities the
// rest of the repository builds on:
//
//   - True quantum-semantic equivalence checking of compiled programs: a
//     routed physical circuit, un-permuted by its final mapping, must
//     prepare exactly the same stabilizer state as the logical circuit
//     (internal/route's replay check validates gate sequences; this
//     validates the quantum state itself).
//
//   - Faithful trial outcomes for the iterative NISQ execution model
//     (paper Figure 4): package trials runs the compiled circuit,
//     injecting Pauli faults drawn from the device's error rates, and
//     measures real bitstrings from the corrupted stabilizer state.
//
// Complexity is O(n²) per gate/measurement and O(n³) for canonicalization,
// ample for NISQ-scale n ≤ a few hundred.
package stabilizer

import (
	"fmt"
	"math/rand"
	"strings"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

// State is the tableau of a stabilizer state on n qubits: rows 0..n−1 are
// the destabilizer generators, rows n..2n−1 the stabilizer generators.
// Row i has X bits x[i], Z bits z[i] and a phase bit r[i] (1 ⇒ −1).
type State struct {
	n int
	x [][]bool
	z [][]bool
	r []bool
}

// New returns the state |0…0⟩ on n qubits: destabilizers X_i,
// stabilizers Z_i, all phases +1.
func New(n int) *State {
	if n <= 0 {
		panic(fmt.Sprintf("stabilizer: need at least one qubit, got %d", n))
	}
	s := &State{
		n: n,
		x: make([][]bool, 2*n),
		z: make([][]bool, 2*n),
		r: make([]bool, 2*n),
	}
	for i := 0; i < 2*n; i++ {
		s.x[i] = make([]bool, n)
		s.z[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		s.x[i][i] = true   // destabilizer X_i
		s.z[n+i][i] = true // stabilizer Z_i
	}
	return s
}

// N returns the number of qubits.
func (s *State) N() int { return s.n }

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{n: s.n, x: make([][]bool, 2*s.n), z: make([][]bool, 2*s.n), r: append([]bool(nil), s.r...)}
	for i := 0; i < 2*s.n; i++ {
		c.x[i] = append([]bool(nil), s.x[i]...)
		c.z[i] = append([]bool(nil), s.z[i]...)
	}
	return c
}

func (s *State) check(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("stabilizer: qubit %d out of range [0,%d)", q, s.n))
	}
}

// H applies a Hadamard on qubit q.
func (s *State) H(q int) {
	s.check(q)
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != (s.x[i][q] && s.z[i][q])
		s.x[i][q], s.z[i][q] = s.z[i][q], s.x[i][q]
	}
}

// S applies the phase gate on qubit q.
func (s *State) S(q int) {
	s.check(q)
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != (s.x[i][q] && s.z[i][q])
		s.z[i][q] = s.z[i][q] != s.x[i][q]
	}
}

// Sdg applies the inverse phase gate (S³).
func (s *State) Sdg(q int) { s.S(q); s.S(q); s.S(q) }

// X applies a Pauli-X on qubit q (conjugation flips the sign of rows
// containing Z_q).
func (s *State) X(q int) {
	s.check(q)
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != s.z[i][q]
	}
}

// Z applies a Pauli-Z on qubit q.
func (s *State) Z(q int) {
	s.check(q)
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != s.x[i][q]
	}
}

// Y applies a Pauli-Y on qubit q.
func (s *State) Y(q int) {
	s.check(q)
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != (s.x[i][q] != s.z[i][q])
	}
}

// CX applies a controlled-NOT with control c and target t.
func (s *State) CX(c, t int) {
	s.check(c)
	s.check(t)
	if c == t {
		panic("stabilizer: CX with identical control and target")
	}
	for i := 0; i < 2*s.n; i++ {
		// Phase rule: r ^= x_c & z_t & (x_t ⊕ z_c ⊕ 1).
		if s.x[i][c] && s.z[i][t] && (s.x[i][t] == s.z[i][c]) {
			s.r[i] = !s.r[i]
		}
		s.x[i][t] = s.x[i][t] != s.x[i][c]
		s.z[i][c] = s.z[i][c] != s.z[i][t]
	}
}

// CZ applies a controlled-Z between a and b.
func (s *State) CZ(a, b int) {
	s.H(b)
	s.CX(a, b)
	s.H(b)
}

// Swap exchanges qubits a and b.
func (s *State) Swap(a, b int) {
	s.CX(a, b)
	s.CX(b, a)
	s.CX(a, b)
}

// rowsum implements the Aaronson–Gottesman rowsum: row h ← row h · row i,
// tracking the global phase via the g function.
func (s *State) rowsum(h, i int) {
	// Phase exponent of the product, mod 4: 2*(r_h + r_i) + Σ g.
	phase := 0
	if s.r[h] {
		phase += 2
	}
	if s.r[i] {
		phase += 2
	}
	for j := 0; j < s.n; j++ {
		phase += g(s.x[i][j], s.z[i][j], s.x[h][j], s.z[h][j])
	}
	phase = ((phase % 4) + 4) % 4
	s.r[h] = phase == 2 // phase must be 0 or 2 for stabilizer rows
	for j := 0; j < s.n; j++ {
		s.x[h][j] = s.x[h][j] != s.x[i][j]
		s.z[h][j] = s.z[h][j] != s.z[i][j]
	}
}

// g returns the exponent of i contributed when multiplying single-qubit
// Paulis (x1,z1)·(x2,z2), per Aaronson–Gottesman.
func g(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1: // I
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		return b2i(z2) * (2*b2i(x2) - 1)
	default: // Z
		return b2i(x2) * (1 - 2*b2i(z2))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// MeasureZ measures qubit q in the computational basis. When the outcome
// is determined by the state, deterministic is true and rng is unused;
// otherwise the outcome is drawn from rng (fair coin) and the state
// collapses.
func (s *State) MeasureZ(q int, rng *rand.Rand) (outcome int, deterministic bool) {
	s.check(q)
	// Find a stabilizer row with x[q] set: outcome is random.
	p := -1
	for i := s.n; i < 2*s.n; i++ {
		if s.x[i][q] {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome.
		for i := 0; i < 2*s.n; i++ {
			if i != p && s.x[i][q] {
				s.rowsum(i, p)
			}
		}
		// Destabilizer row p−n becomes old stabilizer row p.
		copy(s.x[p-s.n], s.x[p])
		copy(s.z[p-s.n], s.z[p])
		s.r[p-s.n] = s.r[p]
		// New stabilizer: ±Z_q.
		for j := 0; j < s.n; j++ {
			s.x[p][j] = false
			s.z[p][j] = false
		}
		s.z[p][q] = true
		out := 0
		if rng == nil || rng.Intn(2) == 1 {
			out = 1
		}
		s.r[p] = out == 1
		return out, false
	}
	// Deterministic outcome: accumulate into a scratch row.
	scratch := s.scratchRow()
	for i := 0; i < s.n; i++ {
		if s.x[i][q] { // destabilizer anticommutes with Z_q
			s.rowsumScratch(scratch, s.n+i)
		}
	}
	if scratch.r {
		return 1, true
	}
	return 0, true
}

// scratch is a standalone row used by deterministic measurement.
type scratch struct {
	x, z []bool
	r    bool
}

func (s *State) scratchRow() *scratch {
	return &scratch{x: make([]bool, s.n), z: make([]bool, s.n)}
}

func (s *State) rowsumScratch(h *scratch, i int) {
	phase := 0
	if h.r {
		phase += 2
	}
	if s.r[i] {
		phase += 2
	}
	for j := 0; j < s.n; j++ {
		phase += g(s.x[i][j], s.z[i][j], h.x[j], h.z[j])
	}
	phase = ((phase % 4) + 4) % 4
	h.r = phase == 2
	for j := 0; j < s.n; j++ {
		h.x[j] = h.x[j] != s.x[i][j]
		h.z[j] = h.z[j] != s.z[i][j]
	}
}

// Apply applies one circuit gate. Measurements are not applied here (use
// MeasureZ); barriers are ignored. Non-Clifford gates return an error.
func (s *State) Apply(gt circuit.Gate) error {
	switch gt.Kind {
	case gate.I, gate.Barrier, gate.Measure:
		return nil
	case gate.H:
		s.H(gt.Qubits[0])
	case gate.S:
		s.S(gt.Qubits[0])
	case gate.Sdg:
		s.Sdg(gt.Qubits[0])
	case gate.X:
		s.X(gt.Qubits[0])
	case gate.Y:
		s.Y(gt.Qubits[0])
	case gate.Z:
		s.Z(gt.Qubits[0])
	case gate.CX:
		s.CX(gt.Qubits[0], gt.Qubits[1])
	case gate.CZ:
		s.CZ(gt.Qubits[0], gt.Qubits[1])
	case gate.SWAP:
		s.Swap(gt.Qubits[0], gt.Qubits[1])
	default:
		return fmt.Errorf("stabilizer: %s is not a Clifford gate", gt.Kind)
	}
	return nil
}

// Run applies every non-measurement gate of the circuit in order.
func Run(c *circuit.Circuit) (*State, error) {
	s := New(max(1, c.NumQubits))
	for _, gt := range c.Gates {
		if err := s.Apply(gt); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// IsClifford reports whether every gate in the circuit is Clifford (or a
// measurement/barrier).
func IsClifford(c *circuit.Circuit) bool {
	for _, gt := range c.Gates {
		switch gt.Kind {
		case gate.I, gate.Barrier, gate.Measure, gate.H, gate.S, gate.Sdg,
			gate.X, gate.Y, gate.Z, gate.CX, gate.CZ, gate.SWAP:
		default:
			return false
		}
	}
	return true
}

// String renders the stabilizer generators (for debugging).
func (s *State) String() string {
	var b strings.Builder
	for i := s.n; i < 2*s.n; i++ {
		if s.r[i] {
			b.WriteByte('-')
		} else {
			b.WriteByte('+')
		}
		for j := 0; j < s.n; j++ {
			switch {
			case s.x[i][j] && s.z[i][j]:
				b.WriteByte('Y')
			case s.x[i][j]:
				b.WriteByte('X')
			case s.z[i][j]:
				b.WriteByte('Z')
			default:
				b.WriteByte('I')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
