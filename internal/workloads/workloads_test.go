package workloads

import (
	"sort"
	"strings"
	"testing"

	"vaq/internal/gate"
)

func TestBVShape(t *testing.T) {
	c := BV(16)
	if c.NumQubits != 16 {
		t.Fatalf("bv-16 qubits = %d", c.NumQubits)
	}
	s := c.Stats()
	if s.TwoQubit != 15 {
		t.Fatalf("bv-16 CNOTs = %d, want 15 (all-ones secret)", s.TwoQubit)
	}
	if s.Measures != 15 {
		t.Fatalf("bv-16 measures = %d, want 15 data qubits", s.Measures)
	}
	// Table 1: bv-16 has 66 total instructions; our construction is 62
	// (the paper's exact gate list is not published). Stay within ±10%.
	if s.Total < 59 || s.Total > 73 {
		t.Fatalf("bv-16 total instructions = %d, want ≈66", s.Total)
	}
	// Star pattern: every CNOT targets the ancilla.
	for _, g := range c.Gates {
		if g.Kind == gate.CX && g.Qubits[1] != 15 {
			t.Fatalf("CNOT target = %d, want ancilla 15", g.Qubits[1])
		}
	}
}

func TestBVSizes(t *testing.T) {
	if got := BV(20).Stats().Total; got < 75 || got > 99 {
		t.Fatalf("bv-20 total = %d, want ≈90 (Table 1)", got)
	}
	if BV(3).NumQubits != 3 || BV(4).NumQubits != 4 {
		t.Fatal("small BV sizes wrong")
	}
}

func TestBVPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BV(1) did not panic")
		}
	}()
	BV(1)
}

func TestQFTShape(t *testing.T) {
	c := QFT(12)
	s := c.Stats()
	// n(n-1)/2 controlled-phases × 2 CNOTs.
	if want := 12 * 11; s.TwoQubit != want {
		t.Fatalf("qft-12 CNOTs = %d, want %d", s.TwoQubit, want)
	}
	// Table 1: 344 total instructions; ours is 342 + 12 measures.
	if s.Total < 330 || s.Total > 365 {
		t.Fatalf("qft-12 total = %d, want ≈344", s.Total)
	}
	if got := QFT(14).Stats().TwoQubit; got != 14*13 {
		t.Fatalf("qft-14 CNOTs = %d", got)
	}
}

func TestQFTAllToAllInteraction(t *testing.T) {
	c := QFT(6)
	inter := c.InteractionCounts()
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if inter[i][j] == 0 {
				t.Fatalf("qft pair (%d,%d) never interacts — should be all-to-all", i, j)
			}
		}
	}
}

func TestALUShape(t *testing.T) {
	c := ALU()
	if c.NumQubits != 10 {
		t.Fatalf("alu qubits = %d, want 10", c.NumQubits)
	}
	s := c.Stats()
	// Table 1: 299 instructions. The Cuccaro double-add lands nearby.
	if s.Total < 250 || s.Total > 340 {
		t.Fatalf("alu total = %d, want ≈299", s.Total)
	}
	if s.TwoQubit < 60 {
		t.Fatalf("alu CNOTs = %d, suspiciously few for an adder", s.TwoQubit)
	}
}

func TestRandBenchmarks(t *testing.T) {
	sd := RandSD(1)
	ld := RandLD(1)
	for _, c := range []struct {
		name  string
		s     int
		total int
	}{{"rnd-SD", sd.Stats().TwoQubit, sd.Stats().Total}, {"rnd-LD", ld.Stats().TwoQubit, ld.Stats().Total}} {
		if c.s != 60 {
			t.Fatalf("%s CNOTs = %d, want 60", c.name, c.s)
		}
		// Table 1 total: 100 instructions (60 CX + 20 H + 20 measure).
		if c.total != 100 {
			t.Fatalf("%s total = %d, want 100", c.name, c.total)
		}
	}
	// Distance constraints hold.
	for _, g := range sd.Gates {
		if g.Kind == gate.CX {
			d := g.Qubits[0] - g.Qubits[1]
			if d < 0 {
				d = -d
			}
			if d > 3 {
				t.Fatalf("rnd-SD CNOT distance %d > 3", d)
			}
		}
	}
	for _, g := range ld.Gates {
		if g.Kind == gate.CX {
			d := g.Qubits[0] - g.Qubits[1]
			if d < 0 {
				d = -d
			}
			if d < 8 {
				t.Fatalf("rnd-LD CNOT distance %d < 8", d)
			}
		}
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a, b := RandSD(7), RandSD(7)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed, different gate count")
	}
	for i := range a.Gates {
		if a.Gates[i].Kind != b.Gates[i].Kind || a.Gates[i].Qubits[0] != b.Gates[i].Qubits[0] {
			t.Fatal("same seed, different gates")
		}
	}
	c := RandSD(8)
	same := len(a.Gates) == len(c.Gates)
	if same {
		for i := range a.Gates {
			if a.Gates[i].Kind == gate.CX && c.Gates[i].Kind == gate.CX &&
				(a.Gates[i].Qubits[0] != c.Gates[i].Qubits[0] || a.Gates[i].Qubits[1] != c.Gates[i].Qubits[1]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical benchmarks")
	}
}

func TestGHZ(t *testing.T) {
	c := GHZ(3)
	s := c.Stats()
	if s.TwoQubit != 2 || s.OneQubit != 1 || s.Measures != 3 {
		t.Fatalf("GHZ-3 stats = %+v", s)
	}
}

func TestTriSwap(t *testing.T) {
	c := TriSwap()
	s := c.Stats()
	if s.Swaps != 3 {
		t.Fatalf("TriSwap swaps = %d, want 3", s.Swaps)
	}
	if s.CNOTs != 9 {
		t.Fatalf("TriSwap CNOT cost = %d, want 9", s.CNOTs)
	}
}

func TestSuites(t *testing.T) {
	t1 := Table1Suite()
	if len(t1) != 7 {
		t.Fatalf("Table 1 suite size = %d, want 7", len(t1))
	}
	wantQubits := map[string]int{
		"alu": 10, "bv-16": 16, "bv-20": 20, "qft-12": 12, "qft-14": 14,
		"rnd-SD": 20, "rnd-LD": 20,
	}
	for _, spec := range t1 {
		if got := spec.Circuit.NumQubits; got != wantQubits[spec.Name] {
			t.Errorf("%s qubits = %d, want %d", spec.Name, got, wantQubits[spec.Name])
		}
	}
	if len(Q5Suite()) != 4 {
		t.Fatal("Q5 suite should have 4 kernels")
	}
	for _, spec := range Q5Suite() {
		if spec.Circuit.NumQubits > 5 {
			t.Errorf("%s needs %d qubits, exceeds IBM-Q5", spec.Name, spec.Circuit.NumQubits)
		}
	}
	for _, spec := range TenQubitSuite() {
		if spec.Circuit.NumQubits != 10 {
			t.Errorf("%s qubits = %d, want 10", spec.Name, spec.Circuit.NumQubits)
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		name    string
		qubits  int    // expected NumQubits on success
		wantErr string // substring the error must carry; empty = success
	}{
		{name: "alu", qubits: 10},
		{name: "ALU", qubits: 10}, // case-insensitive
		{name: "triswap", qubits: 3},
		{name: "rnd-SD", qubits: 20},
		{name: "rnd-ld", qubits: 20},
		{name: "bv-16", qubits: 16},
		{name: "qft-12", qubits: 12},
		{name: "ghz-3", qubits: 3},
		{name: "bv-1", wantErr: "size must be in"},
		{name: "bv-999999999", wantErr: "size must be in"},
		{name: "qft-x", wantErr: "bad workload"},
		{name: "bv-", wantErr: "bad workload"},
		// Unknown names must enumerate the valid forms so CLI users and
		// nisqd 400 bodies are self-explanatory.
		{name: "sorcery-9", wantErr: "valid: alu, bv-N, ghz-N, qft-N, rnd-LD, rnd-SD, triswap"},
		{name: "", wantErr: "valid: alu"},
	}
	for _, tc := range cases {
		c, err := ByName(tc.name)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("ByName(%q) succeeded, want error containing %q", tc.name, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ByName(%q) error %q does not contain %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ByName(%q): %v", tc.name, err)
			continue
		}
		if c.NumQubits != tc.qubits {
			t.Errorf("ByName(%q) has %d qubits, want %d", tc.name, c.NumQubits, tc.qubits)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	// Every listed fixed name resolves; every parameterized form
	// resolves with a small N.
	for _, n := range names {
		probe := strings.Replace(n, "-N", "-4", 1)
		if _, err := ByName(probe); err != nil {
			t.Errorf("listed workload form %q does not resolve as %q: %v", n, probe, err)
		}
	}
}
