// Package workloads generates the benchmark circuits of the paper's Table 1
// and Section 7: the Bernstein–Vazirani kernels, Quantum Fourier
// Transforms, a reversible-adder ALU kernel, the randomized short- and
// long-distance CNOT benchmarks, and the small IBM-Q5 kernels (GHZ,
// TriSwap). All generators are deterministic; the random benchmarks take an
// explicit seed.
package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"vaq/internal/circuit"
)

// BV returns the n-qubit Bernstein–Vazirani circuit with the all-ones
// hidden string: n−1 data qubits plus one ancilla (qubit n−1). BV requires
// one qubit (the ancilla) to entangle with every other — the paper's
// example of a star-shaped communication pattern.
func BV(n int) *circuit.Circuit {
	if n < 2 {
		panic(fmt.Sprintf("workloads: BV needs ≥ 2 qubits, got %d", n))
	}
	c := circuit.New(fmt.Sprintf("bv-%d", n), n)
	anc := n - 1
	c.X(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n-1; q++ {
		c.CX(q, anc)
	}
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	for q := 0; q < n-1; q++ {
		c.Measure(q, q)
	}
	return c
}

// QFT returns the n-qubit Quantum Fourier Transform with controlled-phase
// gates decomposed into the CX + u1 sequence executable on IBM hardware
// (2 CNOTs and 3 phase rotations per controlled-phase). QFT entangles
// (almost) all pairs — the paper's worst-case communication pattern.
func QFT(n int) *circuit.Circuit {
	if n < 1 {
		panic(fmt.Sprintf("workloads: QFT needs ≥ 1 qubit, got %d", n))
	}
	c := circuit.New(fmt.Sprintf("qft-%d", n), n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			theta := math.Pi / math.Pow(2, float64(j-i))
			controlledPhase(c, j, i, theta)
		}
	}
	c.MeasureAll()
	return c
}

// controlledPhase appends CU1(theta) decomposed for a CX-based gate set:
// u1(θ/2) on the control, CX, u1(−θ/2) on the target, CX, u1(θ/2) on the
// target.
func controlledPhase(c *circuit.Circuit, ctrl, tgt int, theta float64) {
	c.U1(theta/2, ctrl)
	c.CX(ctrl, tgt)
	c.U1(-theta/2, tgt)
	c.CX(ctrl, tgt)
	c.U1(theta/2, tgt)
}

// ALU returns the paper's 10-qubit quantum-adder kernel: a 4-bit Cuccaro
// ripple-carry adder computed forward and then uncomputed (add followed by
// subtract), on qubits [carry-in, a0,b0, a1,b1, a2,b2, a3,b3, carry-out].
// Toffolis are decomposed into the standard 6-CNOT + 9 single-qubit
// network, giving ≈300 instructions like Table 1's alu row.
func ALU() *circuit.Circuit {
	const bits = 4
	c := circuit.New("alu", 2*bits+2)
	cin := 0
	a := func(i int) int { return 1 + 2*i }
	b := func(i int) int { return 2 + 2*i }
	cout := 2*bits + 1

	// Load operands: a = 0101, b = 0011.
	c.X(a(0)).X(a(2))
	c.X(b(0)).X(b(1))

	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		toffoli(c, x, y, z)
	}
	uma := func(x, y, z int) {
		toffoli(c, x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}

	add := func() {
		maj(cin, b(0), a(0))
		for i := 1; i < bits; i++ {
			maj(a(i-1), b(i), a(i))
		}
		c.CX(a(bits-1), cout)
		for i := bits - 1; i >= 1; i-- {
			uma(a(i-1), b(i), a(i))
		}
		uma(cin, b(0), a(0))
	}
	add()
	add() // second pass: b += a again (doubles the sum, exercising carries)
	c.MeasureAll()
	return c
}

// toffoli appends the 6-CNOT, 9-single-qubit decomposition of a
// CCX(c1, c2, target).
func toffoli(c *circuit.Circuit, c1, c2, tgt int) {
	c.H(tgt)
	c.CX(c2, tgt)
	c.Tdg(tgt)
	c.CX(c1, tgt)
	c.T(tgt)
	c.CX(c2, tgt)
	c.Tdg(tgt)
	c.CX(c1, tgt)
	c.T(c2)
	c.T(tgt)
	c.H(tgt)
	c.CX(c1, c2)
	c.T(c1)
	c.Tdg(c2)
	c.CX(c1, c2)
}

// RandConfig controls the randomized benchmarks of Table 1.
type RandConfig struct {
	Qubits int
	CNOTs  int
	Seed   int64
	// MaxDistance / MinDistance constrain |a−b| between CNOT operands in
	// program-qubit index space: small distances model local communication
	// (rnd-SD), large distances long-range communication (rnd-LD).
	MinDistance int
	MaxDistance int
}

// Rand generates a randomized CNOT benchmark under cfg.
func Rand(name string, cfg RandConfig) *circuit.Circuit {
	if cfg.Qubits < 2 {
		panic("workloads: Rand needs ≥ 2 qubits")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := circuit.New(name, cfg.Qubits)
	for q := 0; q < cfg.Qubits; q++ {
		c.H(q)
	}
	placed := 0
	for placed < cfg.CNOTs {
		a := rng.Intn(cfg.Qubits)
		b := rng.Intn(cfg.Qubits)
		d := a - b
		if d < 0 {
			d = -d
		}
		if b == a || d < cfg.MinDistance || (cfg.MaxDistance > 0 && d > cfg.MaxDistance) {
			continue
		}
		c.CX(a, b)
		placed++
	}
	c.MeasureAll()
	return c
}

// RandSD returns the paper's rnd-SD benchmark: 20 qubits, 100 total
// instructions (60 random CNOTs between nearby program qubits plus the
// per-qubit preparation and measurement).
func RandSD(seed int64) *circuit.Circuit {
	return Rand("rnd-SD", RandConfig{Qubits: 20, CNOTs: 60, Seed: seed, MinDistance: 1, MaxDistance: 3})
}

// RandLD returns the paper's rnd-LD benchmark: 20 qubits, 100 total
// instructions with the 60 random CNOTs between distant program qubits.
func RandLD(seed int64) *circuit.Circuit {
	return Rand("rnd-LD", RandConfig{Qubits: 20, CNOTs: 60, Seed: seed, MinDistance: 8})
}

// GHZ returns the n-qubit GHZ-state preparation (H + CX chain), one of the
// IBM-Q5 kernels of Table 3.
func GHZ(n int) *circuit.Circuit {
	if n < 2 {
		panic("workloads: GHZ needs ≥ 2 qubits")
	}
	c := circuit.New(fmt.Sprintf("GHZ-%d", n), n)
	c.H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	return c
}

// TriSwap returns the SWAP-heavy 3-qubit IBM-Q5 kernel of Table 3: a
// cyclic rotation of three qubit states implemented with SWAPs (9 CNOTs
// after lowering), the workload where variation-awareness pays the most.
func TriSwap() *circuit.Circuit {
	c := circuit.New("TriSwap", 3)
	c.X(0) // distinguishable state to rotate
	c.Swap(0, 1)
	c.Swap(1, 2)
	c.Swap(0, 1)
	c.MeasureAll()
	return c
}

// Spec pairs a benchmark with its provenance for tables.
type Spec struct {
	Name        string
	Description string
	Circuit     *circuit.Circuit
}

// Table1Suite returns the seven benchmarks of the paper's Table 1. The
// random benchmarks use fixed seeds so the suite is reproducible.
func Table1Suite() []Spec {
	return []Spec{
		{"alu", "Quantum adder (Cuccaro, Toffoli-decomposed)", ALU()},
		{"bv-16", "Bernstein-Vazirani", BV(16)},
		{"bv-20", "Bernstein-Vazirani", BV(20)},
		{"qft-12", "Quantum Fourier Transform", QFT(12)},
		{"qft-14", "Quantum Fourier Transform", QFT(14)},
		{"rnd-SD", "Random benchmark, short-distance communication", RandSD(1)},
		{"rnd-LD", "Random benchmark, long-distance communication", RandLD(1)},
	}
}

// Q5Suite returns the IBM-Q5 kernels of Table 3.
func Q5Suite() []Spec {
	return []Spec{
		{"bv-3", "Bernstein-Vazirani", BV(3)},
		{"bv-4", "Bernstein-Vazirani", BV(4)},
		{"TriSwap", "Cyclic triple swap", TriSwap()},
		{"GHZ-3", "GHZ state preparation", GHZ(3)},
	}
}

// TenQubitSuite returns the 10-qubit workload variants of the Section 8
// partitioning study (Figure 16).
func TenQubitSuite() []Spec {
	return []Spec{
		{"alu_10", "Quantum adder", ALU()},
		{"bv_10", "Bernstein-Vazirani", BV(10)},
		{"qft_10", "Quantum Fourier Transform", QFT(10)},
	}
}

// MaxNamedQubits bounds the size parameter a ByName request can ask for.
// ByName serves untrusted input (CLI flags, the nisqd HTTP API), where
// "bv-999999999" must be a clean error, not a giant allocation.
const MaxNamedQubits = 4096

// Names lists the valid ByName workload forms, alphabetically. Error
// messages embed it so a caller who typos a name (or a nisqd client
// reading a 400 body) sees what would have been accepted.
func Names() []string {
	return []string{"alu", "bv-N", "ghz-N", "qft-N", "rnd-LD", "rnd-SD", "triswap"}
}

// ByName resolves a CLI- or API-style workload name: alu, triswap,
// rnd-SD, rnd-LD, bv-N, qft-N, ghz-N (case-insensitive). Unlike the
// generator functions, ByName never panics: malformed names, sizes below
// a generator's minimum, and sizes above MaxNamedQubits all return
// errors, and the unknown-name error lists the valid forms.
func ByName(name string) (*circuit.Circuit, error) {
	lower := strings.ToLower(name)
	sized := func(prefix string, min int) (int, error) {
		n, err := strconv.Atoi(lower[len(prefix):])
		if err != nil {
			return 0, fmt.Errorf("bad workload %q", name)
		}
		if n < min || n > MaxNamedQubits {
			return 0, fmt.Errorf("workload %q: size must be in [%d, %d]", name, min, MaxNamedQubits)
		}
		return n, nil
	}
	switch {
	case lower == "alu":
		return ALU(), nil
	case lower == "triswap":
		return TriSwap(), nil
	case lower == "rnd-sd":
		return RandSD(1), nil
	case lower == "rnd-ld":
		return RandLD(1), nil
	case strings.HasPrefix(lower, "bv-"):
		n, err := sized("bv-", 2)
		if err != nil {
			return nil, err
		}
		return BV(n), nil
	case strings.HasPrefix(lower, "qft-"):
		n, err := sized("qft-", 1)
		if err != nil {
			return nil, err
		}
		return QFT(n), nil
	case strings.HasPrefix(lower, "ghz-"):
		n, err := sized("ghz-", 2)
		if err != nil {
			return nil, err
		}
		return GHZ(n), nil
	default:
		return nil, fmt.Errorf("unknown workload %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
}
