package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/topo"
)

// uniformQ20 returns an IBM-Q20 device with uniform link error e.
func uniformQ20(t *testing.T, e float64) *device.Device {
	t.Helper()
	tp := topo.IBMQ20()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = e
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	return device.MustNew(tp, s)
}

// skewedQ5 returns a Tenerife device where the 3-4 link is strong and the
// 0-1 link is weak.
func skewedQ5(t *testing.T) *device.Device {
	t.Helper()
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	rates := map[topo.Coupling]float64{
		{A: 0, B: 1}: 0.20,
		{A: 0, B: 2}: 0.10,
		{A: 1, B: 2}: 0.10,
		{A: 2, B: 3}: 0.04,
		{A: 2, B: 4}: 0.05,
		{A: 3, B: 4}: 0.02,
	}
	for c, e := range rates {
		s.TwoQubit[c] = e
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	return device.MustNew(tp, s)
}

func bell() *circuit.Circuit {
	return circuit.New("bell", 2).H(0).CX(0, 1).MeasureAll()
}

func TestMappingInverse(t *testing.T) {
	m := Mapping{3, 0, 2}
	inv := m.Inverse(5)
	want := []int{1, -1, 2, 0, -1}
	for i, v := range want {
		if inv[i] != v {
			t.Fatalf("Inverse = %v, want %v", inv, want)
		}
	}
}

func TestMappingValidate(t *testing.T) {
	if err := (Mapping{0, 1, 2}).Validate(5); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	if err := (Mapping{0, 0}).Validate(5); err == nil {
		t.Fatal("duplicate target accepted")
	}
	if err := (Mapping{0, 7}).Validate(5); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := (Mapping{-1}).Validate(5); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestMappingClone(t *testing.T) {
	m := Mapping{1, 2}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestAllPoliciesProduceValidMappings(t *testing.T) {
	d := uniformQ20(t, 0.05)
	prog := circuit.New("chain", 6)
	for i := 0; i+1 < 6; i++ {
		prog.CX(i, i+1)
	}
	policies := []Policy{Greedy{}, VQA{}, NewRandom(1)}
	for _, p := range policies {
		m, err := p.Allocate(d, prog)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(m) != prog.NumQubits {
			t.Fatalf("%s: mapping length %d, want %d", p.Name(), len(m), prog.NumQubits)
		}
		if err := m.Validate(d.NumQubits()); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestPoliciesRejectOversizedPrograms(t *testing.T) {
	d := skewedQ5(t)
	prog := circuit.New("big", 9)
	for _, p := range []Policy{Greedy{}, VQA{}, NewRandom(1)} {
		if _, err := p.Allocate(d, prog); err == nil {
			t.Fatalf("%s accepted a 9-qubit program on a 5-qubit machine", p.Name())
		}
	}
}

func TestGreedyPlacesInteractingQubitsAdjacent(t *testing.T) {
	d := uniformQ20(t, 0.05)
	m, err := Greedy{}.Allocate(d, bell())
	if err != nil {
		t.Fatal(err)
	}
	if hd := d.HopDistance(m[0], m[1]); hd != 1 {
		t.Fatalf("bell pair placed %v hops apart, want adjacent", hd)
	}
}

func TestGreedyKeepsChainLocal(t *testing.T) {
	d := uniformQ20(t, 0.05)
	prog := circuit.New("chain", 4).CX(0, 1).CX(1, 2).CX(2, 3)
	m, err := Greedy{}.Allocate(d, prog)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		total += d.HopDistance(m[pair[0]], m[pair[1]])
	}
	// A good placement keeps each interacting pair within ~1–2 hops.
	if total > 5 {
		t.Fatalf("chain placement too spread out: total hop distance %v (mapping %v)", total, m)
	}
}

func TestVQAPicksStrongestLinkForBellPair(t *testing.T) {
	// On the skewed Tenerife, the 3–4 link (error 0.02) is strongest; a
	// two-qubit program must land on the strong triangle {2,3,4}, and the
	// interacting pair should use a strong link, not 0–1 (error 0.20).
	d := skewedQ5(t)
	m, err := VQA{}.Allocate(d, bell())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Topology().Adjacent(m[0], m[1]) {
		t.Fatalf("bell pair not adjacent: %v", m)
	}
	e := d.Snapshot().MustTwoQubitError(m[0], m[1])
	if e > 0.05 {
		t.Fatalf("VQA placed bell pair on link with error %v (mapping %v), want a strong link", e, m)
	}
}

func TestVQAAvoidsWeakRegionOnQ20(t *testing.T) {
	tp := topo.IBMQ20()
	s := calib.NewSnapshot(tp)
	// Left half of the chip strong, right half weak.
	for _, c := range tp.Couplings {
		if c.A%5 <= 1 && c.B%5 <= 2 {
			s.TwoQubit[c] = 0.02
		} else {
			s.TwoQubit[c] = 0.12
		}
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	d := device.MustNew(tp, s)
	prog := circuit.New("pair-heavy", 4).CX(0, 1).CX(0, 1).CX(2, 3).CX(0, 1)
	m, err := VQA{}.Allocate(d, prog)
	if err != nil {
		t.Fatal(err)
	}
	// The hot pair (0,1) must sit on a strong link.
	if !d.Topology().Adjacent(m[0], m[1]) {
		t.Fatalf("hot pair not adjacent: %v", m)
	}
	if e := d.Snapshot().MustTwoQubitError(m[0], m[1]); e > 0.05 {
		t.Fatalf("hot pair on weak link (error %v), mapping %v", e, m)
	}
}

func TestVQAActivityWindow(t *testing.T) {
	d := skewedQ5(t)
	// Qubit pair (0,1) is hot early; (2,3) hot later. A window of 1 layer
	// must rank 0 and 1 highest; both configurations must be valid.
	prog := circuit.New("phased", 4).CX(0, 1).CX(2, 3).CX(2, 3).CX(2, 3)
	early, err := VQA{ActivityLayers: 1}.Allocate(d, prog)
	if err != nil {
		t.Fatal(err)
	}
	full, err := VQA{}.Allocate(d, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := early.Validate(d.NumQubits()); err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(d.NumQubits()); err != nil {
		t.Fatal(err)
	}
}

func TestVQAReadoutWeightAvoidsBadReadout(t *testing.T) {
	// A 2-qubit measured program on a triangle where every link is equal
	// but one qubit has terrible readout: the readout-aware VQA must
	// avoid it; the paper-faithful VQA has no reason to.
	tp := topo.FullyConnected(3)
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = 0.03
	}
	for q := 0; q < 3; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	s.Readout[0] = 0.40 // terrible readout on qubit 0
	d := device.MustNew(tp, s)
	prog := circuit.New("m", 2).CX(0, 1).MeasureAll()

	aware := VQA{ReadoutWeight: 3}
	m, err := aware.Allocate(d, prog)
	if err != nil {
		t.Fatal(err)
	}
	for p, phys := range m {
		if phys == 0 {
			t.Fatalf("readout-aware VQA placed measured qubit %d on bad-readout qubit 0 (mapping %v)", p, m)
		}
	}
	if aware.Name() != "vqa+readout" || (VQA{}).Name() != "vqa" {
		t.Fatal("VQA names wrong")
	}
}

func TestRandomIsSeededAndVaries(t *testing.T) {
	d := uniformQ20(t, 0.05)
	prog := circuit.New("p", 5)
	a1, _ := NewRandom(7).Allocate(d, prog)
	a2, _ := NewRandom(7).Allocate(d, prog)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different mappings")
		}
	}
	r := NewRandom(7)
	first, _ := r.Allocate(d, prog)
	varied := false
	for trial := 0; trial < 8 && !varied; trial++ {
		next, _ := r.Allocate(d, prog)
		for i := range first {
			if next[i] != first[i] {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("random policy produced identical mappings across calls")
	}
}

func TestRandomMappingsValidProperty(t *testing.T) {
	d := uniformQ20(t, 0.05)
	f := func(seed int64, nq uint8) bool {
		n := 1 + int(nq)%20
		prog := circuit.New("p", n)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10 && n > 1; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			prog.CX(a, b)
		}
		m, err := NewRandom(seed).Allocate(d, prog)
		if err != nil {
			return false
		}
		return m.Validate(d.NumQubits()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVQAFullMachineProgram(t *testing.T) {
	// k = 20 on a 20-qubit machine: the "strong subgraph" is the whole
	// chip; mapping must still be a permutation.
	d := uniformQ20(t, 0.05)
	prog := circuit.New("wide", 20)
	for i := 0; i+1 < 20; i++ {
		prog.CX(i, i+1)
	}
	m, err := VQA{}.Allocate(d, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(20); err != nil {
		t.Fatal(err)
	}
}
