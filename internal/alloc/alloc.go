// Package alloc implements Qubit-Allocation policies: the mapping of
// program qubits to physical qubits that a compiled NISQ program starts
// from. Three policies are provided:
//
//   - Greedy: the baseline's interaction-aware placement, which minimizes
//     expected SWAP distance while assuming every link is equally reliable.
//   - VQA: the paper's Variation-Aware Qubit Allocation (Algorithm 2),
//     which selects the connected subgraph with the highest aggregate node
//     strength and maps the most active program qubits onto it.
//   - Random: seeded random placement, modeling the IBM native compiler's
//     randomized initial mapping.
package alloc

import (
	"fmt"
	"math/rand"
	"sort"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/graphx"
)

// Mapping assigns each program qubit to a physical qubit:
// Mapping[p] = physical location of program qubit p.
type Mapping []int

// Clone returns a copy of the mapping.
func (m Mapping) Clone() Mapping {
	c := make(Mapping, len(m))
	copy(c, m)
	return c
}

// Inverse returns the physical→program view over numPhysical qubits;
// unoccupied physical qubits map to −1.
func (m Mapping) Inverse(numPhysical int) []int {
	return m.InverseInto(make([]int, numPhysical))
}

// InverseInto fills inv — whose length is the physical qubit count — with
// the physical→program view and returns it; unoccupied physical qubits
// map to −1. The allocation-free form of Inverse for callers (the routing
// search) that own a reusable buffer.
func (m Mapping) InverseInto(inv []int) []int {
	for i := range inv {
		inv[i] = -1
	}
	for p, phys := range m {
		inv[phys] = p
	}
	return inv
}

// Validate checks that the mapping is injective and within range.
func (m Mapping) Validate(numPhysical int) error {
	seen := make(map[int]int, len(m))
	for p, phys := range m {
		if phys < 0 || phys >= numPhysical {
			return fmt.Errorf("alloc: program qubit %d mapped to %d, out of [0,%d)", p, phys, numPhysical)
		}
		if prev, dup := seen[phys]; dup {
			return fmt.Errorf("alloc: program qubits %d and %d share physical qubit %d", prev, p, phys)
		}
		seen[phys] = p
	}
	return nil
}

// Policy produces an initial program→physical mapping for a circuit on a
// device.
//
// Concurrency contract: Allocate may be called from concurrent
// goroutines only on implementations that carry no mutable state.
// Greedy and VQA are stateless and safe to share. Random carries a
// mutable RNG stream, so concurrent callers (the portfolio compiler's
// candidate fan-out) must construct one instance per goroutine — either
// NewRandom with a per-worker derived seed, or Clone of a prototype.
type Policy interface {
	Name() string
	Allocate(d *device.Device, c *circuit.Circuit) (Mapping, error)
}

// checkFit verifies the program fits on the machine.
func checkFit(d *device.Device, c *circuit.Circuit) error {
	if c.NumQubits > d.NumQubits() {
		return fmt.Errorf("alloc: program needs %d qubits, device %q has %d",
			c.NumQubits, d.Topology().Name, d.NumQubits())
	}
	return nil
}

// Greedy is the baseline allocation: program qubits are placed in
// descending order of total interaction count; the first goes to the
// physical qubit with the lowest total hop distance to the rest of the
// machine (the most central), and each subsequent qubit goes to the free
// physical qubit minimizing the interaction-weighted hop distance to its
// already-placed partners. All links are treated as equal, per the
// baseline's uniform-SWAP-cost assumption.
type Greedy struct{}

func (Greedy) Name() string { return "greedy" }

func (Greedy) Allocate(d *device.Device, c *circuit.Circuit) (Mapping, error) {
	if err := checkFit(d, c); err != nil {
		return nil, err
	}
	inter := c.InteractionCounts()
	order := qubitOrder(interactionTotals(inter))
	n := d.NumQubits()

	free := make([]bool, n)
	for i := range free {
		free[i] = true
	}
	m := make(Mapping, c.NumQubits)
	for i := range m {
		m[i] = -1
	}

	for _, p := range order {
		best, bestCost := -1, 0.0
		for phys := 0; phys < n; phys++ {
			if !free[phys] {
				continue
			}
			cost := 0.0
			placedAny := false
			for q, w := range inter[p] {
				if w == 0 || m[q] == -1 {
					continue
				}
				placedAny = true
				cost += float64(w) * d.HopDistance(phys, m[q])
			}
			if !placedAny {
				// No placed partners: prefer central qubits.
				for other := 0; other < n; other++ {
					cost += d.HopDistance(phys, other)
				}
				cost /= float64(n)
			}
			if best == -1 || cost < bestCost {
				best, bestCost = phys, cost
			}
		}
		m[p] = best
		free[best] = false
	}
	return m, nil
}

// VQA implements Variation-Aware Qubit Allocation (Algorithm 2):
//
//  1. Find the k-node connected subgraph with the highest aggregate node
//     strength on the CNOT-reliability graph (k = number of program
//     qubits), seeded by the k-core structure of the machine.
//  2. Rank program qubits by activity (two-qubit gate participation) over
//     the first ActivityLayers dependency layers.
//  3. Place high-activity program qubits on the strong subgraph,
//     prioritizing strong nodes, while preserving locality by minimizing
//     the interaction-weighted reliability distance to placed partners.
type VQA struct {
	// ActivityLayers is the window t of Algorithm 2 step 2; ≤ 0 means the
	// whole program.
	ActivityLayers int
	// ReadoutWeight extends Algorithm 2 beyond the paper: measured program
	// qubits are additionally steered away from physical qubits with poor
	// readout fidelity, weighted by this factor (0, the default, is the
	// paper-faithful policy; ~1 weighs a readout error like a routing
	// hazard). Readout errors vary severalfold across qubits on real
	// machines, so this is the natural next variation to exploit.
	ReadoutWeight float64
}

func (v VQA) Name() string {
	if v.ReadoutWeight > 0 {
		return "vqa+readout"
	}
	return "vqa"
}

func (v VQA) Allocate(d *device.Device, c *circuit.Circuit) (Mapping, error) {
	if err := checkFit(d, c); err != nil {
		return nil, err
	}
	rel := d.ReliabilityGraph()
	if v.ReadoutWeight > 0 {
		// Fold readout fidelity into the strength landscape so the
		// strongest-subgraph selection also avoids poor-readout qubits.
		snap := d.Snapshot()
		rel = graphmap(rel, func(u, w int, weight float64) float64 {
			penalty := v.ReadoutWeight * (snap.Readout[u] + snap.Readout[w]) / 2
			adjusted := weight - penalty
			if adjusted < 0.01 {
				adjusted = 0.01
			}
			return adjusted
		})
	}
	sub, _ := rel.StrongestSubgraph(c.NumQubits)
	if sub == nil {
		// Disconnected machine or pathological k: fall back to all qubits.
		sub = make([]int, d.NumQubits())
		for i := range sub {
			sub[i] = i
		}
	}
	inSub := make(map[int]bool, len(sub))
	for _, v := range sub {
		inSub[v] = true
	}

	// Node strength within the chosen subgraph: prefer the strongest
	// physical sites for the most active program qubits.
	strength := make([]float64, d.NumQubits())
	for _, u := range sub {
		for _, nb := range rel.Neighbors(u) {
			if inSub[nb] {
				w, _ := rel.Weight(u, nb)
				strength[u] += w
			}
		}
	}

	activity := c.ActivityCounts(v.ActivityLayers)
	order := qubitOrder(activity)
	inter := c.InteractionCounts()
	measured := c.MeasuredQubits()

	free := make([]bool, d.NumQubits())
	for i := range free {
		free[i] = true
	}
	m := make(Mapping, c.NumQubits)
	for i := range m {
		m[i] = -1
	}

	for _, p := range order {
		best, bestScore := -1, 0.0
		for phys := 0; phys < d.NumQubits(); phys++ {
			if !free[phys] {
				continue
			}
			// Restrict to the strong subgraph while it has room.
			if !inSub[phys] && anyFree(free, sub) {
				continue
			}
			// Score: low reliability-distance to placed partners
			// (weighted by interaction count), tie-broken by site
			// strength; measured qubits optionally avoid poor readout.
			cost := 0.0
			for q, w := range inter[p] {
				if w == 0 || m[q] == -1 {
					continue
				}
				cost += float64(w) * d.CostDistance(phys, m[q])
			}
			if v.ReadoutWeight > 0 && measured[p] {
				cost += v.ReadoutWeight * (1 - d.ReadoutSuccess(phys))
			}
			score := -cost + 1e-3*strength[phys]
			if best == -1 || score > bestScore {
				best, bestScore = phys, score
			}
		}
		m[p] = best
		free[best] = false
	}
	return m, nil
}

func anyFree(free []bool, nodes []int) bool {
	for _, v := range nodes {
		if free[v] {
			return true
		}
	}
	return false
}

// Random places program qubits uniformly at random (without replacement),
// modeling the IBM native compiler's randomized initial mapping. Each
// Allocate call consumes the next permutation from the seeded stream, so
// repeated calls model the paper's 32 random configurations.
//
// A Random is NOT safe for concurrent use: Allocate advances the seeded
// stream. Give each concurrent worker its own instance (NewRandom or
// Clone) — see the Policy concurrency contract.
type Random struct {
	seed  int64
	draws []int // permutation sizes consumed so far, for Clone replay
	rng   *rand.Rand
}

// NewRandom returns a Random policy with its own deterministic stream.
func NewRandom(seed int64) *Random {
	return &Random{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Clone returns an independent Random at the same stream position: the
// clone and the receiver produce identical future placements without
// sharing RNG state, which is what makes per-worker clones race-free
// AND deterministic. The clone replays the consumed draw prefix from
// the seed (each Allocate's draw count depends only on the machine
// size, which is recorded per call).
//
// Clone is not itself safe to call concurrently with Allocate on the
// same receiver; clone first, then hand the clones out.
func (r *Random) Clone() *Random {
	c := NewRandom(r.seed)
	for _, n := range r.draws {
		c.rng.Perm(n)
	}
	c.draws = append([]int(nil), r.draws...)
	return c
}

func (*Random) Name() string { return "random" }

func (r *Random) Allocate(d *device.Device, c *circuit.Circuit) (Mapping, error) {
	if err := checkFit(d, c); err != nil {
		return nil, err
	}
	perm := r.rng.Perm(d.NumQubits())
	r.draws = append(r.draws, d.NumQubits())
	m := make(Mapping, c.NumQubits)
	copy(m, perm[:c.NumQubits])
	return m, nil
}

// graphmap rebuilds a graph with per-edge transformed weights (the
// transform sees both endpoints, unlike graphx.Graph.Map).
func graphmap(g *graphx.Graph, f func(u, v int, w float64) float64) *graphx.Graph {
	out := graphx.New(g.N())
	for _, e := range g.Edges() {
		out.AddEdge(e.U, e.V, f(e.U, e.V, e.W))
	}
	return out
}

// interactionTotals sums each qubit's row of the interaction matrix.
func interactionTotals(inter [][]int) []int {
	totals := make([]int, len(inter))
	for p, row := range inter {
		for _, w := range row {
			totals[p] += w
		}
	}
	return totals
}

// qubitOrder returns qubit indices sorted by descending score, ties broken
// by ascending index for determinism.
func qubitOrder(score []int) []int {
	order := make([]int, len(score))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return score[order[i]] > score[order[j]]
	})
	return order
}
