package alloc

import (
	"fmt"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/device"
	"vaq/internal/parallel"
	"vaq/internal/workloads"
)

// The regression suite for the Policy concurrency contract: stateless
// policies shared across goroutines, stateful Random used one instance
// per worker (the portfolio generator's construction discipline). Run
// under -race by scripts/check.sh.

func raceDevice(t testing.TB) *device.Device {
	t.Helper()
	arch := calib.Generate(calib.DefaultQ20Config(3))
	d, err := device.New(arch.Topo, arch.MustMean())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestStatelessPoliciesSharedConcurrently: one Greedy and one VQA value
// serve many goroutines at once — the safe side of the contract.
func TestStatelessPoliciesSharedConcurrently(t *testing.T) {
	d := raceDevice(t)
	prog := workloads.BV(8)
	for _, p := range []Policy{Greedy{}, VQA{}} {
		want, err := p.Allocate(d, prog)
		if err != nil {
			t.Fatal(err)
		}
		maps, err := parallel.Map(8, 32, func(i int) (Mapping, error) {
			return p.Allocate(d, prog)
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for i, m := range maps {
			if fmt.Sprint(m) != fmt.Sprint(want) {
				t.Fatalf("%s: concurrent call %d returned %v, want %v", p.Name(), i, m, want)
			}
		}
	}
}

// TestRandomPerWorkerInstances: concurrent allocation with per-worker
// Random instances (fresh seeds) is race-free and deterministic — the
// construction contract the portfolio generator enforces.
func TestRandomPerWorkerInstances(t *testing.T) {
	d := raceDevice(t)
	prog := workloads.BV(8)
	const workers = 16
	serial := make([]Mapping, workers)
	for i := range serial {
		m, err := NewRandom(int64(i+1)).Allocate(d, prog)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = m
	}
	got, err := parallel.Map(8, workers, func(i int) (Mapping, error) {
		return NewRandom(int64(i+1)).Allocate(d, prog)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(serial[i]) {
			t.Fatalf("worker %d: parallel %v != serial %v", i, got[i], serial[i])
		}
	}
}

// TestRandomClone: a clone resumes the receiver's stream position and
// then diverges from it in state, not in output.
func TestRandomClone(t *testing.T) {
	d := raceDevice(t)
	prog := workloads.BV(8)

	orig := NewRandom(99)
	// Consume a prefix so the clone has something to replay.
	for i := 0; i < 3; i++ {
		if _, err := orig.Allocate(d, prog); err != nil {
			t.Fatal(err)
		}
	}
	clones := make([]*Random, 4)
	for i := range clones {
		clones[i] = orig.Clone()
	}
	want, err := orig.Allocate(d, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Every clone, used concurrently on its own goroutine, reproduces
	// the original's next placement.
	got, err := parallel.Map(len(clones), len(clones), func(i int) (Mapping, error) {
		return clones[i].Allocate(d, prog)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range got {
		if fmt.Sprint(m) != fmt.Sprint(want) {
			t.Fatalf("clone %d produced %v, want %v", i, m, want)
		}
	}
}

// TestRandomCloneVariableMachineSizes: the replay accounts for draws of
// different machine sizes in one stream.
func TestRandomCloneVariableMachineSizes(t *testing.T) {
	q20 := raceDevice(t)
	q5s := calib.TenerifeSnapshot()
	q5, err := device.New(q5s.Topo, q5s)
	if err != nil {
		t.Fatal(err)
	}
	bv8, bv3 := workloads.BV(8), workloads.BV(3)

	orig := NewRandom(5)
	if _, err := orig.Allocate(q20, bv8); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Allocate(q5, bv3); err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	want, err := orig.Allocate(q20, bv8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := clone.Allocate(q20, bv8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("clone after mixed-size draws produced %v, want %v", got, want)
	}
}
