// Package core assembles allocation and movement into the five
// compilation policies the paper evaluates:
//
//	Native      — randomized initial mapping + per-gate shortest-path
//	              routing (the "IBM native compiler" comparator).
//	Baseline    — interaction-aware greedy allocation + layer A* SWAP
//	              search minimizing SWAP count (Zulehner et al.).
//	VQM         — baseline allocation + reliability-cost A* movement
//	              (Variation-Aware Qubit Movement, Algorithm 1).
//	VQMHop      — VQM with the Maximum Additional Hops limit (MAH=4).
//	VQAVQM      — Variation-Aware Qubit Allocation (Algorithm 2) on top of
//	              VQM movement: the paper's full proposal.
//
// Compile is the single entry point; it returns the physical circuit, the
// mapping trace, and SWAP accounting for one program on one device.
package core

import (
	"fmt"

	"vaq/internal/alloc"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/route"
	"vaq/internal/transpile"
)

// Policy names one of the paper's compilation strategies.
type Policy int

const (
	Native Policy = iota
	Baseline
	VQM
	VQMHop
	VQAVQM
	numPolicies
)

var policyNames = [...]string{
	Native:   "native",
	Baseline: "baseline",
	VQM:      "vqm",
	VQMHop:   "vqm-hop",
	VQAVQM:   "vqa+vqm",
}

// String returns the short policy name used in tables and CLI flags.
func (p Policy) String() string {
	if p < 0 || p >= numPolicies {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return policyNames[p]
}

// PolicyByName resolves a CLI-style policy name.
func PolicyByName(name string) (Policy, bool) {
	for p, n := range policyNames {
		if n == name {
			return Policy(p), true
		}
	}
	return 0, false
}

// AllPolicies lists every policy in evaluation order.
func AllPolicies() []Policy {
	return []Policy{Native, Baseline, VQM, VQMHop, VQAVQM}
}

// Options tunes a compilation.
type Options struct {
	Policy Policy
	// MAH is the Maximum Additional Hops for VQMHop (default 4, the
	// paper's setting). Ignored by other policies.
	MAH int
	// ActivityLayers is VQA's activity window t (≤ 0: whole program).
	ActivityLayers int
	// ReadoutWeight, when > 0, adds a readout-aware VQA candidate to the
	// VQAVQM portfolio (an extension beyond the paper; see alloc.VQA).
	ReadoutWeight float64
	// Optimize runs the transpile passes (inverse cancellation, rotation
	// merging) on the program before allocation; the Compiled.Logical
	// field then holds the optimized circuit.
	Optimize bool
	// Seed drives Native's randomized initial mapping.
	Seed int64
	// MaxExpansions caps the per-layer A* search (0: default).
	MaxExpansions int
	// Movement, when non-empty, replaces the policy's routing pass with
	// the named movement policy (route.MovementNames lists the valid
	// names; "sabre" is the scalable choice past ~100 qubits). The
	// policy's allocation behavior is preserved: VQAVQM still picks the
	// best-scoring allocation candidate, only routed by the override.
	Movement string
}

// Compiled is the result of one compilation.
type Compiled struct {
	Policy  Policy
	Logical *circuit.Circuit
	// Routed holds the physical circuit, initial/final mappings, and the
	// SWAP count.
	Routed *route.Result
	// Allocator and Router record which components produced the result.
	Allocator string
	Router    string
}

// Swaps returns the number of SWAPs the compilation inserted.
func (c *Compiled) Swaps() int { return c.Routed.Swaps }

// Compile maps and routes the program onto the device under the policy.
//
// VQAVQM compiles two allocation candidates — the variation-aware
// subgraph placement and the locality-greedy placement — through the
// reliability router and keeps the one the analytic reliability model
// scores higher. The paper reports that VQA+VQM never falls below VQM
// standalone; candidate selection by predicted fidelity is how that
// guarantee is realized here (the same move noise-adaptive layout tools
// make when scoring candidate layouts).
func Compile(d *device.Device, prog *circuit.Circuit, opts Options) (*Compiled, error) {
	if opts.Optimize {
		prog, _ = transpile.Optimize(prog)
	}
	if opts.Movement != "" {
		return compileWithMovement(d, prog, opts)
	}
	switch opts.Policy {
	case VQM, VQMHop, VQAVQM:
		return compileBestCandidate(d, prog, opts)
	}
	allocator, router, err := components(opts)
	if err != nil {
		return nil, err
	}
	return CompileWith(d, prog, opts, allocator, router)
}

// compileWithMovement routes with an explicit movement-policy override
// while keeping the policy's allocation behavior: Native keeps its
// randomized mapping, VQAVQM still races its allocation candidates and
// keeps the analytic winner, everything else allocates greedily.
func compileWithMovement(d *device.Device, prog *circuit.Circuit, opts Options) (*Compiled, error) {
	router, err := route.ByName(opts.Movement, opts.MaxExpansions)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	switch opts.Policy {
	case Native:
		return CompileWith(d, prog, opts, alloc.NewRandom(opts.Seed), router)
	case VQAVQM:
		allocs := []alloc.Policy{alloc.VQA{ActivityLayers: opts.ActivityLayers}, alloc.Greedy{}}
		if opts.ReadoutWeight > 0 {
			allocs = append(allocs, alloc.VQA{ActivityLayers: opts.ActivityLayers, ReadoutWeight: opts.ReadoutWeight})
		}
		var best *Compiled
		bestScore := -1.0
		for _, a := range allocs {
			c, err := CompileWith(d, prog, opts, a, router)
			if err != nil {
				return nil, err
			}
			if s := analyticScore(d, c); s > bestScore {
				best, bestScore = c, s
			}
		}
		best.Policy = opts.Policy
		return best, nil
	default:
		return CompileWith(d, prog, opts, alloc.Greedy{}, router)
	}
}

// compileBestCandidate compiles the variation-aware policies. Each policy
// defines a set of (allocator, router) candidates that all respect its
// definition; the candidate the analytic reliability model scores highest
// wins. In particular the hop-cost route with the policy's allocation is
// always a candidate, which realizes the ≥-baseline property the paper
// reports (a layer-local reliability search can otherwise lose globally
// on deep circuits).
func compileBestCandidate(d *device.Device, prog *circuit.Circuit, opts Options) (*Compiled, error) {
	mah := opts.MAH
	if mah <= 0 {
		mah = 4
	}
	type candidate struct {
		a alloc.Policy
		r route.Router
	}
	reliability := route.AStar{Cost: route.CostReliability, MAH: -1, MaxExpansions: opts.MaxExpansions}
	hopLimited := route.AStar{Cost: route.CostReliability, MAH: mah, MaxExpansions: opts.MaxExpansions}
	hops := route.AStar{Cost: route.CostHops, MAH: -1, MaxExpansions: opts.MaxExpansions}
	var cands []candidate
	switch opts.Policy {
	case VQM:
		cands = []candidate{{alloc.Greedy{}, reliability}, {alloc.Greedy{}, hops}}
	case VQMHop:
		cands = []candidate{{alloc.Greedy{}, hopLimited}, {alloc.Greedy{}, hops}}
	case VQAVQM:
		vqa := alloc.VQA{ActivityLayers: opts.ActivityLayers}
		cands = []candidate{
			{vqa, reliability},
			{alloc.Greedy{}, reliability},
			{vqa, hops},
			{alloc.Greedy{}, hops},
		}
		if opts.ReadoutWeight > 0 {
			vqar := alloc.VQA{ActivityLayers: opts.ActivityLayers, ReadoutWeight: opts.ReadoutWeight}
			cands = append(cands, candidate{vqar, reliability})
		}
	}
	var best *Compiled
	bestScore := -1.0
	for _, cand := range cands {
		c, err := CompileWith(d, prog, opts, cand.a, cand.r)
		if err != nil {
			return nil, err
		}
		if s := analyticScore(d, c); s > bestScore {
			best, bestScore = c, s
		}
	}
	best.Policy = opts.Policy
	return best, nil
}

// CompileWith maps and routes prog with an explicit (allocator, router)
// pair, bypassing the fixed policy definitions. It is the primitive the
// named policies are assembled from, exported for callers — the
// portfolio compiler — that enumerate their own candidate grids.
// opts.Policy only labels the result; opts.Optimize is NOT applied here
// (grid generators decide per candidate whether to pre-optimize).
//
// Stateful allocators (alloc.Random) must not be shared across
// concurrent CompileWith calls; construct one per call (see the
// concurrency contract on alloc.Policy).
func CompileWith(d *device.Device, prog *circuit.Circuit, opts Options, allocator alloc.Policy, router route.Router) (*Compiled, error) {
	m, err := allocator.Allocate(d, prog)
	if err != nil {
		return nil, fmt.Errorf("core(%s): %w", opts.Policy, err)
	}
	res, err := router.Route(d, prog, m)
	if err != nil {
		return nil, fmt.Errorf("core(%s): %w", opts.Policy, err)
	}
	return &Compiled{
		Policy:    opts.Policy,
		Logical:   prog,
		Routed:    res,
		Allocator: allocator.Name(),
		Router:    router.Name(),
	}, nil
}

// analyticScore is the closed-form success probability of every gate in
// the compiled circuit (readout and coherence apply equally to any
// mapping's measured qubits only through placement, which is part of the
// score via the per-qubit rates).
func analyticScore(d *device.Device, c *Compiled) float64 {
	p := 1.0
	phys := c.Routed.Physical
	for _, g := range phys.Gates {
		p *= d.GateSuccess(g.Kind, g.Qubits)
	}
	return p
}

// Verify checks the compiled program against the logical circuit (see
// route.Verify).
func (c *Compiled) Verify(d *device.Device) error {
	return route.Verify(d, c.Logical, c.Routed)
}

// VerifyClifford additionally checks quantum-state equivalence for
// Clifford programs (see route.VerifyClifford); it returns
// route.ErrNotClifford for programs outside the stabilizer formalism.
func (c *Compiled) VerifyClifford(d *device.Device) error {
	return route.VerifyClifford(d, c.Logical, c.Routed)
}

// components resolves the single-candidate policies; the variation-aware
// policies go through compileBestCandidate instead.
func components(opts Options) (alloc.Policy, route.Router, error) {
	switch opts.Policy {
	case Native:
		return alloc.NewRandom(opts.Seed), route.Naive{}, nil
	case Baseline:
		return alloc.Greedy{}, route.AStar{Cost: route.CostHops, MAH: -1, MaxExpansions: opts.MaxExpansions}, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown policy %d", int(opts.Policy))
	}
}
