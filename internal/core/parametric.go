// Compile-once/rebind-many: the parametric entry points of the core
// pipeline.
//
// The whole plane rests on one invariant, asserted here and proved by
// construction everywhere else: the hardware error model is
// angle-independent. device.GateSuccess keys on (gate kind, operands),
// never on Gate.Param; analyticScore multiplies those per-gate
// successes; the Monte-Carlo trial stream draws against the same rates.
// Allocation, routing and scheduling therefore produce identical
// results for every binding of one template, and the ESP/PST of a
// mapping is one number shared by the entire parameter sweep. Compiling
// a symbolic circuit once and rebinding per parameter set is exact, not
// an approximation.
//
// Mechanically, each symbolic slot is compiled carrying a distinct
// finite sentinel (param.Sentinel) in its Param field. Routers copy
// Param verbatim and never duplicate single-qubit gates, so after
// routing each sentinel appears exactly once in the physical circuit;
// scanning recovers the slot → physical-gate table that Rebind fills.
// Sentinels are ordinary floats, so route.Verify's struct equality and
// the schedule pass treat them like any other angle (NaN would break
// the verifier: NaN ≠ NaN).
package core

import (
	"fmt"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/param"
)

// Bound is a parametric circuit compiled onto a device: the fixed
// mapping plus the slot table Rebind fills. One Bound amortizes a whole
// parameter sweep — Rebind is a clone-and-fill, three orders of
// magnitude cheaper than a compile.
type Bound struct {
	// Compiled is the underlying mapping; its Routed.Physical holds
	// sentinel placeholders in the symbolic slots.
	Compiled *Compiled
	// ESP is the analytic success probability of the mapping, shared by
	// every binding (the error model never reads angles).
	ESP float64

	device  *device.Device
	exprs   []param.Expr // slot order = template gate order
	slots   []int        // physical gate index of each slot
	symbols []param.Symbol
}

// CompileParametric runs allocation, routing and verification once on
// the symbolic circuit and returns the reusable Bound handle.
// opts.Optimize is rejected: the transpile passes do angle arithmetic
// (rotation merging, zero-angle elimination) that would corrupt
// sentinel placeholders and change the slot structure per binding.
func CompileParametric(d *device.Device, pc *param.ParametricCircuit, opts Options) (*Bound, error) {
	if opts.Optimize {
		return nil, fmt.Errorf("core: parametric compilation cannot run the optimizer (transpile passes fold angles; compile with Optimize=false)")
	}
	sent, exprs, err := pc.SentinelBind()
	if err != nil {
		return nil, err
	}
	comp, err := Compile(d, sent, opts)
	if err != nil {
		return nil, err
	}
	return NewBound(d, exprs, comp)
}

// NewBound recovers the slot table from a Compiled produced from a
// SentinelBind circuit (CompileParametric does this internally;
// portfolio ranking calls it on its winning candidate). Every sentinel
// must appear exactly once in the physical circuit — a missing or
// duplicated sentinel means a pipeline stage rewrote parameterized
// gates and the template cannot be rebound.
func NewBound(d *device.Device, exprs []param.Expr, comp *Compiled) (*Bound, error) {
	phys := comp.Routed.Physical
	slots := make([]int, len(exprs))
	for i := range slots {
		slots[i] = -1
	}
	for i, g := range phys.Gates {
		k, ok := param.SentinelIndex(g.Param, len(exprs))
		if !ok {
			continue
		}
		if !g.Kind.Parameterized() {
			continue
		}
		if slots[k] >= 0 {
			return nil, fmt.Errorf("core: sentinel %d appears twice in the physical circuit (gates %d and %d)", k, slots[k], i)
		}
		slots[k] = i
	}
	for k, idx := range slots {
		if idx < 0 {
			return nil, fmt.Errorf("core: sentinel %d lost during compilation (slot %s)", k, exprs[k])
		}
	}
	b := &Bound{
		Compiled: comp,
		ESP:      analyticScore(d, comp),
		device:   d,
		exprs:    exprs,
		slots:    slots,
	}
	seen := map[param.Symbol]bool{}
	for _, e := range exprs {
		for _, s := range e.Symbols() {
			if !seen[s] {
				seen[s] = true
				b.symbols = append(b.symbols, s)
			}
		}
	}
	return b, nil
}

// Symbols returns the free symbols in slot-appearance order — the
// positional order RebindValues uses.
func (b *Bound) Symbols() []param.Symbol {
	return append([]param.Symbol(nil), b.symbols...)
}

// NumParams returns the number of free symbols.
func (b *Bound) NumParams() int { return len(b.symbols) }

// Device returns the device the mapping was compiled for.
func (b *Bound) Device() *device.Device { return b.device }

// Rebind emits the mapped physical circuit with every slot evaluated
// under vals. The route, mapping and ESP are untouched — no allocator,
// router or cost-table work happens here.
func (b *Bound) Rebind(vals map[param.Symbol]float64) (*circuit.Circuit, error) {
	for _, s := range b.symbols {
		if _, ok := vals[s]; !ok {
			return nil, &param.UnboundError{Missing: []param.Symbol{s}}
		}
	}
	out := b.Compiled.Routed.Physical.Clone()
	for k, gi := range b.slots {
		v, err := b.exprs[k].Eval(vals)
		if err != nil {
			return nil, err
		}
		out.Gates[gi].Param = v
	}
	return out, nil
}

// RebindValues rebinds positionally: vals[i] is the value of
// Symbols()[i].
func (b *Bound) RebindValues(vals []float64) (*circuit.Circuit, error) {
	if len(vals) != len(b.symbols) {
		return nil, fmt.Errorf("core: %d values for %d free symbols", len(vals), len(b.symbols))
	}
	m := make(map[param.Symbol]float64, len(vals))
	for i, s := range b.symbols {
		m[s] = vals[i]
	}
	return b.Rebind(m)
}
