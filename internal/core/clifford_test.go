package core

import (
	"errors"
	"testing"

	"vaq/internal/route"
	"vaq/internal/workloads"
)

func TestCompiledVerifyCliffordAllPolicies(t *testing.T) {
	// Quantum-state-level verification of the full pipeline: every policy
	// must compile the Clifford benchmarks into circuits preparing the
	// exact logical state (up to the tracked qubit permutation).
	d := skewedQ20()
	for _, w := range []string{"bv-10", "bv-16", "ghz-6"} {
		var prog = workloads.BV(10)
		switch w {
		case "bv-16":
			prog = workloads.BV(16)
		case "ghz-6":
			prog = workloads.GHZ(6)
		}
		for _, p := range AllPolicies() {
			c, err := Compile(d, prog, Options{Policy: p, Seed: 3})
			if err != nil {
				t.Fatalf("%s/%v: %v", w, p, err)
			}
			if err := c.VerifyClifford(d); err != nil {
				t.Fatalf("%s/%v: %v", w, p, err)
			}
		}
	}
}

func TestCompileOptimizeShrinksRedundantProgram(t *testing.T) {
	d := skewedQ20()
	// Append a redundant H pair; -O must remove exactly those two gates.
	red := workloads.BV(8)
	red.H(0)
	red.H(0)
	plain, err := Compile(d, red, Options{Policy: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compile(d, red, Options{Policy: Baseline, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := opt.Logical.Stats().Total, plain.Logical.Stats().Total-2; got != want {
		t.Fatalf("optimized logical size = %d, want %d", got, want)
	}
	if err := opt.Verify(d); err != nil {
		t.Fatal(err)
	}
	if err := opt.VerifyClifford(d); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledVerifyCliffordRejectsNonClifford(t *testing.T) {
	d := skewedQ20()
	c, err := Compile(d, workloads.QFT(5), Options{Policy: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyClifford(d); !errors.Is(err, route.ErrNotClifford) {
		t.Fatalf("err = %v, want ErrNotClifford", err)
	}
}
