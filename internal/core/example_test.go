package core_test

import (
	"fmt"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/sim"
)

// Example compiles a GHZ program onto a simulated IBM-Q20 under the
// paper's full proposal and estimates its reliability.
func Example() {
	// Machine model: synthetic 52-day characterization archive, averaged.
	arch := calib.Generate(calib.DefaultQ20Config(2019))
	dev := device.MustNew(arch.Topo, arch.MustMean())

	// A 4-qubit GHZ-state program over logical qubits.
	prog := circuit.New("ghz-4", 4).H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()

	// Variation-Aware Qubit Allocation + Movement.
	comp, err := core.Compile(dev, prog, core.Options{Policy: core.VQAVQM})
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	if err := comp.Verify(dev); err != nil {
		fmt.Println("verify:", err)
		return
	}
	pst := sim.AnalyticPST(dev, comp.Routed.Physical, sim.Config{})
	fmt.Printf("policy=%s swaps=%d pst>0.5=%v\n", comp.Policy, comp.Swaps(), pst > 0.5)
	// Output: policy=vqa+vqm swaps=0 pst>0.5=true
}
