package core

import (
	"math"
	"math/rand"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/topo"
)

// skewedQ20 returns an IBM-Q20 device from the synthetic archive mean —
// realistic variation across links.
func skewedQ20() *device.Device {
	arch := calib.Generate(calib.DefaultQ20Config(17))
	return device.MustNew(arch.Topo, arch.MustMean())
}

func uniformQ20() *device.Device {
	tp := topo.IBMQ20()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = 0.05
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	return device.MustNew(tp, s)
}

func randomProgram(seed int64, n, gates int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New("rand", n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		c.CX(a, b)
	}
	c.MeasureAll()
	return c
}

func successProduct(d *device.Device, c *circuit.Circuit) float64 {
	p := 1.0
	for _, g := range c.Gates {
		p *= d.GateSuccess(g.Kind, g.Qubits)
	}
	return p
}

func TestPolicyNames(t *testing.T) {
	for _, p := range AllPolicies() {
		name := p.String()
		got, ok := PolicyByName(name)
		if !ok || got != p {
			t.Fatalf("round trip failed for %v", p)
		}
	}
	if _, ok := PolicyByName("nope"); ok {
		t.Fatal("unknown policy name resolved")
	}
	if Policy(99).String() != "Policy(99)" {
		t.Fatal("out-of-range policy string")
	}
}

func TestCompileAllPoliciesVerify(t *testing.T) {
	d := skewedQ20()
	prog := randomProgram(3, 8, 20)
	for _, p := range AllPolicies() {
		c, err := Compile(d, prog, Options{Policy: p, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := c.Verify(d); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if c.Policy != p {
			t.Fatalf("result policy = %v, want %v", c.Policy, p)
		}
	}
}

func TestCompileUnknownPolicy(t *testing.T) {
	d := uniformQ20()
	if _, err := Compile(d, randomProgram(1, 4, 4), Options{Policy: Policy(42)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestCompileOversizedProgram(t *testing.T) {
	d := uniformQ20()
	prog := circuit.New("big", 25)
	if _, err := Compile(d, prog, Options{Policy: Baseline}); err == nil {
		t.Fatal("25-qubit program accepted on 20-qubit device")
	}
}

func TestBaselineEqualsVQMOnUniformDevice(t *testing.T) {
	d := uniformQ20()
	prog := randomProgram(11, 10, 30)
	base, err := Compile(d, prog, Options{Policy: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	vqm, err := Compile(d, prog, Options{Policy: VQM})
	if err != nil {
		t.Fatal(err)
	}
	if base.Swaps() != vqm.Swaps() {
		t.Fatalf("uniform device: baseline %d swaps vs VQM %d", base.Swaps(), vqm.Swaps())
	}
}

func TestVariationAwarePoliciesWinInAggregate(t *testing.T) {
	// The paper's headline: on a device with link variation, VQM improves
	// over the baseline and VQA+VQM improves over VQM (Figure 13), in
	// aggregate over workloads.
	d := skewedQ20()
	ratioVQM, ratioVQAVQM := 0.0, 0.0
	trials := 12
	for seed := int64(0); seed < int64(trials); seed++ {
		prog := randomProgram(seed, 8, 24)
		base, err := Compile(d, prog, Options{Policy: Baseline})
		if err != nil {
			t.Fatal(err)
		}
		vqm, err := Compile(d, prog, Options{Policy: VQM})
		if err != nil {
			t.Fatal(err)
		}
		full, err := Compile(d, prog, Options{Policy: VQAVQM})
		if err != nil {
			t.Fatal(err)
		}
		pb := successProduct(d, base.Routed.Physical)
		ratioVQM += math.Log(successProduct(d, vqm.Routed.Physical) / pb)
		ratioVQAVQM += math.Log(successProduct(d, full.Routed.Physical) / pb)
	}
	gainVQM := math.Exp(ratioVQM / float64(trials))
	gainFull := math.Exp(ratioVQAVQM / float64(trials))
	if gainVQM < 1.0 {
		t.Errorf("VQM aggregate gain over baseline = %v, want ≥ 1", gainVQM)
	}
	if gainFull < gainVQM {
		t.Errorf("VQA+VQM gain %v below VQM gain %v, want ≥", gainFull, gainVQM)
	}
	if gainFull < 1.02 {
		t.Errorf("VQA+VQM aggregate gain = %v, want clearly above 1", gainFull)
	}
}

func TestNativeSeedVariesMappings(t *testing.T) {
	d := skewedQ20()
	prog := randomProgram(2, 6, 10)
	a, err := Compile(d, prog, Options{Policy: Native, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(d, prog, Options{Policy: Native, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Routed.Initial {
		if a.Routed.Initial[i] != b.Routed.Initial[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical native mappings")
	}
}

func TestVQMHopUsesDefaultMAH(t *testing.T) {
	d := skewedQ20()
	prog := randomProgram(4, 6, 12)
	c, err := Compile(d, prog, Options{Policy: VQMHop})
	if err != nil {
		t.Fatal(err)
	}
	// The winning candidate is either the MAH=4-limited reliability route
	// or the hop-cost fallback; both respect the hop budget.
	if c.Router != "astar-reliability-mah4" && c.Router != "astar-hops" {
		t.Fatalf("router = %s, want the mah4 route or its hop fallback", c.Router)
	}
	if err := c.Verify(d); err != nil {
		t.Fatal(err)
	}
}

func TestVariationAwareNeverBelowBaseline(t *testing.T) {
	// The candidate-selection design guarantees VQM, VQM-hop and VQA+VQM
	// are analytically at least as reliable as the baseline for every
	// program (the property Figures 12/13 show).
	d := skewedQ20()
	for seed := int64(0); seed < 10; seed++ {
		prog := randomProgram(seed, 9, 22)
		base, err := Compile(d, prog, Options{Policy: Baseline})
		if err != nil {
			t.Fatal(err)
		}
		pb := successProduct(d, base.Routed.Physical)
		for _, p := range []Policy{VQM, VQMHop, VQAVQM} {
			c, err := Compile(d, prog, Options{Policy: p})
			if err != nil {
				t.Fatal(err)
			}
			if pc := successProduct(d, c.Routed.Physical); pc < pb-1e-12 {
				t.Fatalf("seed %d: %v success %v below baseline %v", seed, p, pc, pb)
			}
		}
	}
}

func TestCompiledAccounting(t *testing.T) {
	d := uniformQ20()
	prog := randomProgram(8, 12, 25)
	c, err := Compile(d, prog, Options{Policy: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Routed.Physical.Stats().Swaps; got != c.Swaps() {
		t.Fatalf("swap accounting mismatch: stats %d vs result %d", got, c.Swaps())
	}
	if c.Allocator != "greedy" || c.Router != "astar-hops" {
		t.Fatalf("components = %s/%s", c.Allocator, c.Router)
	}
}
