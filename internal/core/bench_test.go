package core

import (
	"testing"

	"vaq/internal/ansatz"
	"vaq/internal/calib"
	"vaq/internal/device"
)

// BenchmarkRebindVsRecompile prices the compile-once/rebind-many
// contract on the su2-8 ansatz over IBM-Q20: "recompile" is the naive
// loop's per-point cost (full allocate+route+verify on a bound
// circuit), "rebind" is the parametric plane's per-point cost
// (clone-and-fill from one Bound), and "sweep1000" is a whole
// 1000-point sweep through CompileParametric — one compile amortized
// over 1000 rebinds. The acceptance bar, visible in the BENCH
// snapshot, is the amortized per-point cost (sweep1000 ÷ 1000) coming
// in ≥10× below recompile.
func BenchmarkRebindVsRecompile(b *testing.B) {
	arch := calib.Generate(calib.DefaultQ20Config(17))
	d := device.MustNew(arch.Topo, arch.MustMean())
	pc, err := ansatz.EfficientSU2(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	n := pc.NumParams()
	point := func(i int) []float64 {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = 0.1 + float64(i%7)*0.3 + float64(j)*0.01
		}
		return vals
	}

	b.Run("recompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog, err := pc.BindValues(point(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Compile(d, prog, Options{Policy: VQAVQM, Seed: 17}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebind", func(b *testing.B) {
		bound, err := CompileParametric(d, pc, Options{Policy: VQAVQM, Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bound.RebindValues(point(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bound, err := CompileParametric(d, pc, Options{Policy: VQAVQM, Seed: 17})
			if err != nil {
				b.Fatal(err)
			}
			for p := 0; p < 1000; p++ {
				if _, err := bound.RebindValues(point(p)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
