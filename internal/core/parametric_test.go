package core

import (
	"errors"
	"math"
	"testing"

	"vaq/internal/ansatz"
	"vaq/internal/calib"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/param"
	"vaq/internal/sim"
)

func parametricQ20(t *testing.T) *device.Device {
	t.Helper()
	arch := calib.Generate(calib.DefaultQ20Config(17))
	return device.MustNew(arch.Topo, arch.MustMean())
}

func TestCompileParametricRebind(t *testing.T) {
	d := parametricQ20(t)
	pc, err := ansatz.EfficientSU2(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := CompileParametric(d, pc, Options{Policy: VQAVQM, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bound.NumParams(), pc.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if bound.ESP <= 0 || bound.ESP > 1 {
		t.Fatalf("ESP = %v", bound.ESP)
	}

	vals := make([]float64, bound.NumParams())
	for i := range vals {
		vals[i] = 0.1 * float64(i+1)
	}
	phys, err := bound.RebindValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	// Every rebound parameterized gate carries a real angle, never a
	// sentinel placeholder.
	bindings := 0
	for i, g := range phys.Gates {
		if !g.Kind.Parameterized() {
			continue
		}
		if _, isSentinel := param.SentinelIndex(g.Param, bound.NumParams()+100); isSentinel {
			t.Fatalf("gate %d still holds a sentinel: %v", i, g.Param)
		}
		bindings++
	}
	if want := 2 * 5 * 2; bindings != want {
		t.Fatalf("%d parameterized physical gates, want %d", bindings, want)
	}
	// The template itself is untouched: a second rebind from the same
	// handle sees fresh sentinels, not the previous binding.
	phys2, err := bound.RebindValues(make([]float64, bound.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	sawZero := false
	for _, g := range phys2.Gates {
		if g.Kind == gate.RY && g.Param == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatal("second rebind did not apply the new values")
	}
}

// TestAngleIndependence pins the invariant the whole plane rests on:
// every binding of one mapping has identical analytic and Monte-Carlo
// PST, equal to the estimate on the sentinel template itself.
func TestAngleIndependence(t *testing.T) {
	d := parametricQ20(t)
	pc, err := ansatz.QAOA(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := CompileParametric(d, pc, Options{Policy: VQAVQM, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	template := bound.Compiled.Routed.Physical
	base := sim.AnalyticPST(d, template, sim.Config{})
	mcBase := sim.Prepare(d, template, sim.Config{Trials: 2000, Seed: 11}).Run(sim.Config{Trials: 2000, Seed: 11})
	for _, scale := range []float64{0, 0.5, math.Pi} {
		vals := make([]float64, bound.NumParams())
		for i := range vals {
			vals[i] = scale * float64(i+1)
		}
		phys, err := bound.RebindValues(vals)
		if err != nil {
			t.Fatal(err)
		}
		if got := sim.AnalyticPST(d, phys, sim.Config{}); got != base {
			t.Fatalf("analytic PST depends on angles: %v != %v at scale %v", got, base, scale)
		}
		mc := sim.Prepare(d, phys, sim.Config{Trials: 2000, Seed: 11}).Run(sim.Config{Trials: 2000, Seed: 11})
		if mc.PST != mcBase.PST {
			t.Fatalf("MC PST depends on angles: %v != %v at scale %v", mc.PST, mcBase.PST, scale)
		}
	}
	if bound.ESP <= 0 {
		t.Fatalf("ESP = %v", bound.ESP)
	}
}

func TestCompileParametricRejectsOptimizer(t *testing.T) {
	d := parametricQ20(t)
	pc, err := ansatz.EfficientSU2(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileParametric(d, pc, Options{Policy: VQAVQM, Optimize: true}); err == nil {
		t.Fatal("Optimize=true accepted for a parametric compile")
	}
}

func TestCompileParametricVerifies(t *testing.T) {
	d := parametricQ20(t)
	pc, err := ansatz.EfficientSU2(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{Native, Baseline, VQM, VQAVQM} {
		bound, err := CompileParametric(d, pc, Options{Policy: policy, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		// The sentinel-bound compile passes the standard route verifier.
		if err := bound.Compiled.Verify(d); err != nil {
			t.Fatalf("%v: verify: %v", policy, err)
		}
	}
}

func TestRebindUnbound(t *testing.T) {
	d := parametricQ20(t)
	pc, err := ansatz.QAOA(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := CompileParametric(d, pc, Options{Policy: Baseline, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = bound.Rebind(map[param.Symbol]float64{"g0": 0.5})
	var ub *param.UnboundError
	if !errors.As(err, &ub) {
		t.Fatalf("want *param.UnboundError, got %v", err)
	}
	if _, err := bound.RebindValues([]float64{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
