// Package statevec is a dense state-vector simulator for small circuits
// (≤ ~20 qubits): exact amplitudes, arbitrary single-qubit rotations, CX,
// CZ and SWAP. It complements the stabilizer simulator: stabilizer scales
// but is Clifford-only; statevec handles the paper's non-Clifford
// workloads (QFT's controlled phases, the ALU's Toffoli/T network) at
// sizes where 2^n amplitudes fit comfortably.
//
// The repository uses it for exact quantum verification of compiled
// non-Clifford programs (route.VerifyState) and to validate the benchmark
// generators themselves (the Cuccaro adder really adds; the QFT really
// produces the uniform-magnitude spectrum).
//
// Qubit q is bit q of the amplitude index (little-endian).
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

// MaxQubits bounds the allocation (2^24 amplitudes = 256 MiB); callers
// wanting exactness on bigger circuits must use the stabilizer simulator.
const MaxQubits = 24

// State is a normalized pure state on n qubits.
type State struct {
	n   int
	amp []complex128
}

// New returns |0…0⟩ on n qubits.
func New(n int) *State {
	if n <= 0 || n > MaxQubits {
		panic(fmt.Sprintf("statevec: qubit count %d out of (0,%d]", n, MaxQubits))
	}
	s := &State{n: n, amp: make([]complex128, 1<<n)}
	s.amp[0] = 1
	return s
}

// N returns the number of qubits.
func (s *State) N() int { return s.n }

// Clone returns a deep copy.
func (s *State) Clone() *State {
	return &State{n: s.n, amp: append([]complex128(nil), s.amp...)}
}

func (s *State) check(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("statevec: qubit %d out of range [0,%d)", q, s.n))
	}
}

// apply1 multiplies the 2×2 matrix [[a,b],[c,d]] into qubit q.
func (s *State) apply1(q int, a, b, c, d complex128) {
	s.check(q)
	mask := 1 << q
	for i := 0; i < len(s.amp); i++ {
		if i&mask != 0 {
			continue
		}
		j := i | mask
		v0, v1 := s.amp[i], s.amp[j]
		s.amp[i] = a*v0 + b*v1
		s.amp[j] = c*v0 + d*v1
	}
}

// CX applies a controlled-NOT (control c, target t).
func (s *State) CX(c, t int) {
	s.check(c)
	s.check(t)
	if c == t {
		panic("statevec: CX with identical operands")
	}
	cm, tm := 1<<c, 1<<t
	for i := 0; i < len(s.amp); i++ {
		if i&cm != 0 && i&tm == 0 {
			j := i | tm
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// CZ applies a controlled-Z.
func (s *State) CZ(a, b int) {
	s.check(a)
	s.check(b)
	am, bm := 1<<a, 1<<b
	for i := 0; i < len(s.amp); i++ {
		if i&am != 0 && i&bm != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

// Swap exchanges two qubits.
func (s *State) Swap(a, b int) {
	s.check(a)
	s.check(b)
	am, bm := 1<<a, 1<<b
	for i := 0; i < len(s.amp); i++ {
		if i&am != 0 && i&bm == 0 {
			j := i ^ am ^ bm
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

var invSqrt2 = complex(1/math.Sqrt2, 0)

// Apply applies one circuit gate (measurements and barriers are ignored;
// use Sample/Probability for readout). U2/U3 are rejected because the
// circuit IR folds their angles into one parameter.
func (s *State) Apply(g circuit.Gate) error {
	switch g.Kind {
	case gate.I, gate.Barrier, gate.Measure:
		return nil
	case gate.X:
		s.apply1(g.Qubits[0], 0, 1, 1, 0)
	case gate.Y:
		s.apply1(g.Qubits[0], 0, -1i, 1i, 0)
	case gate.Z:
		s.apply1(g.Qubits[0], 1, 0, 0, -1)
	case gate.H:
		s.apply1(g.Qubits[0], invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
	case gate.S:
		s.apply1(g.Qubits[0], 1, 0, 0, 1i)
	case gate.Sdg:
		s.apply1(g.Qubits[0], 1, 0, 0, -1i)
	case gate.T:
		s.apply1(g.Qubits[0], 1, 0, 0, cmplx.Exp(1i*math.Pi/4))
	case gate.Tdg:
		s.apply1(g.Qubits[0], 1, 0, 0, cmplx.Exp(-1i*math.Pi/4))
	case gate.RZ:
		half := complex(g.Param/2, 0)
		s.apply1(g.Qubits[0], cmplx.Exp(-1i*half), 0, 0, cmplx.Exp(1i*half))
	case gate.U1:
		s.apply1(g.Qubits[0], 1, 0, 0, cmplx.Exp(1i*complex(g.Param, 0)))
	case gate.RX:
		c := complex(math.Cos(g.Param/2), 0)
		sn := complex(math.Sin(g.Param/2), 0)
		s.apply1(g.Qubits[0], c, -1i*sn, -1i*sn, c)
	case gate.RY:
		c := complex(math.Cos(g.Param/2), 0)
		sn := complex(math.Sin(g.Param/2), 0)
		s.apply1(g.Qubits[0], c, -sn, sn, c)
	case gate.CX:
		s.CX(g.Qubits[0], g.Qubits[1])
	case gate.CZ:
		s.CZ(g.Qubits[0], g.Qubits[1])
	case gate.SWAP:
		s.Swap(g.Qubits[0], g.Qubits[1])
	default:
		return fmt.Errorf("statevec: unsupported gate %s (folded multi-angle gates cannot be replayed)", g.Kind)
	}
	return nil
}

// Run applies every gate of the circuit to |0…0⟩.
func Run(c *circuit.Circuit) (*State, error) {
	if c.NumQubits > MaxQubits {
		return nil, fmt.Errorf("statevec: %d qubits exceeds limit %d", c.NumQubits, MaxQubits)
	}
	n := c.NumQubits
	if n == 0 {
		n = 1
	}
	s := New(n)
	for _, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Supported reports whether every gate of the circuit can be replayed.
func Supported(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		switch g.Kind {
		case gate.U2, gate.U3:
			return false
		}
		if !g.Kind.Valid() {
			return false
		}
	}
	return c.NumQubits <= MaxQubits
}

// Probability returns P(qubit q measures 1).
func (s *State) Probability(q int) float64 {
	s.check(q)
	mask := 1 << q
	p := 0.0
	for i, a := range s.amp {
		if i&mask != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Probabilities returns the full measurement distribution over basis
// states (index order).
func (s *State) Probabilities() []float64 {
	out := make([]float64, len(s.amp))
	for i, a := range s.amp {
		out[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return out
}

// Sample draws a basis state from the measurement distribution, returned
// as a bitstring with qubit 0 leftmost.
func (s *State) Sample(rng *rand.Rand) string {
	r := rng.Float64()
	acc := 0.0
	idx := len(s.amp) - 1
	for i, a := range s.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			idx = i
			break
		}
	}
	bits := make([]byte, s.n)
	for q := 0; q < s.n; q++ {
		if idx&(1<<q) != 0 {
			bits[q] = '1'
		} else {
			bits[q] = '0'
		}
	}
	return string(bits)
}

// BasisState returns (index, true) when the state is a computational
// basis state up to global phase and numerical tolerance.
func (s *State) BasisState() (int, bool) {
	best, bestP := -1, 0.0
	total := 0.0
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		total += p
		if p > bestP {
			best, bestP = i, p
		}
	}
	if bestP > 0.999999*total {
		return best, true
	}
	return -1, false
}

// Fidelity returns |⟨a|b⟩|² for states on the same qubit count.
func Fidelity(a, b *State) float64 {
	if a.n != b.n {
		return 0
	}
	var ip complex128
	for i := range a.amp {
		ip += cmplx.Conj(a.amp[i]) * b.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Norm returns ⟨s|s⟩ (should stay 1 within numerical error).
func (s *State) Norm() float64 {
	t := 0.0
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}
