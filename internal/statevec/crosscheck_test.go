package statevec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/circuit"
	"vaq/internal/stabilizer"
)

// TestStabilizerCrossCheckProperty validates the repository's two
// independent quantum simulators against each other: on random Clifford
// circuits, every qubit of a stabilizer state has a Z-measurement
// marginal of exactly 0, 1/2 or 1, and the tableau simulator's
// deterministic/random classification must agree with the dense
// state-vector probabilities. The implementations share no code (GF(2)
// tableau algebra vs complex amplitudes), so agreement here is strong
// evidence both are correct.
func TestStabilizerCrossCheckProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := circuit.New("cliff", n)
		for i := 0; i < 35; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(8) {
			case 0:
				c.H(a)
			case 1:
				c.S(a)
			case 2:
				c.Sdg(a)
			case 3:
				c.X(a)
			case 4:
				c.Y(a)
			case 5:
				c.Z(a)
			case 6:
				c.CX(a, b)
			case 7:
				c.Swap(a, b)
			}
		}
		sv, err := Run(c)
		if err != nil {
			t.Logf("statevec: %v", err)
			return false
		}
		tab, err := stabilizer.Run(c)
		if err != nil {
			t.Logf("stabilizer: %v", err)
			return false
		}
		for q := 0; q < n; q++ {
			p := sv.Probability(q)
			out, det := tab.Clone().MeasureZ(q, rng)
			if det {
				if math.Abs(p-float64(out)) > 1e-9 {
					t.Logf("qubit %d: tableau deterministic %d, statevec P=%v\nseed=%d", q, out, p, seed)
					return false
				}
			} else if math.Abs(p-0.5) > 1e-9 {
				t.Logf("qubit %d: tableau random, statevec P=%v (want 0.5)\nseed=%d", q, p, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestStabilizerCollapseMatchesStateVector drives the comparison through
// measurement collapse: after the tableau collapses a random qubit, the
// remaining qubits' marginals must match a state-vector prepared with the
// corresponding projector outcome.
func TestStabilizerCollapseMatchesStateVector(t *testing.T) {
	// GHZ: measuring qubit 0 collapses all others to the same value.
	for _, forced := range []int{0, 1} {
		tab := stabilizer.New(3)
		tab.H(0)
		tab.CX(0, 1)
		tab.CX(1, 2)
		// Force the outcome by retrying the seeded RNG.
		var rng *rand.Rand
		var out int
		for seed := int64(0); ; seed++ {
			trial := tab.Clone()
			rng = rand.New(rand.NewSource(seed))
			if out, _ = trial.MeasureZ(0, rng); out == forced {
				tab = trial
				break
			}
		}
		for q := 1; q < 3; q++ {
			v, det := tab.MeasureZ(q, rng)
			if !det || v != forced {
				t.Fatalf("GHZ collapse to %d: qubit %d = %d (det=%v)", forced, q, v, det)
			}
		}
	}
}
