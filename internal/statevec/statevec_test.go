package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/circuit"
	"vaq/internal/gate"
	"vaq/internal/workloads"
)

const eps = 1e-9

func TestNewIsGroundState(t *testing.T) {
	s := New(3)
	if idx, ok := s.BasisState(); !ok || idx != 0 {
		t.Fatalf("fresh state = basis %d (ok=%v), want 0", idx, ok)
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatalf("norm = %v", s.Norm())
	}
}

func TestNewBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxQubits + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestXFlipsBit(t *testing.T) {
	s := New(2)
	s.Apply(circuit.NewGate1(gate.X, 1))
	if idx, ok := s.BasisState(); !ok || idx != 2 {
		t.Fatalf("X|00> = basis %d, want 2 (bit 1 set)", idx)
	}
	if p := s.Probability(1); math.Abs(p-1) > eps {
		t.Fatalf("P(q1=1) = %v", p)
	}
}

func TestHSuperposition(t *testing.T) {
	s := New(1)
	s.Apply(circuit.NewGate1(gate.H, 0))
	if p := s.Probability(0); math.Abs(p-0.5) > eps {
		t.Fatalf("P = %v, want 0.5", p)
	}
	if _, ok := s.BasisState(); ok {
		t.Fatal("superposition misreported as basis state")
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New("bell", 2).H(0).CX(0, 1)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	// Amplitudes: (|00>+|11>)/√2.
	if math.Abs(real(s.amp[0])-1/math.Sqrt2) > eps || math.Abs(real(s.amp[3])-1/math.Sqrt2) > eps {
		t.Fatalf("Bell amplitudes wrong: %v", s.amp)
	}
	if cmplx.Abs(s.amp[1]) > eps || cmplx.Abs(s.amp[2]) > eps {
		t.Fatalf("Bell cross terms nonzero: %v", s.amp)
	}
}

func TestHZHEqualsX(t *testing.T) {
	a, _ := Run(circuit.New("hzh", 1).H(0).Z(0).H(0))
	b, _ := Run(circuit.New("x", 1).X(0))
	if f := Fidelity(a, b); math.Abs(f-1) > eps {
		t.Fatalf("fidelity(HZH, X) = %v", f)
	}
}

func TestTEighthTurn(t *testing.T) {
	// T² = S; S² = Z.
	a, _ := Run(circuit.New("t", 1).H(0).T(0).T(0).T(0).T(0))
	b, _ := Run(circuit.New("z", 1).H(0).Z(0))
	if f := Fidelity(a, b); math.Abs(f-1) > eps {
		t.Fatalf("T^4 != Z (fidelity %v)", f)
	}
	c, _ := Run(circuit.New("ts", 1).H(0).T(0).Tdg(0))
	d, _ := Run(circuit.New("h", 1).H(0))
	if f := Fidelity(c, d); math.Abs(f-1) > eps {
		t.Fatalf("T·Tdg != I (fidelity %v)", f)
	}
}

func TestRotationIdentities(t *testing.T) {
	// RZ(π) ≡ Z, RX(π) ≡ X, RY(π) ≡ Y — up to global phase, which
	// fidelity ignores.
	pairs := []struct {
		rot  *circuit.Circuit
		ref  *circuit.Circuit
		name string
	}{
		{circuit.New("rz", 1).H(0).RZ(math.Pi, 0), circuit.New("z", 1).H(0).Z(0), "RZ(pi)=Z"},
		{circuit.New("rx", 1).H(0).RX(math.Pi, 0), circuit.New("x", 1).H(0).X(0), "RX(pi)=X"},
		{circuit.New("ry", 1).H(0).RY(math.Pi, 0), circuit.New("y", 1).H(0).Y(0), "RY(pi)=Y"},
	}
	for _, p := range pairs {
		a, err := Run(p.rot)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(p.ref)
		if err != nil {
			t.Fatal(err)
		}
		if f := Fidelity(a, b); math.Abs(f-1) > eps {
			t.Errorf("%s: fidelity %v", p.name, f)
		}
	}
}

func TestU1MatchesRZUpToPhase(t *testing.T) {
	a, _ := Run(circuit.New("u1", 1).H(0).U1(0.7, 0))
	b, _ := Run(circuit.New("rz", 1).H(0).RZ(0.7, 0))
	if f := Fidelity(a, b); math.Abs(f-1) > eps {
		t.Fatalf("U1 vs RZ fidelity = %v", f)
	}
}

func TestSwapMovesAmplitude(t *testing.T) {
	s, _ := Run(circuit.New("s", 3).X(0).Swap(0, 2))
	if idx, ok := s.BasisState(); !ok || idx != 4 {
		t.Fatalf("after swap basis = %d, want 4", idx)
	}
}

func TestCZPhase(t *testing.T) {
	a, _ := Run(circuit.New("cz", 2).H(0).H(1).CZ(0, 1))
	b, _ := Run(circuit.New("czr", 2).H(0).H(1).CZ(1, 0))
	if f := Fidelity(a, b); math.Abs(f-1) > eps {
		t.Fatalf("CZ asymmetric: fidelity %v", f)
	}
	// |11> amplitude negated.
	if real(a.amp[3]) > 0 {
		t.Fatalf("CZ did not negate |11>: %v", a.amp)
	}
}

func TestRunRejectsFoldedGates(t *testing.T) {
	c := circuit.New("u3", 1)
	g := circuit.NewGate1(gate.U3, 0)
	g.Param = 1
	c.Append(g)
	if _, err := Run(c); err == nil {
		t.Fatal("U3 accepted by state-vector simulator")
	}
	if Supported(c) {
		t.Fatal("Supported(U3 circuit) = true")
	}
	if !Supported(workloads.QFT(4)) {
		t.Fatal("QFT should be supported (u1-based)")
	}
}

func TestALUAdderArithmetic(t *testing.T) {
	// The decisive benchmark-generator test: the Cuccaro ALU kernel loads
	// a=5, b=3 and adds a into b twice, so the final state must be the
	// basis state with a=5, b=13, carries clear.
	s, err := Run(workloads.ALU())
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := s.BasisState()
	if !ok {
		t.Fatal("ALU final state is not a basis state — adder corrupts the register")
	}
	bit := func(pos int) int { return (idx >> pos) & 1 }
	a := bit(1) | bit(3)<<1 | bit(5)<<2 | bit(7)<<3
	b := bit(2) | bit(4)<<1 | bit(6)<<2 | bit(8)<<3
	if a != 5 {
		t.Errorf("register a = %d, want 5 (unchanged)", a)
	}
	if b != 13 {
		t.Errorf("register b = %d, want 13 (3+5+5)", b)
	}
	if bit(0) != 0 || bit(9) != 0 {
		t.Errorf("carry bits set: cin=%d cout=%d", bit(0), bit(9))
	}
}

func TestQFTSpectrum(t *testing.T) {
	// QFT of |0…0⟩ is the uniform superposition: every probability equal.
	s, err := Run(workloads.QFT(5))
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 32
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if math.Abs(p-want) > 1e-9 {
			t.Fatalf("QFT amplitude %d probability %v, want uniform %v", i, p, want)
		}
	}
}

func TestBVStateVector(t *testing.T) {
	// BV's data register must deterministically hold the all-ones secret.
	s, err := Run(workloads.BV(6))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		if p := s.Probability(q); math.Abs(p-1) > 1e-9 {
			t.Fatalf("BV data qubit %d P(1) = %v, want 1", q, p)
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	s, _ := Run(circuit.New("h", 1).H(0))
	rng := rand.New(rand.NewSource(5))
	ones := 0
	for i := 0; i < 2000; i++ {
		if s.Sample(rng) == "1" {
			ones++
		}
	}
	if ones < 850 || ones > 1150 {
		t.Fatalf("H sampling biased: %d/2000 ones", ones)
	}
}

func TestNormPreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New("p", n)
		for i := 0; i < 30; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(7) {
			case 0:
				c.H(a)
			case 1:
				c.T(a)
			case 2:
				c.RZ(rng.Float64()*6-3, a)
			case 3:
				c.RX(rng.Float64()*6-3, a)
			case 4:
				c.CX(a, b)
			case 5:
				c.CZ(a, b)
			case 6:
				c.Swap(a, b)
			}
		}
		s, err := Run(c)
		if err != nil {
			return false
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseCircuitProperty(t *testing.T) {
	// Random circuit followed by its exact inverse returns to |0…0⟩.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		type op struct {
			k     gate.Kind
			a, b  int
			theta float64
		}
		var ops []op
		s := New(n)
		apply := func(o op, invert bool) {
			th := o.theta
			if invert {
				th = -th
			}
			switch o.k {
			case gate.H:
				s.apply1(o.a, invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
			case gate.RZ:
				g := circuit.NewGate1(gate.RZ, o.a)
				g.Param = th
				s.Apply(g)
			case gate.CX:
				s.CX(o.a, o.b)
			case gate.S:
				if invert {
					s.Apply(circuit.NewGate1(gate.Sdg, o.a))
				} else {
					s.Apply(circuit.NewGate1(gate.S, o.a))
				}
			}
		}
		for i := 0; i < 20; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			o := op{k: []gate.Kind{gate.H, gate.RZ, gate.CX, gate.S}[rng.Intn(4)], a: a, b: b, theta: rng.Float64()*4 - 2}
			ops = append(ops, o)
			apply(o, false)
		}
		for i := len(ops) - 1; i >= 0; i-- {
			apply(ops[i], true)
		}
		idx, ok := s.BasisState()
		return ok && idx == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFidelityDifferentSizes(t *testing.T) {
	if Fidelity(New(2), New(3)) != 0 {
		t.Fatal("mismatched sizes should have zero fidelity")
	}
}
