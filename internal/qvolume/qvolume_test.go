package qvolume

import (
	"testing"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/topo"
)

func uniformQ20(e float64) *device.Device {
	tp := topo.IBMQ20()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = e
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.0005
		s.Readout[q] = 0.01
		s.T1Us[q], s.T2Us[q] = 200, 150
	}
	return device.MustNew(tp, s)
}

func TestModelCircuitShape(t *testing.T) {
	c := ModelCircuit(4, 1)
	if c.NumQubits != 4 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	// 4 layers × 2 pairs × 2 CX per block = 16 CX.
	if got := c.Stats().TwoQubit; got != 16 {
		t.Fatalf("CX count = %d, want 16", got)
	}
	if c.Stats().Measures != 4 {
		t.Fatalf("measures = %d", c.Stats().Measures)
	}
}

func TestModelCircuitDeterministicPerSeed(t *testing.T) {
	a, b := ModelCircuit(4, 9), ModelCircuit(4, 9)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Gates {
		if a.Gates[i].Kind != b.Gates[i].Kind || a.Gates[i].Param != b.Gates[i].Param {
			t.Fatal("same seed, different gates")
		}
	}
	c := ModelCircuit(4, 10)
	same := true
	for i := range a.Gates {
		if i >= len(c.Gates) || a.Gates[i].Param != c.Gates[i].Param {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestModelCircuitPanicsOnTinyWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ModelCircuit(1) did not panic")
		}
	}()
	ModelCircuit(1, 1)
}

func TestHeavyOutputs(t *testing.T) {
	c := ModelCircuit(4, 3)
	heavy, hop, err := HeavyOutputs(c)
	if err != nil {
		t.Fatal(err)
	}
	// For scrambling circuits the ideal HOP approaches (1+ln2)/2 ≈ 0.85;
	// any genuinely scrambled circuit lands well above 0.5.
	if hop <= 0.5 || hop > 1 {
		t.Fatalf("ideal HOP = %v, want in (0.5, 1]", hop)
	}
	if len(heavy) == 0 || len(heavy) > 16 {
		t.Fatalf("heavy set size = %d", len(heavy))
	}
}

func TestEvaluatePerfectDevicePasses(t *testing.T) {
	d := uniformQ20(0.0001)
	res, err := Evaluate(d, 3, Config{Circuits: 4, Seed: 1, Policy: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("near-perfect device failed QV at m=3: %+v", res)
	}
	if res.MeanPST < 0.9 {
		t.Fatalf("mean PST = %v on a near-perfect device", res.MeanPST)
	}
}

func TestEvaluateNoisyDeviceFails(t *testing.T) {
	d := uniformQ20(0.2) // terrible links
	res, err := Evaluate(d, 4, Config{Circuits: 4, Seed: 1, Policy: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatalf("20%%-error device passed QV at m=4: %+v", res)
	}
	if res.NoisyHOP < 0.45 || res.NoisyHOP > 0.7 {
		t.Fatalf("noisy HOP = %v, want near the depolarized 0.5", res.NoisyHOP)
	}
}

func TestEvaluateErrors(t *testing.T) {
	d := uniformQ20(0.01)
	if _, err := Evaluate(d, 25, Config{}); err == nil {
		t.Fatal("width beyond device accepted")
	}
	if _, err := Evaluate(d, 15, Config{}); err == nil {
		t.Fatal("width beyond simulation budget accepted")
	}
}

func TestAchievableMonotoneScan(t *testing.T) {
	d := uniformQ20(0.015)
	best, all, err := Achievable(d, 5, Config{Circuits: 3, Seed: 2, Policy: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no widths evaluated")
	}
	// The scan stops at the first failure; every result before the last
	// must have passed.
	for i, r := range all[:len(all)-1] {
		if !r.Pass {
			t.Fatalf("intermediate width %d failed but scan continued", all[i].M)
		}
	}
	if best > 0 && !all[best-2].Pass {
		t.Fatalf("achievable %d inconsistent with results", best)
	}
}

func TestVariationAwareQVAtLeastBaseline(t *testing.T) {
	// The Related-Work argument made quantitative: on a chip with link
	// variation, the variation-aware compiler achieves at least the
	// baseline's noisy HOP at the same width (usually more).
	arch := calib.Generate(calib.DefaultQ20Config(11))
	d := device.MustNew(arch.Topo, arch.MustMean())
	cfgB := Config{Circuits: 4, Seed: 5, Policy: core.Baseline}
	cfgV := Config{Circuits: 4, Seed: 5, Policy: core.VQAVQM}
	rb, err := Evaluate(d, 4, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := Evaluate(d, 4, cfgV)
	if err != nil {
		t.Fatal(err)
	}
	if rv.NoisyHOP < rb.NoisyHOP-1e-9 {
		t.Fatalf("VQA+VQM HOP %v below baseline %v", rv.NoisyHOP, rb.NoisyHOP)
	}
	if rv.MeanPST < rb.MeanPST-1e-9 {
		t.Fatalf("VQA+VQM PST %v below baseline %v", rv.MeanPST, rb.MeanPST)
	}
}
