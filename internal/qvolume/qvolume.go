// Package qvolume implements a Quantum Volume–style benchmark (Cross et
// al., the metric the paper's Related Work contrasts with PST): square
// model circuits — m qubits, m layers of a random qubit pairing followed
// by a random two-qubit block — scored by the heavy-output probability.
//
// The paper argues QV "does not capture the reliability loss due to
// variation [and] is an application-agnostic metric"; this package lets
// the repository make that argument quantitative: the achievable volume
// under the variation-aware policies exceeds the baseline's on the same
// chip, so the *compiler* changes the machine's measured QV even though
// the hardware is identical.
//
// Ideal heavy outputs come from the dense state-vector simulator; the
// noisy heavy-output probability uses the standard depolarizing estimate
// hop ≈ PST·hop_ideal + (1−PST)/2, with PST from the fault-injection
// model of package sim.
package qvolume

import (
	"fmt"
	"math/rand"
	"sort"

	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/parallel"
	"vaq/internal/sim"
	"vaq/internal/statevec"
)

// ModelCircuit builds one QV model circuit on m qubits: m layers, each a
// random perfect pairing of the qubits with a randomized two-qubit block
// (CX-sandwiched random rotations — a scrambling approximation of a Haar
// SU(4) block) on every pair. Odd m leaves one idle qubit per layer.
func ModelCircuit(m int, seed int64) *circuit.Circuit {
	if m < 2 {
		panic(fmt.Sprintf("qvolume: need ≥ 2 qubits, got %d", m))
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(fmt.Sprintf("qv-%d", m), m)
	for layer := 0; layer < m; layer++ {
		perm := rng.Perm(m)
		for i := 0; i+1 < m; i += 2 {
			su4Block(c, rng, perm[i], perm[i+1])
		}
	}
	c.MeasureAll()
	return c
}

// su4Block appends a randomized entangling block on qubits a, b.
func su4Block(c *circuit.Circuit, rng *rand.Rand, a, b int) {
	rot := func(q int) {
		c.RZ(rng.Float64()*6.2832-3.1416, q)
		c.RY(rng.Float64()*6.2832-3.1416, q)
		c.RZ(rng.Float64()*6.2832-3.1416, q)
	}
	rot(a)
	rot(b)
	c.CX(a, b)
	rot(a)
	rot(b)
	c.CX(b, a)
	rot(a)
	rot(b)
}

// HeavyOutputs computes the ideal output distribution of the model
// circuit and returns the heavy set (outputs with probability above the
// median) and the ideal heavy-output probability.
func HeavyOutputs(c *circuit.Circuit) (map[int]bool, float64, error) {
	st, err := statevec.Run(c)
	if err != nil {
		return nil, 0, err
	}
	probs := st.Probabilities()
	sorted := append([]float64(nil), probs...)
	sort.Float64s(sorted)
	median := (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	heavy := map[int]bool{}
	hop := 0.0
	for i, p := range probs {
		if p > median {
			heavy[i] = true
			hop += p
		}
	}
	return heavy, hop, nil
}

// Result reports one QV evaluation at width m.
type Result struct {
	M        int
	Circuits int
	// MeanPST is the average compiled-circuit PST across model circuits.
	MeanPST float64
	// IdealHOP and NoisyHOP are the mean ideal and noise-adjusted
	// heavy-output probabilities.
	IdealHOP float64
	NoisyHOP float64
	// Pass is NoisyHOP > 2/3, the QV threshold.
	Pass bool
}

// Config tunes an evaluation.
type Config struct {
	// Circuits per width (default 8; the spec uses 100+, overkill for a
	// simulator study).
	Circuits int
	Seed     int64
	Policy   core.Policy
	// Trials for the PST estimate (default: analytic only).
	Trials int
	// Workers bounds the goroutines evaluating model circuits (0: one per
	// CPU, < 0: serial; see package parallel).
	Workers int
}

func (c Config) circuits() int {
	if c.Circuits <= 0 {
		return 8
	}
	return c.Circuits
}

// Evaluate runs the QV protocol at width m on the device under the
// compilation policy.
func Evaluate(d *device.Device, m int, cfg Config) (Result, error) {
	res := Result{M: m, Circuits: cfg.circuits()}
	if m > d.NumQubits() {
		return res, fmt.Errorf("qvolume: width %d exceeds device size %d", m, d.NumQubits())
	}
	if m > 14 {
		return res, fmt.Errorf("qvolume: width %d beyond the exact-simulation budget", m)
	}
	// Model circuits are independent; fan them out and reduce the sums in
	// circuit order so the result is identical at any worker count.
	type sample struct{ pst, idealHOP float64 }
	samples, err := parallel.Map(cfg.Workers, res.Circuits, func(i int) (sample, error) {
		mc := ModelCircuit(m, cfg.Seed+int64(i)*101)
		_, idealHOP, err := HeavyOutputs(mc)
		if err != nil {
			return sample{}, err
		}
		comp, err := core.Compile(d, mc, core.Options{Policy: cfg.Policy, Seed: cfg.Seed + int64(i)})
		if err != nil {
			return sample{}, err
		}
		var pst float64
		if cfg.Trials > 0 {
			out := sim.Run(d, comp.Routed.Physical, sim.Config{Trials: cfg.Trials, Seed: cfg.Seed + int64(i), Workers: cfg.Workers})
			pst = out.PST
			if out.Successes < 50 {
				pst = sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{})
			}
		} else {
			pst = sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{})
		}
		return sample{pst: pst, idealHOP: idealHOP}, nil
	})
	if err != nil {
		return res, err
	}
	for _, s := range samples {
		res.MeanPST += s.pst / float64(res.Circuits)
		res.IdealHOP += s.idealHOP / float64(res.Circuits)
		res.NoisyHOP += (s.pst*s.idealHOP + (1-s.pst)*0.5) / float64(res.Circuits)
	}
	res.Pass = res.NoisyHOP > 2.0/3.0
	return res, nil
}

// Achievable returns the largest width m ≤ maxM whose noisy heavy-output
// probability clears the 2/3 threshold, and log2 of the quantum volume
// (= that width; 0 when even m=2 fails). Widths are scanned in order and
// the scan stops at the first failure, per the QV protocol.
func Achievable(d *device.Device, maxM int, cfg Config) (int, []Result, error) {
	best := 0
	var all []Result
	for m := 2; m <= maxM; m++ {
		r, err := Evaluate(d, m, cfg)
		if err != nil {
			return best, all, err
		}
		all = append(all, r)
		if !r.Pass {
			break
		}
		best = m
	}
	return best, all, nil
}
