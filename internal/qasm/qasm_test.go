package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

const ghz = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
`

func TestParseGHZ(t *testing.T) {
	c, err := Parse(ghz)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 || c.NumCBits != 3 {
		t.Fatalf("qubits=%d cbits=%d, want 3/3", c.NumQubits, c.NumCBits)
	}
	s := c.Stats()
	if s.OneQubit != 1 || s.TwoQubit != 2 || s.Measures != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if c.Gates[1].Kind != gate.CX || c.Gates[1].Qubits[0] != 0 || c.Gates[1].Qubits[1] != 1 {
		t.Fatalf("gate 1 = %v", c.Gates[1])
	}
}

func TestParseComments(t *testing.T) {
	src := "qreg q[2]; // register\n// full line comment\nh q[0]; cx q[0],q[1]; // trailing\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("gates = %d, want 2", len(c.Gates))
	}
}

func TestParseParameterizedGates(t *testing.T) {
	src := `qreg q[1];
rz(pi/2) q[0];
rx(-pi/4) q[0];
u3(pi/2, 0, pi) q[0];
u1(2*pi) q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Gates[0].Param; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("rz param = %v, want pi/2", got)
	}
	if got := c.Gates[1].Param; math.Abs(got+math.Pi/4) > 1e-12 {
		t.Fatalf("rx param = %v, want -pi/4", got)
	}
	// u3 folds its three parameters by summation.
	if got := c.Gates[2].Param; math.Abs(got-(math.Pi/2+math.Pi)) > 1e-12 {
		t.Fatalf("u3 folded param = %v", got)
	}
	if got := c.Gates[3].Param; math.Abs(got-2*math.Pi) > 1e-12 {
		t.Fatalf("u1 param = %v, want 2pi", got)
	}
}

func TestParseBarrier(t *testing.T) {
	src := "qreg q[3];\nh q[0];\nbarrier q;\nh q[1];\nbarrier q[0],q[2];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	barriers := 0
	for _, g := range c.Gates {
		if g.Kind == gate.Barrier {
			barriers++
		}
	}
	if barriers != 2 {
		t.Fatalf("barriers = %d, want 2", barriers)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no qreg", "h q[0];", "before qreg"},
		{"empty", "", "no qreg"},
		{"double qreg", "qreg q[2]; qreg r[2];", "multiple qreg"},
		{"double creg", "qreg q[1]; creg c[1]; creg d[1];", "multiple creg"},
		{"bad reg", "qreg q[];", "register"},
		{"zero reg", "qreg q[0];", "register"},
		{"unknown gate", "qreg q[2]; foo q[0];", "unknown gate"},
		{"bad arity", "qreg q[2]; cx q[0];", "expects 2 operands"},
		{"out of range", "qreg q[2]; h q[5];", "out of range"},
		{"dup operand", "qreg q[2]; cx q[1],q[1];", "duplicate"},
		{"measure no creg", "qreg q[1]; measure q[0] -> c[0];", "creg"},
		{"measure bad cbit", "qreg q[1]; creg c[1]; measure q[0] -> c[3];", "out of range"},
		{"measure malformed", "qreg q[1]; creg c[1]; measure q[0];", "->"},
		{"wrong register", "qreg q[2]; h r[0];", "unknown register"},
		{"missing param", "qreg q[1]; rz q[0];", "parameter"},
		{"extra param", "qreg q[1]; h(0.5) q[0];", "no parameters"},
		{"bad expr", "qreg q[1]; rz(1+*) q[0];", "bad token"},
		{"free symbol", "qreg q[1]; rz(zap) q[0];", "unbound symbolic parameters"},
		{"div by zero", "qreg q[1]; rz(1/0) q[0];", "division by zero"},
		{"unbalanced", "qreg q[1]; rz)1( q[0];", "unbalanced"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.wantSub)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse("qreg q[2];\nh q[0];\ncx q[0];\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
}

func TestEvalExprPrecedence(t *testing.T) {
	cases := map[string]float64{
		"1+2*3":     7,
		"(1+2)*3":   9,
		"-pi":       -math.Pi,
		"pi/2":      math.Pi / 2,
		"2-3-4":     -5,
		"8/2/2":     2,
		"--3":       3,
		"1.5e2":     150,
		"2*(3+4)/7": 2,
	}
	for expr, want := range cases {
		got, err := evalExpr(expr)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", expr, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("evalExpr(%q) = %v, want %v", expr, got, want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	for _, expr := range []string{"", "1+", "(1", "1 2", "foo", "1@2"} {
		if _, err := evalExpr(expr); err == nil {
			t.Errorf("evalExpr(%q) succeeded, want error", expr)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	orig, err := Parse(ghz)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(Serialize(orig))
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, Serialize(orig))
	}
	if len(again.Gates) != len(orig.Gates) {
		t.Fatalf("round trip gates %d != %d", len(again.Gates), len(orig.Gates))
	}
	for i := range orig.Gates {
		a, b := orig.Gates[i], again.Gates[i]
		if a.Kind != b.Kind || a.CBit != b.CBit || len(a.Qubits) != len(b.Qubits) {
			t.Fatalf("gate %d mismatch: %v vs %v", i, a, b)
		}
		for j := range a.Qubits {
			if a.Qubits[j] != b.Qubits[j] {
				t.Fatalf("gate %d operand %d mismatch", i, j)
			}
		}
	}
}

func TestSerializeRoundTripRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := circuit.New("rand", n)
		for i := 0; i < 25; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(6) {
			case 0:
				c.H(a)
			case 1:
				c.X(a)
			case 2:
				c.RZ(rng.Float64()*2-1, a)
			case 3:
				c.CX(a, b)
			case 4:
				c.Swap(a, b)
			case 5:
				c.T(a)
			}
		}
		c.MeasureAll()
		again, err := Parse(Serialize(c))
		if err != nil {
			return false
		}
		if len(again.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			if c.Gates[i].Kind != again.Gates[i].Kind {
				return false
			}
			if math.Abs(c.Gates[i].Param-again.Gates[i].Param) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeBarrier(t *testing.T) {
	c := circuit.New("b", 2).H(0).Barrier().CX(0, 1)
	out := Serialize(c)
	if !strings.Contains(out, "barrier q[0],q[1];") {
		t.Fatalf("missing barrier in:\n%s", out)
	}
}
