package qasm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds the parser adversarial input assembled from
// QASM fragments: it must return a value or an error, never panic.
func TestParseNeverPanics(t *testing.T) {
	fragments := []string{
		"OPENQASM 2.0;", "include \"qelib1.inc\";", "qreg q[", "qreg q[3];",
		"creg c[3];", "h q[0];", "cx q[0],q[1];", "measure q[0] -> c[0];",
		"barrier q;", "rz(pi/2) q[1];", "->", "[", "]", ";", "(", ")",
		"q[99]", "-1", "u3(1,2,3) q[0];", "swap q[0],q[1];", "//",
		"qreg", "measure", "cx q[0],q[0];", "rz() q[0];", "\x00", "π",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < 1+rng.Intn(20); i++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
			if rng.Intn(2) == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", b.String(), r)
			}
		}()
		_, _ = Parse(b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnMutatedValidProgram mutates a valid program
// byte-by-byte; the parser must stay panic-free.
func TestParseNeverPanicsOnMutatedValidProgram(t *testing.T) {
	base := "OPENQASM 2.0;\nqreg q[4];\ncreg c[4];\nh q[0];\nrz(pi/4) q[1];\ncx q[0],q[1];\nswap q[2],q[3];\nmeasure q[0] -> c[0];\n"
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		mutated := []byte(base)
		for k := 0; k < 1+rng.Intn(4); k++ {
			pos := rng.Intn(len(mutated))
			mutated[pos] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutation %q: %v", mutated, r)
				}
			}()
			_, _ = Parse(string(mutated))
		}()
	}
}
