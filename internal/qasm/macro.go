package qasm

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"vaq/internal/param"
)

// macroDef is a user gate definition:
//
//	gate name(p1,p2) q1,q2 { body; body; }
//
// Bodies are stored as raw statements; applications expand them with the
// actual parameters (evaluated to numbers) and qubit operands substituted
// for the formal names, then feed the result back through the parser.
type macroDef struct {
	name    string
	params  []string // formal parameter names (may be empty)
	qubits  []string // formal qubit names
	body    []string // ';'-separated statements
	defLine int
}

// extractGateDefs strips every `gate … { … }` block from the source and
// returns the cleaned source (with newlines preserved so line numbers in
// errors stay meaningful) plus the parsed definitions.
func extractGateDefs(src string) (string, []*macroDef, error) {
	var defs []*macroDef
	var cleaned strings.Builder

	lines := strings.Split(src, "\n")
	i := 0
	for i < len(lines) {
		line := stripComment(lines[i])
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "gate ") && trimmed != "gate" {
			cleaned.WriteString(lines[i])
			cleaned.WriteByte('\n')
			i++
			continue
		}
		// Collect until the closing brace.
		start := i
		var block strings.Builder
		depth := 0
		opened := false
		for i < len(lines) {
			l := stripComment(lines[i])
			block.WriteString(l)
			block.WriteByte('\n')
			depth += strings.Count(l, "{")
			if strings.Contains(l, "{") {
				opened = true
			}
			depth -= strings.Count(l, "}")
			i++
			cleaned.WriteByte('\n') // keep line numbering aligned
			if opened && depth == 0 {
				break
			}
		}
		if !opened || depth != 0 {
			return "", nil, &ParseError{Line: start + 1, Msg: "unterminated gate definition"}
		}
		def, err := parseGateDef(block.String(), start+1)
		if err != nil {
			return "", nil, err
		}
		defs = append(defs, def)
	}
	return cleaned.String(), defs, nil
}

// parseGateDef parses one complete `gate header { body }` block.
func parseGateDef(block string, line int) (*macroDef, error) {
	open := strings.Index(block, "{")
	close := strings.LastIndex(block, "}")
	if open < 0 || close < open {
		return nil, &ParseError{Line: line, Msg: "malformed gate definition"}
	}
	header := strings.TrimSpace(block[:open])
	body := block[open+1 : close]

	header = strings.TrimSpace(strings.TrimPrefix(header, "gate"))
	if header == "" {
		return nil, &ParseError{Line: line, Msg: "gate definition without a name"}
	}
	def := &macroDef{defLine: line}
	// Split "name(params) qubits" or "name qubits".
	rest := header
	if p := strings.Index(header, "("); p >= 0 {
		q := strings.Index(header, ")")
		if q < p {
			return nil, &ParseError{Line: line, Msg: "unbalanced parameter list in gate definition"}
		}
		def.name = strings.TrimSpace(header[:p])
		for _, prm := range strings.Split(header[p+1:q], ",") {
			prm = strings.TrimSpace(prm)
			if prm == "" {
				continue
			}
			if !validIdent(prm) {
				return nil, &ParseError{Line: line, Msg: fmt.Sprintf("bad parameter name %q", prm)}
			}
			def.params = append(def.params, prm)
		}
		rest = strings.TrimSpace(header[q+1:])
	} else {
		fields := strings.SplitN(header, " ", 2)
		def.name = strings.TrimSpace(fields[0])
		rest = ""
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}
	}
	if !validIdent(def.name) {
		return nil, &ParseError{Line: line, Msg: fmt.Sprintf("bad gate name %q", def.name)}
	}
	if rest == "" {
		return nil, &ParseError{Line: line, Msg: "gate definition without qubit arguments"}
	}
	for _, qb := range strings.Split(rest, ",") {
		qb = strings.TrimSpace(qb)
		if !validIdent(qb) {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("bad qubit argument %q", qb)}
		}
		def.qubits = append(def.qubits, qb)
	}
	seen := map[string]bool{}
	for _, name := range append(append([]string{}, def.params...), def.qubits...) {
		if seen[name] {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("duplicate argument %q in gate definition", name)}
		}
		seen[name] = true
	}
	for _, stmt := range strings.Split(body, ";") {
		stmt = strings.TrimSpace(stripComment(stmt))
		stmt = strings.ReplaceAll(stmt, "\n", " ")
		if stmt != "" {
			def.body = append(def.body, stmt)
		}
	}
	return def, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// expand substitutes actual arguments into the macro body and returns the
// expanded statements. Actual parameters arrive already evaluated to
// their affine forms; symbolic ones substitute as re-parseable c*θ+k
// renderings, so a macro applied with a free symbol stays symbolic.
func (m *macroDef) expand(params []param.Expr, operands []string, line int) ([]string, error) {
	if len(params) != len(m.params) {
		return nil, &ParseError{Line: line, Msg: fmt.Sprintf("%s expects %d parameters, got %d", m.name, len(m.params), len(params))}
	}
	if len(operands) != len(m.qubits) {
		return nil, &ParseError{Line: line, Msg: fmt.Sprintf("%s expects %d qubit operands, got %d", m.name, len(m.qubits), len(operands))}
	}
	subst := map[string]string{}
	for i, formal := range m.params {
		if v := params[i]; v.IsConst() {
			subst[formal] = "(" + strconv.FormatFloat(v.Const, 'g', 17, 64) + ")"
		} else {
			subst[formal] = "(" + v.String() + ")"
		}
	}
	for i, q := range m.qubits {
		subst[q] = operands[i]
	}
	out := make([]string, 0, len(m.body))
	for _, stmt := range m.body {
		out = append(out, substituteIdents(stmt, subst))
	}
	return out, nil
}

// substituteIdents replaces whole identifiers per the map, leaving other
// text (numbers, operators, brackets) untouched.
func substituteIdents(s string, subst map[string]string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		r := rune(s[i])
		if unicode.IsLetter(r) || r == '_' {
			j := i
			for j < len(s) && (isIdentByte(s[j])) {
				j++
			}
			word := s[i:j]
			if rep, ok := subst[word]; ok {
				b.WriteString(rep)
			} else {
				b.WriteString(word)
			}
			i = j
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
