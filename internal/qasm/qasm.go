// Package qasm implements a parser and serializer for the subset of
// OpenQASM 2.0 used by NISQ benchmark kernels: a single quantum register, a
// single classical register, the standard gate mnemonics from the qelib1
// header, measurement, and barriers. Parameter expressions support numeric
// literals, pi, unary minus, and the binary operators + - * /, which covers
// every benchmark in the literature this repository reproduces.
//
// Beyond the OpenQASM 2.0 numeric forms, parameter expressions may use
// free identifiers as symbolic parameters — rz(theta), u3(2*a, b, 0.5) —
// restricted to affine combinations c*θ + k (package param). ParseParametric
// returns the resulting template; plain Parse reports any leftover free
// symbol as a typed *UnboundSymbolError. An optional dialect statement
// `parameter theta;` declares symbols up front; once any declaration
// appears, undeclared identifiers in later expressions become errors, and
// duplicate declarations are rejected.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"vaq/internal/circuit"
	"vaq/internal/gate"
	"vaq/internal/param"
)

// ParseError describes a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg) }

// UnboundSymbolError reports a program that parsed cleanly but still has
// free symbolic parameters, which Parse cannot turn into a concrete
// circuit. Callers wanting the symbolic form use ParseParametric.
type UnboundSymbolError struct {
	Symbols []param.Symbol
}

func (e *UnboundSymbolError) Error() string {
	names := make([]string, len(e.Symbols))
	for i, s := range e.Symbols {
		names[i] = string(s)
	}
	return fmt.Sprintf("qasm: program has unbound symbolic parameters (%s); bind them or use ParseParametric",
		strings.Join(names, ", "))
}

// Parse converts OpenQASM 2.0 source into a Circuit. The program must
// declare exactly one qreg; a creg is optional (required only by measure).
// User gate definitions (`gate name(params) qubits { … }`) are supported
// and expanded at application sites; the primitives `U(a,b,c)` and `CX`
// map to u3 and cx. Programs with free symbolic parameters yield a typed
// *UnboundSymbolError (see ParseParametric).
func Parse(src string) (*circuit.Circuit, error) {
	p, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(p.exprs) > 0 {
		return nil, &UnboundSymbolError{Symbols: p.parametric().FreeSymbols()}
	}
	return p.c, nil
}

// ParseParametric converts OpenQASM 2.0 source into a parametric circuit
// template: gates whose parameter expressions contain free symbols hold
// placeholder slots to be filled by param.ParametricCircuit.Bind. Fully
// numeric programs parse too, yielding a template with no free symbols.
func ParseParametric(src string) (*param.ParametricCircuit, error) {
	p, err := parseProgram(src)
	if err != nil {
		return nil, err
	}
	return p.parametric(), nil
}

func parseProgram(src string) (*parser, error) {
	cleaned, defs, err := extractGateDefs(src)
	if err != nil {
		return nil, err
	}
	p := &parser{macros: map[string]*macroDef{}, exprs: map[int]param.Expr{}}
	for _, d := range defs {
		if _, dup := p.macros[d.name]; dup {
			return nil, &ParseError{Line: d.defLine, Msg: fmt.Sprintf("gate %q defined twice", d.name)}
		}
		p.macros[d.name] = d
	}
	src = cleaned
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// A line may hold several ';'-terminated statements.
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := p.statement(stmt, i+1); err != nil {
				return nil, err
			}
		}
	}
	if p.c == nil {
		return nil, &ParseError{Line: 0, Msg: "no qreg declared"}
	}
	return p, nil
}

// parametric wraps the parsed circuit and its expression table.
func (p *parser) parametric() *param.ParametricCircuit {
	pc := param.New(p.c)
	for i, e := range p.exprs {
		pc.Exprs[i] = e
	}
	return pc
}

func stripComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return s[:i]
	}
	return s
}

type parser struct {
	c        *circuit.Circuit
	qregName string
	cregName string
	cregSize int
	macros   map[string]*macroDef
	depth    int                // macro expansion depth guard
	exprs    map[int]param.Expr // gate index → symbolic parameter expression
	declared map[string]int     // declared symbol → declaration line (nil: lenient mode)
}

func (p *parser) statement(s string, line int) error {
	switch {
	case strings.HasPrefix(s, "OPENQASM"), strings.HasPrefix(s, "include"):
		return nil
	case strings.HasPrefix(s, "qreg"):
		return p.declare(s[len("qreg"):], line, true)
	case strings.HasPrefix(s, "creg"):
		return p.declare(s[len("creg"):], line, false)
	case strings.HasPrefix(s, "measure"):
		return p.measure(s[len("measure"):], line)
	case strings.HasPrefix(s, "barrier"):
		return p.barrier(s[len("barrier"):], line)
	case strings.HasPrefix(s, "parameter "):
		return p.declareSymbol(s[len("parameter "):], line)
	default:
		return p.gateApp(s, line)
	}
}

// declareSymbol handles the dialect statement `parameter theta;`.
// Declarations are optional — any free identifier in an expression is
// accepted as a symbol — but once one appears, later expressions may only
// use declared names, and re-declaring a name is an error.
func (p *parser) declareSymbol(rest string, line int) error {
	name := strings.TrimSpace(rest)
	if !symbolIdent(name) {
		return &ParseError{Line: line, Msg: fmt.Sprintf("bad parameter name %q (want [a-z][a-z0-9_]*)", name)}
	}
	if p.declared == nil {
		p.declared = map[string]int{}
	}
	if prev, dup := p.declared[name]; dup {
		return &ParseError{Line: line, Msg: fmt.Sprintf("parameter %q declared twice (first on line %d)", name, prev)}
	}
	p.declared[name] = line
	return nil
}

// symbolIdent reports whether s is a valid symbol name under the
// expression tokenizer: a lowercase letter followed by lowercase
// letters, digits or underscores.
func symbolIdent(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !identByte(s[i]) {
			return false
		}
	}
	return true
}

func identByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b == '_'
}

func (p *parser) declare(rest string, line int, quantum bool) error {
	name, size, err := parseReg(strings.TrimSpace(rest))
	if err != nil {
		return &ParseError{Line: line, Msg: err.Error()}
	}
	if quantum {
		if p.c != nil {
			return &ParseError{Line: line, Msg: "multiple qreg declarations are not supported"}
		}
		p.c = circuit.New(name, size)
		p.qregName = name
		return nil
	}
	if p.cregName != "" {
		return &ParseError{Line: line, Msg: "multiple creg declarations are not supported"}
	}
	p.cregName = name
	p.cregSize = size
	return nil
}

// parseReg parses "name[size]".
func parseReg(s string) (string, int, error) {
	open := strings.Index(s, "[")
	close := strings.Index(s, "]")
	if open <= 0 || close != len(s)-1 {
		return "", 0, fmt.Errorf("malformed register declaration %q", s)
	}
	name := strings.TrimSpace(s[:open])
	size, err := strconv.Atoi(strings.TrimSpace(s[open+1 : close]))
	if err != nil || size <= 0 {
		return "", 0, fmt.Errorf("bad register size in %q", s)
	}
	return name, size, nil
}

func (p *parser) index(ref string, line int, wantReg string) (int, error) {
	ref = strings.TrimSpace(ref)
	open := strings.Index(ref, "[")
	close := strings.Index(ref, "]")
	if open <= 0 || close != len(ref)-1 {
		return 0, &ParseError{Line: line, Msg: fmt.Sprintf("malformed operand %q", ref)}
	}
	name := strings.TrimSpace(ref[:open])
	if name != wantReg {
		return 0, &ParseError{Line: line, Msg: fmt.Sprintf("unknown register %q (want %q)", name, wantReg)}
	}
	idx, err := strconv.Atoi(strings.TrimSpace(ref[open+1 : close]))
	if err != nil || idx < 0 {
		return 0, &ParseError{Line: line, Msg: fmt.Sprintf("bad index in %q", ref)}
	}
	return idx, nil
}

func (p *parser) requireCircuit(line int) error {
	if p.c == nil {
		return &ParseError{Line: line, Msg: "statement before qreg declaration"}
	}
	return nil
}

func (p *parser) measure(rest string, line int) error {
	if err := p.requireCircuit(line); err != nil {
		return err
	}
	parts := strings.Split(rest, "->")
	if len(parts) != 2 {
		return &ParseError{Line: line, Msg: "measure requires 'q[i] -> c[j]'"}
	}
	if p.cregName == "" {
		return &ParseError{Line: line, Msg: "measure without creg declaration"}
	}
	q, err := p.index(parts[0], line, p.qregName)
	if err != nil {
		return err
	}
	cb, err := p.index(parts[1], line, p.cregName)
	if err != nil {
		return err
	}
	if q >= p.c.NumQubits {
		return &ParseError{Line: line, Msg: fmt.Sprintf("qubit %d out of range", q)}
	}
	if cb >= p.cregSize {
		return &ParseError{Line: line, Msg: fmt.Sprintf("classical bit %d out of range", cb)}
	}
	p.c.Measure(q, cb)
	return nil
}

func (p *parser) barrier(rest string, line int) error {
	if err := p.requireCircuit(line); err != nil {
		return err
	}
	rest = strings.TrimSpace(rest)
	if rest == p.qregName || rest == "" {
		p.c.Barrier()
		return nil
	}
	var qs []int
	for _, ref := range strings.Split(rest, ",") {
		q, err := p.index(ref, line, p.qregName)
		if err != nil {
			return err
		}
		qs = append(qs, q)
	}
	p.c.Barrier(qs...)
	return nil
}

func (p *parser) gateApp(s string, line int) error {
	if err := p.requireCircuit(line); err != nil {
		return err
	}
	// Split "name(params) operands" or "name operands".
	head := s
	params := ""
	if open := strings.Index(s, "("); open >= 0 {
		// Find the matching close paren (parameter expressions may nest).
		depth, close := 0, -1
		for i := open; i < len(s); i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					close = i
				}
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return &ParseError{Line: line, Msg: "unbalanced parentheses"}
		}
		head = strings.TrimSpace(s[:open])
		params = s[open+1 : close]
		s = head + " " + strings.TrimSpace(s[close+1:])
	}
	fields := strings.SplitN(strings.TrimSpace(s), " ", 2)
	if len(fields) != 2 {
		return &ParseError{Line: line, Msg: fmt.Sprintf("malformed gate application %q", s)}
	}
	name := strings.TrimSpace(fields[0])

	// User-defined gates expand first (definitions may shadow natives).
	if m, isMacro := p.macros[name]; isMacro {
		return p.applyMacro(m, params, fields[1], line)
	}
	// OpenQASM primitives.
	switch name {
	case "U":
		name = "u3"
	case "CX":
		name = "cx"
	}
	k, ok := gate.KindByName(name)
	if !ok || k == gate.Measure || k == gate.Barrier {
		return &ParseError{Line: line, Msg: fmt.Sprintf("unknown gate %q", name)}
	}
	var operands []int
	for _, ref := range strings.Split(fields[1], ",") {
		q, err := p.index(ref, line, p.qregName)
		if err != nil {
			return err
		}
		operands = append(operands, q)
	}
	if k.Arity() != len(operands) {
		return &ParseError{Line: line, Msg: fmt.Sprintf("%s expects %d operands, got %d", name, k.Arity(), len(operands))}
	}
	g := circuit.Gate{Kind: k, Qubits: operands, CBit: -1}
	var sym param.Expr
	symbolic := false
	if k.Parameterized() {
		if params == "" {
			return &ParseError{Line: line, Msg: fmt.Sprintf("%s requires a parameter", name)}
		}
		// Multi-parameter gates (u2, u3) fold parameters by summation; the
		// simulator only needs to know a rotation happened, not the angle.
		// Folding symbolic expressions sums the affine forms the same way.
		total := param.Expr{}
		for _, expr := range strings.Split(params, ",") {
			e, err := evalSymbolic(expr, p.declared)
			if err != nil {
				return &ParseError{Line: line, Msg: err.Error()}
			}
			total = total.Add(e)
		}
		if total.IsConst() {
			g.Param = total.Const
		} else {
			sym, symbolic = total, true
		}
	} else if params != "" {
		return &ParseError{Line: line, Msg: fmt.Sprintf("%s takes no parameters", name)}
	}
	if err := appendChecked(p.c, g); err != nil {
		return &ParseError{Line: line, Msg: err.Error()}
	}
	if symbolic {
		p.exprs[len(p.c.Gates)-1] = sym
	}
	return nil
}

// applyMacro evaluates the actual parameters, expands the macro body with
// the operands substituted, and feeds the statements back through the
// parser. A depth guard bounds (impossible under define-before-use, but
// cheap) runaway recursion.
func (p *parser) applyMacro(m *macroDef, params, operandStr string, line int) error {
	if p.depth >= 40 {
		return &ParseError{Line: line, Msg: fmt.Sprintf("gate %q expansion too deep", m.name)}
	}
	var vals []param.Expr
	if strings.TrimSpace(params) != "" {
		for _, expr := range strings.Split(params, ",") {
			v, err := evalSymbolic(expr, p.declared)
			if err != nil {
				return &ParseError{Line: line, Msg: err.Error()}
			}
			vals = append(vals, v)
		}
	}
	var operands []string
	for _, o := range strings.Split(operandStr, ",") {
		o = strings.TrimSpace(o)
		if o == "" {
			return &ParseError{Line: line, Msg: fmt.Sprintf("empty operand in %q application", m.name)}
		}
		operands = append(operands, o)
	}
	stmts, err := m.expand(vals, operands, line)
	if err != nil {
		return err
	}
	p.depth++
	defer func() { p.depth-- }()
	for _, st := range stmts {
		if err := p.statement(st, line); err != nil {
			return err
		}
	}
	return nil
}

// appendChecked converts circuit.Append's panic on invalid operands into an
// error so the parser reports line numbers instead of crashing.
func appendChecked(c *circuit.Circuit, g circuit.Gate) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	c.Append(g)
	return nil
}

// evalExpr evaluates a fully numeric parameter expression; symbolic
// expressions are errors here (the parser proper goes through
// evalSymbolic and carries free symbols as expression slots).
func evalExpr(expr string) (float64, error) {
	e, err := evalSymbolic(expr, nil)
	if err != nil {
		return 0, err
	}
	if !e.IsConst() {
		return 0, fmt.Errorf("symbolic expression %q where a number is required", expr)
	}
	return e.Const, nil
}

// evalSymbolic evaluates a parameter expression to its affine form:
// numbers, pi, free identifiers as symbols, unary minus, and
// left-associative + - * / with standard precedence, restricted to
// affine combinations (a symbol may be scaled by constants but never
// multiplied by another symbol or divided into). declared, when non-nil,
// whitelists the identifiers expressions may use.
func evalSymbolic(expr string, declared map[string]int) (param.Expr, error) {
	toks, err := tokenize(expr)
	if err != nil {
		return param.Expr{}, err
	}
	e := &exprParser{toks: toks, declared: declared}
	v, err := e.parseSum()
	if err != nil {
		return param.Expr{}, err
	}
	if e.pos != len(e.toks) {
		return param.Expr{}, fmt.Errorf("trailing tokens in expression %q", expr)
	}
	return v, nil
}

func tokenize(expr string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(expr) {
		ch := expr[i]
		switch {
		case ch == ' ' || ch == '\t':
			i++
		case strings.ContainsRune("+-*/()", rune(ch)):
			toks = append(toks, string(ch))
			i++
		case ch >= '0' && ch <= '9' || ch == '.':
			j := i
			for j < len(expr) && (expr[j] >= '0' && expr[j] <= '9' || expr[j] == '.' || expr[j] == 'e' ||
				(j > i && (expr[j] == '+' || expr[j] == '-') && expr[j-1] == 'e')) {
				j++
			}
			toks = append(toks, expr[i:j])
			i = j
		case ch >= 'a' && ch <= 'z':
			j := i
			for j < len(expr) && identByte(expr[j]) {
				j++
			}
			toks = append(toks, expr[i:j])
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q in expression %q", ch, expr)
		}
	}
	return toks, nil
}

type exprParser struct {
	toks     []string
	pos      int
	declared map[string]int
}

func (e *exprParser) peek() string {
	if e.pos < len(e.toks) {
		return e.toks[e.pos]
	}
	return ""
}

func (e *exprParser) parseSum() (param.Expr, error) {
	v, err := e.parseProduct()
	if err != nil {
		return param.Expr{}, err
	}
	for {
		switch e.peek() {
		case "+":
			e.pos++
			r, err := e.parseProduct()
			if err != nil {
				return param.Expr{}, err
			}
			v = v.Add(r)
		case "-":
			e.pos++
			r, err := e.parseProduct()
			if err != nil {
				return param.Expr{}, err
			}
			v = v.Add(r.Neg())
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseProduct() (param.Expr, error) {
	v, err := e.parseUnary()
	if err != nil {
		return param.Expr{}, err
	}
	for {
		switch e.peek() {
		case "*":
			e.pos++
			r, err := e.parseUnary()
			if err != nil {
				return param.Expr{}, err
			}
			switch {
			case r.IsConst():
				v = v.Scale(r.Const)
			case v.IsConst():
				v = r.Scale(v.Const)
			default:
				return param.Expr{}, fmt.Errorf("nonlinear parameter expression: symbols may only be scaled by constants (c*θ + k)")
			}
		case "/":
			e.pos++
			r, err := e.parseUnary()
			if err != nil {
				return param.Expr{}, err
			}
			if !r.IsConst() {
				return param.Expr{}, fmt.Errorf("division by a symbolic expression is not supported (c*θ + k)")
			}
			if r.Const == 0 {
				return param.Expr{}, fmt.Errorf("division by zero")
			}
			v = v.Scale(1 / r.Const)
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseUnary() (param.Expr, error) {
	if e.peek() == "-" {
		e.pos++
		v, err := e.parseUnary()
		return v.Neg(), err
	}
	return e.parseAtom()
}

func (e *exprParser) parseAtom() (param.Expr, error) {
	tok := e.peek()
	switch {
	case tok == "":
		return param.Expr{}, fmt.Errorf("unexpected end of expression")
	case tok == "(":
		e.pos++
		v, err := e.parseSum()
		if err != nil {
			return param.Expr{}, err
		}
		if e.peek() != ")" {
			return param.Expr{}, fmt.Errorf("missing closing parenthesis")
		}
		e.pos++
		return v, nil
	case tok == "pi":
		e.pos++
		return param.Const(math.Pi), nil
	case symbolIdent(tok):
		if e.declared != nil {
			if _, ok := e.declared[tok]; !ok {
				return param.Expr{}, fmt.Errorf("undeclared parameter %q (declare with 'parameter %s;')", tok, tok)
			}
		}
		e.pos++
		return param.Sym(param.Symbol(tok)), nil
	default:
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return param.Expr{}, fmt.Errorf("bad token %q in expression", tok)
		}
		e.pos++
		return param.Const(v), nil
	}
}

// Serialize renders a circuit as OpenQASM 2.0 source.
func Serialize(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	if c.NumCBits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumCBits)
	}
	for _, g := range c.Gates {
		switch {
		case g.Kind == gate.Measure:
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.CBit)
		case g.Kind == gate.Barrier:
			refs := make([]string, len(g.Qubits))
			for i, q := range g.Qubits {
				refs[i] = fmt.Sprintf("q[%d]", q)
			}
			fmt.Fprintf(&b, "barrier %s;\n", strings.Join(refs, ","))
		case g.Kind.Parameterized():
			fmt.Fprintf(&b, "%s(%g) q[%d];\n", g.Kind, g.Param, g.Qubits[0])
		case len(g.Qubits) == 2:
			fmt.Fprintf(&b, "%s q[%d],q[%d];\n", g.Kind, g.Qubits[0], g.Qubits[1])
		default:
			fmt.Fprintf(&b, "%s q[%d];\n", g.Kind, g.Qubits[0])
		}
	}
	return b.String()
}
