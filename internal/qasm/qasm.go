// Package qasm implements a parser and serializer for the subset of
// OpenQASM 2.0 used by NISQ benchmark kernels: a single quantum register, a
// single classical register, the standard gate mnemonics from the qelib1
// header, measurement, and barriers. Parameter expressions support numeric
// literals, pi, unary minus, and the binary operators + - * /, which covers
// every benchmark in the literature this repository reproduces.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

// ParseError describes a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg) }

// Parse converts OpenQASM 2.0 source into a Circuit. The program must
// declare exactly one qreg; a creg is optional (required only by measure).
// User gate definitions (`gate name(params) qubits { … }`) are supported
// and expanded at application sites; the primitives `U(a,b,c)` and `CX`
// map to u3 and cx.
func Parse(src string) (*circuit.Circuit, error) {
	cleaned, defs, err := extractGateDefs(src)
	if err != nil {
		return nil, err
	}
	p := &parser{macros: map[string]*macroDef{}}
	for _, d := range defs {
		if _, dup := p.macros[d.name]; dup {
			return nil, &ParseError{Line: d.defLine, Msg: fmt.Sprintf("gate %q defined twice", d.name)}
		}
		p.macros[d.name] = d
	}
	src = cleaned
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// A line may hold several ';'-terminated statements.
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := p.statement(stmt, i+1); err != nil {
				return nil, err
			}
		}
	}
	if p.c == nil {
		return nil, &ParseError{Line: 0, Msg: "no qreg declared"}
	}
	return p.c, nil
}

func stripComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return s[:i]
	}
	return s
}

type parser struct {
	c        *circuit.Circuit
	qregName string
	cregName string
	cregSize int
	macros   map[string]*macroDef
	depth    int // macro expansion depth guard
}

func (p *parser) statement(s string, line int) error {
	switch {
	case strings.HasPrefix(s, "OPENQASM"), strings.HasPrefix(s, "include"):
		return nil
	case strings.HasPrefix(s, "qreg"):
		return p.declare(s[len("qreg"):], line, true)
	case strings.HasPrefix(s, "creg"):
		return p.declare(s[len("creg"):], line, false)
	case strings.HasPrefix(s, "measure"):
		return p.measure(s[len("measure"):], line)
	case strings.HasPrefix(s, "barrier"):
		return p.barrier(s[len("barrier"):], line)
	default:
		return p.gateApp(s, line)
	}
}

func (p *parser) declare(rest string, line int, quantum bool) error {
	name, size, err := parseReg(strings.TrimSpace(rest))
	if err != nil {
		return &ParseError{Line: line, Msg: err.Error()}
	}
	if quantum {
		if p.c != nil {
			return &ParseError{Line: line, Msg: "multiple qreg declarations are not supported"}
		}
		p.c = circuit.New(name, size)
		p.qregName = name
		return nil
	}
	if p.cregName != "" {
		return &ParseError{Line: line, Msg: "multiple creg declarations are not supported"}
	}
	p.cregName = name
	p.cregSize = size
	return nil
}

// parseReg parses "name[size]".
func parseReg(s string) (string, int, error) {
	open := strings.Index(s, "[")
	close := strings.Index(s, "]")
	if open <= 0 || close != len(s)-1 {
		return "", 0, fmt.Errorf("malformed register declaration %q", s)
	}
	name := strings.TrimSpace(s[:open])
	size, err := strconv.Atoi(strings.TrimSpace(s[open+1 : close]))
	if err != nil || size <= 0 {
		return "", 0, fmt.Errorf("bad register size in %q", s)
	}
	return name, size, nil
}

func (p *parser) index(ref string, line int, wantReg string) (int, error) {
	ref = strings.TrimSpace(ref)
	open := strings.Index(ref, "[")
	close := strings.Index(ref, "]")
	if open <= 0 || close != len(ref)-1 {
		return 0, &ParseError{Line: line, Msg: fmt.Sprintf("malformed operand %q", ref)}
	}
	name := strings.TrimSpace(ref[:open])
	if name != wantReg {
		return 0, &ParseError{Line: line, Msg: fmt.Sprintf("unknown register %q (want %q)", name, wantReg)}
	}
	idx, err := strconv.Atoi(strings.TrimSpace(ref[open+1 : close]))
	if err != nil || idx < 0 {
		return 0, &ParseError{Line: line, Msg: fmt.Sprintf("bad index in %q", ref)}
	}
	return idx, nil
}

func (p *parser) requireCircuit(line int) error {
	if p.c == nil {
		return &ParseError{Line: line, Msg: "statement before qreg declaration"}
	}
	return nil
}

func (p *parser) measure(rest string, line int) error {
	if err := p.requireCircuit(line); err != nil {
		return err
	}
	parts := strings.Split(rest, "->")
	if len(parts) != 2 {
		return &ParseError{Line: line, Msg: "measure requires 'q[i] -> c[j]'"}
	}
	if p.cregName == "" {
		return &ParseError{Line: line, Msg: "measure without creg declaration"}
	}
	q, err := p.index(parts[0], line, p.qregName)
	if err != nil {
		return err
	}
	cb, err := p.index(parts[1], line, p.cregName)
	if err != nil {
		return err
	}
	if q >= p.c.NumQubits {
		return &ParseError{Line: line, Msg: fmt.Sprintf("qubit %d out of range", q)}
	}
	if cb >= p.cregSize {
		return &ParseError{Line: line, Msg: fmt.Sprintf("classical bit %d out of range", cb)}
	}
	p.c.Measure(q, cb)
	return nil
}

func (p *parser) barrier(rest string, line int) error {
	if err := p.requireCircuit(line); err != nil {
		return err
	}
	rest = strings.TrimSpace(rest)
	if rest == p.qregName || rest == "" {
		p.c.Barrier()
		return nil
	}
	var qs []int
	for _, ref := range strings.Split(rest, ",") {
		q, err := p.index(ref, line, p.qregName)
		if err != nil {
			return err
		}
		qs = append(qs, q)
	}
	p.c.Barrier(qs...)
	return nil
}

func (p *parser) gateApp(s string, line int) error {
	if err := p.requireCircuit(line); err != nil {
		return err
	}
	// Split "name(params) operands" or "name operands".
	head := s
	params := ""
	if open := strings.Index(s, "("); open >= 0 {
		// Find the matching close paren (parameter expressions may nest).
		depth, close := 0, -1
		for i := open; i < len(s); i++ {
			switch s[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					close = i
				}
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return &ParseError{Line: line, Msg: "unbalanced parentheses"}
		}
		head = strings.TrimSpace(s[:open])
		params = s[open+1 : close]
		s = head + " " + strings.TrimSpace(s[close+1:])
	}
	fields := strings.SplitN(strings.TrimSpace(s), " ", 2)
	if len(fields) != 2 {
		return &ParseError{Line: line, Msg: fmt.Sprintf("malformed gate application %q", s)}
	}
	name := strings.TrimSpace(fields[0])

	// User-defined gates expand first (definitions may shadow natives).
	if m, isMacro := p.macros[name]; isMacro {
		return p.applyMacro(m, params, fields[1], line)
	}
	// OpenQASM primitives.
	switch name {
	case "U":
		name = "u3"
	case "CX":
		name = "cx"
	}
	k, ok := gate.KindByName(name)
	if !ok || k == gate.Measure || k == gate.Barrier {
		return &ParseError{Line: line, Msg: fmt.Sprintf("unknown gate %q", name)}
	}
	var operands []int
	for _, ref := range strings.Split(fields[1], ",") {
		q, err := p.index(ref, line, p.qregName)
		if err != nil {
			return err
		}
		operands = append(operands, q)
	}
	if k.Arity() != len(operands) {
		return &ParseError{Line: line, Msg: fmt.Sprintf("%s expects %d operands, got %d", name, k.Arity(), len(operands))}
	}
	g := circuit.Gate{Kind: k, Qubits: operands, CBit: -1}
	if k.Parameterized() {
		if params == "" {
			return &ParseError{Line: line, Msg: fmt.Sprintf("%s requires a parameter", name)}
		}
		// Multi-parameter gates (u2, u3) fold parameters by summation; the
		// simulator only needs to know a rotation happened, not the angle.
		total := 0.0
		for _, expr := range strings.Split(params, ",") {
			v, err := evalExpr(expr)
			if err != nil {
				return &ParseError{Line: line, Msg: err.Error()}
			}
			total += v
		}
		g.Param = total
	} else if params != "" {
		return &ParseError{Line: line, Msg: fmt.Sprintf("%s takes no parameters", name)}
	}
	if err := appendChecked(p.c, g); err != nil {
		return &ParseError{Line: line, Msg: err.Error()}
	}
	return nil
}

// applyMacro evaluates the actual parameters, expands the macro body with
// the operands substituted, and feeds the statements back through the
// parser. A depth guard bounds (impossible under define-before-use, but
// cheap) runaway recursion.
func (p *parser) applyMacro(m *macroDef, params, operandStr string, line int) error {
	if p.depth >= 40 {
		return &ParseError{Line: line, Msg: fmt.Sprintf("gate %q expansion too deep", m.name)}
	}
	var vals []float64
	if strings.TrimSpace(params) != "" {
		for _, expr := range strings.Split(params, ",") {
			v, err := evalExpr(expr)
			if err != nil {
				return &ParseError{Line: line, Msg: err.Error()}
			}
			vals = append(vals, v)
		}
	}
	var operands []string
	for _, o := range strings.Split(operandStr, ",") {
		o = strings.TrimSpace(o)
		if o == "" {
			return &ParseError{Line: line, Msg: fmt.Sprintf("empty operand in %q application", m.name)}
		}
		operands = append(operands, o)
	}
	stmts, err := m.expand(vals, operands, line)
	if err != nil {
		return err
	}
	p.depth++
	defer func() { p.depth-- }()
	for _, st := range stmts {
		if err := p.statement(st, line); err != nil {
			return err
		}
	}
	return nil
}

// appendChecked converts circuit.Append's panic on invalid operands into an
// error so the parser reports line numbers instead of crashing.
func appendChecked(c *circuit.Circuit, g circuit.Gate) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	c.Append(g)
	return nil
}

// evalExpr evaluates a parameter expression: numbers, pi, unary minus, and
// left-associative + - * / with standard precedence.
func evalExpr(expr string) (float64, error) {
	toks, err := tokenize(expr)
	if err != nil {
		return 0, err
	}
	e := &exprParser{toks: toks}
	v, err := e.parseSum()
	if err != nil {
		return 0, err
	}
	if e.pos != len(e.toks) {
		return 0, fmt.Errorf("trailing tokens in expression %q", expr)
	}
	return v, nil
}

func tokenize(expr string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(expr) {
		ch := expr[i]
		switch {
		case ch == ' ' || ch == '\t':
			i++
		case strings.ContainsRune("+-*/()", rune(ch)):
			toks = append(toks, string(ch))
			i++
		case ch >= '0' && ch <= '9' || ch == '.':
			j := i
			for j < len(expr) && (expr[j] >= '0' && expr[j] <= '9' || expr[j] == '.' || expr[j] == 'e' ||
				(j > i && (expr[j] == '+' || expr[j] == '-') && expr[j-1] == 'e')) {
				j++
			}
			toks = append(toks, expr[i:j])
			i = j
		case ch >= 'a' && ch <= 'z':
			j := i
			for j < len(expr) && expr[j] >= 'a' && expr[j] <= 'z' {
				j++
			}
			toks = append(toks, expr[i:j])
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q in expression %q", ch, expr)
		}
	}
	return toks, nil
}

type exprParser struct {
	toks []string
	pos  int
}

func (e *exprParser) peek() string {
	if e.pos < len(e.toks) {
		return e.toks[e.pos]
	}
	return ""
}

func (e *exprParser) parseSum() (float64, error) {
	v, err := e.parseProduct()
	if err != nil {
		return 0, err
	}
	for {
		switch e.peek() {
		case "+":
			e.pos++
			r, err := e.parseProduct()
			if err != nil {
				return 0, err
			}
			v += r
		case "-":
			e.pos++
			r, err := e.parseProduct()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseProduct() (float64, error) {
	v, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		switch e.peek() {
		case "*":
			e.pos++
			r, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case "/":
			e.pos++
			r, err := e.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (e *exprParser) parseUnary() (float64, error) {
	if e.peek() == "-" {
		e.pos++
		v, err := e.parseUnary()
		return -v, err
	}
	return e.parseAtom()
}

func (e *exprParser) parseAtom() (float64, error) {
	tok := e.peek()
	switch {
	case tok == "":
		return 0, fmt.Errorf("unexpected end of expression")
	case tok == "(":
		e.pos++
		v, err := e.parseSum()
		if err != nil {
			return 0, err
		}
		if e.peek() != ")" {
			return 0, fmt.Errorf("missing closing parenthesis")
		}
		e.pos++
		return v, nil
	case tok == "pi":
		e.pos++
		return math.Pi, nil
	default:
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return 0, fmt.Errorf("bad token %q in expression", tok)
		}
		e.pos++
		return v, nil
	}
}

// Serialize renders a circuit as OpenQASM 2.0 source.
func Serialize(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	if c.NumCBits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumCBits)
	}
	for _, g := range c.Gates {
		switch {
		case g.Kind == gate.Measure:
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.CBit)
		case g.Kind == gate.Barrier:
			refs := make([]string, len(g.Qubits))
			for i, q := range g.Qubits {
				refs[i] = fmt.Sprintf("q[%d]", q)
			}
			fmt.Fprintf(&b, "barrier %s;\n", strings.Join(refs, ","))
		case g.Kind.Parameterized():
			fmt.Fprintf(&b, "%s(%g) q[%d];\n", g.Kind, g.Param, g.Qubits[0])
		case len(g.Qubits) == 2:
			fmt.Fprintf(&b, "%s q[%d],q[%d];\n", g.Kind, g.Qubits[0], g.Qubits[1])
		default:
			fmt.Fprintf(&b, "%s q[%d];\n", g.Kind, g.Qubits[0])
		}
	}
	return b.String()
}
