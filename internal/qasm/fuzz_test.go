package qasm

import (
	"testing"
)

// FuzzParse drives the QASM parser with arbitrary source. Invariants: no
// panic; on success, a non-nil circuit whose serialization parses again
// (parse/serialize is a fixed point after one round).
//
// Crash-regression seeds live in testdata/fuzz/FuzzParse alongside the
// generated corpus, so past parser crashes stay covered by plain
// `go test` runs forever.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[4];\ncreg c[4];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n",
		"OPENQASM 2.0;\nqreg q[2];\nrz(pi/4) q[1];\nswap q[0],q[1];\n",
		"qreg q[",       // truncated declaration
		"h q[0];",       // gate before any register
		"qreg q[3];\ncx q[0],q[0];", // two-qubit gate on one qubit
		"OPENQASM 2.0;\nqreg q[1];\nrz() q[0];",
		"\x00π->[](;",
		// Symbolic parameters: free symbols, declarations, affine forms,
		// the nonlinear rejection path, and a symbolic macro argument.
		"qreg q[2];\nrz(theta) q[0];\nu3(2*a, b, 0.5) q[1];\n",
		"parameter theta;\nqreg q[1];\nrz(-(theta/2)*3+pi) q[0];\n",
		"parameter a;\nparameter a;\nqreg q[1];\n",
		"qreg q[1];\nrz(a*b) q[0];\n",
		"qreg q[2];\ngate w(t) a { rz(2*t) a; }\nw(phi) q[1];\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// The parametric entry point must never panic either, and any
		// template it accepts must bind to a concrete circuit.
		if pc, perr := ParseParametric(src); perr == nil {
			vals := make([]float64, pc.NumParams())
			for i := range vals {
				vals[i] = 0.5
			}
			if _, berr := pc.BindValues(vals); berr != nil {
				t.Fatalf("accepted template does not bind: %v", berr)
			}
		}
		c, err := Parse(src)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("Parse returned nil circuit without error")
		}
		again, err := Parse(Serialize(c))
		if err != nil {
			t.Fatalf("serialized accepted circuit does not re-parse: %v", err)
		}
		if again.NumQubits != c.NumQubits {
			t.Fatalf("round trip changed qubit count: %d -> %d", c.NumQubits, again.NumQubits)
		}
	})
}
