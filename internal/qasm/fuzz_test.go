package qasm

import (
	"testing"
)

// FuzzParse drives the QASM parser with arbitrary source. Invariants: no
// panic; on success, a non-nil circuit whose serialization parses again
// (parse/serialize is a fixed point after one round).
//
// Crash-regression seeds live in testdata/fuzz/FuzzParse alongside the
// generated corpus, so past parser crashes stay covered by plain
// `go test` runs forever.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[4];\ncreg c[4];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n",
		"OPENQASM 2.0;\nqreg q[2];\nrz(pi/4) q[1];\nswap q[0],q[1];\n",
		"qreg q[",       // truncated declaration
		"h q[0];",       // gate before any register
		"qreg q[3];\ncx q[0],q[0];", // two-qubit gate on one qubit
		"OPENQASM 2.0;\nqreg q[1];\nrz() q[0];",
		"\x00π->[](;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("Parse returned nil circuit without error")
		}
		again, err := Parse(Serialize(c))
		if err != nil {
			t.Fatalf("serialized accepted circuit does not re-parse: %v", err)
		}
		if again.NumQubits != c.NumQubits {
			t.Fatalf("round trip changed qubit count: %d -> %d", c.NumQubits, again.NumQubits)
		}
	})
}
