package qasm

import (
	"math"
	"strings"
	"testing"

	"vaq/internal/gate"
)

func TestGateDefinitionBasic(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[3];
gate bell a,b {
  h a;
  cx a,b;
}
bell q[0],q[1];
bell q[1],q[2];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.OneQubit != 2 || s.TwoQubit != 2 {
		t.Fatalf("stats = %+v, want 2 H + 2 CX", s)
	}
	if c.Gates[0].Kind != gate.H || c.Gates[0].Qubits[0] != 0 {
		t.Fatalf("gate 0 = %v", c.Gates[0])
	}
	if c.Gates[3].Kind != gate.CX || c.Gates[3].Qubits[0] != 1 || c.Gates[3].Qubits[1] != 2 {
		t.Fatalf("gate 3 = %v", c.Gates[3])
	}
}

func TestGateDefinitionWithParams(t *testing.T) {
	// The canonical qelib cu1 definition.
	src := `qreg q[2];
gate cu1(lambda) a,b {
  u1(lambda/2) a;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
  u1(lambda/2) b;
}
cu1(pi/2) q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 5 {
		t.Fatalf("expanded gates = %d, want 5", len(c.Gates))
	}
	if got := c.Gates[0].Param; math.Abs(got-math.Pi/4) > 1e-12 {
		t.Fatalf("first u1 param = %v, want pi/4", got)
	}
	if got := c.Gates[2].Param; math.Abs(got+math.Pi/4) > 1e-12 {
		t.Fatalf("middle u1 param = %v, want -pi/4", got)
	}
}

func TestGateDefinitionUsingEarlierDefinition(t *testing.T) {
	src := `qreg q[2];
gate mybell a,b { h a; cx a,b; }
gate doublebell a,b { mybell a,b; mybell a,b; }
doublebell q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 4 {
		t.Fatalf("nested expansion gates = %d, want 4", len(c.Gates))
	}
}

func TestGateDefinitionSingleLine(t *testing.T) {
	src := "qreg q[1];\ngate flip a { x a; }\nflip q[0];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Kind != gate.X {
		t.Fatalf("gates = %v", c.Gates)
	}
}

func TestPrimitiveUAndCX(t *testing.T) {
	src := "qreg q[2];\nU(pi/2,0,pi) q[0];\nCX q[0],q[1];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Kind != gate.U3 {
		t.Fatalf("U mapped to %v, want u3", c.Gates[0].Kind)
	}
	if c.Gates[1].Kind != gate.CX {
		t.Fatalf("CX mapped to %v", c.Gates[1].Kind)
	}
}

func TestGateDefinitionErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unterminated", "qreg q[1];\ngate g a { x a;\n", "unterminated"},
		{"no name", "qreg q[1];\ngate { x a; }\n", "name"},
		{"no qubits", "qreg q[1];\ngate g { }\n", "qubit arguments"},
		{"dup args", "qreg q[1];\ngate g a,a { x a; }\n", "duplicate"},
		{"bad param", "qreg q[1];\ngate g(2x) a { x a; }\n", "parameter"},
		{"redefined", "qreg q[1];\ngate g a { x a; }\ngate g a { x a; }\ng q[0];", "twice"},
		{"wrong operand count", "qreg q[2];\ngate g a,b { cx a,b; }\ng q[0];", "expects 2 qubit operands"},
		{"wrong param count", "qreg q[1];\ngate g(t) a { rz(t) a; }\ng q[0];", "expects 1 parameters"},
		{"bad body", "qreg q[1];\ngate g a { zap a; }\ng q[0];", "unknown gate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err.Error(), tc.wantSub)
			}
		})
	}
}

func TestMacroShadowsNative(t *testing.T) {
	// Redefining h is allowed; the macro wins at application sites.
	src := "qreg q[1];\ngate h a { x a; }\nh q[0];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Kind != gate.X {
		t.Fatalf("macro did not shadow native: %v", c.Gates)
	}
}

func TestSubstituteIdentsWordBoundaries(t *testing.T) {
	got := substituteIdents("cx aa,a; rz(alpha) a", map[string]string{"a": "q[7]", "alpha": "(1.5)"})
	want := "cx aa,q[7]; rz((1.5)) q[7]"
	if got != want {
		t.Fatalf("substitute = %q, want %q", got, want)
	}
}

func TestMacroParamExpressionAtCallSite(t *testing.T) {
	src := "qreg q[1];\ngate rot(t) a { rz(t*2) a; }\nrot(0.25+0.25) q[0];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Gates[0].Param; math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("param = %v, want 1.0", got)
	}
}
