package qasm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"vaq/internal/gate"
	"vaq/internal/param"
)

const vqaSrc = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
rz(theta) q[0];
u3(2*a, b, 0.5) q[1];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

func TestParseParametric(t *testing.T) {
	pc, err := ParseParametric(vqaSrc)
	if err != nil {
		t.Fatal(err)
	}
	free := pc.FreeSymbols()
	want := []param.Symbol{"theta", "a", "b"}
	if len(free) != len(want) {
		t.Fatalf("FreeSymbols = %v, want %v", free, want)
	}
	for i := range want {
		if free[i] != want[i] {
			t.Fatalf("FreeSymbols = %v, want %v", free, want)
		}
	}
	// rz(theta) is slot 0; the folded u3 sums to 2a + b + 0.5.
	if got := pc.Exprs[0].String(); got != "theta" {
		t.Fatalf("slot 0 expr = %q", got)
	}
	if got := pc.Exprs[1].String(); got != "2*a+b+0.5" {
		t.Fatalf("slot 1 expr = %q", got)
	}

	bound, err := pc.Bind(map[param.Symbol]float64{"theta": math.Pi, "a": 0.25, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Gates[0].Param != math.Pi {
		t.Fatalf("rz param = %v", bound.Gates[0].Param)
	}
	if got := bound.Gates[1].Param; got != 2 {
		t.Fatalf("u3 folded param = %v, want 2", got)
	}
}

func TestParseParametricNumericProgram(t *testing.T) {
	pc, err := ParseParametric("qreg q[1];\nrz(pi/2) q[0];\n")
	if err != nil {
		t.Fatal(err)
	}
	if n := pc.NumParams(); n != 0 {
		t.Fatalf("numeric program has %d free params", n)
	}
	if pc.Circ.Gates[0].Param != math.Pi/2 {
		t.Fatalf("constant angle lost: %v", pc.Circ.Gates[0].Param)
	}
}

func TestParseUnboundSymbolTyped(t *testing.T) {
	_, err := Parse(vqaSrc)
	var ub *UnboundSymbolError
	if !errors.As(err, &ub) {
		t.Fatalf("want *UnboundSymbolError, got %T: %v", err, err)
	}
	if len(ub.Symbols) != 3 {
		t.Fatalf("Symbols = %v", ub.Symbols)
	}
}

func TestParameterDeclarations(t *testing.T) {
	// Declared symbols work; undeclared ones become errors once any
	// declaration appears.
	src := "parameter theta;\nqreg q[1];\nrz(theta) q[0];\n"
	pc, err := ParseParametric(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.FreeSymbols(); len(got) != 1 || got[0] != "theta" {
		t.Fatalf("FreeSymbols = %v", got)
	}

	_, err = ParseParametric("parameter theta;\nqreg q[1];\nrz(phi) q[0];\n")
	if err == nil || !strings.Contains(err.Error(), "undeclared parameter") {
		t.Fatalf("undeclared use: %v", err)
	}

	_, err = ParseParametric("parameter theta;\nparameter theta;\nqreg q[1];\n")
	if err == nil || !strings.Contains(err.Error(), "declared twice") {
		t.Fatalf("duplicate declaration: %v", err)
	}

	_, err = ParseParametric("parameter Theta9!;\nqreg q[1];\n")
	if err == nil || !strings.Contains(err.Error(), "bad parameter name") {
		t.Fatalf("bad name: %v", err)
	}
}

func TestSymbolicExpressionLimits(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"qreg q[1]; rz(a*b) q[0];", "nonlinear"},
		{"qreg q[1]; rz(1/a) q[0];", "division by a symbolic"},
		{"qreg q[1]; rz(a/0) q[0];", "division by zero"},
	}
	for _, tc := range cases {
		if _, err := ParseParametric(tc.src); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseParametric(%q) err = %v, want %q", tc.src, err, tc.wantSub)
		}
	}
	// Affine arithmetic stays legal: -(theta/2)*3 + pi - theta.
	pc, err := ParseParametric("qreg q[1]; rz(-(theta/2)*3 + pi - theta) q[0];")
	if err != nil {
		t.Fatal(err)
	}
	v, err := pc.Exprs[0].Eval(map[param.Symbol]float64{"theta": 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := -2.5*2 + math.Pi; math.Abs(v-want) > 1e-12 {
		t.Fatalf("affine eval = %v, want %v", v, want)
	}
}

func TestMacroWithSymbolicArgument(t *testing.T) {
	src := `qreg q[2];
gate wiggle(t) a, b { rz(2*t) a; rx(t) b; cx a,b; }
wiggle(theta) q[0], q[1];
wiggle(pi) q[1], q[0];
`
	pc, err := ParseParametric(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := pc.FreeSymbols(); len(got) != 1 || got[0] != "theta" {
		t.Fatalf("FreeSymbols = %v", got)
	}
	if got := pc.Exprs[0].String(); got != "2*theta" {
		t.Fatalf("expanded slot 0 = %q", got)
	}
	if got := pc.Exprs[1].String(); got != "theta" {
		t.Fatalf("expanded slot 1 = %q", got)
	}
	// The numeric application stays fully bound.
	if len(pc.Exprs) != 2 {
		t.Fatalf("%d symbolic slots, want 2 (numeric macro application leaked)", len(pc.Exprs))
	}
	if g := pc.Circ.Gates[3]; g.Kind != gate.RZ || math.Abs(g.Param-2*math.Pi) > 1e-12 {
		t.Fatalf("numeric expansion gate = %+v", g)
	}
}

func TestParametricBindRoundTripsThroughSerialize(t *testing.T) {
	pc, err := ParseParametric(vqaSrc)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := pc.BindValues([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(Serialize(bound))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Gates) != len(bound.Gates) {
		t.Fatalf("round trip changed gate count %d -> %d", len(bound.Gates), len(again.Gates))
	}
	for i := range bound.Gates {
		if again.Gates[i].Param != bound.Gates[i].Param {
			t.Fatalf("gate %d param %v -> %v", i, bound.Gates[i].Param, again.Gates[i].Param)
		}
	}
}
