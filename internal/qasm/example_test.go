package qasm_test

import (
	"fmt"

	"vaq/internal/qasm"
)

// Example parses an OpenQASM 2.0 program with a user gate definition.
func Example() {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
gate majority a,b,c {
  cx c,b;
  cx c,a;
  h c; cx b,c; tdg c; cx a,c; t c; cx b,c; tdg c; cx a,c; t b; t c; h c;
  cx a,b; t a; tdg b; cx a,b;
}
majority q[0],q[1],q[2];
measure q[0] -> c[0];
`
	c, err := qasm.Parse(src)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	s := c.Stats()
	fmt.Printf("qubits=%d gates=%d cnots=%d\n", c.NumQubits, s.Total, s.CNOTs)
	// Output: qubits=3 gates=18 cnots=8
}
