package experiments

import (
	"testing"

	"vaq/internal/calib"
)

// TestScaleSweep runs the sweep on a trimmed size list (the full grid
// is exercised by `repro -experiment scale`) and checks shape, bounds
// and determinism across worker counts.
func TestScaleSweep(t *testing.T) {
	defer func(orig []int) { scaleSizes = orig }(scaleSizes)
	scaleSizes = []int{20, 100}

	cfg := Config{Seed: 2019, Trials: 100}
	rows, err := ScaleSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(scaleSizes) * len(calib.Tiers()); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.BaselinePST <= 0 || r.BaselinePST > 1 || r.AwarePST <= 0 || r.AwarePST > 1 {
			t.Errorf("hh%d-%s: PSTs out of range: %+v", r.Qubits, r.Tier, r)
		}
		if r.BaselineSwaps <= 0 || r.AwareSwaps <= 0 {
			t.Errorf("hh%d-%s: expected swaps on a scattered BV-16: %+v", r.Qubits, r.Tier, r)
		}
	}

	serial, err := ScaleSweep(Config{Seed: 2019, Trials: 100, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != serial[i] {
			t.Fatalf("row %d differs across worker counts:\nparallel %+v\nserial   %+v", i, rows[i], serial[i])
		}
	}
}
