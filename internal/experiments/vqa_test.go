package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestVQASweep checks the compile-once invariants, the headline
// comparison (the variation-aware mapping keeps more PST and descends
// at least as deep), and determinism across worker counts.
func TestVQASweep(t *testing.T) {
	cfg := Config{Seed: 2019, Trials: 100}
	res, err := VQASweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := vqaIters + 1; len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	if want := 3*vqaIters + 1; res.Evals != want {
		t.Fatalf("evals %d, want %d", res.Evals, want)
	}
	if res.AwarePST <= 0 || res.AwarePST > 1 || res.NaivePST <= 0 || res.NaivePST > 1 {
		t.Fatalf("PSTs out of range: aware %v naive %v", res.AwarePST, res.NaivePST)
	}

	// Acceptance: the aware mapping's sweep-constant PST dominates the
	// naive one, and its optimizer reaches at least as low an energy.
	if res.AwarePST < res.NaivePST {
		t.Errorf("aware PST %.4f < naive PST %.4f", res.AwarePST, res.NaivePST)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.AwareIdeal != first.NaiveIdeal {
		t.Errorf("tracks must share the starting point: aware %v naive %v", first.AwareIdeal, first.NaiveIdeal)
	}
	if last.AwareIdeal >= first.AwareIdeal {
		t.Errorf("aware track never descended: start %v end %v", first.AwareIdeal, last.AwareIdeal)
	}
	if last.AwareIdeal > last.NaiveIdeal {
		t.Errorf("aware track ended above naive: aware %v naive %v", last.AwareIdeal, last.NaiveIdeal)
	}
	for _, r := range res.Rows {
		// Noisy = pst·ideal, with the per-track PST constant everywhere.
		if got := res.AwarePST * r.AwareIdeal; !close3(got, r.AwareNoisy) {
			t.Errorf("iter %d: aware noisy %v != pst*ideal %v", r.Iter, r.AwareNoisy, got)
		}
		if got := res.NaivePST * r.NaiveIdeal; !close3(got, r.NaiveNoisy) {
			t.Errorf("iter %d: naive noisy %v != pst*ideal %v", r.Iter, r.NaiveNoisy, got)
		}
	}

	for _, workers := range []int{-1, 1, 2} {
		wcfg := cfg
		wcfg.Workers = workers
		again, err := VQASweep(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if again.AwarePST != res.AwarePST || again.NaivePST != res.NaivePST {
			t.Fatalf("PSTs differ at workers=%d", workers)
		}
		for i := range res.Rows {
			if res.Rows[i] != again.Rows[i] {
				t.Fatalf("row %d differs at workers=%d:\nbase %+v\ngot  %+v", i, workers, res.Rows[i], again.Rows[i])
			}
		}
	}
}

func close3(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// TestVQAGolden pins the rendered table byte-for-byte; refresh with
// `go test ./internal/experiments -run VQAGolden -update`.
func TestVQAGolden(t *testing.T) {
	res, err := VQASweep(Config{Seed: 2019, Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(VQATable(res).String())
	path := filepath.Join("testdata", "golden", "vqa.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (rerun with -update): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("vqa table drifted from golden %s (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
