package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"

	"vaq/internal/checkpoint"
	"vaq/internal/parallel"
)

// The unit layer decomposes each experiment into independently failing,
// independently checkpointable pieces of work. A unit is the smallest
// result the harness persists and quarantines: one workload row, one
// day's recompilation, one scaling configuration. When a unit fails —
// returns an error or panics — its siblings keep running, the failure
// is recorded in the run's FailureReport, and the experiment still
// renders every surviving row. When a checkpoint store is attached,
// completed units are persisted and a resumed run serves them back
// without recomputation, bit-identically.

// UnitKey identifies one unit of experiment work. Fields that do not
// apply are left zero (Day uses -1 for "not applicable" so day 0 stays
// meaningful).
type UnitKey struct {
	Experiment string // e.g. "fig13"
	Workload   string // e.g. "bv-16"; empty when n/a
	Day        int    // characterization day; -1 when n/a
	Policy     string // policy or configuration label; empty when n/a
}

func (k UnitKey) String() string {
	parts := []string{k.Experiment}
	if k.Workload != "" {
		parts = append(parts, k.Workload)
	}
	if k.Day >= 0 {
		parts = append(parts, fmt.Sprintf("day%d", k.Day))
	}
	if k.Policy != "" {
		parts = append(parts, k.Policy)
	}
	return strings.Join(parts, "/")
}

// UnitFailure is one quarantined unit: the unit that failed, why, and —
// when the failure was a panic — the captured goroutine stack.
type UnitFailure struct {
	Key   UnitKey
	Err   error
	Stack []byte // non-nil only for panics
}

// FailureReport collects every quarantined unit of a run, in the order
// the failures were observed.
type FailureReport struct {
	Failures []UnitFailure
}

// Empty reports whether every unit succeeded.
func (r *FailureReport) Empty() bool { return r == nil || len(r.Failures) == 0 }

// Err joins the failures into one error (nil when the report is empty),
// preserving errors.Is/As access to each underlying cause.
func (r *FailureReport) Err() error {
	if r.Empty() {
		return nil
	}
	errs := make([]error, len(r.Failures))
	for i, f := range r.Failures {
		errs[i] = fmt.Errorf("%s: %w", f.Key, f.Err)
	}
	return errors.Join(errs...)
}

// String renders the report as a block suitable for printing after the
// result tables: one line per failure, with panic stacks indented below
// the unit they belong to.
func (r *FailureReport) String() string {
	if r.Empty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== FAILURE REPORT: %d unit(s) quarantined ==\n", len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  %-30s %v\n", f.Key, f.Err)
		if len(f.Stack) > 0 {
			for _, line := range strings.Split(strings.TrimRight(string(f.Stack), "\n"), "\n") {
				fmt.Fprintf(&b, "    | %s\n", line)
			}
		}
	}
	return b.String()
}

// Runner carries the cross-cutting run state through an experiment:
// cancellation context, configuration, the optional checkpoint store,
// and the failure report that quarantined units accumulate into. One
// Runner spans one harness invocation (possibly many experiments); it
// is safe for concurrent use by the experiment fan-outs.
type Runner struct {
	ctx   context.Context
	cfg   Config
	store *checkpoint.Store

	// OnUnitDone, when set, is called after a unit is computed (not when
	// it is served from the checkpoint). The harness tests use it to
	// cancel a run after a known number of completed units.
	OnUnitDone func(UnitKey)

	scopeOnce sync.Once
	scope     string

	mu       sync.Mutex
	failures []UnitFailure
}

// NewRunner builds a Runner. ctx may be nil (treated as background);
// store may be nil (checkpointing disabled).
func NewRunner(ctx context.Context, cfg Config, store *checkpoint.Store) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Runner{ctx: ctx, cfg: cfg, store: store}
}

// Context returns the run's cancellation context.
func (r *Runner) Context() context.Context { return r.ctx }

// Config returns the run's experiment configuration.
func (r *Runner) Config() Config { return r.cfg }

// Report returns the failures quarantined so far.
func (r *Runner) Report() *FailureReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &FailureReport{Failures: append([]UnitFailure(nil), r.failures...)}
}

// Quarantine records a failed unit. Panic captures (wrapped
// *parallel.PanicError values) carry their stack into the report.
func (r *Runner) Quarantine(key UnitKey, err error) {
	f := UnitFailure{Key: key, Err: err}
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		f.Stack = pe.Stack
	}
	r.mu.Lock()
	r.failures = append(r.failures, f)
	r.mu.Unlock()
}

// scopeString pins a checkpoint entry to everything a unit result
// depends on besides its key: the seed, every trial budget, and the
// fingerprint of the device model the archive produces. A resumed run
// with any of these changed misses cleanly instead of serving stale
// rows. Computed lazily — it builds the archive — and only consulted
// when a store is attached.
func (r *Runner) scopeString() string {
	r.scopeOnce.Do(func() {
		cfg := r.cfg.withDefaults()
		r.scope = fmt.Sprintf("seed=%d,trials=%d,native=%dx%d,q5=%d,dev=%016x",
			cfg.Seed, cfg.Trials, cfg.NativeConfigs, cfg.NativeTrials, cfg.Q5Trials,
			cfg.meanQ20().Fingerprint())
	})
	return r.scope
}

// RunUnit executes one unit of work under the run's fault-isolation
// discipline and returns (result, true) on success. It returns
// (zero, false) without quarantining when the run is cancelled before
// or during the unit, and (zero, false) with the failure quarantined
// when fn errors or panics. With a checkpoint store attached, completed
// results are persisted and resume-mode runs serve matching entries
// back without recomputing.
func RunUnit[T any](r *Runner, key UnitKey, fn func() (T, error)) (T, bool) {
	var zero T
	if r.ctx.Err() != nil {
		return zero, false
	}
	ckKey := ""
	if r.store != nil {
		ckKey = key.String() + "@" + r.scopeString()
		var v T
		if hit, err := r.store.Get(ckKey, &v); err == nil && hit {
			return v, true
		}
	}
	v, err := runShielded(fn)
	if err != nil {
		// A unit cut short by cancellation is unfinished work, not a
		// fault; it must not pollute the quarantine report.
		if r.ctx.Err() != nil && !isPanic(err) {
			return zero, false
		}
		r.Quarantine(key, err)
		return zero, false
	}
	if r.store != nil {
		if perr := r.store.Put(ckKey, v); perr != nil {
			// The result is still good; record that it could not be
			// persisted so a later resume knows why it recomputes.
			r.Quarantine(key, perr)
		}
	}
	if r.OnUnitDone != nil {
		r.OnUnitDone(key)
	}
	return v, true
}

// runShielded invokes fn, converting a panic into a *parallel.PanicError
// carrying the recovered value and stack.
func runShielded[T any](fn func() (T, error)) (v T, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &parallel.PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return fn()
}

func isPanic(err error) bool {
	var pe *parallel.PanicError
	return errors.As(err, &pe)
}

// collectUnits fans n units out over the run's worker budget, letting
// every unit run to completion regardless of sibling failures (the
// failures land in the Runner's report, not here), and stopping only
// when the run is cancelled. It returns ctx.Err() so callers surface
// truncation.
func (r *Runner) collectUnits(n int, unit func(i int)) error {
	_ = parallel.Collect(r.ctx, r.cfg.withDefaults().Workers, n, func(i int) error {
		unit(i)
		return nil
	})
	return r.ctx.Err()
}
