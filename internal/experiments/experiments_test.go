package experiments

import (
	"strings"
	"testing"
)

// fastCfg keeps experiment tests quick while exercising the full paths.
func fastCfg() Config {
	return Config{
		Seed:          2019,
		Trials:        30000,
		NativeConfigs: 6,
		NativeTrials:  4000,
		Q5Trials:      4096,
	}
}

func TestFig5(t *testing.T) {
	r := Fig5CoherenceDistributions(fastCfg())
	if r.T1Summary.Mean < 60 || r.T1Summary.Mean > 105 {
		t.Errorf("T1 mean = %v, want ≈80.32", r.T1Summary.Mean)
	}
	if r.T2Summary.Mean < 30 || r.T2Summary.Mean > 55 {
		t.Errorf("T2 mean = %v, want ≈42.13", r.T2Summary.Mean)
	}
	if r.T1Summary.N != 20*104 {
		t.Errorf("T1 samples = %d, want 2080", r.T1Summary.N)
	}
	if len(r.T1Hist) != 20 || len(r.T2Hist) != 20 {
		t.Error("histograms missing")
	}
	if s := r.Table().String(); !strings.Contains(s, "Figure 5") {
		t.Error("table rendering broken")
	}
}

func TestFig6(t *testing.T) {
	r := Fig6SingleQubitErrors(fastCfg())
	if r.FractionBelow1Pct < 0.8 {
		t.Errorf("below-1%% fraction = %v, want most", r.FractionBelow1Pct)
	}
	if r.Summary.Max > 0.06 {
		t.Errorf("1Q max = %v, implausibly high", r.Summary.Max)
	}
}

func TestFig7(t *testing.T) {
	r := Fig7TwoQubitErrors(fastCfg())
	if r.Links != 76 {
		t.Errorf("links = %d, want 76", r.Links)
	}
	if r.Summary.Mean < 0.03 || r.Summary.Mean > 0.056 {
		t.Errorf("2Q mean = %v, want ≈0.043", r.Summary.Mean)
	}
	if r.Summary.Std < 0.015 || r.Summary.Std > 0.045 {
		t.Errorf("2Q std = %v, want ≈0.0302", r.Summary.Std)
	}
}

func TestFig8(t *testing.T) {
	r := Fig8TemporalVariation(fastCfg())
	if len(r.Links) != 3 {
		t.Fatalf("tracked links = %d, want 3", len(r.Links))
	}
	for _, l := range r.Links {
		if len(l.Series) != 104 {
			t.Fatalf("%s series length = %d, want 104", l.Name, len(l.Series))
		}
	}
	if r.StrongStaysStrongFraction < 0.6 {
		t.Errorf("strong-stays-strong = %v, want clear persistence", r.StrongStaysStrongFraction)
	}
}

func TestFig9(t *testing.T) {
	r := Fig9SpatialVariation(fastCfg())
	if len(r.MeanRates) != 38 {
		t.Fatalf("mean rates for %d couplings, want 38", len(r.MeanRates))
	}
	if r.Spread < 3 {
		t.Errorf("spatial spread = %vx, want several x (paper 7.5x)", r.Spread)
	}
	// The paper's weakest link is Q14-Q18 (pinned by the generator).
	if !(r.Weakest.A == 14 && r.Weakest.B == 18) {
		t.Errorf("weakest link = Q%d-Q%d, want Q14-Q18", r.Weakest.A, r.Weakest.B)
	}
	if r.MaxRate < 0.10 {
		t.Errorf("worst rate = %v, want ≈0.15", r.MaxRate)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1Benchmarks(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.SwapInst < 0 {
			t.Errorf("%s negative swaps", r.Name)
		}
	}
	// Communication structure must show through the SWAP counts: bv-16's
	// star pattern needs fewer SWAPs than qft-12's all-to-all.
	if byName["bv-16"].SwapInst >= byName["qft-12"].SwapInst {
		t.Errorf("bv-16 swaps (%d) should be below qft-12 swaps (%d)",
			byName["bv-16"].SwapInst, byName["qft-12"].SwapInst)
	}
	// rnd-LD needs more movement than rnd-SD (long vs short distances).
	if byName["rnd-LD"].SwapInst <= byName["rnd-SD"].SwapInst {
		t.Errorf("rnd-LD swaps (%d) should exceed rnd-SD swaps (%d)",
			byName["rnd-LD"].SwapInst, byName["rnd-SD"].SwapInst)
	}
	if s := Table1Table(rows).String(); !strings.Contains(s, "bv-20") {
		t.Error("table rendering broken")
	}
}

func TestFig12Shape(t *testing.T) {
	cfg := fastCfg()
	rows, err := Fig12VQM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	improved := 0
	for _, r := range rows {
		if r.BaselinePST <= 0 || r.BaselinePST >= 1 {
			t.Errorf("%s baseline PST = %v", r.Name, r.BaselinePST)
		}
		if r.RelVQM > 1.02 {
			improved++
		}
		// Hop-limited should be in the same ballpark as unlimited.
		if r.RelVQMHop < 0.75*r.RelVQM {
			t.Errorf("%s: hop-limited %v far below unlimited %v", r.Name, r.RelVQMHop, r.RelVQM)
		}
	}
	if improved < 4 {
		t.Errorf("only %d/7 workloads improved under VQM, want most", improved)
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13Policies(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	fullBeatsNative := 0
	for _, r := range rows {
		if r.NativeMin > r.NativeAvg || r.NativeAvg > r.NativeMax {
			t.Errorf("%s: native stats disordered: %v %v %v", r.Name, r.NativeMin, r.NativeAvg, r.NativeMax)
		}
		// Baseline should dominate the randomized native compiler.
		if r.NativeAvg > 1.0 {
			t.Errorf("%s: native average %v above baseline", r.Name, r.NativeAvg)
		}
		if r.RelVQAVQM > r.NativeAvg {
			fullBeatsNative++
		}
	}
	if fullBeatsNative != 7 {
		t.Errorf("VQA+VQM beat native on %d/7 workloads, want all", fullBeatsNative)
	}
	if s := Fig13Table(rows).String(); !strings.Contains(s, "VQA+VQM") {
		t.Error("table rendering broken")
	}
}

func TestFig14Shape(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 40000 // per-day trials = /4
	r, err := Fig14PerDay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 52 {
		t.Fatalf("points = %d, want 52 days", len(r.Points))
	}
	if r.Average < 1.0 {
		t.Errorf("average per-day benefit = %v, want ≥ 1", r.Average)
	}
	for _, p := range r.Points {
		if p.BaselinePST <= 0 {
			t.Fatalf("day %d: zero baseline PST", p.Day)
		}
		if p.LinkErrorCoV <= 0 {
			t.Fatalf("day %d: zero CoV", p.Day)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2ErrorScaling(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// The paper's trend: doubling the relative variation at 10x-lower
	// errors increases the benefit versus same-CoV scaling.
	if rows[2].Relative < rows[1].Relative {
		t.Errorf("2*CoV benefit %v below Cov-Base benefit %v, want ≥ (paper: 2.59x vs 2.02x)",
			rows[2].Relative, rows[1].Relative)
	}
	for _, r := range rows {
		if r.Relative < 0.95 {
			t.Errorf("%s: benefit %v, want ≥ ~1", r.Label, r.Relative)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3IBMQ5(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	if r.GeoMean < 1.0 {
		t.Errorf("geomean = %v, want ≥ 1 (paper: 1.36x)", r.GeoMean)
	}
	var triswap, ghz Table3Row
	for _, row := range r.Rows {
		if row.BaselinePST <= 0 || row.BaselinePST > 1 {
			t.Errorf("%s baseline PST = %v", row.Name, row.BaselinePST)
		}
		switch row.Name {
		case "TriSwap":
			triswap = row
		case "GHZ-3":
			ghz = row
		}
	}
	// The SWAP-heavy kernel should gain at least as much as the short GHZ
	// chain (the paper's 1.90x vs 1.35x ordering).
	if triswap.Relative < ghz.Relative*0.9 {
		t.Errorf("TriSwap benefit %v well below GHZ-3 %v; expected SWAP-heavy kernel to gain most",
			triswap.Relative, ghz.Relative)
	}
}

func TestFig16Shape(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 40000
	rows, err := Fig16Partitioning(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.TwoCopiesNorm != 1 {
			t.Errorf("%s: two-copy normalization %v, want 1", r.Name, r.TwoCopiesNorm)
		}
		if r.OneStrongNorm <= 0 {
			t.Errorf("%s: one-strong normalized STPT %v", r.Name, r.OneStrongNorm)
		}
		if (r.Winner == 0) != (r.OneStrongNorm >= 1) && (r.Winner == 1) != (r.OneStrongNorm < 1) {
			t.Errorf("%s: winner %v inconsistent with norm %v", r.Name, r.Winner, r.OneStrongNorm)
		}
	}
	if s := Fig16Table(rows).String(); !strings.Contains(s, "one strong copy") {
		t.Error("table rendering broken")
	}
}

// TestFanOutWorkerCountInvariance pins the concurrency contract at the
// experiment level: the whole fan-out (per-workload Map, per-config
// native sweep, block-sharded Monte Carlo) must produce identical rows at
// any worker count. Runs in short mode so scripts/check.sh exercises the
// concurrent path under the race detector.
func TestFanOutWorkerCountInvariance(t *testing.T) {
	cfg := fastCfg()
	cfg.Trials = 10000
	cfg.NativeConfigs = 3
	cfg.NativeTrials = 2000

	serial := cfg
	serial.Workers = -1
	fanned := cfg
	fanned.Workers = 4

	a, err := Fig12VQM(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig12VQM(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: serial %+v, workers=4 %+v", i, a[i], b[i])
		}
	}

	t3a, err := Table3IBMQ5(serial)
	if err != nil {
		t.Fatal(err)
	}
	t3b, err := Table3IBMQ5(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if t3a.GeoMean != t3b.GeoMean {
		t.Fatalf("Table 3 geomean differs: %v vs %v", t3a.GeoMean, t3b.GeoMean)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c != d {
		t.Fatalf("withDefaults = %+v, want %+v", c, d)
	}
	c2 := Config{Trials: 5}.withDefaults()
	if c2.Trials != 5 || c2.Seed != d.Seed {
		t.Fatal("partial override broken")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:   "T",
		Header:  []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxx", "1"}},
		Caption: "cap",
	}
	s := tbl.String()
	for _, want := range []string{"== T ==", "long-header", "xxxxx", "cap", "-----"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig9Layout(t *testing.T) {
	r := Fig9SpatialVariation(fastCfg())
	layout := r.Layout()
	for _, want := range []string{"Q0 ", "Q19", "diagonals:", "--"} {
		if !strings.Contains(layout, want) {
			t.Fatalf("layout missing %q:\n%s", want, layout)
		}
	}
	// Every coupling's rate appears somewhere (grid or diagonal list).
	if strings.Count(layout, ".") < 38 {
		t.Fatalf("layout seems to be missing link rates:\n%s", layout)
	}
}
