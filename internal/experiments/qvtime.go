package experiments

import (
	"fmt"

	"vaq/internal/caldrift"
	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/parallel"
	"vaq/internal/qvolume"
	"vaq/internal/sim"
)

// The qvtime experiment asks what calibration drift costs a mapping
// that is never refreshed, and how much of that cost a drift-triggered
// recompile claws back. For each variance tier of a heavy-hex-20 fleet
// it generates a multi-cycle archive and walks the cycles with two
// tracks sharing one set of QV model circuits:
//
//   - stale: compile once on cycle 0, score that fixed physical circuit
//     on every later cycle's calibration;
//   - aware: run the caldrift detector over the window since the last
//     recompile and, when the drift score crosses the threshold, run a
//     canary recompile on the current snapshot, adopting the new
//     mapping only when it predicts an improvement (the same accept
//     gate the serve drift plane reports), then re-baseline.
//
// Both tracks are scored with the closed-form analytic PST, and the
// heavy-output probability uses the same mixture model as package
// qvolume (pst·idealHOP + (1−pst)/2), so every cell is exactly
// reproducible at any -workers setting. Recovered = aware − stale PST
// is the payoff of recompiling; it is zero until the first trigger.

// QVTimeRow is one (variance tier, calibration cycle) cell.
type QVTimeRow struct {
	Tier       calib.VarianceTier
	Cycle      int
	Score      float64 // drift score over the window since the last recompile
	Recompiled bool    // the aware track recompiled on this cycle
	StalePST   float64
	AwarePST   float64
	StaleHOP   float64
	AwareHOP   float64
	Recovered  float64 // AwarePST - StalePST
}

// qvtime sweep shape: a 16-cycle archive keeps the temporal AR(1) model
// in play long past the zoo default, and four width-4 model circuits
// keep PSTs in a readable range (width 6 already drives PST below 2%
// at the fleet's 4.3% mean CX error). The detection threshold is below
// the serve default because the score is a mean over every tracked
// series and a 20-qubit fleet dilutes localized drift.
var (
	qvtimeDays     = 8 // × ZooCyclesPerDay = 16 cycles
	qvtimeWidth    = 4
	qvtimeCircuits = 4
	qvtimeDetect   = caldrift.DetectConfig{Threshold: 0.10}
)

// QVTimeSweep runs the QV-over-time comparison on every variance tier.
// Tiers are the parallel axis; the cycle walk inside a tier is
// inherently sequential (the aware track's state depends on the past).
func QVTimeSweep(cfg Config) ([]QVTimeRow, error) {
	cfg = cfg.withDefaults()
	tiers := calib.Tiers()
	perTier, err := parallel.Map(cfg.Workers, len(tiers), func(i int) ([]QVTimeRow, error) {
		return qvtimeTier(cfg, tiers[i])
	})
	if err != nil {
		return nil, err
	}
	var rows []QVTimeRow
	for _, tr := range perTier {
		rows = append(rows, tr...)
	}
	return rows, nil
}

func qvtimeTier(cfg Config, tier calib.VarianceTier) ([]QVTimeRow, error) {
	name := "heavy-hex-20-" + string(tier)
	gcfg, err := calib.ZooGenConfig(name, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gcfg.Days = qvtimeDays
	arch := calib.Generate(gcfg)
	snaps := arch.Snapshots

	// One fixed set of model circuits with their ideal heavy-output
	// probabilities; both tracks compile exactly these programs.
	type model struct {
		prog  *circuit.Circuit
		ideal float64
	}
	models := make([]model, qvtimeCircuits)
	for i := range models {
		mc := qvolume.ModelCircuit(qvtimeWidth, cfg.Seed+int64(i)*101)
		_, ideal, err := qvolume.HeavyOutputs(mc)
		if err != nil {
			return nil, fmt.Errorf("qvtime %s: %w", name, err)
		}
		models[i] = model{prog: mc, ideal: ideal}
	}
	compile := func(d *device.Device) ([]*circuit.Circuit, error) {
		phys := make([]*circuit.Circuit, len(models))
		for i, m := range models {
			comp, err := core.Compile(d, m.prog, core.Options{Policy: core.VQAVQM, Seed: cfg.Seed + int64(i)})
			if err != nil {
				return nil, fmt.Errorf("qvtime %s: %w", name, err)
			}
			phys[i] = comp.Routed.Physical
		}
		return phys, nil
	}
	score := func(d *device.Device, phys []*circuit.Circuit) (pst, hop float64) {
		n := float64(len(phys))
		for i, p := range phys {
			x := sim.AnalyticPST(d, p, sim.Config{})
			pst += x / n
			hop += (x*models[i].ideal + (1-x)*0.5) / n
		}
		return pst, hop
	}

	d0, err := device.New(arch.Topo, snaps[0])
	if err != nil {
		return nil, err
	}
	stale, err := compile(d0)
	if err != nil {
		return nil, err
	}
	aware, base := stale, 0

	rows := make([]QVTimeRow, 0, len(snaps))
	for c, snap := range snaps {
		d, err := device.New(arch.Topo, snap)
		if err != nil {
			return nil, err
		}
		var driftScore float64
		recompiled := false
		if c > base {
			rep, err := caldrift.Detect(name, snaps[base:c+1], qvtimeDetect)
			if err != nil {
				return nil, fmt.Errorf("qvtime %s cycle %d: %w", name, c, err)
			}
			driftScore = rep.Score
			if rep.Triggered {
				fresh, err := compile(d)
				if err != nil {
					return nil, err
				}
				// Canary accept gate: adopt only when the recompile
				// predicts an improvement on the current snapshot.
				oldPST, _ := score(d, aware)
				newPST, _ := score(d, fresh)
				if newPST > oldPST {
					aware = fresh
				}
				base, recompiled = c, true
			}
		}
		stalePST, staleHOP := score(d, stale)
		awarePST, awareHOP := score(d, aware)
		rows = append(rows, QVTimeRow{
			Tier:       tier,
			Cycle:      c,
			Score:      driftScore,
			Recompiled: recompiled,
			StalePST:   stalePST,
			AwarePST:   awarePST,
			StaleHOP:   staleHOP,
			AwareHOP:   awareHOP,
			Recovered:  awarePST - stalePST,
		})
	}
	return rows, nil
}

// QVTimeTable renders the sweep tier-major with a per-tier mean of the
// recovered PST in the caption.
func QVTimeTable(rows []QVTimeRow) Table {
	t := Table{
		Title:  "QV over time: stale mapping vs drift-triggered recompilation (heavy-hex-20, width-4 model circuits)",
		Header: []string{"tier", "cycle", "drift score", "recompiled", "stale PST", "aware PST", "stale HOP", "aware HOP", "recovered"},
	}
	sum := map[calib.VarianceTier]float64{}
	count := map[calib.VarianceTier]int{}
	for _, r := range rows {
		mark := ""
		if r.Recompiled {
			mark = "yes"
		}
		t.Rows = append(t.Rows, []string{
			string(r.Tier), fmt.Sprint(r.Cycle), f3(r.Score), mark,
			f3(r.StalePST), f3(r.AwarePST), f3(r.StaleHOP), f3(r.AwareHOP), f3(r.Recovered),
		})
		sum[r.Tier] += r.Recovered
		count[r.Tier]++
	}
	var cap string
	for _, tier := range calib.Tiers() {
		if count[tier] == 0 {
			continue
		}
		if cap != "" {
			cap += ", "
		}
		cap += fmt.Sprintf("%s %+.3f", tier, sum[tier]/float64(count[tier]))
	}
	t.Caption = "mean recovered PST by tier: " + cap
	return t
}
