package experiments

import (
	"strings"
	"testing"

	"vaq/internal/portfolio"
)

// TestPortfolioBeatsFixedPolicies pins the experiment's acceptance
// criterion: the best-of-portfolio PST is ≥ every fixed policy on every
// Table 1 workload, and strictly better on at least one. The ≥ half is
// guaranteed by construction (the grid supersets the fixed policies and
// the re-measurement protocol matches cfg.pst exactly), so a violation
// means the measurement protocols have drifted apart.
func TestPortfolioBeatsFixedPolicies(t *testing.T) {
	rows, err := PortfolioPolicies(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	const eps = 1e-12
	strictly := 0
	for _, r := range rows {
		for _, fixed := range []struct {
			name string
			pst  float64
		}{
			{"baseline", r.BaselinePST},
			{"vqm", r.VQMPST},
			{"vqm-hop", r.VQMHopPST},
			{"vqa+vqm", r.VQAVQMPST},
		} {
			if r.PortfolioPST < fixed.pst-eps {
				t.Errorf("%s: portfolio PST %v below %s PST %v",
					r.Name, r.PortfolioPST, fixed.name, fixed.pst)
			}
		}
		if r.Headroom < 1-eps {
			t.Errorf("%s: headroom %v < 1", r.Name, r.Headroom)
		}
		if r.Headroom > 1+eps {
			strictly++
		}
		if r.Winner == "" {
			t.Errorf("%s: empty winner label", r.Name)
		}
	}
	if strictly == 0 {
		t.Error("portfolio never strictly beat the best fixed policy; expected headroom > 1 on at least one workload")
	}
	if s := PortfolioTable(rows).String(); !strings.Contains(s, "headroom") {
		t.Error("table rendering broken")
	}
}

// TestFixedEquivalentCoverage pins fixedEquivalent to the mean-cycle,
// non-optimized, deterministic-allocator grid points — exactly the
// candidate sets core.Compile's fixed policies select from.
func TestFixedEquivalentCoverage(t *testing.T) {
	cases := []struct {
		c    portfolio.CandidateSpec
		want bool
	}{
		{portfolio.CandidateSpec{Alloc: portfolio.AllocGreedy, Mover: portfolio.MoverBaseline, Cycle: portfolio.MeanCycle}, true},
		{portfolio.CandidateSpec{Alloc: portfolio.AllocVQA, Mover: portfolio.MoverVQM, Cycle: portfolio.MeanCycle}, true},
		{portfolio.CandidateSpec{Alloc: portfolio.AllocVQA, Mover: portfolio.MoverVQMHop, Cycle: portfolio.MeanCycle}, true},
		{portfolio.CandidateSpec{Alloc: portfolio.AllocGreedy, Mover: portfolio.MoverBaseline, Cycle: portfolio.MeanCycle, Optimize: true}, false},
		{portfolio.CandidateSpec{Alloc: portfolio.AllocRandom, Mover: portfolio.MoverBaseline, Cycle: portfolio.MeanCycle}, false},
		{portfolio.CandidateSpec{Alloc: portfolio.AllocGreedy, Mover: portfolio.MoverBaseline, Cycle: 3}, false},
	}
	for _, tc := range cases {
		if got := fixedEquivalent(tc.c); got != tc.want {
			t.Errorf("fixedEquivalent(%s) = %v, want %v", tc.c.Label(), got, tc.want)
		}
	}
}
