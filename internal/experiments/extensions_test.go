package experiments

import (
	"strings"
	"testing"
)

func TestExtMAHSweep(t *testing.T) {
	rows, err := ExtMAHSweep(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*6 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	byWorkload := map[string][]ExtMAHRow{}
	for _, r := range rows {
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for w, wr := range byWorkload {
		// MAH=0 must use no more swaps than unlimited... not necessarily;
		// but MAH=0 restricts per-layer extra swaps, so its total swap
		// count should not exceed the unlimited run's by much. Assert the
		// robust invariants instead: every config compiles and relative
		// PST is positive; the unlimited row matches the VQM policy.
		for _, r := range wr {
			if r.Relative <= 0 {
				t.Errorf("%s MAH=%d: relative PST %v", w, r.MAH, r.Relative)
			}
			if r.Swaps < 0 {
				t.Errorf("%s MAH=%d: negative swaps", w, r.MAH)
			}
		}
	}
	if s := ExtMAHTable(rows).String(); !strings.Contains(s, "unlimited") {
		t.Error("table rendering broken")
	}
}

func TestExtReadoutAware(t *testing.T) {
	rows, err := ExtReadoutAware(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*3 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	// Readout-aware candidates can only be selected when they score
	// higher, so PST at weight > 0 must never drop below weight 0.
	base := map[string]float64{}
	for _, r := range rows {
		if r.Weight == 0 {
			base[r.Workload] = r.PST
		}
	}
	for _, r := range rows {
		if r.Weight > 0 && r.PST < base[r.Workload]-1e-9 {
			t.Errorf("%s weight %g: PST %v below weight-0 %v", r.Workload, r.Weight, r.PST, base[r.Workload])
		}
	}
	if s := ExtReadoutTable(rows).String(); !strings.Contains(s, "readout") {
		t.Error("table rendering broken")
	}
}

func TestExtOptimizer(t *testing.T) {
	rows, err := ExtOptimizer(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if r.GatesAfter > r.GatesBefore {
			t.Errorf("%s: optimizer grew the circuit %d → %d", r.Workload, r.GatesBefore, r.GatesAfter)
		}
		if r.RelativePlus <= 0 {
			t.Errorf("%s: PST gain %v", r.Workload, r.RelativePlus)
		}
	}
	if s := ExtOptimizerTable(rows).String(); !strings.Contains(s, "gates") {
		t.Error("table rendering broken")
	}
}

func TestExtQuantumVolume(t *testing.T) {
	res, err := ExtQuantumVolume(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no QV rows")
	}
	if res.VariationLog2 < res.BaselineLog2 {
		t.Errorf("variation-aware QV %d below baseline %d", res.VariationLog2, res.BaselineLog2)
	}
	for _, r := range res.Rows {
		if r.NoisyHOP < 0.4 || r.NoisyHOP > 1 {
			t.Errorf("%s m=%d: HOP %v out of range", r.Policy, r.M, r.NoisyHOP)
		}
	}
	if s := ExtQVTable(res).String(); !strings.Contains(s, "achievable log2") {
		t.Error("table rendering broken")
	}
}

func TestExtTopology(t *testing.T) {
	rows, err := ExtTopology(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	bySwaps := map[string]map[string]int{}
	byPST := map[string]map[string]float64{}
	for _, r := range rows {
		if bySwaps[r.Workload] == nil {
			bySwaps[r.Workload] = map[string]int{}
			byPST[r.Workload] = map[string]float64{}
		}
		bySwaps[r.Workload][r.Topology] = r.Swaps
		byPST[r.Workload][r.Topology] = r.PST
	}
	for w := range bySwaps {
		if bySwaps[w]["full16"] != 0 {
			t.Errorf("%s: all-to-all machine needed %d swaps", w, bySwaps[w]["full16"])
		}
		// Restricted meshes can never beat all-to-all reliability at
		// uniform error rates (they add SWAPs, which add hazard).
		if byPST[w]["ibmq20"] > byPST[w]["full16"]+1e-12 {
			t.Errorf("%s: mesh PST above all-to-all", w)
		}
	}
	if s := ExtTopologyTable(rows).String(); !strings.Contains(s, "connectivity") {
		t.Error("table rendering broken")
	}
}
