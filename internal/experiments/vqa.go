package experiments

import (
	"fmt"
	"math"

	"vaq/internal/ansatz"
	"vaq/internal/core"
	"vaq/internal/parallel"
	"vaq/internal/sim"
	"vaq/internal/statevec"
)

// The vqa experiment runs the workload the parametric plane exists
// for: a variational optimization loop that evaluates one ansatz at
// hundreds of parameter points on a noisy machine. Two tracks minimize
// the ring-ZZ Ising energy of an EfficientSU2 ansatz on the mean IBM-Q20
// snapshot with an SPSA-style optimizer:
//
//   - aware: compiled once with the variation-aware policy (vqa+vqm);
//   - naive: compiled once with the variation-blind baseline.
//
// Each track pays exactly one compile (core.CompileParametric) and
// rebinds the mapping at every objective evaluation. The noisy
// objective is pst·E_ideal(θ): the ideal energy comes from the
// statevector of the logical binding, and the mapping's PST attenuates
// it — the fully mixed failure state has zero ZZ energy, so a worse
// mapping both shrinks the observed signal and (because SPSA's gradient
// estimate scales with the objective) slows the optimizer's descent.
// The per-evaluation PST is recomputed from the rebound physical
// circuit each time, demonstrating at runtime that angles never move
// it. Everything is a pure function of the seed, so the trajectory is
// byte-identical at any -workers setting.

// vqa shape: a 6-qubit, 1-rep EfficientSU2 (24 parameters) keeps the
// statevector tiny while still routing nontrivially on Q20, and 24 SPSA
// iterations (49 objective evaluations per track) are enough for the
// energy gap between the tracks to open up.
var (
	vqaQubits = 6
	vqaReps   = 1
	vqaIters  = 24
	vqaStepA  = 0.25 // SPSA step-size gain a_k = a / k^0.602
	vqaStepC  = 0.20 // SPSA perturbation gain c_k = c / k^0.101
)

// VQARow is one SPSA iteration: the noisy (pst-attenuated) and ideal
// ring-ZZ energies of each track at its current parameter point. Iter 0
// is the shared starting point.
type VQARow struct {
	Iter       int
	AwareNoisy float64
	AwareIdeal float64
	NaiveNoisy float64
	NaiveIdeal float64
}

// VQAResult carries the sweep rows plus the per-track constants the
// rows share: the mapping PSTs fixed at compile time and the
// evaluation count amortized over that single compile.
type VQAResult struct {
	Rows []VQARow
	// AwarePST and NaivePST are each track's mapping success
	// probability — one number per track, because rebinding never
	// changes the mapping.
	AwarePST float64
	NaivePST float64
	// Evals is the number of objective evaluations (rebinds) per
	// track; all but one compile was saved relative to a
	// recompile-per-evaluation loop.
	Evals int
}

// vqaRand is the SplitMix64 finalizer (the packed kernel's stream
// derivation function) iterated as a generator; see sim/rng.go.
type vqaRand uint64

func (s *vqaRand) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// VQASweep runs the two-track SPSA loop. The tracks share the starting
// point and the per-iteration perturbation directions, so the only
// difference between them is the mapping each one compiled once.
func VQASweep(cfg Config) (*VQAResult, error) {
	cfg = cfg.withDefaults()
	d := cfg.meanQ20()
	pc, err := ansatz.EfficientSU2(vqaQubits, vqaReps)
	if err != nil {
		return nil, err
	}
	nParams := pc.NumParams()

	// Shared SPSA schedule: starting angles in [0, 2π) and one ±1
	// perturbation direction per (iteration, parameter), all drawn from
	// the seed before the tracks fork.
	rng := vqaRand(uint64(cfg.Seed) ^ 0xA5A5A5A5A5A5A5A5)
	theta0 := make([]float64, nParams)
	for i := range theta0 {
		theta0[i] = 2 * math.Pi * float64(rng.next()>>11) * 0x1p-53
	}
	deltas := make([][]float64, vqaIters)
	for k := range deltas {
		deltas[k] = make([]float64, nParams)
		for i := range deltas[k] {
			if rng.next()&1 == 0 {
				deltas[k][i] = 1
			} else {
				deltas[k][i] = -1
			}
		}
	}

	type track struct {
		pst     float64
		noisy   []float64 // per iteration, len vqaIters+1
		ideal   []float64
		rebinds int
	}
	policies := []core.Policy{core.VQAVQM, core.Baseline}
	run := func(ti int) (*track, error) {
		bound, err := core.CompileParametric(d, pc, core.Options{Policy: policies[ti], Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("vqa %s: %w", policies[ti], err)
		}
		tr := &track{}
		eval := func(theta []float64) (noisy, ideal float64, err error) {
			phys, err := bound.RebindValues(theta)
			if err != nil {
				return 0, 0, err
			}
			pst := sim.AnalyticPST(d, phys, sim.Config{})
			if tr.rebinds == 0 {
				tr.pst = pst
			} else if pst != tr.pst {
				return 0, 0, fmt.Errorf("vqa %s: rebind moved the mapping PST from %v to %v (angles must not affect the error model)", policies[ti], tr.pst, pst)
			}
			tr.rebinds++
			logical, err := pc.BindValues(theta)
			if err != nil {
				return 0, 0, err
			}
			st, err := statevec.Run(logical)
			if err != nil {
				return 0, 0, err
			}
			ideal = ringZZEnergy(st)
			return pst * ideal, ideal, nil
		}

		theta := append([]float64(nil), theta0...)
		noisy, ideal, err := eval(theta)
		if err != nil {
			return nil, err
		}
		tr.noisy = append(tr.noisy, noisy)
		tr.ideal = append(tr.ideal, ideal)
		for k := 1; k <= vqaIters; k++ {
			ak := vqaStepA / math.Pow(float64(k), 0.602)
			ck := vqaStepC / math.Pow(float64(k), 0.101)
			delta := deltas[k-1]
			plus, minus := make([]float64, nParams), make([]float64, nParams)
			for i := range theta {
				plus[i] = theta[i] + ck*delta[i]
				minus[i] = theta[i] - ck*delta[i]
			}
			fPlus, _, err := eval(plus)
			if err != nil {
				return nil, err
			}
			fMinus, _, err := eval(minus)
			if err != nil {
				return nil, err
			}
			g := (fPlus - fMinus) / (2 * ck)
			for i := range theta {
				theta[i] -= ak * g * delta[i]
			}
			noisy, ideal, err := eval(theta)
			if err != nil {
				return nil, err
			}
			tr.noisy = append(tr.noisy, noisy)
			tr.ideal = append(tr.ideal, ideal)
		}
		return tr, nil
	}

	done, err := parallel.Map(cfg.Workers, len(policies), run)
	if err != nil {
		return nil, err
	}
	aware, naive := done[0], done[1]

	res := &VQAResult{
		AwarePST: aware.pst,
		NaivePST: naive.pst,
		Evals:    aware.rebinds,
	}
	for k := 0; k <= vqaIters; k++ {
		res.Rows = append(res.Rows, VQARow{
			Iter:       k,
			AwareNoisy: aware.noisy[k],
			AwareIdeal: aware.ideal[k],
			NaiveNoisy: naive.noisy[k],
			NaiveIdeal: naive.ideal[k],
		})
	}
	return res, nil
}

// ringZZEnergy returns ⟨Σᵢ ZᵢZᵢ₊₁⟩ on the n-qubit ring (qubit q is bit
// q of the basis index). The antiferromagnetic ground energy is −n for
// even n.
func ringZZEnergy(st *statevec.State) float64 {
	n := st.N()
	e := 0.0
	for idx, p := range st.Probabilities() {
		if p == 0 {
			continue
		}
		s := 0
		for q := 0; q < n; q++ {
			a := idx >> q & 1
			b := idx >> ((q + 1) % n) & 1
			if a == b {
				s++
			} else {
				s--
			}
		}
		e += p * float64(s)
	}
	return e
}

// VQATable renders the iteration trace with the compile-once
// bookkeeping in the caption.
func VQATable(res *VQAResult) Table {
	t := Table{
		Title: fmt.Sprintf("VQA sweep: SPSA on ring-ZZ Ising energy (su2-%d, %d parameters, mean IBM-Q20)",
			vqaQubits, 2*vqaQubits*(vqaReps+1)),
		Header: []string{"iter", "aware E", "aware E_ideal", "naive E", "naive E_ideal"},
	}
	for _, r := range res.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Iter),
			f3(r.AwareNoisy), f3(r.AwareIdeal),
			f3(r.NaiveNoisy), f3(r.NaiveIdeal),
		})
	}
	t.Caption = fmt.Sprintf(
		"mapping PST: aware (vqa+vqm) %s vs naive (baseline) %s — constant across all bindings; %d evaluations per track from 1 compile each (%d recompiles saved)",
		f3(res.AwarePST), f3(res.NaivePST), res.Evals, res.Evals-1)
	return t
}
