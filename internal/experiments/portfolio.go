package experiments

import (
	"fmt"
	"math"

	"vaq/internal/core"
	"vaq/internal/metrics"
	"vaq/internal/portfolio"
	"vaq/internal/workloads"
)

// PortfolioRow compares the best-of-portfolio PST against each fixed
// compilation policy for one Table 1 workload on the IBM-Q20 model.
type PortfolioRow struct {
	Name         string
	BaselinePST  float64
	VQMPST       float64
	VQMHopPST    float64
	VQAVQMPST    float64
	PortfolioPST float64
	// Winner is the grid label of the portfolio candidate that measured
	// best under the fixed-policy protocol.
	Winner string
	// Headroom is PortfolioPST over the best fixed-policy PST. By
	// construction it is ≥ 1: the portfolio grid contains every
	// (allocator, router) pair the fixed deterministic policies choose
	// from, measured under the identical protocol.
	Headroom float64
}

// PortfolioPolicies runs the portfolio-vs-fixed-policies comparison over
// the Table 1 suite.
func PortfolioPolicies(cfg Config) ([]PortfolioRow, error) {
	return runLegacy(cfg, PortfolioPoliciesCtx)
}

// fixedPolicies are the deterministic single-policy columns the
// portfolio is compared against (Native is excluded: its randomized
// mappings are a distribution, not a fixed comparator, and Figure 13
// already shows it far below the baseline).
var fixedPolicies = []core.Policy{core.Baseline, core.VQM, core.VQMHop, core.VQAVQM}

// PortfolioPoliciesCtx is PortfolioPolicies decomposed into per-workload
// units under r's cancellation, quarantine, and checkpoint discipline.
//
// Methodology: the fixed columns use cfg.pst. The portfolio column runs
// the speculative grid, then re-measures its leaders — the analytic
// top-k plus every fixed-equivalent grid point — under the exact
// cfg.pst protocol (same simulator seed and analytic fallback) and
// reports the best. Identical circuits measured identically yield
// identical PSTs, and every circuit a fixed policy can produce on the
// reference device is a mean-cycle grid point (see
// core.compileBestCandidate's candidate sets), so the portfolio column
// is mathematically ≥ each fixed column.
func PortfolioPoliciesCtx(r *Runner) ([]PortfolioRow, error) {
	cfg := r.Config().withDefaults()
	arch := cfg.archive()
	d := cfg.meanQ20()
	suite := workloads.Table1Suite()
	rows := make([]*PortfolioRow, len(suite))
	err := r.collectUnits(len(suite), func(i int) {
		spec := suite[i]
		key := UnitKey{Experiment: "portfolio", Workload: spec.Name, Day: -1, Policy: "portfolio"}
		if row, ok := RunUnit(r, key, func() (PortfolioRow, error) {
			fixed := make([]float64, len(fixedPolicies))
			for j, p := range fixedPolicies {
				pst, _, err := cfg.pst(d, spec.Circuit, p, cfg.Trials, cfg.Seed)
				if err != nil {
					return PortfolioRow{}, fmt.Errorf("portfolio %s/%s: %w", spec.Name, p, err)
				}
				fixed[j] = pst
			}
			pspec := portfolio.Spec{RootSeed: cfg.Seed, Workers: cfg.Workers}
			res, err := portfolio.Run(r.Context(), d, arch, spec.Circuit, pspec)
			if err != nil {
				return PortfolioRow{}, fmt.Errorf("portfolio %s: %w", spec.Name, err)
			}
			best, winner := math.Inf(-1), ""
			for idx := range res.Candidates {
				c := &res.Candidates[idx]
				if idx >= portfolio.DefaultTopK && !fixedEquivalent(c.CandidateSpec) {
					continue
				}
				pst := cfg.measure(d, c.Compiled.Routed.Physical, cfg.Trials, cfg.Seed)
				if pst > best {
					best, winner = pst, c.Label()
				}
			}
			_, bestFixed := metrics.MinMax(fixed)
			return PortfolioRow{
				Name:         spec.Name,
				BaselinePST:  fixed[0],
				VQMPST:       fixed[1],
				VQMHopPST:    fixed[2],
				VQAVQMPST:    fixed[3],
				PortfolioPST: best,
				Winner:       winner,
				Headroom:     metrics.Relative(best, bestFixed),
			}, nil
		}); ok {
			rows[i] = &row
		}
	})
	return compactRows(rows), err
}

// fixedEquivalent reports whether a grid point covers a circuit one of
// the fixed deterministic policies can produce on the reference device:
// a non-optimized mean-cycle candidate with a deterministic allocator.
// These candidates always join the re-measurement set, which is what
// pins the portfolio column to ≥ every fixed column.
func fixedEquivalent(c portfolio.CandidateSpec) bool {
	return c.Cycle == portfolio.MeanCycle && !c.Optimize && c.Alloc != portfolio.AllocRandom
}

// PortfolioTable renders the portfolio comparison.
func PortfolioTable(rows []PortfolioRow) Table {
	t := Table{
		Title:   "Portfolio compilation: best-of-grid PST vs fixed policies (IBM-Q20)",
		Header:  []string{"workload", "baseline", "VQM", "VQM (MAH=4)", "VQA+VQM", "portfolio", "winner", "headroom"},
		Caption: "headroom = portfolio / best fixed policy (≥ 1.00x by construction; the grid supersets the fixed policies)",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, f3(r.BaselinePST), f3(r.VQMPST), f3(r.VQMHopPST), f3(r.VQAVQMPST),
			f3(r.PortfolioPST), r.Winner, x2(r.Headroom),
		})
	}
	return t
}
