package experiments

import (
	"fmt"
	"sort"
	"strings"

	"vaq/internal/calib"
	"vaq/internal/parallel"
	"vaq/internal/topo"
)

// Fig5Result holds the coherence-time distributions of Figure 5.
type Fig5Result struct {
	T1Summary, T2Summary calib.Summary
	T1Hist, T2Hist       []calib.HistogramBin
}

// Fig5CoherenceDistributions reproduces Figure 5: the distribution of T1
// and T2 coherence times over all 20 qubits across the archive (the paper
// reports T1 μ=80.32µs σ=35.23µs, T2 μ=42.13µs σ=13.34µs).
func Fig5CoherenceDistributions(cfg Config) Fig5Result {
	cfg = cfg.withDefaults()
	arch := cfg.archive()
	t1 := arch.ArchiveT1s()
	t2 := arch.ArchiveT2s()
	return Fig5Result{
		T1Summary: calib.Summarize(t1),
		T2Summary: calib.Summarize(t2),
		T1Hist:    calib.Histogram(t1, 20),
		T2Hist:    calib.Histogram(t2, 20),
	}
}

// Table renders the Figure 5 summary.
func (r Fig5Result) Table() Table {
	return Table{
		Title:  "Figure 5: T1/T2 coherence-time distributions (µs)",
		Header: []string{"metric", "samples", "mean", "std", "min", "max"},
		Rows: [][]string{
			{"T1", fmt.Sprint(r.T1Summary.N), f2(r.T1Summary.Mean), f2(r.T1Summary.Std), f2(r.T1Summary.Min), f2(r.T1Summary.Max)},
			{"T2", fmt.Sprint(r.T2Summary.N), f2(r.T2Summary.Mean), f2(r.T2Summary.Std), f2(r.T2Summary.Min), f2(r.T2Summary.Max)},
		},
		Caption: "paper: T1 µ=80.32 σ=35.23, T2 µ=42.13 σ=13.34",
	}
}

// Fig6Result holds the single-qubit error distribution of Figure 6.
type Fig6Result struct {
	Summary           calib.Summary
	Hist              []calib.HistogramBin
	FractionBelow1Pct float64
}

// Fig6SingleQubitErrors reproduces Figure 6: the distribution of
// single-qubit gate error rates ("a large fraction of the error-rate below
// 1%").
func Fig6SingleQubitErrors(cfg Config) Fig6Result {
	cfg = cfg.withDefaults()
	rates := cfg.archive().ArchiveOneQubitRates()
	below := 0
	for _, e := range rates {
		if e < 0.01 {
			below++
		}
	}
	return Fig6Result{
		Summary:           calib.Summarize(rates),
		Hist:              calib.Histogram(rates, 20),
		FractionBelow1Pct: float64(below) / float64(len(rates)),
	}
}

// Table renders the Figure 6 summary.
func (r Fig6Result) Table() Table {
	return Table{
		Title:  "Figure 6: single-qubit gate error distribution",
		Header: []string{"samples", "mean", "std", "max", "below 1%"},
		Rows: [][]string{{
			fmt.Sprint(r.Summary.N), fmt.Sprintf("%.4f", r.Summary.Mean),
			fmt.Sprintf("%.4f", r.Summary.Std), fmt.Sprintf("%.4f", r.Summary.Max),
			fmt.Sprintf("%.0f%%", 100*r.FractionBelow1Pct),
		}},
		Caption: "paper: bulk of the distribution below 1%",
	}
}

// Fig7Result holds the two-qubit error distribution of Figure 7.
type Fig7Result struct {
	Summary calib.Summary
	Hist    []calib.HistogramBin
	Links   int
}

// Fig7TwoQubitErrors reproduces Figure 7: the distribution of two-qubit
// (CNOT) error rates over all links × cycles (the paper reports μ=4.3%
// σ=3.02% over 76 links × 100 observations).
func Fig7TwoQubitErrors(cfg Config) Fig7Result {
	cfg = cfg.withDefaults()
	arch := cfg.archive()
	rates := arch.ArchiveLinkRates()
	return Fig7Result{
		Summary: calib.Summarize(rates),
		Hist:    calib.Histogram(rates, 20),
		Links:   arch.Topo.NumLinks(),
	}
}

// Table renders the Figure 7 summary.
func (r Fig7Result) Table() Table {
	return Table{
		Title:  "Figure 7: two-qubit gate error distribution",
		Header: []string{"links", "samples", "mean", "std", "min", "max"},
		Rows: [][]string{{
			fmt.Sprint(r.Links), fmt.Sprint(r.Summary.N),
			fmt.Sprintf("%.4f", r.Summary.Mean), fmt.Sprintf("%.4f", r.Summary.Std),
			fmt.Sprintf("%.4f", r.Summary.Min), fmt.Sprintf("%.4f", r.Summary.Max),
		}},
		Caption: "paper: 76 links, µ=4.3% σ=3.02%",
	}
}

// Fig8Link is one tracked link's time series.
type Fig8Link struct {
	Name   string
	A, B   int
	Series []float64
	Mean   float64
}

// Fig8Result holds the temporal-variation series of Figure 8.
type Fig8Result struct {
	Links []Fig8Link
	// StrongStaysStrongFraction is the fraction of cycles in which the
	// link with the lowest mean error also has the lowest instantaneous
	// error among the tracked links.
	StrongStaysStrongFraction float64
}

// Fig8TemporalVariation reproduces Figure 8: the per-cycle two-qubit error
// of the three links the paper tracks (CX6_5, CX19_13, CX5_11), showing
// that strong links tend to remain strong across calibration cycles.
func Fig8TemporalVariation(cfg Config) Fig8Result {
	cfg = cfg.withDefaults()
	arch := cfg.archive()
	tracked := []struct {
		name string
		a, b int
	}{
		{"CX6_5", 5, 6},
		{"CX19_13", 13, 19},
		{"CX5_11", 5, 11},
	}
	var res Fig8Result
	for _, l := range tracked {
		series := arch.LinkSeries(l.a, l.b)
		res.Links = append(res.Links, Fig8Link{
			Name: l.name, A: l.a, B: l.b,
			Series: series,
			Mean:   calib.Summarize(series).Mean,
		})
	}
	// Identify the strongest tracked link by mean and count how often it
	// is instantaneously strongest.
	strongest := 0
	for i, l := range res.Links {
		if l.Mean < res.Links[strongest].Mean {
			strongest = i
		}
	}
	cycles := len(res.Links[0].Series)
	// Each calibration cycle is judged independently; the fan-out mirrors
	// the per-cycle structure the heavier experiments share.
	won, _ := parallel.Map(cfg.Workers, cycles, func(t int) (bool, error) {
		for i := range res.Links {
			if i != strongest && res.Links[i].Series[t] < res.Links[strongest].Series[t] {
				return false, nil
			}
		}
		return true, nil
	})
	wins := 0
	for _, w := range won {
		if w {
			wins++
		}
	}
	res.StrongStaysStrongFraction = float64(wins) / float64(cycles)
	return res
}

// Table renders the Figure 8 summary.
func (r Fig8Result) Table() Table {
	t := Table{
		Title:  "Figure 8: temporal variation of tracked links (per-cycle CNOT error)",
		Header: []string{"link", "mean", "min", "max", "cycles"},
		Caption: fmt.Sprintf("strongest tracked link is instantaneously strongest in %.0f%% of cycles",
			100*r.StrongStaysStrongFraction),
	}
	for _, l := range r.Links {
		s := calib.Summarize(l.Series)
		t.Rows = append(t.Rows, []string{l.Name, fmt.Sprintf("%.4f", l.Mean),
			fmt.Sprintf("%.4f", s.Min), fmt.Sprintf("%.4f", s.Max), fmt.Sprint(len(l.Series))})
	}
	return t
}

// Fig9Result holds the spatial variation of Figure 9.
type Fig9Result struct {
	// MeanRates maps each coupling to its archive-mean failure rate.
	MeanRates map[topo.Coupling]float64
	Strongest topo.Coupling
	Weakest   topo.Coupling
	MinRate   float64
	MaxRate   float64
	Spread    float64
}

// Fig9SpatialVariation reproduces Figure 9: the IBM-Q20 layout annotated
// with each link's average failure probability (paper: best 0.02, worst
// 0.15 on Q14–Q18, 7.5× spread).
func Fig9SpatialVariation(cfg Config) Fig9Result {
	cfg = cfg.withDefaults()
	mean := cfg.archive().MustMean()
	res := Fig9Result{MeanRates: map[topo.Coupling]float64{}}
	for _, c := range mean.Topo.Couplings {
		res.MeanRates[c] = mean.TwoQubit[c]
	}
	res.Strongest, res.MinRate = mean.StrongestLink()
	res.Weakest, res.MaxRate = mean.WeakestLink()
	if res.MinRate > 0 {
		res.Spread = res.MaxRate / res.MinRate
	}
	return res
}

// Layout renders the IBM-Q20 grid with each link's mean failure rate —
// the textual form of the paper's Figure 9 diagram. Grid links appear in
// place; diagonal links are listed below.
func (r Fig9Result) Layout() string {
	const rows, cols = 4, 5
	id := func(row, col int) int { return row*cols + col }
	rate := func(a, b int) (float64, bool) {
		if a > b {
			a, b = b, a
		}
		v, ok := r.MeanRates[topo.Coupling{A: a, B: b}]
		return v, ok
	}
	var b strings.Builder
	for row := 0; row < rows; row++ {
		// Qubit row with horizontal links.
		for col := 0; col < cols; col++ {
			fmt.Fprintf(&b, "Q%-2d", id(row, col))
			if col+1 < cols {
				if v, ok := rate(id(row, col), id(row, col+1)); ok {
					fmt.Fprintf(&b, " --%.2f-- ", v)
				} else {
					b.WriteString("          ")
				}
			}
		}
		b.WriteByte('\n')
		// Vertical links to the next row.
		if row+1 < rows {
			for col := 0; col < cols; col++ {
				if v, ok := rate(id(row, col), id(row+1, col)); ok {
					fmt.Fprintf(&b, " %.2f", v)
				} else {
					b.WriteString("     ")
				}
				if col+1 < cols {
					b.WriteString("         ")
				}
			}
			b.WriteByte('\n')
		}
	}
	// Diagonals (everything not horizontal/vertical on the grid).
	var diags []string
	for _, c := range sortedCouplings(r.MeanRates) {
		rowA, colA := c.A/cols, c.A%cols
		rowB, colB := c.B/cols, c.B%cols
		if rowA == rowB || colA == colB {
			continue
		}
		diags = append(diags, fmt.Sprintf("Q%d-Q%d %.2f", c.A, c.B, r.MeanRates[c]))
	}
	if len(diags) > 0 {
		fmt.Fprintf(&b, "diagonals: %s\n", strings.Join(diags, ", "))
	}
	return b.String()
}

func sortedCouplings(m map[topo.Coupling]float64) []topo.Coupling {
	out := make([]topo.Coupling, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Table renders the Figure 9 summary (full per-link rates come from the
// MeanRates map; the table shows the extremes the paper calls out).
func (r Fig9Result) Table() Table {
	return Table{
		Title:  "Figure 9: spatial variation of mean link failure rates (IBM-Q20)",
		Header: []string{"", "link", "failure rate"},
		Rows: [][]string{
			{"strongest", fmt.Sprintf("Q%d-Q%d", r.Strongest.A, r.Strongest.B), fmt.Sprintf("%.3f", r.MinRate)},
			{"weakest", fmt.Sprintf("Q%d-Q%d", r.Weakest.A, r.Weakest.B), fmt.Sprintf("%.3f", r.MaxRate)},
			{"spread", "", fmt.Sprintf("%.1fx", r.Spread)},
		},
		Caption: "paper: best 0.02, worst 0.15 (Q14-Q18), 7.5x spread",
	}
}
