package experiments

import (
	"fmt"

	"vaq/internal/core"
	"vaq/internal/partition"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

// Fig16Row is one 10-qubit workload's partitioning outcome.
type Fig16Row struct {
	Name string
	// STPTs normalized to the two-copy configuration (the paper's
	// normalization in Figure 16).
	TwoCopiesNorm float64 // always 1.0
	OneStrongNorm float64
	Winner        partition.Mode
	// Raw values for EXPERIMENTS.md.
	OneSTPT, TwoSTPT float64
	TwoPSTs          [2]float64
	OnePST           float64
}

// Fig16Partitioning reproduces Figure 16: Successful Trials Per unit Time
// of two concurrent copies versus one strong copy, for the 10-qubit
// variants of alu, bv and qft on the IBM-Q20 model.
func Fig16Partitioning(cfg Config) ([]Fig16Row, error) {
	return runLegacy(cfg, Fig16PartitioningCtx)
}

// Fig16PartitioningCtx is Fig16Partitioning decomposed into per-workload
// units.
func Fig16PartitioningCtx(r *Runner) ([]Fig16Row, error) {
	cfg := r.Config().withDefaults()
	d := cfg.meanQ20()
	opts := partition.Options{
		Compile:    core.Options{Policy: core.VQAVQM},
		Sim:        sim.Config{Trials: cfg.Trials / 4, Seed: cfg.Seed, Workers: cfg.Workers, Kernel: cfg.Kernel},
		Candidates: 10,
	}
	suite := workloads.TenQubitSuite()
	rows := make([]*Fig16Row, len(suite))
	err := r.collectUnits(len(suite), func(i int) {
		spec := suite[i]
		key := UnitKey{Experiment: "fig16", Workload: spec.Name, Day: -1, Policy: "stpt"}
		if row, ok := RunUnit(r, key, func() (Fig16Row, error) {
			res, err := partition.Evaluate(d, spec.Circuit, opts)
			if err != nil {
				return Fig16Row{}, fmt.Errorf("fig16 %s: %w", spec.Name, err)
			}
			row := Fig16Row{
				Name:          spec.Name,
				TwoCopiesNorm: 1,
				Winner:        res.Winner,
				OneSTPT:       res.OneSTPT,
				TwoSTPT:       res.TwoSTPT,
				TwoPSTs:       [2]float64{res.Two[0].PST, res.Two[1].PST},
				OnePST:        res.One.PST,
			}
			if res.TwoSTPT > 0 {
				row.OneStrongNorm = res.OneSTPT / res.TwoSTPT
			}
			return row, nil
		}); ok {
			rows[i] = &row
		}
	})
	return compactRows(rows), err
}

// Fig16Table renders Figure 16.
func Fig16Table(rows []Fig16Row) Table {
	t := Table{
		Title:   "Figure 16: normalized STPT — two weak copies vs one strong copy",
		Header:  []string{"workload", "two copies", "one strong copy", "winner"},
		Caption: "paper: bv-10 favors two copies; qft-10 favors one strong copy",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, f2(r.TwoCopiesNorm), f2(r.OneStrongNorm), r.Winner.String()})
	}
	return t
}
