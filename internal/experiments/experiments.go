// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a function taking a Config and returning
// typed rows plus a formatted table, so the same code backs the cmd/repro
// binary, the benchmark harness in bench_test.go, and EXPERIMENTS.md.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Fig5CoherenceDistributions — T1/T2 histograms
//	Fig6SingleQubitErrors      — 1Q gate error histogram
//	Fig7TwoQubitErrors         — 2Q gate error histogram
//	Fig8TemporalVariation      — per-cycle error series of three links
//	Fig9SpatialVariation       — mean per-link failure rates on the layout
//	Table1Benchmarks           — workload characteristics
//	Fig12VQM                   — relative PST of VQM / hop-limited VQM
//	Fig13Policies              — native vs baseline vs VQM vs VQA+VQM
//	Fig14PerDay                — per-day relative PST of bv-16 over 52 days
//	Table2ErrorScaling         — sensitivity to scaled error rates
//	Table3IBMQ5                — IBM-Q5 kernels (simulated hardware model)
//	Fig16Partitioning          — two weak copies vs one strong copy (STPT)
package experiments

import (
	"fmt"
	"strings"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/sim"
)

// Config parameterizes every experiment.
type Config struct {
	// Seed drives the synthetic characterization archive; everything
	// downstream is deterministic given it.
	Seed int64
	// Trials per Monte-Carlo PST estimate. The paper uses 1M for IBM-Q20
	// studies; the default is 200k, which keeps the full suite fast while
	// holding the PST standard error near 1e-3.
	Trials int
	// NativeConfigs and NativeTrials configure the IBM-native comparator:
	// the paper evaluates 32 random configurations with 10000 trials each.
	NativeConfigs int
	NativeTrials  int
	// Q5Trials matches the paper's 4096 trials per IBM-Q5 experiment.
	Q5Trials int
	// Workers bounds the goroutines used for the experiment fan-out and
	// the trial-level Monte-Carlo sharding: > 0 is taken literally, 0 (the
	// default) uses one worker per CPU, < 0 forces serial execution. All
	// results are identical at every setting (see DESIGN.md, "Concurrency
	// and determinism").
	Workers int
	// Archive, when non-nil, replaces the synthetic characterization
	// archive with an externally loaded one (repro -calib). Callers should
	// validate it first (calib.Archive.Validate or calib.ReadJSONLenient).
	Archive *calib.Archive
	// Kernel selects the Monte-Carlo kernel for every experiment ("" means
	// the simulator default, the packed kernel; "scalar" reproduces the
	// historical byte-exact trial streams at one-trial-at-a-time speed).
	Kernel string
}

// DefaultConfig returns the paper-faithful settings (except MC trial
// counts, reduced from 1M to 200k; set Trials explicitly to reproduce the
// paper's exact budget).
func DefaultConfig() Config {
	return Config{
		Seed:          2019,
		Trials:        200000,
		NativeConfigs: 32,
		NativeTrials:  10000,
		Q5Trials:      4096,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Trials <= 0 {
		c.Trials = d.Trials
	}
	if c.NativeConfigs <= 0 {
		c.NativeConfigs = d.NativeConfigs
	}
	if c.NativeTrials <= 0 {
		c.NativeTrials = d.NativeTrials
	}
	if c.Q5Trials <= 0 {
		c.Q5Trials = d.Q5Trials
	}
	return c
}

// archive returns the characterization archive driving every IBM-Q20
// experiment: the externally loaded one when set, else the 52-day
// synthetic archive generated from the seed.
func (c Config) archive() *calib.Archive {
	if c.Archive != nil {
		return c.Archive
	}
	return calib.Generate(calib.DefaultQ20Config(c.Seed))
}

// meanQ20 returns the IBM-Q20 device under the archive's mean snapshot —
// the machine model of the paper's main evaluations.
func (c Config) meanQ20() *device.Device {
	arch := c.archive()
	return device.MustNew(arch.Topo, arch.MustMean())
}

// q5 returns the simulated IBM-Q5 device (Section 7 substitution): the
// fixed Tenerife-like snapshot with the paper's quoted error figures.
func (c Config) q5() *device.Device {
	s := calib.TenerifeSnapshot()
	return device.MustNew(s.Topo, s)
}

// pst compiles prog under the policy and estimates its PST with the Monte
// Carlo fault injector. Deep circuits (qft-14, rnd-LD) have PSTs of 1e-4
// and below, where a finite trial budget observes a handful of successes
// or none; since the MC converges to the analytic product-of-successes
// estimate by construction (errors are independent events), the harness
// switches to the analytic value whenever fewer than minMCSuccesses
// successes were observed, keeping relative-PST ratios well-defined.
func (c Config) pst(d *device.Device, prog *circuit.Circuit, policy core.Policy, trials int, seed int64) (float64, *core.Compiled, error) {
	return c.pstWith(d, prog, core.Options{Policy: policy, Seed: seed}, sim.Config{Trials: trials, Seed: seed + 7777})
}

const minMCSuccesses = 50

// measure estimates the PST of an already-compiled physical circuit
// under the exact protocol of cfg.pst — same simulator seed derivation,
// same analytic fallback — so a circuit measured here compares exactly
// with one measured through cfg.pst. The portfolio experiment relies on
// this: identical circuits must yield identical PSTs for its ≥-fixed
// guarantee to hold.
func (c Config) measure(d *device.Device, phys *circuit.Circuit, trials int, seed int64) float64 {
	scfg := sim.Config{Trials: trials, Seed: seed + 7777, Workers: c.Workers, Kernel: c.Kernel}
	prep := sim.Prepare(d, phys, scfg)
	out := prep.Run(scfg)
	if out.Successes < minMCSuccesses {
		return prep.AnalyticPST()
	}
	return out.PST
}

func (c Config) pstWith(d *device.Device, prog *circuit.Circuit, copts core.Options, scfg sim.Config) (float64, *core.Compiled, error) {
	if scfg.Workers == 0 {
		scfg.Workers = c.Workers
	}
	if scfg.Kernel == "" {
		scfg.Kernel = c.Kernel
	}
	comp, err := core.Compile(d, prog, copts)
	if err != nil {
		return 0, nil, err
	}
	prep := sim.Prepare(d, comp.Routed.Physical, scfg)
	out := prep.Run(scfg)
	if out.Successes < minMCSuccesses {
		return prep.AnalyticPST(), comp, nil
	}
	return out.PST, comp, nil
}

// Table renders rows with aligned columns for terminal output.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// String renders the table.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func x2(v float64) string { return fmt.Sprintf("%.2fx", v) }
