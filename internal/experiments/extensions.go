package experiments

import (
	"fmt"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/metrics"
	"vaq/internal/parallel"
	"vaq/internal/qvolume"
	"vaq/internal/sim"
	"vaq/internal/topo"
	"vaq/internal/transpile"
	"vaq/internal/workloads"
)

// The extension experiments go beyond the paper's evaluation along the
// axes its discussion points at: the MAH knob's full range, readout-error
// variation, classical pre-optimization, and the cost of restricted
// connectivity. cmd/repro exposes them as ext-mah, ext-readout,
// ext-optimizer and ext-topology.

// ExtMAHRow is one (workload, MAH) point.
type ExtMAHRow struct {
	Workload string
	MAH      int // -1 = unlimited
	Swaps    int
	Relative float64 // PST vs the hop-cost baseline
}

// ExtMAHSweep sweeps the Maximum Additional Hops limit across
// representative workloads (the paper evaluates only MAH=4 and unlimited).
func ExtMAHSweep(cfg Config) ([]ExtMAHRow, error) {
	cfg = cfg.withDefaults()
	d := cfg.meanQ20()
	scfg := sim.Config{Kernel: cfg.Kernel}
	specs := []workloads.Spec{
		{Name: "bv-16", Circuit: workloads.BV(16)},
		{Name: "qft-12", Circuit: workloads.QFT(12)},
		{Name: "rnd-LD", Circuit: workloads.RandLD(1)},
	}
	perSpec, err := parallel.Map(cfg.Workers, len(specs), func(i int) ([]ExtMAHRow, error) {
		spec := specs[i]
		baseComp, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.Baseline})
		if err != nil {
			return nil, fmt.Errorf("ext-mah %s: %w", spec.Name, err)
		}
		basePST := sim.AnalyticPST(d, baseComp.Routed.Physical, scfg)
		var rows []ExtMAHRow
		for _, mah := range []int{0, 1, 2, 4, 8, -1} {
			opts := core.Options{Policy: core.VQMHop, MAH: mah}
			if mah < 0 {
				opts = core.Options{Policy: core.VQM}
			}
			comp, err := core.Compile(d, spec.Circuit, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ExtMAHRow{
				Workload: spec.Name,
				MAH:      mah,
				Swaps:    comp.Swaps(),
				Relative: metrics.Relative(sim.AnalyticPST(d, comp.Routed.Physical, scfg), basePST),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	return flatten(perSpec), nil
}

// flatten concatenates per-item row slices in item order — the glue
// between parallel.Map and experiments that emit several rows per unit
// of fanned-out work.
func flatten[T any](groups [][]T) []T {
	var out []T
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// ExtMAHTable renders the MAH sweep.
func ExtMAHTable(rows []ExtMAHRow) Table {
	t := Table{
		Title:   "Extension: MAH sweep (relative PST vs baseline, analytic)",
		Header:  []string{"workload", "MAH", "swaps", "relative PST"},
		Caption: "paper evaluates MAH=4 only; the sweep shows where the hop budget binds",
	}
	for _, r := range rows {
		mah := fmt.Sprint(r.MAH)
		if r.MAH < 0 {
			mah = "unlimited"
		}
		t.Rows = append(t.Rows, []string{r.Workload, mah, fmt.Sprint(r.Swaps), x2(r.Relative)})
	}
	return t
}

// ExtReadoutRow is one (kernel, readout-weight) point on the IBM-Q5 model.
type ExtReadoutRow struct {
	Workload string
	Weight   float64
	PST      float64
}

// ExtReadoutAware evaluates the readout-aware VQA extension on the IBM-Q5
// kernels: weight 0 is the paper-faithful VQA+VQM.
func ExtReadoutAware(cfg Config) ([]ExtReadoutRow, error) {
	cfg = cfg.withDefaults()
	d := cfg.q5()
	suite := workloads.Q5Suite()
	perSpec, err := parallel.Map(cfg.Workers, len(suite), func(i int) ([]ExtReadoutRow, error) {
		spec := suite[i]
		var rows []ExtReadoutRow
		for _, w := range []float64{0, 1, 3} {
			comp, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.VQAVQM, ReadoutWeight: w})
			if err != nil {
				return nil, fmt.Errorf("ext-readout %s: %w", spec.Name, err)
			}
			rows = append(rows, ExtReadoutRow{
				Workload: spec.Name,
				Weight:   w,
				PST:      sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{}),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	return flatten(perSpec), nil
}

// ExtReadoutTable renders the readout extension.
func ExtReadoutTable(rows []ExtReadoutRow) Table {
	t := Table{
		Title:   "Extension: readout-aware VQA on the IBM-Q5 model (analytic PST)",
		Header:  []string{"workload", "readout weight", "PST"},
		Caption: "weight 0 = paper-faithful VQA+VQM; higher weights steer measured qubits to good readout",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Workload, fmt.Sprintf("%g", r.Weight), fmt.Sprintf("%.4f", r.PST)})
	}
	return t
}

// ExtOptimizerRow reports the transpile passes' effect on one workload.
type ExtOptimizerRow struct {
	Workload     string
	GatesBefore  int
	GatesAfter   int
	SwapsBefore  int
	SwapsAfter   int
	RelativePlus float64 // optimized PST / unoptimized PST (baseline policy)
}

// ExtOptimizer measures classical pre-optimization (inverse cancellation,
// rotation merging) across the Table 1 suite. The generators emit lean
// circuits, so reductions are modest — the experiment quantifies exactly
// how much slack the benchmarks contain.
func ExtOptimizer(cfg Config) ([]ExtOptimizerRow, error) {
	cfg = cfg.withDefaults()
	d := cfg.meanQ20()
	scfg := sim.Config{Kernel: cfg.Kernel}
	suite := workloads.Table1Suite()
	return parallel.Map(cfg.Workers, len(suite), func(i int) (ExtOptimizerRow, error) {
		spec := suite[i]
		plain, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.Baseline})
		if err != nil {
			return ExtOptimizerRow{}, fmt.Errorf("ext-optimizer %s: %w", spec.Name, err)
		}
		opt, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.Baseline, Optimize: true})
		if err != nil {
			return ExtOptimizerRow{}, err
		}
		optimized, _ := transpile.Optimize(spec.Circuit)
		return ExtOptimizerRow{
			Workload:    spec.Name,
			GatesBefore: len(spec.Circuit.Gates),
			GatesAfter:  len(optimized.Gates),
			SwapsBefore: plain.Swaps(),
			SwapsAfter:  opt.Swaps(),
			RelativePlus: metrics.Relative(
				sim.AnalyticPST(d, opt.Routed.Physical, scfg),
				sim.AnalyticPST(d, plain.Routed.Physical, scfg)),
		}, nil
	})
}

// ExtOptimizerTable renders the optimizer experiment.
func ExtOptimizerTable(rows []ExtOptimizerRow) Table {
	t := Table{
		Title:   "Extension: transpile optimization before mapping (baseline policy)",
		Header:  []string{"workload", "gates", "gates (opt)", "swaps", "swaps (opt)", "PST gain"},
		Caption: "generators emit lean circuits; gains quantify residual slack",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Workload, fmt.Sprint(r.GatesBefore), fmt.Sprint(r.GatesAfter),
			fmt.Sprint(r.SwapsBefore), fmt.Sprint(r.SwapsAfter), x2(r.RelativePlus),
		})
	}
	return t
}

// ExtQVRow is one (policy, width) point of the Quantum Volume study.
type ExtQVRow struct {
	Policy   string
	M        int
	MeanPST  float64
	NoisyHOP float64
	Pass     bool
}

// ExtQVResult reports the achievable log2 quantum volume per policy.
type ExtQVResult struct {
	Rows          []ExtQVRow
	BaselineLog2  int
	VariationLog2 int
}

// ExtQuantumVolume quantifies the Related-Work discussion: Quantum Volume
// is a machine metric, yet the compilation policy changes the measured
// value on identical hardware. The study scans widths 2..6 under the
// baseline and VQA+VQM.
func ExtQuantumVolume(cfg Config) (ExtQVResult, error) {
	cfg = cfg.withDefaults()
	d := cfg.meanQ20()
	var res ExtQVResult
	policies := []core.Policy{core.Baseline, core.VQAVQM}
	type qvOutcome struct {
		rows []ExtQVRow
		best int
	}
	outcomes, err := parallel.Map(cfg.Workers, len(policies), func(i int) (qvOutcome, error) {
		pol := policies[i]
		qcfg := qvolume.Config{Circuits: 6, Seed: cfg.Seed, Policy: pol, Workers: cfg.Workers}
		best, all, err := qvolume.Achievable(d, 6, qcfg)
		if err != nil {
			return qvOutcome{}, fmt.Errorf("ext-qv %v: %w", pol, err)
		}
		o := qvOutcome{best: best}
		for _, r := range all {
			o.rows = append(o.rows, ExtQVRow{
				Policy: pol.String(), M: r.M, MeanPST: r.MeanPST, NoisyHOP: r.NoisyHOP, Pass: r.Pass,
			})
		}
		return o, nil
	})
	if err != nil {
		return res, err
	}
	res.BaselineLog2 = outcomes[0].best
	res.VariationLog2 = outcomes[1].best
	for _, o := range outcomes {
		res.Rows = append(res.Rows, o.rows...)
	}
	return res, nil
}

// ExtQVTable renders the QV study.
func ExtQVTable(r ExtQVResult) Table {
	t := Table{
		Title:  "Extension: Quantum Volume under different compilation policies (IBM-Q20 model)",
		Header: []string{"policy", "width m", "mean PST", "noisy HOP", "pass (>2/3)"},
		Caption: fmt.Sprintf("achievable log2(QV): baseline %d, VQA+VQM %d — same hardware, different measured volume",
			r.BaselineLog2, r.VariationLog2),
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Policy, fmt.Sprint(row.M), f3(row.MeanPST), f3(row.NoisyHOP), fmt.Sprint(row.Pass),
		})
	}
	return t
}

// ExtTopologyRow compares one workload across coupling topologies.
type ExtTopologyRow struct {
	Workload string
	Topology string
	Swaps    int
	PST      float64
}

// ExtTopology quantifies the cost of restricted connectivity (the paper's
// Section 2.4 motivation): the same workloads, same uniform error rates,
// on the IBM-Q20 map, the 16-qubit ladder, and an idealized all-to-all
// machine where routing is free.
func ExtTopology(cfg Config) ([]ExtTopologyRow, error) {
	cfg = cfg.withDefaults()
	mean := calib.Summarize(cfg.archive().MustMean().LinkRates()).Mean
	makeDevice := func(t *topo.Topology) (*device.Device, error) {
		s := calib.NewSnapshot(t)
		for _, c := range t.Couplings {
			s.TwoQubit[c] = mean
		}
		for q := 0; q < t.NumQubits; q++ {
			s.OneQubit[q] = 0.002
			s.Readout[q] = 0.04
			s.T1Us[q], s.T2Us[q] = 80, 42
		}
		return device.New(t, s)
	}
	topos := []*topo.Topology{topo.IBMQ20(), topo.IBMQ16(), topo.FullyConnected(16)}
	specs := []workloads.Spec{
		{Name: "bv-10", Circuit: workloads.BV(10)},
		{Name: "qft-10", Circuit: workloads.QFT(10)},
		{Name: "alu", Circuit: workloads.ALU()},
	}
	perSpec, err := parallel.Map(cfg.Workers, len(specs), func(i int) ([]ExtTopologyRow, error) {
		spec := specs[i]
		var rows []ExtTopologyRow
		for _, tp := range topos {
			d, err := makeDevice(tp)
			if err != nil {
				return nil, err
			}
			comp, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.Baseline})
			if err != nil {
				return nil, fmt.Errorf("ext-topology %s/%s: %w", spec.Name, tp.Name, err)
			}
			rows = append(rows, ExtTopologyRow{
				Workload: spec.Name,
				Topology: tp.Name,
				Swaps:    comp.Swaps(),
				PST:      sim.AnalyticPST(d, comp.Routed.Physical, sim.Config{}),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	return flatten(perSpec), nil
}

// ExtTopologyTable renders the topology comparison.
func ExtTopologyTable(rows []ExtTopologyRow) Table {
	t := Table{
		Title:   "Extension: cost of restricted connectivity (uniform errors, baseline policy)",
		Header:  []string{"workload", "topology", "swaps", "analytic PST"},
		Caption: "all-to-all needs no SWAPs; the gap to the NISQ meshes is the connectivity tax (Section 2.4)",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Workload, r.Topology, fmt.Sprint(r.Swaps), fmt.Sprintf("%.2e", r.PST)})
	}
	return t
}
