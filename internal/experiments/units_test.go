package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"vaq/internal/checkpoint"
	"vaq/internal/parallel"
)

func TestUnitKeyString(t *testing.T) {
	cases := []struct {
		key  UnitKey
		want string
	}{
		{UnitKey{Experiment: "fig13", Workload: "bv-16", Day: -1, Policy: "all"}, "fig13/bv-16/all"},
		{UnitKey{Experiment: "fig14", Workload: "bv-16", Day: 0, Policy: "vqa+vqm"}, "fig14/bv-16/day0/vqa+vqm"},
		{UnitKey{Experiment: "table2", Day: -1}, "table2"},
	}
	for _, c := range cases {
		if got := c.key.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.key, got, c.want)
		}
	}
}

func TestRunUnitQuarantinesErrorsAndPanicsButNotSiblings(t *testing.T) {
	r := NewRunner(context.Background(), Config{}, nil)
	n := 6
	got := make([]int, 0, n)
	err := r.collectUnits(n, func(i int) {
		key := UnitKey{Experiment: "x", Workload: fmt.Sprint(i), Day: -1}
		v, ok := RunUnit(r, key, func() (int, error) {
			switch i {
			case 2:
				return 0, errors.New("unit error")
			case 4:
				panic("unit panic")
			}
			return i * 10, nil
		})
		if ok {
			got = append(got, v)
		}
	})
	if err != nil {
		t.Fatalf("collectUnits err = %v (failures must stay in the report)", err)
	}
	if len(got) != 4 {
		t.Fatalf("%d surviving units, want 4: %v", len(got), got)
	}
	rep := r.Report()
	if len(rep.Failures) != 2 {
		t.Fatalf("%d failures, want 2: %v", len(rep.Failures), rep.Err())
	}
	var sawPanic bool
	for _, f := range rep.Failures {
		if f.Key.Workload == "4" {
			sawPanic = true
			if len(f.Stack) == 0 || !strings.Contains(string(f.Stack), "units_test.go") {
				t.Fatalf("panicking unit lost its stack: %q", f.Stack)
			}
		}
	}
	if !sawPanic {
		t.Fatalf("panicking unit not named in report: %v", rep.Err())
	}
	if !strings.Contains(rep.String(), "x/4") || !strings.Contains(rep.String(), "unit panic") {
		t.Fatalf("report rendering misses the failed unit:\n%s", rep.String())
	}
}

func TestRunUnitCancellationIsNotAFault(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(ctx, Config{}, nil)
	_, ok := RunUnit(r, UnitKey{Experiment: "x", Day: -1}, func() (int, error) {
		t.Fatal("unit ran after cancellation")
		return 0, nil
	})
	if ok {
		t.Fatal("cancelled unit reported success")
	}
	if !r.Report().Empty() {
		t.Fatalf("cancellation was quarantined: %v", r.Report().Err())
	}
}

func TestRunUnitCheckpointServesWithoutRecompute(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 7, Trials: 1000}
	key := UnitKey{Experiment: "x", Workload: "w", Day: -1}

	store, err := checkpoint.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	unit := func() (float64, error) { computes.Add(1); return 0.123456789, nil }

	r1 := NewRunner(context.Background(), cfg, store)
	if v, ok := RunUnit(r1, key, unit); !ok || v != 0.123456789 {
		t.Fatalf("first run = (%v, %v)", v, ok)
	}

	resumed, err := checkpoint.Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(context.Background(), cfg, resumed)
	if v, ok := RunUnit(r2, key, unit); !ok || v != 0.123456789 {
		t.Fatalf("resumed run = (%v, %v)", v, ok)
	}
	if computes.Load() != 1 {
		t.Fatalf("unit computed %d times, want 1 (second run must serve the checkpoint)", computes.Load())
	}

	// A different seed changes the scope: the entry must not be served.
	r3 := NewRunner(context.Background(), Config{Seed: 8, Trials: 1000}, resumed)
	if _, ok := RunUnit(r3, key, unit); !ok {
		t.Fatal("scope-mismatched unit failed")
	}
	if computes.Load() != 2 {
		t.Fatalf("stale entry served across a seed change (computes = %d)", computes.Load())
	}
}

func TestOnUnitDoneFiresOnComputeNotOnCacheHit(t *testing.T) {
	dir := t.TempDir()
	store, err := checkpoint.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 7}
	key := UnitKey{Experiment: "x", Day: -1}
	var done atomic.Int64

	r1 := NewRunner(context.Background(), cfg, store)
	r1.OnUnitDone = func(UnitKey) { done.Add(1) }
	RunUnit(r1, key, func() (int, error) { return 1, nil })
	if done.Load() != 1 {
		t.Fatalf("OnUnitDone fired %d times after compute, want 1", done.Load())
	}

	resumed, _ := checkpoint.Open(dir, true)
	r2 := NewRunner(context.Background(), cfg, resumed)
	r2.OnUnitDone = func(UnitKey) { done.Add(1) }
	RunUnit(r2, key, func() (int, error) { return 1, nil })
	if done.Load() != 1 {
		t.Fatal("OnUnitDone fired for a checkpoint hit")
	}
}

func TestQuarantineCapturesParallelPanicStack(t *testing.T) {
	r := NewRunner(context.Background(), Config{}, nil)
	err := parallel.Collect(context.Background(), 1, 1, func(i int) error { panic("deep") })
	r.Quarantine(UnitKey{Experiment: "e", Day: -1}, err)
	rep := r.Report()
	if len(rep.Failures) != 1 || len(rep.Failures[0].Stack) == 0 {
		t.Fatalf("stack lost through error wrapping: %+v", rep.Failures)
	}
}

// TestTable1CtxCheckpointDeterminism pins the resume contract end to end
// on a real (compile-only, fast) experiment: rows computed fresh and rows
// served from a checkpoint are bit-identical.
func TestTable1CtxCheckpointDeterminism(t *testing.T) {
	cfg := fastCfg()
	fresh, err := Table1Benchmarks(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store, err := checkpoint.Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunner(context.Background(), cfg, store)
	if _, err := Table1BenchmarksCtx(r1); err != nil {
		t.Fatal(err)
	}

	resumed, err := checkpoint.Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(context.Background(), cfg, resumed)
	served, err := Table1BenchmarksCtx(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, served) {
		t.Fatalf("resumed rows differ from fresh rows:\nfresh:  %+v\nserved: %+v", fresh, served)
	}
	hits, _, _, _ := resumed.Stats()
	if hits != len(fresh) {
		t.Fatalf("served %d units from checkpoint, want %d", hits, len(fresh))
	}
}
