package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vaq/internal/calib"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestQVTimeSweep checks shape, bounds, the recompile trigger, and
// determinism across worker counts.
func TestQVTimeSweep(t *testing.T) {
	cfg := Config{Seed: 2019, Trials: 100}
	rows, err := QVTimeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cycles := qvtimeDays * calib.ZooCyclesPerDay
	if want := len(calib.Tiers()) * cycles; len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}

	recompiles := map[calib.VarianceTier]int{}
	recovered := map[calib.VarianceTier]float64{}
	for _, r := range rows {
		if r.StalePST <= 0 || r.StalePST > 1 || r.AwarePST <= 0 || r.AwarePST > 1 {
			t.Errorf("%s cycle %d: PSTs out of range: %+v", r.Tier, r.Cycle, r)
		}
		if r.StaleHOP < 0.5 || r.StaleHOP > 1 || r.AwareHOP < 0.5 || r.AwareHOP > 1 {
			t.Errorf("%s cycle %d: HOPs out of range: %+v", r.Tier, r.Cycle, r)
		}
		if got := r.AwarePST - r.StalePST; got != r.Recovered {
			t.Errorf("%s cycle %d: Recovered %v != AwarePST-StalePST %v", r.Tier, r.Cycle, r.Recovered, got)
		}
		if r.Cycle == 0 && (r.Score != 0 || r.Recompiled) {
			t.Errorf("%s cycle 0: expected no detection before the second cycle: %+v", r.Tier, r)
		}
		if r.Recompiled {
			recompiles[r.Tier]++
		}
		recovered[r.Tier] += r.Recovered / float64(cycles)
	}
	for _, tier := range calib.Tiers() {
		if recompiles[tier] == 0 {
			t.Errorf("tier %s: drift never triggered a recompile over %d cycles", tier, cycles)
		}
	}
	// The experiment's headline: on the high-variance fleet the
	// drift-triggered recompile recovers PST that the stale mapping
	// loses; low-variance fleets have little to recover.
	if recovered[calib.TierHigh] <= 0.01 {
		t.Errorf("high tier mean recovered PST %.4f, want > 0.01", recovered[calib.TierHigh])
	}
	if recovered[calib.TierHigh] <= recovered[calib.TierLow] {
		t.Errorf("recovery should grow with variance: high %.4f <= low %.4f",
			recovered[calib.TierHigh], recovered[calib.TierLow])
	}

	for _, workers := range []int{-1, 1, 2} {
		wcfg := cfg
		wcfg.Workers = workers
		again, err := QVTimeSweep(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			if rows[i] != again[i] {
				t.Fatalf("row %d differs at workers=%d:\nbase %+v\ngot  %+v", i, workers, rows[i], again[i])
			}
		}
	}
}

// TestQVTimeGolden pins the rendered table byte-for-byte; refresh with
// `go test ./internal/experiments -run QVTimeGolden -update`.
func TestQVTimeGolden(t *testing.T) {
	rows, err := QVTimeSweep(Config{Seed: 2019, Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(QVTimeTable(rows).String())
	path := filepath.Join("testdata", "golden", "qvtime.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (rerun with -update): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("qvtime table drifted from golden %s (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}
