package experiments

import (
	"fmt"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/metrics"
	"vaq/internal/parallel"
	"vaq/internal/route"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

// The scale experiment asks the paper's question at sizes the paper
// could not reach: does variability-aware policy still pay off at 100,
// 399 and 1000 qubits, and how does the payoff move with the spatial
// variance of the machine? Each cell compares, on one synthetic
// heavy-hex fleet:
//
//   - baseline: interaction-aware greedy allocation + hop-objective
//     SABRE (variability-blind movement), and
//   - aware: VQA allocation + reliability-objective SABRE.
//
// Both sides route with SABRE so the comparison isolates what
// variability-awareness buys, not what the router's asymptotics cost.
// Scores are the closed-form analytic PST on the fleet's mean snapshot,
// so the table is exactly reproducible at any -workers setting.

// ScaleRow is one (device size, variance tier) cell.
type ScaleRow struct {
	Qubits        int
	Tier          calib.VarianceTier
	BaselinePST   float64
	AwarePST      float64
	Relative      float64 // AwarePST / BaselinePST
	BaselineSwaps int
	AwareSwaps    int
}

// scaleSizes are the heavy-hex device sizes swept by ScaleSweep.
var scaleSizes = []int{20, 100, 399, 1000}

// ScaleSweep runs the tier × size grid on a fixed 16-qubit
// Bernstein–Vazirani program — deep enough that allocation and
// movement quality both matter, shallow enough that success
// probabilities stay in a readable range at a 4.3% mean CX error.
func ScaleSweep(cfg Config) ([]ScaleRow, error) {
	cfg = cfg.withDefaults()
	prog := workloads.BV(16)
	scfg := sim.Config{Kernel: cfg.Kernel}

	type cell struct {
		n    int
		tier calib.VarianceTier
	}
	var cells []cell
	for _, n := range scaleSizes {
		for _, tier := range calib.Tiers() {
			cells = append(cells, cell{n, tier})
		}
	}
	rows, err := parallel.Map(cfg.Workers, len(cells), func(i int) (ScaleRow, error) {
		c := cells[i]
		name := fmt.Sprintf("heavy-hex-%d-%s", c.n, c.tier)
		arch, err := calib.ZooArchive(name, cfg.Seed)
		if err != nil {
			return ScaleRow{}, err
		}
		d, err := device.New(arch.Topo, arch.MustMean())
		if err != nil {
			return ScaleRow{}, err
		}
		base, err := core.Compile(d, prog, core.Options{
			Policy: core.Baseline, Movement: route.MovementSabreHops,
		})
		if err != nil {
			return ScaleRow{}, fmt.Errorf("scale %s baseline: %w", name, err)
		}
		aware, err := core.Compile(d, prog, core.Options{
			Policy: core.VQAVQM, Movement: route.MovementSabre,
		})
		if err != nil {
			return ScaleRow{}, fmt.Errorf("scale %s aware: %w", name, err)
		}
		basePST := sim.AnalyticPST(d, base.Routed.Physical, scfg)
		awarePST := sim.AnalyticPST(d, aware.Routed.Physical, scfg)
		return ScaleRow{
			Qubits:        c.n,
			Tier:          c.tier,
			BaselinePST:   basePST,
			AwarePST:      awarePST,
			Relative:      metrics.Relative(awarePST, basePST),
			BaselineSwaps: base.Swaps(),
			AwareSwaps:    aware.Swaps(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ScaleTable renders the sweep in size-major order.
func ScaleTable(rows []ScaleRow) Table {
	t := Table{
		Title:   "Scale: variability-aware vs baseline on heavy-hex fleets (BV-16, analytic PST)",
		Header:  []string{"qubits", "tier", "baseline PST", "aware PST", "relative", "swaps base/aware"},
		Caption: "both sides route with SABRE; relative = aware/baseline on the mean snapshot",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Qubits), string(r.Tier),
			f3(r.BaselinePST), f3(r.AwarePST), x2(r.Relative),
			fmt.Sprintf("%d/%d", r.BaselineSwaps, r.AwareSwaps),
		})
	}
	return t
}
