package experiments

import (
	"context"
	"fmt"
	"math"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/metrics"
	"vaq/internal/parallel"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

// runLegacy adapts a Runner-based experiment to the original
// (Config) -> (rows, error) signature: no cancellation, no checkpoint,
// and any quarantined unit surfaces as an error alongside the
// surviving rows.
func runLegacy[T any](cfg Config, fn func(*Runner) (T, error)) (T, error) {
	r := NewRunner(context.Background(), cfg, nil)
	v, err := fn(r)
	if err == nil {
		err = r.Report().Err()
	}
	return v, err
}

// compactRows drops the slots of skipped or quarantined units, keeping
// the survivors in unit order.
func compactRows[T any](rows []*T) []T {
	out := make([]T, 0, len(rows))
	for _, p := range rows {
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Table1Row is one benchmark's characteristics (paper Table 1).
type Table1Row struct {
	Name        string
	Description string
	Qubits      int
	TotalInst   int
	SwapInst    int // SWAPs inserted by the baseline compiler on IBM-Q20
}

// Table1Benchmarks reproduces Table 1: for each workload, its qubit count,
// instruction count, and the SWAPs the baseline compiler inserts on the
// IBM-Q20 model.
func Table1Benchmarks(cfg Config) ([]Table1Row, error) {
	return runLegacy(cfg, Table1BenchmarksCtx)
}

// Table1BenchmarksCtx is Table1Benchmarks decomposed into per-workload
// units under r's cancellation, quarantine, and checkpoint discipline.
func Table1BenchmarksCtx(r *Runner) ([]Table1Row, error) {
	cfg := r.Config().withDefaults()
	d := cfg.meanQ20()
	suite := workloads.Table1Suite()
	rows := make([]*Table1Row, len(suite))
	err := r.collectUnits(len(suite), func(i int) {
		spec := suite[i]
		key := UnitKey{Experiment: "table1", Workload: spec.Name, Day: -1, Policy: "baseline"}
		if row, ok := RunUnit(r, key, func() (Table1Row, error) {
			comp, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.Baseline})
			if err != nil {
				return Table1Row{}, fmt.Errorf("table1 %s: %w", spec.Name, err)
			}
			return Table1Row{
				Name:        spec.Name,
				Description: spec.Description,
				Qubits:      spec.Circuit.NumQubits,
				TotalInst:   spec.Circuit.Stats().Total,
				SwapInst:    comp.Swaps(),
			}, nil
		}); ok {
			rows[i] = &row
		}
	})
	return compactRows(rows), err
}

// Table1Table renders Table 1.
func Table1Table(rows []Table1Row) Table {
	t := Table{
		Title:   "Table 1: benchmark characteristics",
		Header:  []string{"workload", "description", "qubits", "total inst", "swap inst"},
		Caption: "paper swap counts: alu 19, bv-16 7, bv-20 10, qft-12 35, qft-14 53, rnd-SD 24, rnd-LD 35",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Description, fmt.Sprint(r.Qubits), fmt.Sprint(r.TotalInst), fmt.Sprint(r.SwapInst),
		})
	}
	return t
}

// Fig12Row is one workload's relative PST under the movement policies.
type Fig12Row struct {
	Name        string
	BaselinePST float64
	RelVQM      float64 // VQM / baseline
	RelVQMHop   float64 // hop-limited VQM (MAH=4) / baseline
}

// Fig12VQM reproduces Figure 12: the PST of Variation-Aware Qubit Movement
// and its hop-limited variant, normalized to the SWAP-minimizing baseline,
// over the seven Table 1 workloads on the IBM-Q20 model.
func Fig12VQM(cfg Config) ([]Fig12Row, error) {
	return runLegacy(cfg, Fig12VQMCtx)
}

// Fig12VQMCtx is Fig12VQM decomposed into per-workload units.
func Fig12VQMCtx(r *Runner) ([]Fig12Row, error) {
	cfg := r.Config().withDefaults()
	d := cfg.meanQ20()
	suite := workloads.Table1Suite()
	rows := make([]*Fig12Row, len(suite))
	err := r.collectUnits(len(suite), func(i int) {
		spec := suite[i]
		key := UnitKey{Experiment: "fig12", Workload: spec.Name, Day: -1, Policy: "vqm"}
		if row, ok := RunUnit(r, key, func() (Fig12Row, error) {
			base, _, err := cfg.pst(d, spec.Circuit, core.Baseline, cfg.Trials, cfg.Seed)
			if err != nil {
				return Fig12Row{}, fmt.Errorf("fig12 %s: %w", spec.Name, err)
			}
			vqm, _, err := cfg.pst(d, spec.Circuit, core.VQM, cfg.Trials, cfg.Seed)
			if err != nil {
				return Fig12Row{}, err
			}
			hop, _, err := cfg.pst(d, spec.Circuit, core.VQMHop, cfg.Trials, cfg.Seed)
			if err != nil {
				return Fig12Row{}, err
			}
			return Fig12Row{
				Name:        spec.Name,
				BaselinePST: base,
				RelVQM:      metrics.Relative(vqm, base),
				RelVQMHop:   metrics.Relative(hop, base),
			}, nil
		}); ok {
			rows[i] = &row
		}
	})
	return compactRows(rows), err
}

// Fig12Table renders Figure 12.
func Fig12Table(rows []Fig12Row) Table {
	t := Table{
		Title:   "Figure 12: relative PST of VQM (normalized to baseline)",
		Header:  []string{"workload", "baseline PST", "VQM", "VQM (MAH=4)"},
		Caption: "paper: all workloads improve; qft/rnd-LD gain most; hop-limited ≈ unlimited",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, f3(r.BaselinePST), x2(r.RelVQM), x2(r.RelVQMHop)})
	}
	return t
}

// Fig13Row is one workload's relative PST across all policies.
type Fig13Row struct {
	Name        string
	BaselinePST float64
	// Native statistics over cfg.NativeConfigs random configurations,
	// normalized to the baseline.
	NativeAvg, NativeMin, NativeMax float64
	RelVQM                          float64
	RelVQAVQM                       float64
}

// Fig13Policies reproduces Figure 13: PST of the IBM-native-style
// compiler (32 random configurations; avg and min–max), the baseline, VQM,
// and VQA+VQM, normalized to the baseline.
func Fig13Policies(cfg Config) ([]Fig13Row, error) {
	return runLegacy(cfg, Fig13PoliciesCtx)
}

// Fig13PoliciesCtx is Fig13Policies decomposed into per-workload units.
func Fig13PoliciesCtx(r *Runner) ([]Fig13Row, error) {
	cfg := r.Config().withDefaults()
	d := cfg.meanQ20()
	suite := workloads.Table1Suite()
	rows := make([]*Fig13Row, len(suite))
	err := r.collectUnits(len(suite), func(i int) {
		spec := suite[i]
		key := UnitKey{Experiment: "fig13", Workload: spec.Name, Day: -1, Policy: "all"}
		if row, ok := RunUnit(r, key, func() (Fig13Row, error) {
			base, _, err := cfg.pst(d, spec.Circuit, core.Baseline, cfg.Trials, cfg.Seed)
			if err != nil {
				return Fig13Row{}, fmt.Errorf("fig13 %s: %w", spec.Name, err)
			}
			vqm, _, err := cfg.pst(d, spec.Circuit, core.VQM, cfg.Trials, cfg.Seed)
			if err != nil {
				return Fig13Row{}, err
			}
			full, _, err := cfg.pst(d, spec.Circuit, core.VQAVQM, cfg.Trials, cfg.Seed)
			if err != nil {
				return Fig13Row{}, err
			}
			// The native comparator's random configurations are independent,
			// so they fan out too; Map keeps them in configuration order.
			natives, err := parallel.Map(cfg.Workers, cfg.NativeConfigs, func(n int) (float64, error) {
				p, _, err := cfg.pst(d, spec.Circuit, core.Native, cfg.NativeTrials, cfg.Seed+int64(n))
				if err != nil {
					return 0, err
				}
				return metrics.Relative(p, base), nil
			})
			if err != nil {
				return Fig13Row{}, err
			}
			lo, hi := metrics.MinMax(natives)
			return Fig13Row{
				Name:        spec.Name,
				BaselinePST: base,
				NativeAvg:   metrics.Mean(natives),
				NativeMin:   lo,
				NativeMax:   hi,
				RelVQM:      metrics.Relative(vqm, base),
				RelVQAVQM:   metrics.Relative(full, base),
			}, nil
		}); ok {
			rows[i] = &row
		}
	})
	return compactRows(rows), err
}

// Fig13Table renders Figure 13.
func Fig13Table(rows []Fig13Row) Table {
	t := Table{
		Title:   "Figure 13: relative PST by policy (normalized to baseline)",
		Header:  []string{"workload", "native avg", "native min-max", "baseline", "VQM", "VQA+VQM"},
		Caption: "paper: VQA+VQM up to 1.7x over baseline; baseline ≈4x over native",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, x2(r.NativeAvg),
			fmt.Sprintf("%.2f-%.2f", r.NativeMin, r.NativeMax),
			"1.00x", x2(r.RelVQM), x2(r.RelVQAVQM),
		})
	}
	return t
}

// Fig14Point is one day's relative PST for bv-16.
type Fig14Point struct {
	Day         int
	BaselinePST float64
	VQAVQMPST   float64
	Relative    float64
	// LinkErrorCoV is the day's coefficient of variation of link errors —
	// the paper's "high variation days see higher benefit" x-axis proxy.
	LinkErrorCoV float64
}

// Fig14Result holds the 52-day series and its average.
type Fig14Result struct {
	Points  []Fig14Point
	Average float64
}

// Fig14PerDay reproduces Figure 14: the relative PST improvement of
// VQA+VQM for bv-16 recompiled against each day's characterization data.
func Fig14PerDay(cfg Config) (Fig14Result, error) {
	return runLegacy(cfg, Fig14PerDayCtx)
}

// Fig14PerDayCtx is Fig14PerDay decomposed into per-day units — the
// widest fan-out in the suite (52 days, each recompiled independently),
// and the main beneficiary of checkpointed resume.
func Fig14PerDayCtx(r *Runner) (Fig14Result, error) {
	cfg := r.Config().withDefaults()
	arch := cfg.archive()
	prog := workloads.BV(16)
	trials := cfg.Trials / 4
	if trials < 20000 {
		trials = 20000
	}
	var res Fig14Result
	points := make([]*Fig14Point, arch.Days())
	err := r.collectUnits(arch.Days(), func(day int) {
		key := UnitKey{Experiment: "fig14", Workload: "bv-16", Day: day, Policy: "vqa+vqm"}
		if p, ok := RunUnit(r, key, func() (*Fig14Point, error) {
			snaps := arch.DaySnapshots(day)
			if len(snaps) == 0 {
				return nil, nil
			}
			d, err := device.New(arch.Topo, snaps[0])
			if err != nil {
				return nil, err
			}
			base, _, err := cfg.pst(d, prog, core.Baseline, trials, cfg.Seed+int64(day))
			if err != nil {
				return nil, fmt.Errorf("fig14 day %d: %w", day, err)
			}
			full, _, err := cfg.pst(d, prog, core.VQAVQM, trials, cfg.Seed+int64(day))
			if err != nil {
				return nil, err
			}
			return &Fig14Point{
				Day:          day,
				BaselinePST:  base,
				VQAVQMPST:    full,
				Relative:     metrics.Relative(full, base),
				LinkErrorCoV: summaryOfLinkRates(snaps[0].LinkRates()),
			}, nil
		}); ok {
			points[day] = p
		}
	})
	for _, p := range points {
		if p != nil {
			res.Points = append(res.Points, *p)
		}
	}
	rels := make([]float64, len(res.Points))
	for i, p := range res.Points {
		rels[i] = p.Relative
	}
	res.Average = metrics.Mean(rels)
	return res, err
}

func summaryOfLinkRates(rates []float64) float64 {
	m := metrics.Mean(rates)
	if m == 0 {
		return 0
	}
	varSum := 0.0
	for _, r := range rates {
		d := r - m
		varSum += d * d
	}
	return math.Sqrt(varSum/float64(len(rates))) / m
}

// Fig14Table renders the Figure 14 summary (first/last days plus the
// average; full series in the result).
func Fig14Table(r Fig14Result) Table {
	t := Table{
		Title:   "Figure 14: per-day relative PST of VQA+VQM for bv-16",
		Header:  []string{"day", "baseline PST", "VQA+VQM PST", "relative", "link-error CoV"},
		Caption: fmt.Sprintf("average benefit across %d days: %.2fx (paper: benefit tracks daily variation)", len(r.Points), r.Average),
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Day + 1), f3(p.BaselinePST), f3(p.VQAVQMPST), x2(p.Relative), f2(p.LinkErrorCoV),
		})
	}
	return t
}

// Table2Row is one error-scaling configuration (paper Table 2).
type Table2Row struct {
	Label      string
	MeanFactor float64
	CovFactor  float64
	Relative   float64
}

// Table2ErrorScaling reproduces Table 2: the relative PST benefit of
// VQA+VQM for bv-16 as error rates scale down 10× with the base and
// doubled coefficient of variation.
//
// Methodology notes: (1) coherence errors are not part of the scaled
// error population (the paper scales gate error rates), so they are
// disabled — otherwise the unscaled decoherence floor dominates once gate
// errors drop 10x; (2) PSTs are computed analytically because at
// 10x-lower errors the policies differ by fractions of a percent, far
// below Monte-Carlo resolution at any practical trial budget; (3) each
// row is the geometric mean over several archive seeds, because a single
// archive realization does not expose the variation trend.
func Table2ErrorScaling(cfg Config) ([]Table2Row, error) {
	return runLegacy(cfg, Table2ErrorScalingCtx)
}

// Table2ErrorScalingCtx is Table2ErrorScaling decomposed into one unit
// per scaling configuration (the unit's scope spans its seven archive
// realizations).
func Table2ErrorScalingCtx(r *Runner) ([]Table2Row, error) {
	cfg := r.Config().withDefaults()
	prog := workloads.BV(16)
	configs := []Table2Row{
		{Label: "1x, Cov-Base", MeanFactor: 1, CovFactor: 1},
		{Label: "10x lower, Cov-Base", MeanFactor: 0.1, CovFactor: 1},
		{Label: "10x lower, 2*Cov-Base", MeanFactor: 0.1, CovFactor: 2},
	}
	const archives = 7
	scfg := sim.Config{DisableCoherence: true, Kernel: cfg.Kernel}
	rows := make([]*Table2Row, len(configs))
	err := r.collectUnits(len(configs), func(i int) {
		key := UnitKey{Experiment: "table2", Workload: "bv-16", Day: -1, Policy: configs[i].Label}
		if rel, ok := RunUnit(r, key, func() (float64, error) {
			// The archive realizations are independent; fan them out and keep
			// seed order so the geomean sees a stable sequence.
			rels, err := parallel.Map(cfg.Workers, archives, func(a int) (float64, error) {
				arch := calib.Generate(calib.DefaultQ20Config(cfg.Seed + int64(a)))
				d := device.MustNew(arch.Topo, arch.MustMean())
				if configs[i].MeanFactor != 1 || configs[i].CovFactor != 1 {
					d = d.Scale(configs[i].MeanFactor, configs[i].CovFactor)
				}
				baseComp, err := core.Compile(d, prog, core.Options{Policy: core.Baseline})
				if err != nil {
					return 0, fmt.Errorf("table2 %s: %w", configs[i].Label, err)
				}
				fullComp, err := core.Compile(d, prog, core.Options{Policy: core.VQAVQM})
				if err != nil {
					return 0, err
				}
				basePST := sim.AnalyticPST(d, baseComp.Routed.Physical, scfg)
				fullPST := sim.AnalyticPST(d, fullComp.Routed.Physical, scfg)
				return metrics.Relative(fullPST, basePST), nil
			})
			if err != nil {
				return 0, err
			}
			return metrics.GeoMean(rels), nil
		}); ok {
			row := configs[i]
			row.Relative = rel
			rows[i] = &row
		}
	})
	return compactRows(rows), err
}

// Table2Table renders Table 2.
func Table2Table(rows []Table2Row) Table {
	t := Table{
		Title:   "Table 2: sensitivity of VQA+VQM to error scaling (bv-16)",
		Header:  []string{"error rate", "CoV", "relative PST benefit"},
		Caption: "paper: 1.43x / 2.02x / 2.59x — benefit grows with relative variation",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Label, fmt.Sprintf("%gx", r.CovFactor), x2(r.Relative)})
	}
	return t
}

// Table3Row is one IBM-Q5 kernel (paper Table 3).
type Table3Row struct {
	Name        string
	BaselinePST float64
	VQAVQMPST   float64
	Relative    float64
}

// Table3Result holds the Table 3 rows and geomean.
type Table3Result struct {
	Rows    []Table3Row
	GeoMean float64
}

// Table3IBMQ5 reproduces Table 3 under the documented substitution: the
// physical IBM-Q5 is replaced by the fault-injection simulator configured
// with the Tenerife topology and the paper's quoted error figures (mean 2Q
// error 4.2%, worst link 12%), 4096 trials per program as in the paper.
func Table3IBMQ5(cfg Config) (Table3Result, error) {
	return runLegacy(cfg, Table3IBMQ5Ctx)
}

// Table3IBMQ5Ctx is Table3IBMQ5 decomposed into per-kernel units.
func Table3IBMQ5Ctx(r *Runner) (Table3Result, error) {
	cfg := r.Config().withDefaults()
	d := cfg.q5()
	var res Table3Result
	suite := workloads.Q5Suite()
	rows := make([]*Table3Row, len(suite))
	err := r.collectUnits(len(suite), func(i int) {
		spec := suite[i]
		key := UnitKey{Experiment: "table3", Workload: spec.Name, Day: -1, Policy: "vqa+vqm"}
		if row, ok := RunUnit(r, key, func() (Table3Row, error) {
			base, _, err := cfg.pst(d, spec.Circuit, core.Baseline, cfg.Q5Trials, cfg.Seed)
			if err != nil {
				return Table3Row{}, fmt.Errorf("table3 %s: %w", spec.Name, err)
			}
			full, _, err := cfg.pst(d, spec.Circuit, core.VQAVQM, cfg.Q5Trials, cfg.Seed)
			if err != nil {
				return Table3Row{}, err
			}
			return Table3Row{
				Name: spec.Name, BaselinePST: base, VQAVQMPST: full,
				Relative: metrics.Relative(full, base),
			}, nil
		}); ok {
			rows[i] = &row
		}
	})
	res.Rows = compactRows(rows)
	rels := make([]float64, len(res.Rows))
	for i, row := range res.Rows {
		rels[i] = row.Relative
	}
	res.GeoMean = metrics.GeoMean(rels)
	return res, err
}

// Table3Table renders Table 3.
func Table3Table(r Table3Result) Table {
	t := Table{
		Title:   "Table 3: PST on the IBM-Q5 model (4096 trials)",
		Header:  []string{"benchmark", "PST (baseline)", "PST (VQA+VQM)", "relative"},
		Caption: fmt.Sprintf("geomean: %.2fx (paper: 1.36x; up to 1.9x on TriSwap)", r.GeoMean),
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Name, f2(row.BaselinePST), f2(row.VQAVQMPST), x2(row.Relative)})
	}
	return t
}
