package experiments

import (
	"fmt"
	"math"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/metrics"
	"vaq/internal/parallel"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

// Table1Row is one benchmark's characteristics (paper Table 1).
type Table1Row struct {
	Name        string
	Description string
	Qubits      int
	TotalInst   int
	SwapInst    int // SWAPs inserted by the baseline compiler on IBM-Q20
}

// Table1Benchmarks reproduces Table 1: for each workload, its qubit count,
// instruction count, and the SWAPs the baseline compiler inserts on the
// IBM-Q20 model.
func Table1Benchmarks(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	d := cfg.meanQ20()
	suite := workloads.Table1Suite()
	return parallel.Map(cfg.Workers, len(suite), func(i int) (Table1Row, error) {
		spec := suite[i]
		comp, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.Baseline})
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1 %s: %w", spec.Name, err)
		}
		return Table1Row{
			Name:        spec.Name,
			Description: spec.Description,
			Qubits:      spec.Circuit.NumQubits,
			TotalInst:   spec.Circuit.Stats().Total,
			SwapInst:    comp.Swaps(),
		}, nil
	})
}

// Table1Table renders Table 1.
func Table1Table(rows []Table1Row) Table {
	t := Table{
		Title:   "Table 1: benchmark characteristics",
		Header:  []string{"workload", "description", "qubits", "total inst", "swap inst"},
		Caption: "paper swap counts: alu 19, bv-16 7, bv-20 10, qft-12 35, qft-14 53, rnd-SD 24, rnd-LD 35",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, r.Description, fmt.Sprint(r.Qubits), fmt.Sprint(r.TotalInst), fmt.Sprint(r.SwapInst),
		})
	}
	return t
}

// Fig12Row is one workload's relative PST under the movement policies.
type Fig12Row struct {
	Name        string
	BaselinePST float64
	RelVQM      float64 // VQM / baseline
	RelVQMHop   float64 // hop-limited VQM (MAH=4) / baseline
}

// Fig12VQM reproduces Figure 12: the PST of Variation-Aware Qubit Movement
// and its hop-limited variant, normalized to the SWAP-minimizing baseline,
// over the seven Table 1 workloads on the IBM-Q20 model.
func Fig12VQM(cfg Config) ([]Fig12Row, error) {
	cfg = cfg.withDefaults()
	d := cfg.meanQ20()
	suite := workloads.Table1Suite()
	return parallel.Map(cfg.Workers, len(suite), func(i int) (Fig12Row, error) {
		spec := suite[i]
		base, _, err := cfg.pst(d, spec.Circuit, core.Baseline, cfg.Trials, cfg.Seed)
		if err != nil {
			return Fig12Row{}, fmt.Errorf("fig12 %s: %w", spec.Name, err)
		}
		vqm, _, err := cfg.pst(d, spec.Circuit, core.VQM, cfg.Trials, cfg.Seed)
		if err != nil {
			return Fig12Row{}, err
		}
		hop, _, err := cfg.pst(d, spec.Circuit, core.VQMHop, cfg.Trials, cfg.Seed)
		if err != nil {
			return Fig12Row{}, err
		}
		return Fig12Row{
			Name:        spec.Name,
			BaselinePST: base,
			RelVQM:      metrics.Relative(vqm, base),
			RelVQMHop:   metrics.Relative(hop, base),
		}, nil
	})
}

// Fig12Table renders Figure 12.
func Fig12Table(rows []Fig12Row) Table {
	t := Table{
		Title:   "Figure 12: relative PST of VQM (normalized to baseline)",
		Header:  []string{"workload", "baseline PST", "VQM", "VQM (MAH=4)"},
		Caption: "paper: all workloads improve; qft/rnd-LD gain most; hop-limited ≈ unlimited",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, f3(r.BaselinePST), x2(r.RelVQM), x2(r.RelVQMHop)})
	}
	return t
}

// Fig13Row is one workload's relative PST across all policies.
type Fig13Row struct {
	Name        string
	BaselinePST float64
	// Native statistics over cfg.NativeConfigs random configurations,
	// normalized to the baseline.
	NativeAvg, NativeMin, NativeMax float64
	RelVQM                          float64
	RelVQAVQM                       float64
}

// Fig13Policies reproduces Figure 13: PST of the IBM-native-style
// compiler (32 random configurations; avg and min–max), the baseline, VQM,
// and VQA+VQM, normalized to the baseline.
func Fig13Policies(cfg Config) ([]Fig13Row, error) {
	cfg = cfg.withDefaults()
	d := cfg.meanQ20()
	suite := workloads.Table1Suite()
	return parallel.Map(cfg.Workers, len(suite), func(i int) (Fig13Row, error) {
		spec := suite[i]
		base, _, err := cfg.pst(d, spec.Circuit, core.Baseline, cfg.Trials, cfg.Seed)
		if err != nil {
			return Fig13Row{}, fmt.Errorf("fig13 %s: %w", spec.Name, err)
		}
		vqm, _, err := cfg.pst(d, spec.Circuit, core.VQM, cfg.Trials, cfg.Seed)
		if err != nil {
			return Fig13Row{}, err
		}
		full, _, err := cfg.pst(d, spec.Circuit, core.VQAVQM, cfg.Trials, cfg.Seed)
		if err != nil {
			return Fig13Row{}, err
		}
		// The native comparator's random configurations are independent,
		// so they fan out too; Map keeps them in configuration order.
		natives, err := parallel.Map(cfg.Workers, cfg.NativeConfigs, func(n int) (float64, error) {
			p, _, err := cfg.pst(d, spec.Circuit, core.Native, cfg.NativeTrials, cfg.Seed+int64(n))
			if err != nil {
				return 0, err
			}
			return metrics.Relative(p, base), nil
		})
		if err != nil {
			return Fig13Row{}, err
		}
		lo, hi := metrics.MinMax(natives)
		return Fig13Row{
			Name:        spec.Name,
			BaselinePST: base,
			NativeAvg:   metrics.Mean(natives),
			NativeMin:   lo,
			NativeMax:   hi,
			RelVQM:      metrics.Relative(vqm, base),
			RelVQAVQM:   metrics.Relative(full, base),
		}, nil
	})
}

// Fig13Table renders Figure 13.
func Fig13Table(rows []Fig13Row) Table {
	t := Table{
		Title:   "Figure 13: relative PST by policy (normalized to baseline)",
		Header:  []string{"workload", "native avg", "native min-max", "baseline", "VQM", "VQA+VQM"},
		Caption: "paper: VQA+VQM up to 1.7x over baseline; baseline ≈4x over native",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, x2(r.NativeAvg),
			fmt.Sprintf("%.2f-%.2f", r.NativeMin, r.NativeMax),
			"1.00x", x2(r.RelVQM), x2(r.RelVQAVQM),
		})
	}
	return t
}

// Fig14Point is one day's relative PST for bv-16.
type Fig14Point struct {
	Day         int
	BaselinePST float64
	VQAVQMPST   float64
	Relative    float64
	// LinkErrorCoV is the day's coefficient of variation of link errors —
	// the paper's "high variation days see higher benefit" x-axis proxy.
	LinkErrorCoV float64
}

// Fig14Result holds the 52-day series and its average.
type Fig14Result struct {
	Points  []Fig14Point
	Average float64
}

// Fig14PerDay reproduces Figure 14: the relative PST improvement of
// VQA+VQM for bv-16 recompiled against each day's characterization data.
func Fig14PerDay(cfg Config) (Fig14Result, error) {
	cfg = cfg.withDefaults()
	arch := cfg.archive()
	prog := workloads.BV(16)
	trials := cfg.Trials / 4
	if trials < 20000 {
		trials = 20000
	}
	var res Fig14Result
	// Every day recompiles against its own snapshot independently — the
	// widest fan-out in the suite (52 days × 2 policies).
	points, err := parallel.Map(cfg.Workers, arch.Days(), func(day int) (*Fig14Point, error) {
		snaps := arch.DaySnapshots(day)
		if len(snaps) == 0 {
			return nil, nil
		}
		d, err := device.New(arch.Topo, snaps[0])
		if err != nil {
			return nil, err
		}
		base, _, err := cfg.pst(d, prog, core.Baseline, trials, cfg.Seed+int64(day))
		if err != nil {
			return nil, fmt.Errorf("fig14 day %d: %w", day, err)
		}
		full, _, err := cfg.pst(d, prog, core.VQAVQM, trials, cfg.Seed+int64(day))
		if err != nil {
			return nil, err
		}
		return &Fig14Point{
			Day:          day,
			BaselinePST:  base,
			VQAVQMPST:    full,
			Relative:     metrics.Relative(full, base),
			LinkErrorCoV: summaryOfLinkRates(snaps[0].LinkRates()),
		}, nil
	})
	if err != nil {
		return res, err
	}
	for _, p := range points {
		if p != nil {
			res.Points = append(res.Points, *p)
		}
	}
	rels := make([]float64, len(res.Points))
	for i, p := range res.Points {
		rels[i] = p.Relative
	}
	res.Average = metrics.Mean(rels)
	return res, nil
}

func summaryOfLinkRates(rates []float64) float64 {
	m := metrics.Mean(rates)
	if m == 0 {
		return 0
	}
	varSum := 0.0
	for _, r := range rates {
		d := r - m
		varSum += d * d
	}
	return math.Sqrt(varSum/float64(len(rates))) / m
}

// Fig14Table renders the Figure 14 summary (first/last days plus the
// average; full series in the result).
func Fig14Table(r Fig14Result) Table {
	t := Table{
		Title:   "Figure 14: per-day relative PST of VQA+VQM for bv-16",
		Header:  []string{"day", "baseline PST", "VQA+VQM PST", "relative", "link-error CoV"},
		Caption: fmt.Sprintf("average benefit across %d days: %.2fx (paper: benefit tracks daily variation)", len(r.Points), r.Average),
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Day + 1), f3(p.BaselinePST), f3(p.VQAVQMPST), x2(p.Relative), f2(p.LinkErrorCoV),
		})
	}
	return t
}

// Table2Row is one error-scaling configuration (paper Table 2).
type Table2Row struct {
	Label      string
	MeanFactor float64
	CovFactor  float64
	Relative   float64
}

// Table2ErrorScaling reproduces Table 2: the relative PST benefit of
// VQA+VQM for bv-16 as error rates scale down 10× with the base and
// doubled coefficient of variation.
//
// Methodology notes: (1) coherence errors are not part of the scaled
// error population (the paper scales gate error rates), so they are
// disabled — otherwise the unscaled decoherence floor dominates once gate
// errors drop 10x; (2) PSTs are computed analytically because at
// 10x-lower errors the policies differ by fractions of a percent, far
// below Monte-Carlo resolution at any practical trial budget; (3) each
// row is the geometric mean over several archive seeds, because a single
// archive realization does not expose the variation trend.
func Table2ErrorScaling(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	prog := workloads.BV(16)
	configs := []Table2Row{
		{Label: "1x, Cov-Base", MeanFactor: 1, CovFactor: 1},
		{Label: "10x lower, Cov-Base", MeanFactor: 0.1, CovFactor: 1},
		{Label: "10x lower, 2*Cov-Base", MeanFactor: 0.1, CovFactor: 2},
	}
	const archives = 7
	scfg := sim.Config{DisableCoherence: true}
	for i := range configs {
		// The archive realizations are independent; fan them out and keep
		// seed order so the geomean sees a stable sequence.
		rels, err := parallel.Map(cfg.Workers, archives, func(a int) (float64, error) {
			arch := calib.Generate(calib.DefaultQ20Config(cfg.Seed + int64(a)))
			d := device.MustNew(arch.Topo, arch.Mean())
			if configs[i].MeanFactor != 1 || configs[i].CovFactor != 1 {
				d = d.Scale(configs[i].MeanFactor, configs[i].CovFactor)
			}
			baseComp, err := core.Compile(d, prog, core.Options{Policy: core.Baseline})
			if err != nil {
				return 0, fmt.Errorf("table2 %s: %w", configs[i].Label, err)
			}
			fullComp, err := core.Compile(d, prog, core.Options{Policy: core.VQAVQM})
			if err != nil {
				return 0, err
			}
			basePST := sim.AnalyticPST(d, baseComp.Routed.Physical, scfg)
			fullPST := sim.AnalyticPST(d, fullComp.Routed.Physical, scfg)
			return metrics.Relative(fullPST, basePST), nil
		})
		if err != nil {
			return nil, err
		}
		configs[i].Relative = metrics.GeoMean(rels)
	}
	return configs, nil
}

// Table2Table renders Table 2.
func Table2Table(rows []Table2Row) Table {
	t := Table{
		Title:   "Table 2: sensitivity of VQA+VQM to error scaling (bv-16)",
		Header:  []string{"error rate", "CoV", "relative PST benefit"},
		Caption: "paper: 1.43x / 2.02x / 2.59x — benefit grows with relative variation",
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Label, fmt.Sprintf("%gx", r.CovFactor), x2(r.Relative)})
	}
	return t
}

// Table3Row is one IBM-Q5 kernel (paper Table 3).
type Table3Row struct {
	Name        string
	BaselinePST float64
	VQAVQMPST   float64
	Relative    float64
}

// Table3Result holds the Table 3 rows and geomean.
type Table3Result struct {
	Rows    []Table3Row
	GeoMean float64
}

// Table3IBMQ5 reproduces Table 3 under the documented substitution: the
// physical IBM-Q5 is replaced by the fault-injection simulator configured
// with the Tenerife topology and the paper's quoted error figures (mean 2Q
// error 4.2%, worst link 12%), 4096 trials per program as in the paper.
func Table3IBMQ5(cfg Config) (Table3Result, error) {
	cfg = cfg.withDefaults()
	d := cfg.q5()
	var res Table3Result
	suite := workloads.Q5Suite()
	rows, err := parallel.Map(cfg.Workers, len(suite), func(i int) (Table3Row, error) {
		spec := suite[i]
		base, _, err := cfg.pst(d, spec.Circuit, core.Baseline, cfg.Q5Trials, cfg.Seed)
		if err != nil {
			return Table3Row{}, fmt.Errorf("table3 %s: %w", spec.Name, err)
		}
		full, _, err := cfg.pst(d, spec.Circuit, core.VQAVQM, cfg.Q5Trials, cfg.Seed)
		if err != nil {
			return Table3Row{}, err
		}
		return Table3Row{
			Name: spec.Name, BaselinePST: base, VQAVQMPST: full,
			Relative: metrics.Relative(full, base),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	rels := make([]float64, len(rows))
	for i, r := range rows {
		rels[i] = r.Relative
	}
	res.GeoMean = metrics.GeoMean(rels)
	return res, nil
}

// Table3Table renders Table 3.
func Table3Table(r Table3Result) Table {
	t := Table{
		Title:   "Table 3: PST on the IBM-Q5 model (4096 trials)",
		Header:  []string{"benchmark", "PST (baseline)", "PST (VQA+VQM)", "relative"},
		Caption: fmt.Sprintf("geomean: %.2fx (paper: 1.36x; up to 1.9x on TriSwap)", r.GeoMean),
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Name, f2(row.BaselinePST), f2(row.VQAVQMPST), x2(row.Relative)})
	}
	return t
}
