package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPST(t *testing.T) {
	if got := PST(25, 100); got != 0.25 {
		t.Fatalf("PST = %v, want 0.25", got)
	}
	if got := PST(5, 0); got != 0 {
		t.Fatalf("PST with zero trials = %v, want 0", got)
	}
}

func TestRelative(t *testing.T) {
	if got := Relative(0.34, 0.2); math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("Relative = %v, want 1.7", got)
	}
	if got := Relative(0.1, 0); !math.IsInf(got, 1) {
		t.Fatalf("Relative over zero baseline = %v, want +Inf", got)
	}
	if got := Relative(0, 0); got != 1 {
		t.Fatalf("Relative(0,0) = %v, want 1", got)
	}
}

func TestSTPT(t *testing.T) {
	// PST 0.5 at 1ms per trial → 500 successes/second.
	if got := STPT(0.5, time.Millisecond); math.Abs(got-500) > 1e-9 {
		t.Fatalf("STPT = %v, want 500", got)
	}
	if got := STPT(0.5, 0); got != 0 {
		t.Fatalf("STPT with zero latency = %v, want 0", got)
	}
}

func TestCombinedSTPT(t *testing.T) {
	// Section 8, Figure 15: two copies with PSTs 0.32 and 0.12 versus one
	// strong copy with 0.53: at equal latency, one strong copy wins.
	latency := time.Millisecond
	two := CombinedSTPT([]float64{0.32, 0.12}, latency)
	one := CombinedSTPT([]float64{0.53}, latency)
	if two >= one {
		t.Fatalf("two weak copies %v should lose to one strong copy %v", two, one)
	}
	if math.Abs(two-440) > 1e-9 {
		t.Fatalf("two-copy STPT = %v, want 440", two)
	}
}

func TestPSTEdges(t *testing.T) {
	if got := PST(0, 100); got != 0 {
		t.Fatalf("PST with zero successes = %v, want 0", got)
	}
	if got := PST(100, 100); got != 1 {
		t.Fatalf("PST at certainty = %v, want 1", got)
	}
	if got := PST(5, -1); got != 0 {
		t.Fatalf("PST with negative trials = %v, want 0", got)
	}
}

func TestCombinedSTPTEdges(t *testing.T) {
	if got := CombinedSTPT(nil, time.Millisecond); got != 0 {
		t.Fatalf("CombinedSTPT(nil) = %v, want 0", got)
	}
	// One copy degenerates to plain STPT.
	if got, want := CombinedSTPT([]float64{0.5}, time.Millisecond), STPT(0.5, time.Millisecond); got != want {
		t.Fatalf("single-copy CombinedSTPT = %v, want %v", got, want)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1.22, 1.09, 1.90, 1.35}); math.Abs(got-1.358) > 0.01 {
		t.Fatalf("GeoMean = %v, want ≈1.36 (the paper's Table 3 geomean)", got)
	}
	if got := GeoMean([]float64{2, 8}); got != 4 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("degenerate geomeans should be 0")
	}
}

func TestGeoMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) && v < 1e100 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		g := GeoMean(vals)
		lo, hi := MinMax(vals)
		return g >= lo-1e-9*lo && g <= hi+1e-9*hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxMean(t *testing.T) {
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	// Ascending input exercises the max-update branch.
	if lo, hi := MinMax([]float64{1, 2, 3}); lo != 1 || hi != 3 {
		t.Fatalf("MinMax ascending = %v,%v", lo, hi)
	}
	if lo, hi := MinMax([]float64{7}); lo != 7 || hi != 7 {
		t.Fatalf("MinMax singleton = %v,%v", lo, hi)
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatal("MinMax(nil) should be 0,0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}
