package metrics

import (
	"sync"
	"testing"
)

func TestCacheCounters(t *testing.T) {
	var c CacheCounters
	c.Hit()
	c.Hit()
	c.Miss()
	c.Evict(3)
	s := c.Snapshot()
	if s.Hits != 2 || s.Misses != 1 || s.Evictions != 3 {
		t.Fatalf("snapshot %+v, want hits=2 misses=1 evictions=3", s)
	}
	c.Reset()
	if s := c.Snapshot(); s != (CacheSnapshot{}) {
		t.Fatalf("after Reset: %+v", s)
	}
}

// TestCacheCountersConcurrent: counters are plain atomics — hammer them
// from many goroutines and check totals (run under -race in check.sh).
func TestCacheCountersConcurrent(t *testing.T) {
	var c CacheCounters
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Hit()
				c.Miss()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Hits != workers*each || s.Misses != workers*each {
		t.Fatalf("lost updates: %+v", s)
	}
}
