// Package metrics holds the figures of merit of the paper's evaluation:
// the Probability of a Successful Trial (PST), relative PST between
// policies, Successful Trials Per unit Time (STPT, Section 8), and the
// geometric mean used for cross-benchmark summaries.
package metrics

import (
	"math"
	"time"
)

// PST is the ratio of successful trials to total trials.
func PST(successes, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	return float64(successes) / float64(trials)
}

// Relative returns the improvement factor of candidate over baseline
// (e.g. 1.7 means "1.7× the baseline PST"). A zero baseline yields +Inf
// for a positive candidate and 1 when both are zero.
func Relative(candidate, baseline float64) float64 {
	if baseline == 0 {
		if candidate == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return candidate / baseline
}

// STPT is the rate of successful trials per second when each trial takes
// latency: PST / latency.
func STPT(pst float64, latency time.Duration) float64 {
	if latency <= 0 {
		return 0
	}
	return pst / latency.Seconds()
}

// CombinedSTPT sums the rates of concurrently running copies (the
// two-copy mode of Section 8): each copy contributes its own PST at the
// shared trial latency.
func CombinedSTPT(psts []float64, latency time.Duration) float64 {
	total := 0.0
	for _, p := range psts {
		total += STPT(p, latency)
	}
	return total
}

// GeoMean returns the geometric mean of positive values; zero or negative
// entries yield 0 (a failed benchmark kills the geomean, mirroring the
// paper's summary convention).
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range values {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}

// MinMax returns the extremes of values (0,0 for empty input).
func MinMax(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total / float64(len(values))
}
