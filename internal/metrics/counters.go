package metrics

import "sync/atomic"

// CacheCounters is a lock-free hit/miss/eviction tally for bounded
// caches (the route cost-table cache, the serve response cache). A
// zero value is ready to use; all methods are safe for concurrent use.
type CacheCounters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// Hit, Miss and Evict record one event each; Evict takes a count
// because bounded caches may drop many entries in one sweep.
func (c *CacheCounters) Hit()          { c.hits.Add(1) }
func (c *CacheCounters) Miss()         { c.misses.Add(1) }
func (c *CacheCounters) Evict(n uint64) { c.evictions.Add(n) }

// CacheSnapshot is a point-in-time reading of a CacheCounters.
type CacheSnapshot struct {
	Hits, Misses, Evictions uint64
}

// Snapshot reads the counters. The three loads are individually atomic
// but not mutually consistent — fine for observability.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Reset zeroes the counters (test hook).
func (c *CacheCounters) Reset() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}
