// Package trials implements the paper's iterative computing model for
// NISQ machines (Figure 4): run the compiled program many times on the
// noisy machine, log the measured output of every trial, and analyze the
// log — the correct answer appears with non-negligible probability, and
// the Probability of a Successful Trial is the fraction of trials whose
// output is correct.
//
// Unlike package sim, which declares a trial failed the moment any error
// event fires, this package simulates the actual measurement outcomes:
// each gate error injects a random Pauli on the gate's operands into a
// stabilizer-simulator state, readout errors flip measured bits, and
// decoherence injects Paulis on idle qubits. A trial succeeds when its
// output bitstring is one the noise-free program can produce. Because
// some faults do not corrupt the measured output (a Z just before a
// Z-basis measurement, errors confined to unmeasured ancillas, …), the
// PST measured here is an upper bound on sim's event-free PST — this is
// exactly the quantity the paper measures on the real IBM-Q5, where only
// the output log is observable.
//
// Restricted to Clifford programs (BV, GHZ, TriSwap, and random Clifford
// kernels); non-Clifford programs return an error.
package trials

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/gate"
	"vaq/internal/sim"
	"vaq/internal/stabilizer"
)

// Config controls a run.
type Config struct {
	// Trials to execute (default 4096, the paper's IBM-Q5 budget).
	Trials int
	Seed   int64
	// SupportSamples bounds the noise-free sampling used to learn the set
	// of correct outputs (default 128). For deterministic programs one
	// sample suffices; for programs with intrinsic randomness (GHZ) the
	// support has few elements and is found quickly.
	SupportSamples int
	// DisableCoherence turns off idle-decoherence fault injection.
	DisableCoherence bool
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 4096
	}
	return c.Trials
}

func (c Config) supportSamples() int {
	if c.SupportSamples <= 0 {
		return 128
	}
	return c.SupportSamples
}

// Result is the analyzed output log.
type Result struct {
	Trials int
	// Counts histograms the observed output bitstrings (classical
	// register, bit 0 leftmost).
	Counts map[string]int
	// Support is the set of outputs the noise-free program produces.
	Support map[string]bool
	// Successes counts trials whose output is in Support; PST is the
	// fraction.
	Successes int
	PST       float64
	// Inferred is the most frequent observed output; InferredCorrect
	// reports whether it lies in the noise-free support — the "can we
	// still read the answer from the log" question of the iterative
	// model.
	Inferred        string
	InferredCorrect bool
}

// Run executes the physical circuit under fault injection. The circuit
// must measure at least one classical bit.
func Run(d *device.Device, phys *circuit.Circuit, cfg Config) (*Result, error) {
	if !stabilizer.IsClifford(phys) {
		return nil, fmt.Errorf("trials: program is not Clifford; use package sim for event-level PST")
	}
	if phys.NumCBits == 0 {
		return nil, fmt.Errorf("trials: program has no measurements")
	}
	if phys.NumQubits > d.NumQubits() {
		return nil, fmt.Errorf("trials: circuit uses %d qubits, device has %d", phys.NumQubits, d.NumQubits())
	}
	for _, g := range phys.Gates {
		if g.Kind.TwoQubit() && !d.Topology().Adjacent(g.Qubits[0], g.Qubits[1]) {
			return nil, fmt.Errorf("trials: %s on non-coupled qubits %d,%d — route the circuit first",
				g.Kind, g.Qubits[0], g.Qubits[1])
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Noise-free support.
	support := map[string]bool{}
	for i := 0; i < cfg.supportSamples(); i++ {
		out, err := execute(d, phys, rng, false, cfg)
		if err != nil {
			return nil, err
		}
		support[out] = true
		if i >= 8 && len(support) == 1 {
			break // deterministic program: stop early
		}
	}

	res := &Result{
		Trials:  cfg.trials(),
		Counts:  map[string]int{},
		Support: support,
	}
	for t := 0; t < res.Trials; t++ {
		out, err := execute(d, phys, rng, true, cfg)
		if err != nil {
			return nil, err
		}
		res.Counts[out]++
		if support[out] {
			res.Successes++
		}
	}
	res.PST = float64(res.Successes) / float64(res.Trials)
	res.Inferred = mostFrequent(res.Counts)
	res.InferredCorrect = support[res.Inferred]
	return res, nil
}

// execute runs one trial and returns the classical register as a
// bitstring.
func execute(d *device.Device, phys *circuit.Circuit, rng *rand.Rand, noisy bool, cfg Config) (string, error) {
	st := stabilizer.New(maxInt(1, phys.NumQubits))
	cbits := make([]byte, phys.NumCBits)
	for i := range cbits {
		cbits[i] = '0'
	}

	var coh []float64
	if noisy && !cfg.DisableCoherence {
		coh = coherenceFaults(d, phys)
		// Idle decoherence is injected up front as Pauli noise on each
		// qubit's worldline; for Z-basis programs the X component is the
		// damaging one.
		for q, p := range coh {
			if p > 0 && rng.Float64() < p {
				injectPauli(st, rng, q)
			}
		}
	}

	for _, g := range phys.Gates {
		switch g.Kind {
		case gate.Barrier:
			continue
		case gate.Measure:
			out, _ := st.MeasureZ(g.Qubits[0], rng)
			if noisy && rng.Float64() < 1-d.ReadoutSuccess(g.Qubits[0]) {
				out = 1 - out
			}
			cbits[g.CBit] = byte('0' + out)
		default:
			if err := st.Apply(g); err != nil {
				return "", err
			}
			if noisy {
				perr := 1 - d.GateSuccess(g.Kind, g.Qubits)
				if perr > 0 && rng.Float64() < perr {
					for _, q := range g.Qubits {
						injectPauli(st, rng, q)
					}
				}
			}
		}
	}
	return string(cbits), nil
}

// injectPauli applies a uniformly random non-identity Pauli on qubit q —
// the standard depolarizing fault model.
func injectPauli(st *stabilizer.State, rng *rand.Rand, q int) {
	switch rng.Intn(3) {
	case 0:
		st.X(q)
	case 1:
		st.Y(q)
	default:
		st.Z(q)
	}
}

// coherenceFaults converts each qubit's idle exposure into a Pauli-fault
// probability, mirroring sim's model.
func coherenceFaults(d *device.Device, phys *circuit.Circuit) []float64 {
	idle := sim.IdleTimes(phys)
	out := make([]float64, phys.NumQubits)
	snap := d.Snapshot()
	for q := range out {
		if idle[q] <= 0 {
			continue
		}
		tUs := idle[q].Seconds() * 1e6 * device.CoherenceDuty
		retain := expNeg(tUs/snap.T1Us[q]) * expNeg(tUs/snap.T2Us[q])
		out[q] = 1 - retain
	}
	return out
}

func expNeg(x float64) float64 { return math.Exp(-x) }

// TopOutcomes returns the k most frequent outputs with their counts,
// sorted by descending count then lexicographically.
func (r *Result) TopOutcomes(k int) []struct {
	Output string
	Count  int
} {
	type oc struct {
		Output string
		Count  int
	}
	var all []oc
	for o, c := range r.Counts {
		all = append(all, oc{o, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Output < all[j].Output
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]struct {
		Output string
		Count  int
	}, len(all))
	for i, v := range all {
		out[i] = struct {
			Output string
			Count  int
		}{v.Output, v.Count}
	}
	return out
}

// Summary renders the result for CLI output.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trials %d, successes %d, PST %.4f\n", r.Trials, r.Successes, r.PST)
	fmt.Fprintf(&b, "inferred output %q (correct: %v)\n", r.Inferred, r.InferredCorrect)
	for _, oc := range r.TopOutcomes(5) {
		marker := " "
		if r.Support[oc.Output] {
			marker = "*"
		}
		fmt.Fprintf(&b, "  %s %s  %d\n", marker, oc.Output, oc.Count)
	}
	return b.String()
}

func mostFrequent(counts map[string]int) string {
	best, bestC := "", -1
	for o, c := range counts {
		if c > bestC || (c == bestC && o < best) {
			best, bestC = o, c
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
