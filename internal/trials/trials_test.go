package trials

import (
	"math"
	"strings"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/sim"
	"vaq/internal/topo"
	"vaq/internal/workloads"
)

func perfectQ5() *device.Device {
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	for q := 0; q < 5; q++ {
		s.T1Us[q], s.T2Us[q] = 1e9, 1e9
	}
	return device.MustNew(tp, s)
}

func tenerife() *device.Device {
	s := calib.TenerifeSnapshot()
	return device.MustNew(s.Topo, s)
}

func TestPerfectDeviceDeterministicProgram(t *testing.T) {
	d := perfectQ5()
	// X then measure: output must be "1" on every trial.
	c := circuit.New("x", 1).X(0).Measure(0, 0)
	res, err := Run(d, c, Config{Trials: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PST != 1 {
		t.Fatalf("PST on perfect device = %v, want 1", res.PST)
	}
	if res.Inferred != "1" || !res.InferredCorrect {
		t.Fatalf("inferred %q correct=%v", res.Inferred, res.InferredCorrect)
	}
	if len(res.Support) != 1 || !res.Support["1"] {
		t.Fatalf("support = %v, want {1}", res.Support)
	}
}

func TestGHZSupportHasBothBranches(t *testing.T) {
	d := perfectQ5()
	prog := workloads.GHZ(3)
	res, err := Run(d, prog, Config{Trials: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Support["000"] || !res.Support["111"] {
		t.Fatalf("GHZ support = %v, want 000 and 111", res.Support)
	}
	if res.PST != 1 {
		t.Fatalf("perfect-device GHZ PST = %v, want 1", res.PST)
	}
}

func TestNoisyDeviceDegradesPST(t *testing.T) {
	d := tenerife()
	prog := workloads.GHZ(3)
	res, err := Run(d, prog, Config{Trials: 4096, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PST >= 1 || res.PST <= 0.3 {
		t.Fatalf("noisy GHZ PST = %v, want in (0.3, 1)", res.PST)
	}
	// The correct answer still dominates the log (the iterative model's
	// premise).
	if !res.InferredCorrect {
		t.Fatalf("inferred output %q not in support; log analysis failed", res.Inferred)
	}
}

func TestOutputPSTUpperBoundsEventPST(t *testing.T) {
	// Not every error event corrupts the measured output, so the
	// output-level PST must be ≥ the event-level PST from package sim.
	d := tenerife()
	for _, spec := range workloads.Q5Suite() {
		comp, err := core.Compile(d, spec.Circuit, core.Options{Policy: core.Baseline})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(d, comp.Routed.Physical, Config{Trials: 4096, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		event := sim.Run(d, comp.Routed.Physical, sim.Config{Trials: 100000, Seed: 11})
		if out.PST < event.PST-0.03 {
			t.Errorf("%s: output PST %.3f below event PST %.3f", spec.Name, out.PST, event.PST)
		}
	}
}

func TestVariationAwareWinsAtOutputLevel(t *testing.T) {
	// The paper's Table 3 claim, measured the way the paper measured it:
	// on the Q5 model, VQA+VQM's output-level PST beats the baseline's
	// for the SWAP-heavy kernel.
	d := tenerife()
	prog := workloads.TriSwap()
	base, err := core.Compile(d, prog, core.Options{Policy: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Compile(d, prog, core.Options{Policy: core.VQAVQM})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Trials: 8192, Seed: 13}
	pBase, err := Run(d, base.Routed.Physical, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := Run(d, full.Routed.Physical, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pFull.PST <= pBase.PST {
		t.Fatalf("VQA+VQM output PST %.3f not above baseline %.3f", pFull.PST, pBase.PST)
	}
}

func TestRunRejectsNonClifford(t *testing.T) {
	d := perfectQ5()
	c := circuit.New("t", 1).T(0).Measure(0, 0)
	if _, err := Run(d, c, Config{Trials: 10}); err == nil {
		t.Fatal("non-Clifford program accepted")
	}
}

func TestRunRejectsNoMeasurement(t *testing.T) {
	d := perfectQ5()
	c := circuit.New("m", 1).X(0)
	if _, err := Run(d, c, Config{Trials: 10}); err == nil {
		t.Fatal("measurement-free program accepted")
	}
}

func TestRunRejectsOversized(t *testing.T) {
	d := perfectQ5()
	c := circuit.New("big", 8).X(0).Measure(0, 0)
	if _, err := Run(d, c, Config{Trials: 10}); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	d := tenerife()
	comp, err := core.Compile(d, workloads.BV(4), core.Options{Policy: core.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(d, comp.Routed.Physical, Config{Trials: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, comp.Routed.Physical, Config{Trials: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes || a.Inferred != b.Inferred {
		t.Fatal("same seed produced different logs")
	}
}

func TestRunRejectsUnroutedCircuit(t *testing.T) {
	d := tenerife()
	// Logical bv-4 has a CX between non-coupled qubits on Tenerife.
	if _, err := Run(d, workloads.BV(4), Config{Trials: 10}); err == nil {
		t.Fatal("unrouted circuit accepted")
	}
}

func TestReadoutErrorsOnlyFlipBits(t *testing.T) {
	// All error mass on readout of a deterministic program: PST ≈
	// readout success, and the wrong outputs are single-bit flips.
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	for q := 0; q < 5; q++ {
		s.T1Us[q], s.T2Us[q] = 1e9, 1e9
		s.Readout[q] = 0.2
	}
	d := device.MustNew(tp, s)
	c := circuit.New("x", 1).X(0).Measure(0, 0)
	res, err := Run(d, c, Config{Trials: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PST-0.8) > 0.02 {
		t.Fatalf("PST = %v, want ≈0.8", res.PST)
	}
	if res.Counts["0"]+res.Counts["1"] != res.Trials {
		t.Fatalf("unexpected outputs: %v", res.Counts)
	}
}

func TestTopOutcomesAndSummary(t *testing.T) {
	d := tenerife()
	res, err := Run(d, workloads.GHZ(3), Config{Trials: 2048, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopOutcomes(3)
	if len(top) == 0 || top[0].Count < top[len(top)-1].Count {
		t.Fatalf("top outcomes disordered: %v", top)
	}
	sum := res.Summary()
	for _, want := range []string{"PST", "inferred"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestBVInferredSecret(t *testing.T) {
	// End to end: compile bv-4 onto the Tenerife model and confirm the
	// log analysis recovers the all-ones secret.
	d := tenerife()
	comp, err := core.Compile(d, workloads.BV(4), core.Options{Policy: core.VQAVQM})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, comp.Routed.Physical, Config{Trials: 4096, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferred != "111" {
		t.Fatalf("inferred %q, want the secret 111 (counts %v)", res.Inferred, res.Counts)
	}
}
