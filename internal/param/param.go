// Package param adds symbolic parameters to circuits: the missing piece
// between the paper's compile-per-circuit world and variational (VQA)
// workloads, where one ansatz is executed thousands of times with
// different rotation angles. A Symbol names a free angle; an Expr is the
// affine form c·θ + k (linear combinations of symbols plus a constant —
// the only arithmetic OpenQASM benchmarks apply to parameters); a
// ParametricCircuit pairs an ordinary circuit.Circuit template with the
// expressions occupying its parameterized gate slots.
//
// The central fact the whole plane rests on: the hardware error model is
// angle-independent. Gate success probabilities (device.GateSuccess),
// ESP ranking, routing costs and the Monte-Carlo trial stream never read
// Gate.Param, so allocation, routing, scheduling and PST estimation are
// identical for every binding of one template. Compile once, rebind
// many (package core's CompileParametric/Bound).
package param

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"vaq/internal/circuit"
)

// Symbol is the name of one free parameter (e.g. "theta").
type Symbol string

// Term is one linear term c·θ of an expression.
type Term struct {
	Coeff float64
	Sym   Symbol
}

// Expr is an affine parameter expression: sum of Terms plus Const.
// Exprs are immutable values; the arithmetic constructors below keep
// them canonical (terms merged per symbol, zero terms dropped, sorted
// by symbol name), so structural equality is semantic equality.
type Expr struct {
	Terms []Term
	Const float64
}

// Const returns the constant expression k.
func Const(k float64) Expr { return Expr{Const: k} }

// Sym returns the expression 1·s.
func Sym(s Symbol) Expr { return Expr{Terms: []Term{{Coeff: 1, Sym: s}}} }

// canonical merges duplicate symbols, drops zero coefficients and sorts
// terms by symbol name.
func (e Expr) canonical() Expr {
	if len(e.Terms) == 0 {
		return e
	}
	sum := make(map[Symbol]float64, len(e.Terms))
	for _, t := range e.Terms {
		sum[t.Sym] += t.Coeff
	}
	syms := make([]Symbol, 0, len(sum))
	for s, c := range sum {
		if c != 0 {
			syms = append(syms, s)
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	terms := make([]Term, len(syms))
	for i, s := range syms {
		terms[i] = Term{Coeff: sum[s], Sym: s}
	}
	if len(terms) == 0 {
		terms = nil
	}
	return Expr{Terms: terms, Const: e.Const}
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	return Expr{
		Terms: append(append([]Term(nil), e.Terms...), o.Terms...),
		Const: e.Const + o.Const,
	}.canonical()
}

// Scale returns c·e.
func (e Expr) Scale(c float64) Expr {
	terms := make([]Term, len(e.Terms))
	for i, t := range e.Terms {
		terms[i] = Term{Coeff: c * t.Coeff, Sym: t.Sym}
	}
	return Expr{Terms: terms, Const: c * e.Const}.canonical()
}

// Neg returns −e.
func (e Expr) Neg() Expr { return e.Scale(-1) }

// IsConst reports whether e has no free symbols.
func (e Expr) IsConst() bool { return len(e.Terms) == 0 }

// Symbols returns the free symbols of e in term (sorted-name) order.
func (e Expr) Symbols() []Symbol {
	syms := make([]Symbol, len(e.Terms))
	for i, t := range e.Terms {
		syms[i] = t.Sym
	}
	return syms
}

// String renders the canonical affine form, e.g. "2*theta+-0.5" or
// "0.25". The rendering tokenizes back through the QASM expression
// grammar, which is what macro expansion relies on.
func (e Expr) String() string {
	var parts []string
	for _, t := range e.Terms {
		if t.Coeff == 1 {
			parts = append(parts, string(t.Sym))
			continue
		}
		parts = append(parts, strconv.FormatFloat(t.Coeff, 'g', -1, 64)+"*"+string(t.Sym))
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, strconv.FormatFloat(e.Const, 'g', -1, 64))
	}
	return strings.Join(parts, "+")
}

// UnboundError reports symbols required by an evaluation or binding that
// the supplied values do not cover.
type UnboundError struct {
	Missing []Symbol
}

func (e *UnboundError) Error() string {
	names := make([]string, len(e.Missing))
	for i, s := range e.Missing {
		names[i] = string(s)
	}
	return fmt.Sprintf("param: unbound symbols: %s", strings.Join(names, ", "))
}

// Eval evaluates e under the given symbol values. Every free symbol of e
// must be present; missing ones yield an *UnboundError.
func (e Expr) Eval(vals map[Symbol]float64) (float64, error) {
	v := e.Const
	var missing []Symbol
	for _, t := range e.Terms {
		x, ok := vals[t.Sym]
		if !ok {
			missing = append(missing, t.Sym)
			continue
		}
		v += t.Coeff * x
	}
	if missing != nil {
		return 0, &UnboundError{Missing: missing}
	}
	return v, nil
}

// ParametricCircuit is a circuit template with symbolic parameters: an
// ordinary circuit whose parameterized gate slots at the indices of
// Exprs are placeholders (Param = 0) to be filled by Bind. Gates not in
// Exprs are fully concrete, including parameterized gates with constant
// angles.
type ParametricCircuit struct {
	Circ  *circuit.Circuit
	Exprs map[int]Expr
}

// New wraps a circuit with an empty expression table.
func New(c *circuit.Circuit) *ParametricCircuit {
	return &ParametricCircuit{Circ: c, Exprs: map[int]Expr{}}
}

// SetParam assigns expression e to the parameter slot of gate i. Constant
// expressions are baked into the gate directly; symbolic ones zero the
// slot and join the expression table.
func (pc *ParametricCircuit) SetParam(i int, e Expr) {
	if e.IsConst() {
		delete(pc.Exprs, i)
		pc.Circ.Gates[i].Param = e.Const
		return
	}
	pc.Circ.Gates[i].Param = 0
	pc.Exprs[i] = e
}

// Clone deep-copies the template and expression table.
func (pc *ParametricCircuit) Clone() *ParametricCircuit {
	exprs := make(map[int]Expr, len(pc.Exprs))
	for i, e := range pc.Exprs {
		exprs[i] = e
	}
	return &ParametricCircuit{Circ: pc.Circ.Clone(), Exprs: exprs}
}

// slots returns the expression-bearing gate indices in circuit order.
func (pc *ParametricCircuit) slots() []int {
	idx := make([]int, 0, len(pc.Exprs))
	for i := range pc.Exprs {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// FreeSymbols returns the distinct free symbols in order of first use
// (gate order, then term order within a gate). This is the positional
// order BindValues and the sweep surfaces use, chosen over lexicographic
// sorting so "theta10" never jumps ahead of "theta2".
func (pc *ParametricCircuit) FreeSymbols() []Symbol {
	seen := map[Symbol]bool{}
	var syms []Symbol
	for _, i := range pc.slots() {
		for _, s := range pc.Exprs[i].Symbols() {
			if !seen[s] {
				seen[s] = true
				syms = append(syms, s)
			}
		}
	}
	return syms
}

// NumParams returns the number of free symbols.
func (pc *ParametricCircuit) NumParams() int { return len(pc.FreeSymbols()) }

// Bind produces a concrete circuit with every expression evaluated under
// vals. Every free symbol must be bound (*UnboundError otherwise), and
// every supplied symbol must be free — an unknown name is an error so a
// misspelled parameter cannot silently bind nothing.
func (pc *ParametricCircuit) Bind(vals map[Symbol]float64) (*circuit.Circuit, error) {
	free := pc.FreeSymbols()
	isFree := make(map[Symbol]bool, len(free))
	for _, s := range free {
		isFree[s] = true
	}
	var missing []Symbol
	for _, s := range free {
		if _, ok := vals[s]; !ok {
			missing = append(missing, s)
		}
	}
	if missing != nil {
		return nil, &UnboundError{Missing: missing}
	}
	for s := range vals {
		if !isFree[s] {
			return nil, fmt.Errorf("param: bind of unknown symbol %q (free: %v)", s, free)
		}
	}
	out := pc.Circ.Clone()
	for i, e := range pc.Exprs {
		v, err := e.Eval(vals)
		if err != nil {
			return nil, err
		}
		out.Gates[i].Param = v
	}
	return out, nil
}

// BindValues binds positionally: vals[i] is the value of FreeSymbols()[i].
func (pc *ParametricCircuit) BindValues(vals []float64) (*circuit.Circuit, error) {
	free := pc.FreeSymbols()
	if len(vals) != len(free) {
		return nil, fmt.Errorf("param: %d values for %d free symbols", len(vals), len(free))
	}
	m := make(map[Symbol]float64, len(free))
	for i, s := range free {
		m[s] = vals[i]
	}
	return pc.Bind(m)
}

// Sentinel values: routing and scheduling copy Gate.Param verbatim, so a
// parametric compile marks each symbolic slot with a distinct finite
// value that survives the pipeline and is recovered from the physical
// circuit afterwards. Sentinels are the smallest positive subnormals —
// unreachable by any realistic angle arithmetic yet ordinary floats that
// pass the route verifier's struct equality (NaN would not: NaN ≠ NaN).

// Sentinel returns the reserved placeholder for slot k.
func Sentinel(k int) float64 { return math.Float64frombits(uint64(k) + 1) }

// SentinelIndex decodes a placeholder back to its slot index; ok is
// false for any float outside the n reserved sentinels.
func SentinelIndex(p float64, n int) (int, bool) {
	bits := math.Float64bits(p)
	if bits >= 1 && bits <= uint64(n) {
		return int(bits - 1), true
	}
	return 0, false
}

// SentinelBind returns a concrete copy of the template whose i-th
// symbolic slot (circuit order) carries Sentinel(i), together with the
// expressions in the same order. It fails if any concrete parameterized
// gate already holds a value inside the reserved sentinel range — a
// collision would make slot recovery ambiguous.
func (pc *ParametricCircuit) SentinelBind() (*circuit.Circuit, []Expr, error) {
	idx := pc.slots()
	out := pc.Circ.Clone()
	exprs := make([]Expr, len(idx))
	for k, i := range idx {
		exprs[k] = pc.Exprs[i]
		out.Gates[i].Param = Sentinel(k)
	}
	for i, g := range out.Gates {
		if _, isSlot := pc.Exprs[i]; isSlot || !g.Kind.Parameterized() {
			continue
		}
		if _, ok := SentinelIndex(g.Param, len(idx)); ok {
			return nil, nil, fmt.Errorf("param: gate %d (%s) parameter %g collides with the reserved sentinel range", i, g.Kind, g.Param)
		}
	}
	return out, exprs, nil
}
