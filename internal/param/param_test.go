package param

import (
	"errors"
	"math"
	"testing"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

func TestExprArithmetic(t *testing.T) {
	e := Sym("theta").Scale(2).Add(Const(0.5)) // 2θ + 0.5
	if e.IsConst() {
		t.Fatal("2θ+0.5 reported constant")
	}
	v, err := e.Eval(map[Symbol]float64{"theta": 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3.0 {
		t.Fatalf("Eval = %v, want 3", v)
	}
	if got := e.String(); got != "2*theta+0.5" {
		t.Fatalf("String = %q", got)
	}
}

func TestExprCanonicalization(t *testing.T) {
	// θ + θ − 2θ collapses to the pure constant.
	e := Sym("theta").Add(Sym("theta")).Add(Sym("theta").Scale(-2)).Add(Const(1))
	if !e.IsConst() || e.Const != 1 {
		t.Fatalf("cancelled expression not constant: %+v", e)
	}
	// b + a sorts to a + b, so structural equality is semantic equality.
	ab := Sym("b").Add(Sym("a"))
	ba := Sym("a").Add(Sym("b"))
	if ab.Terms[0] != ba.Terms[0] || ab.Terms[1] != ba.Terms[1] {
		t.Fatalf("canonical order differs: %+v vs %+v", ab, ba)
	}
	if got := ab.String(); got != "a+b" {
		t.Fatalf("String = %q", got)
	}
}

func TestEvalUnboundTyped(t *testing.T) {
	e := Sym("a").Add(Sym("b"))
	_, err := e.Eval(map[Symbol]float64{"a": 1})
	var ub *UnboundError
	if !errors.As(err, &ub) {
		t.Fatalf("want *UnboundError, got %v", err)
	}
	if len(ub.Missing) != 1 || ub.Missing[0] != "b" {
		t.Fatalf("Missing = %v", ub.Missing)
	}
}

func twoSlot(t *testing.T) *ParametricCircuit {
	t.Helper()
	c := circuit.New("pc", 2)
	c.H(0)
	c.RZ(0, 0) // slot 0
	c.CX(0, 1)
	c.RY(0, 1) // slot 1
	pc := New(c)
	pc.SetParam(1, Sym("theta10")) // appearance order beats lexicographic
	pc.SetParam(3, Sym("theta2").Scale(0.5))
	return pc
}

func TestFreeSymbolsAppearanceOrder(t *testing.T) {
	pc := twoSlot(t)
	got := pc.FreeSymbols()
	if len(got) != 2 || got[0] != "theta10" || got[1] != "theta2" {
		t.Fatalf("FreeSymbols = %v, want [theta10 theta2]", got)
	}
	if pc.NumParams() != 2 {
		t.Fatalf("NumParams = %d", pc.NumParams())
	}
}

func TestBindFullAndPartial(t *testing.T) {
	pc := twoSlot(t)
	bound, err := pc.Bind(map[Symbol]float64{"theta10": math.Pi, "theta2": 1})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Gates[1].Param != math.Pi || bound.Gates[3].Param != 0.5 {
		t.Fatalf("bound params: %v, %v", bound.Gates[1].Param, bound.Gates[3].Param)
	}
	// The template stays untouched.
	if pc.Circ.Gates[1].Param != 0 {
		t.Fatal("Bind mutated the template")
	}

	_, err = pc.Bind(map[Symbol]float64{"theta10": 1})
	var ub *UnboundError
	if !errors.As(err, &ub) {
		t.Fatalf("partial bind: want *UnboundError, got %v", err)
	}
	if _, err := pc.Bind(map[Symbol]float64{"theta10": 1, "theta2": 2, "typo": 3}); err == nil {
		t.Fatal("bind of unknown symbol succeeded")
	}
}

func TestBindValuesPositional(t *testing.T) {
	pc := twoSlot(t)
	bound, err := pc.BindValues([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Gates[1].Param != 2 || bound.Gates[3].Param != 2 {
		t.Fatalf("positional bind: %v, %v", bound.Gates[1].Param, bound.Gates[3].Param)
	}
	if _, err := pc.BindValues([]float64{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestSetParamConstBakes(t *testing.T) {
	c := circuit.New("k", 1)
	c.RZ(0, 0)
	pc := New(c)
	pc.SetParam(0, Sym("x"))
	pc.SetParam(0, Const(0.75)) // re-assign to a constant: slot disappears
	if len(pc.Exprs) != 0 || pc.Circ.Gates[0].Param != 0.75 {
		t.Fatalf("constant not baked: %+v param %v", pc.Exprs, pc.Circ.Gates[0].Param)
	}
}

func TestSentinelRoundTrip(t *testing.T) {
	for k := 0; k < 100; k++ {
		s := Sentinel(k)
		if math.IsNaN(s) || math.IsInf(s, 0) || s == 0 {
			t.Fatalf("sentinel %d not a usable finite float: %v", k, s)
		}
		got, ok := SentinelIndex(s, 100)
		if !ok || got != k {
			t.Fatalf("SentinelIndex(Sentinel(%d)) = %d, %v", k, got, ok)
		}
	}
	if _, ok := SentinelIndex(0, 100); ok {
		t.Fatal("zero decoded as a sentinel")
	}
	if _, ok := SentinelIndex(math.Pi, 100); ok {
		t.Fatal("π decoded as a sentinel")
	}
	if _, ok := SentinelIndex(Sentinel(100), 100); ok {
		t.Fatal("out-of-range sentinel decoded")
	}
}

func TestSentinelBind(t *testing.T) {
	pc := twoSlot(t)
	sent, exprs, err := pc.SentinelBind()
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 2 {
		t.Fatalf("%d exprs", len(exprs))
	}
	if sent.Gates[1].Param != Sentinel(0) || sent.Gates[3].Param != Sentinel(1) {
		t.Fatalf("sentinels misplaced: %v, %v", sent.Gates[1].Param, sent.Gates[3].Param)
	}
	if exprs[0].String() != "theta10" || exprs[1].String() != "0.5*theta2" {
		t.Fatalf("expr order: %v, %v", exprs[0], exprs[1])
	}

	// A concrete parameterized gate sitting inside the sentinel range is
	// rejected rather than silently mis-decoded.
	c := circuit.New("clash", 1)
	c.Append(circuit.Gate{Kind: gate.RZ, Qubits: []int{0}, Param: Sentinel(0), CBit: -1})
	c.RZ(0, 0)
	bad := New(c)
	bad.SetParam(1, Sym("x"))
	if _, _, err := bad.SentinelBind(); err == nil {
		t.Fatal("sentinel collision accepted")
	}
}
