package jobs

import "sync"

// Event is one entry in a job's lifecycle feed, the payload behind the
// SSE endpoint. Seq is the per-job event sequence number, so a client
// that reconnects can detect gaps.
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"`
	State   State  `json:"state,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Message string `json:"message,omitempty"`
}

// Event types.
const (
	EventQueued    = "queued"
	EventStarted   = "started"
	EventProgress  = "progress"
	EventRetrying  = "retrying"
	EventRecovered = "recovered" // re-queued after a crash or drain
	EventSucceeded = "succeeded"
	EventFailed    = "failed"
	EventCancelled = "cancelled"
)

// maxEventHistory bounds each job's replay buffer; older events are
// dropped from replay (Seq gaps tell a subscriber this happened).
const maxEventHistory = 64

// subBuffer is a live subscriber's channel capacity. A subscriber that
// falls further behind than this loses events (the channel would
// otherwise wedge every publisher); SSE clients see the gap via Seq.
const subBuffer = 64

// broker fans job lifecycle events out to subscribers and keeps a
// bounded per-job replay history, so a poll-then-subscribe client never
// misses the events between its two calls.
type broker struct {
	mu     sync.Mutex
	feeds  map[string]*feed
	closed bool
}

type feed struct {
	history []Event
	nextSeq int
	subs    map[int]chan Event
	nextSub int
	done    bool // terminal event published; new subscribers get a closed channel
}

func newBroker() *broker {
	return &broker{feeds: make(map[string]*feed)}
}

func (b *broker) feedFor(id string) *feed {
	f, ok := b.feeds[id]
	if !ok {
		f = &feed{subs: make(map[int]chan Event)}
		b.feeds[id] = f
	}
	return f
}

// publish appends an event to id's history and delivers it to every
// subscriber that has room. A terminal event closes all subscriptions.
func (b *broker) publish(id string, ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	f := b.feedFor(id)
	if f.done {
		return
	}
	ev.Seq = f.nextSeq
	f.nextSeq++
	f.history = append(f.history, ev)
	if len(f.history) > maxEventHistory {
		f.history = f.history[len(f.history)-maxEventHistory:]
	}
	terminal := ev.State.Terminal()
	for key, ch := range f.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than wedge the worker
		}
		if terminal {
			close(ch)
			delete(f.subs, key)
		}
	}
	if terminal {
		f.done = true
	}
}

// subscribe returns id's replayable history plus a live channel. The
// channel is closed after the job's terminal event (immediately, if the
// job already finished). cancel is idempotent and must be called when
// the subscriber goes away.
func (b *broker) subscribe(id string) (history []Event, ch <-chan Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := b.feedFor(id)
	history = append([]Event(nil), f.history...)
	c := make(chan Event, subBuffer)
	if f.done || b.closed {
		close(c)
		return history, c, func() {}
	}
	key := f.nextSub
	f.nextSub++
	f.subs[key] = c
	return history, c, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if ch, ok := f.subs[key]; ok {
			close(ch)
			delete(f.subs, key)
		}
	}
}

// drop discards a job's feed (retention eviction).
func (b *broker) drop(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.feeds[id]; ok {
		for key, ch := range f.subs {
			close(ch)
			delete(f.subs, key)
		}
		delete(b.feeds, id)
	}
}

// close closes every live subscription (manager shutdown).
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, f := range b.feeds {
		for key, ch := range f.subs {
			close(ch)
			delete(f.subs, key)
		}
	}
}
