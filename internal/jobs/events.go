package jobs

import "sync"

// Event is one entry in a job's lifecycle feed, the payload behind the
// SSE endpoint. Seq is the per-job event sequence number, so a client
// that reconnects can detect gaps.
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"`
	State   State  `json:"state,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Message string `json:"message,omitempty"`
}

// Event types.
const (
	EventQueued    = "queued"
	EventStarted   = "started"
	EventProgress  = "progress"
	EventRetrying  = "retrying"
	EventRecovered = "recovered" // re-queued after a crash or drain
	EventSucceeded = "succeeded"
	EventFailed    = "failed"
	EventCancelled = "cancelled"
)

// maxEventHistory bounds each key's replay buffer; older events are
// dropped from replay (Seq gaps tell a subscriber this happened).
const maxEventHistory = 64

// subBuffer is a live subscriber's channel capacity. A subscriber that
// falls further behind than this loses events (the channel would
// otherwise wedge every publisher); SSE clients see the gap via Seq.
const subBuffer = 64

// Broker fans lifecycle events out to subscribers and keeps a bounded
// per-key replay history, so a poll-then-subscribe client never misses
// the events between its two calls. The job plane keys feeds by job ID;
// the calibration drift plane reuses the same plumbing keyed by device
// name. Construct with NewBroker; a Broker is safe for concurrent use.
type Broker struct {
	mu     sync.Mutex
	feeds  map[string]*feed
	closed bool
}

type feed struct {
	history []Event
	nextSeq int
	subs    map[int]chan Event
	nextSub int
	done    bool // terminal event published; new subscribers get a closed channel
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{feeds: make(map[string]*feed)}
}

// newBroker keeps the package-internal constructor name used by the
// manager.
func newBroker() *Broker { return NewBroker() }

func (b *Broker) feedFor(id string) *feed {
	f, ok := b.feeds[id]
	if !ok {
		f = &feed{subs: make(map[int]chan Event)}
		b.feeds[id] = f
	}
	return f
}

// Publish appends an event to id's history and delivers it to every
// subscriber that has room. An event whose State is terminal closes all
// of the key's subscriptions; events with a zero State never terminate
// a feed (the drift plane's feeds are open-ended).
func (b *Broker) Publish(id string, ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	f := b.feedFor(id)
	if f.done {
		return
	}
	ev.Seq = f.nextSeq
	f.nextSeq++
	f.history = append(f.history, ev)
	if len(f.history) > maxEventHistory {
		f.history = f.history[len(f.history)-maxEventHistory:]
	}
	terminal := ev.State.Terminal()
	for key, ch := range f.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than wedge the worker
		}
		if terminal {
			close(ch)
			delete(f.subs, key)
		}
	}
	if terminal {
		f.done = true
	}
}

// Subscribe returns id's replayable history plus a live channel. The
// channel is closed after the key's terminal event (immediately, if one
// was already published). cancel is idempotent and must be called when
// the subscriber goes away.
func (b *Broker) Subscribe(id string) (history []Event, ch <-chan Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := b.feedFor(id)
	history = append([]Event(nil), f.history...)
	c := make(chan Event, subBuffer)
	if f.done || b.closed {
		close(c)
		return history, c, func() {}
	}
	key := f.nextSub
	f.nextSub++
	f.subs[key] = c
	return history, c, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if ch, ok := f.subs[key]; ok {
			close(ch)
			delete(f.subs, key)
		}
	}
}

// Drop discards a key's feed (retention eviction).
func (b *Broker) Drop(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.feeds[id]; ok {
		for key, ch := range f.subs {
			close(ch)
			delete(f.subs, key)
		}
		delete(b.feeds, id)
	}
}

// Close closes every live subscription (shutdown). Further publishes
// are discarded.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, f := range b.feeds {
		for key, ch := range f.subs {
			close(ch)
			delete(f.subs, key)
		}
	}
}
