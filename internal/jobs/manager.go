package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"vaq/internal/clock"
	"vaq/internal/parallel"
)

// Options tunes a Manager. The zero value is production-usable
// (in-memory, one worker per CPU); withDefaults documents the
// defaults.
type Options struct {
	// Dir is the durable store directory; "" runs the plane in-memory
	// (jobs do not survive a restart).
	Dir string
	// Workers bounds concurrently executing jobs (parallel.Workers
	// semantics: 0 one per CPU, <0 serial).
	Workers int
	// QueueMax caps jobs waiting in the queue, across all tenants
	// (default 1024); beyond it submissions shed.
	QueueMax int
	// Timeout is the per-attempt execution deadline (default 10m).
	Timeout time.Duration
	// Retry bounds retries of retryable failures.
	Retry Policy
	// Quota is the per-tenant admission policy.
	Quota Quota
	// Retention caps terminal jobs kept (in memory and on disk);
	// beyond it the oldest finished jobs are evicted (default 4096).
	Retention int
	// AgingInterval is how long a queued job waits to gain one
	// priority rank (default 30s).
	AgingInterval time.Duration
	// Clock is the time source behind admission timestamps, token
	// buckets, retry scheduling, and the worker loop's backoff timers
	// (default clock.Real). Tests inject a clock.Fake and Advance it
	// instead of sleeping.
	Clock clock.Clock
}

func (o Options) withDefaults() Options {
	o.Workers = parallel.Workers(o.Workers)
	if o.QueueMax <= 0 {
		o.QueueMax = 1024
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Minute
	}
	o.Retry = o.Retry.withDefaults()
	o.Quota = o.Quota.withDefaults()
	if o.Retention <= 0 {
		o.Retention = 4096
	}
	if o.AgingInterval <= 0 {
		o.AgingInterval = 30 * time.Second
	}
	o.Clock = clock.Or(o.Clock)
	return o
}

// Cancellation causes, distinguished when an attempt comes back: a
// user cancel terminates the job, an interruption re-queues it for
// resume.
var (
	errCancelRequested = errors.New("cancelled by request")
	errInterrupted     = errors.New("interrupted by shutdown")
)

// Manager is the durable job control plane: admission (quota + queue
// bound), the priority-aging dispatcher, the bounded worker pool,
// retry/backoff, persistence and crash recovery, and the event feed.
// Construct with NewManager (which recovers any prior queue from Dir),
// then Start; Drain stops it. Safe for concurrent use.
type Manager struct {
	opts Options
	be   Backend
	st   *store
	br   *Broker

	mu            sync.Mutex
	jobs          map[string]*job
	q             *queue
	quotas        *quotas
	running       map[string]context.CancelCauseFunc
	seq           uint64
	queued        int // jobs currently in StateQueued
	terminalOrder []string
	draining      bool

	// counters (guarded by mu)
	submitted     map[CounterKey]int64
	outcomes      map[CounterKey]int64
	shed          map[string]int64
	retries       int64
	interrupted   int64
	recovered     int64
	corrupt       int64
	persistErrors int64

	wake      chan struct{}
	stopClaim chan struct{}
	wg        sync.WaitGroup
	started   bool
}

// NewManager opens (or creates) the store under opts.Dir, recovers its
// queue — terminal jobs are retained for status queries, queued jobs
// re-enter the queue, and jobs found mid-run (a crash) are re-queued
// with an interruption mark, to be re-executed deterministically — and
// returns a manager ready to Start. Corrupt store files are quarantined
// and counted, never fatal.
func NewManager(opts Options, be Backend) (*Manager, error) {
	if be == nil {
		return nil, fmt.Errorf("jobs: nil backend")
	}
	opts = opts.withDefaults()
	st, err := openStore(opts.Dir)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		opts:      opts,
		be:        be,
		st:        st,
		br:        newBroker(),
		jobs:      make(map[string]*job),
		q:         newQueue(opts.AgingInterval),
		quotas:    newQuotas(opts.Quota),
		running:   make(map[string]context.CancelCauseFunc),
		submitted: make(map[CounterKey]int64),
		outcomes:  make(map[CounterKey]int64),
		shed:      make(map[string]int64),
		wake:      make(chan struct{}, 1),
		stopClaim: make(chan struct{}),
	}
	loaded, corrupt, err := st.load()
	if err != nil {
		return nil, err
	}
	m.corrupt = int64(corrupt)
	now := opts.Clock.Now()
	for _, j := range loaded {
		if j.Seq > m.seq {
			m.seq = j.Seq
		}
		m.jobs[j.ID] = j
		switch {
		case j.State.Terminal():
			m.terminalOrder = append(m.terminalOrder, j.ID)
		case j.CancelRequest:
			// A cancel was accepted but the crash beat the terminal
			// transition; honor it now rather than re-running work the
			// user disowned.
			j.State = StateCancelled
			m.outcomes[CounterKey{State: j.State, Class: j.Class, Tenant: j.Tenant}]++
			m.terminalOrder = append(m.terminalOrder, j.ID)
			m.persistLocked(j)
			m.br.Publish(j.ID, Event{Type: EventCancelled, State: StateCancelled, Attempt: j.Attempt})
		default:
			if j.State == StateRunning {
				// Crashed mid-attempt: the attempt never finished, so it
				// does not count against the retry budget.
				if j.Attempt > 0 {
					j.Attempt--
				}
				j.Interruptions++
				m.interrupted++
				j.State = StateQueued
				m.persistLocked(j)
			}
			m.recovered++
			m.quotas.live[j.Tenant]++
			m.q.push(j, now)
			m.queued++
			m.br.Publish(j.ID, Event{Type: EventRecovered, State: StateQueued, Attempt: j.Attempt,
				Message: fmt.Sprintf("recovered from store (interruptions: %d)", j.Interruptions)})
		}
	}
	m.evictLocked()
	return m, nil
}

// Start launches the worker pool. Idempotent.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started || m.draining {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	for i := 0; i < m.opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// Drain stops the plane: no new jobs are claimed (submissions shed),
// running jobs get until ctx's deadline to finish, and any still
// running after that are cancelled and re-queued to the durable store
// as interrupted — the checkpoint a restarted daemon resumes from. A
// nil return means every running job finished inside the deadline.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.mu.Unlock()
	close(m.stopClaim)

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		m.br.Close()
		return nil
	case <-ctx.Done():
	}
	m.mu.Lock()
	n := len(m.running)
	for _, cancel := range m.running {
		cancel(errInterrupted)
	}
	m.mu.Unlock()
	<-done
	m.br.Close()
	if n > 0 {
		return fmt.Errorf("jobs: drain deadline: %d running job(s) interrupted and re-queued", n)
	}
	return nil
}

// Submit validates, admits, persists, and enqueues one job, returning
// its accepted snapshot. Over-quota and over-capacity submissions
// return a *ShedError before any state is created.
func (m *Manager) Submit(spec Spec) (*View, error) {
	if !ValidKind(spec.Kind) {
		return nil, fmt.Errorf("jobs: unknown kind %q (valid: %v)", spec.Kind, Kinds())
	}
	if spec.Class == "" {
		spec.Class = DefaultClass
	}
	if !ValidClass(spec.Class) {
		return nil, fmt.Errorf("jobs: unknown class %q (valid: %v)", spec.Class, Classes())
	}
	if spec.Tenant == "" {
		spec.Tenant = "anonymous"
	}

	m.mu.Lock()
	now := m.opts.Clock.Now()
	if m.draining {
		m.shed["draining"]++
		m.mu.Unlock()
		return nil, &ShedError{Reason: "draining", RetryAfter: 5 * time.Second, Msg: "daemon is draining"}
	}
	if m.queued >= m.opts.QueueMax {
		m.shed["queue_full"]++
		m.mu.Unlock()
		return nil, &ShedError{Reason: "queue_full", RetryAfter: time.Second,
			Msg: fmt.Sprintf("job queue full (%d queued)", m.opts.QueueMax)}
	}
	if err := m.quotas.admit(spec.Tenant, now); err != nil {
		var se *ShedError
		if errors.As(err, &se) {
			m.shed[se.Reason]++
		}
		m.mu.Unlock()
		return nil, err
	}
	m.seq++
	j := &job{
		Spec:  spec,
		ID:    newID(),
		State: StateQueued,
		Seq:   m.seq,
	}
	// Durability before acknowledgement: if the spec cannot be
	// persisted, the job is refused — an accepted job must survive a
	// crash.
	if m.st != nil {
		if err := m.st.save(j); err != nil {
			m.quotas.release(spec.Tenant, now)
			m.mu.Unlock()
			return nil, err
		}
	}
	m.jobs[j.ID] = j
	m.submitted[CounterKey{Class: j.Class, Tenant: j.Tenant}]++
	m.q.push(j, now)
	m.queued++
	v := j.view()
	m.mu.Unlock()
	m.br.Publish(v.ID, Event{Type: EventQueued, State: StateQueued})
	m.wakeOne()
	return v, nil
}

// Get returns a job's current snapshot.
func (m *Manager) Get(id string) (*View, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	return j.view(), true
}

// List snapshots every known job in admission order.
func (m *Manager) List() []*View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*View, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.view())
	}
	// Admission order — stable and meaningful for dashboards.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && m.seqOf(out[k].ID) < m.seqOf(out[k-1].ID); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

func (m *Manager) seqOf(id string) uint64 {
	if j, ok := m.jobs[id]; ok {
		return j.Seq
	}
	return 0
}

// Result returns the verbatim response bytes of a succeeded job. The
// returned slice must not be mutated.
func (m *Manager) Result(id string) ([]byte, State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, "", false
	}
	return j.Result, j.State, true
}

// Cancel requests cancellation: a queued job terminates immediately; a
// running job's attempt context is cancelled and the job terminates
// when the attempt returns. Cancelling a terminal job returns
// ErrNotCancellable with the (unchanged) snapshot.
func (m *Manager) Cancel(id string) (*View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrUnknownJob
	}
	now := m.opts.Clock.Now()
	switch {
	case j.State.Terminal():
		v := j.view()
		m.mu.Unlock()
		return v, ErrNotCancellable
	case j.State == StateQueued:
		j.CancelRequest = true
		j.State = StateCancelled
		m.queued--
		m.finishLocked(j, now)
		v := j.view()
		m.mu.Unlock()
		m.br.Publish(id, Event{Type: EventCancelled, State: StateCancelled, Attempt: v.Attempt})
		return v, nil
	default: // running
		j.CancelRequest = true
		cancel := m.running[id]
		m.persistLocked(j)
		v := j.view()
		m.mu.Unlock()
		if cancel != nil {
			cancel(errCancelRequested)
		}
		return v, nil
	}
}

// Subscribe returns id's event history plus a live feed (closed after
// the terminal event; immediately if the job already finished).
func (m *Manager) Subscribe(id string) (history []Event, ch <-chan Event, cancel func(), err error) {
	m.mu.Lock()
	_, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, nil, ErrUnknownJob
	}
	history, ch, cancel = m.br.Subscribe(id)
	return history, ch, cancel, nil
}

// worker is one pool goroutine: claim the best ready job, execute it,
// repeat; sleep when nothing is ready, bounded by the next retry's due
// time.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return
		}
		now := m.opts.Clock.Now()
		j, wait := m.q.pop(now)
		if j != nil {
			m.queued--
			j.State = StateRunning
			j.Attempt++
			jctx, cancel := context.WithCancelCause(context.Background())
			m.running[j.ID] = cancel
			w := Work{ID: j.ID, Kind: j.Kind, Tenant: j.Tenant, Attempt: j.Attempt, Request: j.Request}
			m.persistLocked(j)
			more := m.queued > 0
			m.mu.Unlock()
			if more {
				m.wakeOne() // chain-wake: more ready work than awake workers
			}
			m.br.Publish(w.ID, Event{Type: EventStarted, State: StateRunning, Attempt: w.Attempt})
			m.attempt(jctx, cancel, j, w)
			continue
		}
		m.mu.Unlock()
		var timerC <-chan time.Time
		var timer clock.Timer
		if wait > 0 {
			// The injected clock schedules the retry-due wakeup, so a
			// fake clock drives backoff tests without real sleeping.
			timer = m.opts.Clock.NewTimer(wait)
			timerC = timer.C()
		}
		select {
		case <-m.stopClaim:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-m.wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// attempt executes one claimed job attempt through the backend under
// the per-attempt deadline, with panics quarantined by
// parallel.Protect, then applies the outcome to the state machine.
func (m *Manager) attempt(jctx context.Context, cancel context.CancelCauseFunc, j *job, w Work) {
	actx, acancel := context.WithTimeout(jctx, m.opts.Timeout)
	var body []byte
	err := parallel.Protect(func() error {
		b, e := m.be.Execute(actx, w, func(msg string) {
			m.br.Publish(w.ID, Event{Type: EventProgress, State: StateRunning, Attempt: w.Attempt, Message: msg})
		})
		body = b
		return e
	})
	acancel()
	cause := context.Cause(jctx)
	cancel(nil)

	m.mu.Lock()
	delete(m.running, j.ID)
	now := m.opts.Clock.Now()
	var ev Event
	switch {
	case err == nil:
		// Success stands even if a cancel raced in too late to matter.
		j.State = StateSucceeded
		j.Result = body
		j.Failure = nil
		m.finishLocked(j, now)
		ev = Event{Type: EventSucceeded, State: StateSucceeded, Attempt: w.Attempt}
	case errors.Is(cause, errInterrupted):
		// Drain interrupted the attempt: back to the durable queue; the
		// attempt does not count, and a restart re-runs the spec
		// deterministically.
		j.State = StateQueued
		j.Attempt--
		j.Interruptions++
		m.interrupted++
		m.q.push(j, now)
		m.queued++
		m.persistLocked(j)
		ev = Event{Type: EventRecovered, State: StateQueued, Attempt: j.Attempt,
			Message: "interrupted by shutdown; re-queued"}
	case j.CancelRequest || errors.Is(cause, errCancelRequested):
		j.State = StateCancelled
		j.Failure = failureFrom(err, w.Attempt)
		m.finishLocked(j, now)
		ev = Event{Type: EventCancelled, State: StateCancelled, Attempt: w.Attempt}
	case Retryable(err) && j.Attempt < m.opts.Retry.MaxAttempts:
		delay := m.opts.Retry.Backoff(j.ID, j.Attempt)
		j.State = StateQueued
		j.Failure = failureFrom(err, w.Attempt)
		m.retries++
		m.q.pushDelayed(j, now.Add(delay))
		m.queued++
		m.persistLocked(j)
		ev = Event{Type: EventRetrying, State: StateQueued, Attempt: w.Attempt,
			Message: fmt.Sprintf("attempt %d failed (%v); retrying in %v", w.Attempt, err, delay.Round(time.Millisecond))}
	default:
		j.State = StateFailed
		j.Failure = failureFrom(err, w.Attempt)
		m.finishLocked(j, now)
		ev = Event{Type: EventFailed, State: StateFailed, Attempt: w.Attempt, Message: err.Error()}
	}
	m.mu.Unlock()
	m.br.Publish(w.ID, ev)
	if ev.Type == EventRetrying || ev.Type == EventRecovered {
		m.wakeOne()
	}
}

// finishLocked applies the bookkeeping of a terminal transition:
// release the tenant's quota slot, count the outcome, persist, and
// evict beyond retention.
func (m *Manager) finishLocked(j *job, now time.Time) {
	m.quotas.release(j.Tenant, now)
	m.outcomes[CounterKey{State: j.State, Class: j.Class, Tenant: j.Tenant}]++
	m.terminalOrder = append(m.terminalOrder, j.ID)
	m.persistLocked(j)
	m.evictLocked()
}

func (m *Manager) persistLocked(j *job) {
	if err := m.st.save(j); err != nil {
		m.persistErrors++
	}
}

// evictLocked drops the oldest terminal jobs beyond the retention cap:
// memory record, event feed, and store file.
func (m *Manager) evictLocked() {
	for len(m.terminalOrder) > m.opts.Retention {
		id := m.terminalOrder[0]
		m.terminalOrder = m.terminalOrder[1:]
		if j, ok := m.jobs[id]; ok && j.State.Terminal() {
			delete(m.jobs, id)
			m.st.remove(id)
			m.br.Drop(id)
		}
	}
}

func (m *Manager) wakeOne() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// CounterKey labels a submission or outcome counter. Submitted
// counters leave State empty.
type CounterKey struct {
	State  State
	Class  Class
	Tenant string
}

// Snapshot is a point-in-time reading of the plane's gauges and
// counters, rendered by the daemon's /metrics endpoint.
type Snapshot struct {
	Queued, Running int
	Submitted       map[CounterKey]int64
	Outcomes        map[CounterKey]int64
	Shed            map[string]int64
	Retries         int64
	Interrupted     int64
	Recovered       int64
	Corrupt         int64
	PersistErrors   int64
}

// Metrics snapshots the plane's counters.
func (m *Manager) Metrics() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Queued:        m.queued,
		Running:       len(m.running),
		Submitted:     make(map[CounterKey]int64, len(m.submitted)),
		Outcomes:      make(map[CounterKey]int64, len(m.outcomes)),
		Shed:          make(map[string]int64, len(m.shed)),
		Retries:       m.retries,
		Interrupted:   m.interrupted,
		Recovered:     m.recovered,
		Corrupt:       m.corrupt,
		PersistErrors: m.persistErrors,
	}
	for k, v := range m.submitted {
		s.Submitted[k] = v
	}
	for k, v := range m.outcomes {
		s.Outcomes[k] = v
	}
	for k, v := range m.shed {
		s.Shed[k] = v
	}
	return s
}

// newID returns a 16-hex-digit random job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}
