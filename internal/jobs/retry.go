package jobs

import (
	"errors"
	"hash/fnv"
	"time"

	"vaq/internal/parallel"
)

// Policy bounds retries of retryable failures: exponential backoff with
// deterministic per-(job, attempt) jitter. Jitter is derived from the
// job id, not a global RNG, so two daemons replaying the same queue
// spread retries identically and tests are reproducible.
type Policy struct {
	// MaxAttempts is the total attempts a job may start (default 3).
	MaxAttempts int
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Max caps the grown delay before jitter (default 5s).
	Max time.Duration
	// JitterFrac adds up to this fraction of the delay as jitter
	// (default 0.5, i.e. delay ∈ [d, 1.5d)).
	JitterFrac float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	} else if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	}
	return p
}

// Backoff returns the delay before attempt+1 may start, given that
// 1-based attempt just failed: Base·Multiplier^(attempt−1) capped at
// Max, plus deterministic jitter in [0, JitterFrac·delay).
func (p Policy) Backoff(id string, attempt int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	// SplitMix64-style scramble of fnv(id)^attempt → uniform in [0,1).
	h := fnv.New64a()
	h.Write([]byte(id))
	z := h.Sum64() + uint64(attempt)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	return time.Duration(d * (1 + p.JitterFrac*u))
}

// Retryable classifies a failed attempt: permanent failures (wrapped
// ErrPermanent) never retry; everything else — transient pipeline
// errors, per-attempt deadline expiry, panics quarantined by
// parallel.Protect — is worth another attempt under backoff.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	return !errors.Is(err, ErrPermanent)
}

// failureFrom builds the typed Failure record for a failed attempt,
// extracting the quarantined panic stack when the attempt panicked.
func failureFrom(err error, attempt int) *Failure {
	f := &Failure{Message: err.Error(), Permanent: !Retryable(err), Attempt: attempt}
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		f.Panic = true
		stack := string(pe.Stack)
		if len(stack) > maxStackBytes {
			stack = stack[:maxStackBytes] + "\n…truncated"
		}
		f.Stack = stack
	}
	return f
}
