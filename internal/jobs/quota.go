package jobs

import (
	"fmt"
	"math"
	"time"
)

// Quota is the per-tenant admission policy. Both controls shed before
// any work is admitted — an over-quota submission costs the daemon one
// map lookup, not a queue slot.
type Quota struct {
	// Rate is the sustained submissions/second each tenant may make
	// (token-bucket refill rate; default 10).
	Rate float64
	// Burst is the bucket capacity (default 20).
	Burst int
	// MaxPerTenant caps one tenant's queued+running jobs (default 256).
	MaxPerTenant int
}

func (q Quota) withDefaults() Quota {
	if q.Rate <= 0 {
		q.Rate = 10
	}
	if q.Burst <= 0 {
		q.Burst = 20
	}
	if q.MaxPerTenant <= 0 {
		q.MaxPerTenant = 256
	}
	return q
}

// bucket is one tenant's token bucket. tokens is the balance as of
// last; refill happens lazily on use.
type bucket struct {
	tokens float64
	last   time.Time
}

// quotas tracks every active tenant's bucket and live-job count. It is
// guarded by the manager mutex (admission already holds it).
type quotas struct {
	q       Quota
	buckets map[string]*bucket
	live    map[string]int // queued+running per tenant
}

func newQuotas(q Quota) *quotas {
	return &quotas{q: q.withDefaults(), buckets: make(map[string]*bucket), live: make(map[string]int)}
}

// admit charges one submission token and one live-job slot for tenant,
// or returns the ShedError explaining the refusal.
func (t *quotas) admit(tenant string, now time.Time) error {
	b, ok := t.buckets[tenant]
	if !ok {
		b = &bucket{tokens: float64(t.q.Burst), last: now}
		t.buckets[tenant] = b
	}
	b.tokens = math.Min(float64(t.q.Burst), b.tokens+now.Sub(b.last).Seconds()*t.q.Rate)
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / t.q.Rate * float64(time.Second))
		return &ShedError{
			Reason:     "rate",
			RetryAfter: wait,
			Msg:        fmt.Sprintf("tenant %q over submission rate (%.3g/s, burst %d)", tenant, t.q.Rate, t.q.Burst),
		}
	}
	if t.live[tenant] >= t.q.MaxPerTenant {
		return &ShedError{
			Reason:     "tenant_quota",
			RetryAfter: 2 * time.Second,
			Msg:        fmt.Sprintf("tenant %q at quota: %d jobs queued or running (max %d)", tenant, t.live[tenant], t.q.MaxPerTenant),
		}
	}
	b.tokens--
	t.live[tenant]++
	return nil
}

// release returns tenant's live-job slot when a job reaches a terminal
// state, pruning idle tenants so the maps stay bounded by the set of
// tenants with live jobs or unreplenished buckets.
func (t *quotas) release(tenant string, now time.Time) {
	if t.live[tenant] > 0 {
		t.live[tenant]--
	}
	if t.live[tenant] == 0 {
		delete(t.live, tenant)
		// Drop the bucket once it is indistinguishable from a fresh one.
		if b, ok := t.buckets[tenant]; ok {
			b.tokens = math.Min(float64(t.q.Burst), b.tokens+now.Sub(b.last).Seconds()*t.q.Rate)
			b.last = now
			if b.tokens >= float64(t.q.Burst) {
				delete(t.buckets, tenant)
			}
		}
	}
}
