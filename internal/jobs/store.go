package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vaq/internal/checkpoint"
)

// store persists one file per job under dir, written atomically via
// checkpoint.AtomicWriteFile, so an accepted job survives any crash:
// the file either holds the previous consistent state or the new one.
// Like checkpoint entries, each file carries its own key (the job id)
// inside an envelope and is verified on load — a renamed, truncated or
// foreign file is quarantined (renamed aside with a .corrupt suffix),
// never fatal and never silently trusted.
//
// A nil *store is the in-memory mode: every method is a no-op, jobs
// live only as long as the process.
type store struct {
	dir string
}

// storeEnvelope is the on-disk shape: the id inside the file must match
// the id the filename claims.
type storeEnvelope struct {
	ID  string          `json:"id"`
	Job json.RawMessage `json:"job"`
}

// persisted is the subset of job state that survives a restart. Runtime
// scheduling fields (enqueue/ready times) deliberately do not: a
// recovered job re-enters the queue fresh.
type persisted struct {
	ID            string          `json:"id"`
	Tenant        string          `json:"tenant"`
	Class         Class           `json:"class"`
	Kind          Kind            `json:"kind"`
	Request       json.RawMessage `json:"request"`
	State         State           `json:"state"`
	Attempt       int             `json:"attempt"`
	Interruptions int             `json:"interruptions"`
	Seq           uint64          `json:"seq"`
	Failure       *Failure        `json:"failure,omitempty"`
	// Result holds the successful attempt's verbatim response bytes.
	// []byte marshals as base64, which round-trips byte-exactly —
	// embedding as raw JSON would re-compact and break the
	// byte-identity contract of the result endpoint.
	Result        []byte `json:"result,omitempty"`
	CancelRequest bool   `json:"cancel_requested,omitempty"`
}

func openStore(dir string) (*store, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: store: %w", err)
	}
	return &store{dir: dir}, nil
}

func (s *store) path(id string) string {
	return filepath.Join(s.dir, "job-"+id+".json")
}

// save persists j's durable state atomically. A nil store is a no-op.
func (s *store) save(j *job) error {
	if s == nil {
		return nil
	}
	p := persisted{
		ID:            j.ID,
		Tenant:        j.Tenant,
		Class:         j.Class,
		Kind:          j.Kind,
		Request:       j.Request,
		State:         j.State,
		Attempt:       j.Attempt,
		Interruptions: j.Interruptions,
		Seq:           j.Seq,
		Failure:       j.Failure,
		Result:        j.Result,
		CancelRequest: j.CancelRequest,
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("jobs: encode %s: %w", j.ID, err)
	}
	data, err := json.Marshal(storeEnvelope{ID: j.ID, Job: raw})
	if err != nil {
		return fmt.Errorf("jobs: encode %s: %w", j.ID, err)
	}
	if err := checkpoint.AtomicWriteFile(s.path(j.ID), data); err != nil {
		return fmt.Errorf("jobs: write %s: %w", j.ID, err)
	}
	return nil
}

// remove deletes j's file (retention eviction). A nil store is a no-op.
func (s *store) remove(id string) {
	if s == nil {
		return
	}
	os.Remove(s.path(id))
}

// load scans the store directory and returns every decodable job,
// ordered by admission sequence. Unreadable or corrupt files are
// quarantined: renamed to <name>.corrupt so they stop being re-parsed
// at every boot, counted, and skipped — a damaged entry must never take
// the daemon down or shadow a healthy queue.
func (s *store) load() (jobs []*job, corrupt int, err error) {
	if s == nil {
		return nil, 0, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: scan store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, "job-"), ".json")
		path := filepath.Join(s.dir, name)
		j, jerr := readJob(path, id)
		if jerr != nil {
			corrupt++
			os.Rename(path, path+".corrupt")
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	return jobs, corrupt, nil
}

func readJob(path, wantID string) (*job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env storeEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("envelope: %w", err)
	}
	if env.ID != wantID {
		return nil, fmt.Errorf("envelope id %q does not match file %q", env.ID, wantID)
	}
	var p persisted
	if err := json.Unmarshal(env.Job, &p); err != nil {
		return nil, fmt.Errorf("job body: %w", err)
	}
	if p.ID != wantID || !ValidKind(p.Kind) || !ValidClass(p.Class) {
		return nil, fmt.Errorf("job body inconsistent (id %q kind %q class %q)", p.ID, p.Kind, p.Class)
	}
	return &job{
		Spec:          Spec{Tenant: p.Tenant, Class: p.Class, Kind: p.Kind, Request: p.Request},
		ID:            p.ID,
		State:         p.State,
		Attempt:       p.Attempt,
		Interruptions: p.Interruptions,
		Seq:           p.Seq,
		Failure:       p.Failure,
		Result:        p.Result,
		CancelRequest: p.CancelRequest,
	}, nil
}
