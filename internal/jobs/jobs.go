// Package jobs is the durable asynchronous job plane behind nisqd: a
// persistent, priority-aware work queue that converts the daemon from
// request/response to a production control plane. A submitted job is
// persisted atomically before it is acknowledged (the same
// tmp+fsync+rename envelope discipline package checkpoint uses), so a
// daemon crash can never lose an accepted job; on restart the queue is
// recovered from disk and interrupted jobs re-execute, and because every
// pipeline in this repository is deterministic (seeded Monte-Carlo
// streams, fingerprint-scoped caches), a resumed job's result is
// byte-identical to an uninterrupted run of the same spec.
//
// The plane provides:
//
//   - bounded worker-pool execution through a pluggable Backend (the
//     in-process pool today; the interface is the seam for remote
//     workers), with per-attempt deadlines and panic quarantine into
//     typed Failure records (stack included) via parallel.Protect;
//   - bounded retry with exponential backoff and deterministic
//     per-(job, attempt) jitter for retryable failures — permanent
//     failures (validation, unknown devices) fail fast;
//   - priority classes with aging: every queued job's effective
//     priority improves as it waits, so background work can never
//     starve behind a stream of interactive submissions;
//   - per-tenant admission control: a token-bucket submission rate
//     limit plus a cap on each tenant's queued+running jobs, shed with
//     a typed ShedError the HTTP layer maps to 429 + Retry-After;
//   - per-job lifecycle events (queued, started, progress, retrying,
//     terminal) with replay + live subscription, the feed behind the
//     SSE endpoint.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Kind names the request shape a job carries; each kind maps to one of
// the daemon's synchronous endpoints and produces exactly the bytes
// that endpoint would have returned.
type Kind string

const (
	KindCompile   Kind = "compile"
	KindEstimate  Kind = "estimate"
	KindBatch     Kind = "batch"
	KindPortfolio Kind = "portfolio"
	KindSweep     Kind = "sweep"
)

// Kinds lists the accepted job kinds, for validation messages.
func Kinds() []Kind {
	return []Kind{KindCompile, KindEstimate, KindBatch, KindPortfolio, KindSweep}
}

// ValidKind reports whether k names a known job kind.
func ValidKind(k Kind) bool {
	for _, v := range Kinds() {
		if k == v {
			return true
		}
	}
	return false
}

// Class is a job's priority class. Lower rank dispatches first, but
// rank is not absolute: a queued job's effective priority improves by
// one rank per aging interval waited, so background work eventually
// outranks fresh interactive work (no starvation).
type Class string

const (
	ClassInteractive Class = "interactive"
	ClassBatch       Class = "batch"
	ClassBackground  Class = "background"
)

// DefaultClass is the class applied when a submission names none.
const DefaultClass = ClassBatch

// Classes lists the accepted priority classes, best-first.
func Classes() []Class { return []Class{ClassInteractive, ClassBatch, ClassBackground} }

// rank is the class's base priority (lower dispatches first).
func (c Class) rank() int {
	switch c {
	case ClassInteractive:
		return 0
	case ClassBatch:
		return 1
	default:
		return 2
	}
}

// ValidClass reports whether c names a known priority class.
func ValidClass(c Class) bool {
	for _, v := range Classes() {
		if c == v {
			return true
		}
	}
	return false
}

// State is a job's lifecycle state. The machine is
//
//	queued → running → succeeded | failed | cancelled
//	              ↘ queued (retry after backoff, or interrupted by
//	                        drain/crash — re-queued for resume)
//
// succeeded, failed and cancelled are terminal.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Failure is the typed record of a job attempt's failure, quarantined
// the way the experiment harness quarantines a failing unit: message,
// panic disposition with the captured stack, and whether the failure
// was classified permanent (no retry).
type Failure struct {
	Message   string `json:"message"`
	Panic     bool   `json:"panic,omitempty"`
	Stack     string `json:"stack,omitempty"`
	Permanent bool   `json:"permanent,omitempty"`
	// Attempt is the 1-based attempt that produced this failure.
	Attempt int `json:"attempt"`
}

// maxStackBytes bounds the stack captured into a Failure so a job file
// stays small.
const maxStackBytes = 4096

// Spec is a job submission: everything the caller chooses.
type Spec struct {
	Tenant  string          `json:"tenant,omitempty"`
	Class   Class           `json:"class,omitempty"`
	Kind    Kind            `json:"kind"`
	Request json.RawMessage `json:"request"`
}

// Work is the read-only view of a job a Backend executes: identity plus
// the raw request. Attempt is 1-based.
type Work struct {
	ID      string
	Kind    Kind
	Tenant  string
	Attempt int
	Request json.RawMessage
}

// View is a point-in-time snapshot of a job, safe to hold and marshal
// after the manager has moved on. It is the JSON shape of the status
// endpoint.
type View struct {
	ID            string   `json:"id"`
	Tenant        string   `json:"tenant"`
	Class         Class    `json:"class"`
	Kind          Kind     `json:"kind"`
	State         State    `json:"state"`
	Attempt       int      `json:"attempt"`
	Interruptions int      `json:"interruptions,omitempty"`
	CancelRequest bool     `json:"cancel_requested,omitempty"`
	Failure       *Failure `json:"failure,omitempty"`
	HasResult     bool     `json:"has_result,omitempty"`
}

// job is the manager's mutable record. All fields are guarded by the
// manager mutex; workers operate on copies.
type job struct {
	Spec
	ID            string
	State         State
	Attempt       int // attempts started (1-based once running)
	Interruptions int // crash/drain re-queues (not counted as attempts)
	Seq           uint64
	Failure       *Failure
	Result        []byte // verbatim response bytes of the successful attempt
	CancelRequest bool

	// enqueuedAt drives aging; reset every time the job (re)enters the
	// queue. readyAt delays a retried job until its backoff expires.
	enqueuedAt time.Time
	readyAt    time.Time
}

func (j *job) view() *View {
	v := &View{
		ID:            j.ID,
		Tenant:        j.Tenant,
		Class:         j.Class,
		Kind:          j.Kind,
		State:         j.State,
		Attempt:       j.Attempt,
		Interruptions: j.Interruptions,
		CancelRequest: j.CancelRequest,
		HasResult:     len(j.Result) > 0,
	}
	if j.Failure != nil {
		f := *j.Failure
		v.Failure = &f
	}
	return v
}

// ErrPermanent marks a failure that must not be retried: the job's
// inputs are wrong (validation, unknown device, oversized program), so
// re-running the same spec can only fail the same way. Wrap with
// Permanent; classify with errors.Is(err, ErrPermanent).
var ErrPermanent = errors.New("permanent failure")

// Permanent wraps err as a permanent (non-retryable) failure.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrPermanent, err)
}

// ErrUnknownJob is returned for operations on an id the manager does
// not know.
var ErrUnknownJob = errors.New("unknown job")

// ErrNotCancellable is returned when cancelling a job already in a
// terminal state.
var ErrNotCancellable = errors.New("job already finished")

// ShedError is the typed admission refusal: the HTTP layer maps it to
// 429 with a (jittered) Retry-After derived from RetryAfter.
type ShedError struct {
	// Reason is a stable label for metrics: "rate", "tenant_quota" or
	// "queue_full".
	Reason string
	// RetryAfter is the earliest time a retry could plausibly be
	// admitted (for the rate limiter, the token refill time; for the
	// quotas, a coarse hint).
	RetryAfter time.Duration
	Msg        string
}

func (e *ShedError) Error() string { return e.Msg }
