package jobs

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// BenchmarkJobThroughput measures the control plane's own overhead —
// submit, persist (in-memory store here), dispatch, execute, finish —
// with a backend that returns instantly, so ns/op is the queue's cost
// per job, not the pipeline's. The worker-count axis shows how far the
// single manager mutex scales before it is the bottleneck.
func BenchmarkJobThroughput(b *testing.B) {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	if counts[2] <= 2 {
		counts = counts[:2]
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m, err := NewManager(Options{
				Workers:  workers,
				QueueMax: b.N + 1,
				Quota:    Quota{Rate: 1e12, Burst: 1 << 30, MaxPerTenant: 1 << 30},
			}, BackendFunc(func(ctx context.Context, w Work, progress func(string)) ([]byte, error) {
				return []byte("{}"), nil
			}))
			if err != nil {
				b.Fatal(err)
			}
			m.Start()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Submit(Spec{Kind: KindEstimate, Request: []byte("{}")}); err != nil {
					b.Fatal(err)
				}
			}
			// Throughput includes draining the queue: the benchmark is done
			// when every submitted job has reached a terminal state.
			for {
				snap := m.Metrics()
				var done int64
				for _, n := range snap.Outcomes {
					done += n
				}
				if done >= int64(b.N) {
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/s")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			m.Drain(ctx)
			cancel()
		})
	}
}
