package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vaq/internal/clock"
)

// echoBackend succeeds immediately, returning the request bytes.
func echoBackend() Backend {
	return BackendFunc(func(_ context.Context, w Work, _ func(string)) ([]byte, error) {
		return append([]byte("result:"), w.Request...), nil
	})
}

// blockingBackend blocks until released (or ctx fires). release is safe
// to call once; started receives one value per attempt begun.
type blockingBackend struct {
	started chan string
	release chan struct{}
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingBackend) Execute(ctx context.Context, w Work, _ func(string)) ([]byte, error) {
	b.started <- w.ID
	select {
	case <-b.release:
		return []byte("done:" + w.ID), nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

func submitOK(t *testing.T, m *Manager, spec Spec) *View {
	t.Helper()
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return v
}

func spec(kind Kind, req string) Spec {
	return Spec{Kind: kind, Request: []byte(req)}
}

// waitState polls until job id reaches want (or the deadline trips).
func waitState(t *testing.T, m *Manager, id string, want State) *View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == want {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (now %+v)", id, want, v)
	return nil
}

func TestSubmitExecuteResult(t *testing.T) {
	m, err := NewManager(Options{Workers: 2}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	v := submitOK(t, m, spec(KindCompile, `{"x":1}`))
	if v.State != StateQueued || v.Tenant != "anonymous" || v.Class != DefaultClass {
		t.Fatalf("unexpected accepted view: %+v", v)
	}
	final := waitState(t, m, v.ID, StateSucceeded)
	if !final.HasResult || final.Attempt != 1 {
		t.Fatalf("unexpected final view: %+v", final)
	}
	body, st, ok := m.Result(v.ID)
	if !ok || st != StateSucceeded || string(body) != `result:{"x":1}` {
		t.Fatalf("Result = %q, %s, %v", body, st, ok)
	}
	met := m.Metrics()
	if met.Outcomes[CounterKey{State: StateSucceeded, Class: DefaultClass, Tenant: "anonymous"}] != 1 {
		t.Fatalf("outcome counter missing: %+v", met.Outcomes)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := NewManager(Options{}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := m.Submit(Spec{Kind: KindCompile, Class: "vip"}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// waitStateClocked is waitState for managers on a fake clock: whenever
// the worker loop is parked on a backoff timer, the clock is advanced
// past it instead of sleeping through the backoff for real.
func waitStateClocked(t *testing.T, m *Manager, f *clock.Fake, id string, want State) *View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == want {
			return v
		}
		if f.Pending() > 0 {
			f.Advance(12 * time.Hour) // past any hour-scale backoff
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	v, _ := m.Get(id)
	t.Fatalf("job %s never reached %s (now %+v)", id, want, v)
	return nil
}

func TestRetryBackoffThenSuccess(t *testing.T) {
	// Hour-scale backoffs on a fake clock: the test can only pass inside
	// its 10-second wall-clock deadline if the retry schedule runs on
	// the injected clock, never on real sleeps.
	fake := clock.NewFake(time.Unix(1700000000, 0))
	var calls atomic.Int32
	be := BackendFunc(func(_ context.Context, w Work, _ func(string)) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("transient glitch %d", w.Attempt)
		}
		return []byte("ok"), nil
	})
	m, err := NewManager(Options{
		Workers: 1,
		Clock:   fake,
		Retry:   Policy{MaxAttempts: 3, Base: time.Hour, Max: 4 * time.Hour},
	}, be)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	v := submitOK(t, m, spec(KindEstimate, `{}`))
	final := waitStateClocked(t, m, fake, v.ID, StateSucceeded)
	if final.Attempt != 3 {
		t.Fatalf("Attempt = %d, want 3", final.Attempt)
	}
	if got := m.Metrics().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	fake := clock.NewFake(time.Unix(1700000000, 0))
	be := BackendFunc(func(context.Context, Work, func(string)) ([]byte, error) {
		return nil, errors.New("always broken")
	})
	m, err := NewManager(Options{
		Workers: 1,
		Clock:   fake,
		Retry:   Policy{MaxAttempts: 2, Base: time.Hour, Max: 4 * time.Hour},
	}, be)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	v := submitOK(t, m, spec(KindCompile, `{}`))
	final := waitStateClocked(t, m, fake, v.ID, StateFailed)
	if final.Attempt != 2 || final.Failure == nil || final.Failure.Permanent {
		t.Fatalf("unexpected final view: %+v (failure %+v)", final, final.Failure)
	}
}

func TestPermanentFailureSkipsRetry(t *testing.T) {
	var calls atomic.Int32
	be := BackendFunc(func(context.Context, Work, func(string)) ([]byte, error) {
		calls.Add(1)
		return nil, Permanent(errors.New("bad request shape"))
	})
	m, err := NewManager(Options{Workers: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	v := submitOK(t, m, spec(KindCompile, `{}`))
	final := waitState(t, m, v.ID, StateFailed)
	if final.Attempt != 1 || calls.Load() != 1 {
		t.Fatalf("permanent failure was retried: attempt=%d calls=%d", final.Attempt, calls.Load())
	}
	if final.Failure == nil || !final.Failure.Permanent {
		t.Fatalf("failure not marked permanent: %+v", final.Failure)
	}
}

func TestPanicQuarantined(t *testing.T) {
	be := BackendFunc(func(context.Context, Work, func(string)) ([]byte, error) {
		panic("kernel exploded")
	})
	m, err := NewManager(Options{Workers: 1, Retry: Policy{MaxAttempts: 1, Base: time.Millisecond}}, be)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	v := submitOK(t, m, spec(KindCompile, `{}`))
	final := waitState(t, m, v.ID, StateFailed)
	f := final.Failure
	if f == nil || !f.Panic || !strings.Contains(f.Message, "kernel exploded") || f.Stack == "" {
		t.Fatalf("panic not quarantined into failure: %+v", f)
	}
}

func TestCancelQueued(t *testing.T) {
	// No Start: jobs stay queued forever.
	m, err := NewManager(Options{Workers: 1}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	v := submitOK(t, m, spec(KindCompile, `{}`))
	cv, err := m.Cancel(v.ID)
	if err != nil || cv.State != StateCancelled {
		t.Fatalf("Cancel = %+v, %v", cv, err)
	}
	if _, err := m.Cancel(v.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("second Cancel err = %v, want ErrNotCancellable", err)
	}
	if _, err := m.Cancel("deadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown Cancel err = %v, want ErrUnknownJob", err)
	}
}

func TestCancelRunning(t *testing.T) {
	be := newBlockingBackend()
	m, err := NewManager(Options{Workers: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	v := submitOK(t, m, spec(KindCompile, `{}`))
	<-be.started
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final := waitState(t, m, v.ID, StateCancelled)
	if !final.CancelRequest {
		t.Fatalf("cancel_requested not recorded: %+v", final)
	}
}

func TestQuotaRateShed(t *testing.T) {
	m, err := NewManager(Options{Quota: Quota{Rate: 0.001, Burst: 1, MaxPerTenant: 10}}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec(KindCompile, `{}`)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = m.Submit(spec(KindCompile, `{}`))
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "rate" || se.RetryAfter <= 0 {
		t.Fatalf("second submit err = %v, want rate ShedError with positive RetryAfter", err)
	}
	if m.Metrics().Shed["rate"] != 1 {
		t.Fatalf("shed counter: %+v", m.Metrics().Shed)
	}
}

func TestTenantQuotaIsolation(t *testing.T) {
	m, err := NewManager(Options{Quota: Quota{Rate: 1000, Burst: 1000, MaxPerTenant: 1}}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	// No Start: the first job occupies tenant A's only slot.
	if _, err := m.Submit(Spec{Tenant: "a", Kind: KindCompile, Request: []byte(`{}`)}); err != nil {
		t.Fatalf("tenant a first submit: %v", err)
	}
	_, err = m.Submit(Spec{Tenant: "a", Kind: KindCompile, Request: []byte(`{}`)})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "tenant_quota" {
		t.Fatalf("tenant a second submit err = %v, want tenant_quota", err)
	}
	// Tenant B is unaffected.
	if _, err := m.Submit(Spec{Tenant: "b", Kind: KindCompile, Request: []byte(`{}`)}); err != nil {
		t.Fatalf("tenant b submit sheds with tenant a at quota: %v", err)
	}
}

func TestQueueFullShed(t *testing.T) {
	m, err := NewManager(Options{QueueMax: 1}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec(KindCompile, `{}`)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err = m.Submit(spec(KindCompile, `{}`))
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "queue_full" {
		t.Fatalf("err = %v, want queue_full ShedError", err)
	}
}

func TestDurabilityAndRecovery(t *testing.T) {
	dir := t.TempDir()

	// Manager A accepts jobs but never runs them (no Start) — then
	// "crashes" (is dropped).
	a, err := NewManager(Options{Dir: dir}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	v1 := submitOK(t, a, spec(KindCompile, `{"p":1}`))
	v2 := submitOK(t, a, spec(KindEstimate, `{"p":2}`))
	cv, err := a.Cancel(v2.ID)
	if err != nil || cv.State != StateCancelled {
		t.Fatalf("cancel before crash: %+v, %v", cv, err)
	}

	// Manager B recovers the queue from disk and completes it.
	b, err := NewManager(Options{Dir: dir, Workers: 1}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Metrics().Recovered; got != 1 {
		t.Fatalf("Recovered = %d, want 1 (the queued job)", got)
	}
	if v, ok := b.Get(v2.ID); !ok || v.State != StateCancelled {
		t.Fatalf("cancelled job not retained across restart: %+v ok=%v", v, ok)
	}
	b.Start()
	defer b.Drain(context.Background())
	final := waitState(t, b, v1.ID, StateSucceeded)
	if body, _, _ := b.Result(final.ID); string(body) != `result:{"p":1}` {
		t.Fatalf("recovered job result = %q", body)
	}
}

func TestRunningJobRecoveredAsInterrupted(t *testing.T) {
	dir := t.TempDir()
	be := newBlockingBackend()
	a, err := NewManager(Options{Dir: dir, Workers: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	v := submitOK(t, a, spec(KindCompile, `{"p":3}`))
	<-be.started // the job's file on disk now says "running"

	// Simulate a crash: boot manager B from the same dir without
	// draining A. B must treat the running job as interrupted and re-run
	// it from the spec.
	b, err := NewManager(Options{Dir: dir, Workers: 1}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	bv, ok := b.Get(v.ID)
	if !ok || bv.State != StateQueued || bv.Interruptions != 1 || bv.Attempt != 0 {
		t.Fatalf("recovered view = %+v, want queued with 1 interruption, attempt reset", bv)
	}
	if b.Metrics().Interrupted != 1 {
		t.Fatalf("Interrupted = %d, want 1", b.Metrics().Interrupted)
	}
	b.Start()
	defer b.Drain(context.Background())
	final := waitState(t, b, v.ID, StateSucceeded)
	if final.Attempt != 1 || final.Interruptions != 1 {
		t.Fatalf("final view = %+v", final)
	}
	// Unblock A's worker and drain it, so its final persist cannot race
	// the test directory's cleanup.
	close(be.release)
	a.Drain(context.Background())
}

func TestCorruptStoreFilesQuarantined(t *testing.T) {
	dir := t.TempDir()
	a, err := NewManager(Options{Dir: dir}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	v := submitOK(t, a, spec(KindCompile, `{}`))

	// Three flavors of damage beside the healthy file.
	if err := os.WriteFile(filepath.Join(dir, "job-aaaa.json"), []byte("{truncat"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-bbbb.json"), []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Wrong-key envelope: valid JSON whose internal id contradicts the
	// filename (a copied or renamed file must not be trusted).
	healthy, err := os.ReadFile(filepath.Join(dir, "job-"+v.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-cccc.json"), healthy, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := NewManager(Options{Dir: dir, Workers: 1}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Metrics().Corrupt; got != 3 {
		t.Fatalf("Corrupt = %d, want 3", got)
	}
	if _, ok := b.Get(v.ID); !ok {
		t.Fatal("healthy job lost during quarantine")
	}
	for _, name := range []string{"job-aaaa.json.corrupt", "job-bbbb.json.corrupt", "job-cccc.json.corrupt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("quarantine file %s missing: %v", name, err)
		}
	}
	// And the quarantined copies are not re-counted at the next boot.
	c, err := NewManager(Options{Dir: dir}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Corrupt; got != 0 {
		t.Fatalf("Corrupt after quarantine = %d, want 0", got)
	}
}

func TestDrainInterruptsAndRequeues(t *testing.T) {
	dir := t.TempDir()
	be := newBlockingBackend()
	a, err := NewManager(Options{Dir: dir, Workers: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	v := submitOK(t, a, spec(KindCompile, `{"p":9}`))
	<-be.started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := a.Drain(ctx); err == nil {
		t.Fatal("Drain with a stuck job returned nil")
	}
	av, _ := a.Get(v.ID)
	if av.State != StateQueued || av.Interruptions != 1 {
		t.Fatalf("after drain: %+v, want queued with 1 interruption", av)
	}

	// A restarted daemon picks the job back up and finishes it.
	b, err := NewManager(Options{Dir: dir, Workers: 1}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Drain(context.Background())
	final := waitState(t, b, v.ID, StateSucceeded)
	if body, _, _ := b.Result(final.ID); string(body) != `result:{"p":9}` {
		t.Fatalf("resumed result = %q", body)
	}
}

func TestDrainGracefulWithinDeadline(t *testing.T) {
	be := newBlockingBackend()
	m, err := NewManager(Options{Workers: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	v := submitOK(t, m, spec(KindCompile, `{}`))
	<-be.started
	close(be.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if fv, _ := m.Get(v.ID); fv.State != StateSucceeded {
		t.Fatalf("job after graceful drain: %+v", fv)
	}
	// Submissions shed while draining.
	if _, err := m.Submit(spec(KindCompile, `{}`)); err == nil {
		t.Fatal("submit during drain accepted")
	}
}

func TestEventsReplayAndLive(t *testing.T) {
	be := newBlockingBackend()
	m, err := NewManager(Options{Workers: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	v := submitOK(t, m, spec(KindCompile, `{}`))
	<-be.started
	history, ch, cancel, err := m.Subscribe(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// queued and started already happened — replay must carry them.
	var types []string
	for _, ev := range history {
		types = append(types, ev.Type)
	}
	if len(types) < 2 || types[0] != EventQueued || types[1] != EventStarted {
		t.Fatalf("replayed history = %v", types)
	}
	close(be.release)
	var last Event
	for ev := range ch {
		last = ev
	}
	if last.Type != EventSucceeded || !last.State.Terminal() {
		t.Fatalf("live feed ended with %+v, want succeeded", last)
	}
	// Sequences are contiguous from replay into live delivery.
	if history[len(history)-1].Seq >= last.Seq {
		t.Fatalf("seq did not advance: history tail %d, last %d", history[len(history)-1].Seq, last.Seq)
	}

	// Subscribing after the terminal event: full replay, closed channel.
	h2, ch2, cancel2, err := m.Subscribe(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	if _, open := <-ch2; open {
		t.Fatal("channel for finished job not closed")
	}
	if h2[len(h2)-1].Type != EventSucceeded {
		t.Fatalf("post-terminal replay = %+v", h2)
	}

	if _, _, _, err := m.Subscribe("unknown"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Subscribe(unknown) err = %v", err)
	}
}

func TestRetentionEvictsOldTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Options{Dir: dir, Workers: 1, Retention: 2, Quota: Quota{Rate: 1e6, Burst: 1 << 20}}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())
	var ids []string
	for i := 0; i < 5; i++ {
		v := submitOK(t, m, spec(KindCompile, fmt.Sprintf(`{"i":%d}`, i)))
		waitState(t, m, v.ID, StateSucceeded)
		ids = append(ids, v.ID)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest terminal job survived retention")
	}
	if _, ok := m.Get(ids[4]); !ok {
		t.Fatal("newest terminal job evicted")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("store holds %d files, want 2 (retention)", len(entries))
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Multiplier: 2, Max: 5 * time.Second, JitterFrac: 0.5, MaxAttempts: 10}
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := p.Backoff("job-x", attempt)
		d2 := p.Backoff("job-x", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, d1, d2)
		}
		base := float64(100*time.Millisecond) * float64(int(1)<<(attempt-1))
		if base > float64(5*time.Second) {
			base = float64(5 * time.Second)
		}
		if float64(d1) < base || float64(d1) >= base*1.5 {
			t.Fatalf("attempt %d: %v outside [%v, %v)", attempt, d1, time.Duration(base), time.Duration(base*1.5))
		}
	}
	if p.Backoff("job-x", 1) == p.Backoff("job-y", 1) {
		t.Fatal("different jobs got identical jitter (suspicious)")
	}
}

func TestManagerConcurrentMixedClients(t *testing.T) {
	m, err := NewManager(Options{
		Workers: 4,
		Quota:   Quota{Rate: 1e6, Burst: 1 << 20, MaxPerTenant: 1 << 20},
	}, echoBackend())
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Drain(context.Background())

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", c%4)
			for i := 0; i < 8; i++ {
				v, err := m.Submit(Spec{Tenant: tenant, Kind: KindCompile, Request: []byte(`{}`)})
				if err != nil {
					errs <- err
					return
				}
				switch i % 3 {
				case 0:
					m.Get(v.ID)
				case 1:
					m.Cancel(v.ID) // may race with completion; both fine
				default:
					if _, ch, cancel, err := m.Subscribe(v.ID); err == nil {
						go func() {
							for range ch {
							}
						}()
						defer cancel()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client error: %v", err)
	}
	// Everything settles to a terminal state.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		met := m.Metrics()
		if met.Queued == 0 && met.Running == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("queue never drained: %+v", m.Metrics())
}

func TestResultBytesRoundTripExactly(t *testing.T) {
	// The durability contract: result bytes survive a store round-trip
	// byte-for-byte, including whitespace that raw-JSON embedding would
	// destroy.
	dir := t.TempDir()
	exact := []byte("{\n  \"deep\": [1, 2, 3]\n}\n")
	be := BackendFunc(func(context.Context, Work, func(string)) ([]byte, error) {
		return exact, nil
	})
	a, err := NewManager(Options{Dir: dir, Workers: 1}, be)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	v := submitOK(t, a, spec(KindCompile, `{}`))
	waitState(t, a, v.ID, StateSucceeded)
	a.Drain(context.Background())

	b, err := NewManager(Options{Dir: dir}, be)
	if err != nil {
		t.Fatal(err)
	}
	body, st, ok := b.Result(v.ID)
	if !ok || st != StateSucceeded || !bytes.Equal(body, exact) {
		t.Fatalf("restart result = %q (%s, %v), want exact bytes", body, st, ok)
	}
}
