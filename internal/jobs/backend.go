package jobs

import "context"

// Backend executes one job attempt and returns the verbatim response
// bytes a synchronous request for the same spec would have produced.
// It is the job plane's execution seam: the in-process backend (the
// serve layer's pipeline) is the only implementation today, but the
// contract is deliberately remote-worker-shaped — a Work value is
// self-contained (id, kind, raw request), progress is a message stream,
// and the result is opaque bytes.
//
// Contract:
//   - Execute must honor ctx: the manager cancels it on per-attempt
//     deadline expiry, job cancellation, and drain. Work already done
//     when ctx fires is discarded; the job is re-run from its spec, and
//     determinism (seeded streams) makes the re-run byte-identical.
//   - An error wrapped with Permanent is never retried; any other
//     error (including a panic, which the manager quarantines) retries
//     under the backoff policy.
//   - progress may be called at any cadence; each call becomes one
//     "progress" event on the job's feed. It must not be called after
//     Execute returns.
type Backend interface {
	Execute(ctx context.Context, w Work, progress func(message string)) ([]byte, error)
}

// BackendFunc adapts a function to the Backend interface.
type BackendFunc func(ctx context.Context, w Work, progress func(string)) ([]byte, error)

// Execute implements Backend.
func (f BackendFunc) Execute(ctx context.Context, w Work, progress func(string)) ([]byte, error) {
	return f(ctx, w, progress)
}
