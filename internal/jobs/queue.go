package jobs

import (
	"container/heap"
	"time"
)

// queue is the dispatcher's ready structure: one FIFO per priority
// class plus a time-ordered heap of backoff-delayed retries. It is not
// self-locking — the manager mutex guards it.
//
// Dispatch order is priority with aging: a queued job's effective
// priority is its class rank minus the number of aging intervals it has
// waited, and the lowest effective value wins (ties break on admission
// order). Within one class FIFO order is always effective-priority
// order (equal rank, monotone waits), so only the class heads compete —
// a pop is O(classes + released retries), not O(queue).
type queue struct {
	classes [3][]*job
	delayed delayedHeap
	aging   time.Duration
}

func newQueue(aging time.Duration) *queue {
	if aging <= 0 {
		aging = 30 * time.Second
	}
	return &queue{aging: aging}
}

// push makes j dispatchable now.
func (q *queue) push(j *job, now time.Time) {
	j.enqueuedAt = now
	j.readyAt = time.Time{}
	r := j.Class.rank()
	q.classes[r] = append(q.classes[r], j)
}

// pushDelayed schedules j to become dispatchable at ready.
func (q *queue) pushDelayed(j *job, ready time.Time) {
	j.readyAt = ready
	heap.Push(&q.delayed, j)
}

// pop returns the best dispatchable job, or (nil, wait) where wait is
// how long the caller may sleep before anything can change (0 means
// "nothing pending, wait for a push"). Jobs whose state is no longer
// queued (cancelled while waiting) are discarded lazily here.
func (q *queue) pop(now time.Time) (*job, time.Duration) {
	// Release due retries into their class FIFOs. Aging restarts at
	// release: the backoff was the job's own doing, not queue pressure.
	for q.delayed.Len() > 0 && !q.delayed[0].readyAt.After(now) {
		j := heap.Pop(&q.delayed).(*job)
		if j.State == StateQueued {
			q.push(j, now)
		}
	}
	best, bestRank := (*job)(nil), 0.0
	for r := range q.classes {
		// Drop stale heads (cancelled while queued).
		for len(q.classes[r]) > 0 && q.classes[r][0].State != StateQueued {
			q.classes[r] = q.classes[r][1:]
		}
		if len(q.classes[r]) == 0 {
			continue
		}
		h := q.classes[r][0]
		eff := float64(r) - now.Sub(h.enqueuedAt).Seconds()/q.aging.Seconds()
		if best == nil || eff < bestRank || (eff == bestRank && h.Seq < best.Seq) {
			best, bestRank = h, eff
		}
	}
	if best != nil {
		r := best.Class.rank()
		q.classes[r] = q.classes[r][1:]
		return best, 0
	}
	if q.delayed.Len() > 0 {
		return nil, q.delayed[0].readyAt.Sub(now)
	}
	return nil, 0
}

// len counts dispatchable-or-delayed jobs still in the queued state.
func (q *queue) len() int {
	n := 0
	for r := range q.classes {
		for _, j := range q.classes[r] {
			if j.State == StateQueued {
				n++
			}
		}
	}
	for _, j := range q.delayed {
		if j.State == StateQueued {
			n++
		}
	}
	return n
}

// delayedHeap orders retried jobs by readyAt (ties on Seq for
// determinism).
type delayedHeap []*job

func (h delayedHeap) Len() int { return len(h) }
func (h delayedHeap) Less(a, b int) bool {
	if !h[a].readyAt.Equal(h[b].readyAt) {
		return h[a].readyAt.Before(h[b].readyAt)
	}
	return h[a].Seq < h[b].Seq
}
func (h delayedHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *delayedHeap) Push(x any)         { *h = append(*h, x.(*job)) }
func (h *delayedHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
