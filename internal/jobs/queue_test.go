package jobs

import (
	"testing"
	"time"
)

func qjob(seq uint64, class Class) *job {
	return &job{Spec: Spec{Class: class, Kind: KindCompile}, ID: newID(), State: StateQueued, Seq: seq}
}

func TestQueueClassOrder(t *testing.T) {
	q := newQueue(30 * time.Second)
	t0 := time.Unix(1000, 0)
	bg := qjob(1, ClassBackground)
	ia := qjob(2, ClassInteractive)
	ba := qjob(3, ClassBatch)
	q.push(bg, t0)
	q.push(ia, t0)
	q.push(ba, t0)

	want := []*job{ia, ba, bg}
	for i, w := range want {
		j, _ := q.pop(t0)
		if j != w {
			t.Fatalf("pop %d = %v, want %v", i, j, w)
		}
	}
	if j, wait := q.pop(t0); j != nil || wait != 0 {
		t.Fatalf("empty pop = %v, %v", j, wait)
	}
}

func TestQueueAgingPreventsStarvation(t *testing.T) {
	aging := 30 * time.Second
	q := newQueue(aging)
	t0 := time.Unix(1000, 0)
	bg := qjob(1, ClassBackground)
	q.push(bg, t0)

	// A fresh interactive job outranks a background job that has waited
	// less than its rank gap (2 aging intervals)...
	ia1 := qjob(2, ClassInteractive)
	q.push(ia1, t0.Add(aging))
	if j, _ := q.pop(t0.Add(aging)); j != ia1 {
		t.Fatalf("fresh interactive should win at +1 interval, got %v", j)
	}

	// ...but once the background job has aged past the gap, it wins even
	// against a brand-new interactive submission.
	ia2 := qjob(3, ClassInteractive)
	late := t0.Add(3 * aging)
	q.push(ia2, late)
	if j, _ := q.pop(late); j != bg {
		t.Fatalf("aged background should outrank fresh interactive, got %+v", j)
	}
	if j, _ := q.pop(late); j != ia2 {
		t.Fatalf("interactive should pop next, got %v", j)
	}
}

func TestQueueTieBreaksOnSeq(t *testing.T) {
	q := newQueue(30 * time.Second)
	t0 := time.Unix(1000, 0)
	a := qjob(5, ClassBatch)
	b := qjob(4, ClassInteractive)
	// Same effective priority: batch that aged exactly one interval vs
	// fresh interactive. Lower Seq wins.
	q.push(a, t0.Add(-30*time.Second))
	q.push(b, t0)
	if j, _ := q.pop(t0); j != b {
		t.Fatalf("tie should break to lower seq, got %+v", j)
	}
}

func TestQueueDelayedRelease(t *testing.T) {
	q := newQueue(30 * time.Second)
	t0 := time.Unix(1000, 0)
	j1 := qjob(1, ClassBatch)
	q.pushDelayed(j1, t0.Add(50*time.Millisecond))

	got, wait := q.pop(t0)
	if got != nil || wait != 50*time.Millisecond {
		t.Fatalf("pop before due = %v, %v; want nil, 50ms hint", got, wait)
	}
	got, _ = q.pop(t0.Add(50 * time.Millisecond))
	if got != j1 {
		t.Fatalf("pop at due = %v, want released job", got)
	}
}

func TestQueueLazyDiscardCancelled(t *testing.T) {
	q := newQueue(30 * time.Second)
	t0 := time.Unix(1000, 0)
	dead := qjob(1, ClassBatch)
	live := qjob(2, ClassBatch)
	q.push(dead, t0)
	q.push(live, t0)
	dead.State = StateCancelled

	if j, _ := q.pop(t0); j != live {
		t.Fatalf("pop should skip cancelled head, got %v", j)
	}
	if q.len() != 0 {
		t.Fatalf("len = %d, want 0", q.len())
	}

	// Cancelled delayed jobs are discarded at release time too.
	d2 := qjob(3, ClassBatch)
	q.pushDelayed(d2, t0.Add(time.Millisecond))
	d2.State = StateCancelled
	if j, wait := q.pop(t0.Add(time.Millisecond)); j != nil || wait != 0 {
		t.Fatalf("cancelled delayed job dispatched: %v, %v", j, wait)
	}
}
