package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vaq/internal/calib"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testConfig keeps tests fast and deterministic: small MC budgets, a
// known seed, and caching on.
func testConfig() Config {
	return Config{Seed: 2019, MaxTrials: 5000000, CacheEntries: 64}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServerConfig(t, testConfig())
}

func newTestServerConfig(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, data.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, data.Bytes()
}

// golden compares got with testdata/golden/<name>; -update rewrites.
// Golden bodies are deterministic: every estimate is seeded and the
// simulator is bit-identical at any worker count.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (rerun with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	golden(t, "healthz.json", body)
}

func TestDevices(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/v1/devices")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	golden(t, "devices.json", body)
}

func TestCompileGolden(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"workload":"bv-8","policy":"vqm","device":"q20","seed":2019,"trials":20000}`
	resp, body := post(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nisqd-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	golden(t, "compile_bv8_vqm.json", body)

	// The repeat must be served from cache, bit-identical.
	resp2, body2 := post(t, ts.URL+"/v1/compile", req)
	if got := resp2.Header.Get("X-Nisqd-Cache"); got != "hit" {
		t.Errorf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached response differs from computed response")
	}

	// The report field is the exact nisqc CLI text.
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Report, "program     bv-8 (8 qubits,") {
		t.Errorf("report text unexpected:\n%s", res.Report)
	}
}

func TestCompileQASM(t *testing.T) {
	_, ts := newTestServer(t)
	qasm := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
`
	reqBody, _ := json.Marshal(map[string]any{
		"qasm": qasm, "policy": "baseline", "device": "q5", "trials": 5000,
	})
	resp, body := post(t, ts.URL+"/v1/compile", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	golden(t, "compile_qasm_q5.json", body)
}

func TestEstimateGolden(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/estimate",
		`{"workload":"ghz-4","policy":"baseline","device":"q5","trials":4096}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	golden(t, "estimate_analytic.json", body)
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.MC != nil {
		t.Error("analytic-only estimate should omit monte_carlo")
	}

	resp, body = post(t, ts.URL+"/v1/estimate",
		`{"workload":"ghz-4","policy":"baseline","device":"q5","trials":4096,"monte_carlo":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	golden(t, "estimate_mc.json", body)
}

func TestBatchGolden(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"items":[
 {"workload":"bv-4","policy":"baseline","device":"q20","trials":2000},
 {"workload":"bv-999","policy":"baseline","device":"q20","trials":2000},
 {"workload":"triswap","policy":"vqm","device":"nope","trials":2000}
]}`
	resp, body := post(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	golden(t, "batch_mixed.json", body)

	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(br.Items))
	}
	if br.Items[0].Result == nil || br.Items[0].Error != nil {
		t.Error("item 0 should succeed")
	}
	if br.Items[1].Error == nil || br.Items[1].Error.Status != http.StatusBadRequest {
		t.Errorf("item 1 should fail with 400: %+v", br.Items[1].Error)
	}
	if br.Items[2].Error == nil || br.Items[2].Error.Status != http.StatusNotFound {
		t.Errorf("item 2 should fail with 404: %+v", br.Items[2].Error)
	}
}

// TestBatchMatchesCompile pins the fan-out to the single-request path:
// the same item through /v1/batch and /v1/compile yields the same
// result (the batch runs items with serial inner MC, which the
// simulator guarantees is bit-identical).
func TestBatchMatchesCompile(t *testing.T) {
	_, ts := newTestServer(t)
	resp, single := post(t, ts.URL+"/v1/compile",
		`{"workload":"qft-5","policy":"vqm","device":"q20","trials":8192}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status %d", resp.StatusCode)
	}
	var want Result
	if err := json.Unmarshal(single, &want); err != nil {
		t.Fatal(err)
	}

	// Fresh server so the batch cannot be served from the cache the
	// compile just populated.
	_, ts2 := newTestServer(t)
	resp, body := post(t, ts2.URL+"/v1/batch",
		`{"items":[{"workload":"qft-5","policy":"vqm","device":"q20","trials":8192}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Result == nil {
		t.Fatalf("batch item failed: %+v", br.Items[0].Error)
	}
	got, _ := json.Marshal(br.Items[0].Result)
	wantJSON, _ := json.Marshal(&want)
	if !bytes.Equal(got, wantJSON) {
		t.Errorf("batch result differs from compile result:\n%s\n%s", got, wantJSON)
	}
}

func TestCalibrationUpload(t *testing.T) {
	s, ts := newTestServer(t)
	var arch bytes.Buffer
	if err := calib.Generate(calib.DefaultQ5Config(7)).WriteJSON(&arch); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts.URL+"/v1/calibration?name=lab-q5", arch.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	golden(t, "calibration_upload.json", body)

	// Registered device is immediately compilable.
	resp, body = post(t, ts.URL+"/v1/compile",
		`{"workload":"triswap","policy":"vqm","device":"lab-q5","trials":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile on uploaded device: status %d: %s", resp.StatusCode, body)
	}

	// Same archive again: idempotent.
	resp, _ = post(t, ts.URL+"/v1/calibration?name=lab-q5", arch.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent re-upload: status %d", resp.StatusCode)
	}

	// Same name, different calibration: conflict.
	var other bytes.Buffer
	if err := calib.Generate(calib.DefaultQ5Config(8)).WriteJSON(&other); err != nil {
		t.Fatal(err)
	}
	resp, _ = post(t, ts.URL+"/v1/calibration?name=lab-q5", other.String())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting re-upload: status %d, want 409", resp.StatusCode)
	}

	// Anonymous upload registers under its fingerprint.
	resp, body = post(t, ts.URL+"/v1/calibration", other.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous upload: status %d", resp.StatusCode)
	}
	var cr calibrationResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cr.Device.Name, "fp-") {
		t.Errorf("anonymous device name = %q, want fp-… prefix", cr.Device.Name)
	}
	if _, err := s.lookupDevice(cr.Device.Name); err != nil {
		t.Errorf("anonymous device not registered: %v", err)
	}
}

func TestCalibrationQuarantine(t *testing.T) {
	_, ts := newTestServer(t)
	cfg := calib.DefaultQ5Config(7)
	cfg.Days = 3 // several cycles, so one corrupt cycle leaves survivors
	arch := calib.Generate(cfg)
	var buf bytes.Buffer
	if err := arch.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt one snapshot's first two-qubit rate into an invalid
	// probability; the lenient reader must quarantine that cycle and
	// register the rest.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	snaps := m["snapshots"].([]any)
	snaps[0].(map[string]any)["two_qubit"].([]any)[0] = 3.5
	corrupted, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/v1/calibration?name=partial", string(corrupted))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr calibrationResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Quarantined) != 1 {
		t.Errorf("quarantined = %v, want 1 entry", cr.Quarantined)
	}
	if cr.Snapshots != len(arch.Snapshots)-1 {
		t.Errorf("snapshots = %d, want %d", cr.Snapshots, len(arch.Snapshots)-1)
	}
}

func TestRequestErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, endpoint, body string
		status               int
	}{
		{"malformed json", "/v1/compile", `{"workload":`, http.StatusBadRequest},
		{"unknown field", "/v1/compile", `{"workload":"bv-4","frobnicate":1}`, http.StatusBadRequest},
		{"trailing data", "/v1/compile", `{"workload":"bv-4"} {"again":true}`, http.StatusBadRequest},
		{"no source", "/v1/compile", `{"policy":"vqm"}`, http.StatusBadRequest},
		{"both sources", "/v1/compile", `{"workload":"bv-4","qasm":"OPENQASM 2.0;"}`, http.StatusBadRequest},
		{"unknown policy", "/v1/compile", `{"workload":"bv-4","policy":"magic"}`, http.StatusBadRequest},
		{"unknown workload", "/v1/compile", `{"workload":"sorcery-9"}`, http.StatusBadRequest},
		{"oversized workload", "/v1/compile", `{"workload":"bv-99999999"}`, http.StatusBadRequest},
		{"negative trials", "/v1/compile", `{"workload":"bv-4","trials":-5}`, http.StatusBadRequest},
		{"trials over cap", "/v1/compile", `{"workload":"bv-4","trials":99000000}`, http.StatusBadRequest},
		{"unknown device", "/v1/compile", `{"workload":"bv-4","device":"q999"}`, http.StatusNotFound},
		{"program too big for device", "/v1/compile", `{"workload":"bv-30","device":"q5"}`, http.StatusBadRequest},
		{"bad qasm", "/v1/compile", `{"qasm":"OPENQASM 2.0; nonsense"}`, http.StatusBadRequest},
		{"empty batch", "/v1/batch", `{"items":[]}`, http.StatusBadRequest},
		{"batch item error named", "/v1/batch", `{"items":[{"workload":"bv-4"},{"trials":-1,"workload":"bv-4"}]}`, http.StatusBadRequest},
		{"bad archive", "/v1/calibration", `{"topology":{"name":"x","num_qubits":0,"couplings":[]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tc.endpoint, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if eb.Error.Status != tc.status || eb.Error.Message == "" {
				t.Errorf("error envelope = %+v", eb.Error)
			}
		})
	}

	// Wrong method on a POST endpoint.
	resp, _ := get(t, ts.URL+"/v1/compile")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile status %d, want 405", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 512
	s := MustNew(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := post(t, ts.URL+"/v1/compile",
		fmt.Sprintf(`{"workload":"bv-4","qasm":%q}`, strings.Repeat("x", 2048)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/v1/compile", `{"workload":"bv-4","policy":"baseline","trials":2000}`)
	post(t, ts.URL+"/v1/compile", `{"workload":"bv-4","policy":"baseline","trials":2000}`)
	post(t, ts.URL+"/v1/compile", `{"workload":`)
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`nisqd_requests_total{endpoint="/v1/compile"} 3`,
		`nisqd_responses_total{code="200"} 2`,
		`nisqd_responses_total{code="400"} 1`,
		`nisqd_cache_hits_total 1`,
		`nisqd_cache_misses_total 1`,
		`nisqd_in_flight 0`,
		`nisqd_load_shed_total 0`,
		`nisqd_request_duration_seconds_count 3`,
		// One cache miss ran 2000 trials on the default (packed) kernel;
		// the cache hit added none.
		`nisqd_mc_trials_total{kernel="packed"} 2000`,
		`nisqd_mc_seconds_total{kernel="packed"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestKernelSelection covers the kernel knob end to end: the response's
// monte_carlo.kernel echoes the kernel that ran, the two kernels are
// distinct cache entries, scalar throughput is metered separately, and an
// unknown kernel is a 400.
func TestKernelSelection(t *testing.T) {
	_, ts := newTestServer(t)
	req := func(kernel string) string {
		return fmt.Sprintf(`{"workload":"bv-4","policy":"baseline","trials":2000,"monte_carlo":true,"kernel":%q}`, kernel)
	}
	var out struct {
		MC *MCInfo `json:"monte_carlo"`
	}
	for _, kernel := range []string{"packed", "scalar"} {
		resp, body := post(t, ts.URL+"/v1/estimate", req(kernel))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", kernel, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Nisqd-Cache") != "miss" {
			t.Errorf("%s: expected a distinct cache entry per kernel", kernel)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.MC == nil || out.MC.Kernel != kernel {
			t.Errorf("kernel %q response reports %+v", kernel, out.MC)
		}
	}
	resp, _ := post(t, ts.URL+"/v1/estimate", req("scalar"))
	if resp.Header.Get("X-Nisqd-Cache") != "hit" {
		t.Error("repeated scalar request missed the cache")
	}
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`nisqd_mc_trials_total{kernel="packed"} 2000`,
		`nisqd_mc_trials_total{kernel="scalar"} 2000`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	resp, body = post(t, ts.URL+"/v1/estimate", req("vectorized"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kernel: status %d: %s", resp.StatusCode, body)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := get(t, ts.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}
}
