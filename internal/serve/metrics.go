package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/route"
)

// latencyBounds are the upper bounds (seconds) of the request-latency
// histogram buckets; an implicit +Inf bucket follows the last.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricsState holds the daemon's operational counters, rendered by
// GET /metrics in Prometheus text format. The in-flight gauge is an
// atomic because the limiter reads it on the hot path; everything else
// is a small mutex-guarded map updated once per request.
type metricsState struct {
	inFlight atomic.Int64

	mu        sync.Mutex
	requests  map[string]int64 // by endpoint
	responses map[int]int64    // by status code
	shed      int64            // load-shedding 429s
	hits      int64            // response-cache hits
	misses    int64            // response-cache misses
	buckets   []int64          // latency histogram, one per bound + Inf
	sumNs     int64
	count     int64
	// Monte-Carlo trial throughput by kernel, counted on cache misses
	// (cache hits run no trials). trials/seconds is the observed
	// trials-per-second rate of each kernel.
	mcTrials  map[string]int64
	mcSeconds map[string]float64
	// Parameter-sweep throughput: points served and the compilations
	// the rebind engine avoided (every point after a sweep's first).
	sweepPoints int64
	sweepSaved  int64
}

func newMetricsState() *metricsState {
	return &metricsState{
		requests:  make(map[string]int64),
		responses: make(map[int]int64),
		buckets:   make([]int64, len(latencyBounds)+1),
		mcTrials:  make(map[string]int64),
		mcSeconds: make(map[string]float64),
	}
}

// mc records a freshly computed result's Monte-Carlo work (a no-op for
// analytic-only results).
func (m *metricsState) mc(res *Result) {
	if res == nil || res.MC == nil {
		return
	}
	m.mu.Lock()
	m.mcTrials[res.MC.Kernel] += int64(res.MC.Trials)
	m.mcSeconds[res.MC.Kernel] += res.mcElapsed.Seconds()
	m.mu.Unlock()
}

func (m *metricsState) request(endpoint string) {
	m.mu.Lock()
	m.requests[endpoint]++
	m.mu.Unlock()
}

func (m *metricsState) response(code int, elapsed time.Duration) {
	sec := elapsed.Seconds()
	i := sort.SearchFloat64s(latencyBounds, sec)
	m.mu.Lock()
	m.responses[code]++
	m.buckets[i]++
	m.sumNs += int64(elapsed)
	m.count++
	m.mu.Unlock()
}

func (m *metricsState) cache(hit bool) {
	m.mu.Lock()
	if hit {
		m.hits++
	} else {
		m.misses++
	}
	m.mu.Unlock()
}

// sweep records one served parameter sweep of n points.
func (m *metricsState) sweep(n int) {
	m.mu.Lock()
	m.sweepPoints += int64(n)
	if n > 1 {
		m.sweepSaved += int64(n - 1)
	}
	m.mu.Unlock()
}

func (m *metricsState) droppedRequest() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// render writes the counters in Prometheus text exposition format.
func (m *metricsState) render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	b.WriteString("# HELP nisqd_requests_total Requests received, by endpoint.\n")
	b.WriteString("# TYPE nisqd_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		fmt.Fprintf(&b, "nisqd_requests_total{endpoint=%q} %d\n", ep, m.requests[ep])
	}
	b.WriteString("# HELP nisqd_responses_total Responses sent, by status code.\n")
	b.WriteString("# TYPE nisqd_responses_total counter\n")
	codes := make([]int, 0, len(m.responses))
	for c := range m.responses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "nisqd_responses_total{code=\"%d\"} %d\n", c, m.responses[c])
	}
	b.WriteString("# HELP nisqd_load_shed_total Requests refused with 429 by the concurrency limiter.\n")
	b.WriteString("# TYPE nisqd_load_shed_total counter\n")
	fmt.Fprintf(&b, "nisqd_load_shed_total %d\n", m.shed)
	b.WriteString("# HELP nisqd_cache_hits_total Response-cache hits.\n")
	b.WriteString("# TYPE nisqd_cache_hits_total counter\n")
	fmt.Fprintf(&b, "nisqd_cache_hits_total %d\n", m.hits)
	b.WriteString("# HELP nisqd_cache_misses_total Response-cache misses.\n")
	b.WriteString("# TYPE nisqd_cache_misses_total counter\n")
	fmt.Fprintf(&b, "nisqd_cache_misses_total %d\n", m.misses)
	// Route cost-table cache: process-global (package route), not
	// per-server, so a fleet of synthetic large devices churning the
	// 1024-entry table shows up here instead of silently rebuilding
	// O(n²) tables per request.
	rc := route.CacheStats()
	b.WriteString("# HELP nisqd_route_cache_hits_total Route cost-table cache hits (process-wide).\n")
	b.WriteString("# TYPE nisqd_route_cache_hits_total counter\n")
	fmt.Fprintf(&b, "nisqd_route_cache_hits_total %d\n", rc.Hits)
	b.WriteString("# HELP nisqd_route_cache_misses_total Route cost-table cache misses (table builds).\n")
	b.WriteString("# TYPE nisqd_route_cache_misses_total counter\n")
	fmt.Fprintf(&b, "nisqd_route_cache_misses_total %d\n", rc.Misses)
	b.WriteString("# HELP nisqd_route_cache_evictions_total Route cost-table entries dropped by the bound sweep.\n")
	b.WriteString("# TYPE nisqd_route_cache_evictions_total counter\n")
	fmt.Fprintf(&b, "nisqd_route_cache_evictions_total %d\n", rc.Evictions)
	b.WriteString("# HELP nisqd_route_cache_entries Route cost-table entries currently cached.\n")
	b.WriteString("# TYPE nisqd_route_cache_entries gauge\n")
	fmt.Fprintf(&b, "nisqd_route_cache_entries %d\n", route.CacheLen())
	b.WriteString("# HELP nisqd_mc_trials_total Monte-Carlo trials simulated, by kernel.\n")
	b.WriteString("# TYPE nisqd_mc_trials_total counter\n")
	for _, k := range sortedKeys(m.mcTrials) {
		fmt.Fprintf(&b, "nisqd_mc_trials_total{kernel=%q} %d\n", k, m.mcTrials[k])
	}
	b.WriteString("# HELP nisqd_mc_seconds_total Wall time spent simulating Monte-Carlo trials, by kernel.\n")
	b.WriteString("# TYPE nisqd_mc_seconds_total counter\n")
	for _, k := range sortedKeys(m.mcTrials) {
		fmt.Fprintf(&b, "nisqd_mc_seconds_total{kernel=%q} %g\n", k, m.mcSeconds[k])
	}
	b.WriteString("# HELP nisqd_sweep_points_total Parameter-sweep points served.\n")
	b.WriteString("# TYPE nisqd_sweep_points_total counter\n")
	fmt.Fprintf(&b, "nisqd_sweep_points_total %d\n", m.sweepPoints)
	b.WriteString("# HELP nisqd_sweep_compiles_saved_total Compilations avoided by compile-once/rebind-many sweeps.\n")
	b.WriteString("# TYPE nisqd_sweep_compiles_saved_total counter\n")
	fmt.Fprintf(&b, "nisqd_sweep_compiles_saved_total %d\n", m.sweepSaved)
	b.WriteString("# HELP nisqd_in_flight Requests currently being served.\n")
	b.WriteString("# TYPE nisqd_in_flight gauge\n")
	fmt.Fprintf(&b, "nisqd_in_flight %d\n", m.inFlight.Load())
	b.WriteString("# HELP nisqd_request_duration_seconds Request latency histogram.\n")
	b.WriteString("# TYPE nisqd_request_duration_seconds histogram\n")
	cum := int64(0)
	for i, bound := range latencyBounds {
		cum += m.buckets[i]
		fmt.Fprintf(&b, "nisqd_request_duration_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	cum += m.buckets[len(latencyBounds)]
	fmt.Fprintf(&b, "nisqd_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "nisqd_request_duration_seconds_sum %g\n", float64(m.sumNs)/1e9)
	fmt.Fprintf(&b, "nisqd_request_duration_seconds_count %d\n", m.count)
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
