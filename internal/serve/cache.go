package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU of marshaled response bodies. It
// layers on top of the per-device routing cost cache in package route:
// the route cache makes a cold compile cheap to search, this cache makes
// a repeated request free. Values are the exact bytes previously
// written to a client, so a hit is a single map lookup plus one Write —
// and trivially bit-identical to the miss that populated it.
type lruCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// newLRUCache returns a cache bounded at max entries; max <= 0 disables
// caching (get always misses, put is a no-op).
func newLRUCache(max int) *lruCache {
	return &lruCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *lruCache) put(key string, val []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// delete drops one entry (a no-op when absent) — the invalidation hook
// the drift plane's canary adoption uses to stop serving a mapping the
// current calibration no longer supports.
func (c *lruCache) delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.m, key)
	return true
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
