package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"vaq/internal/caldrift"
	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/clock"
	"vaq/internal/jobs"
	"vaq/internal/portfolio"
)

// driftState is the server's calibration drift plane: the durable
// per-device cycle store, the latest drift report per device, the
// per-device hot-circuit set the canary recompiler draws targets from,
// and the SSE broker drift feeds hang off. All decision paths run on
// the injected clock; reports carry no wall-clock state.
type driftState struct {
	store  *caldrift.Store
	detect caldrift.DetectConfig
	canary caldrift.CanaryConfig
	window     int
	maxHot     int
	cool       time.Duration
	adoptDelta float64
	clk        clock.Clock
	events     *jobs.Broker

	mu      sync.Mutex
	hot     map[string][]hotCircuit
	reports map[string]*caldrift.Report
	// lastCanary gates canary runs per device under the cooldown (on
	// the injected clock, so tests drive it with a fake).
	lastCanary map[string]time.Time

	cycles     int64
	triggers   int64
	canaryRuns int64
	suppressed int64
	adoptions  int64
}

// hotCircuit is one LRU entry of a device's hot set: the logical
// program plus the stale physical mapping the response cache serves.
type hotCircuit struct {
	key   string
	prog  *circuit.Circuit
	stale *circuit.Circuit
}

// Drift event types published on the device feeds.
const (
	DriftEventCycle     = "cycle"
	DriftEventTriggered = "drift"
	DriftEventAdopted   = "adopt"
)

func newDriftState(cfg Config) (*driftState, error) {
	store, err := caldrift.Open(cfg.DriftDir)
	if err != nil {
		return nil, err
	}
	return &driftState{
		store:  store,
		detect: caldrift.DetectConfig{Threshold: cfg.DriftThreshold},
		canary: caldrift.CanaryConfig{
			MaxTargets: cfg.DriftHotCircuits,
			Spec:       canarySpec(cfg),
		},
		window:     cfg.DriftWindow,
		maxHot:     cfg.DriftHotCircuits,
		cool:       cfg.DriftCanaryCooldown,
		adoptDelta: cfg.DriftAdoptDelta,
		clk:        clock.Or(cfg.Clock),
		events:     jobs.NewBroker(),
		hot:        make(map[string][]hotCircuit),
		reports:    make(map[string]*caldrift.Report),
		lastCanary: make(map[string]time.Time),
	}, nil
}

// canarySpec keeps the speculative recompile cheap: the full policy
// grid on the drifted calibration window, but a single Monte-Carlo
// refinement slot with a small budget — the canary predicts analytic
// PST deltas, it does not serve candidates.
func canarySpec(cfg Config) portfolio.Spec {
	return portfolio.Spec{
		RootSeed:     DefaultSeed,
		Cycles:       cfg.DriftWindow,
		RandomStarts: -1,
		TopK:         1,
		Trials:       2000,
		Workers:      cfg.Workers,
	}
}

// noteHot records a compile-cache miss as a hot circuit: the freshest
// mapping the cache will now serve for key, and the canary's
// recompile-from-scratch baseline. Most recent last; the set is the
// per-device LRU the canary drains.
func (ds *driftState) noteHot(device, key string, prog, stale *circuit.Circuit) {
	if stale == nil || prog == nil {
		return
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	set := ds.hot[device]
	for i, h := range set {
		if h.key == key {
			set = append(append(set[:i:i], set[i+1:]...), h)
			ds.hot[device] = set
			return
		}
	}
	set = append(set, hotCircuit{key: key, prog: prog, stale: stale})
	if len(set) > ds.maxHot {
		set = set[len(set)-ds.maxHot:]
	}
	ds.hot[device] = set
}

// touchHot refreshes a hot circuit's LRU position on a cache hit.
func (ds *driftState) touchHot(device, key string) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	set := ds.hot[device]
	for i, h := range set {
		if h.key == key {
			ds.hot[device] = append(append(set[:i:i], set[i+1:]...), h)
			return
		}
	}
}

// dropHot removes a hot circuit whose mapping was adopted away — the
// next cache miss for the key re-registers the fresh mapping as the
// new canary baseline.
func (ds *driftState) dropHot(device, key string) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	set := ds.hot[device]
	for i, h := range set {
		if h.key == key {
			ds.hot[device] = append(set[:i:i], set[i+1:]...)
			return
		}
	}
}

// targets snapshots a device's hot set as canary targets, hottest
// first.
func (ds *driftState) targets(device string) []caldrift.CanaryTarget {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	set := ds.hot[device]
	out := make([]caldrift.CanaryTarget, 0, len(set))
	for i := len(set) - 1; i >= 0; i-- {
		h := set[i]
		out = append(out, caldrift.CanaryTarget{Name: h.key, Prog: h.prog, Stale: h.stale})
	}
	return out
}

// report returns the latest drift report for a device.
func (ds *driftState) report(device string) (*caldrift.Report, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	rep, ok := ds.reports[device]
	return rep, ok
}

// canaryDue consults and arms the per-device cooldown on the injected
// clock.
func (ds *driftState) canaryDue(device string) bool {
	if ds.cool <= 0 {
		return true
	}
	now := ds.clk.Now()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if last, ok := ds.lastCanary[device]; ok && now.Sub(last) < ds.cool {
		return false
	}
	ds.lastCanary[device] = now
	return true
}

// driftMetrics is the snapshot handleMetrics renders.
type driftMetrics struct {
	cycles, triggers, canaryRuns, suppressed, adoptions, corrupt int64
	scores                                                       map[string]float64
}

func (ds *driftState) metrics() driftMetrics {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	m := driftMetrics{
		cycles:     ds.cycles,
		triggers:   ds.triggers,
		canaryRuns: ds.canaryRuns,
		suppressed: ds.suppressed,
		adoptions:  ds.adoptions,
		scores:     make(map[string]float64, len(ds.reports)),
	}
	for dev, rep := range ds.reports {
		m.scores[dev] = rep.Score
	}
	m.corrupt = ds.store.Corrupt()
	return m
}

// handleCalibrationAppend is the drift plane's ingest path, reached
// through POST /v1/calibration?append=true: every snapshot in the body
// becomes one durable cycle in the named device's series
// (persist-before-ack), then the drift detector — and past threshold,
// the canary recompiler — runs over the updated window.
func (s *Server) handleCalibrationAppend(w http.ResponseWriter, r *http.Request, name string, arch *calib.Archive) {
	if name == "" {
		writeError(w, http.StatusBadRequest, "append requires an explicit device name")
		return
	}
	if len(arch.Snapshots) == 0 {
		writeError(w, http.StatusBadRequest, "append requires at least one calibration cycle")
		return
	}
	// Appends target a registered device: the drift score is relative
	// to that device's fingerprinted baseline series, so an unknown
	// name is a 404, not an implicit registration.
	d, err := s.lookupDevice(name)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	// The cycles must describe the registered device's topology — the
	// store's own first-append-fixes-topology rule would otherwise let
	// a wrong-device feed seed the series.
	dt := d.Topology()
	if arch.Topo.NumQubits != dt.NumQubits || len(arch.Topo.Couplings) != len(dt.Couplings) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"cycle topology (%d qubits, %d couplings) does not match device %q (%d qubits, %d couplings)",
			arch.Topo.NumQubits, len(arch.Topo.Couplings), name, dt.NumQubits, len(dt.Couplings)))
		return
	}
	for _, c := range arch.Topo.Couplings {
		if !dt.Adjacent(c.A, c.B) {
			writeError(w, http.StatusBadRequest, fmt.Sprintf(
				"cycle topology has link %d-%d, which device %q lacks", c.A, c.B, name))
			return
		}
	}
	var appended []int
	for _, snap := range arch.Snapshots {
		cyc, err := s.drift.store.Append(name, snap)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		appended = append(appended, cyc)
		s.drift.mu.Lock()
		s.drift.cycles++
		s.drift.mu.Unlock()
		s.drift.events.Publish(name, jobs.Event{
			Type:    DriftEventCycle,
			Attempt: cyc,
			Message: fmt.Sprintf("cycle %d appended", cyc),
		})
	}

	rep := s.runDrift(r.Context(), name)
	resp := struct {
		Device   string           `json:"device"`
		Appended []int            `json:"appended"`
		Cycles   int              `json:"cycles"`
		Drift    *caldrift.Report `json:"drift,omitempty"`
	}{Device: name, Appended: appended, Cycles: s.drift.store.Len(name), Drift: rep}
	writeJSON(w, http.StatusOK, resp)
}

// runDrift detects drift over the device's current window and, when
// triggered and due, runs the canary recompiler over the hot set. The
// resulting report is retained for GET /v1/drift/{device} and
// published on the device's event feed.
func (s *Server) runDrift(ctx context.Context, name string) *caldrift.Report {
	window := s.drift.store.Window(name, s.drift.window)
	if len(window) < 2 {
		return nil
	}
	rep, err := caldrift.Detect(name, window, s.drift.detect)
	if err != nil {
		return nil
	}
	if rep.Triggered {
		s.drift.mu.Lock()
		s.drift.triggers++
		s.drift.mu.Unlock()
		if s.drift.canaryDue(name) {
			if targets := s.drift.targets(name); len(targets) > 0 {
				canary, err := caldrift.Canary(ctx, window, targets, s.drift.canary)
				if err == nil {
					rep.Canary = canary
					s.drift.mu.Lock()
					s.drift.canaryRuns++
					s.drift.mu.Unlock()
					s.adoptCanary(name, canary)
				}
			}
		} else {
			s.drift.mu.Lock()
			s.drift.suppressed++
			s.drift.mu.Unlock()
		}
	}
	s.drift.mu.Lock()
	s.drift.reports[name] = rep
	s.drift.mu.Unlock()
	if rep.Triggered {
		msg := fmt.Sprintf("drift score %.4f over threshold %.4f", rep.Score, rep.Threshold)
		if rep.Canary != nil {
			msg += fmt.Sprintf("; canary: %d circuits, mean predicted delta %+.4f", rep.Canary.Targets, rep.Canary.MeanDelta)
		}
		s.drift.events.Publish(name, jobs.Event{Type: DriftEventTriggered, Message: msg})
	}
	return rep
}

// adoptCanary acts on a canary report: every target whose predicted
// recompile gain meets the adoption delta has its cached response
// invalidated (and its hot-set entry dropped), so the next request for
// that circuit recompiles against current state instead of being
// served the stale mapping forever. Returns how many were adopted.
func (s *Server) adoptCanary(device string, rep *caldrift.CanaryReport) int {
	if s.drift.adoptDelta < 0 || rep == nil {
		return 0
	}
	adopted := 0
	for _, d := range rep.Deltas {
		if d.Err != "" || d.Delta < s.drift.adoptDelta {
			continue
		}
		s.cache.delete(d.Name)
		s.drift.dropHot(device, d.Name)
		adopted++
	}
	if adopted > 0 {
		s.drift.mu.Lock()
		s.drift.adoptions += int64(adopted)
		s.drift.mu.Unlock()
		s.drift.events.Publish(device, jobs.Event{
			Type:    DriftEventAdopted,
			Message: fmt.Sprintf("adopted %d canary remapping(s): stale cached responses invalidated", adopted),
		})
	}
	return adopted
}

// handleCalibrationWindow serves GET /v1/calibration/{device}?window=K:
// the last K stored cycles in the self-describing calib wire format.
func (s *Server) handleCalibrationWindow(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("device")
	k, err := caldrift.ParseWindow(r.URL.Query().Get("window"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	arch, ok := s.drift.store.Archive(name, k)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no calibration cycles stored for device %q", name))
		return
	}
	var buf bytes.Buffer
	if err := arch.WriteJSON(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handleDriftReport serves GET /v1/drift/{device}: the latest drift
// report, canary deltas included when one ran.
func (s *Server) handleDriftReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("device")
	rep, ok := s.drift.report(name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("no drift report for device %q (append >= 2 calibration cycles first)", name))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleDriftEvents streams a device's drift feed as Server-Sent
// Events over the same broker plumbing as the job feeds. Drift feeds
// never terminate server-side (calibration keeps arriving); the stream
// ends when the client goes away or the server drains.
func (s *Server) handleDriftEvents(w http.ResponseWriter, r *http.Request) {
	s.met.request("/v1/drift/{device}/events")
	name := r.PathValue("device")
	if !caldrift.ValidDeviceName(name) {
		writeError(w, http.StatusBadRequest, "device name must match [a-zA-Z0-9][a-zA-Z0-9_-]{0,63}")
		return
	}
	history, ch, cancel := s.drift.events.Subscribe(name)
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Unlike a job feed, a drift feed may be empty at subscribe time:
	// flush the headers now so the client sees the stream open instead
	// of blocking until the first cycle arrives.
	fl.Flush()
	write := func(ev jobs.Event) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		fl.Flush()
	}
	for _, ev := range history {
		write(ev)
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			write(ev)
		case <-r.Context().Done():
			return
		}
	}
}

// renderDriftMetrics appends the drift plane's counters and per-device
// scores to the /metrics exposition.
func renderDriftMetrics(b *strings.Builder, m driftMetrics) {
	b.WriteString("# HELP nisqd_drift_cycles_total Calibration cycles appended to the drift store.\n")
	b.WriteString("# TYPE nisqd_drift_cycles_total counter\n")
	fmt.Fprintf(b, "nisqd_drift_cycles_total %d\n", m.cycles)
	b.WriteString("# HELP nisqd_drift_triggers_total Drift detections past threshold.\n")
	b.WriteString("# TYPE nisqd_drift_triggers_total counter\n")
	fmt.Fprintf(b, "nisqd_drift_triggers_total %d\n", m.triggers)
	b.WriteString("# HELP nisqd_drift_canary_runs_total Canary recompilations executed.\n")
	b.WriteString("# TYPE nisqd_drift_canary_runs_total counter\n")
	fmt.Fprintf(b, "nisqd_drift_canary_runs_total %d\n", m.canaryRuns)
	b.WriteString("# HELP nisqd_drift_canary_suppressed_total Canary runs skipped by the cooldown.\n")
	b.WriteString("# TYPE nisqd_drift_canary_suppressed_total counter\n")
	fmt.Fprintf(b, "nisqd_drift_canary_suppressed_total %d\n", m.suppressed)
	b.WriteString("# HELP nisqd_drift_adoptions_total Stale cached mappings invalidated on canary wins.\n")
	b.WriteString("# TYPE nisqd_drift_adoptions_total counter\n")
	fmt.Fprintf(b, "nisqd_drift_adoptions_total %d\n", m.adoptions)
	b.WriteString("# HELP nisqd_drift_store_corrupt_total Cycle envelopes quarantined at startup.\n")
	b.WriteString("# TYPE nisqd_drift_store_corrupt_total counter\n")
	fmt.Fprintf(b, "nisqd_drift_store_corrupt_total %d\n", m.corrupt)
	b.WriteString("# HELP nisqd_drift_score Latest drift score per device.\n")
	b.WriteString("# TYPE nisqd_drift_score gauge\n")
	devs := make([]string, 0, len(m.scores))
	for d := range m.scores {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	for _, d := range devs {
		fmt.Fprintf(b, "nisqd_drift_score{device=%q} %g\n", d, m.scores[d])
	}
}
