package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"testing"

	"vaq/internal/portfolio"
)

// timingRE matches the wall-clock diagnostics in a portfolio response —
// the only nondeterministic bytes — so golden comparisons can normalize
// them.
var timingRE = regexp.MustCompile(`"(compile_ns|total_ns)": \d+`)

func normalizeTimings(body []byte) []byte {
	return timingRE.ReplaceAll(body, []byte(`"$1": 0`))
}

func TestPortfolioGolden(t *testing.T) {
	_, ts := newTestServer(t)
	// Reference-device-only grid on the 5-qubit model keeps the 18
	// candidates cheap while still exercising every policy axis.
	req := `{"workload":"ghz-3","device":"q5","root_seed":7,"cycles":0,"random_starts":1,"top_k":2,"trials":2000}`
	resp, body := post(t, ts.URL+"/v1/portfolio", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Nisqd-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	golden(t, "portfolio_ghz3_q5.json", normalizeTimings(body))

	// The repeat is served from cache, bit-identical including the
	// original run's timings.
	resp2, body2 := post(t, ts.URL+"/v1/portfolio", req)
	if got := resp2.Header.Get("X-Nisqd-Cache"); got != "hit" {
		t.Errorf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached portfolio differs from computed portfolio")
	}

	var res portfolio.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 24 {
		t.Fatalf("ranked %d candidates, want 24", len(res.Candidates))
	}
	if res.Candidates[0].Rank != 1 || res.Candidates[0].MCResult == nil {
		t.Errorf("winner not MC-refined: %+v", res.Candidates[0])
	}
	if len(res.Failures) != 0 {
		t.Errorf("unexpected failures: %+v", res.Failures)
	}
}

// TestPortfolioCyclesWindow: on a device with a real archive the grid
// picks up per-cycle candidates, and omitted axes take the documented
// defaults.
func TestPortfolioCyclesWindow(t *testing.T) {
	s, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/portfolio",
		`{"workload":"bv-4","device":"q20","cycles":1,"random_starts":0,"top_k":1,"trials":1000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res portfolio.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	// (mean + 1 cycle) × 2 allocs × 4 movers × 2 optimize.
	if len(res.Candidates) != 32 {
		t.Fatalf("ranked %d candidates, want 32", len(res.Candidates))
	}
	_, arch, err := s.lookupDeviceArchive("q20")
	if err != nil || arch == nil {
		t.Fatalf("q20 archive missing: %v", err)
	}
	last := len(arch.Snapshots) - 1
	var sawMean, sawLast bool
	for _, c := range res.Candidates {
		switch c.Cycle {
		case portfolio.MeanCycle:
			sawMean = true
		case last:
			sawLast = true
		}
	}
	if !sawMean || !sawLast {
		t.Errorf("grid missing mean (%v) or most recent cycle %d (%v)", sawMean, last, sawLast)
	}
}

func TestPortfolioRequestErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{"workload":`, http.StatusBadRequest},
		{"unknown field", `{"workload":"bv-4","frobnicate":1}`, http.StatusBadRequest},
		{"trailing data", `{"workload":"bv-4"} {"again":true}`, http.StatusBadRequest},
		{"no source", `{"device":"q20"}`, http.StatusBadRequest},
		{"both sources", `{"workload":"bv-4","qasm":"OPENQASM 2.0;"}`, http.StatusBadRequest},
		{"unknown workload names valid ones", `{"workload":"sorcery-9"}`, http.StatusBadRequest},
		{"negative cycles", `{"workload":"bv-4","cycles":-1}`, http.StatusBadRequest},
		{"cycles over cap", `{"workload":"bv-4","cycles":99}`, http.StatusBadRequest},
		{"starts over cap", `{"workload":"bv-4","random_starts":99}`, http.StatusBadRequest},
		{"top_k over cap", `{"workload":"bv-4","top_k":99}`, http.StatusBadRequest},
		{"negative trials", `{"workload":"bv-4","trials":-5}`, http.StatusBadRequest},
		{"trials over cap", `{"workload":"bv-4","trials":99000000}`, http.StatusBadRequest},
		{"grid too large", `{"workload":"bv-4","cycles":16,"random_starts":8}`, http.StatusBadRequest},
		{"unknown device", `{"workload":"bv-4","device":"q999"}`, http.StatusNotFound},
		{"program too big for device", `{"workload":"bv-30","device":"q5"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/portfolio", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if eb.Error.Status != tc.status || eb.Error.Message == "" {
				t.Errorf("error envelope = %+v", eb.Error)
			}
		})
	}
}

// TestPortfolioSpecMapping pins the pointer semantics: omitted axes take
// the portfolio defaults, explicit zeros switch the axis off.
func TestPortfolioSpecMapping(t *testing.T) {
	req, err := DecodePortfolioRequest([]byte(`{"workload":"bv-4"}`), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := req.Spec(3)
	if spec.Cycles != portfolio.DefaultCycles || spec.RandomStarts != portfolio.DefaultRandomStarts {
		t.Errorf("omitted axes resolved to %+v, want portfolio defaults", spec)
	}
	if spec.RootSeed != portfolio.DefaultRootSeed || spec.TopK != portfolio.DefaultTopK ||
		spec.Trials != portfolio.DefaultTrials || spec.Workers != 3 {
		t.Errorf("defaults not applied: %+v", spec)
	}

	req, err = DecodePortfolioRequest([]byte(`{"workload":"bv-4","cycles":0,"random_starts":0}`), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec = req.Spec(0)
	if spec.Cycles >= 0 || spec.RandomStarts >= 0 {
		t.Errorf("explicit zeros should map to the spec's negative markers, got %+v", spec)
	}
}
