package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vaq/internal/jobs"
)

// jobsConfig is testConfig with a durable-less job plane sized for
// tests: enough quota headroom that only the tests probing admission
// control ever shed.
func jobsConfig() Config {
	cfg := testConfig()
	cfg.Jobs = jobs.Options{
		Workers: 2,
		Quota:   jobs.Quota{Rate: 10000, Burst: 10000, MaxPerTenant: 10000},
	}
	return cfg
}

// submitJob POSTs one job envelope and decodes the accepted view.
func submitJob(t *testing.T, base, body string) *jobs.View {
	t.Helper()
	resp, data := post(t, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var v jobs.View
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if v.ID == "" {
		t.Fatal("accepted job has no id")
	}
	return &v
}

// pollJob polls GET /v1/jobs/{id} until the job reaches want (or any
// terminal state, so a wrong outcome fails fast instead of timing out).
func pollJob(t *testing.T, base, id string, want jobs.State) *jobs.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data := get(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", resp.StatusCode, data)
		}
		var v jobs.View
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("poll response: %v", err)
		}
		if v.State == want || v.State.Terminal() {
			if v.State != want {
				t.Fatalf("job %s reached %s (failure: %+v), want %s", id, v.State, v.Failure, want)
			}
			return &v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobResultMatchesSyncEndpoint is the async/sync equivalence
// contract over HTTP: for every job kind, the bytes served by
// GET /v1/jobs/{id}/result are identical to the synchronous endpoint's
// response for the same request — measured against a separate server so
// no shared response cache can mask a divergence.
func TestJobResultMatchesSyncEndpoint(t *testing.T) {
	_, async := newTestServerConfig(t, jobsConfig())
	_, sync := newTestServer(t) // separate process-equivalent: own cache, own pipelines

	cases := []struct {
		kind, endpoint, request string
	}{
		{"compile", "/v1/compile",
			`{"workload":"bv-8","policy":"vqm","trials":4000,"monte_carlo":true}`},
		{"estimate", "/v1/estimate",
			`{"workload":"qft-4","policy":"baseline"}`},
		{"batch", "/v1/batch",
			`{"items":[{"workload":"ghz-3","policy":"vqm","trials":2000,"monte_carlo":true},{"workload":"bv-4","policy":"native"}]}`},
		{"portfolio", "/v1/portfolio",
			`{"workload":"bv-8","device":"q20","trials":4000,"cycles":1,"random_starts":1,"top_k":2}`},
		{"sweep", "/v1/sweep",
			`{"ansatz":"qaoa-3","policy":"vqm","points":[[0.1,0.2],[0.3,0.4],[0.5,0.6]]}`},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			v := submitJob(t, async.URL, fmt.Sprintf(`{"kind":%q,"request":%s}`, tc.kind, tc.request))
			if v.Class != jobs.DefaultClass || v.Tenant != "anonymous" {
				t.Errorf("defaults not applied: class=%s tenant=%s", v.Class, v.Tenant)
			}
			pollJob(t, async.URL, v.ID, jobs.StateSucceeded)

			resp, jobBytes := get(t, async.URL+"/v1/jobs/"+v.ID+"/result")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("result status %d: %s", resp.StatusCode, jobBytes)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("result Content-Type = %q", ct)
			}
			resp, syncBytes := post(t, sync.URL+tc.endpoint, tc.request)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("sync status %d: %s", resp.StatusCode, syncBytes)
			}
			if tc.kind == "portfolio" {
				// Portfolio responses carry wall-clock diagnostics — the one
				// nondeterministic field family; golden tests normalize them
				// the same way.
				jobBytes = normalizeTimings(jobBytes)
				syncBytes = normalizeTimings(syncBytes)
			}
			if !bytes.Equal(jobBytes, syncBytes) {
				t.Errorf("job result diverges from synchronous %s\n--- job ---\n%s--- sync ---\n%s",
					tc.endpoint, jobBytes, syncBytes)
			}
		})
	}
}

// TestJobSubmitValidation pins the eager-validation contract: a
// malformed submission is a 400 at submit time, never an asynchronous
// failure discovered by polling.
func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServerConfig(t, jobsConfig())
	cases := []struct {
		name, body, wantMsg string
	}{
		{"unknown kind", `{"kind":"simulate","request":{}}`, "kind must be one of"},
		{"unknown class", `{"kind":"compile","class":"urgent","request":{"workload":"bv-4"}}`, "class must be one of"},
		{"bad tenant", `{"kind":"compile","tenant":"bad tenant!","request":{"workload":"bv-4"}}`, "tenant must match"},
		{"missing request", `{"kind":"compile"}`, "request body is required"},
		{"unknown envelope field", `{"kind":"compile","priority":1,"request":{"workload":"bv-4"}}`, "decode"},
		{"trailing garbage", `{"kind":"compile","request":{"workload":"bv-4"}} extra`, "trailing data"},
		{"embedded compile invalid", `{"kind":"compile","request":{"workload":"bv-4","bogus":1}}`, "compile request"},
		{"embedded batch empty", `{"kind":"batch","request":{"items":[]}}`, "batch has no items"},
		{"embedded portfolio invalid", `{"kind":"portfolio","request":{"workload":"bv-4","cycles":99}}`, "cycles must be in"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantMsg) {
				t.Errorf("body %s does not mention %q", body, tc.wantMsg)
			}
		})
	}

	t.Run("unknown job id", func(t *testing.T) {
		for _, probe := range []struct{ method, path string }{
			{http.MethodGet, "/v1/jobs/deadbeef"},
			{http.MethodGet, "/v1/jobs/deadbeef/result"},
			{http.MethodGet, "/v1/jobs/deadbeef/events"},
			{http.MethodDelete, "/v1/jobs/deadbeef"},
		} {
			req, err := http.NewRequest(probe.method, ts.URL+probe.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
			}
		}
	})

	t.Run("tenant header", func(t *testing.T) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			strings.NewReader(`{"kind":"estimate","request":{"workload":"bv-4","policy":"baseline"}}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Nisqd-Tenant", "team-calib")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var v jobs.View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d, %v", resp.StatusCode, err)
		}
		if v.Tenant != "team-calib" {
			t.Errorf("tenant = %q, want header value", v.Tenant)
		}
	})
}

// TestJobPermanentFailure drives a job whose inputs pass submit-time
// validation but fail at execution (an unregistered device): the job
// must fail on the first attempt with a permanent Failure record — no
// retries burned on an input that can only fail the same way — and the
// result endpoint must 409 rather than serve anything.
func TestJobPermanentFailure(t *testing.T) {
	_, ts := newTestServerConfig(t, jobsConfig())
	v := submitJob(t, ts.URL,
		`{"kind":"compile","request":{"workload":"bv-4","device":"no-such-device"}}`)
	got := pollJob(t, ts.URL, v.ID, jobs.StateFailed)
	if got.Failure == nil || !got.Failure.Permanent {
		t.Fatalf("failure = %+v, want permanent", got.Failure)
	}
	if got.Attempt != 1 {
		t.Errorf("attempt = %d; a permanent failure must not retry", got.Attempt)
	}
	if !strings.Contains(got.Failure.Message, "no-such-device") {
		t.Errorf("failure message %q does not name the device", got.Failure.Message)
	}
	resp, body := get(t, ts.URL+"/v1/jobs/"+v.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of failed job: status %d, want 409; body: %s", resp.StatusCode, body)
	}
	// Terminal jobs are no longer cancellable.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("cancel of failed job: status %d, want 409", dresp.StatusCode)
	}
}

// TestJobShedRateLimit pins the admission-control surface: a tenant
// over its submission rate is shed with 429, a Retry-After hint derived
// from the token refill time, and a shed counter on /metrics.
func TestJobShedRateLimit(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = jobs.Options{Workers: 1, Quota: jobs.Quota{Rate: 0.5, Burst: 1, MaxPerTenant: 100}}
	_, ts := newTestServerConfig(t, cfg)

	body := `{"kind":"estimate","request":{"workload":"bv-4","policy":"baseline"}}`
	submitJob(t, ts.URL, body) // consumes the single token

	resp, data := post(t, ts.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body: %s", resp.StatusCode, data)
	}
	// Refill at 0.5 tokens/s puts the honest hint at ~2s; the header adds
	// up to 2s of jitter on top.
	if got, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || got < 1 || got > 6 {
		t.Errorf("Retry-After = %q, want an integer in [1, 6]", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(data), "rate") {
		t.Errorf("429 body %s does not name the rate limit", data)
	}

	resp, metrics := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if !strings.Contains(string(metrics), `nisqd_jobs_shed_total{reason="rate"} 1`) {
		t.Errorf("metrics missing shed counter:\n%s", metrics)
	}
}

// TestJobShedTenantQuota pins the live-jobs cap: with MaxPerTenant=1
// and the single worker pinned by a slow job, a second submission from
// the same tenant sheds while a different tenant is still admitted.
func TestJobShedTenantQuota(t *testing.T) {
	cfg := testConfig()
	cfg.Jobs = jobs.Options{Workers: 1, Quota: jobs.Quota{Rate: 10000, Burst: 10000, MaxPerTenant: 1}}
	s, ts := newTestServerConfig(t, cfg)

	slow := fmt.Sprintf(`{"kind":"estimate","tenant":"alice","request":%s}`, slowEstimate)
	v := submitJob(t, ts.URL, slow)

	resp, data := post(t, ts.URL+"/v1/jobs", slow)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(data), "alice") {
		t.Errorf("429 body %s does not name the tenant", data)
	}
	// Admission is per tenant: bob's budget is untouched.
	submitJob(t, ts.URL, fmt.Sprintf(`{"kind":"estimate","tenant":"bob","request":%s}`, slowEstimate))

	// Once alice's job finishes her quota frees up again.
	pollJob(t, ts.URL, v.ID, jobs.StateSucceeded)
	submitJob(t, ts.URL, slow)
	_ = s
}

// TestJobEventsSSE exercises the event stream over real HTTP: the
// stream replays from the queued event, carries SSE framing (id/event/
// data lines), and closes on its own once the job reaches a terminal
// state.
func TestJobEventsSSE(t *testing.T) {
	_, ts := newTestServerConfig(t, jobsConfig())
	v := submitJob(t, ts.URL,
		`{"kind":"compile","request":{"workload":"bv-8","policy":"vqm","trials":2000,"monte_carlo":true}}`)

	// Subscribe immediately: depending on timing this replays history,
	// streams live, or both — all must end in EOF at the terminal event.
	resp, body := get(t, ts.URL+"/v1/jobs/"+v.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	stream := string(body)
	for _, want := range []string{"event: queued", "event: started", "event: succeeded"} {
		if !strings.Contains(stream, want) {
			t.Errorf("stream missing %q:\n%s", want, stream)
		}
	}
	// Every data line is a well-formed Event and seqs strictly increase.
	lastSeq := -1
	events := 0
	for _, line := range strings.Split(stream, "\n") {
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", data, err)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event seq %d after %d; must strictly increase", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		events++
	}
	if events < 3 {
		t.Errorf("stream carried %d events, want at least queued/started/succeeded", events)
	}
}

// TestJobEventsSSEReconnect pins the reconnect contract of the event
// stream: a client that drops its connection mid-stream — before the
// job is anywhere near terminal — loses nothing, because a fresh
// subscription replays the full history from seq 0. The close points
// are table-driven: dropping after the headers, after the first event,
// and after two events must all leave the feed replayable, and once the
// job is terminal two full reads must return byte-identical streams.
func TestJobEventsSSEReconnect(t *testing.T) {
	cfg := jobsConfig()
	cfg.Jobs.Workers = 1 // single worker → a slow head job keeps the probe queued
	_, ts := newTestServerConfig(t, cfg)

	cases := []struct {
		name       string
		readEvents int // data lines to read before dropping the connection
	}{
		{"close-after-headers", 0},
		{"close-after-first-event", 1},
		{"close-after-two-events", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Head-of-line blocker: a Monte-Carlo compile large enough
			// that the probe job stays queued while we drop the stream.
			submitJob(t, ts.URL,
				`{"kind":"compile","request":{"workload":"bv-8","policy":"vqm","trials":200000,"monte_carlo":true}}`)
			v := submitJob(t, ts.URL, `{"kind":"compile","request":{"workload":"bv-4","policy":"vqm"}}`)

			resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				t.Fatalf("events status %d", resp.StatusCode)
			}
			br := bufio.NewReader(resp.Body)
			var firstData string
			for read := 0; read < tc.readEvents; {
				line, err := br.ReadString('\n')
				if err != nil {
					t.Fatalf("stream ended after %d events, wanted %d: %v", read, tc.readEvents, err)
				}
				if strings.HasPrefix(line, "data: ") {
					if firstData == "" {
						firstData = strings.TrimRight(line, "\n")
					}
					read++
				}
			}
			resp.Body.Close() // drop mid-stream; the job is still queued or running

			// Reconnect: the replay must carry the complete lifecycle and
			// strictly increasing seqs from the start, including any event
			// the dropped connection already saw.
			resp2, body := get(t, ts.URL+"/v1/jobs/"+v.ID+"/events")
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("reconnect status %d: %s", resp2.StatusCode, body)
			}
			stream := string(body)
			for _, want := range []string{"event: queued", "event: started", "event: succeeded"} {
				if !strings.Contains(stream, want) {
					t.Fatalf("reconnected stream missing %q:\n%s", want, stream)
				}
			}
			if firstData != "" && !strings.Contains(stream, firstData) {
				t.Errorf("reconnected stream dropped the first event %q:\n%s", firstData, stream)
			}
			lastSeq := -1
			for _, line := range strings.Split(stream, "\n") {
				data, ok := strings.CutPrefix(line, "data: ")
				if !ok {
					continue
				}
				var ev jobs.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad event payload %q: %v", data, err)
				}
				if ev.Seq <= lastSeq {
					t.Errorf("event seq %d after %d; must strictly increase", ev.Seq, lastSeq)
				}
				lastSeq = ev.Seq
			}

			// Terminal streams are stable: a third read is byte-identical.
			resp3, body2 := get(t, ts.URL+"/v1/jobs/"+v.ID+"/events")
			if resp3.StatusCode != http.StatusOK {
				t.Fatalf("re-read status %d", resp3.StatusCode)
			}
			if !bytes.Equal(body, body2) {
				t.Errorf("terminal replay not byte-stable:\nfirst:\n%s\nsecond:\n%s", body, body2)
			}
		})
	}
}

// TestJobKillResumeEquivalence is the durability headline: a job
// interrupted mid-run by a crash is recovered from disk by the next
// daemon and re-executed to a result byte-identical to a never-
// interrupted synchronous run.
//
// The crash is staged with a raw manager whose backend blocks forever:
// it persists the job, marks it running on disk, and is then abandoned
// without any shutdown handshake — exactly the on-disk state a SIGKILL
// leaves behind. A full server booted on the same directory must adopt
// the orphan, count the interruption, execute it through the real
// pipelines, and serve the same bytes POST /v1/compile returns on an
// untouched server. A compile job with a Monte-Carlo stage is the
// strictest probe: every byte of its response is deterministic (seeded
// MC streams, model-time durations), so the comparison is exact — no
// normalization.
func TestJobKillResumeEquivalence(t *testing.T) {
	dir := t.TempDir()
	const request = `{"workload":"bv-8","policy":"vqm","device":"q20","trials":20000,"monte_carlo":true}`

	// Daemon #1: accepts the job, starts it, "crashes" (abandoned with
	// the worker goroutine parked; never released, so it can never race
	// daemon #2 by writing a late result).
	started := make(chan struct{})
	crashed, err := jobs.NewManager(jobs.Options{Dir: dir, Workers: 1},
		jobs.BackendFunc(func(ctx context.Context, w jobs.Work, progress func(string)) ([]byte, error) {
			close(started)
			select {} // the crash point: this attempt never returns
		}))
	if err != nil {
		t.Fatal(err)
	}
	crashed.Start()
	v, err := crashed.Submit(jobs.Spec{Kind: jobs.KindCompile, Request: json.RawMessage(request)})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started on the crashing manager")
	}

	// Daemon #2: same directory, real pipelines.
	cfg := jobsConfig()
	cfg.Jobs.Dir = dir
	_, ts := newTestServerConfig(t, cfg)

	got := pollJob(t, ts.URL, v.ID, jobs.StateSucceeded)
	if got.Interruptions != 1 {
		t.Errorf("interruptions = %d, want 1 (the crash)", got.Interruptions)
	}
	resp, resumed := get(t, ts.URL+"/v1/jobs/"+v.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, resumed)
	}

	// Reference: the same compile on a server that never saw a crash.
	_, ref := newTestServer(t)
	resp, clean := post(t, ref.URL+"/v1/compile", request)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference status %d: %s", resp.StatusCode, clean)
	}
	if !bytes.Equal(resumed, clean) {
		t.Errorf("resumed result diverges from uninterrupted run\n--- resumed ---\n%s--- clean ---\n%s",
			resumed, clean)
	}

	resp, metrics := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{"nisqd_jobs_recovered_total 1", "nisqd_jobs_interrupted_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobsMetricsExposition asserts the job plane's whole metric family
// is present on /metrics and that outcome counters carry class and
// tenant labels.
func TestJobsMetricsExposition(t *testing.T) {
	_, ts := newTestServerConfig(t, jobsConfig())
	v := submitJob(t, ts.URL,
		`{"kind":"estimate","class":"interactive","tenant":"team-calib","request":{"workload":"bv-4","policy":"baseline"}}`)
	pollJob(t, ts.URL, v.ID, jobs.StateSucceeded)

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"nisqd_jobs_queued 0",
		"nisqd_jobs_running 0",
		`nisqd_jobs_submitted_total{class="interactive",tenant="team-calib"} 1`,
		`nisqd_jobs_outcomes_total{state="succeeded",class="interactive",tenant="team-calib"} 1`,
		"nisqd_jobs_retries_total 0",
		"nisqd_jobs_interrupted_total 0",
		"nisqd_jobs_recovered_total 0",
		"nisqd_jobs_store_corrupt_total 0",
		"nisqd_jobs_persist_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobsConcurrentHTTPClients is the acceptance-scale soak: 100
// clients hammer the job plane over real HTTP with a mix of submits,
// polls, cancels and list scans (run under -race in CI). Every response
// must be one of the documented statuses, and the plane must account
// for every accepted job with a terminal outcome.
func TestJobsConcurrentHTTPClients(t *testing.T) {
	cfg := jobsConfig()
	cfg.Jobs.Workers = 4
	s, ts := newTestServerConfig(t, cfg)

	requests := []string{
		`{"workload":"bv-4","policy":"baseline"}`,
		`{"workload":"ghz-3","policy":"vqm"}`,
		`{"workload":"qft-4","policy":"native"}`,
	}
	const clients = 100
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids []string
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"estimate","tenant":"client-%d","request":%s}`,
				c%7, requests[c%len(requests)])
			resp, data := post(t, ts.URL+"/v1/jobs", body)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: submit status %d: %s", c, resp.StatusCode, data)
				return
			}
			var v jobs.View
			if err := json.Unmarshal(data, &v); err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			mu.Lock()
			ids = append(ids, v.ID)
			mu.Unlock()

			switch c % 3 {
			case 0: // poller
				resp, _ := get(t, ts.URL+"/v1/jobs/"+v.ID)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: poll status %d", c, resp.StatusCode)
				}
			case 1: // canceller: racing completion, both outcomes are legal
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
					t.Errorf("client %d: cancel status %d", c, resp.StatusCode)
				}
			case 2: // lister
				resp, _ := get(t, ts.URL+"/v1/jobs")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: list status %d", c, resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()

	// Every accepted job reaches a terminal state (succeeded or, for the
	// cancellers that won their race, cancelled).
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			v, ok := s.Jobs().Get(id)
			if !ok {
				t.Fatalf("job %s vanished", id)
			}
			if v.State.Terminal() {
				if v.State == jobs.StateFailed {
					t.Errorf("job %s failed: %+v", id, v.Failure)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished (state %s)", id, v.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	snap := s.Jobs().Metrics()
	var done int64
	for _, n := range snap.Outcomes {
		done += n
	}
	if done != clients {
		t.Errorf("outcomes account for %d jobs, want %d", done, clients)
	}
}
