package serve

import (
	"strings"
	"testing"

	"vaq/internal/portfolio"
	"vaq/internal/workloads"
)

// FuzzCompileRequest throws arbitrary bytes at the request decoder —
// the daemon's front door for untrusted input — and asserts its
// invariants: it never panics, every accepted request is normalized
// (exactly one program source, non-empty policy/device, non-nil seed,
// positive in-cap trials), and resolving the accepted request's program
// never panics either.
func FuzzCompileRequest(f *testing.F) {
	seeds := []string{
		`{"workload":"bv-8"}`,
		`{"workload":"bv-8","policy":"vqm","device":"q5","seed":7,"trials":2000,"optimize":true,"monte_carlo":true}`,
		`{"qasm":"qreg q[2];\ncx q[0], q[1];\nmeasure q[0] -> c[0];\n"}`,
		`{"workload":"ghz-1000000"}`,
		`{"workload":"qft-4","trials":-1}`,
		`{"workload":"alu","unknown_field":1}`,
		`{"workload":"alu"}{"workload":"alu"}`,
		`{"qasm":""}`,
		`{"workload":"rnd-sd","qasm":"qreg q[1];"}`,
		`null`,
		`[]`,
		`{"seed":null,"workload":"triswap"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		const maxTrials = 1000000
		req, err := DecodeCompileRequest([]byte(data), maxTrials)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		// Accepted requests must be fully normalized.
		if (req.Workload == "") == (req.QASM == "") {
			t.Fatalf("accepted request has %q/%q, want exactly one source", req.Workload, req.QASM)
		}
		if req.Policy == "" || req.Device == "" || req.Seed == nil {
			t.Fatalf("accepted request not normalized: %+v", req)
		}
		if req.Trials <= 0 || req.Trials > maxTrials {
			t.Fatalf("accepted trials %d out of (0, %d]", req.Trials, maxTrials)
		}
		// Resolving the program must not panic, and a resolved workload
		// must respect the generator size bound.
		prog, err := req.Program()
		if err != nil {
			return
		}
		if req.Workload != "" && prog.NumQubits > workloads.MaxNamedQubits {
			t.Fatalf("workload %q resolved to %d qubits (bound %d)",
				req.Workload, prog.NumQubits, workloads.MaxNamedQubits)
		}
		if req.QASM != "" && strings.TrimSpace(req.QASM) == "" {
			t.Fatalf("empty qasm parsed without error")
		}
	})
}

// FuzzPortfolioRequest covers /v1/portfolio's decoder the same way: no
// panics on arbitrary bytes, and every accepted request is normalized
// into a spec whose grid respects the candidate bound.
func FuzzPortfolioRequest(f *testing.F) {
	seeds := []string{
		`{"workload":"bv-8"}`,
		`{"workload":"ghz-3","device":"q5","root_seed":7,"cycles":0,"random_starts":1,"top_k":2,"trials":2000}`,
		`{"qasm":"qreg q[2];\ncx q[0], q[1];\nmeasure q[0] -> c[0];\n"}`,
		`{"workload":"bv-4","cycles":16,"random_starts":8}`,
		`{"workload":"bv-4","cycles":-1}`,
		`{"workload":"bv-4","top_k":99}`,
		`{"workload":"alu","unknown_field":1}`,
		`{"workload":"alu"}{"workload":"alu"}`,
		`{"root_seed":-9223372036854775808,"workload":"triswap"}`,
		`null`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		const maxTrials = 1000000
		req, err := DecodePortfolioRequest([]byte(data), maxTrials)
		if err != nil {
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if (req.Workload == "") == (req.QASM == "") {
			t.Fatalf("accepted request has %q/%q, want exactly one source", req.Workload, req.QASM)
		}
		if req.Device == "" || req.RootSeed == nil || req.Cycles == nil || req.RandomStarts == nil {
			t.Fatalf("accepted request not normalized: %+v", req)
		}
		if *req.Cycles < 0 || *req.Cycles > MaxPortfolioCycles ||
			*req.RandomStarts < 0 || *req.RandomStarts > MaxPortfolioStarts {
			t.Fatalf("accepted axes out of range: cycles=%d starts=%d", *req.Cycles, *req.RandomStarts)
		}
		if req.TopK <= 0 || req.TopK > MaxPortfolioTopK {
			t.Fatalf("accepted top_k %d out of (0, %d]", req.TopK, MaxPortfolioTopK)
		}
		if req.Trials <= 0 || req.Trials > maxTrials {
			t.Fatalf("accepted trials %d out of (0, %d]", req.Trials, maxTrials)
		}
		spec := req.Spec(0)
		if n := portfolio.GridSize(spec, *req.Cycles); n > MaxPortfolioCandidates {
			t.Fatalf("accepted spec enumerates %d candidates (bound %d)", n, MaxPortfolioCandidates)
		}
		if _, err := req.Program(); err != nil {
			return
		}
	})
}
