package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/clock"
	"vaq/internal/device"
	"vaq/internal/jobs"
	"vaq/internal/parallel"
	"vaq/internal/topo"
)

// Config tunes a Server. The zero value is usable: withDefaults fills
// every field with the production defaults listed on it.
type Config struct {
	// Seed generates the built-in q20/q16 synthetic calibration
	// archives at startup (default 2019, matching nisqc's flag).
	Seed int64
	// MaxTrials caps the per-request Monte-Carlo budget (default
	// 1000000, the paper's full budget).
	MaxTrials int
	// Workers bounds the goroutines per Monte-Carlo estimate and per
	// batch fan-out (0: one per CPU, <0: serial); outcomes are
	// bit-identical at any setting.
	Workers int
	// Kernel is the Monte-Carlo kernel used when a request does not name
	// one ("" means the simulator default, the packed kernel).
	Kernel string
	// MaxInFlight is the concurrency limit beyond which requests are
	// shed with 429 instead of queued (default 64).
	MaxInFlight int
	// RequestTimeout is the per-request context deadline (default 60s).
	// The pipeline checks it between stages (decode, compile, estimate)
	// and responds 503 when exceeded.
	RequestTimeout time.Duration
	// CacheEntries bounds the LRU response cache (default 512; 0
	// disables response caching, useful in benchmarks).
	CacheEntries int
	// MaxBodyBytes caps a request body (default 1 MiB — calibration
	// archives are the largest legitimate payload).
	MaxBodyBytes int64
	// MaxDevices caps the registry of uploaded calibrations (default
	// 64).
	MaxDevices int
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context is cancelled (default 30s).
	// The job plane's drain shares the same bound: jobs still running
	// when it expires are re-queued durably and resume after restart.
	DrainTimeout time.Duration
	// Jobs tunes the durable async job plane behind POST /v1/jobs. The
	// zero value runs it in-memory; set Jobs.Dir to make accepted jobs
	// survive restarts.
	Jobs jobs.Options
	// DriftDir roots the calibration drift plane's durable cycle store
	// ("" runs it in-memory; appended cycles then die with the
	// process).
	DriftDir string
	// DriftThreshold is the device drift score past which the canary
	// recompiler runs (default caldrift.DefaultThreshold).
	DriftThreshold float64
	// DriftWindow is how many recent cycles the detector folds per
	// append (default 8).
	DriftWindow int
	// DriftHotCircuits bounds the per-device hot-circuit set the
	// canary recompiles (default 8).
	DriftHotCircuits int
	// DriftCanaryCooldown is the minimum spacing between canary runs
	// per device, measured on Clock (0 disables the cooldown).
	DriftCanaryCooldown time.Duration
	// DriftAdoptDelta is the canary-predicted analytic-PST gain past
	// which the server adopts the recompile: the stale cached response
	// is invalidated so the next request recompiles against current
	// state (0: default 0.01; negative: adoption off, canaries only
	// report).
	DriftAdoptDelta float64
	// Clock is the time source behind the drift plane's canary
	// cooldown (default clock.Real). Drift reports themselves never
	// read it — they are pure functions of the calibration data.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 1000000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxDevices <= 0 {
		c.MaxDevices = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 8
	}
	if c.DriftHotCircuits <= 0 {
		c.DriftHotCircuits = 8
	}
	if c.DriftAdoptDelta == 0 {
		c.DriftAdoptDelta = 0.01
	}
	return c
}

// Server is the nisqd service: an http.Handler exposing the
// compile-and-estimate API over a registry of device models, with a
// semaphore concurrency limiter, per-request deadlines, an LRU response
// cache and text-format metrics. Construct with New; a Server is safe
// for concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sem   chan struct{}
	cache *lruCache
	met   *metricsState
	jobs  *jobs.Manager
	drift *driftState

	mu      sync.RWMutex
	devices map[string]*device.Device
	// archives holds each device's full calibration archive (every
	// cycle, not just the mean the device model is built from) — the
	// portfolio compiler's cycle window and the /v1/devices cycle
	// counts come from here. Built-ins always have one; a device whose
	// archive is unknown portfolio-compiles on its reference snapshot
	// only.
	archives map[string]*calib.Archive
}

// New builds a Server with the built-in device models (q20 and q16
// generated from cfg.Seed, q5 from the Tenerife snapshot) already
// registered, and starts the job plane (recovering any persisted queue
// from cfg.Jobs.Dir). The only error source is the job store: an
// unusable jobs directory must fail loudly at startup, not lose
// accepted work later.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		cache:    newLRUCache(cfg.CacheEntries),
		met:      newMetricsState(),
		devices:  make(map[string]*device.Device),
		archives: make(map[string]*calib.Archive),
	}
	q20 := calib.Generate(calib.DefaultQ20Config(cfg.Seed))
	s.devices["q20"] = device.MustNew(q20.Topo, q20.MustMean())
	s.archives["q20"] = q20
	q16 := calib.Generate(calib.DefaultQ16Config(cfg.Seed))
	s.devices["q16"] = device.MustNew(q16.Topo, q16.MustMean())
	s.archives["q16"] = q16
	q5 := calib.TenerifeSnapshot()
	s.devices["q5"] = device.MustNew(q5.Topo, q5)
	s.archives["q5"] = &calib.Archive{Topo: q5.Topo, Snapshots: []*calib.Snapshot{q5}}

	jm, err := jobs.NewManager(cfg.Jobs, jobs.BackendFunc(s.executeJob))
	if err != nil {
		return nil, err
	}
	s.jobs = jm
	jm.Start()

	// The drift plane shares the job store's failure posture: an
	// unusable cycle directory fails startup rather than silently
	// dropping acknowledged calibration later.
	ds, err := newDriftState(cfg)
	if err != nil {
		return nil, err
	}
	s.drift = ds

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.limited("/v1/compile", s.handleCompile))
	mux.HandleFunc("POST /v1/estimate", s.limited("/v1/estimate", s.handleEstimate))
	mux.HandleFunc("POST /v1/batch", s.limited("/v1/batch", s.handleBatch))
	mux.HandleFunc("POST /v1/portfolio", s.limited("/v1/portfolio", s.handlePortfolio))
	mux.HandleFunc("POST /v1/sweep", s.limited("/v1/sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/calibration", s.limited("/v1/calibration", s.handleCalibration))
	mux.HandleFunc("GET /v1/calibration/{device}", s.instrumented("/v1/calibration/{device}", s.handleCalibrationWindow))
	mux.HandleFunc("GET /v1/drift/{device}", s.instrumented("/v1/drift/{device}", s.handleDriftReport))
	mux.HandleFunc("GET /v1/drift/{device}/events", s.handleDriftEvents)
	mux.HandleFunc("GET /v1/devices", s.instrumented("/v1/devices", s.handleDevices))
	// The job plane rides outside the compute semaphore: submission is
	// validation + enqueue (the pool bounds execution concurrency), and
	// status/result/SSE polling must stay responsive while every
	// semaphore slot is busy — that responsiveness is the point of
	// submitting asynchronously.
	mux.HandleFunc("POST /v1/jobs", s.instrumented("/v1/jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrumented("/v1/jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrumented("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.instrumented("/v1/jobs/{id}/result", s.handleJobResult))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrumented("/v1/jobs/{id}", s.handleJobCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s, nil
}

// MustNew is New for callers whose Config cannot fail (no jobs
// directory), e.g. tests and in-process harnesses.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Drain shuts the job plane down: running jobs get until ctx to finish;
// stragglers are re-queued durably. Serve calls this itself — Drain is
// for handler-only deployments (tests, embedding) and is idempotent.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Drain(ctx) }

// Jobs exposes the job plane manager (tests, embedding).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Handler returns the daemon's routing table as an http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until ctx is cancelled, then shuts
// down gracefully: the listener closes (new requests are refused),
// requests already in flight get up to DrainTimeout to complete, and
// the job plane drains under the same bound — running jobs that don't
// finish in time are checkpointed back to the durable queue, where a
// restarted daemon resumes them. A nil return means a clean drain.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(dctx)
	jerr := s.jobs.Drain(dctx)
	<-errc // always http.ErrServerClosed after Shutdown
	return errors.Join(err, jerr)
}

// statusWriter records the status code a handler wrote, for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrumented wraps a handler with request/response/latency metrics.
func (s *Server) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.request(endpoint)
		s.met.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.inFlight.Add(-1)
		s.met.response(sw.code, time.Since(start))
	}
}

// limited adds the production posture to a compute endpoint: the
// semaphore concurrency limiter (full ⇒ immediate 429, the request is
// never queued), the per-request deadline, and the body-size cap — plus
// the instrumentation.
func (s *Server) limited(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrumented(endpoint, func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.met.droppedRequest()
			setRetryAfter(w, time.Second)
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		defer func() { <-s.sem }()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	})
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error struct {
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	var body errorBody
	body.Error.Status = status
	body.Error.Message = msg
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		http.Error(w, "encoding failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// errorStatus maps a pipeline error to its HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, errUnknownDevice):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

var errUnknownDevice = errors.New("unknown device")

// lookupDevice resolves a registered device name.
func (s *Server) lookupDevice(name string) (*device.Device, error) {
	d, _, err := s.lookupDeviceArchive(name)
	return d, err
}

// lookupDeviceArchive resolves a device together with its calibration
// archive. The archive may be nil — the portfolio compiler treats that
// as a reference-device-only grid. Names not in the registry fall
// through to the synthetic device zoo: "<family>-<n>[-<tier>]" (e.g.
// heavy-hex-399-mid) materializes a deterministic variance-tiered fleet
// on first use and registers it like any other device.
func (s *Server) lookupDeviceArchive(name string) (*device.Device, *calib.Archive, error) {
	s.mu.RLock()
	d, ok := s.devices[name]
	arch := s.archives[name]
	s.mu.RUnlock()
	if ok {
		return d, arch, nil
	}
	d, arch, zooErr := s.resolveZoo(name)
	if zooErr == nil {
		return d, arch, nil
	}
	if zooName(name) {
		// The name targets a zoo family; its own error (bad size, bad
		// tier, registry full) is more useful than the registry listing.
		return nil, nil, fmt.Errorf("%w %q: %v", errUnknownDevice, name, zooErr)
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.devices))
	for n := range s.devices {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return nil, nil, fmt.Errorf("%w %q (registered: %v; synthetic: <family>-<qubits>[-<tier>], families %v, tiers %v)",
		errUnknownDevice, name, names, familyNames(), calib.Tiers())
}

// zooName reports whether name targets a zoo family ("<family>-…").
func zooName(name string) bool {
	for _, f := range topo.Families() {
		if strings.HasPrefix(name, f.Name+"-") {
			return true
		}
	}
	return false
}

func familyNames() []string {
	fams := topo.Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// resolveZoo materializes the synthetic device named by a zoo device
// name, registering it (and its archive) under the same bounded
// registry as uploaded calibrations. Idempotent and deterministic: the
// fleet is a pure function of (name, server seed), so a concurrent
// double resolve builds identical devices and keeps the first.
func (s *Server) resolveZoo(name string) (*device.Device, *calib.Archive, error) {
	arch, err := calib.ZooArchive(name, s.cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	d, err := device.New(arch.Topo, arch.MustMean())
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.devices[name]; ok {
		return existing, s.archives[name], nil
	}
	if len(s.devices) >= s.cfg.MaxDevices {
		return nil, nil, fmt.Errorf("device registry full (%d entries)", s.cfg.MaxDevices)
	}
	s.devices[name] = d
	s.archives[name] = arch
	return d, arch, nil
}

// readBody drains a capped request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body over %d bytes", tooLarge.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		}
		return nil, false
	}
	return data, true
}

// checkFits rejects programs larger than the target device up front, as
// a client error — core.Compile would fail anyway, but deeper in, where
// the failure would read as a server fault.
func checkFits(d *device.Device, prog *circuit.Circuit) error {
	if prog.NumQubits > d.NumQubits() {
		return badReqf("program needs %d qubits, device %q has %d",
			prog.NumQubits, d.Topology().Name, d.NumQubits())
	}
	return nil
}

// spec converts a normalized request into the cacheable pipeline spec.
func (s *Server) spec(req *CompileRequest, skipMC bool) Spec {
	kernel := req.Kernel
	if kernel == "" {
		kernel = s.cfg.Kernel
	}
	return Spec{
		Policy:         req.Policy,
		Seed:           *req.Seed,
		Trials:         req.Trials,
		Workers:        s.cfg.Workers,
		Optimize:       req.Optimize,
		Kernel:         kernel,
		SkipMonteCarlo: skipMC,
		Movement:       req.Movement,
	}
}

// compileCached runs one compile/estimate spec against the response
// cache: a hit returns the previously marshaled bytes, a miss runs the
// pipeline and stores the response. The bool reports whether the result
// was served from cache.
func (s *Server) compileCached(ctx context.Context, endpoint string, req *CompileRequest, skipMC bool) ([]byte, bool, error) {
	prog, err := req.Program()
	if err != nil {
		return nil, false, err
	}
	d, err := s.lookupDevice(req.Device)
	if err != nil {
		return nil, false, err
	}
	if err := checkFits(d, prog); err != nil {
		return nil, false, err
	}
	spec := s.spec(req, skipMC)
	key := CacheKey(endpoint, d.Fingerprint(), prog, spec)
	if body, ok := s.cache.get(key); ok {
		s.met.cache(true)
		s.drift.touchHot(req.Device, key)
		return body, true, nil
	}
	s.met.cache(false)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	res, err := Run(d, prog, spec)
	if err != nil {
		return nil, false, err
	}
	s.met.mc(res)
	// Every served mapping is a canary candidate: if this device later
	// drifts, the recompiler re-evaluates exactly what the cache would
	// keep handing out.
	s.drift.noteHot(req.Device, key, prog, res.PhysicalCircuit)
	body, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return nil, false, err
	}
	body = append(body, '\n')
	s.cache.put(key, body)
	return body, false, nil
}

// writeCachedResult writes a compileCached response; the cache
// disposition travels in a header so hot and cold bodies stay
// bit-identical.
func writeCachedResult(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Nisqd-Cache", "hit")
	} else {
		w.Header().Set("X-Nisqd-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeCompileRequest(data, s.cfg.MaxTrials)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	body, hit, err := s.compileCached(r.Context(), "/v1/compile", req, false)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	writeCachedResult(w, body, hit)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeCompileRequest(data, s.cfg.MaxTrials)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	body, hit, err := s.compileCached(r.Context(), "/v1/estimate", req, !req.MonteCarlo)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	writeCachedResult(w, body, hit)
}

// batchItem is one element of a /v1/batch response: exactly one of
// Result and Error is set. A failing item never hides its siblings'
// results — the fan-out runs under parallel.Collect, which quarantines
// errors and panics per item.
type batchItem struct {
	Result *Result         `json:"result,omitempty"`
	Error  *batchItemError `json:"error,omitempty"`
}

type batchItemError struct {
	Index   int    `json:"index"`
	Status  int    `json:"status"`
	Message string `json:"message"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeBatchRequest(data, s.cfg.MaxTrials)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.runBatch(r.Context(), req))
}

// runBatch fans a decoded batch out with per-item fault isolation; it
// is the shared execution path of POST /v1/batch and batch jobs, so the
// two produce identical item sets for the same request.
func (s *Server) runBatch(ctx context.Context, req *BatchRequest) batchResponse {
	items := make([]batchItem, len(req.Items))
	// The batch itself is the parallel axis, so each item's Monte-Carlo
	// runs serial (Workers -1) — the pool guarantees the outcome is
	// bit-identical either way, which is also why the cache key (shared
	// with /v1/compile) ignores the worker count.
	err := parallel.Collect(ctx, s.cfg.Workers, len(req.Items), func(i int) error {
		item := req.Items[i]
		prog, err := item.Program()
		if err != nil {
			return err
		}
		d, err := s.lookupDevice(item.Device)
		if err != nil {
			return err
		}
		if err := checkFits(d, prog); err != nil {
			return err
		}
		spec := s.spec(&item, false)
		spec.Workers = -1
		cacheKey := CacheKey("/v1/compile", d.Fingerprint(), prog, spec)
		if body, ok := s.cache.get(cacheKey); ok {
			s.met.cache(true)
			var res Result
			if err := json.Unmarshal(body, &res); err == nil {
				items[i].Result = &res
				return nil
			}
		}
		s.met.cache(false)
		res, err := Run(d, prog, spec)
		if err != nil {
			return err
		}
		s.met.mc(res)
		items[i].Result = res
		if body, err := json.MarshalIndent(res, "", " "); err == nil {
			s.cache.put(cacheKey, append(body, '\n'))
		}
		return nil
	})
	if err != nil {
		// Collect returns every item failure joined; unpack them back
		// to their indices as typed error entries.
		for _, e := range unwrapJoined(err) {
			var ie *parallel.Error
			if errors.As(e, &ie) {
				items[ie.Index].Error = &batchItemError{
					Index:   ie.Index,
					Status:  errorStatus(ie.Err),
					Message: ie.Err.Error(),
				}
			}
		}
		// Items neither computed nor failed were skipped by
		// cancellation.
		for i := range items {
			if items[i].Result == nil && items[i].Error == nil {
				items[i].Error = &batchItemError{
					Index:   i,
					Status:  http.StatusServiceUnavailable,
					Message: "cancelled before completion",
				}
			}
		}
	}
	return batchResponse{Items: items}
}

// unwrapJoined flattens an errors.Join tree one level.
func unwrapJoined(err error) []error {
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		return joined.Unwrap()
	}
	return []error{err}
}

// calibrationResponse acknowledges a registered calibration archive.
type calibrationResponse struct {
	Device      DeviceInfo `json:"device"`
	Snapshots   int        `json:"snapshots"`
	Quarantined []string   `json:"quarantined,omitempty"`
}

var deviceNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	name := r.URL.Query().Get("name")
	if name != "" && !deviceNameRE.MatchString(name) {
		writeError(w, http.StatusBadRequest, "device name must match [a-zA-Z0-9][a-zA-Z0-9_-]{0,63}")
		return
	}
	arch, quarantined, err := calib.ReadJSONLenient(bytes.NewReader(data))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("calibration archive: %v", err))
		return
	}
	if appendParam := r.URL.Query().Get("append"); appendParam != "" {
		want, perr := strconv.ParseBool(appendParam)
		if perr != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("append must be a boolean, got %q", appendParam))
			return
		}
		if want {
			s.handleCalibrationAppend(w, r, name, arch)
			return
		}
	}
	mean, err := arch.Mean()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("calibration archive: %v", err))
		return
	}
	d, err := device.New(arch.Topo, mean)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("calibration archive: %v", err))
		return
	}
	if name == "" {
		name = fmt.Sprintf("fp-%016x", d.Fingerprint())
	}

	s.mu.Lock()
	if existing, ok := s.devices[name]; ok && existing.Fingerprint() != d.Fingerprint() {
		s.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Sprintf("device %q already registered with a different calibration", name))
		return
	} else if !ok {
		if len(s.devices) >= s.cfg.MaxDevices {
			s.mu.Unlock()
			writeError(w, http.StatusConflict,
				fmt.Sprintf("device registry full (%d entries)", s.cfg.MaxDevices))
			return
		}
		s.devices[name] = d
		s.archives[name] = arch
	}
	s.mu.Unlock()

	resp := calibrationResponse{Device: Describe(d), Snapshots: len(arch.Snapshots)}
	resp.Device.Name = name
	for _, q := range quarantined {
		resp.Quarantined = append(resp.Quarantined, q.Error())
	}
	writeJSON(w, http.StatusOK, resp)
}

// devicesResponse lists the registered device models plus the
// parametric synthetic families any request may name on demand.
type devicesResponse struct {
	Devices []namedDevice `json:"devices"`
	// Families describes the synthetic device zoo: request one with
	// device "<family>-<qubits>[-<tier>]" (e.g. "heavy-hex-399-high");
	// it is generated deterministically from the server seed and
	// registered on first use.
	Families []deviceFamily `json:"families"`
}

type deviceFamily struct {
	Family      string   `json:"family"`
	Description string   `json:"description"`
	MinQubits   int      `json:"min_qubits"`
	MaxQubits   int      `json:"max_qubits"`
	Tiers       []string `json:"tiers"`
	Naming      string   `json:"naming"`
}

// zooFamilies renders the topo family registry for listings (shared by
// /v1/devices and nisqc -list-devices via this package).
func zooFamilies() []deviceFamily {
	tiers := make([]string, 0, 3)
	for _, t := range calib.Tiers() {
		tiers = append(tiers, string(t))
	}
	fams := topo.Families()
	out := make([]deviceFamily, 0, len(fams))
	for _, f := range fams {
		out = append(out, deviceFamily{
			Family:      f.Name,
			Description: f.Description,
			MinQubits:   f.MinQubits,
			MaxQubits:   f.MaxQubits,
			Tiers:       tiers,
			Naming:      f.Name + "-<qubits>[-holes<k>][-<tier>]",
		})
	}
	return out
}

type namedDevice struct {
	Name   string `json:"name"`
	Model  string `json:"model"`
	Qubits int    `json:"qubits"`
	Links  int    `json:"links"`
	// Cycles is the number of calibration snapshots in the device's
	// archive — the window /v1/portfolio can draw candidates from. 0
	// when no archive is known for the device.
	Cycles int `json:"cycles"`
	// Fingerprint is the calibration digest responses and caches key
	// on; two names with equal fingerprints are interchangeable.
	// FingerprintPrefix is its 8-hex-digit short form, the handle
	// humans paste into chat and dashboards.
	Fingerprint       string `json:"fingerprint"`
	FingerprintPrefix string `json:"fingerprint_prefix"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.devices))
	for n := range s.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	resp := devicesResponse{Devices: make([]namedDevice, 0, len(names)), Families: zooFamilies()}
	for _, n := range names {
		d := s.devices[n]
		cycles := 0
		if arch := s.archives[n]; arch != nil {
			cycles = len(arch.Snapshots)
		}
		fp := fmt.Sprintf("%016x", d.Fingerprint())
		resp.Devices = append(resp.Devices, namedDevice{
			Name:              n,
			Model:             d.Topology().Name,
			Qubits:            d.NumQubits(),
			Links:             d.Topology().NumLinks(),
			Cycles:            cycles,
			Fingerprint:       fp,
			FingerprintPrefix: fp[:8],
		})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := len(s.devices)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "devices": n})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	b.WriteString(s.met.render())
	renderJobsMetrics(&b, s.jobs.Metrics())
	renderDriftMetrics(&b, s.drift.metrics())
	io.WriteString(w, b.String())
}
