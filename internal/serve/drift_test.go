package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"vaq/internal/caldrift"
	"vaq/internal/calib"
	"vaq/internal/clock"
)

// q5ArchiveJSON renders a Q5 archive with days cycles from one seed.
func q5ArchiveJSON(t *testing.T, seed int64, days int, mutate func(*calib.Archive)) string {
	t.Helper()
	cfg := calib.DefaultQ5Config(seed)
	cfg.Days, cfg.CyclesPerDay = days, 1
	arch := calib.Generate(cfg)
	if mutate != nil {
		mutate(arch)
	}
	var buf bytes.Buffer
	if err := arch.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// degradeLater multiplies every two-qubit error after the first cycle,
// guaranteeing the detector fires on the appended series.
func degradeLater(factor float64) func(*calib.Archive) {
	return func(arch *calib.Archive) {
		for _, s := range arch.Snapshots[1:] {
			for _, c := range arch.Topo.Couplings {
				s.TwoQubit[c] = min(0.4, s.TwoQubit[c]*factor)
			}
		}
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// registerQ5 uploads a fresh Q5 calibration under name.
func registerQ5(t *testing.T, url, name string) {
	t.Helper()
	resp, body := post(t, url+"/v1/calibration?name="+name, q5ArchiveJSON(t, 7, 1, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d: %s", name, resp.StatusCode, body)
	}
}

// warmHot caches one compile on the device so the canary has a target.
func warmHot(t *testing.T, url, device string) {
	t.Helper()
	resp, body := post(t, url+"/v1/compile",
		fmt.Sprintf(`{"workload":"triswap","policy":"vqm","device":%q,"trials":2000}`, device))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm compile: status %d: %s", resp.StatusCode, body)
	}
}

// appendResponse mirrors handleCalibrationAppend's envelope.
type appendResponse struct {
	Device   string           `json:"device"`
	Appended []int            `json:"appended"`
	Cycles   int              `json:"cycles"`
	Drift    *caldrift.Report `json:"drift"`
}

func TestDriftAppendReportAndCanary(t *testing.T) {
	_, ts := newTestServer(t)
	registerQ5(t, ts.URL, "lab-q5")
	warmHot(t, ts.URL, "lab-q5")

	resp, body := post(t, ts.URL+"/v1/calibration?name=lab-q5&append=true",
		q5ArchiveJSON(t, 7, 5, degradeLater(4)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", resp.StatusCode, body)
	}
	var ar appendResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Cycles != 5 || len(ar.Appended) != 5 || ar.Appended[0] != 0 {
		t.Fatalf("append bookkeeping: %+v", ar)
	}
	if ar.Drift == nil || !ar.Drift.Triggered {
		t.Fatalf("4x degradation did not trigger: %+v", ar.Drift)
	}
	if ar.Drift.Canary == nil || len(ar.Drift.Canary.Deltas) == 0 {
		t.Fatalf("triggered drift ran no canary: %+v", ar.Drift)
	}
	if d := ar.Drift.Canary.Deltas[0]; d.Err != "" || d.Delta <= 0 {
		t.Fatalf("canary predicted no recompile gain on poisoned device: %+v", d)
	}

	// The report endpoint serves the same verdict.
	resp, body = get(t, ts.URL+"/v1/drift/lab-q5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drift report: status %d: %s", resp.StatusCode, body)
	}
	var rep caldrift.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Triggered || rep.Canary == nil {
		t.Fatalf("served report lost the canary: %+v", rep)
	}

	// Window query returns the tail of the series in wire format.
	resp, body = get(t, ts.URL+"/v1/calibration/lab-q5?window=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window query: status %d: %s", resp.StatusCode, body)
	}
	win, err := calib.ReadJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("window body is not a calib archive: %v", err)
	}
	if len(win.Snapshots) != 2 || win.Snapshots[0].Cycle != 3 {
		t.Fatalf("window = cycles %d..%d (%d snaps)", win.Snapshots[0].Cycle,
			win.Snapshots[len(win.Snapshots)-1].Cycle, len(win.Snapshots))
	}

	// Metrics expose the plane.
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("metrics not served")
	}
	for _, want := range []string{
		"nisqd_drift_cycles_total 5",
		"nisqd_drift_triggers_total 1",
		"nisqd_drift_canary_runs_total 1",
		`nisqd_drift_score{device="lab-q5"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDriftEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	registerQ5(t, ts.URL, "lab-q5")
	q5 := q5ArchiveJSON(t, 7, 2, nil)
	q20 := func() string {
		var buf bytes.Buffer
		cfg := calib.DefaultQ20Config(7)
		cfg.Days, cfg.CyclesPerDay = 1, 1
		if err := calib.Generate(cfg).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	cases := []struct {
		name, method, path, body string
		status                   int
	}{
		{"append without name", "POST", "/v1/calibration?append=true", q5, http.StatusBadRequest},
		{"append bad flag", "POST", "/v1/calibration?name=lab-q5&append=maybe", q5, http.StatusBadRequest},
		{"append unknown device", "POST", "/v1/calibration?name=never-seen&append=true", q5, http.StatusNotFound},
		{"append topology mismatch", "POST", "/v1/calibration?name=lab-q5&append=true", q20, http.StatusBadRequest},
		{"append bad archive", "POST", "/v1/calibration?name=lab-q5&append=true", `{"topology":`, http.StatusBadRequest},
		{"window zero", "GET", "/v1/calibration/lab-q5?window=0", "", http.StatusBadRequest},
		{"window non-numeric", "GET", "/v1/calibration/lab-q5?window=two", "", http.StatusBadRequest},
		{"window unknown device", "GET", "/v1/calibration/never-seen", "", http.StatusNotFound},
		{"window registered but empty", "GET", "/v1/calibration/lab-q5", "", http.StatusNotFound},
		{"drift report before cycles", "GET", "/v1/drift/lab-q5", "", http.StatusNotFound},
		{"drift unknown device", "GET", "/v1/drift/never-seen", "", http.StatusNotFound},
		{"drift events bad name", "GET", "/v1/drift/bad%2Fname/events", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if tc.method == "POST" {
				resp, body = post(t, ts.URL+tc.path, tc.body)
			} else {
				resp, body = get(t, ts.URL+tc.path)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if eb.Error.Status != tc.status || eb.Error.Message == "" {
				t.Errorf("error envelope = %+v", eb.Error)
			}
		})
	}
}

func TestDriftAppendBodyTooLarge(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 256
	_, ts := newTestServerConfig(t, cfg)
	resp, _ := post(t, ts.URL+"/v1/calibration?name=lab-q5&append=true",
		q5ArchiveJSON(t, 7, 3, nil))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestDriftEventsSSE drives the drift feed over real HTTP: history
// replay on reconnect, live delivery, and a clean server-side
// continuation when a client closes mid-stream (drift feeds have no
// terminal event).
func TestDriftEventsSSE(t *testing.T) {
	_, ts := newTestServer(t)
	registerQ5(t, ts.URL, "lab-q5")

	// A subscriber connected before any cycles exist sees the events
	// live; close it mid-stream after the first batch arrives.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/drift/lab-q5/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	live := bufio.NewScanner(resp.Body)
	lines := make(chan string, 64)
	go func() {
		for live.Scan() {
			lines <- live.Text()
		}
		close(lines)
	}()

	post(t, ts.URL+"/v1/calibration?name=lab-q5&append=true", q5ArchiveJSON(t, 7, 3, degradeLater(4)))

	sawCycle := false
	deadline := time.After(10 * time.Second)
	for !sawCycle {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("live stream closed before any event")
			}
			if strings.HasPrefix(line, "event: "+DriftEventCycle) {
				sawCycle = true
			}
		case <-deadline:
			t.Fatal("no cycle event within 10s")
		}
	}
	cancel() // close mid-stream; the server must keep the feed usable
	resp.Body.Close()

	// A reconnecting subscriber replays the full history — including
	// events published while nobody was connected — with stable seqs.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	req2, _ := http.NewRequestWithContext(ctx2, "GET", ts.URL+"/v1/drift/lab-q5/events", nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	var events, cycles, drifts, lastSeq int
	lastSeq = -1
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev struct {
				Seq     int    `json:"seq"`
				Type    string `json:"type"`
				Message string `json:"message"`
			}
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			if ev.Seq <= lastSeq {
				t.Fatalf("seq %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			events++
			switch ev.Type {
			case DriftEventCycle:
				cycles++
			case DriftEventTriggered:
				drifts++
			}
			if events == 4 { // 3 cycles + 1 drift: full history replayed
				break
			}
		}
	}
	if cycles != 3 || drifts != 1 {
		t.Fatalf("replayed %d cycle + %d drift events, want 3 + 1", cycles, drifts)
	}
}

// TestDriftCanaryCooldown pins the injected-clock contract: canary
// spacing is decided on Config.Clock, so a fake clock drives the
// cooldown without real waiting.
func TestDriftCanaryCooldown(t *testing.T) {
	fake := clock.NewFake(time.Unix(1700000000, 0))
	cfg := testConfig()
	cfg.DriftCanaryCooldown = time.Hour
	cfg.Clock = fake
	// Adoption off: a canary win would otherwise drain the hot set and
	// this test isolates the cooldown, not the adoption loop.
	cfg.DriftAdoptDelta = -1
	_, ts := newTestServerConfig(t, cfg)
	registerQ5(t, ts.URL, "lab-q5")
	warmHot(t, ts.URL, "lab-q5")

	appendOnce := func(seed int64) *caldrift.Report {
		t.Helper()
		resp, body := post(t, ts.URL+"/v1/calibration?name=lab-q5&append=true",
			q5ArchiveJSON(t, seed, 3, degradeLater(4)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d: %s", resp.StatusCode, body)
		}
		var ar appendResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		return ar.Drift
	}

	if rep := appendOnce(7); rep == nil || !rep.Triggered || rep.Canary == nil {
		t.Fatalf("first trigger did not canary: %+v", rep)
	}
	// Within the cooldown: triggered again, canary suppressed.
	if rep := appendOnce(8); rep == nil || !rep.Triggered || rep.Canary != nil {
		t.Fatalf("second trigger inside cooldown: %+v", rep)
	}
	fake.Advance(2 * time.Hour)
	if rep := appendOnce(9); rep == nil || !rep.Triggered || rep.Canary == nil {
		t.Fatalf("post-cooldown trigger did not canary: %+v", rep)
	}

	_, body := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "nisqd_drift_canary_suppressed_total 1") {
		t.Error("suppressed canary not counted")
	}
}

// TestDriftAutoAdopt pins the adoption loop on a fake clock: a canary
// win past the adoption delta invalidates the stale cached response
// (the next identical request is a cache miss that recompiles), while
// a canary inside the cooldown adopts nothing.
func TestDriftAutoAdopt(t *testing.T) {
	fake := clock.NewFake(time.Unix(1700000000, 0))
	cfg := testConfig()
	cfg.DriftCanaryCooldown = time.Hour
	cfg.Clock = fake
	cfg.DriftAdoptDelta = 1e-12 // adopt on any predicted gain
	_, ts := newTestServerConfig(t, cfg)
	registerQ5(t, ts.URL, "lab-q5")

	compileReq := `{"workload":"triswap","policy":"vqm","device":"lab-q5","trials":2000}`
	cacheState := func() string {
		t.Helper()
		resp, body := post(t, ts.URL+"/v1/compile", compileReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile: status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Nisqd-Cache")
	}
	if got := cacheState(); got != "miss" {
		t.Fatalf("cold compile: cache %q", got)
	}
	if got := cacheState(); got != "hit" {
		t.Fatalf("warm compile: cache %q", got)
	}

	appendOnce := func(seed int64) *caldrift.Report {
		t.Helper()
		resp, body := post(t, ts.URL+"/v1/calibration?name=lab-q5&append=true",
			q5ArchiveJSON(t, seed, 3, degradeLater(4)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d: %s", resp.StatusCode, body)
		}
		var ar appendResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		return ar.Drift
	}

	rep := appendOnce(7)
	if rep == nil || rep.Canary == nil || len(rep.Canary.Deltas) == 0 {
		t.Fatalf("no canary ran: %+v", rep)
	}
	if d := rep.Canary.Deltas[0]; d.Err != "" || d.Delta <= 0 {
		t.Fatalf("canary predicted no gain, nothing to adopt: %+v", d)
	}
	// The win was adopted: the cached response is gone, so the same
	// request recompiles.
	if got := cacheState(); got != "miss" {
		t.Fatalf("post-adoption compile: cache %q, want miss (stale entry should be invalidated)", got)
	}
	if got := cacheState(); got != "hit" {
		t.Fatalf("re-warmed compile: cache %q", got)
	}

	// Inside the cooldown no canary runs, so nothing more is adopted and
	// the fresh entry survives.
	if rep := appendOnce(8); rep == nil || rep.Canary != nil {
		t.Fatalf("canary ran inside cooldown: %+v", rep)
	}
	if got := cacheState(); got != "hit" {
		t.Fatalf("compile after suppressed canary: cache %q, want hit", got)
	}

	// Past the cooldown the canary runs and adopts again.
	fake.Advance(2 * time.Hour)
	if rep := appendOnce(9); rep == nil || rep.Canary == nil {
		t.Fatalf("post-cooldown canary missing: %+v", rep)
	}
	if got := cacheState(); got != "miss" {
		t.Fatalf("post-cooldown adoption: cache %q, want miss", got)
	}

	_, body := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "nisqd_drift_adoptions_total 2") {
		t.Errorf("adoptions not counted:\n%s", grepLines(string(body), "nisqd_drift"))
	}
}

// grepLines filters lines containing substr, for test failure output.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestDriftStorePersistence: cycles appended through the API survive a
// server restart on the same drift directory.
func TestDriftStorePersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.DriftDir = dir
	_, ts := newTestServerConfig(t, cfg)
	registerQ5(t, ts.URL, "lab-q5")
	resp, _ := post(t, ts.URL+"/v1/calibration?name=lab-q5&append=true", q5ArchiveJSON(t, 7, 3, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatal("append failed")
	}

	cfg2 := testConfig()
	cfg2.DriftDir = dir
	_, ts2 := newTestServerConfig(t, cfg2)
	registerQ5(t, ts2.URL, "lab-q5")
	resp, body := get(t, ts2.URL+"/v1/calibration/lab-q5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted server lost the series: %d %s", resp.StatusCode, body)
	}
	arch, err := calib.ReadJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.Snapshots) != 3 {
		t.Fatalf("recovered %d cycles, want 3", len(arch.Snapshots))
	}
}
