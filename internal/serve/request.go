package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"vaq/internal/circuit"
	"vaq/internal/cliutil"
	"vaq/internal/core"
	"vaq/internal/qasm"
	"vaq/internal/route"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

// Request-side limits. Oversized inputs are rejected at the decoder, so
// a single request can never make the daemon allocate unbounded memory.
const (
	// MaxQASMBytes bounds an inline OpenQASM program.
	MaxQASMBytes = 256 << 10
	// MaxBatchItems bounds one /v1/batch fan-out.
	MaxBatchItems = 256
)

// Defaults applied by normalize when a request omits a field; they
// mirror cmd/nisqc's flag defaults so an empty request means the same
// thing in both front-ends.
const (
	DefaultPolicy = "vqa+vqm"
	DefaultDevice = "q20"
	DefaultSeed   = 2019
	DefaultTrials = 100000
)

// CompileRequest is the body of POST /v1/compile and /v1/estimate, and
// each element of a /v1/batch request. Exactly one of Workload and QASM
// must be set.
type CompileRequest struct {
	// Workload names a built-in circuit (see workloads.ByName).
	Workload string `json:"workload,omitempty"`
	// QASM is an inline OpenQASM 2.0 program.
	QASM string `json:"qasm,omitempty"`
	// Policy is a compilation policy name (default vqa+vqm).
	Policy string `json:"policy,omitempty"`
	// Device names a registered device model (default q20).
	Device string `json:"device,omitempty"`
	// Seed drives Native's randomized mapping and the Monte-Carlo
	// streams (default 2019). Note the daemon's built-in q20/q16 models
	// are generated from the daemon's -seed at startup, not per request.
	Seed *int64 `json:"seed,omitempty"`
	// Trials is the Monte-Carlo budget (default 100000, capped by the
	// server's -trials flag).
	Trials int `json:"trials,omitempty"`
	// Optimize runs the transpile passes before mapping.
	Optimize bool `json:"optimize,omitempty"`
	// MonteCarlo toggles the Monte-Carlo estimate on /v1/estimate
	// (ignored by /v1/compile, which always runs it, mirroring nisqc).
	MonteCarlo bool `json:"monte_carlo,omitempty"`
	// Kernel selects the Monte-Carlo kernel: "packed" (the bit-parallel
	// default) or "scalar" (the reference path). Omitted means the
	// server's configured default.
	Kernel string `json:"kernel,omitempty"`
	// Movement overrides the policy's routing pass with a named movement
	// policy (route.MovementNames; e.g. "sabre" for large devices).
	// Omitted means the policy's own router.
	Movement string `json:"movement,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Items []CompileRequest `json:"items"`
}

// ErrBadRequest tags validation failures so handlers can map them to
// HTTP 400 while other failures stay 500.
var ErrBadRequest = errors.New("bad request")

func badReqf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// DecodeCompileRequest parses and validates one compile/estimate
// request body: unknown fields, trailing garbage, missing or duplicate
// program sources, oversized programs, unknown policies, and
// out-of-range trial budgets are all rejected here, before any
// compilation work is admitted. maxTrials is the server's per-request
// cap (<= 0 means cliutil.MaxTrials).
func DecodeCompileRequest(data []byte, maxTrials int) (*CompileRequest, error) {
	var req CompileRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badReqf("decode: %v", err)
	}
	if dec.More() {
		return nil, badReqf("trailing data after request object")
	}
	if err := req.validate(maxTrials); err != nil {
		return nil, err
	}
	req.normalize()
	return &req, nil
}

// DecodeBatchRequest parses and validates a /v1/batch body. Item-level
// validation is the same as DecodeCompileRequest's, with the item index
// in the error message.
func DecodeBatchRequest(data []byte, maxTrials int) (*BatchRequest, error) {
	var req BatchRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badReqf("decode: %v", err)
	}
	if dec.More() {
		return nil, badReqf("trailing data after request object")
	}
	if len(req.Items) == 0 {
		return nil, badReqf("batch has no items")
	}
	if len(req.Items) > MaxBatchItems {
		return nil, badReqf("batch has %d items (max %d)", len(req.Items), MaxBatchItems)
	}
	for i := range req.Items {
		if err := req.Items[i].validate(maxTrials); err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
		req.Items[i].normalize()
	}
	return &req, nil
}

func (r *CompileRequest) validate(maxTrials int) error {
	switch {
	case r.Workload != "" && r.QASM != "":
		return badReqf("specify either workload or qasm, not both")
	case r.Workload == "" && r.QASM == "":
		return badReqf("specify workload or qasm")
	}
	if len(r.QASM) > MaxQASMBytes {
		return badReqf("qasm program is %d bytes (max %d)", len(r.QASM), MaxQASMBytes)
	}
	if r.Policy != "" {
		if _, ok := core.PolicyByName(r.Policy); !ok {
			return badReqf("unknown policy %q", r.Policy)
		}
	}
	if maxTrials <= 0 || maxTrials > cliutil.MaxTrials {
		maxTrials = cliutil.MaxTrials
	}
	if r.Trials < 0 {
		return badReqf("trials must not be negative (got %d)", r.Trials)
	}
	if r.Trials > maxTrials {
		return badReqf("trials %d over the server cap %d", r.Trials, maxTrials)
	}
	if !sim.ValidKernel(r.Kernel) {
		return badReqf("unknown kernel %q (valid: %q, %q)", r.Kernel, sim.KernelPacked, sim.KernelScalar)
	}
	if r.Movement != "" {
		if _, err := route.ByName(r.Movement, 0); err != nil {
			return badReqf("%v", err)
		}
	}
	return nil
}

// normalize fills the documented defaults into omitted fields.
func (r *CompileRequest) normalize() {
	if r.Policy == "" {
		r.Policy = DefaultPolicy
	}
	if r.Device == "" {
		r.Device = DefaultDevice
	}
	if r.Seed == nil {
		seed := int64(DefaultSeed)
		r.Seed = &seed
	}
	if r.Trials == 0 {
		r.Trials = DefaultTrials
	}
}

// Program resolves the request's circuit: the named built-in workload
// or the parsed inline QASM. Both paths bound their input (ByName caps
// generator sizes, the QASM length was validated), so Program is safe
// on untrusted requests.
func (r *CompileRequest) Program() (*circuit.Circuit, error) {
	if r.Workload != "" {
		c, err := workloads.ByName(r.Workload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return c, nil
	}
	c, err := qasm.Parse(r.QASM)
	if err != nil {
		return nil, fmt.Errorf("%w: qasm: %v", ErrBadRequest, err)
	}
	return c, nil
}

// CacheKey is the response-cache identity of a request resolved against
// a device: the device's calibration fingerprint, the logical circuit's
// serialized hash, and every Spec field that can change the response.
// Workers is deliberately absent — the pool guarantees bit-identical
// outcomes at any worker count — and the endpoint is included because
// /v1/compile and /v1/estimate render different responses for the same
// spec.
func CacheKey(endpoint string, deviceFP uint64, prog *circuit.Circuit, spec Spec) string {
	h := fnv.New64a()
	h.Write([]byte(qasm.Serialize(prog)))
	return fmt.Sprintf("%s|%016x|%016x|%s|%d|%d|%t|%s|%t|%s",
		endpoint, deviceFP, h.Sum64(), spec.Policy, spec.Seed, spec.Trials, spec.Optimize, spec.Kernel, spec.SkipMonteCarlo, spec.Movement)
}
