package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestCompileMovementOverride: the movement field swaps the router while
// keeping the policy's allocator, and participates in the cache key —
// the same request with and without movement must be two cache entries.
func TestCompileMovementOverride(t *testing.T) {
	_, ts := newTestServer(t)

	base := `{"workload":"bv-8","policy":"vqm","device":"q20","seed":2019,"trials":1000`
	resp, body := post(t, ts.URL+"/v1/compile", base+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	respS, bodyS := post(t, ts.URL+"/v1/compile", base+`,"movement":"sabre"}`)
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("sabre status %d: %s", respS.StatusCode, bodyS)
	}
	if got := respS.Header.Get("X-Nisqd-Cache"); got != "miss" {
		t.Errorf("movement variant served from cache (%q): movement missing from the cache key", got)
	}

	var plain, sabre Result
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyS, &sabre); err != nil {
		t.Fatal(err)
	}
	if plain.Router == sabre.Router {
		t.Fatalf("movement override did not change the router: both %q", plain.Router)
	}
	if sabre.Router != "sabre-reliability" {
		t.Errorf("movement=sabre routed with %q, want sabre-reliability", sabre.Router)
	}
}

// TestCompileMovementValidation: unknown movement policies are a 400
// whose message lists the valid names.
func TestCompileMovementValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/compile",
		`{"workload":"bv-4","policy":"vqm","device":"q20","movement":"teleport"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	for _, name := range []string{"sabre", "baseline", "vqm"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("error body %s does not list policy %q", body, name)
		}
	}
}

// TestCompileZooDevice: a synthetic zoo name is materialized on demand
// and compiled against like any registered device; SABRE keeps the
// large sizes tractable.
func TestCompileZooDevice(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/compile",
		`{"workload":"bv-16","policy":"vqm","device":"heavy-hex-100-high","movement":"sabre","seed":7,"trials":500}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Router != "sabre-reliability" {
		t.Errorf("router %q, want sabre-reliability", res.Router)
	}

	// The fleet is deterministic in (name, server seed): a second
	// identical request is a response-cache hit.
	resp2, _ := post(t, ts.URL+"/v1/compile",
		`{"workload":"bv-16","policy":"vqm","device":"heavy-hex-100-high","movement":"sabre","seed":7,"trials":500}`)
	if got := resp2.Header.Get("X-Nisqd-Cache"); got != "hit" {
		t.Errorf("repeat zoo compile cache header = %q, want hit", got)
	}

	// Unknown zoo sizes surface the zoo error, not the generic listing.
	resp3, body3 := post(t, ts.URL+"/v1/compile",
		`{"workload":"bv-4","policy":"vqm","device":"heavy-hex-3"}`)
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", resp3.StatusCode, body3)
	}
}
