package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"vaq/internal/jobs"
)

// JobRequest is the body of POST /v1/jobs: an envelope naming which
// synchronous endpoint's request shape Request carries. The request is
// validated eagerly at submission — a malformed job is a 400 at submit
// time, never an asynchronous failure discovered by polling.
type JobRequest struct {
	// Kind selects the pipeline: compile, estimate, batch, portfolio or
	// sweep.
	Kind string `json:"kind"`
	// Tenant attributes the job for quota accounting (default
	// "anonymous"; the X-Nisqd-Tenant header is used when empty).
	Tenant string `json:"tenant,omitempty"`
	// Class is the priority class: interactive, batch (default) or
	// background.
	Class string `json:"class,omitempty"`
	// Request is the body the named kind's synchronous endpoint would
	// accept, verbatim.
	Request json.RawMessage `json:"request"`
}

// DecodeJobRequest parses and validates one /v1/jobs body, including
// the embedded request (decoded with the same decoder the synchronous
// endpoint uses).
func DecodeJobRequest(data []byte, maxTrials int) (*JobRequest, error) {
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badReqf("decode: %v", err)
	}
	if dec.More() {
		return nil, badReqf("trailing data after request object")
	}
	if !jobs.ValidKind(jobs.Kind(req.Kind)) {
		return nil, badReqf("kind must be one of %v (got %q)", jobs.Kinds(), req.Kind)
	}
	if req.Class != "" && !jobs.ValidClass(jobs.Class(req.Class)) {
		return nil, badReqf("class must be one of %v (got %q)", jobs.Classes(), req.Class)
	}
	if req.Tenant != "" && !deviceNameRE.MatchString(req.Tenant) {
		return nil, badReqf("tenant must match [a-zA-Z0-9][a-zA-Z0-9_-]{0,63}")
	}
	if len(req.Request) == 0 {
		return nil, badReqf("request body is required")
	}
	var err error
	switch jobs.Kind(req.Kind) {
	case jobs.KindCompile, jobs.KindEstimate:
		_, err = DecodeCompileRequest(req.Request, maxTrials)
	case jobs.KindBatch:
		_, err = DecodeBatchRequest(req.Request, maxTrials)
	case jobs.KindPortfolio:
		_, err = DecodePortfolioRequest(req.Request, maxTrials)
	case jobs.KindSweep:
		_, err = DecodeSweepRequest(req.Request)
	}
	if err != nil {
		return nil, fmt.Errorf("%s request: %w", req.Kind, err)
	}
	return &req, nil
}

// executeJob is the in-process jobs.Backend: it routes a job through
// exactly the code path its synchronous endpoint uses (same decoders,
// same response cache, same pipelines), so a job's result bytes are
// byte-identical to the synchronous response for the same request.
func (s *Server) executeJob(ctx context.Context, w jobs.Work, progress func(string)) ([]byte, error) {
	switch w.Kind {
	case jobs.KindCompile, jobs.KindEstimate:
		req, err := DecodeCompileRequest(w.Request, s.cfg.MaxTrials)
		if err != nil {
			return nil, jobs.Permanent(err)
		}
		endpoint, skipMC := "/v1/compile", false
		if w.Kind == jobs.KindEstimate {
			endpoint, skipMC = "/v1/estimate", !req.MonteCarlo
		}
		body, hit, err := s.compileCached(ctx, endpoint, req, skipMC)
		if err != nil {
			return nil, classifyJobErr(ctx, err)
		}
		if hit {
			progress("served from response cache")
		}
		return body, nil

	case jobs.KindBatch:
		req, err := DecodeBatchRequest(w.Request, s.cfg.MaxTrials)
		if err != nil {
			return nil, jobs.Permanent(err)
		}
		progress(fmt.Sprintf("fanning out %d items", len(req.Items)))
		resp := s.runBatch(ctx, req)
		if err := ctx.Err(); err != nil {
			// Interrupted mid-fan-out: report the interruption instead of
			// storing a partial result; the re-run recomputes everything.
			return nil, classifyJobErr(ctx, err)
		}
		body, err := json.MarshalIndent(resp, "", " ")
		if err != nil {
			return nil, err
		}
		return append(body, '\n'), nil

	case jobs.KindPortfolio:
		req, err := DecodePortfolioRequest(w.Request, s.cfg.MaxTrials)
		if err != nil {
			return nil, jobs.Permanent(err)
		}
		body, hit, err := s.portfolioCached(ctx, req)
		if err != nil {
			return nil, classifyJobErr(ctx, err)
		}
		if hit {
			progress("served from response cache")
		}
		return body, nil

	case jobs.KindSweep:
		req, err := DecodeSweepRequest(w.Request)
		if err != nil {
			return nil, jobs.Permanent(err)
		}
		progress(fmt.Sprintf("sweeping %d points", len(req.Points)))
		body, hit, err := s.sweepCached(ctx, req)
		if err != nil {
			return nil, classifyJobErr(ctx, err)
		}
		if hit {
			progress("served from response cache")
		}
		return body, nil
	}
	return nil, jobs.Permanent(fmt.Errorf("unhandled job kind %q", w.Kind))
}

// classifyJobErr maps a pipeline failure onto the retry taxonomy:
// client-caused failures (the statuses the synchronous endpoint would
// 4xx) are permanent — re-running the same spec can only fail the same
// way — while server-side and cancellation failures stay retryable.
func classifyJobErr(ctx context.Context, err error) error {
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		// Surface the manager's cancel cause (deadline, cancel, drain)
		// rather than a bare context error.
		err = cause
	}
	switch errorStatus(err) {
	case http.StatusBadRequest, http.StatusNotFound:
		return jobs.Permanent(err)
	}
	return err
}

// setRetryAfter writes a jittered Retry-After header: the shed's own
// hint (rounded up, at least 1s) plus up to 2s of per-response jitter,
// so a burst of shed clients doesn't reconverge on the same instant.
func setRetryAfter(w http.ResponseWriter, hint time.Duration) {
	secs := int(math.Ceil(hint.Seconds()))
	if secs < 1 {
		secs = 1
	}
	secs += rand.IntN(3)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeJobRequest(data, s.cfg.MaxTrials)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		if h := r.Header.Get("X-Nisqd-Tenant"); h != "" && deviceNameRE.MatchString(h) {
			tenant = h
		}
	}
	v, err := s.jobs.Submit(jobs.Spec{
		Tenant:  tenant,
		Class:   jobs.Class(req.Class),
		Kind:    jobs.Kind(req.Kind),
		Request: req.Request,
	})
	if err != nil {
		var se *jobs.ShedError
		if errors.As(err, &se) {
			setRetryAfter(w, se.RetryAfter)
			writeError(w, http.StatusTooManyRequests, se.Msg)
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

type jobListResponse struct {
	Jobs []*jobs.View `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobListResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, state, ok := s.jobs.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	if state != jobs.StateSucceeded {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("job %s is %s; a result exists only once it succeeds", id, state))
		return
	}
	// The stored bytes are written verbatim: byte-identical to the
	// synchronous endpoint's response for the same request.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
	case errors.Is(err, jobs.ErrNotCancellable):
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s already %s", id, v.State))
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, v)
	}
}

// handleJobEvents streams a job's lifecycle as Server-Sent Events:
// replayed history first, then live events until the job reaches a
// terminal state or the client goes away. Not wrapped in instrumented —
// a stream's lifetime would drown the latency histogram.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.met.request("/v1/jobs/{id}/events")
	id := r.PathValue("id")
	history, ch, cancel, err := s.jobs.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(ev jobs.Event) {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
		fl.Flush()
	}
	for _, ev := range history {
		write(ev)
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			write(ev)
		case <-r.Context().Done():
			return
		}
	}
}

// renderJobsMetrics appends the job plane's gauges and counters to the
// /metrics exposition, labels sorted for a deterministic scrape.
func renderJobsMetrics(b *strings.Builder, snap jobs.Snapshot) {
	b.WriteString("# HELP nisqd_jobs_queued Jobs waiting in the queue (including backoff delays).\n")
	b.WriteString("# TYPE nisqd_jobs_queued gauge\n")
	fmt.Fprintf(b, "nisqd_jobs_queued %d\n", snap.Queued)
	b.WriteString("# HELP nisqd_jobs_running Jobs currently executing.\n")
	b.WriteString("# TYPE nisqd_jobs_running gauge\n")
	fmt.Fprintf(b, "nisqd_jobs_running %d\n", snap.Running)

	b.WriteString("# HELP nisqd_jobs_submitted_total Jobs accepted, by class and tenant.\n")
	b.WriteString("# TYPE nisqd_jobs_submitted_total counter\n")
	for _, k := range sortedCounterKeys(snap.Submitted) {
		fmt.Fprintf(b, "nisqd_jobs_submitted_total{class=%q,tenant=%q} %d\n", k.Class, k.Tenant, snap.Submitted[k])
	}
	b.WriteString("# HELP nisqd_jobs_outcomes_total Jobs finished, by terminal state, class and tenant.\n")
	b.WriteString("# TYPE nisqd_jobs_outcomes_total counter\n")
	for _, k := range sortedCounterKeys(snap.Outcomes) {
		fmt.Fprintf(b, "nisqd_jobs_outcomes_total{state=%q,class=%q,tenant=%q} %d\n", k.State, k.Class, k.Tenant, snap.Outcomes[k])
	}
	b.WriteString("# HELP nisqd_jobs_shed_total Submissions refused before admission, by reason.\n")
	b.WriteString("# TYPE nisqd_jobs_shed_total counter\n")
	reasons := make([]string, 0, len(snap.Shed))
	for r := range snap.Shed {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(b, "nisqd_jobs_shed_total{reason=%q} %d\n", r, snap.Shed[r])
	}
	b.WriteString("# HELP nisqd_jobs_retries_total Attempts re-queued under the backoff policy.\n")
	b.WriteString("# TYPE nisqd_jobs_retries_total counter\n")
	fmt.Fprintf(b, "nisqd_jobs_retries_total %d\n", snap.Retries)
	b.WriteString("# HELP nisqd_jobs_interrupted_total Running jobs re-queued by a drain or crash.\n")
	b.WriteString("# TYPE nisqd_jobs_interrupted_total counter\n")
	fmt.Fprintf(b, "nisqd_jobs_interrupted_total %d\n", snap.Interrupted)
	b.WriteString("# HELP nisqd_jobs_recovered_total Jobs recovered from the store at startup.\n")
	b.WriteString("# TYPE nisqd_jobs_recovered_total counter\n")
	fmt.Fprintf(b, "nisqd_jobs_recovered_total %d\n", snap.Recovered)
	b.WriteString("# HELP nisqd_jobs_store_corrupt_total Store files quarantined at startup.\n")
	b.WriteString("# TYPE nisqd_jobs_store_corrupt_total counter\n")
	fmt.Fprintf(b, "nisqd_jobs_store_corrupt_total %d\n", snap.Corrupt)
	b.WriteString("# HELP nisqd_jobs_persist_errors_total Job state transitions that failed to persist.\n")
	b.WriteString("# TYPE nisqd_jobs_persist_errors_total counter\n")
	fmt.Fprintf(b, "nisqd_jobs_persist_errors_total %d\n", snap.PersistErrors)
}

func sortedCounterKeys(m map[jobs.CounterKey]int64) []jobs.CounterKey {
	keys := make([]jobs.CounterKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].State != keys[b].State {
			return keys[a].State < keys[b].State
		}
		if keys[a].Class != keys[b].Class {
			return keys[a].Class < keys[b].Class
		}
		return keys[a].Tenant < keys[b].Tenant
	})
	return keys
}
