package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// sweepBody builds an n-point sweep request over a named ansatz with
// params values per point.
func sweepBody(ansatzName string, params, n int) string {
	var pts []string
	for i := 0; i < n; i++ {
		vals := make([]string, params)
		for j := range vals {
			vals[j] = fmt.Sprintf("%g", 0.1*float64(i*params+j+1))
		}
		pts = append(pts, "["+strings.Join(vals, ",")+"]")
	}
	return fmt.Sprintf(`{"ansatz":%q,"policy":"vqm","points":[%s]}`, ansatzName, strings.Join(pts, ","))
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// qaoa-4 with the default single layer has 2 free symbols (g0, b0).
	resp, data := post(t, ts.URL+"/v1/sweep", sweepBody("qaoa-4", 2, 5))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if h := resp.Header.Get("X-Nisqd-Cache"); h != "miss" {
		t.Errorf("first request cache header = %q", h)
	}
	var res SweepResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.NumParams != 2 || len(res.Symbols) != 2 {
		t.Fatalf("num_params %d, symbols %v", res.NumParams, res.Symbols)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d points, want 5", len(res.Points))
	}
	if res.CompilesSaved != 4 {
		t.Fatalf("compiles_saved = %d, want 4", res.CompilesSaved)
	}
	if res.AnalyticPST <= 0 || res.AnalyticPST > 1 {
		t.Fatalf("analytic_pst = %v", res.AnalyticPST)
	}
	// Distinct bindings yield distinct physical circuits.
	seen := map[string]bool{}
	for i, pt := range res.Points {
		if pt.Index != i {
			t.Fatalf("point %d has index %d", i, pt.Index)
		}
		if len(pt.Fingerprint) != 16 {
			t.Fatalf("point %d fingerprint %q", i, pt.Fingerprint)
		}
		if seen[pt.Fingerprint] {
			t.Fatalf("duplicate fingerprint %s", pt.Fingerprint)
		}
		seen[pt.Fingerprint] = true
	}

	// The repeat is a cache hit with bit-identical bytes.
	resp2, data2 := post(t, ts.URL+"/v1/sweep", sweepBody("qaoa-4", 2, 5))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if h := resp2.Header.Get("X-Nisqd-Cache"); h != "hit" {
		t.Errorf("repeat cache header = %q", h)
	}
	if !bytes.Equal(data, data2) {
		t.Error("cached sweep body differs from the miss that populated it")
	}
}

// TestSweepWorkerInvariance pins the sweep determinism contract: the
// response bytes are identical at any worker count.
func TestSweepWorkerInvariance(t *testing.T) {
	body := sweepBody("su2-4", 24, 7) // su2-4, default 2 reps: 2*4*3 params
	var first []byte
	for _, workers := range []int{-1, 1, 4} {
		cfg := testConfig()
		cfg.Workers = workers
		_, ts := newTestServerConfig(t, cfg)
		resp, data := post(t, ts.URL+"/v1/sweep", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, resp.StatusCode, data)
		}
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatalf("workers=%d: sweep bytes differ", workers)
		}
	}
}

// TestSweepSymbolicQASM sweeps an inline symbolic program instead of a
// named ansatz.
func TestSweepSymbolicQASM(t *testing.T) {
	_, ts := newTestServer(t)
	qasmSrc := `OPENQASM 2.0; include "qelib1.inc";
qreg q[2]; creg c[2];
ry(theta) q[0]; cx q[0],q[1]; rz(2*phi+0.5) q[1];
measure q[0] -> c[0]; measure q[1] -> c[1];`
	req := map[string]any{
		"qasm":   qasmSrc,
		"points": [][]float64{{0.1, 0.2}, {0.3, 0.4}},
	}
	body, _ := json.Marshal(req)
	resp, data := post(t, ts.URL+"/v1/sweep", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var res SweepResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Template != "qasm" {
		t.Errorf("template = %q", res.Template)
	}
	if want := []string{"theta", "phi"}; len(res.Symbols) != 2 ||
		string(res.Symbols[0]) != want[0] || string(res.Symbols[1]) != want[1] {
		t.Errorf("symbols = %v, want %v", res.Symbols, want)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, wantErr string
	}{
		{"both sources", `{"ansatz":"qaoa-4","qasm":"x","points":[[0]]}`, "not both"},
		{"no source", `{"points":[[0]]}`, "specify ansatz or qasm"},
		{"no points", `{"ansatz":"qaoa-4"}`, "no points"},
		{"unknown field", `{"ansatz":"qaoa-4","points":[[0,0]],"zap":1}`, "decode"},
		{"unknown policy", `{"ansatz":"qaoa-4","policy":"zap","points":[[0,0]]}`, "unknown policy"},
		{"unknown ansatz", `{"ansatz":"zap-4","points":[[0,0]]}`, "unknown ansatz"},
		{"arity mismatch", `{"ansatz":"qaoa-4","points":[[0.1]]}`, "free symbols"},
		{"numeric qasm", `{"qasm":"qreg q[1]; rz(0.5) q[0];","points":[[0.1]]}`, "free symbols"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+"/v1/sweep", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), tc.wantErr) {
				t.Errorf("error %s does not mention %q", data, tc.wantErr)
			}
		})
	}

	// Too many points trips the cap.
	big := sweepBody("qaoa-4", 2, MaxSweepPoints+1)
	resp, data := post(t, ts.URL+"/v1/sweep", big)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "max") {
		t.Fatalf("oversized sweep: status %d: %.200s", resp.StatusCode, data)
	}
}

func TestSweepMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, data := post(t, ts.URL+"/v1/sweep", sweepBody("qaoa-4", 2, 3)); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, data)
	}
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"nisqd_sweep_points_total 3",
		"nisqd_sweep_compiles_saved_total 2",
		`nisqd_requests_total{endpoint="/v1/sweep"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
