package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"vaq/internal/jobs"
)

// slowEstimate is a request whose Monte-Carlo run takes long enough
// (hundreds of ms) that the test can observe it in flight. It pins the
// scalar kernel: the packed kernel finishes 5M trials in milliseconds,
// too fast for the in-flight gauge to catch.
const slowEstimate = `{"workload":"bv-10","policy":"vqm","trials":5000000,"monte_carlo":true,"kernel":"scalar"}`

// waitInFlight polls the in-flight gauge until it reaches want.
func waitInFlight(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.met.inFlight.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached %d (at %d)", want, s.met.inFlight.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGracefulShutdown proves the drain contract: when Serve's context
// is cancelled, the request already in flight completes with 200 while
// new connections are refused, and Serve returns nil (clean drain).
func TestGracefulShutdown(t *testing.T) {
	cfg := testConfig()
	cfg.DrainTimeout = 30 * time.Second
	s := MustNew(cfg)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, l) }()

	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/estimate", "application/json", strings.NewReader(slowEstimate))
		if err != nil {
			slowDone <- err
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			slowDone <- fmt.Errorf("slow request: status %d: %s", resp.StatusCode, body)
			return
		}
		slowDone <- nil
	}()
	waitInFlight(t, s, 1)

	cancel() // begin graceful shutdown while the slow request is in flight

	// The in-flight request must complete successfully.
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request did not drain cleanly: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v, want nil after clean drain", err)
	}

	// The listener is closed: new connections are refused.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("request after shutdown succeeded, want connection refused")
	}
}

// TestSaturationSheds proves the limiter never queues: with capacity 1
// occupied by a slow request, the next request is rejected immediately
// with 429 and a Retry-After header.
func TestSaturationSheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlight = 1
	s := MustNew(cfg)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, l) }()

	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/estimate", "application/json", strings.NewReader(slowEstimate))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow request: status %d", resp.StatusCode)
			}
		}
		slowDone <- err
	}()
	waitInFlight(t, s, 1)

	// The semaphore is full. A second request must be shed at once, not
	// held until capacity frees up.
	start := time.Now()
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"workload":"bv-4","policy":"baseline","trials":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body: %s", resp.StatusCode, body)
	}
	// Retry-After is jittered (base 1s plus up to 2s) so a shed burst of
	// clients spreads out instead of reconverging on the same instant.
	if got, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || got < 1 || got > 3 {
		t.Errorf("Retry-After = %q, want an integer in [1, 3]", resp.Header.Get("Retry-After"))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("shed took %v; a full limiter must reject immediately", elapsed)
	}
	if !strings.Contains(string(body), "capacity") {
		t.Errorf("429 body = %s, want capacity message", body)
	}

	if err := <-slowDone; err != nil {
		t.Fatalf("slow request failed: %v", err)
	}
	cancel()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v, want nil", err)
	}
}

// TestDrainDeadlineBoundsShutdown proves the configurable drain
// deadline is a real bound with the job plane in play: with a slow job
// running and a short DrainTimeout, Serve returns promptly after the
// deadline (it does not wait for the job to finish on its own
// schedule), reports the forced drain as an error, and the interrupted
// job is back in the queue marked for resume rather than lost.
func TestDrainDeadlineBoundsShutdown(t *testing.T) {
	cfg := testConfig()
	cfg.DrainTimeout = 100 * time.Millisecond
	cfg.Jobs = jobs.Options{Workers: 1}
	s := MustNew(cfg)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, l) }()

	// A batch job: the fan-out honors cancellation between items (an
	// estimate job's single MC run would just finish and win), so the
	// drain deadline demonstrably converts running work into a re-queued
	// checkpoint.
	batch := fmt.Sprintf(`{"items":[%s,%s,%s,%s]}`,
		slowEstimate, slowEstimate, slowEstimate, slowEstimate)
	body := fmt.Sprintf(`{"kind":"batch","request":%s}`, batch)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v jobs.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jv, ok := s.Jobs().Get(v.ID)
		if ok && jv.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	cancel()
	err = <-serveErr
	if err == nil {
		t.Fatal("Serve returned nil; a forced job drain must be reported")
	}
	// The bound: the 100ms deadline plus the tail of the one MC run the
	// kernel can't be preempted from — far below the job's natural
	// multi-attempt lifetime, and generous enough for slow CI machines.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("shutdown took %v; DrainTimeout=100ms must bound it", elapsed)
	}
	jv, ok := s.Jobs().Get(v.ID)
	if !ok || jv.State != jobs.StateQueued || jv.Interruptions != 1 {
		t.Fatalf("interrupted job = %+v (ok=%v), want queued with 1 interruption", jv, ok)
	}
}
