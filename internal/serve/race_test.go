package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"vaq/internal/calib"
)

// TestConcurrentMixedClients hammers one server with ~100 concurrent
// clients across every endpoint under the race detector. Every response
// must be either a success or a deliberate load-shed 429 — never a
// hang, panic, or malformed body — and the cached compile responses
// must stay bit-identical across clients.
func TestConcurrentMixedClients(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlight = 32 // small enough that shedding actually happens
	s := MustNew(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var archive bytes.Buffer
	if err := calib.Generate(calib.DefaultQ5Config(11)).WriteJSON(&archive); err != nil {
		t.Fatal(err)
	}
	archiveJSON := archive.String()

	compileReq := `{"workload":"bv-6","policy":"vqm","trials":2000}`
	var (
		wg        sync.WaitGroup
		shed      atomic.Int64
		served    atomic.Int64
		mu        sync.Mutex
		compileRe []byte
	)
	do := func(method, path, body string) {
		defer wg.Done()
		var resp *http.Response
		var err error
		if method == http.MethodGet {
			resp, err = http.Get(ts.URL + path)
		} else {
			resp, err = http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Errorf("%s %s: %v", method, path, err)
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("%s %s read: %v", method, path, err)
			return
		}
		switch resp.StatusCode {
		case http.StatusOK:
			served.Add(1)
			if path == "/v1/compile" {
				mu.Lock()
				if compileRe == nil {
					compileRe = data
				} else if !bytes.Equal(compileRe, data) {
					t.Error("compile responses diverged across clients")
				}
				mu.Unlock()
			}
		case http.StatusTooManyRequests:
			shed.Add(1)
			if !bytes.Contains(data, []byte("capacity")) {
				t.Errorf("429 body unexpected: %s", data)
			}
		default:
			t.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, data)
		}
	}

	const rounds = 10
	for i := 0; i < rounds; i++ {
		wg.Add(10)
		go do(http.MethodPost, "/v1/compile", compileReq)
		go do(http.MethodPost, "/v1/compile", compileReq)
		go do(http.MethodPost, "/v1/estimate", `{"workload":"ghz-3","policy":"baseline","device":"q5","trials":1000,"monte_carlo":true}`)
		go do(http.MethodPost, "/v1/estimate", fmt.Sprintf(`{"workload":"qft-4","policy":"baseline","trials":%d}`, 1000+i))
		go do(http.MethodPost, "/v1/batch", `{"items":[{"workload":"bv-4","policy":"baseline","trials":1000},{"workload":"nope"}]}`)
		go do(http.MethodPost, "/v1/calibration?name=race-q5", archiveJSON)
		go do(http.MethodGet, "/v1/devices", "")
		go do(http.MethodGet, "/healthz", "")
		go do(http.MethodGet, "/metrics", "")
		go do(http.MethodGet, "/debug/pprof/cmdline", "")
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("served %d, shed %d", served.Load(), shed.Load())
	if got := s.met.inFlight.Load(); got != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", got)
	}
}
