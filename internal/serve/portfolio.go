package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"

	"vaq/internal/circuit"
	"vaq/internal/cliutil"
	"vaq/internal/portfolio"
	"vaq/internal/qasm"
)

// Portfolio request limits. The grid bound is the one that matters: a
// portfolio compiles (1+cycles)×(2+starts)×6 candidates, so the axis
// caps alone would admit over a thousand compilations per request.
const (
	// MaxPortfolioCycles bounds the calibration-cycle window.
	MaxPortfolioCycles = 16
	// MaxPortfolioStarts bounds the random multi-start axis.
	MaxPortfolioStarts = 8
	// MaxPortfolioTopK bounds the Monte-Carlo refinement set.
	MaxPortfolioTopK = 32
	// MaxPortfolioCandidates bounds the whole grid, whatever the axis
	// combination.
	MaxPortfolioCandidates = 256
)

// PortfolioRequest is the body of POST /v1/portfolio. Exactly one of
// Workload and QASM must be set. Cycles and RandomStarts are pointers
// because omitted and zero mean different things: omitted takes the
// portfolio defaults, an explicit 0 switches that axis off (reference
// device only / no random starts).
type PortfolioRequest struct {
	// Workload names a built-in circuit (see workloads.ByName).
	Workload string `json:"workload,omitempty"`
	// QASM is an inline OpenQASM 2.0 program.
	QASM string `json:"qasm,omitempty"`
	// Device names a registered device model (default q20).
	Device string `json:"device,omitempty"`
	// RootSeed is the seed every candidate seed derives from (default
	// 2019).
	RootSeed *int64 `json:"root_seed,omitempty"`
	// Cycles is the calibration window: the K most recent cycles of the
	// device's archive join the grid (omitted: portfolio.DefaultCycles;
	// 0: reference device only).
	Cycles *int `json:"cycles,omitempty"`
	// RandomStarts is the seeded-random multi-start count (omitted:
	// portfolio.DefaultRandomStarts; 0: none).
	RandomStarts *int `json:"random_starts,omitempty"`
	// TopK bounds the Monte-Carlo refinement stage (default
	// portfolio.DefaultTopK).
	TopK int `json:"top_k,omitempty"`
	// Trials is the Monte-Carlo budget per refined candidate (default
	// portfolio.DefaultTrials, capped by the server's -trials flag).
	Trials int `json:"trials,omitempty"`
}

// DecodePortfolioRequest parses and validates one /v1/portfolio body.
// Like DecodeCompileRequest it rejects unknown fields, trailing
// garbage, and out-of-range axes before any compilation is admitted;
// the returned request is normalized (every optional field resolved),
// so Spec() is a pure conversion.
func DecodePortfolioRequest(data []byte, maxTrials int) (*PortfolioRequest, error) {
	var req PortfolioRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badReqf("decode: %v", err)
	}
	if dec.More() {
		return nil, badReqf("trailing data after request object")
	}
	req.normalize()
	if err := req.validate(maxTrials); err != nil {
		return nil, err
	}
	return &req, nil
}

// normalize resolves every optional field, so validation and the cache
// key see canonical values (two requests meaning the same portfolio
// share a cache entry).
func (r *PortfolioRequest) normalize() {
	if r.Device == "" {
		r.Device = DefaultDevice
	}
	if r.RootSeed == nil {
		seed := int64(portfolio.DefaultRootSeed)
		r.RootSeed = &seed
	}
	if r.Cycles == nil {
		c := portfolio.DefaultCycles
		r.Cycles = &c
	}
	if r.RandomStarts == nil {
		s := portfolio.DefaultRandomStarts
		r.RandomStarts = &s
	}
	if r.TopK == 0 {
		r.TopK = portfolio.DefaultTopK
	}
	if r.Trials == 0 {
		r.Trials = portfolio.DefaultTrials
	}
}

func (r *PortfolioRequest) validate(maxTrials int) error {
	switch {
	case r.Workload != "" && r.QASM != "":
		return badReqf("specify either workload or qasm, not both")
	case r.Workload == "" && r.QASM == "":
		return badReqf("specify workload or qasm")
	}
	if len(r.QASM) > MaxQASMBytes {
		return badReqf("qasm program is %d bytes (max %d)", len(r.QASM), MaxQASMBytes)
	}
	if *r.Cycles < 0 || *r.Cycles > MaxPortfolioCycles {
		return badReqf("cycles must be in [0, %d] (got %d)", MaxPortfolioCycles, *r.Cycles)
	}
	if *r.RandomStarts < 0 || *r.RandomStarts > MaxPortfolioStarts {
		return badReqf("random_starts must be in [0, %d] (got %d)", MaxPortfolioStarts, *r.RandomStarts)
	}
	if r.TopK < 0 || r.TopK > MaxPortfolioTopK {
		return badReqf("top_k must be in [0, %d] (got %d)", MaxPortfolioTopK, r.TopK)
	}
	if maxTrials <= 0 || maxTrials > cliutil.MaxTrials {
		maxTrials = cliutil.MaxTrials
	}
	if r.Trials < 0 {
		return badReqf("trials must not be negative (got %d)", r.Trials)
	}
	if r.Trials > maxTrials {
		return badReqf("trials %d over the server cap %d", r.Trials, maxTrials)
	}
	// The grid bound: worst case the device archive covers the whole
	// requested window.
	if n := portfolio.GridSize(r.Spec(0), *r.Cycles); n > MaxPortfolioCandidates {
		return badReqf("portfolio grid has %d candidates (max %d); shrink cycles or random_starts",
			n, MaxPortfolioCandidates)
	}
	return nil
}

// Program resolves the request's circuit, exactly as CompileRequest
// does.
func (r *PortfolioRequest) Program() (*circuit.Circuit, error) {
	cr := CompileRequest{Workload: r.Workload, QASM: r.QASM}
	return cr.Program()
}

// Spec converts a normalized request into the portfolio spec. The
// request's explicit-zero axes become the spec's negative "none"
// markers, so portfolio.Spec's own defaulting never reinterprets them.
func (r *PortfolioRequest) Spec(workers int) portfolio.Spec {
	cycles, starts := *r.Cycles, *r.RandomStarts
	if cycles == 0 {
		cycles = -1
	}
	if starts == 0 {
		starts = -1
	}
	return portfolio.Spec{
		RootSeed:     *r.RootSeed,
		Cycles:       cycles,
		RandomStarts: starts,
		TopK:         r.TopK,
		Trials:       r.Trials,
		Workers:      workers,
	}
}

// portfolioCacheKey is the response-cache identity of a portfolio
// request: device fingerprint, program hash, and every spec field that
// changes the ranking. Workers is deliberately absent — the ranking is
// bit-identical at any worker count.
func portfolioCacheKey(deviceFP uint64, prog *circuit.Circuit, spec portfolio.Spec) string {
	h := fnv.New64a()
	h.Write([]byte(qasm.Serialize(prog)))
	return fmt.Sprintf("/v1/portfolio|%016x|%016x|%d|%d|%d|%d|%d",
		deviceFP, h.Sum64(), spec.RootSeed, spec.Cycles, spec.RandomStarts, spec.TopK, spec.Trials)
}

// portfolioCached runs one decoded portfolio request against the
// response cache, exactly as compileCached does for compile/estimate;
// it is the shared execution path of POST /v1/portfolio and portfolio
// jobs. The bool reports whether the result was served from cache.
func (s *Server) portfolioCached(ctx context.Context, req *PortfolioRequest) ([]byte, bool, error) {
	prog, err := req.Program()
	if err != nil {
		return nil, false, err
	}
	d, arch, err := s.lookupDeviceArchive(req.Device)
	if err != nil {
		return nil, false, err
	}
	if err := checkFits(d, prog); err != nil {
		return nil, false, err
	}
	spec := req.Spec(s.cfg.Workers)
	key := portfolioCacheKey(d.Fingerprint(), prog, spec)
	if body, ok := s.cache.get(key); ok {
		s.met.cache(true)
		return body, true, nil
	}
	s.met.cache(false)
	res, err := portfolio.Run(ctx, d, arch, prog, spec)
	if err != nil {
		return nil, false, err
	}
	body, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return nil, false, err
	}
	body = append(body, '\n')
	s.cache.put(key, body)
	return body, false, nil
}

func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodePortfolioRequest(data, s.cfg.MaxTrials)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	body, hit, err := s.portfolioCached(r.Context(), req)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	writeCachedResult(w, body, hit)
}
