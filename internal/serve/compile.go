// Package serve is the compile-and-estimate service layer behind the
// nisqd daemon: a stdlib-only HTTP JSON API that centralizes
// hardware-aware compilation (per-device, per-calibration cost tables
// are exactly the computation worth keeping warm in one process) on top
// of the repository's deterministic building blocks — the routing cache
// (package route), the block-sharded Monte-Carlo simulator (package
// sim), and the fault-isolated worker pool (package parallel).
//
// The compile pipeline itself lives here too, shared with cmd/nisqc:
// both the CLI and the daemon call Run, and the daemon's JSON responses
// embed the exact report text the CLI prints, so the two front-ends can
// never drift apart (an equivalence test pins this byte for byte).
package serve

import (
	"fmt"
	"strings"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/sim"
)

// Spec pins everything one compile-and-estimate depends on besides the
// device: it is the cacheable identity of a request.
type Spec struct {
	Policy   string
	Seed     int64
	Trials   int
	Workers  int
	Optimize bool
	// Kernel selects the Monte-Carlo kernel (sim.KernelPacked or
	// sim.KernelScalar; "" means the simulator default). It is part of
	// the cache identity: the kernels agree statistically, not byte for
	// byte.
	Kernel string
	// SkipMonteCarlo leaves Result.MC zeroed and MC absent from the
	// report (the /v1/estimate endpoint's analytic-only mode).
	SkipMonteCarlo bool
	// Movement overrides the policy's routing pass (route.MovementNames;
	// "" means the policy's own router). Part of the cache identity: the
	// routed circuit differs per router.
	Movement string
}

// ProgramInfo summarizes the logical program.
type ProgramInfo struct {
	Name         string `json:"name"`
	Qubits       int    `json:"qubits"`
	Instructions int    `json:"instructions"`
	Depth        int    `json:"depth"`
}

// DeviceInfo summarizes the device model a result was computed on.
type DeviceInfo struct {
	Name        string `json:"name"`
	Qubits      int    `json:"qubits"`
	Links       int    `json:"links"`
	Fingerprint string `json:"fingerprint"`
}

// PhysicalInfo summarizes the compiled physical circuit.
type PhysicalInfo struct {
	Instructions int `json:"instructions"`
	CNOTs        int `json:"cnots"`
	Depth        int `json:"depth"`
}

// MCInfo reports the Monte-Carlo PST estimate.
type MCInfo struct {
	PST    float64 `json:"pst"`
	StdErr float64 `json:"std_err"`
	Trials int     `json:"trials"`
	// Kernel is the Monte-Carlo kernel that produced the estimate
	// ("packed" or "scalar").
	Kernel string `json:"kernel"`
}

// HazardInfo reports the per-class failure hazards (expected failure
// events per trial; see sim.AnalyticBreakdown).
type HazardInfo struct {
	Gate      float64 `json:"gate"`
	Readout   float64 `json:"readout"`
	Coherence float64 `json:"coherence"`
}

// Result is one compiled-and-estimated circuit: the structured fields
// the JSON API returns plus Report, the exact text cmd/nisqc prints for
// the same inputs.
type Result struct {
	Program        ProgramInfo  `json:"program"`
	Device         DeviceInfo   `json:"device"`
	Policy         string       `json:"policy"`
	Allocator      string       `json:"allocator"`
	Router         string       `json:"router"`
	InitialMapping []int        `json:"initial_mapping"`
	Swaps          int          `json:"swaps"`
	Physical       PhysicalInfo `json:"physical"`
	DurationNs     int64        `json:"duration_ns"`
	AnalyticPST    float64      `json:"analytic_pst"`
	MC             *MCInfo      `json:"monte_carlo,omitempty"`
	Hazards        HazardInfo   `json:"hazards"`
	Report         string       `json:"report"`

	// PhysicalCircuit is the compiled circuit itself, for callers that
	// need more than the summary (nisqc's -timeline/-outcomes/-verbose
	// extras). It never travels over the wire.
	PhysicalCircuit *circuit.Circuit `json:"-"`

	// mcElapsed is the wall time the Monte-Carlo estimate took (zero when
	// skipped); the daemon's trial-throughput metrics read it on cache
	// misses. Like PhysicalCircuit, it never travels over the wire.
	mcElapsed time.Duration
}

// Run compiles prog onto d under spec, verifies the result, and
// estimates its PST. It is the single pipeline behind cmd/nisqc and the
// /v1/compile and /v1/estimate endpoints.
func Run(d *device.Device, prog *circuit.Circuit, spec Spec) (*Result, error) {
	policy, ok := core.PolicyByName(spec.Policy)
	if !ok {
		return nil, fmt.Errorf("unknown policy %q", spec.Policy)
	}
	if !sim.ValidKernel(spec.Kernel) {
		return nil, fmt.Errorf("unknown kernel %q", spec.Kernel)
	}
	comp, err := core.Compile(d, prog, core.Options{Policy: policy, Seed: spec.Seed, Optimize: spec.Optimize, Movement: spec.Movement})
	if err != nil {
		return nil, err
	}
	if err := comp.Verify(d); err != nil {
		return nil, fmt.Errorf("internal error: compiled program failed verification: %w", err)
	}

	in := prog.Stats()
	out := comp.Routed.Physical.Stats()
	scfg := sim.Config{Trials: spec.Trials, Seed: spec.Seed, Workers: spec.Workers, Kernel: spec.Kernel}
	prep := sim.Prepare(d, comp.Routed.Physical, scfg)
	analytic := prep.AnalyticPST()
	breakdown := sim.AnalyticBreakdown(d, comp.Routed.Physical, scfg)

	r := &Result{
		Program: ProgramInfo{
			Name:         prog.Name,
			Qubits:       prog.NumQubits,
			Instructions: in.Total,
			Depth:        in.Depth,
		},
		Device:         Describe(d),
		Policy:         comp.Policy.String(),
		Allocator:      comp.Allocator,
		Router:         comp.Router,
		InitialMapping: append([]int(nil), comp.Routed.Initial...),
		Swaps:          comp.Swaps(),
		Physical: PhysicalInfo{
			Instructions: out.Total,
			CNOTs:        out.CNOTs,
			Depth:        out.Depth,
		},
		DurationNs:  int64(comp.Routed.Physical.Duration()),
		AnalyticPST: analytic,
		Hazards: HazardInfo{
			Gate:      breakdown.Gate,
			Readout:   breakdown.Readout,
			Coherence: breakdown.Coherence,
		},
		PhysicalCircuit: comp.Routed.Physical,
	}
	if !spec.SkipMonteCarlo {
		start := time.Now()
		mc := prep.Run(scfg)
		r.mcElapsed = time.Since(start)
		r.MC = &MCInfo{PST: mc.PST, StdErr: mc.StdErr, Trials: mc.Trials, Kernel: mc.Kernel}
	}

	// The report is rendered here, with the live objects, using the
	// same verbs cmd/nisqc historically used — the CLI prints this
	// string verbatim, which is what makes daemon and CLI bit-identical
	// by construction.
	var b strings.Builder
	fmt.Fprintf(&b, "program     %s (%d qubits, %d instructions, depth %d)\n",
		prog.Name, prog.NumQubits, in.Total, in.Depth)
	fmt.Fprintf(&b, "device      %s (%d qubits, %d links)\n",
		d.Topology().Name, d.NumQubits(), d.Topology().NumLinks())
	fmt.Fprintf(&b, "policy      %s (alloc %s, route %s)\n", comp.Policy, comp.Allocator, comp.Router)
	fmt.Fprintf(&b, "mapping     initial %v\n", comp.Routed.Initial)
	fmt.Fprintf(&b, "swaps       %d inserted (physical: %d instructions, %d CNOTs, depth %d)\n",
		comp.Swaps(), out.Total, out.CNOTs, out.Depth)
	fmt.Fprintf(&b, "duration    %v per trial\n", comp.Routed.Physical.Duration())
	if r.MC != nil {
		fmt.Fprintf(&b, "PST         %.4f analytic, %.4f ± %.4f Monte-Carlo (%d trials)\n",
			analytic, r.MC.PST, r.MC.StdErr, r.MC.Trials)
	} else {
		fmt.Fprintf(&b, "PST         %.4f analytic\n", analytic)
	}
	fmt.Fprintf(&b, "hazards     gate %.3f, readout %.3f, coherence %.3f\n",
		breakdown.Gate, breakdown.Readout, breakdown.Coherence)
	r.Report = b.String()
	return r, nil
}

// Describe summarizes a device for API responses, including the exact
// calibration fingerprint the response cache and route cache key on.
func Describe(d *device.Device) DeviceInfo {
	return DeviceInfo{
		Name:        d.Topology().Name,
		Qubits:      d.NumQubits(),
		Links:       d.Topology().NumLinks(),
		Fingerprint: fmt.Sprintf("%016x", d.Fingerprint()),
	}
}
