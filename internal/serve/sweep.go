package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"

	"vaq/internal/ansatz"
	"vaq/internal/core"
	"vaq/internal/parallel"
	"vaq/internal/param"
	"vaq/internal/qasm"
	"vaq/internal/route"
)

// Sweep request limits. Points are cheap — a rebind is a clone-and-fill,
// not a compile — so the point cap is far above the portfolio grid cap,
// but still bounds a single request's allocation.
const (
	// MaxSweepPoints bounds the parameter sets of one sweep.
	MaxSweepPoints = 4096
)

// SweepRequest is the body of POST /v1/sweep: one parametric template
// (a named ansatz or inline symbolic OpenQASM) swept over a list of
// parameter sets. The template compiles once — allocation, routing and
// the success estimate are angle-independent — and each point is a
// rebind of the winning mapping.
type SweepRequest struct {
	// Ansatz names a built-in parametric generator (see ansatz.Names):
	// "su2-<n>[-r<reps>]" or "qaoa-<n>[-p<layers>]".
	Ansatz string `json:"ansatz,omitempty"`
	// QASM is an inline OpenQASM 2.0 program with symbolic parameters
	// (see qasm.ParseParametric).
	QASM string `json:"qasm,omitempty"`
	// Policy is a compilation policy name (default vqa+vqm).
	Policy string `json:"policy,omitempty"`
	// Device names a registered device model (default q20).
	Device string `json:"device,omitempty"`
	// Seed drives Native's randomized mapping (default 2019).
	Seed *int64 `json:"seed,omitempty"`
	// Movement overrides the policy's routing pass (route.MovementNames).
	Movement string `json:"movement,omitempty"`
	// Points are the parameter sets, positional over the template's free
	// symbols in appearance order (the response's Symbols field).
	Points [][]float64 `json:"points"`
}

// DecodeSweepRequest parses and validates one /v1/sweep body. Symbol
// arity is checked later, against the resolved template; everything
// checkable without compiling is rejected here.
func DecodeSweepRequest(data []byte) (*SweepRequest, error) {
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badReqf("decode: %v", err)
	}
	if dec.More() {
		return nil, badReqf("trailing data after request object")
	}
	req.normalize()
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func (r *SweepRequest) normalize() {
	if r.Policy == "" {
		r.Policy = DefaultPolicy
	}
	if r.Device == "" {
		r.Device = DefaultDevice
	}
	if r.Seed == nil {
		seed := int64(DefaultSeed)
		r.Seed = &seed
	}
}

func (r *SweepRequest) validate() error {
	switch {
	case r.Ansatz != "" && r.QASM != "":
		return badReqf("specify either ansatz or qasm, not both")
	case r.Ansatz == "" && r.QASM == "":
		return badReqf("specify ansatz or qasm")
	}
	if len(r.QASM) > MaxQASMBytes {
		return badReqf("qasm program is %d bytes (max %d)", len(r.QASM), MaxQASMBytes)
	}
	if _, ok := core.PolicyByName(r.Policy); !ok {
		return badReqf("unknown policy %q", r.Policy)
	}
	if r.Movement != "" {
		if _, err := route.ByName(r.Movement, 0); err != nil {
			return badReqf("%v", err)
		}
	}
	if len(r.Points) == 0 {
		return badReqf("sweep has no points")
	}
	if len(r.Points) > MaxSweepPoints {
		return badReqf("sweep has %d points (max %d)", len(r.Points), MaxSweepPoints)
	}
	return nil
}

// Template resolves the request's parametric circuit.
func (r *SweepRequest) Template() (*param.ParametricCircuit, error) {
	if r.Ansatz != "" {
		pc, err := ansatz.ByName(r.Ansatz)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return pc, nil
	}
	pc, err := qasm.ParseParametric(r.QASM)
	if err != nil {
		return nil, fmt.Errorf("%w: qasm: %v", ErrBadRequest, err)
	}
	return pc, nil
}

// SweepPoint is one swept parameter set: its values and the FNV-64a
// fingerprint of the rebound physical circuit's serialized form —
// enough for a client to dedupe, archive or fetch bindings without the
// response carrying thousands of full circuits.
type SweepPoint struct {
	Index       int       `json:"index"`
	Values      []float64 `json:"values"`
	Fingerprint string    `json:"fingerprint"`
}

// SweepResult is the body of a /v1/sweep response. AnalyticPST is one
// number for the whole sweep: the success estimate never reads angles,
// so every binding of the compiled mapping shares it.
type SweepResult struct {
	Device    DeviceInfo     `json:"device"`
	Template  string         `json:"template"`
	Policy    string         `json:"policy"`
	NumParams int            `json:"num_params"`
	Symbols   []param.Symbol `json:"symbols"`
	// Physical summarizes the compiled mapping (constant across points).
	Physical PhysicalInfo `json:"physical"`
	// AnalyticPST is the mapping's success estimate, shared by every
	// point of the sweep.
	AnalyticPST float64 `json:"analytic_pst"`
	// CompilesSaved counts the compilations the parametric plane
	// avoided: every point after the first reuses the mapping.
	CompilesSaved int          `json:"compiles_saved"`
	Points        []SweepPoint `json:"points"`
}

// sweepCacheKey is the response-cache identity of a sweep: device
// fingerprint, template hash, the spec fields that change the mapping,
// and a digest of every point. Workers is deliberately absent — the
// fan-out writes by index, so the body is bit-identical at any count.
func sweepCacheKey(deviceFP uint64, req *SweepRequest) string {
	h := fnv.New64a()
	h.Write([]byte(req.Ansatz))
	h.Write([]byte{0})
	h.Write([]byte(req.QASM))
	var buf [8]byte
	for _, pt := range req.Points {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(pt)))
		h.Write(buf[:])
		for _, v := range pt {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("/v1/sweep|%016x|%016x|%s|%d|%s",
		deviceFP, h.Sum64(), req.Policy, *req.Seed, req.Movement)
}

// sweepCached runs one decoded sweep against the response cache; it is
// the shared execution path of POST /v1/sweep and sweep jobs. The bool
// reports whether the result was served from cache.
func (s *Server) sweepCached(ctx context.Context, req *SweepRequest) ([]byte, bool, error) {
	pc, err := req.Template()
	if err != nil {
		return nil, false, err
	}
	d, err := s.lookupDevice(req.Device)
	if err != nil {
		return nil, false, err
	}
	if err := checkFits(d, pc.Circ); err != nil {
		return nil, false, err
	}
	key := sweepCacheKey(d.Fingerprint(), req)
	if body, ok := s.cache.get(key); ok {
		s.met.cache(true)
		s.met.sweep(len(req.Points))
		return body, true, nil
	}
	s.met.cache(false)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}

	policy, _ := core.PolicyByName(req.Policy)
	bound, err := core.CompileParametric(d, pc, core.Options{
		Policy:   policy,
		Seed:     *req.Seed,
		Movement: req.Movement,
	})
	if err != nil {
		return nil, false, err
	}
	for i, pt := range req.Points {
		if len(pt) != bound.NumParams() {
			return nil, false, badReqf("point %d has %d values, template has %d free symbols",
				i, len(pt), bound.NumParams())
		}
	}

	// The fan-out: every point is an independent rebind writing its own
	// slot, so the point list is bit-identical at any worker count.
	points := make([]SweepPoint, len(req.Points))
	err = parallel.Collect(ctx, s.cfg.Workers, len(req.Points), func(i int) error {
		phys, err := bound.RebindValues(req.Points[i])
		if err != nil {
			return err
		}
		h := fnv.New64a()
		h.Write([]byte(qasm.Serialize(phys)))
		points[i] = SweepPoint{
			Index:       i,
			Values:      req.Points[i],
			Fingerprint: fmt.Sprintf("%016x", h.Sum64()),
		}
		return nil
	})
	if err != nil {
		// A sweep is all-or-nothing (unlike a batch, whose items are
		// independent requests): surface the first point failure.
		first := unwrapJoined(err)[0]
		var pe *parallel.Error
		if errors.As(first, &pe) {
			return nil, false, fmt.Errorf("point %d: %w", pe.Index, pe.Err)
		}
		return nil, false, first
	}

	stats := bound.Compiled.Routed.Physical.Stats()
	res := SweepResult{
		Device:    Describe(d),
		Template:  templateLabel(req),
		Policy:    req.Policy,
		NumParams: bound.NumParams(),
		Symbols:   bound.Symbols(),
		Physical: PhysicalInfo{
			Instructions: stats.Total,
			CNOTs:        stats.CNOTs,
			Depth:        stats.Depth,
		},
		AnalyticPST:   bound.ESP,
		CompilesSaved: len(req.Points) - 1,
		Points:        points,
	}
	res.Device.Name = req.Device
	s.met.sweep(len(req.Points))
	body, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return nil, false, err
	}
	body = append(body, '\n')
	s.cache.put(key, body)
	return body, false, nil
}

// templateLabel names the swept template in responses: the ansatz name
// or "qasm" for inline programs.
func templateLabel(req *SweepRequest) string {
	if req.Ansatz != "" {
		return req.Ansatz
	}
	return "qasm"
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	req, err := DecodeSweepRequest(data)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	body, hit, err := s.sweepCached(r.Context(), req)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	writeCachedResult(w, body, hit)
}
