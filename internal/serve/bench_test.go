package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchCompile drives POST /v1/compile through the full middleware
// stack (limiter, metrics, cache) with httptest recorders — no network.
func benchCompile(b *testing.B, s *Server, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/compile", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeCompile measures the response cache: "hot" replays one
// request so every iteration after the first is an LRU hit; "cold"
// varies the seed each iteration so every request misses and runs the
// full compile-verify-estimate pipeline. The acceptance bar is hot ≥5×
// faster than cold.
func BenchmarkServeCompile(b *testing.B) {
	const body = `{"workload":"bv-8","policy":"vqm","trials":2000,"monte_carlo":true}`
	b.Run("hot", func(b *testing.B) {
		s := MustNew(Config{Seed: 2019, CacheEntries: 64})
		benchCompile(b, s, body) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchCompile(b, s, body)
		}
	})
	b.Run("cold", func(b *testing.B) {
		s := MustNew(Config{Seed: 2019, CacheEntries: 64})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchCompile(b, s, fmt.Sprintf(
				`{"workload":"bv-8","policy":"vqm","trials":2000,"seed":%d,"monte_carlo":true}`, i+1))
		}
	})
}
