package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchCompile drives POST /v1/compile through the full middleware
// stack (limiter, metrics, cache) with httptest recorders — no network.
func benchCompile(b *testing.B, s *Server, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/compile", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeCompile measures the response cache: "hot" replays one
// request so every iteration after the first is an LRU hit; "cold"
// varies the seed each iteration so every request misses and runs the
// full compile-verify-estimate pipeline. The acceptance bar is hot ≥5×
// faster than cold.
func BenchmarkServeCompile(b *testing.B) {
	const body = `{"workload":"bv-8","policy":"vqm","trials":2000,"monte_carlo":true}`
	b.Run("hot", func(b *testing.B) {
		s := MustNew(Config{Seed: 2019, CacheEntries: 64})
		benchCompile(b, s, body) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchCompile(b, s, body)
		}
	})
	b.Run("cold", func(b *testing.B) {
		s := MustNew(Config{Seed: 2019, CacheEntries: 64})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchCompile(b, s, fmt.Sprintf(
				`{"workload":"bv-8","policy":"vqm","trials":2000,"seed":%d,"monte_carlo":true}`, i+1))
		}
	})
}

// BenchmarkSweepServe measures POST /v1/sweep end to end: one compile
// fanned out over a 64-point binding grid per request ("cold" varies
// the grid each iteration so every request misses the response cache;
// "hot" replays one grid so every iteration after the first is an LRU
// hit). The per-point marginal cost is the serve-layer complement of
// core's BenchmarkRebindVsRecompile.
func BenchmarkSweepServe(b *testing.B) {
	sweepBody := func(variant int) string {
		var pts strings.Builder
		for p := 0; p < 64; p++ {
			if p > 0 {
				pts.WriteByte(',')
			}
			fmt.Fprintf(&pts, "[%g,%g]", 0.1+float64(p)*0.01+float64(variant), 0.2+float64(p)*0.02)
		}
		return fmt.Sprintf(`{"ansatz":"qaoa-6","policy":"vqm","points":[%s]}`, pts.String())
	}
	bench := func(b *testing.B, s *Server, body string) {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.Run("hot", func(b *testing.B) {
		s := MustNew(Config{Seed: 2019, CacheEntries: 64})
		body := sweepBody(0)
		bench(b, s, body) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bench(b, s, body)
		}
	})
	b.Run("cold", func(b *testing.B) {
		s := MustNew(Config{Seed: 2019, CacheEntries: 64})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bench(b, s, sweepBody(i+1))
		}
	})
}
