// Package ansatz generates the parametric circuit templates of
// variational (VQA) workloads: deterministic, size-parameterized ansatz
// families that play the role package workloads plays for fixed
// benchmarks. Where workloads.ByName returns concrete circuits, ByName
// here returns param.ParametricCircuit templates whose rotation angles
// are free symbols — the inputs of the compile-once/rebind-many plane
// (core.CompileParametric) and the sweep surfaces built on it.
//
// Two families cover the common VQA shapes:
//
//   - su2-N: an EfficientSU2-style hardware-efficient ansatz — RY+RZ
//     rotation layers separated by linear-chain CX entanglers;
//   - qaoa-N: a QAOA-style alternating ansatz on the N-qubit ring —
//     per-layer shared cost angle γ (CX·RZ·CX on each ring edge) and
//     mixer angle β (RX(2β) on every qubit).
//
// Generators are pure functions of (size, depth): no randomness, so a
// name always denotes byte-for-byte the same template.
package ansatz

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vaq/internal/circuit"
	"vaq/internal/param"
)

// DefaultReps is the rotation-layer repetition count of su2-N names.
const DefaultReps = 2

// DefaultLayers is the alternating-layer count of qaoa-N names.
const DefaultLayers = 1

// MaxNamedQubits caps the sizes ByName accepts, mirroring the guard in
// workloads.ByName.
const MaxNamedQubits = 4096

// EfficientSU2 returns the hardware-efficient ansatz on n ≥ 2 qubits:
// reps ≥ 1 blocks of [RY layer, RZ layer, linear CX entangler] followed
// by a final RY+RZ rotation layer, then full measurement. Free symbols
// are t0, t1, … in appearance order; the parameter count is
// 2·n·(reps+1).
func EfficientSU2(n, reps int) (*param.ParametricCircuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("ansatz: su2 needs ≥ 2 qubits, got %d", n)
	}
	if reps < 1 {
		return nil, fmt.Errorf("ansatz: su2 needs ≥ 1 repetition, got %d", reps)
	}
	name := fmt.Sprintf("su2-%d", n)
	if reps != DefaultReps {
		name = fmt.Sprintf("su2-%d-r%d", n, reps)
	}
	c := circuit.New(name, n)
	pc := param.New(c)
	k := 0
	next := func() param.Expr {
		e := param.Sym(param.Symbol("t" + strconv.Itoa(k)))
		k++
		return e
	}
	rotations := func() {
		for q := 0; q < n; q++ {
			c.RY(0, q)
			pc.SetParam(len(c.Gates)-1, next())
		}
		for q := 0; q < n; q++ {
			c.RZ(0, q)
			pc.SetParam(len(c.Gates)-1, next())
		}
	}
	for r := 0; r < reps; r++ {
		rotations()
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	rotations()
	c.MeasureAll()
	return pc, nil
}

// QAOA returns the alternating ansatz on the n ≥ 3 qubit ring with
// layers ≥ 1 cost/mixer blocks after the initial H layer. Each layer l
// contributes two shared symbols: the cost angle g<l> applied as
// CX·RZ(γ)·CX across every ring edge, and the mixer angle b<l> applied
// as RX(2β) on every qubit. The parameter count is 2·layers.
func QAOA(n, layers int) (*param.ParametricCircuit, error) {
	if n < 3 {
		return nil, fmt.Errorf("ansatz: qaoa needs ≥ 3 qubits (a ring), got %d", n)
	}
	if layers < 1 {
		return nil, fmt.Errorf("ansatz: qaoa needs ≥ 1 layer, got %d", layers)
	}
	name := fmt.Sprintf("qaoa-%d", n)
	if layers != DefaultLayers {
		name = fmt.Sprintf("qaoa-%d-p%d", n, layers)
	}
	c := circuit.New(name, n)
	pc := param.New(c)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for l := 0; l < layers; l++ {
		gamma := param.Sym(param.Symbol("g" + strconv.Itoa(l)))
		for q := 0; q < n; q++ {
			a, b := q, (q+1)%n
			c.CX(a, b)
			c.RZ(0, b)
			pc.SetParam(len(c.Gates)-1, gamma)
			c.CX(a, b)
		}
		beta := param.Sym(param.Symbol("b" + strconv.Itoa(l)))
		for q := 0; q < n; q++ {
			c.RX(0, q)
			pc.SetParam(len(c.Gates)-1, beta.Scale(2))
		}
	}
	c.MeasureAll()
	return pc, nil
}

// ByName resolves an ansatz name — "su2-N" (DefaultReps rotation
// blocks) or "qaoa-N" (DefaultLayers alternating layers) — mirroring
// workloads.ByName. Unknown names report the valid forms.
func ByName(name string) (*param.ParametricCircuit, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	for _, f := range []struct {
		prefix string
		min    int
		build  func(n int) (*param.ParametricCircuit, error)
	}{
		{"su2-", 2, func(n int) (*param.ParametricCircuit, error) { return EfficientSU2(n, DefaultReps) }},
		{"qaoa-", 3, func(n int) (*param.ParametricCircuit, error) { return QAOA(n, DefaultLayers) }},
	} {
		if !strings.HasPrefix(lower, f.prefix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(lower, f.prefix))
		if err != nil {
			return nil, fmt.Errorf("ansatz: bad size in %q (want %s<qubits>)", name, f.prefix)
		}
		if n < f.min || n > MaxNamedQubits {
			return nil, fmt.Errorf("ansatz: %s size %d out of range [%d, %d]", strings.TrimSuffix(f.prefix, "-"), n, f.min, MaxNamedQubits)
		}
		return f.build(n)
	}
	return nil, fmt.Errorf("ansatz: unknown ansatz %q (want one of: %s)", name, strings.Join(Names(), ", "))
}

// Names lists the recognized name forms in sorted order.
func Names() []string {
	names := []string{"qaoa-N", "su2-N"}
	sort.Strings(names)
	return names
}

// Params returns the parameter count of a named ansatz without keeping
// the template: the introspection hook for listings and request
// validation.
func Params(name string) (int, error) {
	pc, err := ByName(name)
	if err != nil {
		return 0, err
	}
	return pc.NumParams(), nil
}
