package ansatz

import (
	"math"
	"testing"

	"vaq/internal/gate"
	"vaq/internal/param"
	"vaq/internal/statevec"
)

func TestEfficientSU2Shape(t *testing.T) {
	pc, err := EfficientSU2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pc.NumParams(), 2*4*(2+1); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if pc.Circ.NumQubits != 4 {
		t.Fatalf("qubits = %d", pc.Circ.NumQubits)
	}
	cx, measures := 0, 0
	for _, g := range pc.Circ.Gates {
		switch g.Kind {
		case gate.CX:
			cx++
		case gate.Measure:
			measures++
		}
	}
	if cx != 2*3 || measures != 4 {
		t.Fatalf("cx = %d, measures = %d", cx, measures)
	}
	// Symbols appear in t0, t1, … order.
	free := pc.FreeSymbols()
	for i, s := range free[:3] {
		if want := param.Symbol("t" + string(rune('0'+i))); s != want {
			t.Fatalf("symbol %d = %q, want %q", i, s, want)
		}
	}
}

func TestQAOAShape(t *testing.T) {
	pc, err := QAOA(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pc.NumParams(), 2*3; got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	free := pc.FreeSymbols()
	want := []param.Symbol{"g0", "b0", "g1", "b1", "g2", "b2"}
	for i := range want {
		if free[i] != want[i] {
			t.Fatalf("FreeSymbols = %v, want %v", free, want)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range []string{"su2-6", "qaoa-6"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Circ.Gates) != len(b.Circ.Gates) {
			t.Fatalf("%s: gate counts differ", name)
		}
		for i := range a.Circ.Gates {
			ga, gb := a.Circ.Gates[i], b.Circ.Gates[i]
			if ga.Kind != gb.Kind || ga.Param != gb.Param {
				t.Fatalf("%s gate %d differs: %+v vs %+v", name, i, ga, gb)
			}
		}
	}
}

func TestByNameErrors(t *testing.T) {
	for _, name := range []string{"su2-1", "qaoa-2", "su2-x", "nope-4", "su2-99999"} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) succeeded", name)
		}
	}
}

func TestParamsIntrospection(t *testing.T) {
	n, err := Params("su2-3")
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * (DefaultReps + 1); n != want {
		t.Fatalf("Params(su2-3) = %d, want %d", n, want)
	}
}

// TestBoundAnsatzSimulates binds both families and replays them on the
// state-vector simulator: at all-zero angles su2 is the identity on
// |0…0⟩ up to the measurement layer, and qaoa leaves the uniform
// superposition intact.
func TestBoundAnsatzSimulates(t *testing.T) {
	su2, err := ByName("su2-3")
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, su2.NumParams())
	bound, err := su2.BindValues(zero)
	if err != nil {
		t.Fatal(err)
	}
	s, err := statevec.Run(bound)
	if err != nil {
		t.Fatal(err)
	}
	if idx, ok := s.BasisState(); !ok || idx != 0 {
		t.Fatalf("su2 at zero angles is not |000⟩: %v %v", idx, ok)
	}

	qaoa, err := ByName("qaoa-3")
	if err != nil {
		t.Fatal(err)
	}
	bound, err = qaoa.BindValues(make([]float64, qaoa.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	s, err = statevec.Run(bound)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Probabilities() {
		if math.Abs(p-1.0/8) > 1e-9 {
			t.Fatalf("qaoa at zero angles amplitude %d = %v, want uniform 1/8", i, p)
		}
	}
}
