package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != 1 {
		t.Fatalf("Workers(-5) = %d, want 1 (serial)", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{-1, 1, 2, 8} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryItem(t *testing.T) {
	var ran atomic.Int64
	if err := ForEach(4, 57, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 57 {
		t.Fatalf("ran %d items, want 57", ran.Load())
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	if err := ForEach(4, 0, func(i int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -3, func(i int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestErrorCarriesItemIndex(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 20, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
		var pe *Error
		if !errors.As(err, &pe) || pe.Index != 7 {
			t.Fatalf("workers=%d: err = %v, want *Error at index 7", workers, err)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: cause not unwrapped: %v", workers, err)
		}
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Serial path: the scan guarantees the lowest failing index. Parallel
	// failures report a deterministic index too, because ForEach drains all
	// started items and scans errs in order.
	err := ForEach(1, 10, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	var pe *Error
	if !errors.As(err, &pe) || pe.Index != 3 {
		t.Fatalf("err = %v, want index 3", err)
	}
}

func TestPanicCapturedNotDeadlocked(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 8, func(i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		})
		var pe *Error
		if !errors.As(err, &pe) || pe.Index != 2 {
			t.Fatalf("workers=%d: err = %v, want *Error at index 2", workers, err)
		}
		var pan *PanicError
		if !errors.As(err, &pan) || pan.Value != "kaboom" {
			t.Fatalf("workers=%d: panic value lost: %v", workers, err)
		}
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("bad")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("Map on failure = (%v, %v), want (nil, err)", out, err)
	}
}

// TestConcurrentStress drives the pool with more items than workers under
// contention; it exists chiefly for go test -race (scripts/check.sh).
func TestConcurrentStress(t *testing.T) {
	var sum atomic.Int64
	n := 2000
	if testing.Short() {
		n = 200
	}
	if err := ForEach(8, n, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * int64(n-1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestCollectReturnsAllFailuresInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := Collect(context.Background(), workers, 10, func(i int) error {
			ran.Add(1)
			if i%2 == 1 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: ran %d items, want all 10 despite failures", workers, ran.Load())
		}
		var joined interface{ Unwrap() []error }
		if !errors.As(err, &joined) {
			t.Fatalf("workers=%d: Collect error is not a join: %v", workers, err)
		}
		errs := joined.Unwrap()
		if len(errs) != 5 {
			t.Fatalf("workers=%d: %d failures, want all 5", workers, len(errs))
		}
		for k, e := range errs {
			var pe *Error
			if !errors.As(e, &pe) || pe.Index != 2*k+1 {
				t.Fatalf("workers=%d: failure %d = %v, want index %d", workers, k, e, 2*k+1)
			}
		}
	}
}

func TestCollectPanicCarriesStack(t *testing.T) {
	err := Collect(context.Background(), 4, 6, func(i int) error {
		if i == 3 {
			panic("unit exploded")
		}
		return nil
	})
	var pan *PanicError
	if !errors.As(err, &pan) {
		t.Fatalf("panic not captured: %v", err)
	}
	if pan.Value != "unit exploded" {
		t.Fatalf("panic value = %v", pan.Value)
	}
	if !strings.Contains(string(pan.Stack), "parallel_test.go") {
		t.Fatalf("stack does not point at the panic site:\n%s", pan.Stack)
	}
}

func TestForEachCtxCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := ForEachCtx(ctx, 2, 1000, func(i int) error {
		if started.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the claim loop (%d items ran)", n)
	}
}

func TestCollectCtxCancellationJoinsCtxErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := Collect(ctx, 4, 50, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled joined", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled Collect still ran %d items", ran.Load())
	}
}

func TestMapCtxDiscardsPartialsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 4, 20, func(i int) (int, error) { return i, nil })
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx after cancel = (%v, %v)", out, err)
	}
}

// TestSerialParallelIdentical pins the determinism contract: the same
// inputs produce the same outputs at every worker count.
func TestSerialParallelIdentical(t *testing.T) {
	compute := func(workers int) []int {
		out, err := Map(workers, 64, func(i int) (int, error) { return i*i + 7, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := compute(-1)
	for _, workers := range []int{1, 2, 8, 32} {
		got := compute(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %d, serial %d", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestProtect(t *testing.T) {
	// A plain error passes through untouched.
	sentinel := errors.New("boom")
	if err := Protect(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Protect error = %v, want sentinel", err)
	}
	// A success passes through as nil.
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("Protect success = %v", err)
	}
	// A panic is quarantined into *PanicError with the stack captured.
	err := Protect(func() error { panic("quarantine me") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Protect panic = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "quarantine me" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v, want value and stack", pe)
	}
}
