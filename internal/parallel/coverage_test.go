package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorStrings(t *testing.T) {
	e := &Error{Index: 3, Err: errors.New("boom")}
	if got := e.Error(); got != "item 3: boom" {
		t.Errorf("Error.Error() = %q", got)
	}
	p := &PanicError{Value: "bad state"}
	if got := p.Error(); got != "panic: bad state" {
		t.Errorf("PanicError.Error() = %q", got)
	}
	wrapped := &Error{Index: 1, Err: p}
	if got := wrapped.Error(); !strings.Contains(got, "panic: bad state") {
		t.Errorf("wrapped panic string = %q", got)
	}
}

func TestForEachCtxItemFailure(t *testing.T) {
	for _, workers := range []int{-1, 4} {
		err := ForEachCtx(context.Background(), workers, 8, func(i int) error {
			if i == 2 {
				return fmt.Errorf("item failed")
			}
			return nil
		})
		var ie *Error
		if !errors.As(err, &ie) {
			t.Fatalf("workers=%d: error %v, want *Error", workers, err)
		}
		if ie.Index != 2 {
			t.Errorf("workers=%d: index %d, want 2", workers, ie.Index)
		}
	}
}

func TestMapCtxSuccess(t *testing.T) {
	out, err := MapCtx(context.Background(), 4, 5, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapCtxZeroItems(t *testing.T) {
	out, err := MapCtx(context.Background(), 4, 0, func(i int) (int, error) { return i, nil })
	if out != nil || err != nil {
		t.Fatalf("MapCtx(n=0) = (%v, %v), want (nil, nil)", out, err)
	}
	// With zero items, a cancelled context is still reported.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, 4, 0, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx(cancelled, n=0) error = %v, want context.Canceled", err)
	}
}

func TestMapCtxItemFailureDiscardsResults(t *testing.T) {
	out, err := MapCtx(context.Background(), 2, 6, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("late failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Fatalf("partial results %v survived a failure", out)
	}
}

func TestCollectDegenerateInputs(t *testing.T) {
	if err := Collect(context.Background(), 4, 0, func(i int) error { return nil }); err != nil {
		t.Fatalf("Collect(n=0) = %v", err)
	}
	// Serial discipline (workers < 0) still collects every failure.
	err := Collect(context.Background(), -1, 3, func(i int) error {
		return fmt.Errorf("f%d", i)
	})
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("Collect error %T is not a join", err)
	}
	if n := len(joined.Unwrap()); n != 3 {
		t.Fatalf("joined %d errors, want 3", n)
	}
}

func TestForEachCtxSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := ForEachCtx(ctx, -1, 10, func(i int) error {
		ran++
		if i == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if ran != 2 {
		t.Errorf("ran %d items before serial cancellation took effect, want 2", ran)
	}
}

func TestForEachWorkersCappedAtN(t *testing.T) {
	// More workers than items: the pool must clamp, run everything, and
	// stay race-free.
	hit := make([]bool, 3)
	if err := ForEach(64, 3, func(i int) error { hit[i] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if !h {
			t.Errorf("item %d skipped", i)
		}
	}
}
