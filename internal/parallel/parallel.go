// Package parallel provides the bounded worker pools behind every
// concurrent loop in the repository: the block-sharded Monte-Carlo
// simulator (package sim) and the experiment fan-outs (package
// experiments). The helpers preserve item order, propagate failures and
// panics with their item index, and degrade to a plain serial loop for
// degenerate worker counts, so callers get identical results at any
// parallelism level.
//
// Two failure disciplines are offered. ForEach/ForEachCtx/Map/MapCtx
// abort on the first observed failure and return the failure with the
// lowest item index — the right contract when any failure invalidates
// the whole batch. Collect runs every item to completion regardless of
// failures and returns all of them joined (errors.Join) in index order —
// the contract the fault-isolated experiment harness needs, where one
// bad unit must not discard its siblings' results.
//
// The context-aware variants stop claiming new items once the context is
// cancelled; items already started always run to completion (work is
// never preempted mid-item, which is what keeps completed results valid
// for checkpointing).
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is taken literally,
// n == 0 means one worker per available CPU (runtime.GOMAXPROCS), and
// n < 0 forces serial execution.
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// Error wraps a failure of one work item with the index it occurred at.
type Error struct {
	Index int
	Err   error
}

func (e *Error) Error() string { return fmt.Sprintf("item %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// PanicError is the error recorded when a work item panics: the pool
// recovers the panic instead of crashing the process or deadlocking the
// dispatcher, and reports it like any other item failure. Stack holds
// the panicking goroutine's stack trace as captured by
// runtime/debug.Stack at the recovery point, so a quarantined unit can
// be diagnosed after the run.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// engine is the shared pool behind every exported loop. failFast selects
// the first-failure-abort discipline; otherwise every claimable item
// runs. A nil ctx means "never cancelled". The returned slice has one
// slot per item; slots of skipped or successful items stay nil.
func engine(ctx context.Context, workers, n int, fn func(i int) error, failFast bool) []error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	cancelled := func() bool { return ctx != nil && ctx.Err() != nil }
	if w <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				break
			}
			if errs[i] = protect(i, fn); errs[i] != nil && failFast {
				break
			}
		}
		return errs
	}
	var (
		next   atomic.Int64 // next item index to claim
		failed atomic.Bool  // stop claiming new items after a failure (failFast)
		wg     sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cancelled() || (failFast && failed.Load()) {
					return
				}
				if err := protect(i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return errs
}

// first returns the failure with the lowest item index, or nil.
func first(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (resolved via Workers). It blocks until all started items finish and
// returns the failure with the lowest item index, wrapped in *Error; a
// panicking fn is captured as *Error wrapping *PanicError. After the
// first observed failure, not-yet-started items are skipped.
//
// With workers resolved to 1 (or n < 2) the loop runs on the calling
// goroutine with no pool overhead — but identical semantics.
func ForEach(workers, n int, fn func(i int) error) error {
	return first(engine(nil, workers, n, fn, true))
}

// ForEachCtx is ForEach under a context: once ctx is cancelled no new
// items are claimed (started items finish). It returns the lowest-index
// item failure if any, else ctx.Err() if the run was cut short, else nil.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if err := first(engine(ctx, workers, n, fn, true)); err != nil {
		return err
	}
	return ctx.Err()
}

// Collect runs every item to completion — a failing or panicking item
// never prevents its siblings from running — and returns all failures
// joined via errors.Join in item-index order, each wrapped in *Error
// (panics as *PanicError with the captured stack). Cancelling ctx stops
// new items from being claimed; ctx.Err() is then joined after the item
// failures. A nil return means every item ran and succeeded.
func Collect(ctx context.Context, workers, n int, fn func(i int) error) error {
	errs := engine(ctx, workers, n, fn, false)
	all := errs[:0]
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	if err := ctx.Err(); err != nil {
		all = append(all, err)
	}
	return errors.Join(all...)
}

// Protect runs fn on the calling goroutine with the pool's panic
// discipline but no pool: a panic is recovered into a *PanicError
// carrying the stack captured at the recovery point, instead of
// crashing the process. It is the quarantine primitive for callers that
// run one long-lived work item at a time — the job plane's worker loop
// wraps every backend attempt in it, so a panicking job becomes a typed
// failure on that job alone.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// protect invokes fn(i), converting an error or panic into an
// index-tagged *Error.
func protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{Index: i, Err: &PanicError{Value: r, Stack: debug.Stack()}}
		}
	}()
	if e := fn(i); e != nil {
		return &Error{Index: i, Err: e}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in item order, regardless of completion order.
// Error and panic semantics match ForEach; on failure the partial results
// are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapCtx is Map under a context, with ForEachCtx's cancellation
// semantics: on item failure or cancellation the partial results are
// discarded and the error is returned.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
