// Package parallel provides the bounded worker pools behind every
// concurrent loop in the repository: the block-sharded Monte-Carlo
// simulator (package sim) and the experiment fan-outs (package
// experiments). The helpers preserve item order, propagate the first
// error or panic with its item index, and degrade to a plain serial loop
// for degenerate worker counts, so callers get identical results at any
// parallelism level.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is taken literally,
// n == 0 means one worker per available CPU (runtime.GOMAXPROCS), and
// n < 0 forces serial execution.
func Workers(n int) int {
	switch {
	case n > 0:
		return n
	case n == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// Error wraps a failure of one work item with the index it occurred at.
type Error struct {
	Index int
	Err   error
}

func (e *Error) Error() string { return fmt.Sprintf("item %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// PanicError is the error recorded when a work item panics: the pool
// recovers the panic instead of crashing the process or deadlocking the
// dispatcher, and reports it like any other item failure.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (resolved via Workers). It blocks until all started items finish and
// returns the failure with the lowest item index, wrapped in *Error; a
// panicking fn is captured as *Error wrapping *PanicError. After the
// first observed failure, not-yet-started items are skipped.
//
// With workers resolved to 1 (or n < 2) the loop runs on the calling
// goroutine with no pool overhead — but identical semantics.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if errs[i] = protect(i, fn); errs[i] != nil {
				return errs[i]
			}
		}
		return nil
	}
	var (
		next   atomic.Int64 // next item index to claim
		failed atomic.Bool  // stop claiming new items after a failure
		wg     sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := protect(i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// protect invokes fn(i), converting an error or panic into an
// index-tagged *Error.
func protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{Index: i, Err: &PanicError{Value: r}}
		}
	}()
	if e := fn(i); e != nil {
		return &Error{Index: i, Err: e}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in item order, regardless of completion order.
// Error and panic semantics match ForEach; on failure the partial results
// are discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
