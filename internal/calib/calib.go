// Package calib models device characterization data: per-link two-qubit
// error rates, per-qubit single-qubit and readout error rates, and T1/T2
// coherence times, as published after each calibration cycle of an IBM
// quantum machine.
//
// The paper's Section 3 analyzes 52 days (100+ cycles) of IBM-Q20
// characterization reports scraped from the IBM Quantum Experience website.
// That archive is no longer available, so this package also contains a
// synthetic generator (see generate.go) fitted to every statistic the
// paper reports. Policies consume a Snapshot — one calibration cycle —
// through exactly the same interface either way.
package calib

import (
	"errors"
	"fmt"
	"math"

	"vaq/internal/topo"
)

// ErrEmptyArchive is returned by Archive methods that need at least one
// snapshot (e.g. Mean) when the archive holds none.
var ErrEmptyArchive = errors.New("calib: empty archive")

// NoCouplingError reports a per-link figure queried or set for a qubit
// pair the topology does not couple.
type NoCouplingError struct {
	A, B int
	Topo string
}

func (e *NoCouplingError) Error() string {
	return fmt.Sprintf("calib: no coupling %d-%d on %s", e.A, e.B, e.Topo)
}

// QubitRangeError reports a per-qubit figure queried for a qubit index
// outside the topology.
type QubitRangeError struct {
	Qubit int
	Topo  string
}

func (e *QubitRangeError) Error() string {
	return fmt.Sprintf("calib: qubit %d out of range on %s", e.Qubit, e.Topo)
}

// Snapshot is the characterization report of one calibration cycle.
type Snapshot struct {
	Topo *topo.Topology
	// Cycle is the calibration cycle index within its archive (0-based).
	Cycle int
	// Day is the measurement day (0-based; two cycles per day by default).
	Day int
	// TwoQubit maps each coupling to the error rate of a CNOT across it.
	TwoQubit map[topo.Coupling]float64
	// OneQubit[q] is the single-qubit gate error rate of physical qubit q.
	OneQubit []float64
	// Readout[q] is the measurement error rate of physical qubit q.
	Readout []float64
	// T1Us[q] and T2Us[q] are the relaxation and dephasing times of qubit
	// q in microseconds.
	T1Us []float64
	T2Us []float64
}

// NewSnapshot allocates a zeroed snapshot for the topology.
func NewSnapshot(t *topo.Topology) *Snapshot {
	s := &Snapshot{
		Topo:     t,
		TwoQubit: make(map[topo.Coupling]float64, len(t.Couplings)),
		OneQubit: make([]float64, t.NumQubits),
		Readout:  make([]float64, t.NumQubits),
		T1Us:     make([]float64, t.NumQubits),
		T2Us:     make([]float64, t.NumQubits),
	}
	for _, c := range t.Couplings {
		s.TwoQubit[c] = 0
	}
	return s
}

// TwoQubitError returns the CNOT error rate across the a–b coupling, or
// a *NoCouplingError when a and b are not coupled. Querying a
// non-existent link is a boundary condition (bad external data, a policy
// bug), not a crash: callers that hold the structural invariant can use
// MustTwoQubitError.
func (s *Snapshot) TwoQubitError(a, b int) (float64, error) {
	if a > b {
		a, b = b, a
	}
	e, ok := s.TwoQubit[topo.Coupling{A: a, B: b}]
	if !ok {
		return 0, &NoCouplingError{A: a, B: b, Topo: s.Topo.Name}
	}
	return e, nil
}

// MustTwoQubitError is TwoQubitError for callers whose coupling is
// guaranteed by construction (e.g. iterating Topo.Couplings); it panics
// on a missing link.
func (s *Snapshot) MustTwoQubitError(a, b int) float64 {
	e, err := s.TwoQubitError(a, b)
	if err != nil {
		panic(err)
	}
	return e
}

// OneQubitError returns the single-qubit gate error rate of physical
// qubit q, bounds-checked.
func (s *Snapshot) OneQubitError(q int) (float64, error) {
	if q < 0 || q >= len(s.OneQubit) {
		return 0, &QubitRangeError{Qubit: q, Topo: s.Topo.Name}
	}
	return s.OneQubit[q], nil
}

// ReadoutError returns the measurement error rate of physical qubit q,
// bounds-checked.
func (s *Snapshot) ReadoutError(q int) (float64, error) {
	if q < 0 || q >= len(s.Readout) {
		return 0, &QubitRangeError{Qubit: q, Topo: s.Topo.Name}
	}
	return s.Readout[q], nil
}

// SetTwoQubitError sets the CNOT error rate across the a–b coupling,
// returning a *NoCouplingError when the pair is not coupled.
func (s *Snapshot) SetTwoQubitError(a, b int, e float64) error {
	if a > b {
		a, b = b, a
	}
	c := topo.Coupling{A: a, B: b}
	if _, ok := s.TwoQubit[c]; !ok {
		return &NoCouplingError{A: a, B: b, Topo: s.Topo.Name}
	}
	s.TwoQubit[c] = e
	return nil
}

// Validate checks that every rate is a probability and every coherence
// time is positive, and that the error maps cover the topology.
func (s *Snapshot) Validate() error {
	if s.Topo == nil {
		return fmt.Errorf("calib: snapshot without topology")
	}
	if len(s.TwoQubit) != len(s.Topo.Couplings) {
		return fmt.Errorf("calib: %d link rates for %d couplings", len(s.TwoQubit), len(s.Topo.Couplings))
	}
	for c, e := range s.TwoQubit {
		if e < 0 || e >= 1 || math.IsNaN(e) {
			return fmt.Errorf("calib: link %d-%d error %v out of [0,1)", c.A, c.B, e)
		}
	}
	for _, arr := range []struct {
		name string
		v    []float64
	}{{"one-qubit", s.OneQubit}, {"readout", s.Readout}} {
		if len(arr.v) != s.Topo.NumQubits {
			return fmt.Errorf("calib: %s rates length %d, want %d", arr.name, len(arr.v), s.Topo.NumQubits)
		}
		for q, e := range arr.v {
			if e < 0 || e >= 1 || math.IsNaN(e) {
				return fmt.Errorf("calib: %s error of qubit %d = %v out of [0,1)", arr.name, q, e)
			}
		}
	}
	for q := range s.T1Us {
		if s.T1Us[q] <= 0 || s.T2Us[q] <= 0 {
			return fmt.Errorf("calib: non-positive coherence time on qubit %d", q)
		}
	}
	return nil
}

// Clone returns a deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := NewSnapshot(s.Topo)
	c.Cycle, c.Day = s.Cycle, s.Day
	for k, v := range s.TwoQubit {
		c.TwoQubit[k] = v
	}
	copy(c.OneQubit, s.OneQubit)
	copy(c.Readout, s.Readout)
	copy(c.T1Us, s.T1Us)
	copy(c.T2Us, s.T2Us)
	return c
}

// ScaleErrors returns a copy with every gate/readout error rate
// transformed for the paper's Table 2 sensitivity study. meanFactor
// multiplies the population mean (e.g. 0.1 for "10× lower error rate").
// covMultiplier stretches each rate's deviation from the (scaled) mean:
// 1 preserves the coefficient of variation, 2 doubles it. Rates are
// clamped to [1e-6, 0.5).
func (s *Snapshot) ScaleErrors(meanFactor, covMultiplier float64) *Snapshot {
	out := s.Clone()
	scale := func(values []float64) {
		m := mean(values)
		for i, v := range values {
			nv := m*meanFactor + covMultiplier*(v-m)*meanFactor
			values[i] = clamp(nv, 1e-6, 0.499)
		}
	}
	link := make([]float64, 0, len(out.TwoQubit))
	keys := out.Topo.Couplings
	for _, k := range keys {
		link = append(link, out.TwoQubit[k])
	}
	scale(link)
	for i, k := range keys {
		out.TwoQubit[k] = link[i]
	}
	scale(out.OneQubit)
	scale(out.Readout)
	return out
}

// LinkRates returns the two-qubit error rates in coupling order.
func (s *Snapshot) LinkRates() []float64 {
	out := make([]float64, 0, len(s.Topo.Couplings))
	for _, c := range s.Topo.Couplings {
		out = append(out, s.TwoQubit[c])
	}
	return out
}

// StrongestLink and WeakestLink return the couplings with the lowest and
// highest two-qubit error rate.
func (s *Snapshot) StrongestLink() (topo.Coupling, float64) {
	best := topo.Coupling{A: -1, B: -1}
	bestE := math.Inf(1)
	for _, c := range s.Topo.Couplings {
		if e := s.TwoQubit[c]; e < bestE {
			bestE, best = e, c
		}
	}
	return best, bestE
}

func (s *Snapshot) WeakestLink() (topo.Coupling, float64) {
	worst := topo.Coupling{A: -1, B: -1}
	worstE := math.Inf(-1)
	for _, c := range s.Topo.Couplings {
		if e := s.TwoQubit[c]; e > worstE {
			worstE, worst = e, c
		}
	}
	return worst, worstE
}

// Archive is an ordered series of calibration snapshots (the 52-day study).
type Archive struct {
	Topo      *topo.Topology
	Snapshots []*Snapshot
}

// Mean returns a snapshot whose every figure is the arithmetic mean across
// the archive — the "average behavior of the link/qubit based on
// characterization data across 52 days" the paper uses for its main
// evaluations. An empty archive yields ErrEmptyArchive (external
// archives can legitimately arrive with every cycle quarantined).
func (a *Archive) Mean() (*Snapshot, error) {
	if len(a.Snapshots) == 0 {
		return nil, ErrEmptyArchive
	}
	m := NewSnapshot(a.Topo)
	n := float64(len(a.Snapshots))
	for _, s := range a.Snapshots {
		for _, c := range a.Topo.Couplings {
			m.TwoQubit[c] += s.TwoQubit[c] / n
		}
		for q := 0; q < a.Topo.NumQubits; q++ {
			m.OneQubit[q] += s.OneQubit[q] / n
			m.Readout[q] += s.Readout[q] / n
			m.T1Us[q] += s.T1Us[q] / n
			m.T2Us[q] += s.T2Us[q] / n
		}
	}
	return m, nil
}

// MustMean is Mean for archives known to be non-empty (generated ones
// always are); it panics on ErrEmptyArchive.
func (a *Archive) MustMean() *Snapshot {
	m, err := a.Mean()
	if err != nil {
		panic(err)
	}
	return m
}

// Validate checks the archive as a whole: a topology must be present,
// at least one snapshot must exist, every snapshot must validate against
// that topology (probability ranges, NaNs, length mismatches — see
// Snapshot.Validate), cycle indices must be unique, and days must be
// non-negative. It is the gate external archives pass before any policy
// consumes them.
func (a *Archive) Validate() error {
	if a.Topo == nil {
		return fmt.Errorf("calib: archive without topology")
	}
	if len(a.Snapshots) == 0 {
		return ErrEmptyArchive
	}
	seen := make(map[int]bool, len(a.Snapshots))
	for i, s := range a.Snapshots {
		if s == nil {
			return fmt.Errorf("calib: snapshot %d is empty", i)
		}
		if err := a.validateSnapshot(s); err != nil {
			return fmt.Errorf("calib: snapshot %d: %w", i, err)
		}
		if seen[s.Cycle] {
			return fmt.Errorf("calib: duplicate cycle %d (snapshot %d)", s.Cycle, i)
		}
		seen[s.Cycle] = true
	}
	return nil
}

// validateSnapshot checks one snapshot in the context of the archive:
// it must be on the archive's topology, within range, and on a
// non-negative day.
func (a *Archive) validateSnapshot(s *Snapshot) error {
	if s.Topo != a.Topo {
		return fmt.Errorf("snapshot on topology %q, archive on %q", s.Topo.Name, a.Topo.Name)
	}
	if s.Day < 0 {
		return fmt.Errorf("negative day %d", s.Day)
	}
	return s.Validate()
}

// Days returns the number of distinct measurement days in the archive.
func (a *Archive) Days() int {
	maxDay := -1
	for _, s := range a.Snapshots {
		if s.Day > maxDay {
			maxDay = s.Day
		}
	}
	return maxDay + 1
}

// DaySnapshots returns the snapshots taken on the given day.
func (a *Archive) DaySnapshots(day int) []*Snapshot {
	var out []*Snapshot
	for _, s := range a.Snapshots {
		if s.Day == day {
			out = append(out, s)
		}
	}
	return out
}

// LinkSeries returns the time series of two-qubit error rates for the a–b
// coupling across all snapshots (Figure 8).
func (a *Archive) LinkSeries(qa, qb int) []float64 {
	out := make([]float64, 0, len(a.Snapshots))
	for _, s := range a.Snapshots {
		out = append(out, s.MustTwoQubitError(qa, qb))
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
