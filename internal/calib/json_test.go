package calib

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Generate(DefaultQ5Config(3))
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Topo.Name != orig.Topo.Name || back.Topo.NumQubits != orig.Topo.NumQubits {
		t.Fatalf("topology mismatch: %s/%d", back.Topo.Name, back.Topo.NumQubits)
	}
	if len(back.Snapshots) != len(orig.Snapshots) {
		t.Fatalf("snapshots = %d, want %d", len(back.Snapshots), len(orig.Snapshots))
	}
	for i := range orig.Snapshots {
		a, b := orig.Snapshots[i], back.Snapshots[i]
		if a.Cycle != b.Cycle || a.Day != b.Day {
			t.Fatalf("snapshot %d metadata mismatch", i)
		}
		for _, c := range orig.Topo.Couplings {
			if a.TwoQubit[c] != b.TwoQubit[c] {
				t.Fatalf("snapshot %d link %v rate mismatch", i, c)
			}
		}
		for q := range a.OneQubit {
			if a.OneQubit[q] != b.OneQubit[q] || a.T1Us[q] != b.T1Us[q] {
				t.Fatalf("snapshot %d qubit %d figures mismatch", i, q)
			}
		}
	}
}

func TestJSONRoundTripQ20Archive(t *testing.T) {
	orig := Generate(DefaultQ20Config(1))
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Means must agree exactly.
	om, bm := orig.MustMean(), back.MustMean()
	for _, c := range orig.Topo.Couplings {
		if om.TwoQubit[c] != bm.TwoQubit[c] {
			t.Fatalf("mean rate for %v differs after round trip", c)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"no snapshots":  `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[]}`,
		"bad topology":  `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,5]]},"snapshots":[]}`,
		"short links":   `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[{"two_qubit":[],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]}]}`,
		"short readout": `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[{"two_qubit":[0.1],"one_qubit":[0,0],"readout":[0],"t1_us":[1,1],"t2_us":[1,1]}]}`,
		"invalid rates": `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[{"two_qubit":[7.5],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]}]}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(src)); err == nil {
				t.Fatalf("ReadJSON accepted %s", name)
			}
		})
	}
}

// leniencyArchive builds a 2-qubit wire archive with three snapshots, the
// middle one invalid (error rate out of range).
const leniencyArchive = `{
 "topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},
 "snapshots":[
  {"cycle":0,"day":0,"two_qubit":[0.1],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]},
  {"cycle":1,"day":0,"two_qubit":[7.5],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]},
  {"cycle":2,"day":1,"two_qubit":[0.2],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]}
 ]}`

func TestReadJSONLenientQuarantinesBadCycles(t *testing.T) {
	arch, quarantined, err := ReadJSONLenient(strings.NewReader(leniencyArchive))
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.Snapshots) != 2 {
		t.Fatalf("%d surviving snapshots, want 2", len(arch.Snapshots))
	}
	if arch.Snapshots[0].Cycle != 0 || arch.Snapshots[1].Cycle != 2 {
		t.Fatalf("wrong survivors: cycles %d, %d", arch.Snapshots[0].Cycle, arch.Snapshots[1].Cycle)
	}
	if len(quarantined) != 1 || quarantined[0].Index != 1 || quarantined[0].Cycle != 1 {
		t.Fatalf("quarantined = %v, want snapshot 1 / cycle 1", quarantined)
	}
	// The strict reader rejects the same stream outright.
	if _, err := ReadJSON(strings.NewReader(leniencyArchive)); err == nil {
		t.Fatal("strict ReadJSON accepted an archive with an invalid cycle")
	}
}

func TestReadJSONLenientDuplicateCycle(t *testing.T) {
	src := `{
 "topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},
 "snapshots":[
  {"cycle":3,"day":0,"two_qubit":[0.1],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]},
  {"cycle":3,"day":0,"two_qubit":[0.1],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]}
 ]}`
	arch, quarantined, err := ReadJSONLenient(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(arch.Snapshots) != 1 || len(quarantined) != 1 {
		t.Fatalf("dup cycle: %d kept, %d quarantined, want 1/1", len(arch.Snapshots), len(quarantined))
	}
	if !strings.Contains(quarantined[0].Error(), "duplicate cycle") {
		t.Fatalf("quarantine reason = %v", quarantined[0])
	}
}

func TestReadJSONLenientAllBadIsEmptyArchive(t *testing.T) {
	src := `{
 "topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},
 "snapshots":[
  {"cycle":0,"day":0,"two_qubit":[7.5],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]}
 ]}`
	_, quarantined, err := ReadJSONLenient(strings.NewReader(src))
	if !errors.Is(err, ErrEmptyArchive) {
		t.Fatalf("err = %v, want ErrEmptyArchive", err)
	}
	if len(quarantined) != 1 {
		t.Fatalf("%d quarantined, want 1", len(quarantined))
	}
}

func TestArchiveValidate(t *testing.T) {
	arch := Generate(DefaultQ5Config(3))
	if err := arch.Validate(); err != nil {
		t.Fatalf("generated archive invalid: %v", err)
	}
	bad := Generate(DefaultQ5Config(3))
	bad.Snapshots[0].OneQubit[0] = -1
	if bad.Validate() == nil {
		t.Fatal("negative error rate accepted")
	}
	empty := &Archive{Topo: arch.Topo}
	if !errors.Is(empty.Validate(), ErrEmptyArchive) {
		t.Fatal("empty archive accepted")
	}
}
