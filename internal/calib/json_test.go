package calib

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Generate(DefaultQ5Config(3))
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Topo.Name != orig.Topo.Name || back.Topo.NumQubits != orig.Topo.NumQubits {
		t.Fatalf("topology mismatch: %s/%d", back.Topo.Name, back.Topo.NumQubits)
	}
	if len(back.Snapshots) != len(orig.Snapshots) {
		t.Fatalf("snapshots = %d, want %d", len(back.Snapshots), len(orig.Snapshots))
	}
	for i := range orig.Snapshots {
		a, b := orig.Snapshots[i], back.Snapshots[i]
		if a.Cycle != b.Cycle || a.Day != b.Day {
			t.Fatalf("snapshot %d metadata mismatch", i)
		}
		for _, c := range orig.Topo.Couplings {
			if a.TwoQubit[c] != b.TwoQubit[c] {
				t.Fatalf("snapshot %d link %v rate mismatch", i, c)
			}
		}
		for q := range a.OneQubit {
			if a.OneQubit[q] != b.OneQubit[q] || a.T1Us[q] != b.T1Us[q] {
				t.Fatalf("snapshot %d qubit %d figures mismatch", i, q)
			}
		}
	}
}

func TestJSONRoundTripQ20Archive(t *testing.T) {
	orig := Generate(DefaultQ20Config(1))
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Means must agree exactly.
	om, bm := orig.Mean(), back.Mean()
	for _, c := range orig.Topo.Couplings {
		if om.TwoQubit[c] != bm.TwoQubit[c] {
			t.Fatalf("mean rate for %v differs after round trip", c)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"no snapshots":  `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[]}`,
		"bad topology":  `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,5]]},"snapshots":[]}`,
		"short links":   `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[{"two_qubit":[],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]}]}`,
		"short readout": `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[{"two_qubit":[0.1],"one_qubit":[0,0],"readout":[0],"t1_us":[1,1],"t2_us":[1,1]}]}`,
		"invalid rates": `{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[{"two_qubit":[7.5],"one_qubit":[0,0],"readout":[0,0],"t1_us":[1,1],"t2_us":[1,1]}]}`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(src)); err == nil {
				t.Fatalf("ReadJSON accepted %s", name)
			}
		})
	}
}
