package calib

import (
	"errors"
	"math"
	"testing"

	"vaq/internal/topo"
)

func snap5() *Snapshot {
	s := NewSnapshot(topo.IBMQ5())
	for _, c := range s.Topo.Couplings {
		s.TwoQubit[c] = 0.05
	}
	for q := 0; q < 5; q++ {
		s.OneQubit[q] = 0.002
		s.Readout[q] = 0.03
		s.T1Us[q] = 80
		s.T2Us[q] = 40
	}
	return s
}

func TestSnapshotAccessors(t *testing.T) {
	s := snap5()
	s.SetTwoQubitError(2, 0, 0.11)
	if got := s.MustTwoQubitError(0, 2); got != 0.11 {
		t.Fatalf("TwoQubitError(0,2) = %v, want 0.11", got)
	}
	if got := s.MustTwoQubitError(2, 0); got != 0.11 {
		t.Fatal("order-insensitive lookup failed")
	}
}

func TestSnapshotMissingLinkError(t *testing.T) {
	s := snap5()
	_, err := s.TwoQubitError(0, 3) // not coupled on Tenerife
	var nce *NoCouplingError
	if !errors.As(err, &nce) || nce.A != 0 || nce.B != 3 {
		t.Fatalf("TwoQubitError(0,3) err = %v, want *NoCouplingError{0,3}", err)
	}
}

func TestMustTwoQubitErrorMissingLinkPanics(t *testing.T) {
	s := snap5()
	defer func() {
		if recover() == nil {
			t.Fatal("Must lookup of non-coupling did not panic")
		}
	}()
	s.MustTwoQubitError(0, 3)
}

func TestSetMissingLinkError(t *testing.T) {
	s := snap5()
	var nce *NoCouplingError
	if err := s.SetTwoQubitError(0, 3, 0.1); !errors.As(err, &nce) {
		t.Fatalf("SetTwoQubitError(0,3) err = %v, want *NoCouplingError", err)
	}
	if err := s.SetTwoQubitError(1, 0, 0.2); err != nil {
		t.Fatalf("set of existing coupling failed: %v", err)
	}
}

func TestPerQubitAccessorsBoundsChecked(t *testing.T) {
	s := snap5()
	if e, err := s.OneQubitError(0); err != nil || e != 0.002 {
		t.Fatalf("OneQubitError(0) = %v, %v", e, err)
	}
	if e, err := s.ReadoutError(4); err != nil || e != 0.03 {
		t.Fatalf("ReadoutError(4) = %v, %v", e, err)
	}
	var qre *QubitRangeError
	if _, err := s.OneQubitError(5); !errors.As(err, &qre) {
		t.Fatalf("OneQubitError(5) err = %v, want *QubitRangeError", err)
	}
	if _, err := s.ReadoutError(-1); !errors.As(err, &qre) {
		t.Fatalf("ReadoutError(-1) err = %v, want *QubitRangeError", err)
	}
}

func TestValidate(t *testing.T) {
	s := snap5()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	bad := s.Clone()
	bad.SetTwoQubitError(0, 1, 1.5)
	if bad.Validate() == nil {
		t.Fatal("error rate > 1 accepted")
	}
	bad = s.Clone()
	bad.OneQubit[0] = -0.1
	if bad.Validate() == nil {
		t.Fatal("negative 1q error accepted")
	}
	bad = s.Clone()
	bad.T1Us[3] = 0
	if bad.Validate() == nil {
		t.Fatal("zero T1 accepted")
	}
	bad = s.Clone()
	bad.Readout[1] = math.NaN()
	if bad.Validate() == nil {
		t.Fatal("NaN readout accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := snap5()
	c := s.Clone()
	c.SetTwoQubitError(0, 1, 0.2)
	c.OneQubit[0] = 0.9
	if s.MustTwoQubitError(0, 1) != 0.05 || s.OneQubit[0] != 0.002 {
		t.Fatal("clone shares state with original")
	}
}

func TestStrongestWeakestLink(t *testing.T) {
	s := snap5()
	s.SetTwoQubitError(0, 1, 0.01)
	s.SetTwoQubitError(3, 4, 0.14)
	best, be := s.StrongestLink()
	worst, we := s.WeakestLink()
	if best != (topo.Coupling{A: 0, B: 1}) || be != 0.01 {
		t.Fatalf("strongest = %v %v", best, be)
	}
	if worst != (topo.Coupling{A: 3, B: 4}) || we != 0.14 {
		t.Fatalf("weakest = %v %v", worst, we)
	}
}

func TestScaleErrorsMeanOnly(t *testing.T) {
	s := snap5()
	s.SetTwoQubitError(0, 1, 0.02)
	s.SetTwoQubitError(3, 4, 0.10)
	scaled := s.ScaleErrors(0.1, 1)
	origMean := mean(s.LinkRates())
	newMean := mean(scaled.LinkRates())
	if math.Abs(newMean-origMean*0.1) > 1e-9 {
		t.Fatalf("scaled mean = %v, want %v", newMean, origMean*0.1)
	}
	// Cov preserved: relative ordering and ratios maintained.
	if scaled.MustTwoQubitError(0, 1) >= scaled.MustTwoQubitError(3, 4) {
		t.Fatal("scaling destroyed ordering")
	}
}

func TestScaleErrorsDoubledCov(t *testing.T) {
	// Deviations small enough that doubling them never clamps at zero,
	// so the mean is preserved exactly.
	s := snap5()
	s.SetTwoQubitError(0, 1, 0.04)
	s.SetTwoQubitError(3, 4, 0.07)
	cov1 := s.ScaleErrors(0.1, 1)
	cov2 := s.ScaleErrors(0.1, 2)
	sum1 := Summarize(cov1.LinkRates())
	sum2 := Summarize(cov2.LinkRates())
	if math.Abs(sum1.Mean-sum2.Mean) > 1e-9 {
		t.Fatalf("cov scaling changed mean: %v vs %v", sum1.Mean, sum2.Mean)
	}
	if sum2.Std <= sum1.Std {
		t.Fatalf("doubled-cov std %v not larger than base %v", sum2.Std, sum1.Std)
	}
	if err := cov2.Validate(); err != nil {
		t.Fatalf("scaled snapshot invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultQ20Config(42))
	b := Generate(DefaultQ20Config(42))
	if len(a.Snapshots) != len(b.Snapshots) {
		t.Fatal("nondeterministic snapshot count")
	}
	for i := range a.Snapshots {
		for _, c := range a.Topo.Couplings {
			if a.Snapshots[i].TwoQubit[c] != b.Snapshots[i].TwoQubit[c] {
				t.Fatalf("cycle %d link %v differs across runs", i, c)
			}
		}
	}
	diff := Generate(DefaultQ20Config(43))
	same := true
	for _, c := range a.Topo.Couplings {
		if a.Snapshots[0].TwoQubit[c] != diff.Snapshots[0].TwoQubit[c] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical archives")
	}
}

func TestGenerateArchiveShape(t *testing.T) {
	arch := Generate(DefaultQ20Config(1))
	if got := len(arch.Snapshots); got != 104 {
		t.Fatalf("snapshots = %d, want 104 (52 days × 2)", got)
	}
	if arch.Days() != 52 {
		t.Fatalf("days = %d, want 52", arch.Days())
	}
	if got := len(arch.DaySnapshots(0)); got != 2 {
		t.Fatalf("day 0 snapshots = %d, want 2", got)
	}
	for i, s := range arch.Snapshots {
		if err := s.Validate(); err != nil {
			t.Fatalf("snapshot %d invalid: %v", i, err)
		}
	}
}

func TestGenerateMatchesPaperStatistics(t *testing.T) {
	arch := Generate(DefaultQ20Config(7))

	// Figure 7: 2Q error μ=4.3%, σ=3.02% (tolerances are loose: the paper
	// itself reports one realization of a noisy process).
	link := Summarize(arch.ArchiveLinkRates())
	if link.Mean < 0.030 || link.Mean > 0.056 {
		t.Errorf("2Q mean = %v, want ≈0.043", link.Mean)
	}
	if link.Std < 0.015 || link.Std > 0.045 {
		t.Errorf("2Q std = %v, want ≈0.030", link.Std)
	}

	// Figure 9: spatial spread of mean link rates ≈ 7.5×.
	m := arch.MustMean()
	spatial := Summarize(m.LinkRates())
	if spatial.SpreadFactor < 3 {
		t.Errorf("spatial spread = %vx, want several x", spatial.SpreadFactor)
	}
	if _, worstE := m.WeakestLink(); worstE < 0.10 {
		t.Errorf("worst mean link = %v, want ≳0.15-ish", worstE)
	}

	// Figure 6: most 1Q errors below 1%.
	one := arch.ArchiveOneQubitRates()
	below := 0
	for _, e := range one {
		if e < 0.01 {
			below++
		}
	}
	if frac := float64(below) / float64(len(one)); frac < 0.80 {
		t.Errorf("only %.0f%% of 1Q errors below 1%%, want most", frac*100)
	}

	// Figure 5: T1/T2 means.
	t1 := Summarize(arch.ArchiveT1s())
	t2 := Summarize(arch.ArchiveT2s())
	if t1.Mean < 60 || t1.Mean > 105 {
		t.Errorf("T1 mean = %v, want ≈80µs", t1.Mean)
	}
	if t2.Mean < 30 || t2.Mean > 55 {
		t.Errorf("T2 mean = %v, want ≈42µs", t2.Mean)
	}
	// Physics: T2 ≤ 2·T1 in every snapshot.
	for _, s := range arch.Snapshots {
		for q := range s.T1Us {
			if s.T2Us[q] > 2*s.T1Us[q]+1e-9 {
				t.Fatalf("T2 > 2·T1 on qubit %d", q)
			}
		}
	}
}

func TestGenerateTemporalPersistence(t *testing.T) {
	// Figure 8: strong links stay strong. The link pinned to the minimum
	// base rate should have a lower mean than the pinned worst link in
	// (nearly) every cycle.
	cfg := DefaultQ20Config(3)
	arch := Generate(cfg)
	worst := *cfg.WorstCoupling
	weakSeries := arch.LinkSeries(worst.A, worst.B)
	m := arch.MustMean()
	best, _ := m.StrongestLink()
	strongSeries := arch.LinkSeries(best.A, best.B)
	wins := 0
	for i := range weakSeries {
		if strongSeries[i] < weakSeries[i] {
			wins++
		}
	}
	if frac := float64(wins) / float64(len(weakSeries)); frac < 0.9 {
		t.Fatalf("strong link beat weak link only %.0f%% of cycles, want ≥90%%", frac*100)
	}
}

func TestGenerateQ5Config(t *testing.T) {
	arch := Generate(DefaultQ5Config(5))
	if len(arch.Snapshots) != 1 {
		t.Fatalf("Q5 snapshots = %d, want 1", len(arch.Snapshots))
	}
	s := arch.Snapshots[0]
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_, worstE := s.WeakestLink()
	if worstE < 0.08 {
		t.Errorf("Q5 worst link = %v, want ≈0.12", worstE)
	}
}

func TestLinkSeriesLength(t *testing.T) {
	arch := Generate(DefaultQ20Config(9))
	series := arch.LinkSeries(5, 6)
	if len(series) != len(arch.Snapshots) {
		t.Fatalf("series length = %d, want %d", len(series), len(arch.Snapshots))
	}
}

func TestMeanOfEmptyArchive(t *testing.T) {
	_, err := (&Archive{Topo: topo.IBMQ5()}).Mean()
	if !errors.Is(err, ErrEmptyArchive) {
		t.Fatalf("Mean of empty archive err = %v, want ErrEmptyArchive", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustMean of empty archive did not panic")
		}
	}()
	(&Archive{Topo: topo.IBMQ5()}).MustMean()
}

func TestTenerifeSnapshot(t *testing.T) {
	s := TenerifeSnapshot()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	worst, e := s.WeakestLink()
	if worst != (topo.Coupling{A: 2, B: 4}) || e != 0.12 {
		t.Fatalf("worst link = %v @ %v, want Q2-Q4 @ 0.12 (paper Section 7)", worst, e)
	}
	sum := Summarize(s.LinkRates())
	if sum.Mean < 0.035 || sum.Mean > 0.055 {
		t.Fatalf("mean 2Q error = %v, want ≈0.042", sum.Mean)
	}
}

func TestDefaultQ16Config(t *testing.T) {
	arch := Generate(DefaultQ16Config(3))
	if arch.Topo.NumQubits != 16 {
		t.Fatalf("Q16 archive on %d qubits", arch.Topo.NumQubits)
	}
	for _, s := range arch.Snapshots {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
