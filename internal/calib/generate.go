package calib

import (
	"math"
	"math/rand"

	"vaq/internal/topo"
)

// GenConfig parameterizes the synthetic characterization generator. The
// defaults (see DefaultQ20Config) are fitted to every statistic the paper
// reports for the IBM-Q20; DefaultQ5Config matches the IBM-Q5 figures from
// Section 7.
type GenConfig struct {
	Topo *topo.Topology
	Seed int64
	// Days of observation and calibration cycles per day.
	Days         int
	CyclesPerDay int
	// Two-qubit error population: log-normal with this mean and standard
	// deviation, clamped to [TwoQubitMin, TwoQubitMax].
	TwoQubitMean float64
	TwoQubitStd  float64
	TwoQubitMin  float64
	TwoQubitMax  float64
	// WorstCoupling, if non-nil, is pinned near TwoQubitMax so the paper's
	// named weakest link (Q14–Q18 at 0.15) exists; one link is likewise
	// pinned near TwoQubitMin.
	WorstCoupling *topo.Coupling
	// Single-qubit error population (log-normal, same clamping scheme).
	OneQubitMean float64
	OneQubitStd  float64
	OneQubitMax  float64
	// Readout error population (uniform range).
	ReadoutMin float64
	ReadoutMax float64
	// Coherence times (normal, microseconds).
	T1MeanUs float64
	T1StdUs  float64
	T2MeanUs float64
	T2StdUs  float64
	// Temporal model: per-cycle multiplicative AR(1) jitter in log space.
	// Persistence near 1 makes strong links stay strong (Figure 8).
	TemporalPersistence float64
	TemporalSigma       float64
}

// DefaultQ20Config returns the generator configuration fitted to the
// paper's IBM-Q20 analysis: 52 days × 2 cycles, 2Q errors μ=4.3% σ=3.02%
// spanning 0.02–0.15 with Q14–Q18 weakest, 1Q errors mostly below 1%,
// T1 μ=80.32µs σ=35.23µs, T2 μ=42.13µs σ=13.34µs.
func DefaultQ20Config(seed int64) GenConfig {
	return GenConfig{
		Topo:                topo.IBMQ20(),
		Seed:                seed,
		Days:                52,
		CyclesPerDay:        2,
		TwoQubitMean:        0.043,
		TwoQubitStd:         0.0302,
		TwoQubitMin:         0.02,
		TwoQubitMax:         0.15,
		WorstCoupling:       &topo.Coupling{A: 14, B: 18},
		OneQubitMean:        0.0035,
		OneQubitStd:         0.0030,
		OneQubitMax:         0.04,
		ReadoutMin:          0.02,
		ReadoutMax:          0.08,
		T1MeanUs:            80.32,
		T1StdUs:             35.23,
		T2MeanUs:            42.13,
		T2StdUs:             13.34,
		TemporalPersistence: 0.85,
		TemporalSigma:       0.12,
	}
}

// DefaultQ16Config adapts the Q20 population statistics to the 16-qubit
// Rüschlikon-class ladder (used by the 16-qubit demonstrations the paper
// cites); no worst link is pinned.
func DefaultQ16Config(seed int64) GenConfig {
	cfg := DefaultQ20Config(seed)
	cfg.Topo = topo.IBMQ16()
	cfg.WorstCoupling = nil
	return cfg
}

// DefaultQ5Config matches the Section 7 IBM-Q5 figures: average two-qubit
// error 4.2% with the worst link at 12%.
func DefaultQ5Config(seed int64) GenConfig {
	cfg := DefaultQ20Config(seed)
	cfg.Topo = topo.IBMQ5()
	cfg.Days = 1
	cfg.CyclesPerDay = 1
	cfg.TwoQubitMean = 0.042
	cfg.TwoQubitStd = 0.035
	cfg.TwoQubitMin = 0.015
	cfg.TwoQubitMax = 0.12
	cfg.WorstCoupling = &topo.Coupling{A: 3, B: 4}
	return cfg
}

// Generate produces a synthetic characterization archive under cfg. The
// output is deterministic for a given configuration (including Seed).
//
// Model: each link/qubit draws a log-normal "base" figure (its intrinsic
// quality, fixed for the whole archive); each calibration cycle multiplies
// the base by exp(x_t) where x_t follows a mean-reverting AR(1) process.
// The base spread reproduces the paper's spatial variation; the AR(1)
// jitter reproduces its temporal variation with strong-stays-strong
// persistence.
func Generate(cfg GenConfig) *Archive {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := cfg.Topo
	cycles := cfg.Days * cfg.CyclesPerDay
	if cycles <= 0 {
		cycles = 1
	}

	// Intrinsic per-link two-qubit error rates.
	linkBase := make(map[topo.Coupling]float64, len(t.Couplings))
	for _, c := range t.Couplings {
		linkBase[c] = clamp(logNormal(rng, cfg.TwoQubitMean, cfg.TwoQubitStd), cfg.TwoQubitMin, cfg.TwoQubitMax)
	}
	// Pin the designated worst link and make sure a best link exists.
	if cfg.WorstCoupling != nil {
		linkBase[*cfg.WorstCoupling] = cfg.TwoQubitMax
	}
	best, bestE := t.Couplings[0], math.Inf(1)
	for _, c := range t.Couplings {
		if linkBase[c] < bestE {
			best, bestE = c, linkBase[c]
		}
	}
	linkBase[best] = cfg.TwoQubitMin

	// Intrinsic per-qubit figures.
	oneBase := make([]float64, t.NumQubits)
	readBase := make([]float64, t.NumQubits)
	t1Base := make([]float64, t.NumQubits)
	t2Base := make([]float64, t.NumQubits)
	for q := 0; q < t.NumQubits; q++ {
		oneBase[q] = clamp(logNormal(rng, cfg.OneQubitMean, cfg.OneQubitStd), 1e-4, cfg.OneQubitMax)
		readBase[q] = cfg.ReadoutMin + rng.Float64()*(cfg.ReadoutMax-cfg.ReadoutMin)
		t1Base[q] = clamp(rng.NormFloat64()*cfg.T1StdUs+cfg.T1MeanUs, 8, 250)
		t2 := clamp(rng.NormFloat64()*cfg.T2StdUs+cfg.T2MeanUs, 4, 150)
		// Physics constraint: T2 ≤ 2·T1.
		if t2 > 2*t1Base[q] {
			t2 = 2 * t1Base[q]
		}
		t2Base[q] = t2
	}

	// AR(1) state per tracked quantity.
	linkAR := make(map[topo.Coupling]float64, len(t.Couplings))
	oneAR := make([]float64, t.NumQubits)
	t1AR := make([]float64, t.NumQubits)

	arch := &Archive{Topo: t}
	for cycle := 0; cycle < cycles; cycle++ {
		s := NewSnapshot(t)
		s.Cycle = cycle
		s.Day = cycle / max(1, cfg.CyclesPerDay)
		for _, c := range t.Couplings {
			linkAR[c] = cfg.TemporalPersistence*linkAR[c] + rng.NormFloat64()*cfg.TemporalSigma
			s.TwoQubit[c] = clamp(linkBase[c]*math.Exp(linkAR[c]), cfg.TwoQubitMin/2, cfg.TwoQubitMax*1.3)
		}
		for q := 0; q < t.NumQubits; q++ {
			oneAR[q] = cfg.TemporalPersistence*oneAR[q] + rng.NormFloat64()*cfg.TemporalSigma
			s.OneQubit[q] = clamp(oneBase[q]*math.Exp(oneAR[q]), 5e-5, cfg.OneQubitMax*1.3)
			s.Readout[q] = clamp(readBase[q]*(1+0.1*rng.NormFloat64()), 0.005, 0.15)
			t1AR[q] = cfg.TemporalPersistence*t1AR[q] + rng.NormFloat64()*cfg.TemporalSigma
			s.T1Us[q] = clamp(t1Base[q]*math.Exp(t1AR[q]), 5, 300)
			s.T2Us[q] = math.Min(clamp(t2Base[q]*math.Exp(t1AR[q]), 3, 200), 2*s.T1Us[q])
		}
		arch.Snapshots = append(arch.Snapshots, s)
	}
	return arch
}

// logNormal draws from a log-normal distribution parameterized by its
// arithmetic mean and standard deviation.
func logNormal(rng *rand.Rand, mean, std float64) float64 {
	if std <= 0 {
		return mean
	}
	cv := std / mean
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*rng.NormFloat64())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
