package calib

import (
	"bytes"
	"testing"
)

// FuzzReadJSON drives the archive readers with arbitrary bytes. The
// invariants: neither reader may panic; an archive the lenient reader
// accepts must be non-empty, pass Validate, and survive a write/read
// round trip under the strict reader.
func FuzzReadJSON(f *testing.F) {
	var valid bytes.Buffer
	if err := Generate(DefaultQ5Config(1)).WriteJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{not json`))
	f.Add([]byte(`{"topology":{"name":"t","num_qubits":2,"couplings":[[0,1]]},"snapshots":[]}`))
	f.Add([]byte(`{"topology":{"name":"t","num_qubits":2,"couplings":[[0,5]]},"snapshots":[]}`))
	f.Add([]byte(leniencyArchive))
	f.Add([]byte(`{"topology":{"name":"t","num_qubits":1,"couplings":[]},"snapshots":[{"two_qubit":[],"one_qubit":[0.5],"readout":[0.5],"t1_us":[1],"t2_us":[1]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ReadJSON(bytes.NewReader(data)); err != nil {
			_ = err // strict rejection is fine; it just must not panic
		}
		arch, _, err := ReadJSONLenient(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(arch.Snapshots) == 0 {
			t.Fatal("lenient read accepted an empty archive")
		}
		if verr := arch.Validate(); verr != nil {
			t.Fatalf("accepted archive fails Validate: %v", verr)
		}
		var out bytes.Buffer
		if werr := arch.WriteJSON(&out); werr != nil {
			t.Fatalf("accepted archive does not serialize: %v", werr)
		}
		back, rerr := ReadJSON(&out)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if len(back.Snapshots) != len(arch.Snapshots) {
			t.Fatalf("round trip changed snapshot count: %d -> %d", len(arch.Snapshots), len(back.Snapshots))
		}
	})
}
