package calib

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v, want sqrt(1.25)", s.Std)
	}
	if s.Median != 2.5 {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
	if s.SpreadFactor != 4 {
		t.Fatalf("spread = %v, want 4", s.SpreadFactor)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if s := Summarize([]float64{5, 1, 3}); s.Median != 3 {
		t.Fatalf("median = %v, want 3", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeZeroMinNoSpread(t *testing.T) {
	if s := Summarize([]float64{0, 1}); s.SpreadFactor != 0 {
		t.Fatalf("spread with zero min = %v, want 0 (undefined)", s.SpreadFactor)
	}
}

func TestHistogramCoversAllSamples(t *testing.T) {
	values := []float64{0, 0.1, 0.2, 0.5, 0.9, 1.0}
	bins := Histogram(values, 5)
	if len(bins) != 5 {
		t.Fatalf("bins = %d, want 5", len(bins))
	}
	total := 0
	fracTotal := 0.0
	for _, b := range bins {
		total += b.Count
		fracTotal += b.Fraction
	}
	if total != len(values) {
		t.Fatalf("histogram lost samples: %d of %d", total, len(values))
	}
	if math.Abs(fracTotal-1) > 1e-12 {
		t.Fatalf("fractions sum to %v, want 1", fracTotal)
	}
	// Maximum value lands in the last bin, not out of range.
	if bins[4].Count < 1 {
		t.Fatal("max value not counted in final bin")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	bins := Histogram([]float64{2, 2, 2}, 3)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("degenerate histogram count = %d, want 3", total)
	}
}

func TestHistogramEmptyInputs(t *testing.T) {
	if Histogram(nil, 4) != nil {
		t.Fatal("nil values should give nil histogram")
	}
	if Histogram([]float64{1}, 0) != nil {
		t.Fatal("zero bins should give nil histogram")
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.NormFloat64()
		}
		bins := Histogram(values, 1+rng.Intn(20))
		total := 0
		for _, b := range bins {
			total += b.Count
			if b.Count < 0 {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeMatchesManualComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		values := make([]float64, n)
		var sum float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range values {
			values[i] = rng.Float64() * 10
			sum += values[i]
			if values[i] < lo {
				lo = values[i]
			}
			if values[i] > hi {
				hi = values[i]
			}
		}
		s := Summarize(values)
		return math.Abs(s.Mean-sum/float64(n)) < 1e-9 && s.Min == lo && s.Max == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
