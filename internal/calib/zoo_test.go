package calib_test

import (
	"fmt"
	"os"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/device"
)

// zooGoldenSizes is the fingerprint matrix: two sizes per family, every
// variance tier. Small enough to regenerate in seconds, broad enough
// that any drift in a generator or in the name→seed fold shows up.
var zooGoldenSizes = map[string][]int{
	"heavy-hex": {20, 399},
	"grid":      {25, 100},
	"ring":      {16, 64},
	"full":      {8, 16},
}

// zooGoldenFingerprints pins the mean-snapshot device fingerprint of
// every family × size × tier fleet at root seed 2019. Regenerate with
// GOLDEN_PRINT=1 after an intentional generator change.
var zooGoldenFingerprints = map[string]uint64{
	"full-16-high":       0xf7bd9b89cf8e6b6e,
	"full-16-low":        0xa32f193a84e6464a,
	"full-16-mid":        0x5865f6701b13211f,
	"full-8-high":        0x26357a298bd0cb26,
	"full-8-low":         0x3bcb06f3983a423f,
	"full-8-mid":         0x736eced452392a00,
	"grid-100-high":      0x1b33dc9b1539b9c1,
	"grid-100-low":       0x441ae6fccab52bb5,
	"grid-100-mid":       0x02edac2d7456a72c,
	"grid-25-high":       0x0558b39c673cee99,
	"grid-25-low":        0x12d65387a5c6b5bc,
	"grid-25-mid":        0x74ace874b15669d4,
	"heavy-hex-20-high":  0x89b35f6c939418d2,
	"heavy-hex-20-low":   0x537c4459813e7531,
	"heavy-hex-20-mid":   0x140b4283b3a5bfed,
	"heavy-hex-399-high": 0x886c2bb9b2a03f34,
	"heavy-hex-399-low":  0xc1eae00391610316,
	"heavy-hex-399-mid":  0xf92bb11943083278,
	"ring-16-high":       0x6f88f79cebcbe374,
	"ring-16-low":        0x29ab40a4b0168f90,
	"ring-16-mid":        0x182f2f9ccbdf81aa,
	"ring-64-high":       0xae973bd03d5f5cd4,
	"ring-64-low":        0x22e9d69405dce8dc,
	"ring-64-mid":        0x1bfe535a963f7d6d,
}

// TestZooFingerprintGoldens regenerates every fleet in the matrix and
// checks (a) the archive validates, (b) the mean-snapshot device
// fingerprint matches its pinned golden — the determinism contract the
// nisqd response cache and the repro harness both depend on.
func TestZooFingerprintGoldens(t *testing.T) {
	print := os.Getenv("GOLDEN_PRINT") == "1"
	for family, sizes := range zooGoldenSizes {
		for _, n := range sizes {
			for _, tier := range calib.Tiers() {
				name := fmt.Sprintf("%s-%d-%s", family, n, tier)
				t.Run(name, func(t *testing.T) {
					arch, err := calib.ZooArchive(name, 2019)
					if err != nil {
						t.Fatal(err)
					}
					if err := arch.Validate(); err != nil {
						t.Fatalf("fleet fails validation: %v", err)
					}
					if got, want := len(arch.Snapshots), calib.ZooDays*calib.ZooCyclesPerDay; got != want {
						t.Fatalf("%d snapshots, want %d", got, want)
					}
					d := device.MustNew(arch.Topo, arch.MustMean())
					got := d.Fingerprint()
					if print {
						fmt.Printf("\t%q: %#016x,\n", name, got)
						return
					}
					want, ok := zooGoldenFingerprints[name]
					if !ok {
						t.Fatalf("no golden for %s (rerun with GOLDEN_PRINT=1)", name)
					}
					if got != want {
						t.Fatalf("fingerprint %#016x, golden %#016x", got, want)
					}
				})
			}
		}
	}
}

// TestZooTierSpread: higher tiers produce strictly wider two-qubit error
// spreads on the same topology, which is the whole point of the tiers.
func TestZooTierSpread(t *testing.T) {
	spread := func(tier calib.VarianceTier) float64 {
		arch, err := calib.ZooArchive(fmt.Sprintf("heavy-hex-100-%s", tier), 2019)
		if err != nil {
			t.Fatal(err)
		}
		s := calib.Summarize(arch.ArchiveLinkRates())
		return s.Std
	}
	low, mid, high := spread(calib.TierLow), spread(calib.TierMid), spread(calib.TierHigh)
	if !(low < mid && mid < high) {
		t.Fatalf("tier spreads not ordered: low %.4f, mid %.4f, high %.4f", low, mid, high)
	}
}

// TestZooNameFoldDecorrelation: the same root seed must give different
// populations for different device names.
func TestZooNameFoldDecorrelation(t *testing.T) {
	a, err := calib.ZooArchive("ring-16-mid", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := calib.ZooArchive("ring-16-high", 7)
	if err != nil {
		t.Fatal(err)
	}
	fa := device.MustNew(a.Topo, a.MustMean()).Fingerprint()
	fb := device.MustNew(b.Topo, b.MustMean()).Fingerprint()
	if fa == fb {
		t.Fatal("ring-16-mid and ring-16-high share a fingerprint at the same root seed")
	}
}

func TestParseZooDevice(t *testing.T) {
	cases := []struct {
		in       string
		wantTopo string
		wantTier calib.VarianceTier
	}{
		{"heavy-hex-399-mid", "heavy-hex-399", calib.TierMid},
		{"heavy-hex-399", "heavy-hex-399", calib.TierMid},
		{"grid-100-high", "grid-100", calib.TierHigh},
		{"ring-64-low", "ring-64", calib.TierLow},
	}
	for _, tc := range cases {
		topoName, tier, err := calib.ParseZooDevice(tc.in)
		if err != nil {
			t.Errorf("calib.ParseZooDevice(%q): %v", tc.in, err)
			continue
		}
		if topoName != tc.wantTopo || tier != tc.wantTier {
			t.Errorf("calib.ParseZooDevice(%q) = (%q, %q), want (%q, %q)",
				tc.in, topoName, tier, tc.wantTopo, tc.wantTier)
		}
	}
}

func TestParseTier(t *testing.T) {
	if tier, err := calib.ParseTier(""); err != nil || tier != calib.TierMid {
		t.Errorf("calib.ParseTier(\"\") = (%q, %v), want mid", tier, err)
	}
	if _, err := calib.ParseTier("extreme"); err == nil {
		t.Error("calib.ParseTier(\"extreme\"): want error")
	}
	if _, err := calib.ZooGenConfig("hexagon-20", 1); err == nil {
		t.Error("calib.ZooGenConfig with unknown family: want error")
	}
}

// zooHolesGoldenFingerprints pins defect-variant fleets (topologies
// with deterministically knocked-out couplers) end to end through the
// name→topology→archive chain at root seed 2019.
var zooHolesGoldenFingerprints = map[string]uint64{
	"grid-25-holes3-mid":       0x05abfa23a25f796d,
	"ring-64-holes1-high":      0x9797d89631421cb0,
	"heavy-hex-399-holes8-low": 0x03eb441315cd1f17,
}

// TestZooHolesFingerprintGoldens: the -holes defect suffix composes
// with the tier suffix, the knockout is reproducible, and a holed
// fleet's population differs from its intact base.
func TestZooHolesFingerprintGoldens(t *testing.T) {
	print := os.Getenv("GOLDEN_PRINT") == "1"
	for name, want := range zooHolesGoldenFingerprints {
		t.Run(name, func(t *testing.T) {
			arch, err := calib.ZooArchive(name, 2019)
			if err != nil {
				t.Fatal(err)
			}
			if err := arch.Validate(); err != nil {
				t.Fatalf("fleet fails validation: %v", err)
			}
			got := device.MustNew(arch.Topo, arch.MustMean()).Fingerprint()
			if print {
				fmt.Printf("\t%q: %#016x,\n", name, got)
				return
			}
			if got != want {
				t.Fatalf("fingerprint %#016x, golden %#016x", got, want)
			}
		})
	}
	if _, err := calib.ZooArchive("ring-16-holes9-mid", 2019); err == nil {
		t.Fatal("impossible knockout should fail archive generation")
	}
}
