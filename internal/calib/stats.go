package calib

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics reported throughout Section 3
// of the paper.
type Summary struct {
	N            int
	Mean, Std    float64
	Min, Max     float64
	Median       float64
	SpreadFactor float64 // Max / Min ("7.5x between strongest and weakest")
}

// Summarize computes descriptive statistics over values.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{N: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range values {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(values))
	for _, v := range values {
		d := v - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(values)))
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	if s.Min > 0 {
		s.SpreadFactor = s.Max / s.Min
	}
	return s
}

// HistogramBin is one bin of a histogram: [Lo, Hi) and the fraction of
// samples that fell into it.
type HistogramBin struct {
	Lo, Hi   float64
	Count    int
	Fraction float64
}

// Histogram bins values into n equal-width bins spanning [min, max]. The
// final bin is closed on both ends so the maximum value is counted.
func Histogram(values []float64, n int) []HistogramBin {
	if len(values) == 0 || n <= 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1 // all samples identical: single degenerate bin span
	}
	width := (hi - lo) / float64(n)
	bins := make([]HistogramBin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
	}
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	for i := range bins {
		bins[i].Fraction = float64(bins[i].Count) / float64(len(values))
	}
	return bins
}

// ArchiveLinkRates flattens every two-qubit error observation in the
// archive (links × cycles), the population of the paper's Figure 7.
func (a *Archive) ArchiveLinkRates() []float64 {
	var out []float64
	for _, s := range a.Snapshots {
		out = append(out, s.LinkRates()...)
	}
	return out
}

// ArchiveOneQubitRates flattens every single-qubit gate error observation
// (Figure 6 population).
func (a *Archive) ArchiveOneQubitRates() []float64 {
	var out []float64
	for _, s := range a.Snapshots {
		out = append(out, s.OneQubit...)
	}
	return out
}

// ArchiveT1s and ArchiveT2s flatten the coherence-time observations
// (Figure 5 populations), in microseconds.
func (a *Archive) ArchiveT1s() []float64 {
	var out []float64
	for _, s := range a.Snapshots {
		out = append(out, s.T1Us...)
	}
	return out
}

func (a *Archive) ArchiveT2s() []float64 {
	var out []float64
	for _, s := range a.Snapshots {
		out = append(out, s.T2Us...)
	}
	return out
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total / float64(len(values))
}
