package calib

import (
	"encoding/json"
	"fmt"
	"io"

	"vaq/internal/topo"
)

// The wire format keeps snapshots self-describing: the topology travels
// with the data, so a loaded archive can be validated and used without
// out-of-band agreement on the machine.

type jsonArchive struct {
	Topology  jsonTopology   `json:"topology"`
	Snapshots []jsonSnapshot `json:"snapshots"`
}

type jsonTopology struct {
	Name      string   `json:"name"`
	NumQubits int      `json:"num_qubits"`
	Couplings [][2]int `json:"couplings"`
}

type jsonSnapshot struct {
	Cycle    int       `json:"cycle"`
	Day      int       `json:"day"`
	TwoQubit []float64 `json:"two_qubit"` // coupling order
	OneQubit []float64 `json:"one_qubit"`
	Readout  []float64 `json:"readout"`
	T1Us     []float64 `json:"t1_us"`
	T2Us     []float64 `json:"t2_us"`
}

// WriteJSON serializes the archive.
func (a *Archive) WriteJSON(w io.Writer) error {
	out := jsonArchive{
		Topology: jsonTopology{
			Name:      a.Topo.Name,
			NumQubits: a.Topo.NumQubits,
		},
	}
	for _, c := range a.Topo.Couplings {
		out.Topology.Couplings = append(out.Topology.Couplings, [2]int{c.A, c.B})
	}
	for _, s := range a.Snapshots {
		js := jsonSnapshot{
			Cycle:    s.Cycle,
			Day:      s.Day,
			TwoQubit: s.LinkRates(),
			OneQubit: append([]float64(nil), s.OneQubit...),
			Readout:  append([]float64(nil), s.Readout...),
			T1Us:     append([]float64(nil), s.T1Us...),
			T2Us:     append([]float64(nil), s.T2Us...),
		}
		out.Snapshots = append(out.Snapshots, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON deserializes an archive written by WriteJSON, rebuilding and
// validating the topology and every snapshot.
func ReadJSON(r io.Reader) (*Archive, error) {
	var in jsonArchive
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("calib: decode archive: %w", err)
	}
	var couplings []topo.Coupling
	for _, c := range in.Topology.Couplings {
		couplings = append(couplings, topo.Coupling{A: c[0], B: c[1]})
	}
	t, err := topo.New(in.Topology.Name, in.Topology.NumQubits, couplings)
	if err != nil {
		return nil, fmt.Errorf("calib: archive topology: %w", err)
	}
	arch := &Archive{Topo: t}
	for i, js := range in.Snapshots {
		if len(js.TwoQubit) != len(t.Couplings) {
			return nil, fmt.Errorf("calib: snapshot %d has %d link rates for %d couplings", i, len(js.TwoQubit), len(t.Couplings))
		}
		s := NewSnapshot(t)
		s.Cycle, s.Day = js.Cycle, js.Day
		for ci, c := range t.Couplings {
			s.TwoQubit[c] = js.TwoQubit[ci]
		}
		if err := fill(s.OneQubit, js.OneQubit, "one_qubit", i); err != nil {
			return nil, err
		}
		if err := fill(s.Readout, js.Readout, "readout", i); err != nil {
			return nil, err
		}
		if err := fill(s.T1Us, js.T1Us, "t1_us", i); err != nil {
			return nil, err
		}
		if err := fill(s.T2Us, js.T2Us, "t2_us", i); err != nil {
			return nil, err
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("calib: snapshot %d: %w", i, err)
		}
		arch.Snapshots = append(arch.Snapshots, s)
	}
	if len(arch.Snapshots) == 0 {
		return nil, fmt.Errorf("calib: archive has no snapshots")
	}
	return arch, nil
}

func fill(dst, src []float64, field string, snap int) error {
	if len(src) != len(dst) {
		return fmt.Errorf("calib: snapshot %d field %s has %d entries, want %d", snap, field, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}
