package calib

import (
	"encoding/json"
	"fmt"
	"io"

	"vaq/internal/topo"
)

// The wire format keeps snapshots self-describing: the topology travels
// with the data, so a loaded archive can be validated and used without
// out-of-band agreement on the machine.

type jsonArchive struct {
	Topology  jsonTopology   `json:"topology"`
	Snapshots []jsonSnapshot `json:"snapshots"`
}

type jsonTopology struct {
	Name      string   `json:"name"`
	NumQubits int      `json:"num_qubits"`
	Couplings [][2]int `json:"couplings"`
}

type jsonSnapshot struct {
	Cycle    int       `json:"cycle"`
	Day      int       `json:"day"`
	TwoQubit []float64 `json:"two_qubit"` // coupling order
	OneQubit []float64 `json:"one_qubit"`
	Readout  []float64 `json:"readout"`
	T1Us     []float64 `json:"t1_us"`
	T2Us     []float64 `json:"t2_us"`
}

// WriteJSON serializes the archive.
func (a *Archive) WriteJSON(w io.Writer) error {
	out := jsonArchive{
		Topology: jsonTopology{
			Name:      a.Topo.Name,
			NumQubits: a.Topo.NumQubits,
		},
	}
	for _, c := range a.Topo.Couplings {
		out.Topology.Couplings = append(out.Topology.Couplings, [2]int{c.A, c.B})
	}
	for _, s := range a.Snapshots {
		js := jsonSnapshot{
			Cycle:    s.Cycle,
			Day:      s.Day,
			TwoQubit: s.LinkRates(),
			OneQubit: append([]float64(nil), s.OneQubit...),
			Readout:  append([]float64(nil), s.Readout...),
			T1Us:     append([]float64(nil), s.T1Us...),
			T2Us:     append([]float64(nil), s.T2Us...),
		}
		out.Snapshots = append(out.Snapshots, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// CycleError describes one calibration cycle that failed validation and
// was quarantined by ReadJSONLenient.
type CycleError struct {
	Index int // position in the archive's snapshot list
	Cycle int // the cycle index the snapshot claimed
	Err   error
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("calib: snapshot %d (cycle %d): %v", e.Index, e.Cycle, e.Err)
}

// Unwrap exposes the underlying validation error to errors.Is/As.
func (e *CycleError) Unwrap() error { return e.Err }

// ReadJSON deserializes an archive written by WriteJSON, rebuilding and
// validating the topology and every snapshot. Any invalid cycle fails
// the whole read; use ReadJSONLenient to quarantine bad cycles instead.
func ReadJSON(r io.Reader) (*Archive, error) {
	arch, quarantined, err := decodeArchive(r)
	if err != nil {
		return nil, err
	}
	if len(quarantined) > 0 {
		return nil, quarantined[0]
	}
	return arch, nil
}

// ReadJSONLenient deserializes an archive, skipping snapshots that fail
// validation (NaN/negative/out-of-range probabilities, length
// mismatches, duplicate cycle indices, negative days) instead of
// rejecting the archive: real NISQ characterization feeds routinely
// contain malformed or outlier cycles, and one bad cycle must degrade a
// 52-day sweep, not destroy it. The quarantined cycles are reported so
// the harness can render them alongside the surviving results. An error
// is returned only when the stream is not decodable at all, the
// topology itself is invalid, or no valid snapshot survives.
func ReadJSONLenient(r io.Reader) (*Archive, []*CycleError, error) {
	arch, quarantined, err := decodeArchive(r)
	if err != nil {
		return nil, quarantined, err
	}
	if len(arch.Snapshots) == 0 {
		return nil, quarantined, fmt.Errorf("calib: archive has no valid snapshots (%d quarantined): %w", len(quarantined), ErrEmptyArchive)
	}
	return arch, quarantined, nil
}

// decodeArchive is the shared reader: it keeps every valid snapshot and
// reports each invalid one as a *CycleError. Only undecodable streams
// and invalid topologies are hard errors.
func decodeArchive(r io.Reader) (*Archive, []*CycleError, error) {
	var in jsonArchive
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("calib: decode archive: %w", err)
	}
	var couplings []topo.Coupling
	for _, c := range in.Topology.Couplings {
		couplings = append(couplings, topo.Coupling{A: c[0], B: c[1]})
	}
	t, err := topo.New(in.Topology.Name, in.Topology.NumQubits, couplings)
	if err != nil {
		return nil, nil, fmt.Errorf("calib: archive topology: %w", err)
	}
	arch := &Archive{Topo: t}
	var quarantined []*CycleError
	seenCycle := make(map[int]bool, len(in.Snapshots))
	for i, js := range in.Snapshots {
		s, err := decodeSnapshot(t, js)
		if err == nil && seenCycle[s.Cycle] {
			err = fmt.Errorf("duplicate cycle index %d", s.Cycle)
		}
		if err == nil {
			err = arch.validateSnapshot(s)
		}
		if err != nil {
			quarantined = append(quarantined, &CycleError{Index: i, Cycle: js.Cycle, Err: err})
			continue
		}
		seenCycle[s.Cycle] = true
		arch.Snapshots = append(arch.Snapshots, s)
	}
	if len(arch.Snapshots) == 0 && len(quarantined) == 0 {
		return nil, nil, fmt.Errorf("calib: archive has no snapshots")
	}
	return arch, quarantined, nil
}

// decodeSnapshot rebuilds one snapshot on t, checking only field shapes;
// the caller validates the values.
func decodeSnapshot(t *topo.Topology, js jsonSnapshot) (*Snapshot, error) {
	if len(js.TwoQubit) != len(t.Couplings) {
		return nil, fmt.Errorf("%d link rates for %d couplings", len(js.TwoQubit), len(t.Couplings))
	}
	s := NewSnapshot(t)
	s.Cycle, s.Day = js.Cycle, js.Day
	for ci, c := range t.Couplings {
		s.TwoQubit[c] = js.TwoQubit[ci]
	}
	for _, field := range []struct {
		name string
		dst  []float64
		src  []float64
	}{
		{"one_qubit", s.OneQubit, js.OneQubit},
		{"readout", s.Readout, js.Readout},
		{"t1_us", s.T1Us, js.T1Us},
		{"t2_us", s.T2Us, js.T2Us},
	} {
		if len(field.src) != len(field.dst) {
			return nil, fmt.Errorf("field %s has %d entries, want %d", field.name, len(field.src), len(field.dst))
		}
		copy(field.dst, field.src)
	}
	return s, nil
}
