package calib

import "vaq/internal/topo"

// TenerifeSnapshot returns a fixed IBM-Q5 ("Tenerife") calibration modeled
// on era-typical published data and the figures the paper quotes in
// Section 7: average two-qubit error 4.2% with the worst link at 12%.
// Like the real machine of early 2018, the weak links sit on the
// high-degree center qubit Q2 — exactly where a variation-unaware mapper
// concentrates traffic — while the peripheral pairs (Q0–Q1, Q3–Q4) are
// strong. Readout errors are large and unequal across qubits, as they were
// on the hardware.
//
// This is the Section 7 substitution target: the paper ran on the physical
// IBM-Q5; we run the same experiments on the fault-injection simulator
// configured with this snapshot (see DESIGN.md).
func TenerifeSnapshot() *Snapshot {
	t := topo.IBMQ5()
	s := NewSnapshot(t)
	link := map[topo.Coupling]float64{
		{A: 0, B: 1}: 0.012,
		{A: 0, B: 2}: 0.055,
		{A: 1, B: 2}: 0.060,
		{A: 2, B: 3}: 0.025,
		{A: 2, B: 4}: 0.120, // the paper's 12% worst link
		{A: 3, B: 4}: 0.010,
	}
	for c, e := range link {
		s.TwoQubit[c] = e
	}
	oneQ := []float64{0.0011, 0.0014, 0.0033, 0.0019, 0.0009}
	readout := []float64{0.062, 0.071, 0.075, 0.058, 0.048}
	t1 := []float64{49.3, 52.8, 42.1, 46.9, 55.2}
	t2 := []float64{30.1, 21.4, 34.8, 28.6, 39.3}
	copy(s.OneQubit, oneQ)
	copy(s.Readout, readout)
	copy(s.T1Us, t1)
	copy(s.T2Us, t2)
	return s
}
