package calib

import (
	"fmt"
	"strings"

	"vaq/internal/topo"
)

// Variance-tiered synthetic fleets for the device zoo (topo/zoo.go).
//
// A zoo device name is "<family>-<n>[-<tier>]" — heavy-hex-399-mid,
// grid-100-high, ring-64 (tier defaults to mid). The tier sets the
// spatial spread of the characterization populations: how unequal the
// qubits of one machine are. Population means stay fixed across tiers
// (two-qubit μ=4.3%, T1 μ=190µs, T2 μ=130µs — the coherence figures of
// the 399-qubit variance-modeled backend in the literature this scales
// toward), so a tier sweep isolates the paper's question: how much does
// variability-awareness buy as variability itself grows?
//
// Fleets are deterministic: the generator seed is the caller's seed
// folded with an FNV-1a hash of the canonical device name, so every
// family × size × tier combination draws a decorrelated but perfectly
// reproducible population.

// VarianceTier selects the spatial-variance level of a synthetic fleet.
type VarianceTier string

const (
	TierLow  VarianceTier = "low"
	TierMid  VarianceTier = "mid"
	TierHigh VarianceTier = "high"
)

// Tiers enumerates the variance tiers in increasing-spread order.
func Tiers() []VarianceTier { return []VarianceTier{TierLow, TierMid, TierHigh} }

// ParseTier resolves a tier name; the empty string means TierMid.
func ParseTier(s string) (VarianceTier, error) {
	switch s {
	case "":
		return TierMid, nil
	case string(TierLow), string(TierMid), string(TierHigh):
		return VarianceTier(s), nil
	}
	return "", fmt.Errorf("calib: unknown variance tier %q (want low, mid or high)", s)
}

// ZooDays and ZooCyclesPerDay size zoo archives. Six cycles is enough
// to exercise the temporal model and Archive.Mean while keeping a
// 1000-qubit fleet cheap to generate on demand.
const (
	ZooDays         = 3
	ZooCyclesPerDay = 2
)

// ZooConfig returns the generator configuration for a synthetic fleet
// on t at the given variance tier. Seed is used as-is; callers wanting
// per-device decorrelation should fold the device name in first (see
// ZooArchive).
func ZooConfig(t *topo.Topology, tier VarianceTier, seed int64) GenConfig {
	cfg := GenConfig{
		Topo:                t,
		Seed:                seed,
		Days:                ZooDays,
		CyclesPerDay:        ZooCyclesPerDay,
		TwoQubitMean:        0.043,
		OneQubitMean:        0.0035,
		OneQubitMax:         0.04,
		T1MeanUs:            190,
		T2MeanUs:            130,
		TemporalPersistence: 0.85,
		TemporalSigma:       0.10,
	}
	switch tier {
	case TierLow:
		cfg.TwoQubitStd, cfg.TwoQubitMin, cfg.TwoQubitMax = 0.010, 0.02, 0.08
		cfg.OneQubitStd = 0.0010
		cfg.ReadoutMin, cfg.ReadoutMax = 0.02, 0.05
		cfg.T1StdUs, cfg.T2StdUs = 20, 15
	case TierHigh:
		cfg.TwoQubitStd, cfg.TwoQubitMin, cfg.TwoQubitMax = 0.065, 0.005, 0.30
		cfg.OneQubitStd = 0.0060
		cfg.ReadoutMin, cfg.ReadoutMax = 0.01, 0.12
		cfg.T1StdUs, cfg.T2StdUs = 80, 60
	default: // TierMid — the IBM-Q20-like spread of DefaultQ20Config.
		cfg.TwoQubitStd, cfg.TwoQubitMin, cfg.TwoQubitMax = 0.030, 0.01, 0.15
		cfg.OneQubitStd = 0.0030
		cfg.ReadoutMin, cfg.ReadoutMax = 0.015, 0.08
		cfg.T1StdUs, cfg.T2StdUs = 45, 35
	}
	return cfg
}

// ParseZooDevice splits a zoo device name into its topology name and
// variance tier: "heavy-hex-399-mid" → ("heavy-hex-399", TierMid);
// names without a tier suffix default to TierMid. The topology part is
// not resolved here — ZooArchive does that.
func ParseZooDevice(name string) (topoName string, tier VarianceTier, err error) {
	topoName, tier = name, TierMid
	for _, t := range Tiers() {
		if s, ok := strings.CutSuffix(name, "-"+string(t)); ok {
			topoName, tier = s, t
			break
		}
	}
	if topoName == "" {
		return "", "", fmt.Errorf("calib: empty topology in zoo device name %q", name)
	}
	return topoName, tier, nil
}

// ZooGenConfig resolves a zoo device name ("<family>-<n>[-<tier>]")
// into its generator configuration. The effective generator seed folds
// the canonical device name into the caller's seed, so distinct devices
// generated from one root seed are decorrelated while each remains
// fully reproducible.
func ZooGenConfig(name string, seed int64) (GenConfig, error) {
	topoName, tier, err := ParseZooDevice(name)
	if err != nil {
		return GenConfig{}, err
	}
	t, err := topo.ByName(topoName)
	if err != nil {
		return GenConfig{}, err
	}
	canonical := topoName + "-" + string(tier)
	return ZooConfig(t, tier, seed^int64(fnv64(canonical))), nil
}

// ZooArchive generates the synthetic fleet named by a zoo device name.
func ZooArchive(name string, seed int64) (*Archive, error) {
	cfg, err := ZooGenConfig(name, seed)
	if err != nil {
		return nil, err
	}
	return Generate(cfg), nil
}

// fnv64 is the FNV-1a hash used to fold device names into seeds.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
