// Package schedule assigns start times to circuit operations: an ASAP
// (as-soon-as-possible) schedule with the physical gate durations of
// package gate. The simulator charges decoherence for the idle windows
// this schedule exposes, and the partitioning study uses the makespan as
// the trial latency. Unlike dependency layering (circuit.Layers), which
// quantizes time to the slowest gate of each layer, the schedule lets a
// fast single-qubit gate start as soon as its operand is free.
package schedule

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

// Op is one scheduled operation.
type Op struct {
	GateIndex  int // index into the source circuit's Gates
	Kind       gate.Kind
	Qubits     []int
	Start, End time.Duration
}

// Schedule is a timed view of a circuit.
type Schedule struct {
	NumQubits int
	Ops       []Op
	Makespan  time.Duration
}

// ASAP schedules every gate at the earliest time all its operands are
// free. Barriers take zero time but synchronize their qubits.
func ASAP(c *circuit.Circuit) *Schedule {
	s := &Schedule{NumQubits: c.NumQubits}
	free := make([]time.Duration, c.NumQubits)
	for gi, g := range c.Gates {
		start := time.Duration(0)
		for _, q := range g.Qubits {
			if free[q] > start {
				start = free[q]
			}
		}
		end := start + g.Kind.Duration()
		for _, q := range g.Qubits {
			free[q] = end
		}
		if g.Kind == gate.Barrier {
			continue // synchronizes, occupies no slot
		}
		s.Ops = append(s.Ops, Op{GateIndex: gi, Kind: g.Kind, Qubits: append([]int(nil), g.Qubits...), Start: start, End: end})
		if end > s.Makespan {
			s.Makespan = end
		}
	}
	return s
}

// window returns the first operation start and last operation end per
// qubit (-1 duration when the qubit is unused).
func (s *Schedule) window(q int) (first, last time.Duration, used bool) {
	first, last = time.Duration(1<<62), 0
	for _, op := range s.Ops {
		for _, oq := range op.Qubits {
			if oq != q {
				continue
			}
			if op.Start < first {
				first = op.Start
			}
			if op.End > last {
				last = op.End
			}
			used = true
		}
	}
	return first, last, used
}

// BusyTime returns the total time qubit q spends executing operations.
func (s *Schedule) BusyTime(q int) time.Duration {
	var busy time.Duration
	for _, op := range s.Ops {
		for _, oq := range op.Qubits {
			if oq == q {
				busy += op.End - op.Start
			}
		}
	}
	return busy
}

// IdleTime returns the idle duration of qubit q inside its active window
// (first operation start to last operation end): the exposure the
// decoherence model charges. Unused qubits idle for zero time.
func (s *Schedule) IdleTime(q int) time.Duration {
	first, last, used := s.window(q)
	if !used {
		return 0
	}
	return (last - first) - s.BusyTime(q)
}

// IdleTimes returns IdleTime for every qubit.
func (s *Schedule) IdleTimes() []time.Duration {
	out := make([]time.Duration, s.NumQubits)
	for q := range out {
		out[q] = s.IdleTime(q)
	}
	return out
}

// Utilization is the fraction of qubit-time spent executing operations,
// over used qubits' active windows. Zero for an empty schedule.
func (s *Schedule) Utilization() float64 {
	var busy, window time.Duration
	for q := 0; q < s.NumQubits; q++ {
		first, last, used := s.window(q)
		if !used {
			continue
		}
		busy += s.BusyTime(q)
		window += last - first
	}
	if window == 0 {
		return 0
	}
	return float64(busy) / float64(window)
}

// Timeline renders an ASCII Gantt chart (one row per qubit, one column
// per timeStep), for CLI inspection. Columns are capped at maxCols with
// truncation marked by '…'.
func (s *Schedule) Timeline(timeStep time.Duration, maxCols int) string {
	if timeStep <= 0 {
		timeStep = 100 * time.Nanosecond
	}
	if maxCols <= 0 {
		maxCols = 120
	}
	cols := int(s.Makespan/timeStep) + 1
	truncated := false
	if cols > maxCols {
		cols = maxCols
		truncated = true
	}
	grid := make([][]byte, s.NumQubits)
	for q := range grid {
		grid[q] = []byte(strings.Repeat(".", cols))
	}
	for _, op := range s.Ops {
		c0 := int(op.Start / timeStep)
		c1 := int((op.End - 1) / timeStep)
		sym := symbol(op.Kind)
		for c := c0; c <= c1 && c < cols; c++ {
			for _, q := range op.Qubits {
				grid[q][c] = sym
			}
		}
	}
	var b strings.Builder
	for q := range grid {
		fmt.Fprintf(&b, "q%-3d %s", q, grid[q])
		if truncated {
			b.WriteString("…")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func symbol(k gate.Kind) byte {
	switch {
	case k == gate.SWAP:
		return 'S'
	case k == gate.Measure:
		return 'M'
	case k.TwoQubit():
		return 'C'
	default:
		return 'u'
	}
}

// CriticalPath returns the chain of operations realizing the makespan:
// walking back from the last-finishing op through the operand that
// constrained each start time.
func (s *Schedule) CriticalPath() []Op {
	if len(s.Ops) == 0 {
		return nil
	}
	// Sort op indices by end time to find the last.
	order := make([]int, len(s.Ops))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return s.Ops[order[i]].End > s.Ops[order[j]].End })
	var path []Op
	cur := order[0]
	for {
		path = append(path, s.Ops[cur])
		if s.Ops[cur].Start == 0 {
			break
		}
		// Find the op ending exactly at cur's start on one of its qubits.
		prev := -1
		for i, op := range s.Ops {
			if op.End != s.Ops[cur].Start {
				continue
			}
			for _, q := range op.Qubits {
				for _, cq := range s.Ops[cur].Qubits {
					if q == cq {
						prev = i
					}
				}
			}
		}
		if prev == -1 {
			break
		}
		cur = prev
	}
	// Reverse to chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
