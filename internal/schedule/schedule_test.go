package schedule

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

func TestASAPSequentialChain(t *testing.T) {
	// h(0); cx(0,1); measure(1): strictly sequential on shared qubits.
	c := circuit.New("chain", 2).H(0).CX(0, 1).Measure(1, 0)
	s := ASAP(c)
	if len(s.Ops) != 3 {
		t.Fatalf("ops = %d, want 3", len(s.Ops))
	}
	h, cx, m := s.Ops[0], s.Ops[1], s.Ops[2]
	if h.Start != 0 || h.End != 100*time.Nanosecond {
		t.Fatalf("h timing = %v-%v", h.Start, h.End)
	}
	if cx.Start != h.End || cx.End != h.End+300*time.Nanosecond {
		t.Fatalf("cx timing = %v-%v", cx.Start, cx.End)
	}
	if m.Start != cx.End {
		t.Fatalf("measure start = %v, want %v", m.Start, cx.End)
	}
	if s.Makespan != m.End {
		t.Fatalf("makespan = %v, want %v", s.Makespan, m.End)
	}
}

func TestASAPBeatsLayerQuantization(t *testing.T) {
	// Two h gates on qubit 0 while a cx runs on 1,2: layered duration
	// would charge two full layers; ASAP lets the h gates run back to
	// back under the cx.
	c := circuit.New("p", 3).H(0).H(0).CX(1, 2)
	s := ASAP(c)
	if s.Makespan != 300*time.Nanosecond {
		t.Fatalf("makespan = %v, want 300ns (cx dominates)", s.Makespan)
	}
	if got := c.Duration(); got <= s.Makespan {
		t.Fatalf("layered duration %v should exceed ASAP makespan %v here", got, s.Makespan)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Without barrier h(1) starts at 0; with it, after h(0).
	c := circuit.New("b", 2).H(0).Barrier().H(1)
	s := ASAP(c)
	if len(s.Ops) != 2 {
		t.Fatalf("barrier should not occupy a slot: %d ops", len(s.Ops))
	}
	if s.Ops[1].Start != 100*time.Nanosecond {
		t.Fatalf("post-barrier start = %v, want 100ns", s.Ops[1].Start)
	}
}

func TestIdleTime(t *testing.T) {
	// Qubit 1 waits from its first gate at t=0... construct: h(1) at 0,
	// then qubit 1 idles while qubit 0 runs 3 h gates, then cx(0,1).
	c := circuit.New("i", 2).H(1).H(0).H(0).H(0).CX(0, 1)
	s := ASAP(c)
	// Qubit 1: h [0,100), idle [100,300), cx [300,600).
	if got := s.IdleTime(1); got != 200*time.Nanosecond {
		t.Fatalf("idle(1) = %v, want 200ns", got)
	}
	if got := s.IdleTime(0); got != 0 {
		t.Fatalf("idle(0) = %v, want 0 (always busy)", got)
	}
}

func TestIdleTimeUnusedQubit(t *testing.T) {
	c := circuit.New("u", 3).H(0)
	s := ASAP(c)
	if got := s.IdleTime(2); got != 0 {
		t.Fatalf("unused qubit idle = %v, want 0", got)
	}
}

func TestBusyTime(t *testing.T) {
	c := circuit.New("b", 2).H(0).CX(0, 1)
	s := ASAP(c)
	if got := s.BusyTime(0); got != 400*time.Nanosecond {
		t.Fatalf("busy(0) = %v, want 400ns", got)
	}
	if got := s.BusyTime(1); got != 300*time.Nanosecond {
		t.Fatalf("busy(1) = %v, want 300ns", got)
	}
}

func TestUtilization(t *testing.T) {
	full := ASAP(circuit.New("f", 1).H(0).H(0))
	if u := full.Utilization(); u != 1 {
		t.Fatalf("fully busy utilization = %v, want 1", u)
	}
	if u := ASAP(circuit.New("e", 1)).Utilization(); u != 0 {
		t.Fatalf("empty utilization = %v, want 0", u)
	}
}

func TestMakespanNeverExceedsLayeredDuration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		c := circuit.New("r", n)
		for i := 0; i < 30; i++ {
			a := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				c.H(a)
			case 1:
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CX(a, b)
			default:
				c.Measure(a, a)
			}
		}
		s := ASAP(c)
		return s.Makespan <= c.Duration()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulePreservesPerQubitOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New("r", n)
		for i := 0; i < 25; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
		s := ASAP(c)
		// Ops touching the same qubit must not overlap and must appear in
		// gate order.
		for q := 0; q < n; q++ {
			var prevEnd time.Duration
			var prevIdx = -1
			for _, op := range s.Ops {
				touches := false
				for _, oq := range op.Qubits {
					if oq == q {
						touches = true
					}
				}
				if !touches {
					continue
				}
				if op.Start < prevEnd || op.GateIndex < prevIdx {
					return false
				}
				prevEnd = op.End
				prevIdx = op.GateIndex
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeline(t *testing.T) {
	c := circuit.New("t", 2).H(0).CX(0, 1).Swap(0, 1).Measure(0, 0)
	s := ASAP(c)
	tl := s.Timeline(100*time.Nanosecond, 200)
	for _, sym := range []string{"u", "C", "S", "M", "q0", "q1"} {
		if !strings.Contains(tl, sym) {
			t.Fatalf("timeline missing %q:\n%s", sym, tl)
		}
	}
	// Truncation path.
	long := circuit.New("l", 1)
	for i := 0; i < 300; i++ {
		long.H(0)
	}
	tl = ASAP(long).Timeline(100*time.Nanosecond, 50)
	if !strings.Contains(tl, "…") {
		t.Fatal("long timeline not truncated")
	}
}

func TestCriticalPath(t *testing.T) {
	c := circuit.New("cp", 3).H(0).CX(0, 1).CX(1, 2).Measure(2, 0)
	s := ASAP(c)
	path := s.CriticalPath()
	if len(path) != 4 {
		t.Fatalf("critical path length = %d, want 4", len(path))
	}
	if path[0].Kind != gate.H || path[len(path)-1].Kind != gate.Measure {
		t.Fatalf("critical path endpoints wrong: %v ... %v", path[0].Kind, path[len(path)-1].Kind)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Start < path[i-1].End {
			t.Fatal("critical path not chronological")
		}
	}
	if ASAP(circuit.New("e", 1)).CriticalPath() != nil {
		t.Fatal("empty schedule should have no critical path")
	}
}
