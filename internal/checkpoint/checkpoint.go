// Package checkpoint persists completed experiment-unit results so a
// cancelled or crashed sweep can resume without recomputing work. Each
// unit is one JSON file in the store directory, written atomically
// (write to a temp file in the same directory, fsync, rename), so a
// SIGINT or power cut can never leave a half-written entry: an entry
// either exists completely or not at all.
//
// Keys are free-form strings; the experiment harness composes them from
// the unit identity plus everything the result depends on — experiment
// name, workload/day/policy, seed, trial budgets and the device
// fingerprint — so a resumed run with a different budget or a
// recalibrated device can never be served a stale result. File names are
// the FNV-1a hash of the key; the key itself is stored inside the entry
// and verified on read, which makes hash collisions and foreign files a
// miss rather than silent corruption.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is a directory of unit-result entries. The zero value is not
// usable; construct with Open. A nil *Store is a valid "checkpointing
// disabled" store: Get always misses and Put is a no-op.
type Store struct {
	dir    string
	resume bool

	mu      sync.Mutex
	hits    int
	misses  int
	puts    int
	corrupt int
}

// envelope is the on-disk shape of one entry. Key lets a read verify it
// got the entry it asked for (the file name is only a hash).
type envelope struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Open creates (if needed) the store directory. With resume false the
// store is write-only: completed units are persisted but never read
// back, so a fresh run overwrites rather than trusts prior state. With
// resume true, Get serves previously persisted entries.
func Open(dir string, resume bool) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir, resume: resume}, nil
}

// Resume reports whether the store serves previously persisted entries.
func (s *Store) Resume() bool { return s != nil && s.resume }

// Get looks up key and, on a hit, decodes the stored value into v (which
// must be a pointer). It returns (false, nil) when the store is nil, not
// in resume mode, or has no usable entry for key; an unreadable or
// corrupt entry is counted and treated as a miss so the caller simply
// recomputes. The error return is reserved for a present, well-formed
// entry whose value cannot be decoded into v — a caller type mismatch
// worth surfacing.
func (s *Store) Get(key string, v any) (bool, error) {
	if s == nil || !s.resume {
		return false, nil
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.count(func() { s.misses++ })
		return false, nil
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Key != key {
		s.count(func() { s.corrupt++ })
		return false, nil
	}
	if err := json.Unmarshal(env.Value, v); err != nil {
		s.count(func() { s.corrupt++ })
		return false, fmt.Errorf("checkpoint: decode %q: %w", key, err)
	}
	s.count(func() { s.hits++ })
	return true, nil
}

// Put persists v under key with an atomic tmp+rename write. Safe for
// concurrent use: temp files are unique and rename is atomic, so the
// last writer wins with no torn state.
func (s *Store) Put(key string, v any) error {
	if s == nil {
		return nil
	}
	value, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encode %q: %w", key, err)
	}
	data, err := json.Marshal(envelope{Key: key, Value: value})
	if err != nil {
		return fmt.Errorf("checkpoint: encode %q: %w", key, err)
	}
	if err := AtomicWriteFile(s.path(key), data); err != nil {
		return fmt.Errorf("checkpoint: write %q: %w", key, err)
	}
	s.count(func() { s.puts++ })
	return nil
}

// AtomicWriteFile writes data to path with the store's durability
// discipline: write to a unique temp file in the same directory, fsync,
// then rename over path. A crash or power cut at any point leaves
// either the old file or the new one, never a torn mix — the invariant
// every durable artifact in this repository (experiment checkpoints,
// job-plane state) relies on. Safe for concurrent writers to the same
// path: temp names are unique and rename is atomic, so the last writer
// wins cleanly.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".atomic-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return nil
}

// Stats reports hit/miss/put/corrupt counters since Open — the harness
// prints them so a resumed run can show how much work it skipped.
func (s *Store) Stats() (hits, misses, puts, corrupt int) {
	if s == nil {
		return 0, 0, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.puts, s.corrupt
}

func (s *Store) count(f func()) {
	s.mu.Lock()
	f()
	s.mu.Unlock()
}

// path maps a key to its entry file: 64-bit FNV-1a of the key, hex.
func (s *Store) path(key string) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return filepath.Join(s.dir, fmt.Sprintf("%016x.json", h))
}
