package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", true); err == nil {
		t.Fatal("Open(\"\") succeeded, want error")
	}
}

func TestOpenMkdirFailure(t *testing.T) {
	// A regular file where the store directory should go makes MkdirAll
	// fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(blocker, "store"), true); err == nil {
		t.Fatal("Open under a file succeeded, want error")
	}
}

func TestPutUnmarshalableValue(t *testing.T) {
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	// Channels have no JSON encoding; Put must fail cleanly and leave no
	// temp files behind.
	if err := s.Put("k", make(chan int)); err == nil {
		t.Fatal("Put(chan) succeeded, want encode error")
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("store dir has %d entries after failed Put, want 0", len(entries))
	}
}

func TestPutCreateTempFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the store so CreateTemp fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", 1); err == nil {
		t.Fatal("Put into a removed directory succeeded, want error")
	}
}

func TestGetUnreadableEntryIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	// A directory at the entry path makes ReadFile fail (not just
	// not-exist), which must still count as a plain miss.
	if err := os.Mkdir(s.path("blocked"), 0o755); err != nil {
		t.Fatal(err)
	}
	var v int
	ok, err := s.Get("blocked", &v)
	if ok || err != nil {
		t.Fatalf("Get = (%v, %v), want miss with nil error", ok, err)
	}
	_, misses, _, _ := s.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

func TestStatsCountsEveryOutcome(t *testing.T) {
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	var v int
	if ok, err := s.Get("a", &v); !ok || err != nil {
		t.Fatalf("Get(a) = (%v, %v)", ok, err)
	}
	if ok, _ := s.Get("absent", &v); ok {
		t.Fatal("Get(absent) hit")
	}
	if err := os.WriteFile(s.path("junk"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Get("junk", &v); ok {
		t.Fatal("Get(junk) hit")
	}
	hits, misses, puts, corrupt := s.Stats()
	if hits != 1 || misses != 1 || puts != 1 || corrupt != 1 {
		t.Fatalf("Stats = (%d, %d, %d, %d), want (1, 1, 1, 1)", hits, misses, puts, corrupt)
	}
}
