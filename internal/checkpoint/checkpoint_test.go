package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type unit struct {
	Name string
	PST  float64
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	want := unit{Name: "bv-16", PST: 0.123456789012345}
	if err := s.Put("fig13/bv-16@seed=1", want); err != nil {
		t.Fatal(err)
	}
	var got unit
	hit, err := s.Get("fig13/bv-16@seed=1", &got)
	if err != nil || !hit {
		t.Fatalf("Get = (%v, %v), want hit", hit, err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v (floats must survive bit-exactly)", got, want)
	}
}

func TestWriteOnlyModeNeverServes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", unit{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var got unit
	if hit, _ := s.Get("k", &got); hit {
		t.Fatal("write-only store served an entry")
	}
	// The entry is on disk for a later resume run.
	r, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if hit, _ := r.Get("k", &got); !hit || got.Name != "x" {
		t.Fatalf("resume store miss: hit=%v got=%+v", hit, got)
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if err := s.Put("k", 1); err != nil {
		t.Fatal(err)
	}
	var v int
	if hit, err := s.Get("k", &v); hit || err != nil {
		t.Fatalf("nil store Get = (%v, %v)", hit, err)
	}
	if s.Resume() {
		t.Fatal("nil store claims resume mode")
	}
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", unit{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry mid-file, simulating torn non-atomic state.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries = %v, %v", entries, err)
	}
	path := filepath.Join(dir, entries[0].Name())
	if err := os.WriteFile(path, []byte(`{"key":"k","val`), 0o644); err != nil {
		t.Fatal(err)
	}
	var got unit
	if hit, err := s.Get("k", &got); hit || err != nil {
		t.Fatalf("corrupt entry Get = (%v, %v), want clean miss", hit, err)
	}
	_, _, _, corrupt := s.Stats()
	if corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", corrupt)
	}
}

func TestForeignEntryKeyMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	// A well-formed entry sitting at the hash slot of a different key
	// (hash collision / copied-in file) must not be served.
	if err := os.WriteFile(s.path("wanted"), []byte(`{"key":"other","value":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var v int
	if hit, _ := s.Get("wanted", &v); hit {
		t.Fatal("served an entry whose stored key does not match")
	}
}

// TestDamagedEntriesRecomputedOnResume is the resume contract under
// every flavor of on-disk damage: a truncated entry, outright garbage,
// and a wrong-key envelope each read as a clean miss (never a fatal
// error), the caller recomputes and Puts, and the rewritten entry then
// serves normally.
func TestDamagedEntriesRecomputedOnResume(t *testing.T) {
	damage := map[string][]byte{
		"truncated": []byte(`{"key":"k","val`),
		"garbage":   []byte("\x00\x01not json at all"),
		"wrong-key": []byte(`{"key":"somebody-else","value":{"Name":"evil","PST":1}}`),
	}
	for name, bad := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k", unit{Name: "good", PST: 0.5}); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.path("k"), bad, 0o644); err != nil {
				t.Fatal(err)
			}
			var got unit
			if hit, err := s.Get("k", &got); hit || err != nil {
				t.Fatalf("damaged entry Get = (%v, %v), want clean miss", hit, err)
			}
			// The resume loop's reaction to a miss: recompute and Put.
			if err := s.Put("k", unit{Name: "recomputed", PST: 0.25}); err != nil {
				t.Fatalf("Put over damaged entry: %v", err)
			}
			if hit, err := s.Get("k", &got); !hit || err != nil || got.Name != "recomputed" {
				t.Fatalf("after recompute: hit=%v err=%v got=%+v", hit, err, got)
			}
		})
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := AtomicWriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Overwrite: the replacement is complete, and no temp file survives.
	if err := AtomicWriteFile(path, []byte("v2 with more bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2 with more bytes" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries, want just the target file", len(entries))
	}
	// A missing parent directory is an error, not a panic, and leaves no
	// debris.
	if err := AtomicWriteFile(filepath.Join(dir, "nope", "x"), []byte("v")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

func TestTypeMismatchSurfacesError(t *testing.T) {
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", unit{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var wrong []int
	if _, err := s.Get("k", &wrong); err == nil {
		t.Fatal("decoding into the wrong type did not error")
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put("k", i); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries for one key, want 1 (last write wins)", len(entries))
	}
}

func TestConcurrentPutsSameKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put("shared", unit{Name: "w", PST: float64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	var got unit
	if hit, err := s.Get("shared", &got); !hit || err != nil {
		t.Fatalf("Get after concurrent puts = (%v, %v)", hit, err)
	}
	if got.Name != "w" {
		t.Fatalf("torn entry: %+v", got)
	}
}
