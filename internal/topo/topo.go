// Package topo defines the coupling topologies of the machines studied in
// the paper — the 20-qubit IBM-Q20 "Tokyo" and the 5-qubit IBM-Q5
// "Tenerife" — together with generic generators (linear chains, 2D grids)
// and the small teaching machines from the paper's figures. A Topology is
// purely structural: which qubit pairs share a coupling link. Error rates
// live in the calibration layer (package calib) and are combined with a
// Topology by package device.
package topo

import (
	"fmt"
	"sort"

	"vaq/internal/graphx"
)

// Coupling is an undirected physical link between two qubits, A < B.
type Coupling struct {
	A, B int
}

// Topology is a named coupling graph over NumQubits physical qubits.
type Topology struct {
	Name      string
	NumQubits int
	Couplings []Coupling
}

// New builds a topology after normalizing (A < B) and validating the
// coupling list: indices in range, no self-loops, no duplicates.
func New(name string, numQubits int, couplings []Coupling) (*Topology, error) {
	seen := make(map[Coupling]bool, len(couplings))
	norm := make([]Coupling, 0, len(couplings))
	for _, c := range couplings {
		if c.A == c.B {
			return nil, fmt.Errorf("topo %q: self-coupling on qubit %d", name, c.A)
		}
		if c.A > c.B {
			c.A, c.B = c.B, c.A
		}
		if c.A < 0 || c.B >= numQubits {
			return nil, fmt.Errorf("topo %q: coupling %d-%d out of range [0,%d)", name, c.A, c.B, numQubits)
		}
		if seen[c] {
			return nil, fmt.Errorf("topo %q: duplicate coupling %d-%d", name, c.A, c.B)
		}
		seen[c] = true
		norm = append(norm, c)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].A != norm[j].A {
			return norm[i].A < norm[j].A
		}
		return norm[i].B < norm[j].B
	})
	return &Topology{Name: name, NumQubits: numQubits, Couplings: norm}, nil
}

// MustNew is New for statically known topologies; it panics on error.
func MustNew(name string, numQubits int, couplings []Coupling) *Topology {
	t, err := New(name, numQubits, couplings)
	if err != nil {
		panic(err)
	}
	return t
}

// NumLinks returns the number of directed links (each coupling counted in
// both directions), matching how the paper counts IBM-Q20's "76 links".
func (t *Topology) NumLinks() int { return 2 * len(t.Couplings) }

// Graph returns the coupling graph with every edge weight set to w.
func (t *Topology) Graph(w float64) *graphx.Graph {
	g := graphx.New(t.NumQubits)
	for _, c := range t.Couplings {
		g.AddEdge(c.A, c.B, w)
	}
	return g
}

// Adjacent reports whether qubits a and b share a coupling link.
func (t *Topology) Adjacent(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for _, c := range t.Couplings {
		if c.A == a && c.B == b {
			return true
		}
	}
	return false
}

// Connected reports whether every qubit can reach every other.
func (t *Topology) Connected() bool { return t.Graph(1).Connected(nil) }

// IBMQ20 returns the 20-qubit IBM-Q20 "Tokyo" model used throughout the
// paper's simulation study. Qubits are numbered row-major on a 4×5 grid
// (row 0 = qubits 0–4, …, row 3 = qubits 15–19). The map contains all 31
// horizontal/vertical grid couplings plus 7 diagonal couplings, for 38
// couplings = 76 directed links, matching the paper's link count. The
// diagonal set includes every link the paper names (5–11, 13–19, 14–18,
// and the 5–6 / 6–5 pair is a grid link).
func IBMQ20() *Topology {
	var c []Coupling
	const rows, cols = 4, 5
	id := func(r, col int) int { return r*cols + col }
	for r := 0; r < rows; r++ {
		for col := 0; col < cols; col++ {
			if col+1 < cols {
				c = append(c, Coupling{id(r, col), id(r, col+1)})
			}
			if r+1 < rows {
				c = append(c, Coupling{id(r, col), id(r+1, col)})
			}
		}
	}
	diagonals := []Coupling{
		{1, 7},   // row0 col1 ↘ row1 col2
		{2, 6},   // row0 col2 ↙ row1 col1
		{5, 11},  // row1 col0 ↘ row2 col1 (paper link CX5_11)
		{8, 12},  // row1 col3 ↙ row2 col2
		{7, 13},  // row1 col2 ↘ row2 col3
		{13, 19}, // row2 col3 ↘ row3 col4 (paper link CX19_13)
		{14, 18}, // row2 col4 ↙ row3 col3 (paper's weakest link)
	}
	c = append(c, diagonals...)
	return MustNew("ibmq20", 20, c)
}

// IBMQ5 returns the 5-qubit IBM-Q5 "Tenerife" coupling map used in the
// paper's real-system evaluation (Section 7): a bow-tie with Q2 at the
// center.
func IBMQ5() *Topology {
	return MustNew("ibmq5", 5, []Coupling{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4},
	})
}

// IBMQ16 returns a 16-qubit IBM "Rüschlikon"-class model: a 2×8 ladder
// (22 couplings), the machine used for the 16-qubit demonstrations the
// paper cites. Qubits are row-major: 0–7 top row, 8–15 bottom row.
func IBMQ16() *Topology {
	t := Grid("ibmq16", 2, 8)
	return t
}

// Ring5 returns the paper's Figure 1 teaching machine: five qubits
// A–E (0–4) in a ring.
func Ring5() *Topology {
	return MustNew("ring5", 5, []Coupling{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4},
	})
}

// Mesh2x3 returns the 6-qubit 2×3 mesh from the paper's Figures 3, 11 and
// 15. Qubits are row-major: row 0 = A,D,E (0,1,2)… we number them 0–5 with
// 0–2 the top row and 3–5 the bottom row.
func Mesh2x3() *Topology {
	return Grid("mesh2x3", 2, 3)
}

// Grid returns an r×c nearest-neighbor mesh with row-major numbering.
func Grid(name string, r, c int) *Topology {
	var cp []Coupling
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				cp = append(cp, Coupling{id(i, j), id(i, j+1)})
			}
			if i+1 < r {
				cp = append(cp, Coupling{id(i, j), id(i+1, j)})
			}
		}
	}
	return MustNew(name, r*c, cp)
}

// Linear returns an n-qubit chain 0–1–…–(n−1).
func Linear(n int) *Topology {
	var cp []Coupling
	for i := 0; i+1 < n; i++ {
		cp = append(cp, Coupling{i, i + 1})
	}
	return MustNew(fmt.Sprintf("linear%d", n), n, cp)
}

// FullyConnected returns the idealized all-to-all machine (the O(N²)-link
// organization the paper notes is impractical); useful as a no-routing
// control in experiments.
func FullyConnected(n int) *Topology {
	var cp []Coupling
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cp = append(cp, Coupling{i, j})
		}
	}
	return MustNew(fmt.Sprintf("full%d", n), n, cp)
}
