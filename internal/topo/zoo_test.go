package topo

import (
	"fmt"
	"strings"
	"testing"
)

// TestZooFamiliesConnectedAtEverySize builds each family at a spread of
// sizes across its range and checks the invariants the rest of the stack
// leans on: exact qubit count, connectivity, and canonical naming.
func TestZooFamiliesConnectedAtEverySize(t *testing.T) {
	sizes := []int{5, 6, 7, 9, 16, 20, 27, 50, 100, 127, 256, 399, 1000}
	for _, f := range Families() {
		for _, n := range sizes {
			if n < f.MinQubits || n > f.MaxQubits {
				continue
			}
			name := fmt.Sprintf("%s-%d", f.Name, n)
			tp, err := ByName(name)
			if err != nil {
				t.Fatalf("ByName(%q): %v", name, err)
			}
			if tp.NumQubits != n {
				t.Errorf("%s: %d qubits, want %d", name, tp.NumQubits, n)
			}
			if tp.Name != name {
				t.Errorf("%s: topology named %q", name, tp.Name)
			}
			if !tp.Connected() {
				t.Errorf("%s: disconnected coupling graph", name)
			}
		}
	}
}

// TestHeavyHexDegreeBound: the defining property of a heavy-hexagon
// lattice is that no qubit couples to more than three neighbours.
func TestHeavyHexDegreeBound(t *testing.T) {
	for _, n := range []int{5, 12, 20, 65, 127, 399, 1000} {
		tp := HeavyHex(n)
		deg := make([]int, n)
		for _, c := range tp.Couplings {
			deg[c.A]++
			deg[c.B]++
		}
		for q, d := range deg {
			if d > 3 {
				t.Fatalf("heavy-hex-%d: qubit %d has degree %d (> 3)", n, q, d)
			}
			if d == 0 {
				t.Fatalf("heavy-hex-%d: qubit %d isolated", n, q)
			}
		}
	}
}

// TestRingAndGridShape: rings are 2-regular cycles; grids have n links on
// a c-column row-major lattice.
func TestRingAndGridShape(t *testing.T) {
	tp := Ring(64)
	if len(tp.Couplings) != 64 {
		t.Errorf("ring-64: %d couplings, want 64", len(tp.Couplings))
	}
	deg := make([]int, 64)
	for _, c := range tp.Couplings {
		deg[c.A]++
		deg[c.B]++
	}
	for q, d := range deg {
		if d != 2 {
			t.Errorf("ring-64: qubit %d degree %d, want 2", q, d)
		}
	}

	g := SquareGrid(100)
	// 10×10 grid: 2·10·9 = 180 undirected links.
	if len(g.Couplings) != 180 {
		t.Errorf("grid-100: %d couplings, want 180", len(g.Couplings))
	}
}

// TestByNameErrors pins the error contract: unknown families list the
// valid ones, and out-of-range sizes name the family's range.
func TestByNameErrors(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"hexagon-20", "unknown"},
		{"heavy-hex-4", "5"},
		{"heavy-hex-4096", "2048"},
		{"full-512", "256"},
		{"grid-abc", ""},
		{"", ""},
	}
	for _, tc := range cases {
		if _, err := ByName(tc.name); err == nil {
			t.Errorf("ByName(%q): want error", tc.name)
		} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ByName(%q) error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := ByName("hexagon-20"); err == nil || !strings.Contains(err.Error(), "heavy-hex") {
		t.Errorf("unknown-family error should list families, got %v", err)
	}
}

// TestZooDeterminism: two independent builds of the same name yield
// identical coupling lists in identical order.
func TestZooDeterminism(t *testing.T) {
	for _, name := range []string{"heavy-hex-399", "grid-100", "ring-33", "full-12"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Couplings) != len(b.Couplings) {
			t.Fatalf("%s: coupling count differs across builds", name)
		}
		for i := range a.Couplings {
			if a.Couplings[i] != b.Couplings[i] {
				t.Fatalf("%s: coupling %d differs: %v vs %v", name, i, a.Couplings[i], b.Couplings[i])
			}
		}
	}
}

// TestWithHoles: the defect variant removes exactly k couplers, stays
// connected, is deterministic, and refuses impossible knockouts.
func TestWithHoles(t *testing.T) {
	for _, tc := range []struct {
		name  string
		holes int
	}{
		{"ring-16", 1},
		{"grid-25", 5},
		{"full-8", 10},
		{"heavy-hex-399", 8},
	} {
		full, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		holed, err := ByName(fmt.Sprintf("%s-holes%d", tc.name, tc.holes))
		if err != nil {
			t.Fatalf("%s-holes%d: %v", tc.name, tc.holes, err)
		}
		if want := fmt.Sprintf("%s-holes%d", tc.name, tc.holes); holed.Name != want {
			t.Errorf("name %q, want %q", holed.Name, want)
		}
		if got, want := len(holed.Couplings), len(full.Couplings)-tc.holes; got != want {
			t.Errorf("%s: %d couplings after %d holes, want %d", holed.Name, got, tc.holes, want)
		}
		if holed.NumQubits != full.NumQubits {
			t.Errorf("%s: qubit count changed: %d vs %d", holed.Name, holed.NumQubits, full.NumQubits)
		}
		if !holed.Connected() {
			t.Errorf("%s: knockout disconnected the machine", holed.Name)
		}
		// Every surviving coupling existed in the base lattice.
		for _, c := range holed.Couplings {
			if !full.Adjacent(c.A, c.B) {
				t.Errorf("%s: coupling %v not in base lattice", holed.Name, c)
			}
		}
		again, err := ByName(holed.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range holed.Couplings {
			if holed.Couplings[i] != again.Couplings[i] {
				t.Fatalf("%s: knockout is not deterministic at coupling %d", holed.Name, i)
			}
		}
	}

	// A ring is one hole away from a tree: the second knockout must
	// fail rather than silently under-deliver.
	if _, err := WithHoles(Ring(8), 2); err == nil {
		t.Error("ring-8 with 2 holes should be impossible (tree after 1)")
	}
	if _, err := ByName("ring-8-holes3"); err == nil {
		t.Error("ByName ring-8-holes3 should fail: only 1 removable edge")
	}
	if _, err := ByName("grid-25-holes0"); err == nil {
		t.Error("holes0 should not parse as a defect variant")
	}
	if _, err := WithHoles(Ring(8), 0); err == nil {
		t.Error("WithHoles k=0 should be rejected")
	}
}
