// Parametric topology generators — the "device zoo". Where the named
// machines in topo.go model specific IBM systems, the zoo families are
// valid at any size from a handful of qubits to 1000+, so the paper's
// variability question ("does variation-aware compilation still win at
// 500 qubits?") can be asked on machines that do not exist yet.
//
// Naming scheme: every zoo topology is "<family>-<n>" with n the exact
// qubit count — heavy-hex-399, grid-100, ring-64, full-20. ByName
// parses that form; Families enumerates the generators with their size
// bounds. An optional "-holes<k>" suffix (grid-100-holes5) knocks out k
// couplers deterministically, modeling fabrication defects (WithHoles).
// The calibration layer (package calib) extends the scheme with a
// variance-tier suffix: heavy-hex-399-mid names a calibrated fleet
// over the heavy-hex-399 lattice.
package topo

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"vaq/internal/graphx"
)

// Family is one parametric generator of the device zoo.
type Family struct {
	// Name is the family prefix of the zoo naming scheme.
	Name string
	// Description is a one-line summary for device listings.
	Description string
	// MinQubits and MaxQubits bound the sizes ByName accepts. The
	// all-to-all family caps much lower than the sparse ones: its link
	// count grows quadratically.
	MinQubits, MaxQubits int
	// Build constructs the family member with exactly n qubits.
	Build func(n int) *Topology
}

// Families enumerates the zoo generators in listing order.
func Families() []Family {
	return []Family{
		{
			Name:        "heavy-hex",
			Description: "IBM-style heavy-hexagon lattice (degree ≤ 3, bridge qubits between rows)",
			MinQubits:   5, MaxQubits: 2048,
			Build: HeavyHex,
		},
		{
			Name:        "grid",
			Description: "near-square 2D nearest-neighbor mesh",
			MinQubits:   5, MaxQubits: 2048,
			Build: SquareGrid,
		},
		{
			Name:        "ring",
			Description: "single cycle 0–1–…–(n−1)–0",
			MinQubits:   5, MaxQubits: 2048,
			Build: Ring,
		},
		{
			Name:        "full",
			Description: "idealized all-to-all coupling (O(n²) links; no-routing control)",
			MinQubits:   5, MaxQubits: 256,
			Build: AllToAll,
		},
	}
}

// ByName resolves a zoo topology name of the form "<family>-<n>", e.g.
// "heavy-hex-399", or its defect variant "<family>-<n>-holes<k>", e.g.
// "heavy-hex-399-holes8" (the base lattice with k couplers knocked out
// by WithHoles). Unknown families and out-of-range sizes are errors
// that list the valid families and bounds.
func ByName(name string) (*Topology, error) {
	if base, k, ok := splitHoles(name); ok {
		t, err := ByName(base)
		if err != nil {
			return nil, err
		}
		return WithHoles(t, k)
	}
	for _, f := range Families() {
		prefix := f.Name + "-"
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(name, prefix))
		if err != nil {
			return nil, fmt.Errorf("topo: bad zoo size in %q (want %s-<qubits>)", name, f.Name)
		}
		if n < f.MinQubits || n > f.MaxQubits {
			return nil, fmt.Errorf("topo: %s size %d out of range [%d, %d]", f.Name, n, f.MinQubits, f.MaxQubits)
		}
		return f.Build(n), nil
	}
	names := make([]string, len(Families()))
	for i, f := range Families() {
		names[i] = f.Name
	}
	return nil, fmt.Errorf("topo: unknown zoo topology %q (families: %s; form <family>-<qubits>)",
		name, strings.Join(names, ", "))
}

// splitHoles parses the "-holes<k>" defect suffix: "grid-25-holes3" →
// ("grid-25", 3, true). k must be a positive integer; anything else is
// left for the family parser to reject.
func splitHoles(name string) (base string, k int, ok bool) {
	i := strings.LastIndex(name, "-holes")
	if i < 0 {
		return "", 0, false
	}
	k, err := strconv.Atoi(name[i+len("-holes"):])
	if err != nil || k < 1 {
		return "", 0, false
	}
	return name[:i], k, true
}

// WithHoles returns t with k couplers removed — the defect model for
// fabrication dropouts and disabled two-qubit gates that real lattices
// accumulate. Removal is deterministic (the candidate order is a
// SplitMix64 shuffle seeded from the base topology's name, so a given
// name always loses the same couplers) and connectivity-preserving: a
// coupler whose removal would disconnect the machine is skipped. Asking
// for more holes than the lattice can spare — a tree has zero removable
// edges — is an error rather than a silently shallower knockout. The
// result is named "<base>-holes<k>".
func WithHoles(t *Topology, k int) (*Topology, error) {
	if k < 1 {
		return nil, fmt.Errorf("topo: holes count must be ≥ 1, got %d", k)
	}
	// Fisher–Yates over the coupling indices, driven by the SplitMix64
	// finalizer seeded from the lattice name.
	order := make([]int, len(t.Couplings))
	for i := range order {
		order[i] = i
	}
	seed := fnv64(t.Name)
	next := func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := len(order) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}

	removed := make([]bool, len(t.Couplings))
	connected := func() bool {
		g := graphx.New(t.NumQubits)
		for i, c := range t.Couplings {
			if !removed[i] {
				g.AddEdge(c.A, c.B, 1)
			}
		}
		return g.Connected(nil)
	}
	holes := 0
	for _, i := range order {
		if holes == k {
			break
		}
		removed[i] = true
		if connected() {
			holes++
		} else {
			removed[i] = false
		}
	}
	if holes < k {
		return nil, fmt.Errorf("topo: %s has only %d removable couplers, cannot knock out %d", t.Name, holes, k)
	}
	keep := make([]Coupling, 0, len(t.Couplings)-k)
	for i, c := range t.Couplings {
		if !removed[i] {
			keep = append(keep, c)
		}
	}
	return New(fmt.Sprintf("%s-holes%d", t.Name, k), t.NumQubits, keep)
}

// fnv64 is the FNV-1a fold of a lattice name into the hole-shuffle
// seed (the same fold package calib uses for name→seed derivation).
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// HeavyHex returns an IBM-style heavy-hexagon lattice with exactly n
// qubits, named "heavy-hex-<n>". Chain rows of width ~√(0.8n) alternate
// with rows of degree-2 bridge qubits; bridges sit every 4 columns with
// the offset alternating between 0 and 2, which is what closes the
// 12-link heavy hexagons and keeps every qubit at degree ≤ 3. Qubits
// are numbered in emission order, chosen so that every qubit couples to
// at least one lower-numbered qubit — truncating the lattice at any n
// therefore always yields a connected machine.
func HeavyHex(n int) *Topology {
	if n < 2 {
		panic(fmt.Sprintf("topo: heavy-hex needs ≥ 2 qubits, got %d", n))
	}
	w := int(math.Round(math.Sqrt(0.8 * float64(n))))
	if w < 4 {
		w = 4
	}
	var cp []Coupling
	link := func(a, b int) { cp = append(cp, Coupling{A: a, B: b}) }
	id := 0
	emit := func() int { q := id; id++; return q }

	prev := make([]int, w) // previous chain row, by column
	cur := make([]int, w)
	bridge := make([]int, w)
	// Chain row 0, left to right.
	for j := 0; j < w && id < n; j++ {
		cur[j] = emit()
		if j > 0 {
			link(cur[j-1], cur[j])
		}
	}
	for gap := 0; id < n; gap++ {
		// A gap iteration only starts with id < n, which means the chain
		// row above completed in full — every prev[j] is valid.
		copy(prev, cur)
		off := 0
		if gap%2 == 1 {
			off = 2
		}
		for j := range bridge {
			bridge[j] = -1
		}
		for j := off; j < w && id < n; j += 4 {
			bridge[j] = emit()
			link(prev[j], bridge[j])
		}
		if id >= n {
			break
		}
		// Next chain row, emitted outward from the first bridge so a
		// truncated row stays connected: the column under the bridge
		// first, then leftward, then rightward.
		cur[off] = emit()
		link(bridge[off], cur[off])
		for j := off - 1; j >= 0 && id < n; j-- {
			cur[j] = emit()
			link(cur[j], cur[j+1])
		}
		for j := off + 1; j < w && id < n; j++ {
			cur[j] = emit()
			link(cur[j-1], cur[j])
			if bridge[j] != -1 {
				link(bridge[j], cur[j])
			}
		}
	}
	return MustNew(fmt.Sprintf("heavy-hex-%d", n), n, cp)
}

// SquareGrid returns a near-square 2D mesh with exactly n qubits, named
// "grid-<n>": ⌈√n⌉ columns, row-major numbering, the last row truncated
// to reach n exactly (every qubit couples left and up, so truncation
// preserves connectivity).
func SquareGrid(n int) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("topo: grid needs ≥ 1 qubit, got %d", n))
	}
	c := int(math.Ceil(math.Sqrt(float64(n))))
	var cp []Coupling
	for q := 0; q < n; q++ {
		if q%c > 0 {
			cp = append(cp, Coupling{A: q - 1, B: q})
		}
		if q >= c {
			cp = append(cp, Coupling{A: q - c, B: q})
		}
	}
	return MustNew(fmt.Sprintf("grid-%d", n), n, cp)
}

// Ring returns the n-qubit cycle 0–1–…–(n−1)–0, named "ring-<n>"; the
// parametric generalization of the paper's Figure 1 teaching machine.
func Ring(n int) *Topology {
	if n < 3 {
		panic(fmt.Sprintf("topo: ring needs ≥ 3 qubits, got %d", n))
	}
	cp := make([]Coupling, 0, n)
	for i := 0; i+1 < n; i++ {
		cp = append(cp, Coupling{A: i, B: i + 1})
	}
	cp = append(cp, Coupling{A: 0, B: n - 1})
	return MustNew(fmt.Sprintf("ring-%d", n), n, cp)
}

// AllToAll returns the idealized fully connected machine under the zoo
// naming scheme ("full-<n>"; compare FullyConnected, whose "full<n>"
// names predate the zoo).
func AllToAll(n int) *Topology {
	var cp []Coupling
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cp = append(cp, Coupling{A: i, B: j})
		}
	}
	return MustNew(fmt.Sprintf("full-%d", n), n, cp)
}
