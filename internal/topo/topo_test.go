package topo

import (
	"testing"
)

func TestIBMQ20Shape(t *testing.T) {
	q20 := IBMQ20()
	if q20.NumQubits != 20 {
		t.Fatalf("NumQubits = %d, want 20", q20.NumQubits)
	}
	if got := len(q20.Couplings); got != 38 {
		t.Fatalf("couplings = %d, want 38", got)
	}
	if got := q20.NumLinks(); got != 76 {
		t.Fatalf("NumLinks = %d, want 76 (paper's IBM-Q20 link count)", got)
	}
	if !q20.Connected() {
		t.Fatal("IBM-Q20 must be connected")
	}
}

func TestIBMQ20PaperLinks(t *testing.T) {
	q20 := IBMQ20()
	// Links named in the paper's figures must exist.
	for _, pair := range [][2]int{{5, 6}, {5, 11}, {13, 19}, {14, 18}} {
		if !q20.Adjacent(pair[0], pair[1]) {
			t.Errorf("expected coupling %d-%d", pair[0], pair[1])
		}
	}
	// A few non-edges.
	for _, pair := range [][2]int{{0, 19}, {0, 6}, {4, 5}} {
		if q20.Adjacent(pair[0], pair[1]) {
			t.Errorf("unexpected coupling %d-%d", pair[0], pair[1])
		}
	}
}

func TestIBMQ5Shape(t *testing.T) {
	q5 := IBMQ5()
	if q5.NumQubits != 5 || len(q5.Couplings) != 6 {
		t.Fatalf("Q5: qubits=%d couplings=%d, want 5/6", q5.NumQubits, len(q5.Couplings))
	}
	if !q5.Connected() {
		t.Fatal("IBM-Q5 must be connected")
	}
	// Q2 is the bow-tie center: degree 4.
	if d := q5.Graph(1).Degree(2); d != 4 {
		t.Fatalf("center degree = %d, want 4", d)
	}
}

func TestIBMQ16Shape(t *testing.T) {
	q16 := IBMQ16()
	if q16.NumQubits != 16 {
		t.Fatalf("Q16 qubits = %d, want 16", q16.NumQubits)
	}
	// 2×8 ladder: 2 rows × 7 horizontal + 8 rungs = 22 couplings.
	if len(q16.Couplings) != 22 {
		t.Fatalf("Q16 couplings = %d, want 22", len(q16.Couplings))
	}
	if !q16.Connected() {
		t.Fatal("Q16 must be connected")
	}
	if !q16.Adjacent(0, 8) || !q16.Adjacent(7, 15) || q16.Adjacent(0, 15) {
		t.Fatal("Q16 ladder rungs wrong")
	}
}

func TestRing5(t *testing.T) {
	r := Ring5()
	g := r.Graph(1)
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("ring degree of %d = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestGridShape(t *testing.T) {
	m := Mesh2x3()
	if m.NumQubits != 6 {
		t.Fatalf("mesh qubits = %d, want 6", m.NumQubits)
	}
	// 2x3 grid: 2 rows×2 horizontal + 3 vertical = 7 edges.
	if len(m.Couplings) != 7 {
		t.Fatalf("mesh couplings = %d, want 7", len(m.Couplings))
	}
	if !m.Adjacent(0, 1) || !m.Adjacent(0, 3) || m.Adjacent(0, 4) {
		t.Fatal("mesh adjacency wrong")
	}
}

func TestLinear(t *testing.T) {
	l := Linear(4)
	if len(l.Couplings) != 3 || !l.Connected() {
		t.Fatalf("linear4 wrong: %+v", l)
	}
	if l.Adjacent(0, 2) {
		t.Fatal("non-neighbors adjacent on a chain")
	}
	if single := Linear(1); len(single.Couplings) != 0 || !single.Connected() {
		t.Fatal("single-qubit chain should have no couplings and be connected")
	}
}

func TestFullyConnected(t *testing.T) {
	f := FullyConnected(5)
	if len(f.Couplings) != 10 {
		t.Fatalf("K5 couplings = %d, want 10", len(f.Couplings))
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if !f.Adjacent(i, j) {
				t.Fatalf("missing edge %d-%d", i, j)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 2, []Coupling{{0, 0}}); err == nil {
		t.Error("self-coupling accepted")
	}
	if _, err := New("bad", 2, []Coupling{{0, 5}}); err == nil {
		t.Error("out-of-range coupling accepted")
	}
	if _, err := New("bad", 3, []Coupling{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate (reversed) coupling accepted")
	}
	if _, err := New("bad", 2, []Coupling{{-1, 0}}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestNewNormalizesAndSorts(t *testing.T) {
	tp, err := New("n", 4, []Coupling{{3, 2}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Couplings[0] != (Coupling{0, 1}) || tp.Couplings[1] != (Coupling{2, 3}) {
		t.Fatalf("couplings not normalized/sorted: %v", tp.Couplings)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid topology")
		}
	}()
	MustNew("bad", 1, []Coupling{{0, 1}})
}

func TestGraphWeights(t *testing.T) {
	g := IBMQ5().Graph(0.25)
	if w, ok := g.Weight(0, 1); !ok || w != 0.25 {
		t.Fatalf("weight = %v,%v", w, ok)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
}

func TestAdjacentSymmetric(t *testing.T) {
	q := IBMQ20()
	for _, c := range q.Couplings {
		if !q.Adjacent(c.A, c.B) || !q.Adjacent(c.B, c.A) {
			t.Fatalf("adjacency not symmetric for %v", c)
		}
	}
}
