package device

import (
	"testing"

	"vaq/internal/calib"
	"vaq/internal/topo"
)

func fpDevice(t *testing.T, mutate func(*calib.Snapshot)) *Device {
	t.Helper()
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = 0.03
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.02
		s.T1Us[q], s.T2Us[q] = 60, 30
	}
	if mutate != nil {
		mutate(s)
	}
	d, err := New(tp, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFingerprintIdentity: the fingerprint is a pure function of the
// calibration data — two Device values wrapping equal data digest equal,
// and repeated calls are stable (it is computed once and memoized).
func TestFingerprintIdentity(t *testing.T) {
	a := fpDevice(t, nil)
	b := fpDevice(t, nil)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical calibration data produced different fingerprints")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
}

// TestFingerprintSensitivity: any calibration figure moving must move the
// fingerprint — this is what guarantees the routing cost cache can never
// serve stale tables after a recalibration.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpDevice(t, nil).Fingerprint()
	cases := []struct {
		name   string
		mutate func(*calib.Snapshot)
	}{
		{"link error", func(s *calib.Snapshot) { s.SetTwoQubitError(0, 1, 0.031) }},
		{"gate error", func(s *calib.Snapshot) { s.OneQubit[2] = 0.002 }},
		{"readout error", func(s *calib.Snapshot) { s.Readout[4] = 0.05 }},
		{"coherence", func(s *calib.Snapshot) { s.T1Us[0] = 61 }},
	}
	for _, tc := range cases {
		if fpDevice(t, tc.mutate).Fingerprint() == base {
			t.Errorf("%s change left the fingerprint unchanged", tc.name)
		}
	}
}

// TestFingerprintRestrict: a restricted sub-device is a different machine
// (own topology, subset of calibration) and must fingerprint differently.
func TestFingerprintRestrict(t *testing.T) {
	arch := calib.Generate(calib.DefaultQ20Config(3))
	d := MustNew(arch.Topo, arch.MustMean())
	sub, _, err := d.Restrict([]int{0, 1, 2, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Fingerprint() == d.Fingerprint() {
		t.Fatal("restricted device shares the full device's fingerprint")
	}
}
