package device

import (
	"fmt"
	"sort"

	"vaq/internal/calib"
	"vaq/internal/topo"
)

// Restrict returns a sub-device over the given physical qubits (the
// Section 8 partitioning primitive): the topology keeps only couplings
// with both endpoints inside the set, qubits are re-indexed 0..k−1 in
// ascending original order, and the calibration figures are carried over.
// The returned slice maps new index → original physical qubit.
func (d *Device) Restrict(qubits []int) (*Device, []int, error) {
	if len(qubits) == 0 {
		return nil, nil, fmt.Errorf("device: empty restriction")
	}
	orig := append([]int(nil), qubits...)
	sort.Ints(orig)
	newIndex := make(map[int]int, len(orig))
	for i, q := range orig {
		if q < 0 || q >= d.NumQubits() {
			return nil, nil, fmt.Errorf("device: qubit %d out of range", q)
		}
		if _, dup := newIndex[q]; dup {
			return nil, nil, fmt.Errorf("device: duplicate qubit %d in restriction", q)
		}
		newIndex[q] = i
	}

	var couplings []topo.Coupling
	for _, c := range d.topo.Couplings {
		a, okA := newIndex[c.A]
		b, okB := newIndex[c.B]
		if okA && okB {
			couplings = append(couplings, topo.Coupling{A: a, B: b})
		}
	}
	name := fmt.Sprintf("%s[%d]", d.topo.Name, len(orig))
	sub, err := topo.New(name, len(orig), couplings)
	if err != nil {
		return nil, nil, err
	}

	snap := calib.NewSnapshot(sub)
	snap.Cycle, snap.Day = d.snap.Cycle, d.snap.Day
	for _, c := range sub.Couplings {
		snap.SetTwoQubitError(c.A, c.B, d.snap.MustTwoQubitError(orig[c.A], orig[c.B]))
	}
	for i, q := range orig {
		snap.OneQubit[i] = d.snap.OneQubit[q]
		snap.Readout[i] = d.snap.Readout[q]
		snap.T1Us[i] = d.snap.T1Us[q]
		snap.T2Us[i] = d.snap.T2Us[q]
	}
	restricted, err := New(sub, snap)
	if err != nil {
		return nil, nil, err
	}
	return restricted, orig, nil
}
