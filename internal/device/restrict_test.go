package device

import (
	"testing"

	"vaq/internal/calib"
)

func q20ForRestrict(t *testing.T) *Device {
	t.Helper()
	arch := calib.Generate(calib.DefaultQ20Config(2))
	return MustNew(arch.Topo, arch.MustMean())
}

func TestRestrictBasics(t *testing.T) {
	d := q20ForRestrict(t)
	sub, orig, err := d.Restrict([]int{0, 1, 2, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumQubits() != 5 {
		t.Fatalf("sub qubits = %d, want 5", sub.NumQubits())
	}
	if len(orig) != 5 || orig[0] != 0 || orig[4] != 6 {
		t.Fatalf("orig = %v", orig)
	}
	// Carried-over calibration: link 0-1 exists on both devices with the
	// same error rate.
	if got, want := sub.Snapshot().MustTwoQubitError(0, 1), d.Snapshot().MustTwoQubitError(0, 1); got != want {
		t.Fatalf("restricted link error = %v, want %v", got, want)
	}
	// Qubit figures carried by original index: sub qubit 3 is original 5.
	if got, want := sub.Snapshot().T1Us[3], d.Snapshot().T1Us[5]; got != want {
		t.Fatalf("restricted T1 = %v, want %v", got, want)
	}
}

func TestRestrictDropsCrossCouplings(t *testing.T) {
	d := q20ForRestrict(t)
	sub, _, err := d.Restrict([]int{0, 1}) // original coupling 0-1 only
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Topology().Couplings) != 1 {
		t.Fatalf("couplings = %v", sub.Topology().Couplings)
	}
}

func TestRestrictUnsortedInput(t *testing.T) {
	d := q20ForRestrict(t)
	sub, orig, err := d.Restrict([]int{6, 0, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if orig[0] != 0 || orig[3] != 6 {
		t.Fatalf("orig not sorted: %v", orig)
	}
	if sub.NumQubits() != 4 {
		t.Fatal("size wrong")
	}
}

func TestRestrictErrors(t *testing.T) {
	d := q20ForRestrict(t)
	if _, _, err := d.Restrict(nil); err == nil {
		t.Fatal("empty restriction accepted")
	}
	if _, _, err := d.Restrict([]int{0, 25}); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
	if _, _, err := d.Restrict([]int{3, 3}); err == nil {
		t.Fatal("duplicate qubit accepted")
	}
}

func TestRestrictIsolatedSubsetStillValid(t *testing.T) {
	// Qubits 0 and 19 share no coupling: the sub-device exists but is
	// disconnected (routing will reject it later).
	d := q20ForRestrict(t)
	sub, _, err := d.Restrict([]int{0, 19})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Topology().Connected() {
		t.Fatal("0/19 subset should be disconnected")
	}
}
