package device

import (
	"math"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/gate"
	"vaq/internal/topo"
)

// testDevice builds a Tenerife device with uniform link error e.
func testDevice(t *testing.T, e float64) *Device {
	t.Helper()
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp)
	for _, c := range tp.Couplings {
		s.TwoQubit[c] = e
	}
	for q := 0; q < tp.NumQubits; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q] = 80
		s.T2Us[q] = 40
	}
	d, err := New(tp, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsMismatchedTopology(t *testing.T) {
	s := calib.NewSnapshot(topo.IBMQ5())
	if _, err := New(topo.IBMQ20(), s); err == nil {
		t.Fatal("mismatched topology accepted")
	}
}

func TestNewRejectsInvalidSnapshot(t *testing.T) {
	tp := topo.IBMQ5()
	s := calib.NewSnapshot(tp) // T1/T2 all zero → invalid
	if _, err := New(tp, s); err == nil {
		t.Fatal("invalid snapshot accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(topo.IBMQ20(), calib.NewSnapshot(topo.IBMQ5()))
}

func TestSuccessProbabilities(t *testing.T) {
	d := testDevice(t, 0.1)
	if got := d.CNOTSuccess(0, 1); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("CNOTSuccess = %v, want 0.9", got)
	}
	if got := d.SwapSuccess(0, 1); math.Abs(got-0.9*0.9*0.9) > 1e-12 {
		t.Fatalf("SwapSuccess = %v, want 0.729", got)
	}
	if got := d.OneQubitSuccess(2); math.Abs(got-0.999) > 1e-12 {
		t.Fatalf("OneQubitSuccess = %v", got)
	}
	if got := d.ReadoutSuccess(4); math.Abs(got-0.97) > 1e-12 {
		t.Fatalf("ReadoutSuccess = %v", got)
	}
}

func TestSwapCostIsNegLogSuccess(t *testing.T) {
	d := testDevice(t, 0.05)
	cost := d.SwapCost(2, 3)
	if got := RouteSuccess(cost); math.Abs(got-d.SwapSuccess(2, 3)) > 1e-12 {
		t.Fatalf("RouteSuccess(SwapCost) = %v, want %v", got, d.SwapSuccess(2, 3))
	}
	if cost <= 0 {
		t.Fatal("swap cost must be positive for nonzero error")
	}
}

func TestGateSuccessByClass(t *testing.T) {
	d := testDevice(t, 0.1)
	cases := []struct {
		k    gate.Kind
		qs   []int
		want float64
	}{
		{gate.Barrier, []int{0}, 1},
		{gate.I, []int{0}, 1},
		{gate.H, []int{0}, 0.999},
		{gate.CX, []int{0, 1}, 0.9},
		{gate.SWAP, []int{0, 1}, 0.729},
		{gate.Measure, []int{0}, 0.97},
	}
	for _, tc := range cases {
		if got := d.GateSuccess(tc.k, tc.qs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("GateSuccess(%v) = %v, want %v", tc.k, got, tc.want)
		}
	}
}

func TestCNOTSuccessNonCouplingPanics(t *testing.T) {
	d := testDevice(t, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("CNOTSuccess on non-coupling did not panic")
		}
	}()
	d.CNOTSuccess(0, 3) // 0 and 3 are not coupled on Tenerife
}

func TestHopDistance(t *testing.T) {
	d := testDevice(t, 0.1)
	if got := d.HopDistance(0, 3); got != 2 {
		t.Fatalf("HopDistance(0,3) = %v, want 2", got)
	}
	if got := d.HopDistance(1, 1); got != 0 {
		t.Fatalf("HopDistance(1,1) = %v, want 0", got)
	}
}

func TestCostDistanceUniformMatchesHops(t *testing.T) {
	d := testDevice(t, 0.1)
	perSwap := d.SwapCost(0, 1)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			want := d.HopDistance(a, b) * perSwap
			if got := d.CostDistance(a, b); math.Abs(got-want) > 1e-9 {
				t.Fatalf("CostDistance(%d,%d) = %v, want %v (uniform errors)", a, b, got, want)
			}
		}
	}
}

func TestCostDistancePrefersReliableDetour(t *testing.T) {
	// Ring of 5 (paper Fig. 1): direct 2-hop route with weak links vs
	// 3-hop route with strong links.
	tp := topo.Ring5()
	s := calib.NewSnapshot(tp)
	weak, strong := 0.25, 0.02
	s.SetTwoQubitError(0, 1, weak)
	s.SetTwoQubitError(1, 2, weak)
	s.SetTwoQubitError(0, 4, strong)
	s.SetTwoQubitError(3, 4, strong)
	s.SetTwoQubitError(2, 3, strong)
	for q := 0; q < 5; q++ {
		s.OneQubit[q] = 0.001
		s.Readout[q] = 0.03
		s.T1Us[q], s.T2Us[q] = 80, 40
	}
	d := MustNew(tp, s)
	// Reliability distance from 0 to 2 should take the long way round.
	direct := 2 * d.SwapCost(0, 1)
	detour := d.SwapCost(0, 4) + d.SwapCost(4, 3) + d.SwapCost(3, 2)
	if detour >= direct {
		t.Fatal("test setup wrong: detour should be cheaper")
	}
	if got := d.CostDistance(0, 2); math.Abs(got-detour) > 1e-9 {
		t.Fatalf("CostDistance(0,2) = %v, want detour cost %v", got, detour)
	}
}

func TestScaleReducesErrors(t *testing.T) {
	d := testDevice(t, 0.1)
	scaled := d.Scale(0.1, 1)
	if got := scaled.Snapshot().MustTwoQubitError(0, 1); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("scaled link error = %v, want 0.01", got)
	}
	// Original unchanged.
	if got := d.Snapshot().MustTwoQubitError(0, 1); got != 0.1 {
		t.Fatal("Scale mutated the original device")
	}
}

func TestGraphCaching(t *testing.T) {
	d := testDevice(t, 0.1)
	if d.HopGraph() != d.HopGraph() {
		t.Fatal("HopGraph not cached")
	}
	if d.CostGraph() != d.CostGraph() {
		t.Fatal("CostGraph not cached")
	}
}

func TestReliabilityGraphWeights(t *testing.T) {
	d := testDevice(t, 0.1)
	g := d.ReliabilityGraph()
	if w, ok := g.Weight(0, 1); !ok || math.Abs(w-0.9) > 1e-12 {
		t.Fatalf("reliability weight = %v,%v", w, ok)
	}
}

func TestSwapOverheadCost(t *testing.T) {
	d := testDevice(t, 0.05)
	got := d.SwapOverheadCost()
	// 5 qubits × (1/80 + 1/40) per µs × 0.9µs × duty 0.05.
	want := 0.05 * 0.9 * 5 * (1.0/80 + 1.0/40)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SwapOverheadCost = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Fatal("overhead must be positive")
	}
}
