// Package device combines a coupling topology with one calibration
// snapshot into the cost model every policy consumes: per-link CNOT and
// SWAP success probabilities, the −log(success) edge weights that turn
// "maximize route reliability" into a shortest-path problem, and the
// distance matrices (hop-based for the baseline, reliability-based for
// VQM) the mappers search over.
package device

import (
	"fmt"
	"math"
	"sync"

	"vaq/internal/calib"
	"vaq/internal/gate"
	"vaq/internal/graphx"
	"vaq/internal/topo"
)

// Device is an immutable pairing of a topology with a calibration
// snapshot. Construct with New; the accessors lazily build and cache the
// derived graphs and matrices, so a Device is cheap to create and the
// expensive all-pairs computations happen at most once. The caches are
// sync.Once-guarded, so a Device is safe to share across the concurrent
// compilations the experiment fan-out performs.
type Device struct {
	topo *topo.Topology
	snap *calib.Snapshot

	hopGraphOnce  sync.Once
	costGraphOnce sync.Once
	hopDistOnce   sync.Once
	costDistOnce  sync.Once
	fpOnce        sync.Once
	hopGraph      *graphx.Graph
	costGraph     *graphx.Graph
	hopDist       [][]float64
	costDist      [][]float64
	fp            uint64
}

// New validates the snapshot against the topology and returns a Device.
func New(t *topo.Topology, s *calib.Snapshot) (*Device, error) {
	if s.Topo != t {
		return nil, fmt.Errorf("device: snapshot is for topology %q, not %q", s.Topo.Name, t.Name)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("device: %w", err)
	}
	return &Device{topo: t, snap: s}, nil
}

// MustNew is New for known-good inputs; it panics on error.
func MustNew(t *topo.Topology, s *calib.Snapshot) *Device {
	d, err := New(t, s)
	if err != nil {
		panic(err)
	}
	return d
}

// Topology returns the underlying coupling map.
func (d *Device) Topology() *topo.Topology { return d.topo }

// Snapshot returns the calibration snapshot the device was built from.
func (d *Device) Snapshot() *calib.Snapshot { return d.snap }

// NumQubits returns the number of physical qubits.
func (d *Device) NumQubits() int { return d.topo.NumQubits }

// CNOTSuccess returns the success probability of one CNOT across the a–b
// coupling. It panics when a and b are not coupled.
func (d *Device) CNOTSuccess(a, b int) float64 {
	return 1 - d.snap.MustTwoQubitError(a, b)
}

// SwapSuccess returns the success probability of a SWAP across the a–b
// coupling: three CNOTs back to back, (1−e)³.
func (d *Device) SwapSuccess(a, b int) float64 {
	p := d.CNOTSuccess(a, b)
	return p * p * p
}

// SwapCost returns −ln(SwapSuccess(a,b)): the additive reliability cost of
// one SWAP, the edge weight of VQM's search graph. Minimizing the sum of
// these costs maximizes the product of success probabilities.
func (d *Device) SwapCost(a, b int) float64 {
	return -math.Log(d.SwapSuccess(a, b))
}

// OneQubitSuccess returns the success probability of a single-qubit gate
// on physical qubit q.
func (d *Device) OneQubitSuccess(q int) float64 { return 1 - d.snap.OneQubit[q] }

// ReadoutSuccess returns the success probability of measuring qubit q.
func (d *Device) ReadoutSuccess(q int) float64 { return 1 - d.snap.Readout[q] }

// GateSuccess returns the success probability of applying kind k to the
// physical qubits qs (already mapped). Two-qubit kinds require qs[0] and
// qs[1] to be coupled.
func (d *Device) GateSuccess(k gate.Kind, qs []int) float64 {
	switch k.Class() {
	case gate.NoError:
		return 1
	case gate.TwoQubit:
		if k == gate.SWAP {
			return d.SwapSuccess(qs[0], qs[1])
		}
		return d.CNOTSuccess(qs[0], qs[1])
	case gate.Readout:
		return d.ReadoutSuccess(qs[0])
	default:
		return d.OneQubitSuccess(qs[0])
	}
}

// HopGraph returns the coupling graph with unit edge weights: the baseline
// policy's view, where every SWAP costs the same.
func (d *Device) HopGraph() *graphx.Graph {
	d.hopGraphOnce.Do(func() { d.hopGraph = d.topo.Graph(1) })
	return d.hopGraph
}

// CostGraph returns the coupling graph weighted by SwapCost: VQM's view.
func (d *Device) CostGraph() *graphx.Graph {
	d.costGraphOnce.Do(func() {
		g := graphx.New(d.topo.NumQubits)
		for _, c := range d.topo.Couplings {
			g.AddEdge(c.A, c.B, d.SwapCost(c.A, c.B))
		}
		d.costGraph = g
	})
	return d.costGraph
}

// ReliabilityGraph returns the coupling graph weighted by CNOT success
// probability — the node-strength view used by VQA (higher is better).
func (d *Device) ReliabilityGraph() *graphx.Graph {
	g := graphx.New(d.topo.NumQubits)
	for _, c := range d.topo.Couplings {
		g.AddEdge(c.A, c.B, d.CNOTSuccess(c.A, c.B))
	}
	return g
}

// HopDistance returns the minimum number of SWAP-capable hops between a
// and b (the baseline's distance matrix entry).
func (d *Device) HopDistance(a, b int) float64 {
	d.hopDistOnce.Do(func() { d.hopDist = d.HopGraph().AllPairsHops() })
	return d.hopDist[a][b]
}

// CostDistance returns the minimum total SwapCost between a and b (VQM's
// distance matrix entry, computed with Dijkstra as in Algorithm 1).
func (d *Device) CostDistance(a, b int) float64 {
	d.costDistOnce.Do(func() { d.costDist = d.CostGraph().AllPairsDijkstra() })
	return d.costDist[a][b]
}

// Fingerprint returns a 64-bit digest of everything a routing or
// allocation cost table can depend on: the topology (name, size, coupling
// list) and every calibration figure of the snapshot (link/gate/readout
// error rates and coherence times). Two Devices with equal fingerprints
// are interchangeable for cost-table construction, so per-device caches —
// in particular the routing cost cache in internal/route — key on it.
// Recalibration (a new snapshot) or restriction (a sub-topology) produces
// a different fingerprint, which is how those caches invalidate.
//
// The digest is computed once (a Device is an immutable pairing; see the
// type comment) with FNV-1a over the raw float64 bits, so it is exact:
// any bit change in any rate changes the fingerprint.
func (d *Device) Fingerprint() uint64 {
	d.fpOnce.Do(func() {
		h := uint64(14695981039346656037) // FNV-1a offset basis
		mix := func(x uint64) {
			for i := 0; i < 8; i++ {
				h ^= x & 0xff
				h *= 1099511628211 // FNV-1a prime
				x >>= 8
			}
		}
		for _, b := range []byte(d.topo.Name) {
			h ^= uint64(b)
			h *= 1099511628211
		}
		mix(uint64(d.topo.NumQubits))
		for _, c := range d.topo.Couplings {
			mix(uint64(c.A))
			mix(uint64(c.B))
		}
		for _, c := range d.topo.Couplings {
			mix(math.Float64bits(d.snap.TwoQubit[c]))
		}
		for _, vs := range [][]float64{d.snap.OneQubit, d.snap.Readout, d.snap.T1Us, d.snap.T2Us} {
			for _, v := range vs {
				mix(math.Float64bits(v))
			}
		}
		d.fp = h
	})
	return d.fp
}

// RouteSuccess converts an additive reliability cost back into a success
// probability.
func RouteSuccess(cost float64) float64 { return math.Exp(-cost) }

// CoherenceDuty is the fraction of idle wall-clock time charged against
// T1/T2 throughout the repository (see package sim for its calibration
// against the paper's "gate errors are 16x more likely than coherence
// errors" figure).
const CoherenceDuty = 0.05

// SwapOverheadCost returns the marginal decoherence hazard of extending
// the schedule by one SWAP (three back-to-back CNOTs): every qubit inside
// its active window idles for the extra duration and decays against its
// T1/T2. The estimate charges half the machine's qubits (the average
// occupancy of active windows). Adding this to the per-SWAP reliability
// cost makes the router account for the time its detours cost — without
// it, a deep circuit's layer-local detours compound into schedules whose
// decoherence (and displacement) outweigh the per-route gains.
func (d *Device) SwapOverheadCost() float64 {
	rate := 0.0 // per-microsecond decay hazard summed over qubits
	for q := 0; q < d.topo.NumQubits; q++ {
		rate += 1/d.snap.T1Us[q] + 1/d.snap.T2Us[q]
	}
	swapUs := gate.DurationSwap.Seconds() * 1e6
	return CoherenceDuty * swapUs * rate
}

// Scale returns a new Device whose gate/readout error rates are
// transformed by calib.Snapshot.ScaleErrors — the Table 2 sensitivity knob.
func (d *Device) Scale(meanFactor, covMultiplier float64) *Device {
	return MustNew(d.topo, d.snap.ScaleErrors(meanFactor, covMultiplier))
}
