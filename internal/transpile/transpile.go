// Package transpile provides circuit-rewriting passes that shrink a
// program before (and after) mapping: cancellation of adjacent inverse
// pairs (H·H, X·X, CX·CX, SWAP·SWAP, S·S†, T·T†), merging of same-axis
// rotations, and removal of trivial gates. Every eliminated gate is one
// fewer chance to fail, so optimization composes with the paper's
// variation-aware policies: first make the circuit small, then map it
// onto the strong qubits.
//
// Passes preserve circuit semantics exactly; the test suite proves it
// with stabilizer-state equivalence on Clifford programs and unitary
// bookkeeping on rotation merges.
package transpile

import (
	"math"

	"vaq/internal/circuit"
	"vaq/internal/gate"
)

// Pass rewrites a circuit into an equivalent (hopefully smaller) one.
// Passes never mutate their input.
type Pass interface {
	Name() string
	Apply(*circuit.Circuit) *circuit.Circuit
}

// inversePairs lists self-inverse kinds and inverse pairs.
func inverses(a, b circuit.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	sameOrdered := true
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			sameOrdered = false
			break
		}
	}
	sameUnordered := sameOrdered
	if !sameUnordered && len(a.Qubits) == 2 {
		sameUnordered = a.Qubits[0] == b.Qubits[1] && a.Qubits[1] == b.Qubits[0]
	}
	switch {
	case a.Kind == b.Kind && selfInverse(a.Kind):
		// CX requires matching control/target; CZ and SWAP are symmetric.
		if a.Kind == gate.CZ || a.Kind == gate.SWAP {
			return sameUnordered
		}
		return sameOrdered
	case a.Kind == gate.S && b.Kind == gate.Sdg, a.Kind == gate.Sdg && b.Kind == gate.S:
		return sameOrdered
	case a.Kind == gate.T && b.Kind == gate.Tdg, a.Kind == gate.Tdg && b.Kind == gate.T:
		return sameOrdered
	}
	return false
}

func selfInverse(k gate.Kind) bool {
	switch k {
	case gate.H, gate.X, gate.Y, gate.Z, gate.CX, gate.CZ, gate.SWAP:
		return true
	}
	return false
}

// CancelInverses removes adjacent inverse pairs: two gates cancel when
// they are inverses of each other and no intervening gate touches any of
// their qubits. The scan uses per-qubit last-gate tracking, so a
// cancellation can expose another (handled by the surrounding fixpoint in
// Optimize).
type CancelInverses struct{}

func (CancelInverses) Name() string { return "cancel-inverses" }

func (CancelInverses) Apply(c *circuit.Circuit) *circuit.Circuit {
	out := make([]circuit.Gate, 0, len(c.Gates))
	removed := make([]bool, 0, len(c.Gates))
	last := make([]int, c.NumQubits) // index into out of last live gate per qubit
	for i := range last {
		last[i] = -1
	}
	for _, g := range c.Gates {
		if g.Kind == gate.Barrier || g.Kind == gate.Measure {
			out = append(out, cloneGate(g))
			removed = append(removed, false)
			for _, q := range g.Qubits {
				last[q] = len(out) - 1
			}
			continue
		}
		// Candidate: the previous live gate must be identical across all
		// operands and must be an inverse.
		cand := -1
		ok := true
		for _, q := range g.Qubits {
			j := liveLast(last[q], removed)
			if cand == -1 {
				cand = j
			}
			if j == -1 || j != cand {
				ok = false
				break
			}
		}
		if ok && cand >= 0 && !removed[cand] &&
			len(out[cand].Qubits) == len(g.Qubits) && inverses(out[cand], g) {
			// The candidate's qubit set must equal g's exactly (a 1q gate
			// following a 2q gate shares history but must not cancel it).
			removed[cand] = true
			continue
		}
		out = append(out, cloneGate(g))
		removed = append(removed, false)
		for _, q := range g.Qubits {
			last[q] = len(out) - 1
		}
	}
	res := circuit.New(c.Name, c.NumQubits)
	res.NumCBits = c.NumCBits
	for i, g := range out {
		if !removed[i] {
			res.Append(g)
		}
	}
	return res
}

// liveLast walks back past removed gates. Because `last` may point at a
// removed entry after a cancellation, resolve to -1 in that case: the
// conservative answer (no candidate) keeps the pass sound; the fixpoint
// loop picks up newly exposed pairs on the next iteration.
func liveLast(idx int, removed []bool) int {
	if idx >= 0 && removed[idx] {
		return -1
	}
	return idx
}

// MergeRotations fuses adjacent same-axis rotations on the same qubit
// (RZ·RZ, RX·RX, RY·RY, U1·U1) by summing angles, and drops rotations
// whose angle is ≡ 0 (mod 2π).
type MergeRotations struct{}

func (MergeRotations) Name() string { return "merge-rotations" }

func (MergeRotations) Apply(c *circuit.Circuit) *circuit.Circuit {
	mergeable := func(k gate.Kind) bool {
		return k == gate.RZ || k == gate.RX || k == gate.RY || k == gate.U1
	}
	out := make([]circuit.Gate, 0, len(c.Gates))
	last := make([]int, c.NumQubits)
	for i := range last {
		last[i] = -1
	}
	for _, g := range c.Gates {
		if mergeable(g.Kind) {
			q := g.Qubits[0]
			if j := last[q]; j >= 0 && out[j].Kind == g.Kind {
				out[j].Param = normalizeAngle(out[j].Param + g.Param)
				continue
			}
		}
		out = append(out, cloneGate(g))
		for _, q := range g.Qubits {
			last[q] = -1
			if mergeable(g.Kind) {
				last[q] = len(out) - 1
			}
		}
	}
	res := circuit.New(c.Name, c.NumQubits)
	res.NumCBits = c.NumCBits
	for _, g := range out {
		if mergeable(g.Kind) && isZeroAngle(g.Param) {
			continue
		}
		res.Append(g)
	}
	return res
}

// RemoveTrivial drops identity gates and zero-angle rotations.
type RemoveTrivial struct{}

func (RemoveTrivial) Name() string { return "remove-trivial" }

func (RemoveTrivial) Apply(c *circuit.Circuit) *circuit.Circuit {
	res := circuit.New(c.Name, c.NumQubits)
	res.NumCBits = c.NumCBits
	for _, g := range c.Gates {
		if g.Kind == gate.I {
			continue
		}
		if g.Kind.Parameterized() && isZeroAngle(g.Param) {
			continue
		}
		res.Append(cloneGate(g))
	}
	return res
}

func normalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

func isZeroAngle(a float64) bool {
	return math.Abs(normalizeAngle(a)) < 1e-12
}

func cloneGate(g circuit.Gate) circuit.Gate {
	qs := make([]int, len(g.Qubits))
	copy(qs, g.Qubits)
	return circuit.Gate{Kind: g.Kind, Qubits: qs, Param: g.Param, CBit: g.CBit}
}

// DefaultPasses is the standard pipeline order.
func DefaultPasses() []Pass {
	return []Pass{RemoveTrivial{}, MergeRotations{}, CancelInverses{}}
}

// Optimize runs the passes to a fixpoint (bounded at 20 rounds, far more
// than any real circuit needs) and returns the rewritten circuit plus the
// number of gates eliminated.
func Optimize(c *circuit.Circuit, passes ...Pass) (*circuit.Circuit, int) {
	if len(passes) == 0 {
		passes = DefaultPasses()
	}
	before := len(c.Gates)
	cur := c
	for round := 0; round < 20; round++ {
		n := len(cur.Gates)
		for _, p := range passes {
			cur = p.Apply(cur)
		}
		if len(cur.Gates) == n {
			break
		}
	}
	return cur, before - len(cur.Gates)
}
