package transpile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vaq/internal/circuit"
	"vaq/internal/gate"
	"vaq/internal/stabilizer"
)

func TestCancelAdjacentHH(t *testing.T) {
	c := circuit.New("hh", 1).H(0).H(0)
	out, removed := Optimize(c)
	if len(out.Gates) != 0 || removed != 2 {
		t.Fatalf("HH not cancelled: %d gates left, %d removed", len(out.Gates), removed)
	}
}

func TestCancelCXPair(t *testing.T) {
	c := circuit.New("cc", 2).CX(0, 1).CX(0, 1)
	out, _ := Optimize(c)
	if len(out.Gates) != 0 {
		t.Fatalf("CX pair not cancelled: %v", out.Gates)
	}
}

func TestCXDirectionMatters(t *testing.T) {
	c := circuit.New("cd", 2).CX(0, 1).CX(1, 0)
	out, _ := Optimize(c)
	if len(out.Gates) != 2 {
		t.Fatalf("reversed CX pair wrongly cancelled: %v", out.Gates)
	}
}

func TestSwapOrderIrrelevant(t *testing.T) {
	c := circuit.New("s", 2).Swap(0, 1).Append(circuit.NewGate2(gate.SWAP, 1, 0))
	out, _ := Optimize(c)
	if len(out.Gates) != 0 {
		t.Fatalf("SWAP pair (reversed operands) not cancelled: %v", out.Gates)
	}
}

func TestSTdgPairs(t *testing.T) {
	c := circuit.New("st", 1).S(0).Sdg(0).T(0).Tdg(0)
	out, _ := Optimize(c)
	if len(out.Gates) != 0 {
		t.Fatalf("S/Sdg and T/Tdg pairs not cancelled: %v", out.Gates)
	}
}

func TestInterveningGateBlocksCancellation(t *testing.T) {
	c := circuit.New("i", 1).H(0).X(0).H(0)
	out, _ := Optimize(c)
	if len(out.Gates) != 3 {
		t.Fatalf("HXH wrongly reduced: %v", out.Gates)
	}
}

func TestDisjointGateDoesNotBlock(t *testing.T) {
	c := circuit.New("d", 2).H(0).X(1).H(0)
	out, _ := Optimize(c)
	if len(out.Gates) != 1 || out.Gates[0].Kind != gate.X {
		t.Fatalf("HH across disjoint X not cancelled: %v", out.Gates)
	}
}

func TestMeasurementBlocksCancellation(t *testing.T) {
	c := circuit.New("m", 1).H(0).Measure(0, 0).H(0)
	out, _ := Optimize(c)
	if len(out.Gates) != 3 {
		t.Fatalf("HH across a measurement wrongly cancelled: %v", out.Gates)
	}
}

func TestCascadingCancellation(t *testing.T) {
	// CX (HH) CX: inner pair cancels, exposing the outer pair.
	c := circuit.New("cas", 2).CX(0, 1).H(0).H(0).CX(0, 1)
	out, removed := Optimize(c)
	if len(out.Gates) != 0 || removed != 4 {
		t.Fatalf("cascade failed: %d left, %d removed", len(out.Gates), removed)
	}
}

func TestOneQubitGateDoesNotCancelTwoQubitGate(t *testing.T) {
	c := circuit.New("x", 2).CX(0, 1).X(0)
	out, _ := Optimize(c)
	if len(out.Gates) != 2 {
		t.Fatalf("mismatched-arity cancellation: %v", out.Gates)
	}
}

func TestMergeRotations(t *testing.T) {
	c := circuit.New("r", 1).RZ(0.3, 0).RZ(0.4, 0)
	out, _ := Optimize(c)
	if len(out.Gates) != 1 {
		t.Fatalf("rotations not merged: %v", out.Gates)
	}
	if math.Abs(out.Gates[0].Param-0.7) > 1e-12 {
		t.Fatalf("merged angle = %v, want 0.7", out.Gates[0].Param)
	}
}

func TestMergeToZeroDropsGate(t *testing.T) {
	c := circuit.New("z", 1).RZ(1.1, 0).RZ(-1.1, 0)
	out, _ := Optimize(c)
	if len(out.Gates) != 0 {
		t.Fatalf("zero-sum rotations survived: %v", out.Gates)
	}
	// Full turn also cancels.
	c2 := circuit.New("z2", 1).RZ(math.Pi, 0).RZ(math.Pi, 0)
	out2, _ := Optimize(c2)
	if len(out2.Gates) != 0 {
		t.Fatalf("2π rotation survived: %v", out2.Gates)
	}
}

func TestMergeBlockedByInterveningGate(t *testing.T) {
	c := circuit.New("b", 1).RZ(0.3, 0).H(0).RZ(0.4, 0)
	out, _ := Optimize(c)
	if len(out.Gates) != 3 {
		t.Fatalf("merge across H: %v", out.Gates)
	}
}

func TestMixedAxesNotMerged(t *testing.T) {
	c := circuit.New("mx", 1).RZ(0.3, 0).RX(0.4, 0)
	out, _ := Optimize(c)
	if len(out.Gates) != 2 {
		t.Fatalf("different axes merged: %v", out.Gates)
	}
}

func TestRemoveTrivial(t *testing.T) {
	c := circuit.New("t", 1).
		Append(circuit.NewGate1(gate.I, 0)).
		RZ(0, 0).
		H(0)
	out, _ := Optimize(c)
	if len(out.Gates) != 1 || out.Gates[0].Kind != gate.H {
		t.Fatalf("trivial gates survived: %v", out.Gates)
	}
}

func TestOptimizePreservesMeasures(t *testing.T) {
	c := circuit.New("m", 2).H(0).CX(0, 1).MeasureAll()
	out, removed := Optimize(c)
	if removed != 0 {
		t.Fatalf("optimizer removed necessary gates: %v", out.Gates)
	}
	if out.Stats().Measures != 2 {
		t.Fatalf("measures lost: %+v", out.Stats())
	}
	if out.NumCBits != c.NumCBits {
		t.Fatal("classical register size changed")
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	c := circuit.New("orig", 1).H(0).H(0)
	Optimize(c)
	if len(c.Gates) != 2 {
		t.Fatal("Optimize mutated its input")
	}
}

func TestOptimizePreservesCliffordSemanticsProperty(t *testing.T) {
	// The decisive test: on random Clifford circuits (with deliberately
	// injected cancelling pairs), the optimized circuit prepares exactly
	// the same stabilizer state.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New("p", n)
		for i := 0; i < 40; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(8) {
			case 0:
				c.H(a)
			case 1:
				c.S(a)
			case 2:
				c.Sdg(a)
			case 3:
				c.X(a)
			case 4:
				c.CX(a, b)
			case 5:
				c.Swap(a, b)
			case 6:
				c.H(a).H(a) // guaranteed fodder for the canceller
			case 7:
				c.CX(a, b).CX(a, b)
			}
		}
		opt, _ := Optimize(c)
		orig, err1 := stabilizer.Run(c)
		rewritten, err2 := stabilizer.Run(opt)
		if err1 != nil || err2 != nil {
			return false
		}
		return stabilizer.Equal(orig, rewritten)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeNeverGrowsCircuitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New("g", n)
		for i := 0; i < 30; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(5) {
			case 0:
				c.H(a)
			case 1:
				c.RZ(rng.Float64()*4-2, a)
			case 2:
				c.CX(a, b)
			case 3:
				c.T(a)
			case 4:
				c.Measure(a, a)
			}
		}
		opt, removed := Optimize(c)
		return len(opt.Gates) <= len(c.Gates) && removed == len(c.Gates)-len(opt.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPassNames(t *testing.T) {
	for _, p := range DefaultPasses() {
		if p.Name() == "" {
			t.Fatal("pass with empty name")
		}
	}
}
