package caldrift

import (
	"os"
	"path/filepath"
	"testing"

	"vaq/internal/calib"
)

// genCycles produces n drifting Q5 calibration cycles from one seed.
func genCycles(t *testing.T, seed int64, n int) []*calib.Snapshot {
	t.Helper()
	cfg := calib.DefaultQ5Config(seed)
	cfg.Days = n
	cfg.CyclesPerDay = 1
	arch := calib.Generate(cfg)
	if len(arch.Snapshots) != n {
		t.Fatalf("generated %d cycles, want %d", len(arch.Snapshots), n)
	}
	return arch.Snapshots
}

func TestStoreAppendWindow(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	snaps := genCycles(t, 7, 4)
	for i, snap := range snaps {
		cyc, err := s.Append("q5", snap)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if cyc != i {
			t.Fatalf("append %d returned cycle %d", i, cyc)
		}
	}
	if got := s.Len("q5"); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	w := s.Window("q5", 2)
	if len(w) != 2 || w[0].Cycle != 2 || w[1].Cycle != 3 {
		t.Fatalf("Window(2) = cycles %v", cyclesOf(w))
	}
	if w := s.Window("q5", 0); len(w) != 4 {
		t.Fatalf("Window(0) returned %d cycles, want whole series", len(w))
	}
	if w := s.Window("q5", 99); len(w) != 4 {
		t.Fatalf("oversized window returned %d cycles", len(w))
	}
	if w := s.Window("nope", 1); w != nil {
		t.Fatalf("unknown device returned %d cycles", len(w))
	}
	if got := s.Devices(); len(got) != 1 || got[0] != "q5" {
		t.Fatalf("Devices = %v", got)
	}
}

func cyclesOf(snaps []*calib.Snapshot) []int {
	out := make([]int, len(snaps))
	for i, s := range snaps {
		out[i] = s.Cycle
	}
	return out
}

func TestStoreRejections(t *testing.T) {
	s, _ := Open("")
	snaps := genCycles(t, 1, 1)
	if _, err := s.Append("../evil", snaps[0]); err == nil {
		t.Fatal("path-traversal device name accepted")
	}
	if _, err := s.Append("q5", nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	// Shape mismatch: a 20-qubit cycle on a 5-qubit series.
	if _, err := s.Append("q5", snaps[0]); err != nil {
		t.Fatal(err)
	}
	q20 := calib.Generate(calib.DefaultQ20Config(1))
	if _, err := s.Append("q5", q20.Snapshots[0]); err == nil {
		t.Fatal("topology-mismatched cycle accepted")
	}
	// An invalid snapshot (negative error rate) is rejected.
	bad := snaps[0].Clone()
	bad.Readout[0] = -0.5
	if _, err := s.Append("q5", bad); err == nil {
		t.Fatal("invalid snapshot accepted")
	}
}

func TestStorePersistAndReload(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := genCycles(t, 11, 3)
	for _, snap := range snaps {
		if _, err := s.Append("q5", snap); err != nil {
			t.Fatal(err)
		}
	}
	// Every acknowledged cycle has a durable envelope.
	files, _ := filepath.Glob(filepath.Join(dir, "q5", "cycle-*.json"))
	if len(files) != 3 {
		t.Fatalf("%d envelopes on disk, want 3", len(files))
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Len("q5"); got != 3 {
		t.Fatalf("reloaded Len = %d, want 3", got)
	}
	// Reloaded cycles carry the same data.
	orig, rel := s.Window("q5", 0), re.Window("q5", 0)
	for i := range orig {
		for _, c := range orig[i].Topo.Couplings {
			if orig[i].TwoQubit[c] != rel[i].TwoQubit[c] {
				t.Fatalf("cycle %d link %v differs after reload", i, c)
			}
		}
	}
	// Appends continue after reload without clobbering envelopes.
	more := genCycles(t, 12, 1)
	cyc, err := re.Append("q5", more[0])
	if err != nil {
		t.Fatal(err)
	}
	if cyc != 3 {
		t.Fatalf("post-reload append returned cycle %d, want 3", cyc)
	}
}

func TestStoreQuarantinesCorruptEnvelope(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for _, snap := range genCycles(t, 3, 3) {
		if _, err := s.Append("q5", snap); err != nil {
			t.Fatal(err)
		}
	}
	victim := filepath.Join(dir, "q5", "cycle-000001.json")
	if err := os.WriteFile(victim, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt envelope failed the whole store: %v", err)
	}
	if got := re.Corrupt(); got != 1 {
		t.Fatalf("Corrupt = %d, want 1", got)
	}
	if got := re.Len("q5"); got != 2 {
		t.Fatalf("Len after quarantine = %d, want 2", got)
	}
	if _, err := os.Stat(victim + ".corrupt"); err != nil {
		t.Fatalf("quarantined file not renamed aside: %v", err)
	}
}

func TestStoreArchiveValidates(t *testing.T) {
	s, _ := Open("")
	for _, snap := range genCycles(t, 5, 3) {
		if _, err := s.Append("q5", snap); err != nil {
			t.Fatal(err)
		}
	}
	arch, ok := s.Archive("q5", 0)
	if !ok {
		t.Fatal("Archive returned no data")
	}
	// Rebinding must leave the archive internally consistent — pointer
	// topology equality included.
	if err := arch.Validate(); err != nil {
		t.Fatalf("stored archive fails calib validation: %v", err)
	}
	if _, ok := s.Archive("nope", 0); ok {
		t.Fatal("Archive for unknown device reported ok")
	}
}
