package caldrift

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/portfolio"
	"vaq/internal/sim"
	"vaq/internal/workloads"
)

// canarySpec keeps canary test runs cheap: reference device only, no
// multi-starts, no optimizer sweep beyond the grid's own axis.
func canarySpec(workers int) CanaryConfig {
	return CanaryConfig{
		Spec: portfolio.Spec{
			RootSeed:     7,
			Cycles:       -1,
			RandomStarts: -1,
			TopK:         1,
			Trials:       500,
			Workers:      workers,
		},
		Workers: workers,
	}
}

// canaryFixture compiles BV(4) on the window's first cycle — the stale
// mapping — then degrades the rest of the window.
func canaryFixture(t *testing.T) (window []*calib.Snapshot, targets []CanaryTarget) {
	t.Helper()
	window = genCycles(t, 13, 4)
	prog := workloads.BV(4)
	d0, err := device.New(window[0].Topo, window[0])
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := core.Compile(d0, prog, core.Options{Policy: core.VQAVQM, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Make the stale mapping's links much worse on later cycles while
	// the rest of the device holds, so recompilation has room to win.
	for _, g := range compiled.Routed.Physical.Gates {
		if len(g.Qubits) != 2 {
			continue
		}
		for _, s := range window[1:] {
			for _, c := range s.Topo.Couplings {
				if (c.A == g.Qubits[0] && c.B == g.Qubits[1]) || (c.A == g.Qubits[1] && c.B == g.Qubits[0]) {
					s.TwoQubit[c] = 0.25
				}
			}
		}
	}
	targets = []CanaryTarget{{Name: "bv4", Prog: prog, Stale: compiled.Routed.Physical}}
	return window, targets
}

func TestCanaryPredictsRecompileGain(t *testing.T) {
	window, targets := canaryFixture(t)
	rep, err := Canary(context.Background(), window, targets, canarySpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Targets != 1 || len(rep.Deltas) != 1 {
		t.Fatalf("report shape: %+v", rep)
	}
	dl := rep.Deltas[0]
	if dl.Err != "" {
		t.Fatalf("canary errored: %s", dl.Err)
	}
	if dl.Delta <= 0 {
		t.Fatalf("recompiling around poisoned links predicted no gain: stale %v recompiled %v",
			dl.StalePST, dl.RecompiledPST)
	}
	if dl.Policy == "" {
		t.Fatal("winning policy not labeled")
	}
	if rep.MaxDelta != dl.Delta || rep.MeanDelta != dl.Delta {
		t.Fatalf("aggregates %v/%v do not match sole delta %v", rep.MeanDelta, rep.MaxDelta, dl.Delta)
	}
	// Sanity: the stale PST the canary reports is the cached mapping
	// scored on the *current* calibration.
	cur, _ := device.New(window[3].Topo, window[3])
	if want := sim.AnalyticPST(cur, targets[0].Stale, sim.Config{}); dl.StalePST != want {
		t.Fatalf("stale PST %v, want %v", dl.StalePST, want)
	}
}

func TestCanaryMaxTargets(t *testing.T) {
	window, targets := canaryFixture(t)
	many := make([]CanaryTarget, 5)
	for i := range many {
		many[i] = targets[0]
	}
	cfg := canarySpec(0)
	cfg.MaxTargets = 2
	rep, err := Canary(context.Background(), window, many, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Targets != 2 || rep.Skipped != 3 {
		t.Fatalf("targets=%d skipped=%d, want 2/3", rep.Targets, rep.Skipped)
	}
}

func TestCanaryBadTarget(t *testing.T) {
	window, _ := canaryFixture(t)
	rep, err := Canary(context.Background(), window, []CanaryTarget{{Name: "empty"}}, canarySpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deltas[0].Err == "" {
		t.Fatal("nil-circuit target produced no error")
	}
	if _, err := Canary(context.Background(), nil, nil, canarySpec(0)); err == nil {
		t.Fatal("empty window accepted")
	}
}

// TestDriftRecompileDeterminism pins the PR's acceptance criterion:
// the full drift report — detection plus canary recompilation — is
// byte-identical at 1, 2, and GOMAXPROCS workers.
func TestDriftRecompileDeterminism(t *testing.T) {
	window, targets := canaryFixture(t)
	var want []byte
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		rep, err := Detect("q5", window, DetectConfig{Threshold: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Triggered {
			t.Fatalf("fixture did not trigger (score %v)", rep.Score)
		}
		canary, err := Canary(context.Background(), window, targets, canarySpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		rep.Canary = canary
		got, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: drift report differs from workers=1", workers)
		}
	}
}
