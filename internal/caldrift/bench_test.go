package caldrift

import (
	"context"
	"testing"

	"vaq/internal/calib"
	"vaq/internal/core"
	"vaq/internal/device"
	"vaq/internal/portfolio"
	"vaq/internal/workloads"
)

// BenchmarkDriftDetect measures one full-device detection pass over an
// 8-cycle Q20 window (363 tracked series).
func BenchmarkDriftDetect(b *testing.B) {
	cfg := calib.DefaultQ20Config(2019)
	cfg.Days, cfg.CyclesPerDay = 8, 1
	window := calib.Generate(cfg).Snapshots
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect("q20", window, DetectConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanaryRecompile measures one canary run: a single hot BV(8)
// circuit speculatively recompiled through a reference-only portfolio
// grid on a drifted Q20 calibration.
func BenchmarkCanaryRecompile(b *testing.B) {
	cfg := calib.DefaultQ20Config(2019)
	cfg.Days, cfg.CyclesPerDay = 4, 1
	window := calib.Generate(cfg).Snapshots
	prog := workloads.BV(8)
	d0, err := device.New(window[0].Topo, window[0])
	if err != nil {
		b.Fatal(err)
	}
	compiled, err := core.Compile(d0, prog, core.Options{Policy: core.VQAVQM, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	targets := []CanaryTarget{{Name: "bv8", Prog: prog, Stale: compiled.Routed.Physical}}
	ccfg := CanaryConfig{
		Spec: portfolio.Spec{RootSeed: 7, Cycles: -1, RandomStarts: -1, TopK: 1, Trials: 500},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Canary(context.Background(), window, targets, ccfg); err != nil {
			b.Fatal(err)
		}
	}
}
