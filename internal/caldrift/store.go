// Package caldrift is the calibration time-series plane behind nisqd:
// an append-only per-device store of calibration cycles, EWMA + CUSUM
// drift detection against each device's fingerprinted baseline, and a
// canary recompiler that speculatively re-runs hot circuits through the
// portfolio grid when a device drifts past threshold.
//
// The paper's core observation is temporal — error rates move every
// calibration cycle while "strong links stay strong" (Fig. 8) — and
// Pelofske et al. track exactly this device-quality evolution over
// months of production hardware. This package productionizes the
// reaction loop: ingest cycles, detect the drift, predict what
// recompilation would recover, before users burn shots on a stale
// mapping.
//
// Everything here keeps the repository's determinism contract: reports
// are pure functions of the calibration data and configuration,
// bit-identical at any worker count, with no wall-clock reads in any
// decision path (callers inject a clock.Clock where pacing is needed).
package caldrift

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"vaq/internal/calib"
	"vaq/internal/checkpoint"
	"vaq/internal/topo"
)

// MaxCyclesPerDevice bounds one device's in-memory series; beyond it
// the oldest cycles are dropped from memory and disk. 512 cycles is
// ~8 months of twice-daily calibration — far past any detection window
// — while bounding a malicious feed's memory to the series, not the
// uptime.
const MaxCyclesPerDevice = 512

// deviceNameRE guards on-disk layout: a device name is a path segment,
// so it must never contain separators or dot-tricks. Matches the serve
// layer's device-name grammar.
var deviceNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// ValidDeviceName reports whether name is storable.
func ValidDeviceName(name string) bool { return deviceNameRE.MatchString(name) }

// Store is the append-only calibration cycle store: one ordered series
// of snapshots per device, durably persisted (one atomic envelope per
// cycle) when opened with a directory, in-memory when opened with "".
// Appends are persist-before-ack: a cycle is written and fsynced before
// it becomes visible to queries, so an acknowledged cycle survives a
// crash. Safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	devices map[string]*series
	corrupt int64 // quarantined envelope files found at Open
}

type series struct {
	topo  *topo.Topology // canonical topology every appended cycle is rebound to
	snaps []*calib.Snapshot
	// next is the on-disk sequence number of the next envelope; it only
	// grows, so eviction never reuses a filename.
	next int
}

// Open opens (or creates) a store rooted at dir, loading every
// persisted series. dir == "" runs the store in-memory. Corrupt or
// unreadable envelopes are renamed aside with a ".corrupt" suffix and
// counted — one damaged cycle must not take down the device's series,
// let alone the store.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, devices: make(map[string]*series)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("caldrift: open store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("caldrift: open store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !ValidDeviceName(e.Name()) {
			continue
		}
		if err := s.loadSeries(e.Name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// loadSeries reads one device directory in envelope order.
func (s *Store) loadSeries(device string) error {
	devDir := filepath.Join(s.dir, device)
	entries, err := os.ReadDir(devDir)
	if err != nil {
		return fmt.Errorf("caldrift: load %s: %w", device, err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if matched, _ := filepath.Match("cycle-*.json", name); matched {
			files = append(files, name)
		}
	}
	sort.Strings(files) // zero-padded sequence numbers: lexicographic == numeric
	ser := &series{}
	for _, name := range files {
		path := filepath.Join(devDir, name)
		var seq int
		if _, err := fmt.Sscanf(name, "cycle-%06d.json", &seq); err != nil {
			s.quarantine(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			s.quarantine(path)
			continue
		}
		arch, err := calib.ReadJSON(bytes.NewReader(data))
		if err != nil || len(arch.Snapshots) != 1 {
			s.quarantine(path)
			continue
		}
		snap := arch.Snapshots[0]
		if ser.topo == nil {
			ser.topo = arch.Topo
		}
		bound, err := rebind(ser.topo, snap)
		if err != nil {
			s.quarantine(path)
			continue
		}
		bound.Cycle = len(ser.snaps)
		ser.snaps = append(ser.snaps, bound)
		if seq >= ser.next {
			ser.next = seq + 1
		}
	}
	if len(ser.snaps) > 0 {
		s.devices[device] = ser
	}
	return nil
}

func (s *Store) quarantine(path string) {
	os.Rename(path, path+".corrupt")
	s.corrupt++
}

// Append validates one calibration cycle and appends it to the
// device's series, persisting before acknowledging. The snapshot is
// rebound onto the series' canonical topology (its shape must match:
// same qubit count, same coupling set). The first cycle appended for a
// device fixes that topology. Returns the cycle's index in the series.
func (s *Store) Append(device string, snap *calib.Snapshot) (int, error) {
	if !ValidDeviceName(device) {
		return 0, fmt.Errorf("caldrift: invalid device name %q", device)
	}
	if snap == nil || snap.Topo == nil {
		return 0, fmt.Errorf("caldrift: nil snapshot")
	}
	if err := snap.Validate(); err != nil {
		return 0, fmt.Errorf("caldrift: cycle rejected: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.devices[device]
	if !ok {
		ser = &series{topo: snap.Topo}
		s.devices[device] = ser
	}
	bound, err := rebind(ser.topo, snap)
	if err != nil {
		return 0, fmt.Errorf("caldrift: cycle rejected: %w", err)
	}
	bound.Cycle = seriesBase(ser) + len(ser.snaps)

	// Durability before acknowledgement, exactly like the jobs plane:
	// if the envelope cannot be persisted the append is refused, so an
	// acknowledged cycle always survives a crash.
	if s.dir != "" {
		devDir := filepath.Join(s.dir, device)
		if err := os.MkdirAll(devDir, 0o755); err != nil {
			return 0, fmt.Errorf("caldrift: persist cycle: %w", err)
		}
		var buf bytes.Buffer
		one := &calib.Archive{Topo: bound.Topo, Snapshots: []*calib.Snapshot{bound}}
		if err := one.WriteJSON(&buf); err != nil {
			return 0, fmt.Errorf("caldrift: persist cycle: %w", err)
		}
		path := filepath.Join(devDir, fmt.Sprintf("cycle-%06d.json", ser.next))
		if err := checkpoint.AtomicWriteFile(path, buf.Bytes()); err != nil {
			return 0, fmt.Errorf("caldrift: persist cycle: %w", err)
		}
	}
	ser.next++
	ser.snaps = append(ser.snaps, bound)
	s.evictLocked(device, ser)
	return bound.Cycle, nil
}

// seriesBase is the cycle index of the series' first retained snapshot
// (non-zero once eviction has dropped old cycles).
func seriesBase(ser *series) int {
	if len(ser.snaps) == 0 {
		return 0
	}
	return ser.snaps[0].Cycle
}

// evictLocked drops the oldest cycles beyond the per-device cap,
// removing their envelopes from disk as well.
func (s *Store) evictLocked(device string, ser *series) {
	for len(ser.snaps) > MaxCyclesPerDevice {
		drop := ser.snaps[0]
		ser.snaps = ser.snaps[1:]
		if s.dir != "" {
			// Envelope sequence numbers are append order, so the oldest
			// retained cycle's envelope is the smallest sequence still on
			// disk: next - len(before eviction).
			seq := ser.next - len(ser.snaps) - 1
			os.Remove(filepath.Join(s.dir, device, fmt.Sprintf("cycle-%06d.json", seq)))
		}
		_ = drop
	}
}

// Window returns the last k cycles of a device's series, oldest first
// (k <= 0 or beyond the series length returns the whole series). The
// returned snapshots are shared, not copied: callers must treat them as
// read-only.
func (s *Store) Window(device string, k int) []*calib.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.devices[device]
	if !ok {
		return nil
	}
	n := len(ser.snaps)
	if k <= 0 || k > n {
		k = n
	}
	out := make([]*calib.Snapshot, k)
	copy(out, ser.snaps[n-k:])
	return out
}

// Archive returns the last k cycles as a calib.Archive on the series'
// canonical topology — the calibration context the canary recompiler
// hands to the portfolio grid.
func (s *Store) Archive(device string, k int) (*calib.Archive, bool) {
	snaps := s.Window(device, k)
	if len(snaps) == 0 {
		return nil, false
	}
	return &calib.Archive{Topo: snaps[0].Topo, Snapshots: snaps}, true
}

// Len returns the number of retained cycles for a device.
func (s *Store) Len(device string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ser, ok := s.devices[device]
	if !ok {
		return 0
	}
	return len(ser.snaps)
}

// Devices lists every device with at least one cycle, sorted.
func (s *Store) Devices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.devices))
	for name := range s.devices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Corrupt reports how many envelopes were quarantined at Open.
func (s *Store) Corrupt() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// rebind clones snap onto canonical topology t, verifying structural
// equality first (same qubit count and coupling set). Snapshots arrive
// decoded against their own topo.Topology instance; series consumers
// (Archive.Validate, the portfolio grid) require one shared instance.
func rebind(t *topo.Topology, snap *calib.Snapshot) (*calib.Snapshot, error) {
	if snap.Topo == t {
		return snap.Clone(), nil
	}
	if snap.Topo.NumQubits != t.NumQubits {
		return nil, fmt.Errorf("cycle has %d qubits, series has %d", snap.Topo.NumQubits, t.NumQubits)
	}
	if len(snap.Topo.Couplings) != len(t.Couplings) {
		return nil, fmt.Errorf("cycle has %d couplings, series has %d", len(snap.Topo.Couplings), len(t.Couplings))
	}
	out := calib.NewSnapshot(t)
	out.Cycle, out.Day = snap.Cycle, snap.Day
	for _, c := range t.Couplings {
		e, ok := snap.TwoQubit[c]
		if !ok {
			return nil, fmt.Errorf("cycle is missing link %d-%d of the series topology", c.A, c.B)
		}
		out.TwoQubit[c] = e
	}
	copy(out.OneQubit, snap.OneQubit)
	copy(out.Readout, snap.Readout)
	copy(out.T1Us, snap.T1Us)
	copy(out.T2Us, snap.T2Us)
	return out, nil
}
