package caldrift

import (
	"encoding/json"
	"math"
	"testing"

	"vaq/internal/calib"
)

// steadyWindow repeats one cycle n times: zero drift by construction.
func steadyWindow(t *testing.T, n int) []*calib.Snapshot {
	t.Helper()
	base := genCycles(t, 42, 1)[0]
	out := make([]*calib.Snapshot, n)
	for i := range out {
		c := base.Clone()
		c.Cycle = i
		out[i] = c
	}
	return out
}

func TestDetectSteadyDeviceScoresZero(t *testing.T) {
	rep, err := Detect("q5", steadyWindow(t, 4), DetectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score != 0 {
		t.Fatalf("steady device scored %v", rep.Score)
	}
	if rep.Triggered || rep.Alarms != 0 {
		t.Fatalf("steady device triggered=%v alarms=%d", rep.Triggered, rep.Alarms)
	}
	if rep.BaseCycle != 0 || rep.LastCycle != 3 || rep.Cycles != 4 {
		t.Fatalf("cycle bookkeeping: %+v", rep)
	}
}

func TestDetectDegradedLinkAlarms(t *testing.T) {
	win := steadyWindow(t, 5)
	// Degrade one link 4x from cycle 1 on: its series must alarm and
	// rank first.
	worst := win[0].Topo.Couplings[0]
	for _, s := range win[1:] {
		s.TwoQubit[worst] *= 4
	}
	rep, err := Detect("q5", win, DetectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alarms == 0 {
		t.Fatal("4x-degraded link raised no alarm")
	}
	top := rep.Series[0]
	if top.Alarm != true || top.EWMA <= 0 {
		t.Fatalf("top series %+v is not a positive alarm", top)
	}
	wantName := "cx:" + itoa(worst.A) + "-" + itoa(worst.B)
	if top.Name != wantName {
		t.Fatalf("top series is %s, want %s", top.Name, wantName)
	}
	if rep.Score <= 0 {
		t.Fatal("degraded device scored 0")
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestDetectCoherenceDropReadsAsDegradation(t *testing.T) {
	win := steadyWindow(t, 6)
	for _, s := range win[1:] {
		for q := range s.T1Us {
			s.T1Us[q] *= 0.4 // T1 collapse: 60% coherence loss
			s.T2Us[q] *= 0.4
		}
	}
	rep, err := Detect("q5", win, DetectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Sign convention: shrinking coherence is positive drift.
	for _, row := range rep.Series {
		if row.Name[:3] == "t1:" || row.Name[:3] == "t2:" {
			if row.EWMA <= 0 {
				t.Fatalf("coherence series %s has EWMA %v, want > 0", row.Name, row.EWMA)
			}
		}
	}
	if rep.Alarms == 0 {
		t.Fatal("coherence collapse raised no alarm")
	}
}

func TestDetectImprovementDoesNotTriggerOneSided(t *testing.T) {
	// A large *improvement* still drifts (two-sided CUSUM alarms; the
	// mapping is stale either way — better links elsewhere mean
	// recompilation can win).
	win := steadyWindow(t, 5)
	worst := win[0].Topo.Couplings[0]
	for _, s := range win[1:] {
		s.TwoQubit[worst] *= 0.2
	}
	rep, err := Detect("q5", win, DetectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alarms == 0 {
		t.Fatal("5x improvement raised no alarm (two-sided CUSUM should catch it)")
	}
	if rep.Series[0].EWMA >= 0 {
		t.Fatalf("improvement EWMA = %v, want negative", rep.Series[0].EWMA)
	}
}

func TestDetectThresholdGate(t *testing.T) {
	win := steadyWindow(t, 4)
	for _, s := range win[1:] {
		for _, c := range s.Topo.Couplings {
			s.TwoQubit[c] *= 3
		}
	}
	low, err := Detect("q5", win, DetectConfig{Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !low.Triggered {
		t.Fatalf("score %v did not trigger threshold 0.01", low.Score)
	}
	high, err := Detect("q5", win, DetectConfig{Threshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if high.Triggered {
		t.Fatalf("score %v triggered threshold 0.99", high.Score)
	}
	if low.Score != high.Score {
		t.Fatal("threshold changed the score itself")
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect("q5", nil, DetectConfig{}); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := Detect("q5", steadyWindow(t, 1), DetectConfig{}); err == nil {
		t.Fatal("1-cycle window accepted")
	}
	mixed := steadyWindow(t, 2)
	mixed[1] = genCycles(t, 9, 1)[0] // different Topo instance
	if _, err := Detect("q5", mixed, DetectConfig{}); err == nil {
		t.Fatal("mixed-topology window accepted")
	}
}

func TestDetectDeterministicBytes(t *testing.T) {
	win := genCycles(t, 2019, 6)
	var want []byte
	for i := 0; i < 3; i++ {
		rep, err := Detect("q5", win, DetectConfig{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Fatalf("run %d produced different report bytes", i)
		}
	}
}

func TestDetectTopSeriesBound(t *testing.T) {
	win := genCycles(t, 3, 4)
	rep, err := Detect("q5", win, DetectConfig{TopSeries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("TopSeries=3 kept %d rows", len(rep.Series))
	}
	for i := 1; i < len(rep.Series); i++ {
		if math.Abs(rep.Series[i].EWMA) > math.Abs(rep.Series[i-1].EWMA) {
			t.Fatal("series rows not sorted by |EWMA| descending")
		}
	}
}

func TestParseWindow(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"", 0, false},
		{"1", 1, false},
		{"512", 512, false},
		{"0", 0, true},
		{"-3", 0, true},
		{"513", 0, true},
		{"abc", 0, true},
		{"1e2", 0, true},
	}
	for _, c := range cases {
		got, err := ParseWindow(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseWindow(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseWindow(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
