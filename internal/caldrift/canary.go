package caldrift

import (
	"context"
	"fmt"

	"vaq/internal/calib"
	"vaq/internal/circuit"
	"vaq/internal/device"
	"vaq/internal/parallel"
	"vaq/internal/portfolio"
	"vaq/internal/sim"
)

// CanaryTarget is one hot circuit the canary recompiler re-evaluates
// when its device drifts: the logical program plus the stale physical
// circuit the serving cache would still hand out.
type CanaryTarget struct {
	// Name labels the target in the report (the serve layer uses the
	// compile cache key's digest).
	Name string
	// Prog is the logical circuit, recompiled from scratch against the
	// drifted calibration.
	Prog *circuit.Circuit
	// Stale is the physical circuit of the cached mapping, scored as-is
	// on the drifted calibration.
	Stale *circuit.Circuit
}

// CanaryConfig tunes the canary recompilation funnel.
type CanaryConfig struct {
	// Spec is the portfolio spec for the speculative recompile. Zero
	// fields default to a deliberately small funnel (TopK 1, 2000 MC
	// trials) — a canary predicts, it does not serve.
	Spec portfolio.Spec
	// Workers bounds the per-target fan-out (0: one per CPU, <0:
	// serial). Deltas are bit-identical at any setting.
	Workers int
	// MaxTargets bounds how many hot circuits one canary run evaluates
	// (default 8). Targets beyond it are skipped and counted.
	MaxTargets int
}

// DefaultMaxTargets bounds a canary run's circuit fan-out.
const DefaultMaxTargets = 8

func (c CanaryConfig) withDefaults() CanaryConfig {
	if c.MaxTargets <= 0 {
		c.MaxTargets = DefaultMaxTargets
	}
	if c.Spec.TopK <= 0 {
		c.Spec.TopK = 1
	}
	if c.Spec.Trials <= 0 {
		c.Spec.Trials = 2000
	}
	return c
}

// CanaryDelta is the predicted effect of recompiling one hot circuit
// against the drifted calibration: analytic PST of the stale cached
// mapping scored on the new device, versus the best candidate of a
// fresh portfolio run on the same device. Delta > 0 means
// recompilation is predicted to recover success probability.
type CanaryDelta struct {
	Name string `json:"name"`
	// StalePST is the cached mapping's analytic PST on the drifted
	// calibration.
	StalePST float64 `json:"stale_pst"`
	// RecompiledPST is the best fresh candidate's analytic PST on the
	// same calibration; Policy labels which grid point won.
	RecompiledPST float64 `json:"recompiled_pst"`
	Policy        string  `json:"policy"`
	Delta         float64 `json:"delta"`
	// Err records a failed recompile (the target's siblings still
	// report).
	Err string `json:"err,omitempty"`
}

// CanaryReport summarizes one canary run over a device's hot circuits.
type CanaryReport struct {
	Targets int `json:"targets"`
	// Skipped counts hot circuits beyond the MaxTargets cap.
	Skipped int           `json:"skipped,omitempty"`
	Deltas  []CanaryDelta `json:"deltas"`
	// MeanDelta and MaxDelta aggregate the successful deltas.
	MeanDelta float64 `json:"mean_delta"`
	MaxDelta  float64 `json:"max_delta"`
}

// Canary speculatively recompiles the hot targets against the drifted
// calibration window (oldest first; the last cycle is the current
// calibration) and reports the predicted-PST deltas. Targets keep
// their order; a target whose recompile fails carries its error
// instead of aborting the run. The report is a pure function of
// (window, targets, cfg) — bit-identical at any worker count.
func Canary(ctx context.Context, window []*calib.Snapshot, targets []CanaryTarget, cfg CanaryConfig) (*CanaryReport, error) {
	cfg = cfg.withDefaults()
	if len(window) == 0 {
		return nil, fmt.Errorf("caldrift: canary needs a non-empty window")
	}
	current := window[len(window)-1]
	d, err := device.New(current.Topo, current)
	if err != nil {
		return nil, fmt.Errorf("caldrift: canary device: %w", err)
	}
	arch := &calib.Archive{Topo: current.Topo, Snapshots: window}

	rep := &CanaryReport{}
	if len(targets) > cfg.MaxTargets {
		rep.Skipped = len(targets) - cfg.MaxTargets
		targets = targets[:cfg.MaxTargets]
	}
	rep.Targets = len(targets)

	deltas, err := parallel.MapCtx(ctx, cfg.Workers, len(targets), func(i int) (CanaryDelta, error) {
		t := targets[i]
		out := CanaryDelta{Name: t.Name}
		if t.Prog == nil || t.Stale == nil {
			out.Err = "target has no circuit"
			return out, nil
		}
		out.StalePST = sim.AnalyticPST(d, t.Stale, sim.Config{})
		res, rerr := portfolio.Run(ctx, d, arch, t.Prog, cfg.Spec)
		if rerr != nil {
			out.Err = rerr.Error()
			return out, nil
		}
		best := res.Best()
		if best == nil {
			out.Err = "portfolio produced no candidates"
			return out, nil
		}
		// Both sides are analytic PST on the same device, so the delta
		// isolates the mapping, not the estimator.
		out.RecompiledPST = best.AnalyticPST
		out.Policy = best.CandidateSpec.Label()
		out.Delta = out.RecompiledPST - out.StalePST
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	rep.Deltas = deltas

	var sum float64
	var n int
	for _, dl := range deltas {
		if dl.Err != "" {
			continue
		}
		sum += dl.Delta
		if dl.Delta > rep.MaxDelta {
			rep.MaxDelta = dl.Delta
		}
		n++
	}
	if n > 0 {
		rep.MeanDelta = sum / float64(n)
	}
	return rep, nil
}
