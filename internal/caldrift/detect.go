package caldrift

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"vaq/internal/calib"
)

// DetectConfig tunes the drift detector. The zero value is usable:
// withDefaults fills in the EWMA smoothing, CUSUM slack/decision
// thresholds, and the device-level trigger.
type DetectConfig struct {
	// Lambda is the EWMA smoothing factor in (0, 1]; higher weighs the
	// newest cycle more. Default 0.3.
	Lambda float64 `json:"lambda"`
	// Slack is the CUSUM allowance k: relative deviation below it is
	// treated as calibration noise, not drift. Default 0.25.
	Slack float64 `json:"slack"`
	// Decision is the CUSUM decision interval h: a series alarms when
	// its one-sided cumulative sum exceeds it. Default 1.5.
	Decision float64 `json:"decision"`
	// Threshold is the device-level drift score above which the device
	// is considered drifted (and the canary recompiler runs). Default
	// 0.25.
	Threshold float64 `json:"threshold"`
	// TopSeries bounds how many per-series rows the report carries,
	// most-drifted first. Default 16.
	TopSeries int `json:"top_series,omitempty"`
}

// Detector defaults.
const (
	DefaultLambda    = 0.3
	DefaultSlack     = 0.25
	DefaultDecision  = 1.5
	DefaultThreshold = 0.25
	DefaultTopSeries = 16
)

func (c DetectConfig) withDefaults() DetectConfig {
	if c.Lambda <= 0 || c.Lambda > 1 {
		c.Lambda = DefaultLambda
	}
	if c.Slack <= 0 {
		c.Slack = DefaultSlack
	}
	if c.Decision <= 0 {
		c.Decision = DefaultDecision
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.TopSeries <= 0 {
		c.TopSeries = DefaultTopSeries
	}
	return c
}

// errFloor keeps relative deviations of near-zero error rates bounded:
// a link calibrated at 0.1% that moves to 0.4% is a 3x-floor jump, not
// a 300% one.
const errFloor = 0.01

// SeriesDrift is one metric series' drift state after folding the
// window through the detector.
type SeriesDrift struct {
	// Name identifies the series: "cx:a-b" (two-qubit link), "sq:q"
	// (one-qubit gate), "ro:q" (readout), "t1:q" / "t2:q" (coherence).
	Name string `json:"name"`
	// Baseline and Latest are the raw metric values (error rate, or
	// microseconds for coherence series).
	Baseline float64 `json:"baseline"`
	Latest   float64 `json:"latest"`
	// EWMA is the smoothed relative deviation from baseline; positive
	// means degradation for every series (coherence deviations are
	// sign-flipped so shrinking T1 reads as positive drift).
	EWMA float64 `json:"ewma"`
	// Cusum is max(S+, S-) after the window; Alarm reports whether it
	// crossed the decision interval.
	Cusum float64 `json:"cusum"`
	Alarm bool    `json:"alarm"`
}

// Report is the drift verdict for one device: a score in [0, 1]
// against its baseline cycle, the alarmed series, and — when the score
// crossed the threshold and a canary ran — the predicted recompilation
// gains. Reports are pure functions of (baseline, window, config):
// no timestamps, no wall-clock reads, bit-identical on every run.
type Report struct {
	Device    string  `json:"device"`
	Cycles    int     `json:"cycles"`
	BaseCycle int     `json:"base_cycle"`
	LastCycle int     `json:"last_cycle"`
	Score     float64 `json:"score"`
	Threshold float64 `json:"threshold"`
	Triggered bool    `json:"triggered"`
	// Alarms counts series whose CUSUM crossed the decision interval.
	Alarms int           `json:"alarms"`
	Series []SeriesDrift `json:"series,omitempty"`
	Canary *CanaryReport `json:"canary,omitempty"`
}

// seriesValues extracts every tracked metric series from a snapshot in
// a deterministic order: two-qubit links (coupling order), then
// one-qubit, readout, T1, T2 per qubit.
func seriesValues(s *calib.Snapshot) (names []string, vals []float64, coherence []bool) {
	for _, c := range s.Topo.Couplings {
		names = append(names, "cx:"+strconv.Itoa(c.A)+"-"+strconv.Itoa(c.B))
		vals = append(vals, s.TwoQubit[c])
		coherence = append(coherence, false)
	}
	for q := 0; q < s.Topo.NumQubits; q++ {
		names = append(names, "sq:"+strconv.Itoa(q))
		vals = append(vals, s.OneQubit[q])
		coherence = append(coherence, false)
	}
	for q := 0; q < s.Topo.NumQubits; q++ {
		names = append(names, "ro:"+strconv.Itoa(q))
		vals = append(vals, s.Readout[q])
		coherence = append(coherence, false)
	}
	for q := 0; q < s.Topo.NumQubits; q++ {
		names = append(names, "t1:"+strconv.Itoa(q))
		vals = append(vals, s.T1Us[q])
		coherence = append(coherence, true)
	}
	for q := 0; q < s.Topo.NumQubits; q++ {
		names = append(names, "t2:"+strconv.Itoa(q))
		vals = append(vals, s.T2Us[q])
		coherence = append(coherence, true)
	}
	return names, vals, coherence
}

// deviation is the signed relative deviation of x from baseline b,
// oriented so positive always means degradation. Error-rate series
// degrade upward and are scaled by max(b, errFloor); coherence series
// degrade downward and are scaled by the baseline itself.
func deviation(b, x float64, coherence bool) float64 {
	if coherence {
		if b <= 0 {
			return 0
		}
		return (b - x) / b
	}
	return (x - b) / math.Max(b, errFloor)
}

// Detect folds a window of calibration cycles (oldest first) through
// per-series EWMA and two-sided CUSUM detectors against the window's
// first cycle as baseline, and scores the device's overall drift as
// the mean of min(1, |EWMA|) across series. It returns a report with
// the cfg.TopSeries most-drifted series; Canary is left nil for the
// caller to fill.
func Detect(device string, window []*calib.Snapshot, cfg DetectConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(window) < 2 {
		return nil, fmt.Errorf("caldrift: detect needs >= 2 cycles, have %d", len(window))
	}
	base := window[0]
	names, baseVals, coherence := seriesValues(base)

	ewma := make([]float64, len(names))
	sPos := make([]float64, len(names))
	sNeg := make([]float64, len(names))
	var lastVals []float64
	for _, snap := range window[1:] {
		if snap.Topo != base.Topo {
			return nil, fmt.Errorf("caldrift: window mixes topologies")
		}
		_, vals, _ := seriesValues(snap)
		for i := range names {
			r := deviation(baseVals[i], vals[i], coherence[i])
			ewma[i] = (1-cfg.Lambda)*ewma[i] + cfg.Lambda*r
			sPos[i] = math.Max(0, sPos[i]+r-cfg.Slack)
			sNeg[i] = math.Max(0, sNeg[i]-r-cfg.Slack)
		}
		lastVals = vals
	}

	rep := &Report{
		Device:    device,
		Cycles:    len(window),
		BaseCycle: base.Cycle,
		LastCycle: window[len(window)-1].Cycle,
		Threshold: cfg.Threshold,
	}
	rows := make([]SeriesDrift, len(names))
	var sum float64
	for i := range names {
		cusum := math.Max(sPos[i], sNeg[i])
		alarm := cusum > cfg.Decision
		if alarm {
			rep.Alarms++
		}
		sum += math.Min(1, math.Abs(ewma[i]))
		rows[i] = SeriesDrift{
			Name:     names[i],
			Baseline: baseVals[i],
			Latest:   lastVals[i],
			EWMA:     ewma[i],
			Cusum:    cusum,
			Alarm:    alarm,
		}
	}
	rep.Score = sum / float64(len(names))
	rep.Triggered = rep.Score > cfg.Threshold

	// Most-drifted first; name breaks ties so the order is total and
	// the report is byte-stable.
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := math.Abs(rows[i].EWMA), math.Abs(rows[j].EWMA)
		if ai != aj {
			return ai > aj
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > cfg.TopSeries {
		rows = rows[:cfg.TopSeries]
	}
	rep.Series = rows
	return rep, nil
}

// ParseWindow parses the ?window=K query parameter: empty means 0
// (whole series), otherwise a decimal in [1, MaxCyclesPerDevice].
func ParseWindow(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	k, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("window must be an integer, got %q", s)
	}
	if k < 1 || k > MaxCyclesPerDevice {
		return 0, fmt.Errorf("window must be in [1, %d], got %d", MaxCyclesPerDevice, k)
	}
	return k, nil
}
