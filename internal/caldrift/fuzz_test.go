package caldrift

import (
	"bytes"
	"testing"

	"vaq/internal/calib"
)

// validArchiveJSON renders a 2-cycle Q5 archive in the calib wire
// format — the well-formed seed the mutator works outward from.
func validArchiveJSON(tb testing.TB) []byte {
	tb.Helper()
	cfg := calib.DefaultQ5Config(3)
	cfg.Days, cfg.CyclesPerDay = 2, 1
	var buf bytes.Buffer
	if err := calib.Generate(cfg).WriteJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCycleAppend feeds arbitrary bytes through the full ingest path —
// lenient JSON decode, snapshot validation, topology rebind, append —
// and asserts the store never panics and never accepts a cycle it
// cannot account for.
func FuzzCycleAppend(f *testing.F) {
	f.Add("q5", validArchiveJSON(f))
	f.Add("q5", []byte("{"))
	f.Add("../evil", []byte(`{"topology":{"name":"x","num_qubits":1,"couplings":[]}}`))
	f.Add("q5", []byte(`{"topology":{"name":"x","num_qubits":2,"couplings":[[0,1]]},"snapshots":[]}`))
	f.Fuzz(func(t *testing.T, device string, data []byte) {
		s, err := Open("")
		if err != nil {
			t.Fatal(err)
		}
		arch, _, err := calib.ReadJSONLenient(bytes.NewReader(data))
		if err != nil || arch == nil {
			return
		}
		appended := 0
		for _, snap := range arch.Snapshots {
			if _, err := s.Append(device, snap); err == nil {
				appended++
			}
		}
		if got := s.Len(device); got != appended {
			t.Fatalf("accepted %d cycles but Len = %d", appended, got)
		}
		if appended > 0 {
			if a, ok := s.Archive(device, 0); !ok {
				t.Fatal("non-empty series has no archive")
			} else if err := a.Validate(); err != nil {
				t.Fatalf("accepted series fails validation: %v", err)
			}
		}
	})
}

// FuzzDriftWindowQuery hammers the query surface: ParseWindow on
// arbitrary strings, then Window/Detect on arbitrary window sizes over
// a populated series. Nothing here may panic, and windows must respect
// the series bounds.
func FuzzDriftWindowQuery(f *testing.F) {
	f.Add("", 0)
	f.Add("3", 2)
	f.Add("-1", -7)
	f.Add("999999999999999999999", 1<<30)
	f.Add("2e3", 513)
	seed := validArchiveJSON(f)
	f.Fuzz(func(t *testing.T, winStr string, k int) {
		if n, err := ParseWindow(winStr); err == nil && (n < 0 || n > MaxCyclesPerDevice) {
			t.Fatalf("ParseWindow(%q) = %d outside [0, %d]", winStr, n, MaxCyclesPerDevice)
		}
		s, _ := Open("")
		arch, _, err := calib.ReadJSONLenient(bytes.NewReader(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, snap := range arch.Snapshots {
			if _, err := s.Append("q5", snap); err != nil {
				t.Fatal(err)
			}
		}
		w := s.Window("q5", k)
		if len(w) > s.Len("q5") {
			t.Fatalf("Window(%d) returned %d cycles of a %d-cycle series", k, len(w), s.Len("q5"))
		}
		if len(w) >= 2 {
			if _, err := Detect("q5", w, DetectConfig{}); err != nil {
				t.Fatalf("Detect over store window failed: %v", err)
			}
		}
	})
}
