package portfolio

import (
	"context"
	"testing"

	"vaq/internal/workloads"
)

// BenchmarkPortfolio measures the speculative compilation fan-out:
// "serial" forces one worker, "parallel" uses one per CPU. Both rank
// the identical candidate grid (the determinism tests pin that), so the
// candidates/sec custom metric exposes the parallel scaling directly.
func BenchmarkPortfolio(b *testing.B) {
	d, arch := testFixture(b)
	prog := workloads.BV(8)
	bench := func(b *testing.B, workers int) {
		spec := testSpec(workers)
		n := GridSize(spec, len(arch.Snapshots))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Run(context.Background(), d, arch, prog, spec)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Candidates) != n {
				b.Fatalf("ranked %d candidates, want %d", len(res.Candidates), n)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
	}
	b.Run("serial", func(b *testing.B) { bench(b, -1) })
	b.Run("parallel", func(b *testing.B) { bench(b, 0) })
}
